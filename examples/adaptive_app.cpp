// Adaptive application driven by continuous avail-bw monitoring — the
// paper's Section 4 integration question made concrete.
//
// A 50 Mb/s path carries 15 Mb/s of Poisson cross traffic; at t = 20 s a
// second source turns on and the avail-bw drops from 35 to 15 Mb/s.  An
// AvailBwMonitor tracks the path once per second, and a simulated
// adaptive video encoder picks its ladder rung at ~80% of the tracked
// estimate.  The printout shows the step change, the monitor's response
// time, and the bitrate adaptation.
#include <cstdio>
#include <iostream>

#include "core/monitor.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "stats/cusum.hpp"
#include "traffic/poisson.hpp"

using namespace abw;

namespace {

/// Highest ladder rung not exceeding 80% of the estimate.
double pick_bitrate(double estimate_bps) {
  static const double kLadder[] = {2e6, 4e6, 8e6, 12e6, 16e6, 24e6, 32e6};
  double chosen = kLadder[0];
  for (double rung : kLadder)
    if (rung <= 0.8 * estimate_bps) chosen = rung;
  return chosen;
}

}  // namespace

int main() {
  std::vector<sim::LinkConfig> links(1);
  links[0].capacity_bps = 50e6;
  links[0].propagation_delay = sim::kMillisecond;
  auto sc = core::Scenario::custom(links, 77);

  // Base load 15 Mb/s for the whole run; extra 20 Mb/s from t = 20 s.
  traffic::PoissonGenerator base(sc.simulator(), sc.path(), 0, false, 1,
                                 sc.rng().fork(), 15e6,
                                 traffic::SizeDistribution::fixed(1500));
  base.start(0, 60 * sim::kSecond);
  traffic::PoissonGenerator surge(sc.simulator(), sc.path(), 0, false, 2,
                                  sc.rng().fork(), 20e6,
                                  traffic::SizeDistribution::fixed(1500));
  surge.start(20 * sim::kSecond, 60 * sim::kSecond);
  sc.simulator().run_until(2 * sim::kSecond);

  std::printf("50 Mbps path; cross traffic 15 Mbps, +20 Mbps at t=20s\n"
              "(avail-bw steps 35 -> 15 Mbps)\n\n");

  core::MonitorConfig mc;
  mc.min_rate_bps = 2e6;
  mc.max_rate_bps = 48e6;
  mc.period = sim::kSecond;
  mc.pathload.streams_per_fleet = 4;   // lightweight tracker fleets
  mc.pathload.packets_per_stream = 60;
  core::AvailBwMonitor monitor(sc, mc);

  auto series = monitor.run_until(40 * sim::kSecond);

  core::Table table({"t", "ground truth", "monitor estimate", "video bitrate"});
  for (const auto& r : series) {
    if (static_cast<int>(sim::to_seconds(r.at)) % 3 != 0) continue;  // thin out
    char t[16];
    std::snprintf(t, sizeof t, "%.0f s", sim::to_seconds(r.at));
    table.row({t, core::mbps(r.ground_truth_bps), core::mbps(r.estimate_bps),
               core::mbps(pick_bitrate(r.estimate_bps))});
  }
  table.print(std::cout);

  // How long did the monitor take to settle after the step?
  double settle_at = -1.0;
  for (const auto& r : series) {
    if (r.at < 20 * sim::kSecond) continue;
    if (std::abs(r.estimate_bps - 15e6) < 4e6) {
      settle_at = sim::to_seconds(r.at);
      break;
    }
  }
  if (settle_at > 0)
    std::printf("\nmonitor settled within 4 Mbps of the new avail-bw %.1f s "
                "after the step.\n",
                settle_at - 20.0);
  else
    std::printf("\nmonitor did not settle within the run.\n");

  // Offline change-point analysis of the monitor's own time series —
  // the "level shift" detection the paper's OWD discussion calls for.
  std::vector<double> estimates;
  for (const auto& r : series) estimates.push_back(r.estimate_bps);
  if (auto shift = stats::detect_level_shift(estimates)) {
    std::printf("CUSUM level-shift detector: %s shift at reading %zu "
                "(t = %.0f s)\n",
                shift->upward ? "upward" : "downward", shift->at,
                sim::to_seconds(series[shift->at].at));
  }
  std::printf("each reading cost 2 fleets x %zu streams x %zu packets.\n",
              mc.pathload.streams_per_fleet, mc.pathload.packets_per_stream);
  return 0;
}
