// Network-wide mesh estimation demo: resolve every source->sink pair of
// an ISP-like parking-lot topology while directly probing only a
// sublinear subset, inferring the rest through shared bottlenecks
// (est/mesh.hpp over core/mesh_scenario.hpp).
//
//   ./mesh_estimation [sources] [sinks] [hops] [probe_fraction]
//
// The demo prints the greedy-cover probe set, then a per-pair table of
// estimate vs simulated ground truth (paper Eq. 3 per-link minimum)
// marking each pair measured or inferred, and closes with the headline
// numbers: probed fraction, median inferred error, and the probe-cost
// amortization vs measuring all pairs directly.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/mesh_scenario.hpp"
#include "est/mesh.hpp"
#include "runner/batch.hpp"
#include "runner/bench_report.hpp"

using namespace abw;

int main(int argc, char** argv) {
  core::ParkingLotMeshConfig pc;
  pc.sources = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  pc.sinks = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 6;
  pc.backbone_hops = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 6;
  const double fraction = argc > 4 ? std::strtod(argv[4], nullptr) : 0.30;
  pc.backbone_capacity_bps = 50e6;
  pc.access_capacity_bps = 200e6;
  pc.util_min = 0.50;
  pc.util_max = 0.60;
  pc.mode = sim::SimMode::kHybrid;
  pc.model = core::CrossModel::kPoisson;
  pc.warmup = sim::kSecond;
  pc.seed = 42;
  core::MeshConfig mc = core::parking_lot_mesh(pc);
  mc.topology.auto_route_all(mc.pairs);
  const std::size_t pairs = mc.pairs.size();

  std::printf("mesh: %zu sources x %zu sinks over a %zu-hop backbone "
              "(%zu pairs, %zu edges)\n",
              pc.sources, pc.sinks, pc.backbone_hops, pairs,
              mc.topology.edge_count());

  // Ground truth: one reference mesh run with every background source
  // active, averaged over a 4 s steady-state window.
  core::MeshScenario reference(mc);
  const sim::SimTime t1 = mc.warmup;
  const sim::SimTime t2 = t1 + 4 * sim::kSecond;
  reference.run_until(t2);
  const std::vector<double> truth = reference.ground_truth_matrix(t1, t2);

  const core::MeshProbeConfig probe;  // iterative trend search per pair
  const est::MeshMeasureFn measure = core::make_mesh_measure_fn(mc, probe);
  est::MeshEstimatorConfig ecfg;
  ecfg.max_probe_fraction = fraction;
  est::MeshEstimator est(est::make_path_specs(mc.topology, mc.pairs), ecfg);
  runner::BatchRunner pool(0);

  double w0 = runner::monotonic_seconds();
  const est::MeshReport report = est.estimate(pool, measure);
  const double mesh_s = runner::monotonic_seconds() - w0;

  std::printf("probe set (greedy route cover, %zu of %zu pairs):",
              report.probed.size(), pairs);
  for (std::size_t p : report.probed) std::printf(" %zu", p);
  std::printf("\n\n%-6s %-9s %12s %12s %8s %6s\n", "pair", "kind",
              "estimate", "truth", "err", "conf");

  std::vector<double> inferred_err;
  for (std::size_t p = 0; p < pairs; ++p) {
    const est::MeshPairEstimate& e = report.pairs[p];
    const double err = (e.valid && truth[p] > 0.0)
                           ? (e.estimate_bps - truth[p]) / truth[p]
                           : std::nan("");
    if (!e.measured && e.valid && truth[p] > 0.0)
      inferred_err.push_back(std::abs(err));
    std::printf("%-6zu %-9s %9.2f Mb %9.2f Mb %+7.1f%% %6.2f\n", p,
                e.measured ? "measured" : "inferred", e.estimate_bps / 1e6,
                truth[p] / 1e6, 100.0 * err, e.confidence);
  }

  // The amortization headline: what measuring every pair directly costs
  // on the same worker pool with the same per-pair budget.
  w0 = runner::monotonic_seconds();
  pool.map(pairs, [&](std::size_t p) {
    return measure(p, runner::derive_seed(ecfg.base_seed, p));
  });
  const double all_s = runner::monotonic_seconds() - w0;

  std::sort(inferred_err.begin(), inferred_err.end());
  const double median = inferred_err.empty()
                            ? 0.0
                            : inferred_err[inferred_err.size() / 2];
  std::printf("\nprobed %zu/%zu pairs (%.1f%%), median inferred error "
              "%.1f%%\nmesh %.2f s vs probe-all %.2f s: %.1fx "
              "amortization\n",
              report.probed.size(), pairs, 100.0 * report.probed_fraction(),
              100.0 * median, mesh_s, all_s, all_s / mesh_s);
  return 0;
}
