// Variation-range explorer: how the averaging time scale tau shapes the
// avail-bw process (the paper's definitions section and Fig. 6).
//
// Synthesizes the self-similar OC-3 trace (the NLANR substitute), then
// for a sweep of time scales prints the mean, standard deviation, and
// 5th-95th percentile variation range of A_tau — plus the sample path at
// tau = 10 ms as an ASCII plot, mirroring Fig. 6.
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "stats/hurst.hpp"
#include "stats/moments.hpp"
#include "trace/availbw_process.hpp"
#include "trace/synthetic_trace.hpp"

int main() {
  using namespace abw;

  trace::SyntheticTraceConfig cfg;
  cfg.duration = 30 * sim::kSecond;
  stats::Rng rng(42);
  std::printf("Synthesizing a self-similar OC-3 trace (%.0f s, mean util %.0f%%, "
              "H=%.2f)...\n",
              sim::to_seconds(cfg.duration), cfg.mean_utilization * 100,
              cfg.hurst);
  trace::PacketTrace tr = trace::synthesize_selfsimilar_trace(cfg, rng);
  trace::AvailBwProcess proc(tr);

  std::printf("Trace: %zu packets, mean avail-bw %s\n", tr.size(),
              core::mbps(proc.mean_avail_bw()).c_str());

  core::Table table({"tau", "mean A", "stddev", "5th pct", "95th pct", "range width"});
  for (double tau_ms : {1.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0}) {
    sim::SimTime tau = sim::from_millis(tau_ms);
    auto series = proc.series(tau);
    auto [lo, hi] = proc.variation_range(tau, 0.05);
    char tau_s[32];
    std::snprintf(tau_s, sizeof tau_s, "%.0f ms", tau_ms);
    table.row({tau_s, core::mbps(stats::mean(series)),
               core::mbps(stats::stddev(series), 2), core::mbps(lo),
               core::mbps(hi), core::mbps(hi - lo)});
  }
  table.print(std::cout);

  std::printf("\nNote how the variation range SHRINKS as tau grows — the\n"
              "variance of A_tau decays with the averaging time scale\n"
              "(Eqs. 4-5); for this self-similar trace the decay is slower\n"
              "than the IID 1/k law.  Estimated Hurst parameter: %.2f\n",
              stats::hurst_variance_time(proc.series(sim::kMillisecond)));

  std::printf("\nSample path of A_tau at tau = 10 ms over 20 s (cf. Fig. 6):\n");
  auto path10 = proc.series(10 * sim::kMillisecond);
  if (path10.size() > 2000) path10.resize(2000);
  std::printf("%s", core::ascii_plot(path10, 14, 76).c_str());
  std::printf("(y: avail-bw in bits/s; x: time)\n");
  return 0;
}
