// Tool comparison under identical, reproducible conditions — the paper's
// closing recommendation ("compare and evaluate the existing estimation
// techniques under reproducible and controllable conditions, and with the
// same configuration parameters").
//
// Runs every implemented technique on the same three paths (fluid-like
// CBR, Poisson, heavy-tailed Pareto ON-OFF cross traffic) and prints the
// estimate, error against ground truth, probing overhead, and latency.
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

using namespace abw;

namespace {

// Registry v2: every registered tool under one uniform option set, no
// per-tool config structs (the registry maps the bracket and capacity
// onto each tool's own knobs).
std::vector<std::unique_ptr<est::Estimator>> make_tools(double ct,
                                                        stats::Rng& rng) {
  core::ToolOptions o;
  o.tight_capacity_bps = ct;
  o.min_rate_bps = 0.04 * ct;
  o.max_rate_bps = 0.98 * ct;
  std::vector<std::unique_ptr<est::Estimator>> tools;
  for (const core::ToolInfo& info : core::available_tool_info())
    tools.push_back(core::make_estimator(info.name, o, rng));
  return tools;
}

void run_on(core::CrossModel model, std::uint64_t seed) {
  core::SingleHopConfig cfg;
  cfg.model = model;
  cfg.seed = seed;
  auto sc = core::Scenario::single_hop(cfg);

  std::printf("\n--- cross traffic: %s (Ct = %s, A = %s) ---\n",
              core::to_string(model), core::mbps(cfg.capacity_bps).c_str(),
              core::mbps(sc.nominal_avail_bw()).c_str());

  core::Table table({"tool", "class", "estimate", "error", "packets", "latency"});
  for (auto& tool : make_tools(cfg.capacity_bps, sc.rng())) {
    auto before = sc.session().cost();
    est::Estimate e = tool->estimate(sc.session());
    auto after = sc.session().cost();
    std::uint64_t pkts = after.packets - before.packets;
    double latency = sim::to_seconds(after.last_activity) -
                     sim::to_seconds(before.last_activity);

    std::string estimate, error;
    if (e.valid) {
      if (e.low_bps == e.high_bps) {
        estimate = core::mbps(e.point_bps());
      } else {
        estimate = "[" + core::mbps(e.low_bps) + ", " + core::mbps(e.high_bps) + "]";
      }
      double truth = sc.nominal_avail_bw();
      error = core::pct((e.point_bps() - truth) / truth);
    } else {
      estimate = "(invalid)";
      error = "-";
    }
    char lat[32];
    std::snprintf(lat, sizeof lat, "%.2f s", latency);
    table.row({std::string(tool->name()),
               tool->probing_class() == est::ProbingClass::kDirect ? "direct"
                                                                   : "iterative",
               estimate, error, std::to_string(pkts), lat});
  }
  std::fflush(stdout);
  table.print(std::cout);
  std::cout.flush();
}

}  // namespace

int main() {
  std::printf("Comparing all implemented avail-bw estimation techniques\n"
              "under identical conditions (the paper's Section 4 ask).\n");
  run_on(core::CrossModel::kCbr, 1);
  run_on(core::CrossModel::kPoisson, 2);
  run_on(core::CrossModel::kParetoOnOff, 3);
  std::printf("\nReading guide: direct tools need the tight-link capacity\n"
              "as input; iterative tools do not.  Expect underestimation\n"
              "under bursty (Pareto) cross traffic — the paper's sixth\n"
              "misconception.\n");
  return 0;
}
