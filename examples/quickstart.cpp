// Quickstart: measure the available bandwidth of a simulated path.
//
// Builds the paper's canonical single-hop scenario (50 Mb/s tight link,
// 25 Mb/s of Poisson cross traffic), runs Pathload over it, and compares
// the reported variation range against the simulator's exact ground
// truth.  This is the smallest end-to-end use of the library:
//
//   scenario -> session -> estimator -> estimate vs ground truth
#include <cstdio>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "est/pathload.hpp"

int main() {
  using namespace abw;

  // 1. A simulated path with known ground truth.
  core::SingleHopConfig cfg;
  cfg.capacity_bps = 50e6;      // tight link capacity Ct
  cfg.cross_rate_bps = 25e6;    // mean cross traffic => avail-bw A = 25 Mb/s
  cfg.model = core::CrossModel::kPoisson;
  cfg.seed = 1;
  core::Scenario scenario = core::Scenario::single_hop(cfg);

  std::printf("Path: 1 hop, Ct = %s, mean cross = %s  =>  A = %s\n",
              core::mbps(cfg.capacity_bps).c_str(),
              core::mbps(cfg.cross_rate_bps).c_str(),
              core::mbps(scenario.nominal_avail_bw()).c_str());

  // 2. Run an estimation tool over the path's probing session.
  est::PathloadConfig pl_cfg;
  pl_cfg.min_rate_bps = 2e6;
  pl_cfg.max_rate_bps = 49e6;
  est::Pathload pathload(pl_cfg);
  est::Estimate e = pathload.estimate(scenario.session());

  if (!e.valid) {
    std::printf("estimation failed: %s\n", e.detail.c_str());
    return 1;
  }

  // 3. Compare with the exact ground truth over the measurement interval.
  sim::SimTime t0 = e.cost.first_send;
  sim::SimTime t1 = e.cost.last_activity;
  double truth = scenario.ground_truth(t0, t1);

  std::printf("\nPathload variation range : [%s, %s]\n",
              core::mbps(e.low_bps).c_str(), core::mbps(e.high_bps).c_str());
  std::printf("Ground-truth avail-bw    : %s (exact, from link busy periods)\n",
              core::mbps(truth).c_str());
  std::printf("Probing overhead         : %llu packets, %.1f s of measurement\n",
              static_cast<unsigned long long>(e.cost.packets),
              sim::to_seconds(e.cost.elapsed()));
  std::printf("\nNote: the range is the avail-bw VARIATION range at the\n"
              "stream-duration time scale — not a confidence interval (see\n"
              "the paper's ninth misconception).\n");
  return 0;
}
