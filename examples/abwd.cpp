// abwd — the live measurement daemon (net/daemon.hpp) as a standalone
// binary: the receiver half every live abwprobe run talks to.
//
//   abwd --port=9877
//   abwd --port=9877 --bind=0.0.0.0 --max-sessions=128 --trace=abwd.jsonl
//
// Runs until SIGINT/SIGTERM, then prints a final stats line.  One daemon
// serves many concurrent measurement sessions over its single socket;
// per-session probe budgets and deadlines are whatever each client
// advertised in its hello (enforced server-side).
//
// Flags:
//   --port=N           UDP port (default 9877; 0 = ephemeral, printed)
//   --bind=ADDR        bind address          (default 127.0.0.1)
//   --max-sessions=N   admission cap         (default 64)
//   --idle-timeout=S   session GC, seconds   (default 30)
//   --trace=FILE       JSONL session-event trace (obs/)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include <unistd.h>

#include "net/daemon.hpp"
#include "obs/trace.hpp"

using namespace abw;

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  net::DaemonConfig cfg;
  cfg.port = 9877;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eat = [&](const char* key, std::string& out) {
      std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        out = arg.substr(prefix.size());
        return true;
      }
      return false;
    };
    std::string v;
    if (eat("--port", v)) cfg.port = static_cast<std::uint16_t>(std::stoul(v));
    else if (eat("--bind", v)) cfg.bind_host = v;
    else if (eat("--max-sessions", v)) cfg.max_sessions = std::stoul(v);
    else if (eat("--idle-timeout", v))
      cfg.idle_timeout = sim::from_seconds(std::stod(v));
    else if (eat("--trace", v)) trace_path = v;
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  try {
    net::Daemon daemon(cfg);
    std::unique_ptr<obs::JsonlTraceSink> trace;
    if (!trace_path.empty()) {
      trace = std::make_unique<obs::JsonlTraceSink>(trace_path);
      daemon.set_trace(trace.get());
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);

    daemon.start();
    std::printf("abwd listening on %s:%u (max %zu sessions)\n",
                cfg.bind_host.c_str(), daemon.port(), cfg.max_sessions);
    std::fflush(stdout);

    while (g_stop == 0 && daemon.running()) ::usleep(100000);

    daemon.stop();
    if (trace) daemon.set_trace(nullptr);
    net::DaemonStats s = daemon.stats();
    std::printf(
        "abwd stats: %llu datagrams, %llu probes, %llu sessions admitted "
        "(%llu rejected, %llu expired), %llu reports, %llu aborts\n",
        static_cast<unsigned long long>(s.datagrams_in),
        static_cast<unsigned long long>(s.probes_in),
        static_cast<unsigned long long>(s.sessions_admitted),
        static_cast<unsigned long long>(s.sessions_rejected),
        static_cast<unsigned long long>(s.sessions_expired),
        static_cast<unsigned long long>(s.reports_sent),
        static_cast<unsigned long long>(s.aborts_sent));
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 2;
  }
  return 0;
}
