// tracegen — synthesize, persist, and analyze packet traces.
//
//   tracegen synth out.csv [seconds] [hurst] [utilization]
//       Generate a self-similar OC-3 trace (the NLANR substitute) and
//       save it as CSV.
//   tracegen analyze in.csv
//       Load a trace and print the avail-bw analysis the paper's
//       definitions section calls for: mean, Var[A_tau] across scales,
//       Hurst estimate, variation ranges, autocorrelation.
//
// The CSV format is the library's portable trace interchange
// (trace/trace_io.hpp); analyze accepts traces recorded off simulated
// links just as well as synthesized ones.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/report.hpp"
#include "stats/acf.hpp"
#include "stats/hurst.hpp"
#include "stats/moments.hpp"
#include "trace/availbw_process.hpp"
#include "trace/synthetic_trace.hpp"
#include "trace/trace_io.hpp"

using namespace abw;

namespace {

int synth(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: tracegen synth out.csv [seconds] [hurst] [util]\n");
    return 2;
  }
  trace::SyntheticTraceConfig cfg;
  if (argc > 3) cfg.duration = sim::from_seconds(std::atof(argv[3]));
  if (argc > 4) cfg.hurst = std::atof(argv[4]);
  if (argc > 5) cfg.mean_utilization = std::atof(argv[5]);

  stats::Rng rng(2026);
  trace::PacketTrace tr = trace::synthesize_selfsimilar_trace(cfg, rng);
  trace::save_trace_csv(tr, argv[2]);
  std::printf("wrote %zu packets (%.1f s at %s, util %s, H=%.2f) to %s\n",
              tr.size(), sim::to_seconds(tr.end_time() - tr.start_time()),
              core::mbps(tr.capacity_bps()).c_str(),
              core::pct(tr.mean_utilization()).c_str(), cfg.hurst, argv[2]);
  return 0;
}

int analyze(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: tracegen analyze in.csv\n");
    return 2;
  }
  trace::PacketTrace tr = trace::load_trace_csv(argv[2]);
  std::printf("trace: %zu packets over %.1f s on a %s link, mean util %s\n\n",
              tr.size(), sim::to_seconds(tr.end_time() - tr.start_time()),
              core::mbps(tr.capacity_bps()).c_str(),
              core::pct(tr.mean_utilization()).c_str());

  trace::AvailBwProcess proc(tr);
  std::printf("mean avail-bw: %s\n\n", core::mbps(proc.mean_avail_bw()).c_str());

  core::Table table({"tau", "stddev A_tau", "5th-95th pct range"});
  for (double tau_ms : {1.0, 10.0, 100.0}) {
    sim::SimTime tau = sim::from_millis(tau_ms);
    auto [lo, hi] = proc.variation_range(tau, 0.05);
    char t[16];
    std::snprintf(t, sizeof t, "%.0f ms", tau_ms);
    table.row({t, core::mbps(proc.stddev_at(tau), 2),
               "[" + core::mbps(lo) + ", " + core::mbps(hi) + "]"});
  }
  table.print(std::cout);

  auto series = proc.series(sim::kMillisecond);
  if (series.size() >= 64) {
    std::printf("\nHurst (variance-time): %.2f\n",
                stats::hurst_variance_time(series));
    std::printf("autocorrelation at lags 1/4/16: %.2f / %.2f / %.2f\n",
                stats::autocorrelation(series, 1),
                stats::autocorrelation(series, 4),
                stats::autocorrelation(series, 16));
    std::printf("Ljung-Box serial correlation (20 lags): %s\n",
                stats::is_autocorrelated(series, 20) ? "significant"
                                                     : "not significant");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string cmd = argc > 1 ? argv[1] : "";
  if (cmd == "synth") return synth(argc, argv);
  if (cmd == "analyze") return analyze(argc, argv);
  // No args: demonstrate the full round trip through a temp file.
  std::printf("(no command given; demonstrating synth + analyze round trip)\n\n");
  const char* path = "/tmp/abw_tracegen_demo.csv";
  char* synth_argv[] = {argv[0], const_cast<char*>("synth"),
                        const_cast<char*>(path), const_cast<char*>("10")};
  if (int rc = synth(4, synth_argv); rc != 0) return rc;
  std::printf("\n");
  char* an_argv[] = {argv[0], const_cast<char*>("analyze"),
                     const_cast<char*>(path)};
  return analyze(3, an_argv);
}
