// Multi-bottleneck probing: build a 5-hop path where several links tie
// for the minimum avail-bw, locate the tight hop with BFind-style per-hop
// monitoring, and show the per-link vs end-to-end ground truth — the
// topology behind the paper's "multiple bottlenecks" pitfall (Fig. 4).
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "est/bfind.hpp"
#include "est/pathload.hpp"

int main() {
  using namespace abw;

  // 5 hops at 50 Mb/s; hops 0, 2, 4 each carry 25 Mb/s of one-hop
  // persistent Poisson cross traffic => three tight links with A = 25.
  core::MultiHopConfig cfg;
  cfg.hop_count = 5;
  cfg.loaded_hops = {0, 2, 4};
  cfg.seed = 7;
  auto sc = core::Scenario::multi_hop(cfg);

  sc.simulator().run_until(12 * sim::kSecond);
  sim::SimTime t0 = 2 * sim::kSecond, t1 = 12 * sim::kSecond;

  std::printf("5-hop path, one-hop persistent cross traffic on hops 0, 2, 4\n\n");
  core::Table links({"hop", "capacity", "utilization", "avail-bw"});
  for (std::size_t h = 0; h < sc.path().hop_count(); ++h) {
    const auto& m = sc.path().link(h).meter();
    links.row({std::to_string(h), core::mbps(sc.path().link(h).capacity_bps()),
               core::pct(m.utilization(t0, t1)), core::mbps(m.avail_bw(t0, t1))});
  }
  links.print(std::cout);
  std::printf("\nEnd-to-end avail-bw (Eq. 3, min over links): %s at tight hop %zu\n",
              core::mbps(sc.path().avail_bw(t0, t1)).c_str(),
              sc.path().tight_link(t0, t1));

  // Locate a tight hop with BFind's sender-side queue monitoring.
  est::BfindConfig bc;
  bc.initial_rate_bps = 10e6;
  bc.rate_step_bps = 5e6;
  bc.max_rate_bps = 60e6;
  bc.step_duration = 300 * sim::kMillisecond;
  est::Bfind bfind(bc);
  auto bf = bfind.estimate(sc.session());
  if (bf.valid) {
    std::printf("\nBFind: first persistent queue growth at hop %u, rate %s\n",
                bfind.flagged_hop(), core::mbps(bf.point_bps()).c_str());
  } else {
    std::printf("\nBFind: %s\n", bf.detail.c_str());
  }

  // End-to-end estimation: pathload sees the combined effect of all three
  // tight links (expect mild underestimation — the paper's point).
  est::PathloadConfig pc;
  pc.min_rate_bps = 2e6;
  pc.max_rate_bps = 49e6;
  est::Pathload pl(pc);
  auto e = pl.estimate(sc.session());
  if (e.valid) {
    std::printf("Pathload end-to-end: [%s, %s] vs per-link truth 25 Mbps\n",
                core::mbps(e.low_bps).c_str(), core::mbps(e.high_bps).c_str());
    std::printf("\nWith multiple tight links, probing streams interact with\n"
                "cross traffic at every loaded hop, so iterative probing\n"
                "tends to read LOW (the paper's seventh misconception).\n");
  } else {
    std::printf("Pathload failed: %s\n", e.detail.c_str());
  }
  return 0;
}
