// A guided tour of the ten fallacies and pitfalls: runs each of the
// paper's misconceptions as a miniature experiment and reports whether
// this library's simulated network exhibits the same effect.
//
// Usage:  fallacy_tour [id]      (no argument = run all ten)
#include <cstdio>
#include <cstdlib>

#include "core/fallacies.hpp"

int main(int argc, char** argv) {
  using namespace abw::core;
  constexpr std::uint64_t kSeed = 20041025;  // the paper's IMC date

  int only = 0;
  if (argc > 1) {
    only = std::atoi(argv[1]);
    if (only < 1 || only > kFallacyCount) {
      std::fprintf(stderr, "usage: %s [1..%d]\n", argv[0], kFallacyCount);
      return 2;
    }
  }

  std::printf("Ten Fallacies and Pitfalls on End-to-End Available Bandwidth\n"
              "Estimation (Jain & Dovrolis, IMC 2004) — live demonstrations\n");

  int failures = 0;
  for (int id = 1; id <= kFallacyCount; ++id) {
    if (only != 0 && id != only) continue;
    FallacyResult r = run_fallacy(id, kSeed);
    std::printf("\n%2d. [%s] %s\n", r.id, to_string(r.kind), r.title.c_str());
    std::printf("    %s\n", r.evidence.c_str());
    std::printf("    => %s\n", r.demonstrated ? "reproduced" : "NOT reproduced");
    if (!r.demonstrated) ++failures;
  }

  if (failures == 0) {
    std::printf("\nAll demonstrations reproduced the paper's claims.\n");
  } else {
    std::printf("\n%d demonstration(s) did not reproduce — inspect above.\n",
                failures);
  }
  return failures == 0 ? 0 : 1;
}
