// Batch experiment runner demo: a response-curve sweep where every rate
// point is an independent replication (fresh Simulator/Scenario/Rng),
// executed across a thread pool.
//
//   ./batch_sweep             # hardware_concurrency() threads
//   ./batch_sweep --jobs 4    # explicit thread count
//   ABW_JOBS=2 ./batch_sweep  # via environment
//
// The BatchRunner aggregates in submission order, so the printed curve is
// bit-identical no matter how many threads run it — this program verifies
// that on the spot by re-running the sweep serially and diffing.
#include <bit>
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "runner/batch.hpp"
#include "runner/cli.hpp"
#include "runner/bench_report.hpp"

int main(int argc, char** argv) {
  using namespace abw;
  std::size_t jobs = runner::jobs_from_cli(argc, argv);
  core::print_header(std::cout, "Parallel batch sweep demo",
                     "replication-level parallelism, deterministic output");
  std::printf("sweeping 8 rate points x 40 streams on %zu thread(s)\n\n", jobs);

  core::RatioCurveConfig rc;
  for (double r = 10e6; r <= 45e6 + 1; r += 5e6) rc.rates_bps.push_back(r);
  rc.streams_per_rate = 40;
  auto make = [](std::uint64_t seed) {
    core::SingleHopConfig cfg;
    cfg.model = core::CrossModel::kPoisson;
    cfg.seed = 500 + seed;
    return core::Scenario::single_hop(cfg);
  };

  double par_s = 0.0, ser_s = 0.0;
  double t0 = runner::monotonic_seconds();
  auto parallel = core::measure_ratio_curve_fresh(make, rc, jobs);
  par_s = runner::monotonic_seconds() - t0;
  t0 = runner::monotonic_seconds();
  auto serial = core::measure_ratio_curve_fresh(make, rc, 1);
  ser_s = runner::monotonic_seconds() - t0;

  core::Table table({"Ri (Mbps)", "mean Ro/Ri", "stddev", "streams"});
  for (const auto& p : parallel) {
    char r[16], m[16], s[16];
    std::snprintf(r, sizeof r, "%.1f", p.rate_bps / 1e6);
    std::snprintf(m, sizeof m, "%.4f", p.mean_ratio);
    std::snprintf(s, sizeof s, "%.4f", p.std_ratio);
    table.row({r, m, s, std::to_string(p.streams)});
  }
  table.print(std::cout);

  bool identical = parallel.size() == serial.size();
  for (std::size_t i = 0; identical && i < parallel.size(); ++i)
    identical = std::bit_cast<std::uint64_t>(parallel[i].mean_ratio) ==
                    std::bit_cast<std::uint64_t>(serial[i].mean_ratio) &&
                std::bit_cast<std::uint64_t>(parallel[i].std_ratio) ==
                    std::bit_cast<std::uint64_t>(serial[i].std_ratio) &&
                parallel[i].streams == serial[i].streams;

  std::printf("\nserial %.2f s, parallel(%zu) %.2f s, speedup %.2fx\n",
              ser_s, jobs, par_s, par_s > 0 ? ser_s / par_s : 0.0);
  std::printf("parallel output %s the serial output\n",
              identical ? "is bit-identical to" : "DIFFERS from");
  return identical ? 0 : 1;
}
