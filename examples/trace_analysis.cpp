// Trace analysis workflow: record a packet trace off a live simulated
// link, then analyze it offline — avail-bw process, sampling error of the
// sample mean (the paper's first pitfall), and Kelly's effective
// bandwidth as the burstiness-aware alternative the paper points to.
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "stats/effective_bw.hpp"
#include "stats/moments.hpp"
#include "trace/availbw_process.hpp"
#include "trace/packet_trace.hpp"
#include "traffic/aggregate.hpp"

int main() {
  using namespace abw;

  // A 100 Mb/s link loaded to ~60% by an aggregate of 24 Pareto ON-OFF
  // sources (self-similar by construction).
  sim::Simulator simu;
  sim::LinkConfig lc;
  lc.capacity_bps = 100e6;
  lc.queue_limit_bytes = 16 << 20;
  sim::Path path(simu, {lc});
  sim::CountingSink sink;
  path.set_receiver(&sink);

  trace::LinkTraceRecorder recorder(path.link(0));

  stats::Rng rng(2026);
  traffic::ParetoOnOffConfig per;
  per.peak_rate_bps = 20e6;
  traffic::AggregateOnOff agg(simu, path, 0, false, 1, rng, 60e6, 24, per);
  agg.start(0, 30 * sim::kSecond);
  std::printf("Recording 30 s of aggregate ON-OFF traffic on a 100 Mb/s link...\n");
  simu.run_until(30 * sim::kSecond);

  trace::PacketTrace tr = recorder.take();
  std::printf("Captured %zu packets, mean utilization %s\n\n", tr.size(),
              core::pct(tr.mean_utilization()).c_str());

  trace::AvailBwProcess proc(tr);
  double mean_a = proc.mean_avail_bw();

  // Pitfall #1 in numbers: spread of the k-sample Poisson sample mean.
  core::Table table({"tau", "k", "sample-mean spread (rel.)"});
  for (double tau_ms : {1.0, 10.0, 100.0}) {
    for (std::size_t k : {10u, 20u, 100u}) {
      stats::RunningStats means;
      for (int rep = 0; rep < 25; ++rep)
        means.add(stats::mean(
            proc.poisson_samples(k, sim::from_millis(tau_ms), rng)));
      char tau_s[16], k_s[16];
      std::snprintf(tau_s, sizeof tau_s, "%.0f ms", tau_ms);
      std::snprintf(k_s, sizeof k_s, "%zu", k);
      table.row({tau_s, k_s, core::pct(means.stddev() / mean_a)});
    }
  }
  table.print(std::cout);
  std::printf("(Even with PERFECT per-sample measurement, few samples at\n"
              "short time scales give large errors — the first pitfall.)\n\n");

  // Effective bandwidth: a definition that charges for burstiness.
  auto loads_mbps = proc.series(10 * sim::kMillisecond);
  for (double& a : loads_mbps) a = (100e6 - a) / 1e6;  // avail-bw -> load
  std::printf("Mean load:                %.1f Mbps\n", stats::mean(loads_mbps));
  for (double s : {0.01, 0.1, 0.5}) {
    std::printf("Effective bandwidth s=%.2f: %.1f Mbps  => effective avail-bw %.1f Mbps\n",
                s, stats::effective_bandwidth(loads_mbps, s),
                stats::effective_avail_bw(100.0, loads_mbps, s));
  }
  std::printf("(As s grows the effective demand approaches the peak rate;\n"
              "the paper cites this metric as the burstiness-aware\n"
              "alternative to the simple avail-bw definition.)\n");
  return 0;
}
