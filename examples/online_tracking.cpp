// online_tracking — the three streaming estimators tracking a time-varying
// avail-bw process through a mid-run capacity flap, with and without
// Gilbert–Elliott bursty loss.
//
// The paper's Fallacy 1 is treating avail-bw as a constant: A_tau(t) is a
// process, and a one-shot tool answers a question about an interval that
// is over by the time it answers.  This example runs the online trackers
// (est/online/) against a single-hop path whose tight link flaps from
// 50 Mb/s down to 30 Mb/s for 20 s mid-run — the avail-bw steps
// 25 -> 5 -> 25 Mb/s — and reports, per tracker:
//
//   * tracking lag: how long after each step until the belief is back
//     within 30% of the (measured, windowed) ground truth;
//   * RMS tracking error over the whole run;
//   * change points detected (Kalman-family trackers).
//
// Scenario B repeats the flap with bursty loss on the link, the regime in
// which one-shot tools are known to hang or return garbage (the fault
// suite); the online trackers must keep updating and re-converge.
//
//   online_tracking            # both scenarios, all three trackers
//   online_tracking -v         # also dump the per-tick estimate series
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "est/online/adaptive.hpp"
#include "est/online/kalman.hpp"
#include "est/online/online.hpp"
#include "est/online/tcp_rate.hpp"
#include "probe/stream_spec.hpp"
#include "sim/fault.hpp"
#include "tcp/tcp.hpp"

using namespace abw;
using abw::sim::kMillisecond;
using abw::sim::kSecond;
namespace online = abw::est::online;

namespace {

constexpr double kCapacity = 50e6;
constexpr double kCross = 25e6;
constexpr double kFlapCapacity = 30e6;
constexpr sim::SimTime kFlapStart = 20 * kSecond;
constexpr sim::SimTime kFlapLen = 20 * kSecond;
constexpr sim::SimTime kRunEnd = 60 * kSecond;
constexpr sim::SimTime kTick = 500 * kMillisecond;

bool g_verbose = false;

struct Sample {
  double t_s = 0.0;
  double estimate_bps = 0.0;  // NaN while the tracker has no belief
  double truth_bps = 0.0;
};

struct TrackStats {
  double rms_mbps = 0.0;
  double lag_flap_s = -1.0;     // re-convergence after the capacity drop
  double lag_recover_s = -1.0;  // ... and after the recovery
  std::uint64_t updates = 0;
  std::uint64_t change_points = 0;
};

core::Scenario make_scenario(bool bursty_loss) {
  core::SingleHopConfig cfg;
  cfg.capacity_bps = kCapacity;
  cfg.cross_rate_bps = kCross;
  cfg.model = core::CrossModel::kCbr;
  cfg.seed = 7;
  core::Scenario sc = core::Scenario::single_hop(cfg);
  sim::FaultInjector inj(sc.simulator());
  inj.flap(sc.path().link(0), kFlapStart, kFlapLen, kFlapCapacity);
  if (bursty_loss) {
    sim::LinkFaults faults;
    faults.gilbert.p_good_bad = 0.002;  // ~0.7% stationary loss in bursts
    faults.gilbert.p_bad_good = 0.3;
    sc.path().link(0).set_faults(faults);
  }
  return sc;
}

// First tick >= `from` at which the estimate settles within 30% of the
// measured truth, as seconds after `from`; -1 when it never does.
double settle_lag(const std::vector<Sample>& rows, double from_s, double to_s) {
  for (const Sample& r : rows) {
    if (r.t_s < from_s || r.t_s >= to_s) continue;
    if (!std::isfinite(r.estimate_bps)) continue;
    double tol = 0.3 * std::max(r.truth_bps, 2e6);
    if (std::fabs(r.estimate_bps - r.truth_bps) <= tol) return r.t_s - from_s;
  }
  return -1.0;
}

TrackStats summarize(const std::vector<Sample>& rows,
                     const online::OnlineEstimator& tracker,
                     std::uint64_t change_points) {
  if (g_verbose)
    for (const Sample& r : rows)
      std::printf("    t=%5.1f  est=%7.2f Mb/s  truth=%6.2f Mb/s\n", r.t_s,
                  r.estimate_bps / 1e6, r.truth_bps / 1e6);
  TrackStats st;
  double sq = 0.0;
  std::size_t n = 0;
  for (const Sample& r : rows) {
    if (r.t_s < 5.0 || !std::isfinite(r.estimate_bps)) continue;
    double e = (r.estimate_bps - r.truth_bps) / 1e6;
    sq += e * e;
    ++n;
  }
  st.rms_mbps = n > 0 ? std::sqrt(sq / static_cast<double>(n)) : -1.0;
  double flap_s = sim::to_seconds(kFlapStart);
  double recover_s = sim::to_seconds(kFlapStart + kFlapLen);
  st.lag_flap_s = settle_lag(rows, flap_s + 0.5, recover_s);
  st.lag_recover_s =
      settle_lag(rows, recover_s + 0.5, sim::to_seconds(kRunEnd));
  st.updates = tracker.belief().updates;
  st.change_points = change_points;
  return st;
}

// Advances the scenario tick by tick; `on_tick` drives the tracker (sends
// a stream, or nothing for passive tracking) and runs before sampling.
template <typename OnTick>
std::vector<Sample> track(core::Scenario& sc, online::OnlineEstimator& tracker,
                          OnTick on_tick) {
  std::vector<Sample> rows;
  sim::SimTime start = sc.simulator().now();
  for (sim::SimTime t = start + kTick; t <= start + kRunEnd; t += kTick) {
    on_tick();
    sc.simulator().run_until(t);
    Sample r;
    r.t_s = sim::to_seconds(t - start);
    r.estimate_bps = tracker.belief().estimate_bps;
    r.truth_bps = sc.ground_truth(t - kTick, t);
    rows.push_back(r);
  }
  return rows;
}

TrackStats run_kalman(bool bursty) {
  core::Scenario sc = make_scenario(bursty);
  online::KalmanTracker tracker;
  // Fixed rate cycle straddling the knee in both regimes (A is 25 then 5
  // Mb/s): every rate stays above the flapped avail-bw, most above both.
  const double rates[4] = {30e6, 40e6, 50e6, 60e6};
  int i = 0;
  auto rows = track(sc, tracker, [&] {
    auto res = sc.session().send_stream_now(
        probe::StreamSpec::periodic(rates[i++ % 4], 1200, 60));
    tracker.feed(res);
  });
  return summarize(rows, tracker, tracker.change_points());
}

TrackStats run_tcp(bool bursty) {
  core::Scenario sc = make_scenario(bursty);
  tcp::TcpReceiverHub hub;
  sc.session().demux().register_handler(sim::PacketType::kTcpData, &hub);
  tcp::TcpConfig tcfg;
  tcfg.measurement_flow = true;  // excluded from the ground-truth meter
  tcp::TcpConnection conn(sc.simulator(), sc.path(), hub, 9001, tcfg);
  online::TcpDeliveryRateTracker tracker;
  tracker.attach(conn);
  conn.start(sc.simulator().now() + 10 * kMillisecond);
  auto rows = track(sc, tracker, [] {});  // passive: ACK clock drives it
  return summarize(rows, tracker, 0);
}

TrackStats run_adaptive(bool bursty) {
  core::Scenario sc = make_scenario(bursty);
  online::AdaptiveProber prober;
  auto rows = track(sc, prober, [&] { prober.step(sc.session()); });
  return summarize(rows, prober, prober.tracker().change_points());
}

void print_row(const char* scenario, const char* tracker,
               const TrackStats& st) {
  auto lag = [](double v) {
    return v < 0 ? std::string("   n/a") : [&] {
      char buf[16];
      std::snprintf(buf, sizeof buf, "%5.1fs", v);
      return std::string(buf);
    }();
  };
  std::printf("  %-10s %-9s rms %6.2f Mb/s   lag(drop) %s   lag(recover) %s"
              "   updates %4llu   change-points %llu\n",
              scenario, tracker, st.rms_mbps, lag(st.lag_flap_s).c_str(),
              lag(st.lag_recover_s).c_str(),
              static_cast<unsigned long long>(st.updates),
              static_cast<unsigned long long>(st.change_points));
}

}  // namespace

int main(int argc, char** argv) {
  g_verbose = argc > 1 && std::string(argv[1]) == "-v";
  std::printf("online_tracking: capacity flap %g -> %g Mb/s over [%g, %g) s"
              " (avail-bw 25 -> 5 -> 25 Mb/s)\n",
              kCapacity / 1e6, kFlapCapacity / 1e6,
              sim::to_seconds(kFlapStart),
              sim::to_seconds(kFlapStart + kFlapLen));

  for (bool bursty : {false, true}) {
    const char* scenario = bursty ? "flap+loss" : "flap";
    std::printf("\n%s%s\n", scenario,
                bursty ? " (Gilbert-Elliott bursty loss on the tight link)"
                       : "");
    print_row(scenario, "kalman", run_kalman(bursty));
    print_row(scenario, "tcp-rate", run_tcp(bursty));
    print_row(scenario, "adaptive", run_adaptive(bursty));
  }
  std::printf(
      "\nNote: tcp-rate tracks the flow's achievable throughput, which the\n"
      "paper's Fig. 7 pitfall distinguishes from the avail-bw; against\n"
      "non-responsive CBR cross traffic the two coincide approximately.\n");
  return 0;
}
