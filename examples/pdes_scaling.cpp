// Parallel-DES scaling demo: a fig4-style multi-bottleneck path carrying
// a 12,000-flow aggregate in hybrid mode, partitioned into conservative
// time-window domains and run at 1, 2, and 4 worker threads.
//
//   ./pdes_scaling [hops] [flows_per_hop] [hybrid|packet] [domains]
//
// For each thread count the run reports wall-clock time, speedup over
// the serial run, per-domain event counts, and the cross-domain handoff
// total — and checks that the physics (ground truth, per-link counters)
// are bit-identical across thread counts, which is the engine's core
// guarantee (see DESIGN.md "Intra-simulation parallelism").
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/parallel_scenario.hpp"
#include "runner/bench_report.hpp"
#include "sim/link.hpp"

using namespace abw;

namespace {

struct RunResult {
  double wall_s = 0.0;
  double truth_bps = 0.0;
  std::uint64_t bytes_out = 0;  // summed over links: physics fingerprint
  std::uint64_t handoffs = 0;
  std::uint64_t windows = 0;
  std::vector<std::uint64_t> domain_events;
};

RunResult run(std::size_t hops, std::size_t flows, sim::SimMode mode,
              std::size_t domains, std::size_t threads) {
  core::ParallelScenarioConfig cfg;
  cfg.hop_count = hops;
  cfg.capacity_bps = 50e6;
  // 12k flows at ~2.5 kb/s each = 30 Mb/s aggregate per hop; hybrid mode
  // models the Poisson superposition as one exact aggregate source, so
  // the flow count costs nothing per event — the point of hybrid mode.
  // Packet mode instantiates every flow as a real generator instead.
  cfg.cross_rate_bps = 30e6 / static_cast<double>(flows);
  cfg.flows_per_hop = flows;
  cfg.mode = mode;
  cfg.model = core::CrossModel::kPoisson;
  cfg.propagation_delay = 5 * sim::kMillisecond;
  cfg.traffic_horizon = 30 * sim::kSecond;
  cfg.warmup = 500 * sim::kMillisecond;
  cfg.seed = 42;
  cfg.domains = domains;  // plan_partition picks the balanced cuts
  cfg.threads = threads;
  core::ParallelScenario sc(cfg);

  RunResult r;
  const double w0 = runner::monotonic_seconds();
  // A probing session against the loaded path: 10 periodic streams
  // bracketing the 20 Mb/s avail-bw, then run out the clock.
  const sim::SimTime t0 = sc.now();
  for (int k = 0; k < 10; ++k)
    sc.send_periodic_stream(12e6 + 2e6 * k, 1500, 100, sim::kMillisecond);
  sc.run_until(t0 + 10 * sim::kSecond);
  r.wall_s = runner::monotonic_seconds() - w0;

  r.truth_bps = sc.ground_truth(t0, sc.now());
  for (std::size_t g = 0; g < sc.parallel().hop_count(); ++g)
    r.bytes_out += sc.parallel().link(g).stats().bytes_out;
  r.handoffs = sc.parallel().handoffs();
  r.windows = sc.parallel().windows();
  for (std::size_t d = 0; d < sc.parallel().domain_count(); ++d)
    r.domain_events.push_back(sc.parallel().domain(d).stats().events);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t hops = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 8;
  const std::size_t flows =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1500;
  const sim::SimMode mode = argc > 3 && std::string(argv[3]) == "packet"
                                ? sim::SimMode::kPacket
                                : sim::SimMode::kHybrid;
  const std::size_t domains =
      argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 4;

  std::printf("Conservative parallel DES scaling demo\n");
  std::printf("  %zu hops @ 50 Mb/s, %zu flows/hop (%zu total), %s mode, "
              "%zu domains\n\n",
              hops, flows, hops * flows,
              mode == sim::SimMode::kHybrid ? "hybrid" : "packet", domains);

  RunResult serial;
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    if (threads > domains && threads != 1) continue;  // clamped: no new data
    RunResult r = run(hops, flows, mode, domains, threads);
    if (threads == 1) serial = r;
    std::printf("threads=%zu  wall %.3f s  speedup %.2fx  windows %llu  "
                "handoffs %llu\n",
                threads, r.wall_s, serial.wall_s / r.wall_s,
                static_cast<unsigned long long>(r.windows),
                static_cast<unsigned long long>(r.handoffs));
    std::printf("  per-domain events:");
    for (std::size_t d = 0; d < r.domain_events.size(); ++d)
      std::printf(" [%zu] %llu", d,
                  static_cast<unsigned long long>(r.domain_events[d]));
    std::printf("\n  ground truth %.2f Mb/s\n", r.truth_bps / 1e6);
    const bool same = r.truth_bps == serial.truth_bps &&
                      r.bytes_out == serial.bytes_out &&
                      r.handoffs == serial.handoffs;
    std::printf("  physics vs serial: %s\n\n",
                same ? "IDENTICAL" : "DIVERGED (bug!)");
    if (!same) return 1;
  }
  std::printf("Per-domain event counts, handoffs, and every link counter\n"
              "are bit-identical at all thread counts: the conservative\n"
              "window protocol trades no determinism for parallelism.\n");
  return 0;
}
