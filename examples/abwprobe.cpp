// abwprobe — a command-line avail-bw measurement tool over a simulated
// path.  The shape a downstream user would actually run:
//
//   abwprobe --tool=pathload --model=pareto --capacity=50M --cross=25M
//   abwprobe --tool=spruce --hops=3 --seed=7
//   abwprobe --list
//
// Live measurement (against a running abwd daemon, examples/abwd.cpp):
//
//   abwprobe --transport=udp --peer=127.0.0.1:9877 --tool=spruce --capacity=50M
//
// Flags (all optional):
//   --tool=NAME        estimator (default pathload); --list prints all
//   --model=MODEL      cbr | poisson | pareto        (default poisson)
//   --capacity=RATE    per-hop capacity, e.g. 50M    (default 50M)
//   --cross=RATE       mean cross rate per tight hop (default 25M)
//   --hops=N           tight links, one-hop cross    (default 1)
//   --seed=N           RNG seed                      (default 1)
//   --loss=P           random per-hop loss prob      (default 0)
//   --skew-ppm=D       receiver clock drift in ppm   (default 0)
//   --trace=FILE       write a JSONL event trace (obs/) to FILE
//   --metrics=FILE     write a JSON metrics snapshot (obs/) to FILE
//   --transport=KIND   sim (default) | udp
//   --peer=HOST:PORT   abwd address (udp transport)
//   --budget=N         probe-packet budget (0 = unlimited)
//   --deadline=S       measurement deadline in seconds (0 = none)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "net/udp_transport.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

using namespace abw;

namespace {

// Parses "50M", "1.5G", "2500k", or plain bits/s.
double parse_rate(const std::string& v) {
  char suffix = v.empty() ? '\0' : v.back();
  double mult = 1.0;
  std::string num = v;
  if (suffix == 'k' || suffix == 'K') mult = 1e3;
  if (suffix == 'm' || suffix == 'M') mult = 1e6;
  if (suffix == 'g' || suffix == 'G') mult = 1e9;
  if (mult != 1.0) num = v.substr(0, v.size() - 1);
  return std::stod(num) * mult;
}

struct Args {
  std::string tool = "pathload";
  std::string model = "poisson";
  double capacity = 50e6;
  double cross = 25e6;
  std::size_t hops = 1;
  std::uint64_t seed = 1;
  double loss = 0.0;
  double skew_ppm = 0.0;
  std::string trace_path;
  std::string metrics_path;
  std::string transport = "sim";
  std::string peer;
  std::uint64_t budget = 0;
  double deadline_s = 0.0;
  bool list = false;
};

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eat = [&](const char* key, std::string& out) {
      std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) {
        out = arg.substr(prefix.size());
        return true;
      }
      return false;
    };
    std::string v;
    if (arg == "--list") a.list = true;
    else if (eat("--tool", v)) a.tool = v;
    else if (eat("--model", v)) a.model = v;
    else if (eat("--capacity", v)) a.capacity = parse_rate(v);
    else if (eat("--cross", v)) a.cross = parse_rate(v);
    else if (eat("--hops", v)) a.hops = std::stoul(v);
    else if (eat("--seed", v)) a.seed = std::stoull(v);
    else if (eat("--loss", v)) a.loss = std::stod(v);
    else if (eat("--skew-ppm", v)) a.skew_ppm = std::stod(v);
    else if (eat("--trace", v)) a.trace_path = v;
    else if (eat("--metrics", v)) a.metrics_path = v;
    else if (eat("--transport", v)) a.transport = v;
    else if (eat("--peer", v)) a.peer = v;
    else if (eat("--budget", v)) a.budget = std::stoull(v);
    else if (eat("--deadline", v)) a.deadline_s = std::stod(v);
    else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

core::CrossModel parse_model(const std::string& m) {
  if (m == "cbr") return core::CrossModel::kCbr;
  if (m == "poisson") return core::CrossModel::kPoisson;
  if (m == "pareto") return core::CrossModel::kParetoOnOff;
  throw std::invalid_argument("unknown model '" + m + "' (cbr|poisson|pareto)");
}

// Live measurement: probe a real abwd daemon over UDP instead of a
// simulated path.  No ground truth here — that is the whole point of the
// simulator — only the tool's estimate and its cost.
int run_live(const Args& args) {
  auto colon = args.peer.rfind(':');
  if (colon == std::string::npos)
    throw std::invalid_argument("--peer must be HOST:PORT");
  net::UdpTransportConfig tcfg;
  tcfg.host = args.peer.substr(0, colon);
  tcfg.port = static_cast<std::uint16_t>(std::stoul(args.peer.substr(colon + 1)));
  tcfg.advertise_budget_packets = args.budget;
  tcfg.advertise_deadline = sim::from_seconds(args.deadline_s);
  net::UdpTransport transport(tcfg);

  std::unique_ptr<obs::JsonlTraceSink> trace;
  if (!args.trace_path.empty())
    trace = std::make_unique<obs::JsonlTraceSink>(args.trace_path);
  obs::MetricsRegistry metrics;

  core::ToolOptions opts;
  opts.tight_capacity_bps = args.capacity;
  opts.min_rate_bps = 0.04 * args.capacity;
  opts.max_rate_bps = 0.98 * args.capacity;
  opts.limits.max_probe_packets = args.budget;
  opts.limits.deadline = sim::from_seconds(args.deadline_s);
  opts.trace = trace.get();
  if (!args.metrics_path.empty()) opts.metrics = &metrics;
  stats::Rng rng(args.seed ^ 0xabcdef);
  auto tool = core::make_estimator(args.tool, opts, rng);

  std::printf("probing %s over udp (session budget=%llu deadline=%.1fs)\n",
              args.peer.c_str(), static_cast<unsigned long long>(args.budget),
              args.deadline_s);
  est::Estimate e = tool->estimate(transport);
  if (!transport.connected())
    std::fprintf(stderr, "warning: daemon at %s never answered\n",
                 args.peer.c_str());

  if (trace) trace->flush();
  if (!args.metrics_path.empty()) {
    std::ofstream out(args.metrics_path);
    if (!out) throw std::runtime_error("cannot open " + args.metrics_path);
    metrics.write_json(out, /*include_timers=*/true);
  }

  if (!e.valid) {
    std::printf("%s: estimation failed: %s\n", args.tool.c_str(),
                e.detail.c_str());
    return 1;
  }
  if (e.low_bps == e.high_bps) {
    std::printf("%s estimate: %s\n", args.tool.c_str(),
                core::mbps(e.point_bps()).c_str());
  } else {
    std::printf("%s estimate: [%s, %s]\n", args.tool.c_str(),
                core::mbps(e.low_bps).c_str(), core::mbps(e.high_bps).c_str());
  }
  std::printf("overhead: %llu packets (%llu bytes), latency %.2f s\n",
              static_cast<unsigned long long>(e.cost.packets),
              static_cast<unsigned long long>(e.cost.bytes),
              sim::to_seconds(e.cost.elapsed()));
  if (!e.detail.empty()) std::printf("detail: %s\n", e.detail.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse(argc, argv, args)) return 2;

  if (args.list) {
    // Registry v2: the structured table, not just names.
    std::printf("available tools:\n");
    std::printf("  %-10s %-10s %-10s %-8s %s\n", "name", "class", "needs Ct",
                "pkt size", "repetitions");
    for (const auto& t : core::available_tool_info()) {
      std::string reps = t.default_repetitions == 0
                             ? std::string("-")
                             : std::to_string(t.default_repetitions);
      std::printf("  %-10s %-10s %-10s %-8u %s\n", t.name.c_str(),
                  t.probing_class == est::ProbingClass::kDirect ? "direct"
                                                                : "iterative",
                  t.requires_tight_capacity ? "yes" : "no",
                  t.default_packet_size, reps.c_str());
    }
    return 0;
  }

  if (args.transport == "udp") {
    try {
      return run_live(args);
    } catch (const std::exception& ex) {
      std::fprintf(stderr, "error: %s\n", ex.what());
      return 2;
    }
  }
  if (args.transport != "sim") {
    std::fprintf(stderr, "unknown transport '%s' (sim|udp)\n",
                 args.transport.c_str());
    return 2;
  }

  try {
    core::Scenario sc = [&] {
      if (args.hops <= 1) {
        core::SingleHopConfig cfg;
        cfg.capacity_bps = args.capacity;
        cfg.cross_rate_bps = args.cross;
        cfg.model = parse_model(args.model);
        cfg.seed = args.seed;
        cfg.random_loss_prob = args.loss;
        return core::Scenario::single_hop(cfg);
      }
      core::MultiHopConfig cfg;
      cfg.hop_count = args.hops;
      cfg.loaded_hops.clear();
      for (std::size_t h = 0; h < args.hops; ++h) cfg.loaded_hops.push_back(h);
      cfg.capacity_bps = args.capacity;
      cfg.cross_rate_bps = args.cross;
      cfg.model = parse_model(args.model);
      cfg.seed = args.seed;
      cfg.random_loss_prob = args.loss;
      return core::Scenario::multi_hop(cfg);
    }();

    if (args.skew_ppm != 0.0) {
      probe::ReceiverClock clock;
      clock.drift_ppm = args.skew_ppm;
      sc.session().set_receiver_clock(clock);
    }

    // Observability: the trace sink sees every layer (links, session,
    // tool decisions); metrics collect tool counters plus a final
    // scenario snapshot.  Both off (null) unless the flags are given.
    std::unique_ptr<obs::JsonlTraceSink> trace;
    if (!args.trace_path.empty()) {
      trace = std::make_unique<obs::JsonlTraceSink>(args.trace_path);
      sc.set_trace(trace.get());
    }
    obs::MetricsRegistry metrics;

    core::ToolOptions opts;
    opts.tight_capacity_bps = args.capacity;
    opts.min_rate_bps = 0.04 * args.capacity;
    opts.max_rate_bps = 0.98 * args.capacity;
    opts.trace = trace.get();
    if (!args.metrics_path.empty()) {
      opts.metrics = &metrics;
      sc.simulator().set_metrics(&metrics);
    }
    stats::Rng rng(args.seed ^ 0xabcdef);
    auto tool = core::make_estimator(args.tool, opts, rng);

    std::printf("path: %zu hop(s) x %s, %s cross %s  =>  nominal A = %s\n",
                std::max<std::size_t>(args.hops, 1),
                core::mbps(args.capacity).c_str(), args.model.c_str(),
                core::mbps(args.cross).c_str(),
                core::mbps(sc.nominal_avail_bw()).c_str());

    est::Estimate e = tool->estimate(sc.transport());

    if (trace) {
      trace->flush();
      std::printf("trace: %llu events -> %s\n",
                  static_cast<unsigned long long>(trace->lines()),
                  args.trace_path.c_str());
    }
    if (!args.metrics_path.empty()) {
      sc.snapshot_metrics(metrics);
      std::ofstream out(args.metrics_path);
      if (!out) throw std::runtime_error("cannot open " + args.metrics_path);
      metrics.write_json(out, /*include_timers=*/true);
      std::printf("metrics snapshot -> %s\n", args.metrics_path.c_str());
    }

    if (!e.valid) {
      std::printf("%s: estimation failed: %s\n", args.tool.c_str(),
                  e.detail.c_str());
      return 1;
    }
    double truth = sc.ground_truth(e.cost.first_send, e.cost.last_activity);
    if (e.low_bps == e.high_bps) {
      std::printf("%s estimate: %s\n", args.tool.c_str(),
                  core::mbps(e.point_bps()).c_str());
    } else {
      std::printf("%s estimate: [%s, %s]\n", args.tool.c_str(),
                  core::mbps(e.low_bps).c_str(), core::mbps(e.high_bps).c_str());
    }
    std::printf("ground truth during measurement: %s\n"
                "overhead: %llu packets (%llu bytes), latency %.2f s\n",
                core::mbps(truth).c_str(),
                static_cast<unsigned long long>(e.cost.packets),
                static_cast<unsigned long long>(e.cost.bytes),
                sim::to_seconds(e.cost.elapsed()));
    if (!e.detail.empty()) std::printf("detail: %s\n", e.detail.c_str());
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 2;
  }
  return 0;
}
