// Robustness matrix: every registry tool crossed with every impairment
// the fault-injection layer provides (sim/fault.hpp), run as a
// fault-tolerant parallel grid.
//
//   ./robustness_matrix                 # hardware_concurrency() threads
//   ./robustness_matrix --jobs 4        # explicit thread count
//   ./robustness_matrix --metrics=FILE  # per-cell metrics snapshots (JSON)
//
// Each cell builds a fresh single-hop scenario (Ct = 50 Mb/s, A = 25
// Mb/s), applies one impairment — Gilbert-Elliott bursty loss, Bernoulli
// loss, reordering + duplication, a mid-measurement 10x capacity flap —
// and runs one tool under hard EstimatorLimits.  The interesting output
// is the right-hand columns: under impairments a hardened tool either
// still estimates, or returns a structured abort (probe-budget /
// deadline / insufficient-data) — never a hang, a crash, or a silent
// garbage number.  Cells run through BatchRunner::map_cells_seeded, so a
// cell that throws is reported as an error record without discarding the
// rest of the grid.
#include <cstdio>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "est/estimator.hpp"
#include "obs/metrics.hpp"
#include "runner/batch.hpp"
#include "runner/cli.hpp"
#include "sim/fault.hpp"

namespace {

using namespace abw;

struct Impairment {
  const char* name;
  // Applied to the freshly built scenario before the tool runs.
  std::function<void(core::Scenario&)> apply;
};

std::vector<Impairment> impairments() {
  std::vector<Impairment> out;
  out.push_back({"clean", [](core::Scenario&) {}});
  out.push_back({"bernoulli-2%", [](core::Scenario& sc) {
                   // Bernoulli loss lives in LinkConfig; equivalent here:
                   // a Gilbert-Elliott chain pinned to one state.
                   sim::LinkFaults f;
                   f.gilbert.p_good_bad = 1.0;
                   f.gilbert.p_bad_good = 0.0;
                   f.gilbert.loss_bad = 0.02;
                   sc.path().link(0).set_faults(f);
                 }});
  out.push_back({"ge-burst-30%", [](core::Scenario& sc) {
                   // Stationary loss p_gb/(p_gb+p_bg) = 30%, mean burst
                   // 1/p_bg ~ 28 packets: heavy, clustered loss.
                   sim::LinkFaults f;
                   f.gilbert.p_good_bad = 0.015;
                   f.gilbert.p_bad_good = 0.035;
                   sc.path().link(0).set_faults(f);
                 }});
  out.push_back({"reorder+dup", [](core::Scenario& sc) {
                   sim::LinkFaults f;
                   f.reorder_prob = 0.05;
                   f.reorder_extra_max = 2 * sim::kMillisecond;
                   f.duplicate_prob = 0.02;
                   sc.path().link(0).set_faults(f);
                 }});
  out.push_back({"flap-10x", [](core::Scenario& sc) {
                   // Mid-measurement the tight link drops to a tenth of
                   // its capacity for 10 s, then recovers.
                   sim::FaultInjector inj(sc.simulator());
                   sim::Link& l = sc.path().link(0);
                   inj.flap(l, sc.simulator().now() + 5 * sim::kSecond,
                            10 * sim::kSecond, l.capacity_bps() / 10.0);
                 }});
  return out;
}

struct Cell {
  double est_mbps = 0.0;
  bool valid = false;
  std::string note;        // abort reason / detail when invalid
  double truth_mbps = 0.0; // ground truth over the measurement window
  std::string metrics_json;  // per-cell snapshot when --metrics is given
};

Cell run_cell(const core::ToolInfo& tool, const Impairment& imp,
              std::uint64_t seed, bool collect_metrics) {
  core::SingleHopConfig cfg;
  cfg.seed = seed;
  core::Scenario sc = core::Scenario::single_hop(cfg);
  imp.apply(sc);

  core::ToolOptions opt;
  // Registry v2: feed Ct only to the tools whose info says they need it.
  if (tool.requires_tight_capacity) opt.tight_capacity_bps = cfg.capacity_bps;
  opt.max_rate_bps = cfg.capacity_bps;
  // The hard bounds this PR is about: no tool may consume more than 60 s
  // of simulated time or 60k probe packets, whatever the impairment does.
  opt.limits.deadline = 60 * sim::kSecond;
  opt.limits.max_probe_packets = 60000;

  // One registry per cell: each cell is an independent world, so the
  // snapshots stay byte-identical regardless of --jobs.
  obs::MetricsRegistry metrics;
  if (collect_metrics) opt.metrics = &metrics;

  auto est = core::make_estimator(tool.name, opt, sc.rng());
  sim::SimTime t1 = sc.simulator().now();
  est::Estimate e = est->estimate(sc.session());
  sim::SimTime t2 = sc.simulator().now();

  Cell c;
  c.valid = e.valid;
  c.truth_mbps = sc.ground_truth(t1, t2) / 1e6;
  if (e.valid) {
    c.est_mbps = e.point_bps() / 1e6;
  } else {
    c.note = e.abort != est::AbortReason::kNone
                 ? std::string(est::abort_reason_name(e.abort))
                 : "invalid";
  }
  if (collect_metrics) {
    sc.snapshot_metrics(metrics);
    c.metrics_json = metrics.to_json(/*include_timers=*/false);
  }
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = runner::jobs_from_cli(argc, argv);
  std::string metrics_path;
  try {
    metrics_path = runner::parse_string_flag(argc, argv, "metrics", "");
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  const bool collect_metrics = !metrics_path.empty();
  core::print_header(std::cout, "Robustness matrix",
                     "tool x impairment grid under hard estimator limits");

  const std::vector<core::ToolInfo>& tools = core::available_tool_info();
  std::vector<Impairment> imps = impairments();
  std::printf("%zu tools x %zu impairments on %zu thread(s)\n\n",
              tools.size(), imps.size(), jobs);

  runner::BatchRunner pool(jobs);
  runner::RetryPolicy retry;
  retry.max_retries = 1;  // a failing cell gets one fresh-seed retry
  auto cells = pool.map_cells_seeded(
      tools.size() * imps.size(), /*base_seed=*/4242,
      [&](std::size_t i, std::uint64_t seed) {
        return run_cell(tools[i / imps.size()], imps[i % imps.size()], seed,
                        collect_metrics);
      },
      retry);

  std::vector<std::string> headers = {"tool"};
  for (const auto& imp : imps) headers.push_back(imp.name);
  core::Table table(headers);
  std::size_t errors = 0, aborts = 0;
  for (std::size_t t = 0; t < tools.size(); ++t) {
    std::vector<std::string> row = {tools[t].name};
    for (std::size_t i = 0; i < imps.size(); ++i) {
      const auto& cell = cells[t * imps.size() + i];
      if (!cell.ok) {
        ++errors;
        row.push_back("ERROR: " + cell.error);
      } else if (!cell.value.valid) {
        ++aborts;
        row.push_back("(" + cell.value.note + ")");
      } else {
        char buf[48];
        std::snprintf(buf, sizeof buf, "%.1f / %.1f", cell.value.est_mbps,
                      cell.value.truth_mbps);
        row.push_back(buf);
      }
    }
    table.row(row);
  }
  table.print(std::cout);

  if (collect_metrics) {
    // One JSON object keyed "tool/impairment", cells in grid order —
    // deterministic for a fixed base seed, independent of --jobs.
    std::ofstream out(metrics_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
      return 2;
    }
    out << "{";
    bool first = true;
    for (std::size_t t = 0; t < tools.size(); ++t)
      for (std::size_t i = 0; i < imps.size(); ++i) {
        const auto& cell = cells[t * imps.size() + i];
        if (!cell.ok || cell.value.metrics_json.empty()) continue;
        if (!first) out << ",";
        first = false;
        out << "\n\"" << tools[t].name << "/" << imps[i].name
            << "\":" << cell.value.metrics_json;
      }
    out << "\n}\n";
    std::printf("\nper-cell metrics snapshots -> %s\n", metrics_path.c_str());
  }

  std::printf(
      "\ncells show estimate / ground-truth Mbps over the measurement "
      "window;\n(reason) marks a structured abort, ERROR a cell whose "
      "attempts all threw.\n%zu structured aborts, %zu error cells out of "
      "%zu.\n",
      aborts, errors, cells.size());
  return 0;
}
