# Empty compiler generated dependencies file for fft_fgn_test.
# This may be replaced when dependencies are built.
