file(REMOVE_RECURSE
  "CMakeFiles/fft_fgn_test.dir/fft_fgn_test.cpp.o"
  "CMakeFiles/fft_fgn_test.dir/fft_fgn_test.cpp.o.d"
  "fft_fgn_test"
  "fft_fgn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fft_fgn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
