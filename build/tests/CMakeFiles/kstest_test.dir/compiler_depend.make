# Empty compiler generated dependencies file for kstest_test.
# This may be replaced when dependencies are built.
