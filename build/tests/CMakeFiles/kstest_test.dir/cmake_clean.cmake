file(REMOVE_RECURSE
  "CMakeFiles/kstest_test.dir/kstest_test.cpp.o"
  "CMakeFiles/kstest_test.dir/kstest_test.cpp.o.d"
  "kstest_test"
  "kstest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kstest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
