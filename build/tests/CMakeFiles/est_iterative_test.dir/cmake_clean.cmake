file(REMOVE_RECURSE
  "CMakeFiles/est_iterative_test.dir/est_iterative_test.cpp.o"
  "CMakeFiles/est_iterative_test.dir/est_iterative_test.cpp.o.d"
  "est_iterative_test"
  "est_iterative_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_iterative_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
