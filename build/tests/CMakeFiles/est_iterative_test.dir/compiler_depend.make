# Empty compiler generated dependencies file for est_iterative_test.
# This may be replaced when dependencies are built.
