
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/est_iterative_test.cpp" "tests/CMakeFiles/est_iterative_test.dir/est_iterative_test.cpp.o" "gcc" "tests/CMakeFiles/est_iterative_test.dir/est_iterative_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/abw_core.dir/DependInfo.cmake"
  "/root/repo/build/src/est/CMakeFiles/abw_est.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/abw_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/abw_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/probe/CMakeFiles/abw_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/abw_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/abw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/abw_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
