file(REMOVE_RECURSE
  "CMakeFiles/est_corner_test.dir/est_corner_test.cpp.o"
  "CMakeFiles/est_corner_test.dir/est_corner_test.cpp.o.d"
  "est_corner_test"
  "est_corner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_corner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
