# Empty dependencies file for est_corner_test.
# This may be replaced when dependencies are built.
