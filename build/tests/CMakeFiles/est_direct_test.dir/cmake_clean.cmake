file(REMOVE_RECURSE
  "CMakeFiles/est_direct_test.dir/est_direct_test.cpp.o"
  "CMakeFiles/est_direct_test.dir/est_direct_test.cpp.o.d"
  "est_direct_test"
  "est_direct_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/est_direct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
