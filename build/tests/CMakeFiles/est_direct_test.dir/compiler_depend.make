# Empty compiler generated dependencies file for est_direct_test.
# This may be replaced when dependencies are built.
