file(REMOVE_RECURSE
  "CMakeFiles/probe_test.dir/probe_test.cpp.o"
  "CMakeFiles/probe_test.dir/probe_test.cpp.o.d"
  "probe_test"
  "probe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/probe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
