# Empty dependencies file for abw_sim.
# This may be replaced when dependencies are built.
