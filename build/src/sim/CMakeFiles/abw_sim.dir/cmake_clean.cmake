file(REMOVE_RECURSE
  "CMakeFiles/abw_sim.dir/link.cpp.o"
  "CMakeFiles/abw_sim.dir/link.cpp.o.d"
  "CMakeFiles/abw_sim.dir/node.cpp.o"
  "CMakeFiles/abw_sim.dir/node.cpp.o.d"
  "CMakeFiles/abw_sim.dir/path.cpp.o"
  "CMakeFiles/abw_sim.dir/path.cpp.o.d"
  "CMakeFiles/abw_sim.dir/scheduler.cpp.o"
  "CMakeFiles/abw_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/abw_sim.dir/simulator.cpp.o"
  "CMakeFiles/abw_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/abw_sim.dir/util_meter.cpp.o"
  "CMakeFiles/abw_sim.dir/util_meter.cpp.o.d"
  "libabw_sim.a"
  "libabw_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abw_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
