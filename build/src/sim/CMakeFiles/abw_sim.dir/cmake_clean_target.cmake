file(REMOVE_RECURSE
  "libabw_sim.a"
)
