file(REMOVE_RECURSE
  "CMakeFiles/abw_est.dir/bfind.cpp.o"
  "CMakeFiles/abw_est.dir/bfind.cpp.o.d"
  "CMakeFiles/abw_est.dir/capacity.cpp.o"
  "CMakeFiles/abw_est.dir/capacity.cpp.o.d"
  "CMakeFiles/abw_est.dir/direct.cpp.o"
  "CMakeFiles/abw_est.dir/direct.cpp.o.d"
  "CMakeFiles/abw_est.dir/igi_ptr.cpp.o"
  "CMakeFiles/abw_est.dir/igi_ptr.cpp.o.d"
  "CMakeFiles/abw_est.dir/pathchirp.cpp.o"
  "CMakeFiles/abw_est.dir/pathchirp.cpp.o.d"
  "CMakeFiles/abw_est.dir/pathload.cpp.o"
  "CMakeFiles/abw_est.dir/pathload.cpp.o.d"
  "CMakeFiles/abw_est.dir/schirp.cpp.o"
  "CMakeFiles/abw_est.dir/schirp.cpp.o.d"
  "CMakeFiles/abw_est.dir/spruce.cpp.o"
  "CMakeFiles/abw_est.dir/spruce.cpp.o.d"
  "CMakeFiles/abw_est.dir/topp.cpp.o"
  "CMakeFiles/abw_est.dir/topp.cpp.o.d"
  "libabw_est.a"
  "libabw_est.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abw_est.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
