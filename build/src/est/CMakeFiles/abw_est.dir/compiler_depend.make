# Empty compiler generated dependencies file for abw_est.
# This may be replaced when dependencies are built.
