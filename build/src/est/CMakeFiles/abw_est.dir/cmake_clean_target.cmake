file(REMOVE_RECURSE
  "libabw_est.a"
)
