
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/est/bfind.cpp" "src/est/CMakeFiles/abw_est.dir/bfind.cpp.o" "gcc" "src/est/CMakeFiles/abw_est.dir/bfind.cpp.o.d"
  "/root/repo/src/est/capacity.cpp" "src/est/CMakeFiles/abw_est.dir/capacity.cpp.o" "gcc" "src/est/CMakeFiles/abw_est.dir/capacity.cpp.o.d"
  "/root/repo/src/est/direct.cpp" "src/est/CMakeFiles/abw_est.dir/direct.cpp.o" "gcc" "src/est/CMakeFiles/abw_est.dir/direct.cpp.o.d"
  "/root/repo/src/est/igi_ptr.cpp" "src/est/CMakeFiles/abw_est.dir/igi_ptr.cpp.o" "gcc" "src/est/CMakeFiles/abw_est.dir/igi_ptr.cpp.o.d"
  "/root/repo/src/est/pathchirp.cpp" "src/est/CMakeFiles/abw_est.dir/pathchirp.cpp.o" "gcc" "src/est/CMakeFiles/abw_est.dir/pathchirp.cpp.o.d"
  "/root/repo/src/est/pathload.cpp" "src/est/CMakeFiles/abw_est.dir/pathload.cpp.o" "gcc" "src/est/CMakeFiles/abw_est.dir/pathload.cpp.o.d"
  "/root/repo/src/est/schirp.cpp" "src/est/CMakeFiles/abw_est.dir/schirp.cpp.o" "gcc" "src/est/CMakeFiles/abw_est.dir/schirp.cpp.o.d"
  "/root/repo/src/est/spruce.cpp" "src/est/CMakeFiles/abw_est.dir/spruce.cpp.o" "gcc" "src/est/CMakeFiles/abw_est.dir/spruce.cpp.o.d"
  "/root/repo/src/est/topp.cpp" "src/est/CMakeFiles/abw_est.dir/topp.cpp.o" "gcc" "src/est/CMakeFiles/abw_est.dir/topp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/probe/CMakeFiles/abw_probe.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/abw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/abw_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
