# Empty compiler generated dependencies file for abw_probe.
# This may be replaced when dependencies are built.
