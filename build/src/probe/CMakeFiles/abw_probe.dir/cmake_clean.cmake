file(REMOVE_RECURSE
  "CMakeFiles/abw_probe.dir/session.cpp.o"
  "CMakeFiles/abw_probe.dir/session.cpp.o.d"
  "CMakeFiles/abw_probe.dir/stream_result.cpp.o"
  "CMakeFiles/abw_probe.dir/stream_result.cpp.o.d"
  "CMakeFiles/abw_probe.dir/stream_spec.cpp.o"
  "CMakeFiles/abw_probe.dir/stream_spec.cpp.o.d"
  "libabw_probe.a"
  "libabw_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abw_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
