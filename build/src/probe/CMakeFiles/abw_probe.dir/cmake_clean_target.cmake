file(REMOVE_RECURSE
  "libabw_probe.a"
)
