
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/probe/session.cpp" "src/probe/CMakeFiles/abw_probe.dir/session.cpp.o" "gcc" "src/probe/CMakeFiles/abw_probe.dir/session.cpp.o.d"
  "/root/repo/src/probe/stream_result.cpp" "src/probe/CMakeFiles/abw_probe.dir/stream_result.cpp.o" "gcc" "src/probe/CMakeFiles/abw_probe.dir/stream_result.cpp.o.d"
  "/root/repo/src/probe/stream_spec.cpp" "src/probe/CMakeFiles/abw_probe.dir/stream_spec.cpp.o" "gcc" "src/probe/CMakeFiles/abw_probe.dir/stream_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/abw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/abw_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
