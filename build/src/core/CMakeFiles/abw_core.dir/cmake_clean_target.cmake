file(REMOVE_RECURSE
  "libabw_core.a"
)
