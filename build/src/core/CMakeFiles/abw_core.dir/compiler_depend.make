# Empty compiler generated dependencies file for abw_core.
# This may be replaced when dependencies are built.
