file(REMOVE_RECURSE
  "CMakeFiles/abw_core.dir/experiment.cpp.o"
  "CMakeFiles/abw_core.dir/experiment.cpp.o.d"
  "CMakeFiles/abw_core.dir/fallacies.cpp.o"
  "CMakeFiles/abw_core.dir/fallacies.cpp.o.d"
  "CMakeFiles/abw_core.dir/monitor.cpp.o"
  "CMakeFiles/abw_core.dir/monitor.cpp.o.d"
  "CMakeFiles/abw_core.dir/registry.cpp.o"
  "CMakeFiles/abw_core.dir/registry.cpp.o.d"
  "CMakeFiles/abw_core.dir/report.cpp.o"
  "CMakeFiles/abw_core.dir/report.cpp.o.d"
  "CMakeFiles/abw_core.dir/scenario.cpp.o"
  "CMakeFiles/abw_core.dir/scenario.cpp.o.d"
  "libabw_core.a"
  "libabw_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abw_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
