
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/acf.cpp" "src/stats/CMakeFiles/abw_stats.dir/acf.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/acf.cpp.o.d"
  "/root/repo/src/stats/cdf.cpp" "src/stats/CMakeFiles/abw_stats.dir/cdf.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/cdf.cpp.o.d"
  "/root/repo/src/stats/cusum.cpp" "src/stats/CMakeFiles/abw_stats.dir/cusum.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/cusum.cpp.o.d"
  "/root/repo/src/stats/effective_bw.cpp" "src/stats/CMakeFiles/abw_stats.dir/effective_bw.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/effective_bw.cpp.o.d"
  "/root/repo/src/stats/fft.cpp" "src/stats/CMakeFiles/abw_stats.dir/fft.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/fft.cpp.o.d"
  "/root/repo/src/stats/fgn.cpp" "src/stats/CMakeFiles/abw_stats.dir/fgn.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/fgn.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/abw_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/hurst.cpp" "src/stats/CMakeFiles/abw_stats.dir/hurst.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/hurst.cpp.o.d"
  "/root/repo/src/stats/kstest.cpp" "src/stats/CMakeFiles/abw_stats.dir/kstest.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/kstest.cpp.o.d"
  "/root/repo/src/stats/moments.cpp" "src/stats/CMakeFiles/abw_stats.dir/moments.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/moments.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/stats/CMakeFiles/abw_stats.dir/regression.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/regression.cpp.o.d"
  "/root/repo/src/stats/rng.cpp" "src/stats/CMakeFiles/abw_stats.dir/rng.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/rng.cpp.o.d"
  "/root/repo/src/stats/sampling.cpp" "src/stats/CMakeFiles/abw_stats.dir/sampling.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/sampling.cpp.o.d"
  "/root/repo/src/stats/trend.cpp" "src/stats/CMakeFiles/abw_stats.dir/trend.cpp.o" "gcc" "src/stats/CMakeFiles/abw_stats.dir/trend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
