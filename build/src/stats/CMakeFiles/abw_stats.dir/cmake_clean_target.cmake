file(REMOVE_RECURSE
  "libabw_stats.a"
)
