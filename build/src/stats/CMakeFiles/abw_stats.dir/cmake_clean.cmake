file(REMOVE_RECURSE
  "CMakeFiles/abw_stats.dir/acf.cpp.o"
  "CMakeFiles/abw_stats.dir/acf.cpp.o.d"
  "CMakeFiles/abw_stats.dir/cdf.cpp.o"
  "CMakeFiles/abw_stats.dir/cdf.cpp.o.d"
  "CMakeFiles/abw_stats.dir/cusum.cpp.o"
  "CMakeFiles/abw_stats.dir/cusum.cpp.o.d"
  "CMakeFiles/abw_stats.dir/effective_bw.cpp.o"
  "CMakeFiles/abw_stats.dir/effective_bw.cpp.o.d"
  "CMakeFiles/abw_stats.dir/fft.cpp.o"
  "CMakeFiles/abw_stats.dir/fft.cpp.o.d"
  "CMakeFiles/abw_stats.dir/fgn.cpp.o"
  "CMakeFiles/abw_stats.dir/fgn.cpp.o.d"
  "CMakeFiles/abw_stats.dir/histogram.cpp.o"
  "CMakeFiles/abw_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/abw_stats.dir/hurst.cpp.o"
  "CMakeFiles/abw_stats.dir/hurst.cpp.o.d"
  "CMakeFiles/abw_stats.dir/kstest.cpp.o"
  "CMakeFiles/abw_stats.dir/kstest.cpp.o.d"
  "CMakeFiles/abw_stats.dir/moments.cpp.o"
  "CMakeFiles/abw_stats.dir/moments.cpp.o.d"
  "CMakeFiles/abw_stats.dir/regression.cpp.o"
  "CMakeFiles/abw_stats.dir/regression.cpp.o.d"
  "CMakeFiles/abw_stats.dir/rng.cpp.o"
  "CMakeFiles/abw_stats.dir/rng.cpp.o.d"
  "CMakeFiles/abw_stats.dir/sampling.cpp.o"
  "CMakeFiles/abw_stats.dir/sampling.cpp.o.d"
  "CMakeFiles/abw_stats.dir/trend.cpp.o"
  "CMakeFiles/abw_stats.dir/trend.cpp.o.d"
  "libabw_stats.a"
  "libabw_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abw_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
