# Empty dependencies file for abw_stats.
# This may be replaced when dependencies are built.
