file(REMOVE_RECURSE
  "CMakeFiles/abw_trace.dir/availbw_process.cpp.o"
  "CMakeFiles/abw_trace.dir/availbw_process.cpp.o.d"
  "CMakeFiles/abw_trace.dir/packet_trace.cpp.o"
  "CMakeFiles/abw_trace.dir/packet_trace.cpp.o.d"
  "CMakeFiles/abw_trace.dir/synthetic_trace.cpp.o"
  "CMakeFiles/abw_trace.dir/synthetic_trace.cpp.o.d"
  "CMakeFiles/abw_trace.dir/trace_io.cpp.o"
  "CMakeFiles/abw_trace.dir/trace_io.cpp.o.d"
  "libabw_trace.a"
  "libabw_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abw_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
