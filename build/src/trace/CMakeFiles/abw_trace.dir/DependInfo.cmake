
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/availbw_process.cpp" "src/trace/CMakeFiles/abw_trace.dir/availbw_process.cpp.o" "gcc" "src/trace/CMakeFiles/abw_trace.dir/availbw_process.cpp.o.d"
  "/root/repo/src/trace/packet_trace.cpp" "src/trace/CMakeFiles/abw_trace.dir/packet_trace.cpp.o" "gcc" "src/trace/CMakeFiles/abw_trace.dir/packet_trace.cpp.o.d"
  "/root/repo/src/trace/synthetic_trace.cpp" "src/trace/CMakeFiles/abw_trace.dir/synthetic_trace.cpp.o" "gcc" "src/trace/CMakeFiles/abw_trace.dir/synthetic_trace.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/abw_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/abw_trace.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/abw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/abw_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/abw_traffic.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
