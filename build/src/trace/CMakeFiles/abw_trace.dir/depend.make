# Empty dependencies file for abw_trace.
# This may be replaced when dependencies are built.
