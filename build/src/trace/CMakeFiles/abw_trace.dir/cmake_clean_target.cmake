file(REMOVE_RECURSE
  "libabw_trace.a"
)
