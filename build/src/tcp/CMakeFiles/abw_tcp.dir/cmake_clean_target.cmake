file(REMOVE_RECURSE
  "libabw_tcp.a"
)
