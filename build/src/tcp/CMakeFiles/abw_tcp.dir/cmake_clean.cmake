file(REMOVE_RECURSE
  "CMakeFiles/abw_tcp.dir/flows.cpp.o"
  "CMakeFiles/abw_tcp.dir/flows.cpp.o.d"
  "CMakeFiles/abw_tcp.dir/tcp.cpp.o"
  "CMakeFiles/abw_tcp.dir/tcp.cpp.o.d"
  "libabw_tcp.a"
  "libabw_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abw_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
