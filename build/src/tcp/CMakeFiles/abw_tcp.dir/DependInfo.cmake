
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/flows.cpp" "src/tcp/CMakeFiles/abw_tcp.dir/flows.cpp.o" "gcc" "src/tcp/CMakeFiles/abw_tcp.dir/flows.cpp.o.d"
  "/root/repo/src/tcp/tcp.cpp" "src/tcp/CMakeFiles/abw_tcp.dir/tcp.cpp.o" "gcc" "src/tcp/CMakeFiles/abw_tcp.dir/tcp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/abw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/abw_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
