# Empty dependencies file for abw_tcp.
# This may be replaced when dependencies are built.
