# Empty compiler generated dependencies file for abw_traffic.
# This may be replaced when dependencies are built.
