file(REMOVE_RECURSE
  "libabw_traffic.a"
)
