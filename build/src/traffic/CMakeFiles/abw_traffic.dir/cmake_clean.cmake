file(REMOVE_RECURSE
  "CMakeFiles/abw_traffic.dir/aggregate.cpp.o"
  "CMakeFiles/abw_traffic.dir/aggregate.cpp.o.d"
  "CMakeFiles/abw_traffic.dir/cbr.cpp.o"
  "CMakeFiles/abw_traffic.dir/cbr.cpp.o.d"
  "CMakeFiles/abw_traffic.dir/fgn_rate.cpp.o"
  "CMakeFiles/abw_traffic.dir/fgn_rate.cpp.o.d"
  "CMakeFiles/abw_traffic.dir/generator.cpp.o"
  "CMakeFiles/abw_traffic.dir/generator.cpp.o.d"
  "CMakeFiles/abw_traffic.dir/packet_size.cpp.o"
  "CMakeFiles/abw_traffic.dir/packet_size.cpp.o.d"
  "CMakeFiles/abw_traffic.dir/pareto_gaps.cpp.o"
  "CMakeFiles/abw_traffic.dir/pareto_gaps.cpp.o.d"
  "CMakeFiles/abw_traffic.dir/pareto_onoff.cpp.o"
  "CMakeFiles/abw_traffic.dir/pareto_onoff.cpp.o.d"
  "CMakeFiles/abw_traffic.dir/poisson.cpp.o"
  "CMakeFiles/abw_traffic.dir/poisson.cpp.o.d"
  "CMakeFiles/abw_traffic.dir/trace_replay.cpp.o"
  "CMakeFiles/abw_traffic.dir/trace_replay.cpp.o.d"
  "libabw_traffic.a"
  "libabw_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abw_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
