
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/aggregate.cpp" "src/traffic/CMakeFiles/abw_traffic.dir/aggregate.cpp.o" "gcc" "src/traffic/CMakeFiles/abw_traffic.dir/aggregate.cpp.o.d"
  "/root/repo/src/traffic/cbr.cpp" "src/traffic/CMakeFiles/abw_traffic.dir/cbr.cpp.o" "gcc" "src/traffic/CMakeFiles/abw_traffic.dir/cbr.cpp.o.d"
  "/root/repo/src/traffic/fgn_rate.cpp" "src/traffic/CMakeFiles/abw_traffic.dir/fgn_rate.cpp.o" "gcc" "src/traffic/CMakeFiles/abw_traffic.dir/fgn_rate.cpp.o.d"
  "/root/repo/src/traffic/generator.cpp" "src/traffic/CMakeFiles/abw_traffic.dir/generator.cpp.o" "gcc" "src/traffic/CMakeFiles/abw_traffic.dir/generator.cpp.o.d"
  "/root/repo/src/traffic/packet_size.cpp" "src/traffic/CMakeFiles/abw_traffic.dir/packet_size.cpp.o" "gcc" "src/traffic/CMakeFiles/abw_traffic.dir/packet_size.cpp.o.d"
  "/root/repo/src/traffic/pareto_gaps.cpp" "src/traffic/CMakeFiles/abw_traffic.dir/pareto_gaps.cpp.o" "gcc" "src/traffic/CMakeFiles/abw_traffic.dir/pareto_gaps.cpp.o.d"
  "/root/repo/src/traffic/pareto_onoff.cpp" "src/traffic/CMakeFiles/abw_traffic.dir/pareto_onoff.cpp.o" "gcc" "src/traffic/CMakeFiles/abw_traffic.dir/pareto_onoff.cpp.o.d"
  "/root/repo/src/traffic/poisson.cpp" "src/traffic/CMakeFiles/abw_traffic.dir/poisson.cpp.o" "gcc" "src/traffic/CMakeFiles/abw_traffic.dir/poisson.cpp.o.d"
  "/root/repo/src/traffic/trace_replay.cpp" "src/traffic/CMakeFiles/abw_traffic.dir/trace_replay.cpp.o" "gcc" "src/traffic/CMakeFiles/abw_traffic.dir/trace_replay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/abw_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/abw_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
