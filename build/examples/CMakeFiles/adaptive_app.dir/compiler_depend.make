# Empty compiler generated dependencies file for adaptive_app.
# This may be replaced when dependencies are built.
