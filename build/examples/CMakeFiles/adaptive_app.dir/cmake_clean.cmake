file(REMOVE_RECURSE
  "CMakeFiles/adaptive_app.dir/adaptive_app.cpp.o"
  "CMakeFiles/adaptive_app.dir/adaptive_app.cpp.o.d"
  "adaptive_app"
  "adaptive_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
