file(REMOVE_RECURSE
  "CMakeFiles/abwprobe.dir/abwprobe.cpp.o"
  "CMakeFiles/abwprobe.dir/abwprobe.cpp.o.d"
  "abwprobe"
  "abwprobe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abwprobe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
