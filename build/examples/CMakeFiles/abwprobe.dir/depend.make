# Empty dependencies file for abwprobe.
# This may be replaced when dependencies are built.
