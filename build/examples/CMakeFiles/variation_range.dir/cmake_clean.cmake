file(REMOVE_RECURSE
  "CMakeFiles/variation_range.dir/variation_range.cpp.o"
  "CMakeFiles/variation_range.dir/variation_range.cpp.o.d"
  "variation_range"
  "variation_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variation_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
