# Empty compiler generated dependencies file for variation_range.
# This may be replaced when dependencies are built.
