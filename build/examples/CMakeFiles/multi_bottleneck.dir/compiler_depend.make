# Empty compiler generated dependencies file for multi_bottleneck.
# This may be replaced when dependencies are built.
