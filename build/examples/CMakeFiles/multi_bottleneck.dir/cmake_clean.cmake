file(REMOVE_RECURSE
  "CMakeFiles/multi_bottleneck.dir/multi_bottleneck.cpp.o"
  "CMakeFiles/multi_bottleneck.dir/multi_bottleneck.cpp.o.d"
  "multi_bottleneck"
  "multi_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
