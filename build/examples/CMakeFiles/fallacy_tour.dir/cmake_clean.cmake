file(REMOVE_RECURSE
  "CMakeFiles/fallacy_tour.dir/fallacy_tour.cpp.o"
  "CMakeFiles/fallacy_tour.dir/fallacy_tour.cpp.o.d"
  "fallacy_tour"
  "fallacy_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallacy_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
