# Empty compiler generated dependencies file for fallacy_tour.
# This may be replaced when dependencies are built.
