# Empty dependencies file for tool_comparison.
# This may be replaced when dependencies are built.
