file(REMOVE_RECURSE
  "CMakeFiles/tool_comparison.dir/tool_comparison.cpp.o"
  "CMakeFiles/tool_comparison.dir/tool_comparison.cpp.o.d"
  "tool_comparison"
  "tool_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
