file(REMOVE_RECURSE
  "CMakeFiles/fig1_sampling_error.dir/fig1_sampling_error.cpp.o"
  "CMakeFiles/fig1_sampling_error.dir/fig1_sampling_error.cpp.o.d"
  "fig1_sampling_error"
  "fig1_sampling_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_sampling_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
