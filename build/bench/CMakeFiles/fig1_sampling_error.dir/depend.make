# Empty dependencies file for fig1_sampling_error.
# This may be replaced when dependencies are built.
