# Empty dependencies file for ablate_speed.
# This may be replaced when dependencies are built.
