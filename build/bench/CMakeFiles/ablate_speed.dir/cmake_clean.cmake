file(REMOVE_RECURSE
  "CMakeFiles/ablate_speed.dir/ablate_speed.cpp.o"
  "CMakeFiles/ablate_speed.dir/ablate_speed.cpp.o.d"
  "ablate_speed"
  "ablate_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
