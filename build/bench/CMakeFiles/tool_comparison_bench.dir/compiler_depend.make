# Empty compiler generated dependencies file for tool_comparison_bench.
# This may be replaced when dependencies are built.
