file(REMOVE_RECURSE
  "CMakeFiles/tool_comparison_bench.dir/tool_comparison.cpp.o"
  "CMakeFiles/tool_comparison_bench.dir/tool_comparison.cpp.o.d"
  "tool_comparison_bench"
  "tool_comparison_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tool_comparison_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
