file(REMOVE_RECURSE
  "CMakeFiles/fig6_variation_range.dir/fig6_variation_range.cpp.o"
  "CMakeFiles/fig6_variation_range.dir/fig6_variation_range.cpp.o.d"
  "fig6_variation_range"
  "fig6_variation_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_variation_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
