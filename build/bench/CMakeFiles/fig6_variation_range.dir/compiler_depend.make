# Empty compiler generated dependencies file for fig6_variation_range.
# This may be replaced when dependencies are built.
