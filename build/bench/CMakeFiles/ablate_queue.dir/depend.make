# Empty dependencies file for ablate_queue.
# This may be replaced when dependencies are built.
