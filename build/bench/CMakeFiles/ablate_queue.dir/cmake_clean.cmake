file(REMOVE_RECURSE
  "CMakeFiles/ablate_queue.dir/ablate_queue.cpp.o"
  "CMakeFiles/ablate_queue.dir/ablate_queue.cpp.o.d"
  "ablate_queue"
  "ablate_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
