# Empty dependencies file for ablate_threshold.
# This may be replaced when dependencies are built.
