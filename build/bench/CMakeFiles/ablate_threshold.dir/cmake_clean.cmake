file(REMOVE_RECURSE
  "CMakeFiles/ablate_threshold.dir/ablate_threshold.cpp.o"
  "CMakeFiles/ablate_threshold.dir/ablate_threshold.cpp.o.d"
  "ablate_threshold"
  "ablate_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
