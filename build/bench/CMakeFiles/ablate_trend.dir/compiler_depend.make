# Empty compiler generated dependencies file for ablate_trend.
# This may be replaced when dependencies are built.
