file(REMOVE_RECURSE
  "CMakeFiles/ablate_trend.dir/ablate_trend.cpp.o"
  "CMakeFiles/ablate_trend.dir/ablate_trend.cpp.o.d"
  "ablate_trend"
  "ablate_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
