file(REMOVE_RECURSE
  "CMakeFiles/table1_packet_size.dir/table1_packet_size.cpp.o"
  "CMakeFiles/table1_packet_size.dir/table1_packet_size.cpp.o.d"
  "table1_packet_size"
  "table1_packet_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_packet_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
