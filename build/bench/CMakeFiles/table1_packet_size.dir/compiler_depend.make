# Empty compiler generated dependencies file for table1_packet_size.
# This may be replaced when dependencies are built.
