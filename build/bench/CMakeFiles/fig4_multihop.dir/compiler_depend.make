# Empty compiler generated dependencies file for fig4_multihop.
# This may be replaced when dependencies are built.
