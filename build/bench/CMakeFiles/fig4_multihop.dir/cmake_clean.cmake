file(REMOVE_RECURSE
  "CMakeFiles/fig4_multihop.dir/fig4_multihop.cpp.o"
  "CMakeFiles/fig4_multihop.dir/fig4_multihop.cpp.o.d"
  "fig4_multihop"
  "fig4_multihop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_multihop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
