# Empty compiler generated dependencies file for fig5_owd_trends.
# This may be replaced when dependencies are built.
