file(REMOVE_RECURSE
  "CMakeFiles/fig5_owd_trends.dir/fig5_owd_trends.cpp.o"
  "CMakeFiles/fig5_owd_trends.dir/fig5_owd_trends.cpp.o.d"
  "fig5_owd_trends"
  "fig5_owd_trends.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_owd_trends.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
