# Empty compiler generated dependencies file for fig7_tcp_throughput.
# This may be replaced when dependencies are built.
