file(REMOVE_RECURSE
  "CMakeFiles/fig7_tcp_throughput.dir/fig7_tcp_throughput.cpp.o"
  "CMakeFiles/fig7_tcp_throughput.dir/fig7_tcp_throughput.cpp.o.d"
  "fig7_tcp_throughput"
  "fig7_tcp_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tcp_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
