file(REMOVE_RECURSE
  "CMakeFiles/pitfall_narrow_tight.dir/pitfall_narrow_tight.cpp.o"
  "CMakeFiles/pitfall_narrow_tight.dir/pitfall_narrow_tight.cpp.o.d"
  "pitfall_narrow_tight"
  "pitfall_narrow_tight.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pitfall_narrow_tight.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
