# Empty compiler generated dependencies file for pitfall_narrow_tight.
# This may be replaced when dependencies are built.
