# Empty dependencies file for fig3_burstiness.
# This may be replaced when dependencies are built.
