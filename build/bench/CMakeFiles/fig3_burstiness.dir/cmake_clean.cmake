file(REMOVE_RECURSE
  "CMakeFiles/fig3_burstiness.dir/fig3_burstiness.cpp.o"
  "CMakeFiles/fig3_burstiness.dir/fig3_burstiness.cpp.o.d"
  "fig3_burstiness"
  "fig3_burstiness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_burstiness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
