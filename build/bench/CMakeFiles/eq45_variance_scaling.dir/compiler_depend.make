# Empty compiler generated dependencies file for eq45_variance_scaling.
# This may be replaced when dependencies are built.
