file(REMOVE_RECURSE
  "CMakeFiles/eq45_variance_scaling.dir/eq45_variance_scaling.cpp.o"
  "CMakeFiles/eq45_variance_scaling.dir/eq45_variance_scaling.cpp.o.d"
  "eq45_variance_scaling"
  "eq45_variance_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eq45_variance_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
