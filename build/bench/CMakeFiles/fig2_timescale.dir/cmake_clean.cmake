file(REMOVE_RECURSE
  "CMakeFiles/fig2_timescale.dir/fig2_timescale.cpp.o"
  "CMakeFiles/fig2_timescale.dir/fig2_timescale.cpp.o.d"
  "fig2_timescale"
  "fig2_timescale.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_timescale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
