# Empty dependencies file for fig2_timescale.
# This may be replaced when dependencies are built.
