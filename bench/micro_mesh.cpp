// Network-wide mesh estimation micro-benchmark: resolving a 256-pair
// path mesh by probing a sublinear subset and inferring the rest through
// shared bottlenecks (est/mesh.hpp over core/mesh_scenario.hpp).
//
// Topology: the ISP-like parking lot — 16 sources x 16 sinks over an
// 8-link backbone with per-link utilization rising 0.50 -> 0.60 along the
// chain, so different pairs bottleneck at different links and routes
// overlap heavily (the regime where shared-bottleneck inference pays).
//
// Writes BENCH_mesh.json (google-benchmark JSON shape so
// bench/check_regression.py gates it unchanged against
// bench/BENCH_mesh.baseline.json via the `mesh_check` / `bench_check`
// targets).  Rows:
//
//   MESH_probe_all
//       items_per_second = pairs resolved per wall second when every pair
//       is directly measured (the baseline a per-path tool pays).
//   MESH_resolve
//       items_per_second = pairs resolved per wall second by the mesh
//       estimator (greedy-cover probe subset + inference).
//   MESH_amortization
//       items_per_second = probe_all_s / mesh_s — the sublinear win
//       itself, gated as a ratio so it survives absolute-throughput
//       drift.  Must be >= 2x (hard-checked here, not just gated).
//   MESH_probe_economy
//       items_per_second = pairs / directly-probed pairs.  Deterministic
//       (greedy selection over a fixed route table).
//   MESH_inferred_accuracy
//       items_per_second = 1 - median relative error of the INFERRED
//       pairs against the simulated ground-truth matrix.  Deterministic
//       (seeded simulation end to end).
//
// Hard acceptance checks (exit 1 on violation): probed fraction <= 30%,
// median inferred error <= 20%, amortization >= 2x.
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "core/mesh_scenario.hpp"
#include "est/mesh.hpp"
#include "runner/batch.hpp"
#include "runner/bench_report.hpp"

namespace {

using namespace abw;

core::MeshConfig bench_mesh() {
  core::ParkingLotMeshConfig pc;
  pc.backbone_hops = 8;
  pc.sources = 16;
  pc.sinks = 16;  // 256 pairs
  pc.backbone_capacity_bps = 50e6;
  pc.access_capacity_bps = 200e6;
  pc.util_min = 0.50;
  pc.util_max = 0.60;
  pc.mode = sim::SimMode::kHybrid;  // off-route edges stay fluid
  pc.model = core::CrossModel::kPoisson;
  pc.warmup = sim::kSecond;
  pc.seed = 42;
  core::MeshConfig mc = core::parking_lot_mesh(pc);
  mc.topology.auto_route_all(mc.pairs);
  return mc;
}

struct TimedRun {
  double seconds = 0.0;
  std::uint64_t check = 0;  // digest of the result: must match across reps
};

std::uint64_t fnv(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ull;
  }
  return h;
}

template <typename Fn>
TimedRun min_of_reps(Fn&& run, int reps = 3) {
  TimedRun best = run();
  for (int i = 1; i < reps; ++i) {
    TimedRun r = run();
    if (r.check != best.check)
      std::fprintf(stderr, "micro_mesh: WARNING: nondeterministic result "
                           "across repetitions\n");
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

struct Row {
  const char* name;
  double items_per_second;
  double real_s;
};

}  // namespace

int main() {
  const core::MeshConfig mc = bench_mesh();
  const std::size_t pairs = mc.pairs.size();
  // 6-iteration binary rate search, majority-of-3 fleets, 100 ms streams.
  const core::MeshProbeConfig probe;
  const est::MeshMeasureFn measure = core::make_mesh_measure_fn(mc, probe);
  const est::MeshEstimatorConfig ecfg{.max_probe_fraction = 0.30,
                                      .base_seed = 1};
  est::MeshEstimator est(est::make_path_specs(mc.topology, mc.pairs), ecfg);

  // Ground truth: the reference mesh's per-pair Eq. 3 matrix over a 4 s
  // steady-state window (measurement replicas run under derived seeds; at
  // these loads the window-average utilization is seed-stable to ~1%).
  core::MeshScenario reference(mc);
  const sim::SimTime t1 = mc.warmup;
  const sim::SimTime t2 = t1 + 4 * sim::kSecond;
  reference.run_until(t2);
  const std::vector<double> truth = reference.ground_truth_matrix(t1, t2);

  // Baseline: measure EVERY pair directly, same per-pair budget, same
  // per-pair seeds, fanned across the same BatchRunner.
  runner::BatchRunner pool(0);
  const TimedRun all = min_of_reps([&] {
    TimedRun r;
    const double w0 = runner::monotonic_seconds();
    std::vector<est::MeshMeasurement> m = pool.map(pairs, [&](std::size_t p) {
      return measure(p, runner::derive_seed(ecfg.base_seed, p));
    });
    r.seconds = runner::monotonic_seconds() - w0;
    for (const auto& x : m) {
      r.check = fnv(r.check, x.valid ? 1 : 0);
      r.check = fnv(r.check, std::bit_cast<std::uint64_t>(x.avail_bps));
    }
    return r;
  });

  // The mesh estimator: probe subset + shared-bottleneck inference.
  est::MeshReport report;
  const TimedRun mesh = min_of_reps([&] {
    TimedRun r;
    const double w0 = runner::monotonic_seconds();
    report = est.estimate(pool, measure);
    r.seconds = runner::monotonic_seconds() - w0;
    for (const auto& e : report.pairs)
      r.check = fnv(r.check, std::bit_cast<std::uint64_t>(e.estimate_bps));
    return r;
  });

  const double fraction = report.probed_fraction();
  std::vector<double> errors;
  for (std::size_t p = 0; p < pairs; ++p) {
    if (report.pairs[p].measured) continue;
    if (!report.pairs[p].valid || truth[p] <= 0.0) {
      errors.push_back(1.0);  // an unresolvable pair counts as total error
      continue;
    }
    errors.push_back(std::abs(report.pairs[p].estimate_bps - truth[p]) /
                     truth[p]);
  }
  std::sort(errors.begin(), errors.end());
  const double median_err =
      errors.empty() ? 1.0 : errors[errors.size() / 2];
  const double amortization = all.seconds / mesh.seconds;

  const Row rows[] = {
      {"MESH_probe_all", static_cast<double>(pairs) / all.seconds,
       all.seconds},
      {"MESH_resolve", static_cast<double>(pairs) / mesh.seconds,
       mesh.seconds},
      {"MESH_amortization", amortization, mesh.seconds},
      {"MESH_probe_economy",
       static_cast<double>(pairs) /
           static_cast<double>(report.probed.size()),
       mesh.seconds},
      {"MESH_inferred_accuracy", 1.0 - median_err, mesh.seconds},
  };
  constexpr std::size_t kRows = sizeof(rows) / sizeof(rows[0]);

  std::FILE* f = std::fopen("BENCH_mesh.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_mesh: cannot write BENCH_mesh.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"context\": {\"note\": \"amortization/economy/"
                  "accuracy rows carry ratios in items_per_second; "
                  "probe_all/resolve carry pairs per wall second\"},\n"
                  "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < kRows; ++i) {
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
        "\"iterations\": 1, \"real_time\": %.6e, \"cpu_time\": %.6e, "
        "\"time_unit\": \"ns\", \"items_per_second\": %.6f}%s\n",
        rows[i].name, rows[i].real_s * 1e9, rows[i].real_s * 1e9,
        rows[i].items_per_second, i + 1 < kRows ? "," : "");
    std::printf("%-24s %12.3f items/s  (%.4f s)\n", rows[i].name,
                rows[i].items_per_second, rows[i].real_s);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf("mesh: %zu pairs, %zu probed (%.1f%%), median inferred error "
              "%.1f%%, amortization %.1fx\n",
              pairs, report.probed.size(), 100.0 * fraction,
              100.0 * median_err, amortization);

  int rc = 0;
  if (fraction > 0.30) {
    std::fprintf(stderr, "micro_mesh: FAIL probed fraction %.3f > 0.30\n",
                 fraction);
    rc = 1;
  }
  if (median_err > 0.20) {
    std::fprintf(stderr, "micro_mesh: FAIL median inferred error %.3f > "
                         "0.20\n",
                 median_err);
    rc = 1;
  }
  if (amortization < 2.0) {
    std::fprintf(stderr, "micro_mesh: FAIL amortization %.2fx < 2x\n",
                 amortization);
    rc = 1;
  }
  return rc;
}
