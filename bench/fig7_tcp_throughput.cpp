// Figure 7 — "TCP throughput compared to avail-bw."
//
// Paper setup: avail-bw 15 Mb/s.  Measure the throughput of a bulk TCP
// transfer as a function of the receiver's advertised window Wr for three
// cross-traffic types:
//   1. UDP sources with Pareto interarrivals (unresponsive),
//   2. a few persistent TCP transfers limited by their advertised windows,
//   3. an aggregate of many short TCP transfers.
//
// Expected shape: the difference between TCP throughput and the avail-bw
// can be positive or negative and depends strongly on Wr and on the
// congestion responsiveness of the cross traffic — bulk TCP throughput is
// NOT a validation target for avail-bw estimators.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "tcp/flows.hpp"
#include "tcp/tcp.hpp"
#include "traffic/pareto_gaps.hpp"

using namespace abw;

namespace {

constexpr double kCapacity = 50e6;
constexpr double kCrossRate = 35e6;  // leaves A = 15 Mb/s
constexpr sim::SimTime kMeasure = 15 * sim::kSecond;

enum class CrossKind { kParetoUdp, kPersistentTcp, kShortTcp };

const char* name(CrossKind k) {
  switch (k) {
    case CrossKind::kParetoUdp: return "Pareto-interarrival UDP";
    case CrossKind::kPersistentTcp: return "window-limited persistent TCP";
    case CrossKind::kShortTcp: return "many short TCP flows";
  }
  return "?";
}

struct CaseResult {
  double avail_bw;                 // ground truth without the measured flow
  std::vector<double> throughput;  // one per Wr value
};

// Builds the scenario with the given cross traffic; if wr != 0 also runs
// the measured bulk TCP flow with that receiver window.  Returns the
// cross-only ground-truth avail-bw and (if measured) the flow throughput.
std::pair<double, double> run_once(CrossKind kind, std::uint32_t wr,
                                   std::uint64_t seed) {
  std::vector<sim::LinkConfig> links(1);
  links[0].capacity_bps = kCapacity;
  links[0].propagation_delay = 5 * sim::kMillisecond;
  links[0].queue_limit_bytes = 192 * 1500;
  auto sc = core::Scenario::custom(links, seed);
  auto& simu = sc.simulator();

  tcp::TcpReceiverHub hub;
  sc.session().demux().register_handler(sim::PacketType::kTcpData, &hub);
  stats::Rng rng(seed * 31 + 7);

  // Cross traffic.
  std::unique_ptr<traffic::ParetoGapGenerator> udp;
  std::unique_ptr<tcp::PersistentFlowSet> persistent;
  std::unique_ptr<tcp::ShortFlowGenerator> shorts;
  switch (kind) {
    case CrossKind::kParetoUdp:
      udp = std::make_unique<traffic::ParetoGapGenerator>(
          simu, sc.path(), 0, false, 1000, rng.fork(), kCrossRate, 1500, 1.9);
      udp->start(0, 120 * sim::kSecond);
      break;
    case CrossKind::kPersistentTcp: {
      // 6 flows, each capped by a small advertised window so together
      // they offer ~35 Mb/s on the otherwise idle link.
      tcp::TcpConfig cfg;
      cfg.receiver_window = 6;
      cfg.reverse_delay = 5 * sim::kMillisecond;
      persistent = std::make_unique<tcp::PersistentFlowSet>(
          simu, sc.path(), hub, 2000, 6, cfg);
      auto prng = rng.fork();
      persistent->start(0, sim::kSecond, prng);
      break;
    }
    case CrossKind::kShortTcp: {
      tcp::ShortFlowConfig cfg;
      cfg.mean_flow_bytes = 50e3;
      cfg.flow_arrival_rate = kCrossRate / (cfg.mean_flow_bytes * 8.0);
      cfg.tcp.reverse_delay = 5 * sim::kMillisecond;
      shorts = std::make_unique<tcp::ShortFlowGenerator>(
          simu, sc.path(), hub, 3000, cfg, rng.fork());
      shorts->start(0, 120 * sim::kSecond);
      break;
    }
  }

  simu.run_until(3 * sim::kSecond);  // warm up the cross traffic

  std::unique_ptr<tcp::TcpConnection> bulk;
  if (wr != 0) {
    tcp::TcpConfig cfg;
    cfg.receiver_window = wr;
    cfg.reverse_delay = 5 * sim::kMillisecond;
    cfg.measurement_flow = true;  // excluded from cross-traffic ground truth
    bulk = std::make_unique<tcp::TcpConnection>(simu, sc.path(), hub, 1, cfg);
    bulk->start(simu.now());
  }

  sim::SimTime t0 = simu.now();
  simu.run_until(t0 + kMeasure);

  double a = sc.path().cross_avail_bw(t0, simu.now());
  double tput = bulk ? bulk->throughput_bps(simu.now()) : 0.0;
  return {a, tput};
}

}  // namespace

int main() {
  core::print_header(std::cout, "Figure 7: bulk TCP throughput vs avail-bw",
                     "Jain & Dovrolis IMC'04, Fig. 7");
  std::printf("workload: single hop 50 Mbps, cross traffic ~35 Mbps => "
              "A ~ 15 Mbps; bulk TCP measured for 15 s per point\n\n");

  const std::uint32_t windows[] = {4, 8, 16, 32, 64, 128, 256, 512};
  const CrossKind kinds[] = {CrossKind::kParetoUdp, CrossKind::kPersistentTcp,
                             CrossKind::kShortTcp};

  core::Table table({"Wr (pkts)", "Pareto UDP", "persistent TCP", "short TCPs"});
  std::vector<CaseResult> results(3);
  for (int ki = 0; ki < 3; ++ki)
    results[ki].avail_bw = run_once(kinds[ki], 0, 70 + ki).first;

  for (std::uint32_t wr : windows) {
    std::vector<std::string> row = {std::to_string(wr)};
    for (int ki = 0; ki < 3; ++ki) {
      auto [a, tput] = run_once(kinds[ki], wr, 70 + ki);
      (void)a;
      results[ki].throughput.push_back(tput);
      row.push_back(core::mbps(tput));
    }
    table.row(row);
  }
  table.print(std::cout);

  std::printf("\ncross-only avail-bw (ground truth, no measured flow):\n");
  for (int ki = 0; ki < 3; ++ki)
    std::printf("  %-32s A = %s\n", name(kinds[ki]),
                core::mbps(results[ki].avail_bw).c_str());

  // Paper's claim: the TCP-vs-avail-bw difference can be positive or
  // negative, depending on Wr and cross-traffic responsiveness.
  bool saw_below = false, saw_above = false, window_matters = false;
  for (int ki = 0; ki < 3; ++ki) {
    double a = results[ki].avail_bw;
    for (double t : results[ki].throughput) {
      if (t < 0.8 * a) saw_below = true;
      if (t > 1.2 * a) saw_above = true;
    }
    if (results[ki].throughput.back() > 1.5 * results[ki].throughput.front())
      window_matters = true;
  }
  core::print_check(
      std::cout,
      "the difference between avail-bw and TCP throughput can be positive "
      "or negative, and depends strongly on the congestion responsiveness "
      "of the cross traffic and on Wr",
      std::string("observed throughputs ") +
          (saw_below ? "well below" : "never below") + " and " +
          (saw_above ? "well above" : "never above") +
          " the avail-bw across the Wr sweep",
      saw_below && saw_above && window_matters);
  std::printf("\nconclusion: do not validate avail-bw estimators against "
              "bulk TCP throughput.\n");
  return 0;
}
