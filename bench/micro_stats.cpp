// Micro-benchmarks of the statistics primitives (google-benchmark): FFT,
// fGn synthesis, trend statistics, and regression — the per-stream and
// per-trace costs every estimator pays.
#include <benchmark/benchmark.h>

#include "stats/fft.hpp"
#include "stats/fgn.hpp"
#include "stats/hurst.hpp"
#include "stats/regression.hpp"
#include "stats/rng.hpp"
#include "stats/trend.hpp"

namespace {

using namespace abw::stats;

void BM_Fft(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  std::vector<std::complex<double>> base(n);
  for (auto& v : base) v = {rng.normal(), 0.0};
  for (auto _ : state) {
    auto x = base;
    fft(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Fft)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 17);

void BM_FgnSynthesis(benchmark::State& state) {
  auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  for (auto _ : state) {
    auto x = generate_fgn(n, 0.8, rng);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FgnSynthesis)->Arg(1 << 12)->Arg(1 << 16);

void BM_TrendCombined(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> owds;
  for (int i = 0; i < 160; ++i) owds.push_back(1e-5 * i + 1e-4 * rng.normal());
  for (auto _ : state) {
    benchmark::DoNotOptimize(combined_trend(owds));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrendCombined);

void BM_HurstVarianceTime(benchmark::State& state) {
  Rng rng(4);
  auto x = generate_fgn(1 << 14, 0.8, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hurst_variance_time(x));
  }
}
BENCHMARK(BM_HurstVarianceTime);

void BM_LinearFit(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + rng.normal());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linear_fit(xs, ys));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_LinearFit);

}  // namespace
