// Figure 4 — "Effect of multiple tight links."
//
// Paper setup: a path with 1, 3, or 5 tight links (equal capacity and
// equal avail-bw 25 Mb/s on each), one-hop persistent Poisson cross
// traffic; measure average Ro/Ri over 500 streams as a function of Ri.
//
// Expected shape: the more tight links, the lower the Ro/Ri ratio at the
// same Ri — every loaded hop adds an independent chance to interact with
// cross traffic, so multi-bottleneck paths push rate-based detection
// toward underestimation.
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

int main() {
  using namespace abw;
  core::print_header(std::cout, "Figure 4: effect of multiple tight links",
                     "Jain & Dovrolis IMC'04, Fig. 4");
  std::printf("workload: H-hop path, each tight hop 50 Mbps with one-hop "
              "persistent Poisson cross 25 Mbps;\n500 streams of 100 x 1500B "
              "packets per point\n\n");

  std::vector<double> rates;
  for (double r = 5e6; r <= 30e6 + 1; r += 2.5e6) rates.push_back(r);

  const std::size_t tight_counts[] = {1, 3, 5};
  std::vector<std::vector<core::RatioPoint>> curves;
  for (std::size_t tc : tight_counts) {
    core::RatioCurveConfig rc;
    rc.rates_bps = rates;
    rc.streams_per_rate = 500;
    // Fresh scenario per rate point (see fig3 — horizon exhaustion).
    curves.push_back(core::measure_ratio_curve_fresh(
        [&](std::uint64_t seed) {
          core::MultiHopConfig cfg;
          cfg.hop_count = tc;
          cfg.loaded_hops.clear();
          for (std::size_t h = 0; h < tc; ++h) cfg.loaded_hops.push_back(h);
          cfg.seed = 400 + 11 * tc + seed;
          return core::Scenario::multi_hop(cfg);
        },
        rc));
  }

  core::Table table({"Ri (Mbps)", "1 tight link", "3 tight links", "5 tight links"});
  for (std::size_t i = 0; i < rates.size(); ++i) {
    char r[16], c0[16], c1[16], c2[16];
    std::snprintf(r, sizeof r, "%.1f", rates[i] / 1e6);
    std::snprintf(c0, sizeof c0, "%.4f", curves[0][i].mean_ratio);
    std::snprintf(c1, sizeof c1, "%.4f", curves[1][i].mean_ratio);
    std::snprintf(c2, sizeof c2, "%.4f", curves[2][i].mean_ratio);
    table.row({r, c0, c1, c2});
  }
  table.print(std::cout);
  std::printf("(avail-bw A = 25 Mbps on every loaded hop)\n");

  // The paper's headline observation: at Ri = A, the ratio decreases with
  // the number of tight links.
  std::size_t iA = 8;  // 5 + 8*2.5 = 25 Mb/s
  double r1 = curves[0][iA].mean_ratio;
  double r3 = curves[1][iA].mean_ratio;
  double r5 = curves[2][iA].mean_ratio;

  core::print_check(
      std::cout,
      "as the number of tight links increases, the ratio Ro/Ri at the "
      "point Ri = A decreases",
      "Ro/Ri at Ri=A=25: 1 link " + std::to_string(r1) + ", 3 links " +
          std::to_string(r3) + ", 5 links " + std::to_string(r5),
      r3 < r1 - 0.005 && r5 < r3 - 0.002);

  std::printf("\nimplication: underestimation grows with path depth — an "
              "artifact of the\nmin-based avail-bw definition (Eq. 3), as "
              "the paper notes.\n");
  return 0;
}
