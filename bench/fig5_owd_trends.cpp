// Figure 5 — "OWDs for two probing streams of 160 packets."
//
// Paper setup: avail-bw A = 25 Mb/s.  Two streams are shown:
//   * Ri = 27 Mb/s (> A): a clearly increasing OWD trend; both the trend
//     and Ro/Ri correctly infer Ri > A.
//   * Ri = 19 Mb/s (< A): Ro < Ri because of a cross-traffic burst at the
//     very end of the stream, yet the OWD series has NO increasing trend —
//     the rate ratio misleads, the delay statistics do not.
//
// We reproduce both, print the relative-OWD series, and run the PCT/PDT
// statistics on each.
// With `--trace=FILE` every packet event and stream boundary of the
// search goes to a JSONL trace (obs/), which is how the EXPERIMENTS.md
// traced rows for this figure were produced.
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "obs/trace.hpp"
#include "runner/cli.hpp"
#include "stats/trend.hpp"

using namespace abw;

namespace {

void show_stream(const char* label, const probe::StreamResult& res) {
  auto owds = res.relative_owds_ms();
  std::printf("%s: Ri=%s  Ro=%s  Ro/Ri=%.3f\n", label,
              core::mbps(res.input_rate_bps()).c_str(),
              core::mbps(res.output_rate_bps()).c_str(), res.rate_ratio());
  auto abs_owds = res.owds_seconds();
  std::printf("  PCT=%.3f  PDT=%.3f  => trend: %s\n",
              stats::pct_statistic(abs_owds), stats::pdt_statistic(abs_owds),
              stats::to_string(stats::combined_trend(abs_owds)));
  std::printf("%s", core::ascii_plot(owds, 10, 76).c_str());
  std::printf("  (y: relative OWD in ms; x: packet 0..%zu)\n\n", owds.size() - 1);
}

}  // namespace

int main(int argc, char** argv) {
  core::print_header(std::cout, "Figure 5: OWD trends vs the Ro/Ri ratio",
                     "Jain & Dovrolis IMC'04, Fig. 5");
  std::printf("workload: single hop, Ct=50 Mbps, bursty cross (Pareto "
              "ON-OFF), A=25 Mbps;\nstreams of 160 x 1500B packets\n\n");

  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kParetoOnOff;
  cfg.seed = 5;
  auto sc = core::Scenario::single_hop(cfg);

  std::string trace_path;
  try {
    trace_path = runner::parse_string_flag(argc, argv, "trace", "");
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  std::unique_ptr<obs::JsonlTraceSink> trace;
  if (!trace_path.empty()) {
    trace = std::make_unique<obs::JsonlTraceSink>(trace_path);
    sc.set_trace(trace.get());
  }

  // Stream A: Ri = 27 > A.  Expect increasing trend AND Ro < Ri.
  probe::StreamResult above;
  bool found_above = false;
  for (int i = 0; i < 300 && !found_above; ++i) {
    above = core::capture_stream(sc, 27e6, 1500, 160);
    if (!above.complete()) continue;
    found_above = stats::combined_trend(above.owds_seconds()) ==
                      stats::Trend::kIncreasing &&
                  above.rate_ratio() < 0.99;
  }

  // Stream B: Ri = 19 < A, but a burst depressed Ro anyway, while the OWD
  // trend stays non-increasing (the paper's lower time series).
  probe::StreamResult below;
  bool found_below = false;
  for (int i = 0; i < 500 && !found_below; ++i) {
    below = core::capture_stream(sc, 19e6, 1500, 160);
    if (!below.complete()) continue;
    found_below = stats::combined_trend(below.owds_seconds()) ==
                      stats::Trend::kNonIncreasing &&
                  below.rate_ratio() < 0.99;
  }

  if (found_above) show_stream("stream A (Ri=27 Mbps > A)", above);
  if (found_below) show_stream("stream B (Ri=19 Mbps < A)", below);

  if (trace) {
    trace->flush();
    std::printf("trace: %llu JSONL events -> %s\n\n",
                static_cast<unsigned long long>(trace->lines()),
                trace_path.c_str());
  }

  core::print_check(
      std::cout,
      "a stream can show Ro < Ri without any increasing OWD trend (cross "
      "burst near the end); OWD statistics carry more information than the "
      "single number Ro/Ri",
      found_below
          ? "found a below-avail-bw stream whose Ro/Ri says 'congested' while "
            "PCT/PDT correctly say 'not congested'; the above-avail-bw stream "
            "shows both signals agreeing"
          : "no contradictory stream found",
      found_above && found_below);
  return 0;
}
