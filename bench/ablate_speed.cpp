// Ablation — "Faster estimation is better" (the paper's third
// misconception), quantified.
//
// Two knobs trade measurement latency/overhead against accuracy:
//   * the number of streams k (Eq. 11: Var[m_A] = Var[A_tau]/k), and
//   * the stream duration (shorter streams = shorter averaging time
//     scale tau = larger population variance, compounding the first).
//
// For direct probing on a bursty single hop we sweep both and report the
// measurement latency next to the estimate spread: the "fast" corner is
// the noisy corner, with fully quantified exchange rates.
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "stats/moments.hpp"

using namespace abw;

namespace {

struct Cell {
  double spread_rel = 0.0;   // stddev of repeated estimates / A
  double latency_s = 0.0;    // sim time consumed per estimate
};

Cell measure(std::size_t streams, sim::SimTime duration, std::uint64_t seed) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kPoisson;
  cfg.seed = seed;
  auto sc = core::Scenario::single_hop(cfg);

  stats::RunningStats estimates;
  stats::RunningStats latencies;
  for (int rep = 0; rep < 15; ++rep) {
    sim::SimTime t0 = sc.simulator().now();
    auto samples = core::collect_direct_samples(sc, cfg.capacity_bps, 40e6,
                                                duration, 1500, streams,
                                                10 * sim::kMillisecond);
    latencies.add(sim::to_seconds(sc.simulator().now() - t0));
    if (!samples.empty()) estimates.add(stats::mean(samples));
  }
  return {estimates.stddev() / sc.nominal_avail_bw(), latencies.mean()};
}

}  // namespace

int main() {
  core::print_header(std::cout,
                     "Ablation: estimation latency vs accuracy",
                     "Jain & Dovrolis IMC'04, third misconception");
  std::printf("workload: single hop Ct=50, Poisson cross, A=25 Mbps; direct "
              "probing at Ri=40;\nspread of repeated estimates (15 "
              "repetitions per cell) vs measurement latency\n\n");

  const std::size_t stream_counts[] = {3, 10, 30};
  const double durations_ms[] = {20, 60, 180};

  core::Table table({"streams k", "stream duration", "latency", "estimate spread"});
  double fast_corner = 0, slow_corner = 0;
  for (std::size_t k : stream_counts) {
    for (double d : durations_ms) {
      Cell c = measure(k, sim::from_millis(d), 900 + k * 7 +
                                                   static_cast<std::uint64_t>(d));
      char dur[16], lat[16];
      std::snprintf(dur, sizeof dur, "%.0f ms", d);
      std::snprintf(lat, sizeof lat, "%.2f s", c.latency_s);
      table.row({std::to_string(k), dur, lat, core::pct(c.spread_rel)});
      if (k == stream_counts[0] && d == durations_ms[0]) fast_corner = c.spread_rel;
      if (k == stream_counts[2] && d == durations_ms[2]) slow_corner = c.spread_rel;
    }
  }
  table.print(std::cout);

  core::print_check(
      std::cout,
      "using fewer or shorter streams reduces the estimation latency with "
      "a penalty in accuracy; duration and stream count are knobs, not "
      "implementation details",
      "the fastest configuration's estimate spread (" +
          core::pct(fast_corner) + ") is several times the slowest's (" +
          core::pct(slow_corner) + ")",
      fast_corner > 2.0 * slow_corner);
  std::printf("\nimplication: tool comparisons must hold the latency/overhead "
              "budget fixed\n(see bench/tool_comparison's packets and latency "
              "columns).\n");
  return 0;
}
