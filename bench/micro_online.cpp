// Micro-benchmarks of the online (streaming) estimation layer
// (google-benchmark, custom main writing BENCH_online.json):
//
//   * BM_KalmanFeed:        per-sample cost of the BART-family Kalman
//     update (admission control + scalar filter + CUSUM watch);
//   * BM_DeliveryRateFeed:  per-sample cost of the passive TCP tracker's
//     windowed-max filter at a realistic ACK rate (the linear window scan
//     is the dominant term — this is the guard on its size);
//   * BM_AdaptiveDecide:    per-decision cost of the explore/exploit rate
//     choice;
//   * BM_FlapTracking:      end-to-end quality run — a Kalman tracker
//     probing through a capacity flap — reporting tracking RMS error and
//     re-convergence lag as counters (rms_mbps, lag_s) alongside the
//     wall-clock rate.
//
// bench/check_regression.py gates items_per_second against the committed
// bench/BENCH_online.baseline.json in the bench_check target.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "est/online/adaptive.hpp"
#include "est/online/kalman.hpp"
#include "est/online/tcp_rate.hpp"
#include "probe/stream_spec.hpp"
#include "sim/fault.hpp"
#include "sim/time.hpp"

namespace {

using namespace abw;
using abw::sim::kMillisecond;
using abw::sim::kSecond;
namespace online = abw::est::online;

online::OnlineSample fluid_sample(double ri, double avail, double ct,
                                  sim::SimTime t) {
  online::OnlineSample s;
  s.time = t;
  s.input_rate_bps = ri;
  s.strain = std::max(0.0, (ri - avail) / ct);
  s.rate_bps = ri / (1.0 + s.strain);
  s.packets = 60;
  return s;
}

void BM_KalmanFeed(benchmark::State& state) {
  online::KalmanTracker tracker;
  const double rates[4] = {30e6, 40e6, 50e6, 60e6};
  sim::SimTime t = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    t += 100 * kMillisecond;
    tracker.feed(fluid_sample(rates[i++ & 3], 25e6, 50e6, t));
    benchmark::DoNotOptimize(tracker.belief().estimate_bps);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["estimate_mbps"] = tracker.belief().estimate_bps / 1e6;
}
BENCHMARK(BM_KalmanFeed);

void BM_DeliveryRateFeed(benchmark::State& state) {
  online::TcpDeliveryRateTracker tracker;
  tcp::DeliveryRateSample s;
  s.delivery_rate_bps = 20e6;
  sim::SimTime t = 0;
  for (auto _ : state) {
    t += 10 * kMillisecond;  // ~100 ACKs/s: ~200 samples in the 2 s window
    s.time = t;
    s.delivery_rate_bps = 15e6 + static_cast<double>(t % 7) * 1e6;
    tracker.feed_delivery(s);
    benchmark::DoNotOptimize(tracker.belief().estimate_bps);
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["window_samples"] =
      static_cast<double>(tracker.window_samples());
}
BENCHMARK(BM_DeliveryRateFeed);

void BM_AdaptiveDecide(benchmark::State& state) {
  online::AdaptiveProber prober;
  // Prime the belief so the loop exercises the exploit path too.
  sim::SimTime t = 0;
  for (int i = 0; i < 32; ++i) {
    t += 100 * kMillisecond;
    prober.feed(fluid_sample(30e6 + 10e6 * (i & 3), 25e6, 50e6, t));
  }
  for (auto _ : state) benchmark::DoNotOptimize(prober.next_rate_bps());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdaptiveDecide);

// One 20 s flap scenario (capacity 50 -> 30 Mb/s over [8, 14) s, so the
// avail-bw steps 25 -> 5 -> 25 Mb/s), probed every 250 ms by a Kalman
// tracker on a fixed rate cycle.  Counters report tracking quality
// against the measured ground truth; throughput reports streams/s.
void BM_FlapTracking(benchmark::State& state) {
  double rms = 0.0, lag = -1.0;
  std::uint64_t streams = 0;
  for (auto _ : state) {
    core::SingleHopConfig cfg;
    cfg.model = core::CrossModel::kCbr;
    cfg.seed = 7;
    core::Scenario sc = core::Scenario::single_hop(cfg);
    sim::FaultInjector inj(sc.simulator());
    const sim::SimTime start = sc.simulator().now();
    const sim::SimTime flap_at = start + 8 * kSecond;
    inj.flap(sc.path().link(0), flap_at, 6 * kSecond, 30e6);

    online::KalmanTracker tracker;
    const double rates[4] = {30e6, 40e6, 50e6, 60e6};
    const sim::SimTime tick = 250 * kMillisecond;
    double sq = 0.0;
    std::size_t n = 0;
    lag = -1.0;
    std::size_t i = 0;
    for (sim::SimTime t = start + tick; t <= start + 20 * kSecond; t += tick) {
      auto res = sc.session().send_stream_now(
          probe::StreamSpec::periodic(rates[i++ & 3], 1200, 60));
      tracker.feed(res);
      ++streams;
      sc.simulator().run_until(t);
      double truth = sc.ground_truth(t - tick, t);
      double est = tracker.belief().estimate_bps;
      if (!std::isfinite(est)) continue;
      if (t - start >= 3 * kSecond) {
        double e = (est - truth) / 1e6;
        sq += e * e;
        ++n;
      }
      if (lag < 0.0 && t > flap_at &&
          std::fabs(est - truth) <= 0.3 * std::max(truth, 2e6))
        lag = sim::to_seconds(t - flap_at);
    }
    rms = n > 0 ? std::sqrt(sq / static_cast<double>(n)) : -1.0;
    benchmark::DoNotOptimize(rms);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(streams));
  state.counters["rms_mbps"] = rms;
  state.counters["lag_s"] = lag;
}
BENCHMARK(BM_FlapTracking)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main, same convention as micro_sim/micro_obs: default the JSON
// output to BENCH_online.json so bench_check needs no flag plumbing.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  std::string out_flag = "--benchmark_out=BENCH_online.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int nargs = static_cast<int>(args.size());
  benchmark::Initialize(&nargs, args.data());
  if (benchmark::ReportUnrecognizedArguments(nargs, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
}
