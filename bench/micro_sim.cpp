// Micro-benchmarks of the simulation kernel (google-benchmark): event
// scheduling throughput, link forwarding, utilization-meter queries, and
// a full probing round trip.  These bound how large the paper-scale
// experiments (500-stream curves, multi-minute TCP runs) can get.
//
// The two headline benchmarks (BM_SchedulerChurn, BM_LinkForwarding)
// measure *steady state*: a warm event pool with a constant pending-event
// population, the regime a long-running experiment lives in.  Cold-start
// behavior (fresh simulator, growing pool) is covered separately by
// BM_SchedulerColdStart.  Closures carry a Packet by value because that
// is what the real hot path schedules (a [handler*, Packet] delivery
// capture); tiny captures would hide the cost of callback storage.
//
// Running the binary with no arguments writes machine-readable results to
// BENCH_core.json in the current directory (see main() below);
// bench/check_regression.py compares such a run against the committed
// bench/BENCH_core.baseline.json.  The same source compiles against the
// seed (pre-PR) kernel — the `if constexpr (requires ...)` guards skip
// introspection the seed does not have — which is how the committed
// baseline's `seed` numbers were produced.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "probe/stream_spec.hpp"
#include "sim/link.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "traffic/poisson.hpp"

namespace {

using namespace abw;

// Records the pending-event high-water mark when the kernel exposes it
// (template so the discarded branch is never instantiated: this source
// also compiles against the seed kernel to produce baselines).
template <typename Sim>
void record_peak_events(Sim& simu, benchmark::State& state) {
  if constexpr (requires { simu.peak_event_count(); })
    state.counters["peak_events"] =
        static_cast<double>(simu.peak_event_count());
}

// Steady-state event churn ("hold model"): a fixed population of pending
// events where every pop schedules a replacement at a pseudo-random
// future offset.  Throughput here is the ceiling on total simulated
// events per wall-clock second.
void BM_SchedulerChurn(benchmark::State& state) {
  sim::Simulator simu;
  constexpr int kPending = 1000;  // events in flight at all times
  // Gap in [1, 1024] ns via a mask (a modulo's integer divide would be
  // benchmark overhead on the critical path); ~2 events per sim-ns.
  constexpr std::uint64_t kGapMask = 1023;

  struct Churner {
    sim::Simulator* simu;
    sim::Packet pkt;  // realistic capture: the hot path schedules Packets
    void operator()() {
      pkt.id = pkt.id * 6364136223846793005ULL + 1442695040888963407ULL;
      sim::SimTime gap =
          1 + static_cast<sim::SimTime>((pkt.id >> 33) & kGapMask);
      simu->after(gap, *this);
    }
  };
  static_assert(sizeof(Churner) == sizeof(sim::Packet) + 8,
                "capture should match the [handler*, Packet] delivery closure");

  for (int i = 0; i < kPending; ++i) {
    sim::Packet pkt;
    pkt.id = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
    pkt.size_bytes = 1500;
    simu.at(1 + i, Churner{&simu, pkt});
  }
  const std::uint64_t start_events = simu.events_processed();
  sim::SimTime t = simu.now();
  for (auto _ : state) {
    t += 5000;  // ~10k events per iteration at the steady-state rate
    simu.run_until(t);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(simu.events_processed() - start_events));
  record_peak_events(simu, state);
}
BENCHMARK(BM_SchedulerChurn);

// Cold start: construct a simulator, schedule a 10k-event backlog, drain
// it.  Dominated by pool/heap growth and first-touch memory, not by the
// steady-state path.
void BM_SchedulerColdStart(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simu;
    int fired = 0;
    for (int i = 0; i < 10000; ++i)
      simu.at(i, [&fired] { ++fired; });
    simu.run_until_idle();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerColdStart);

// Sustained store-and-forward across a two-hop path (fast access link
// into a tighter bottleneck, both with propagation delay), paced at the
// bottleneck service rate: every packet exercises queueing, two
// serializations, two propagation deliveries, and the utilization meter.
void BM_LinkForwarding(benchmark::State& state) {
  constexpr int kPackets = 5000;
  struct Injector {
    sim::Simulator* simu;
    sim::Path* path;
    int remaining;
    void operator()() {
      sim::Packet pkt;
      pkt.size_bytes = 1500;
      path->inject(0, pkt);
      if (--remaining > 0) simu->after(24000, *this);  // bottleneck pace
    }
  };
  for (auto _ : state) {
    sim::Simulator simu;
    sim::LinkConfig fast, tight;
    fast.capacity_bps = 1e9;
    fast.propagation_delay = 100;
    tight.capacity_bps = 5e8;  // 1500B service = 24 us
    tight.propagation_delay = 100;
    sim::Path path(simu, {fast, tight});
    sim::CountingSink sink;
    path.set_receiver(&sink);
    simu.at(0, Injector{&simu, &path, kPackets});
    simu.run_until_idle();
    benchmark::DoNotOptimize(sink.packets());
    record_peak_events(simu, state);
  }
  state.SetItemsProcessed(state.iterations() * kPackets);
}
BENCHMARK(BM_LinkForwarding);

void BM_MeterWindowQuery(benchmark::State& state) {
  sim::UtilizationMeter meter(100e6);
  sim::SimTime t = 0;
  for (int i = 0; i < 100000; ++i) {
    meter.add_busy(t, t + 120, i % 3 == 0);
    t += 250;
  }
  sim::SimTime horizon = t;
  std::size_t q = 0;
  for (auto _ : state) {
    sim::SimTime t1 = (q * 7919) % (horizon / 2);
    benchmark::DoNotOptimize(meter.cross_avail_bw(t1, t1 + horizon / 3));
    ++q;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeterWindowQuery);

// Full avail_bw_series sweep over a long busy history — the ground-truth
// curve extraction used by every figure experiment.
void BM_MeterSeriesSweep(benchmark::State& state) {
  sim::UtilizationMeter meter(100e6);
  sim::SimTime t = 0;
  for (int i = 0; i < 100000; ++i) {
    meter.add_busy(t, t + 120, i % 3 == 0);
    t += 250;
  }
  std::size_t produced = 0;
  for (auto _ : state) {
    auto series = meter.avail_bw_series(0, t, 10000, true);
    produced += series.size();
    benchmark::DoNotOptimize(series.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(produced));
}
BENCHMARK(BM_MeterSeriesSweep);

void BM_PoissonTrafficSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simu;
    sim::LinkConfig cfg;
    cfg.capacity_bps = 100e6;
    sim::Path path(simu, {cfg});
    sim::CountingSink sink;
    path.set_receiver(&sink);
    traffic::PoissonGenerator gen(simu, path, 0, false, 1, stats::Rng(1), 50e6,
                                  traffic::SizeDistribution::fixed(1500));
    gen.start(0, sim::kSecond);
    simu.run_until(sim::kSecond);
    benchmark::DoNotOptimize(sink.packets());
  }
}
BENCHMARK(BM_PoissonTrafficSecond);

void BM_ProbeStreamRoundTrip(benchmark::State& state) {
  core::SingleHopConfig cfg;
  auto sc = core::Scenario::single_hop(cfg);
  auto spec = probe::StreamSpec::periodic(40e6, 1500, 100);
  for (auto _ : state) {
    auto res = sc.session().send_stream_now(spec);
    benchmark::DoNotOptimize(res.output_rate_bps());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ProbeStreamRoundTrip);

}  // namespace

// Custom main: unless the caller already passed --benchmark_out, default
// to writing JSON results to BENCH_core.json in the current directory so
// `./micro_sim && python3 ../bench/check_regression.py ...` needs no
// flag plumbing.  All standard google-benchmark flags still work.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  std::string out_flag = "--benchmark_out=BENCH_core.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int nargs = static_cast<int>(args.size());
  benchmark::Initialize(&nargs, args.data());
  if (benchmark::ReportUnrecognizedArguments(nargs, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
