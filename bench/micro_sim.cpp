// Micro-benchmarks of the simulation kernel (google-benchmark): event
// scheduling throughput, link forwarding, utilization-meter queries, and
// a full probing round trip.  These bound how large the paper-scale
// experiments (500-stream curves, multi-minute TCP runs) can get.
#include <benchmark/benchmark.h>

#include "core/scenario.hpp"
#include "probe/stream_spec.hpp"
#include "sim/link.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "traffic/poisson.hpp"

namespace {

using namespace abw;

void BM_SchedulerChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simu;
    int fired = 0;
    for (int i = 0; i < 10000; ++i)
      simu.at(i, [&fired] { ++fired; });
    simu.run_until_idle();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerChurn);

void BM_LinkForwarding(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simu;
    sim::LinkConfig cfg;
    cfg.capacity_bps = 1e9;
    sim::Path path(simu, {cfg});
    sim::CountingSink sink;
    path.set_receiver(&sink);
    for (int i = 0; i < 5000; ++i) {
      sim::Packet p;
      p.size_bytes = 1500;
      simu.at(i * 100, [&path, p] { path.inject(0, p); });
    }
    simu.run_until_idle();
    benchmark::DoNotOptimize(sink.packets());
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_LinkForwarding);

void BM_MeterWindowQuery(benchmark::State& state) {
  sim::UtilizationMeter meter(100e6);
  sim::SimTime t = 0;
  for (int i = 0; i < 100000; ++i) {
    meter.add_busy(t, t + 120, i % 3 == 0);
    t += 250;
  }
  sim::SimTime horizon = t;
  std::size_t q = 0;
  for (auto _ : state) {
    sim::SimTime t1 = (q * 7919) % (horizon / 2);
    benchmark::DoNotOptimize(meter.cross_avail_bw(t1, t1 + horizon / 3));
    ++q;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeterWindowQuery);

void BM_PoissonTrafficSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simu;
    sim::LinkConfig cfg;
    cfg.capacity_bps = 100e6;
    sim::Path path(simu, {cfg});
    sim::CountingSink sink;
    path.set_receiver(&sink);
    traffic::PoissonGenerator gen(simu, path, 0, false, 1, stats::Rng(1), 50e6,
                                  traffic::SizeDistribution::fixed(1500));
    gen.start(0, sim::kSecond);
    simu.run_until(sim::kSecond);
    benchmark::DoNotOptimize(sink.packets());
  }
}
BENCHMARK(BM_PoissonTrafficSecond);

void BM_ProbeStreamRoundTrip(benchmark::State& state) {
  core::SingleHopConfig cfg;
  auto sc = core::Scenario::single_hop(cfg);
  auto spec = probe::StreamSpec::periodic(40e6, 1500, 100);
  for (auto _ : state) {
    auto res = sc.session().send_stream_now(spec);
    benchmark::DoNotOptimize(res.output_rate_bps());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ProbeStreamRoundTrip);

}  // namespace
