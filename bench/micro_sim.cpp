// Micro-benchmarks of the simulation kernel (google-benchmark): event
// scheduling throughput, link forwarding, utilization-meter queries, and
// a full probing round trip.  These bound how large the paper-scale
// experiments (500-stream curves, multi-minute TCP runs) can get.
//
// The two headline benchmarks (BM_SchedulerChurn, BM_LinkForwarding)
// measure *steady state*: a warm event pool with a constant pending-event
// population, the regime a long-running experiment lives in.  Cold-start
// behavior (fresh simulator, growing pool) is covered separately by
// BM_SchedulerColdStart.  Closures carry a Packet by value because that
// is what the real hot path schedules (a [handler*, Packet] delivery
// capture); tiny captures would hide the cost of callback storage.
//
// Running the binary with no arguments writes machine-readable results to
// BENCH_core.json in the current directory (see main() below);
// bench/check_regression.py compares such a run against the committed
// bench/BENCH_core.baseline.json.  The same source compiles against the
// seed (pre-PR) kernel — the `if constexpr (requires ...)` guards skip
// introspection the seed does not have — which is how the committed
// baseline's `seed` numbers were produced.
// In addition to the google-benchmark suite, main() runs the fig1/fig3
// hybrid-vs-packet comparison workloads and writes BENCH_fluid.json
// (same JSON shape, items_per_second = wall-clock speedup), gated by
// bench/BENCH_fluid.baseline.json through the same check_regression.py.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "probe/stream_spec.hpp"
#include "runner/bench_report.hpp"
#include "sim/hybrid.hpp"
#include "sim/link.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "trace/synthetic_trace.hpp"
#include "traffic/poisson.hpp"
#include "traffic/trace_replay.hpp"

namespace {

using namespace abw;

// Records the pending-event high-water mark when the kernel exposes it
// (template so the discarded branch is never instantiated: this source
// also compiles against the seed kernel to produce baselines).
template <typename Sim>
void record_peak_events(Sim& simu, benchmark::State& state) {
  if constexpr (requires { simu.peak_event_count(); })
    state.counters["peak_events"] =
        static_cast<double>(simu.peak_event_count());
}

// Steady-state event churn ("hold model"): a fixed population of pending
// events where every pop schedules a replacement at a pseudo-random
// future offset.  Throughput here is the ceiling on total simulated
// events per wall-clock second.
void BM_SchedulerChurn(benchmark::State& state) {
  sim::Simulator simu;
  constexpr int kPending = 1000;  // events in flight at all times
  // Gap in [1, 1024] ns via a mask (a modulo's integer divide would be
  // benchmark overhead on the critical path); ~2 events per sim-ns.
  constexpr std::uint64_t kGapMask = 1023;

  struct Churner {
    sim::Simulator* simu;
    sim::Packet pkt;  // realistic capture: the hot path schedules Packets
    void operator()() {
      pkt.id = pkt.id * 6364136223846793005ULL + 1442695040888963407ULL;
      sim::SimTime gap =
          1 + static_cast<sim::SimTime>((pkt.id >> 33) & kGapMask);
      simu->after(gap, *this);
    }
  };
  static_assert(sizeof(Churner) == sizeof(sim::Packet) + 8,
                "capture should match the [handler*, Packet] delivery closure");

  for (int i = 0; i < kPending; ++i) {
    sim::Packet pkt;
    pkt.id = 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(i + 1);
    pkt.size_bytes = 1500;
    simu.at(1 + i, Churner{&simu, pkt});
  }
  const std::uint64_t start_events = simu.events_processed();
  sim::SimTime t = simu.now();
  for (auto _ : state) {
    t += 5000;  // ~10k events per iteration at the steady-state rate
    simu.run_until(t);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(simu.events_processed() - start_events));
  record_peak_events(simu, state);
}
BENCHMARK(BM_SchedulerChurn);

// Cold start: construct a simulator, schedule a 10k-event backlog, drain
// it.  Dominated by pool/heap growth and first-touch memory, not by the
// steady-state path.
void BM_SchedulerColdStart(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simu;
    int fired = 0;
    for (int i = 0; i < 10000; ++i)
      simu.at(i, [&fired] { ++fired; });
    simu.run_until_idle();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SchedulerColdStart);

// Sustained store-and-forward across a two-hop path (fast access link
// into a tighter bottleneck, both with propagation delay), paced at the
// bottleneck service rate: every packet exercises queueing, two
// serializations, two propagation deliveries, and the utilization meter.
void BM_LinkForwarding(benchmark::State& state) {
  constexpr int kPackets = 5000;
  struct Injector {
    sim::Simulator* simu;
    sim::Path* path;
    int remaining;
    void operator()() {
      sim::Packet pkt;
      pkt.size_bytes = 1500;
      path->inject(0, pkt);
      if (--remaining > 0) simu->after(24000, *this);  // bottleneck pace
    }
  };
  for (auto _ : state) {
    sim::Simulator simu;
    sim::LinkConfig fast, tight;
    fast.capacity_bps = 1e9;
    fast.propagation_delay = 100;
    tight.capacity_bps = 5e8;  // 1500B service = 24 us
    tight.propagation_delay = 100;
    sim::Path path(simu, {fast, tight});
    sim::CountingSink sink;
    path.set_receiver(&sink);
    simu.at(0, Injector{&simu, &path, kPackets});
    simu.run_until_idle();
    benchmark::DoNotOptimize(sink.packets());
    record_peak_events(simu, state);
  }
  state.SetItemsProcessed(state.iterations() * kPackets);
}
BENCHMARK(BM_LinkForwarding);

void BM_MeterWindowQuery(benchmark::State& state) {
  sim::UtilizationMeter meter(100e6);
  sim::SimTime t = 0;
  for (int i = 0; i < 100000; ++i) {
    meter.add_busy(t, t + 120, i % 3 == 0);
    t += 250;
  }
  sim::SimTime horizon = t;
  std::size_t q = 0;
  for (auto _ : state) {
    sim::SimTime t1 = (q * 7919) % (horizon / 2);
    benchmark::DoNotOptimize(meter.cross_avail_bw(t1, t1 + horizon / 3));
    ++q;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeterWindowQuery);

// Full avail_bw_series sweep over a long busy history — the ground-truth
// curve extraction used by every figure experiment.
void BM_MeterSeriesSweep(benchmark::State& state) {
  sim::UtilizationMeter meter(100e6);
  sim::SimTime t = 0;
  for (int i = 0; i < 100000; ++i) {
    meter.add_busy(t, t + 120, i % 3 == 0);
    t += 250;
  }
  std::size_t produced = 0;
  for (auto _ : state) {
    auto series = meter.avail_bw_series(0, t, 10000, true);
    produced += series.size();
    benchmark::DoNotOptimize(series.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(produced));
}
BENCHMARK(BM_MeterSeriesSweep);

void BM_PoissonTrafficSecond(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator simu;
    sim::LinkConfig cfg;
    cfg.capacity_bps = 100e6;
    sim::Path path(simu, {cfg});
    sim::CountingSink sink;
    path.set_receiver(&sink);
    traffic::PoissonGenerator gen(simu, path, 0, false, 1, stats::Rng(1), 50e6,
                                  traffic::SizeDistribution::fixed(1500));
    gen.start(0, sim::kSecond);
    simu.run_until(sim::kSecond);
    benchmark::DoNotOptimize(sink.packets());
  }
}
BENCHMARK(BM_PoissonTrafficSecond);

void BM_ProbeStreamRoundTrip(benchmark::State& state) {
  core::SingleHopConfig cfg;
  auto sc = core::Scenario::single_hop(cfg);
  auto spec = probe::StreamSpec::periodic(40e6, 1500, 100);
  for (auto _ : state) {
    auto res = sc.session().send_stream_now(spec);
    benchmark::DoNotOptimize(res.output_rate_bps());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_ProbeStreamRoundTrip);

// ------------------------------------------------ hybrid fluid bench -----

// One hybrid-vs-packet comparison: wall seconds and the measured ground
// truth for each mode.
struct FluidRun {
  double seconds = 0.0;
  double abw = 0.0;
};

// Fig. 1 workload: replay the synthetic NLANR-substitute trace through an
// OC-3 tight link and record its ground-truth avail-bw series A_tau(t) —
// the population every sampling experiment draws from, produced exactly
// as the paper does it: a fixed recorded workload, not a live random
// process.  The trace is synthesized ONCE (outside both timed runs; the
// fGn synthesis cost is identical in either mode) and replayed through a
// traffic::TraceGenerator, so the timed region is pure simulation: one
// event per packet in packet mode, chunked fluid absorption in hybrid
// mode.  No probes — this isolates the cross-traffic fast path.
FluidRun run_fig1_workload(sim::SimMode mode,
                           std::vector<traffic::ReplayRecord> recs) {
  // By-value records: the caller's copy of the ~700k-record trace is made
  // at argument binding, OUTSIDE the timed region (it is the same cost in
  // either mode and not what this bench measures).
  constexpr sim::SimTime kEnd = 120 * sim::kSecond;
  FluidRun r;
  double t0 = runner::monotonic_seconds();
  sim::LinkConfig link;
  link.capacity_bps = 155.52e6;  // OC-3, as in the paper's trace
  link.propagation_delay = sim::kMillisecond;
  auto sc = core::Scenario::custom({link}, /*seed=*/1);
  sc.add_cross_source(
      std::make_unique<traffic::TraceGenerator>(sc.simulator(), sc.path(), 0,
                                                /*one_hop=*/false,
                                                /*flow_id=*/1000,
                                                std::move(recs)),
      0, /*one_hop=*/false, /*flow_id=*/1000, mode, kEnd + sim::kSecond);
  sc.simulator().run_until(kEnd);
  auto series = core::ground_truth_series(sc, sim::kSecond, kEnd,
                                          100 * sim::kMillisecond);
  benchmark::DoNotOptimize(series.data());
  r.abw = sc.ground_truth(sim::kSecond, kEnd);
  r.seconds = runner::monotonic_seconds() - t0;
  return r;
}

std::vector<traffic::ReplayRecord> make_fig1_trace() {
  trace::SyntheticTraceConfig tc;
  tc.duration = 121 * sim::kSecond;
  stats::Rng rng(42);
  trace::PacketTrace pt = trace::synthesize_selfsimilar_trace(tc, rng);
  std::vector<traffic::ReplayRecord> recs;
  recs.reserve(pt.size());
  for (const auto& rec : pt.records()) recs.push_back({rec.at, rec.size_bytes});
  return recs;
}

// Fig. 3 workload: an Ro/Ri response curve against a high-pps CBR
// aggregate (small packets, the paper's fluid-like burstiness baseline),
// probed with pathload-like epoch pacing: one 100-packet stream, then ~3 s
// of idle while the tool computes and queues drain (the paper stresses
// that tools spend most wall-clock time between streams).  Probe/cross
// interaction runs discrete in both modes; the fluid fast path covers the
// idle epochs, which dominate simulated time.
FluidRun run_fig3_workload(sim::SimMode mode) {
  FluidRun r;
  double t0 = runner::monotonic_seconds();
  core::SingleHopConfig cfg;
  cfg.mode = mode;
  cfg.model = core::CrossModel::kCbr;
  cfg.cross_packet_size = 250;  // 25 Mb/s -> 12500 pps
  cfg.traffic_horizon = 110 * sim::kSecond;
  auto sc = core::Scenario::single_hop(cfg);
  core::RatioCurveConfig rc;
  rc.rates_bps = {10e6, 15e6, 20e6, 25e6, 30e6, 35e6, 40e6, 45e6};
  rc.streams_per_rate = 4;
  rc.packets_per_stream = 100;
  rc.inter_stream_gap = 3 * sim::kSecond;
  auto curve = core::measure_ratio_curve(sc, rc);
  benchmark::DoNotOptimize(curve.data());
  r.abw = sc.ground_truth(2 * sim::kSecond, sc.simulator().now());
  r.seconds = runner::monotonic_seconds() - t0;
  return r;
}

// Min-of-N wall time: each workload x mode runs kReps times and the
// fastest run is reported, the standard remedy for the +-30% scheduler
// noise of a small shared VM.  Both modes get the identical treatment, so
// the reported speedup is a noise-floor ratio, not a lucky draw.  The
// avail-bw values are deterministic across repetitions (asserted).
template <typename Fn>
FluidRun min_of_reps(Fn&& run) {
  constexpr int kReps = 3;
  FluidRun best = run();
  for (int i = 1; i < kReps; ++i) {
    FluidRun r = run();
    if (r.abw != best.abw)
      std::fprintf(stderr, "micro_sim: WARNING: nondeterministic avail-bw "
                           "across repetitions (%.1f vs %.1f)\n",
                   r.abw, best.abw);
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

// Runs both workloads in both modes and writes BENCH_fluid.json
// (google-benchmark JSON shape; items_per_second carries the speedup so
// check_regression.py gates it unchanged).
void run_fluid_comparison() {
  struct Row {
    const char* name;
    FluidRun packet, hybrid;
  };
  const auto trace = make_fig1_trace();
  Row rows[] = {
      {"FLUID_fig1_ground_truth",
       min_of_reps([&] { return run_fig1_workload(sim::SimMode::kPacket, trace); }),
       min_of_reps([&] { return run_fig1_workload(sim::SimMode::kHybrid, trace); })},
      {"FLUID_fig3_response_curve",
       min_of_reps([] { return run_fig3_workload(sim::SimMode::kPacket); }),
       min_of_reps([] { return run_fig3_workload(sim::SimMode::kHybrid); })},
  };
  std::FILE* f = std::fopen("BENCH_fluid.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_sim: cannot write BENCH_fluid.json\n");
    return;
  }
  std::fprintf(f, "{\n  \"context\": {\"note\": "
                  "\"items_per_second = packet_s / hybrid_s (wall-clock "
                  "speedup); abw_rel_err = |hybrid - packet| / packet\"},\n"
                  "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < 2; ++i) {
    const Row& row = rows[i];
    double speedup = row.packet.seconds / row.hybrid.seconds;
    double rel_err = std::fabs(row.hybrid.abw - row.packet.abw) /
                     row.packet.abw;
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
        "\"iterations\": 1, \"real_time\": %.6e, \"cpu_time\": %.6e, "
        "\"time_unit\": \"ns\", \"items_per_second\": %.4f, "
        "\"packet_s\": %.6f, \"hybrid_s\": %.6f, "
        "\"abw_packet_bps\": %.1f, \"abw_hybrid_bps\": %.1f, "
        "\"abw_rel_err\": %.6f}%s\n",
        row.name, row.hybrid.seconds * 1e9, row.hybrid.seconds * 1e9,
        speedup, row.packet.seconds, row.hybrid.seconds, row.packet.abw,
        row.hybrid.abw, rel_err, i + 1 < 2 ? "," : "");
    std::printf("%-28s packet %8.3f s  hybrid %8.3f s  speedup %6.2fx  "
                "abw err %.4f%%\n",
                row.name, row.packet.seconds, row.hybrid.seconds, speedup,
                rel_err * 100.0);
    if (speedup < 5.0)
      std::fprintf(stderr, "micro_sim: WARNING: %s speedup %.2fx below the "
                           "5x target\n", row.name, speedup);
    if (rel_err > 0.05)
      std::fprintf(stderr, "micro_sim: WARNING: %s avail-bw diverges %.2f%% "
                           "from packet mode\n", row.name, rel_err * 100.0);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

}  // namespace

// Custom main: unless the caller already passed --benchmark_out, default
// to writing JSON results to BENCH_core.json in the current directory so
// `./micro_sim && python3 ../bench/check_regression.py ...` needs no
// flag plumbing.  All standard google-benchmark flags still work.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  std::string out_flag = "--benchmark_out=BENCH_core.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int nargs = static_cast<int>(args.size());
  benchmark::Initialize(&nargs, args.data());
  if (benchmark::ReportUnrecognizedArguments(nargs, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  run_fluid_comparison();
  return 0;
}
