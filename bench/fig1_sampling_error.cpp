// Figure 1 — "Relative error of the sample mean m_A for three averaging
// time scales."
//
// Paper setup: an NLANR OC-3 packet trace; repeatedly collect k = 20
// avail-bw samples with Poisson sampling, compute the sample mean, and
// plot the CDF of the relative error epsilon = (m_A - A) / A for
// tau in {1 ms, 10 ms, 100 ms}.
//
// Our substitute for the proprietary trace is the synthetic self-similar
// OC-3 trace (DESIGN.md).  Expected shape: the CDF widens dramatically as
// tau shrinks — at tau = 1 ms, 20 samples leave errors of +-10-20%; at
// 100 ms the CDF is tight around 0.
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "runner/batch.hpp"
#include "runner/cli.hpp"
#include "runner/bench_report.hpp"
#include "stats/cdf.hpp"
#include "stats/moments.hpp"
#include "trace/availbw_process.hpp"
#include "trace/synthetic_trace.hpp"

int main(int argc, char** argv) {
  using namespace abw;
  core::print_header(std::cout, "Figure 1: sampling error of the avail-bw sample mean",
                     "Jain & Dovrolis IMC'04, Fig. 1");
  std::size_t jobs = runner::jobs_from_cli(argc, argv);

  stats::Rng rng(1);
  trace::SyntheticTraceConfig tc;
  tc.duration = 30 * sim::kSecond;
  std::printf("workload: synthetic self-similar OC-3 trace (NLANR substitute), "
              "%.0f s, util %.0f%%, H=%.2f\n",
              sim::to_seconds(tc.duration), tc.mean_utilization * 100, tc.hurst);
  trace::PacketTrace tr = trace::synthesize_selfsimilar_trace(tc, rng);
  trace::AvailBwProcess proc(tr);
  double mean_a = proc.mean_avail_bw();
  std::printf("trace mean avail-bw A = %s\n\n", core::mbps(mean_a).c_str());

  constexpr std::size_t kSamples = 20;   // k = 20, as in the paper
  constexpr int kRepeats = 400;          // sample-mean realizations per CDF

  const double taus_ms[] = {1.0, 10.0, 100.0};

  // One task per (tau, repetition): each task draws its k samples with its
  // own Rng derived from a fixed base seed, so the 1200-realization grid is
  // embarrassingly parallel and bit-identical for every thread count.  The
  // trace index (`proc`) is shared read-only across tasks.
  constexpr std::uint64_t kSampleSeed = 20040101;
  const std::size_t grid = 3 * static_cast<std::size_t>(kRepeats);
  auto flat_errors = runner::timed_speedup_map(
      "fig1_sampling_error", grid, jobs, [&](std::size_t i) {
        double tau_ms = taus_ms[i / kRepeats];
        stats::Rng task_rng(runner::derive_seed(kSampleSeed, i));
        auto samples =
            proc.poisson_samples(kSamples, sim::from_millis(tau_ms), task_rng);
        return stats::relative_error(stats::mean(samples), mean_a);
      });

  std::vector<stats::EmpiricalCdf> cdfs;
  std::vector<double> spread;
  for (std::size_t ti = 0; ti < 3; ++ti) {
    std::vector<double> errors(flat_errors.begin() + ti * kRepeats,
                               flat_errors.begin() + (ti + 1) * kRepeats);
    spread.push_back(stats::stddev(errors));
    cdfs.emplace_back(std::move(errors));
  }

  // Print the CDFs the way the paper plots them: P[eps <= x] per tau.
  core::Table table({"epsilon", "tau=1ms", "tau=10ms", "tau=100ms"});
  for (double x = -0.20; x <= 0.201; x += 0.04) {
    char xs[16];
    std::snprintf(xs, sizeof xs, "%+.2f", x);
    table.row({xs, core::pct(cdfs[0].at(x)), core::pct(cdfs[1].at(x)),
               core::pct(cdfs[2].at(x))});
  }
  table.print(std::cout);

  std::printf("\nsample-mean error spread (stddev of epsilon): "
              "1ms %.1f%%  10ms %.1f%%  100ms %.1f%%\n",
              spread[0] * 100, spread[1] * 100, spread[2] * 100);

  core::print_check(
      std::cout,
      "unless tau is 10ms or more, significant errors should be expected "
      "with 20 samples; at 1ms errors are large",
      "error spread grows monotonically as tau shrinks, and the 1ms CDF is "
      "several times wider than the 100ms CDF",
      spread[0] > spread[1] && spread[1] > spread[2] && spread[0] > 3 * spread[2]);
  return 0;
}
