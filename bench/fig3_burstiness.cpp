// Figure 3 — "Effect of cross traffic burstiness."
//
// Paper setup: single hop, Ct = 50 Mb/s, mean avail-bw 25 Mb/s; measure
// the average Ro/Ri over 500 probing streams as a function of Ri for
// three cross-traffic models: CBR (periodic), Poisson, Pareto ON-OFF
// (OFF shape 1.5, ON 1-10 packets).
//
// Expected shape: with CBR the ratio stays ~1 until Ri crosses A = 25 and
// only then drops (fluid behaviour); with Poisson and even more with
// Pareto ON-OFF, Ro/Ri < 1 well BEFORE Ri reaches the avail-bw —
// burstiness causes underestimation in rate-based detection.
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "runner/batch.hpp"
#include "runner/cli.hpp"
#include "runner/bench_report.hpp"

int main(int argc, char** argv) {
  using namespace abw;
  core::print_header(std::cout, "Figure 3: effect of cross-traffic burstiness",
                     "Jain & Dovrolis IMC'04, Fig. 3");
  std::size_t jobs = runner::jobs_from_cli(argc, argv);
  std::printf("workload: single hop, Ct=50 Mbps, A=25 Mbps, 500 streams of "
              "100 x 1500B packets per point, %zu thread(s)\n\n", jobs);

  std::vector<double> rates;
  for (double r = 5e6; r <= 30e6 + 1; r += 2.5e6) rates.push_back(r);

  const core::CrossModel models[] = {core::CrossModel::kCbr,
                                     core::CrossModel::kPoisson,
                                     core::CrossModel::kParetoOnOff};

  // Serial-vs-parallel wall-time tracking on a reduced calibration sweep
  // (one model, 60 streams per point) so BENCH_batch.json records the
  // runner's speedup without running the full figure twice.
  runner::timed_speedup_map(
      "fig3_burstiness_calib", rates.size(), jobs, [&](std::size_t i) {
        core::SingleHopConfig cfg;
        cfg.model = core::CrossModel::kPoisson;
        cfg.seed = 300 + 37 + (i + 1);
        core::Scenario sc = core::Scenario::single_hop(cfg);
        core::RatioCurveConfig one;
        one.rates_bps = {rates[i]};
        one.streams_per_rate = 60;
        return core::measure_ratio_curve(sc, one).front();
      });
  std::printf("\n");

  std::vector<std::vector<core::RatioPoint>> curves;
  for (int mi = 0; mi < 3; ++mi) {
    core::RatioCurveConfig rc;
    rc.rates_bps = rates;
    rc.streams_per_rate = 500;
    // Fresh scenario per rate point: 500 long streams at low rates would
    // otherwise outlive one scenario's cross-traffic horizon.  Rate points
    // run in parallel on `jobs` threads; the curve is identical for any
    // thread count.
    curves.push_back(core::measure_ratio_curve_fresh(
        [&](std::uint64_t seed) {
          core::SingleHopConfig cfg;
          cfg.model = models[mi];
          cfg.seed = 300 + 37 * static_cast<std::uint64_t>(mi) + seed;
          return core::Scenario::single_hop(cfg);
        },
        rc, jobs));
  }

  core::Table table({"Ri (Mbps)", "CBR", "Poisson", "Pareto ON-OFF"});
  for (std::size_t i = 0; i < rates.size(); ++i) {
    char r[16], c0[16], c1[16], c2[16];
    std::snprintf(r, sizeof r, "%.1f", rates[i] / 1e6);
    std::snprintf(c0, sizeof c0, "%.4f", curves[0][i].mean_ratio);
    std::snprintf(c1, sizeof c1, "%.4f", curves[1][i].mean_ratio);
    std::snprintf(c2, sizeof c2, "%.4f", curves[2][i].mean_ratio);
    table.row({r, c0, c1, c2});
  }
  table.print(std::cout);
  std::printf("(avail-bw A = 25 Mbps: rows above 25 are below the avail-bw)\n");

  // Evaluate the claims at Ri = 20 Mb/s (below A) and the shape at A.
  std::size_t i20 = 6;  // 5 + 6*2.5 = 20 Mb/s
  double cbr20 = curves[0][i20].mean_ratio;
  double poi20 = curves[1][i20].mean_ratio;
  double par20 = curves[2][i20].mean_ratio;

  core::print_check(
      std::cout,
      "with CBR the ratio drops below 1 only after Ri > A; with Poisson "
      "and Pareto ON-OFF, Ro/Ri < 1 well before the avail-bw point, and "
      "Pareto is the most depressed",
      "at Ri=20<A: CBR " + std::to_string(cbr20) + ", Poisson " +
          std::to_string(poi20) + ", Pareto " + std::to_string(par20),
      cbr20 > 0.998 && poi20 < 0.999 && par20 < poi20 + 0.002);

  std::printf("\nimplication: Ro/Ri thresholds are path- and burstiness-"
              "dependent\n(see bench/ablate_threshold for the sweep).\n");
  return 0;
}
