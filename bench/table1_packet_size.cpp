// Table 1 — "Effect of cross traffic packet size Lc on the relative
// error epsilon for four sample sizes k."
//
// Paper setup: single hop (Ct = 50 Mb/s, avail-bw 25 Mb/s held constant),
// probing with 1500 B packet pairs; cross traffic packet size
// Lc in {40, 512, 1500} B.  For k in {10, 20, 50, 100} pair samples,
// report the relative error of the k-sample mean.
//
// Paper's rows:   Lc=40B:   0    0    0    0
//                 Lc=512B:  31%  8%   5%   2.5%
//                 Lc=1500B: 40%  20%  8%   2%
// The shape to reproduce: error ~0 for tiny cross packets at every k,
// error large for big cross packets at small k, decaying as k grows.
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "stats/moments.hpp"

int main() {
  using namespace abw;
  core::print_header(std::cout, "Table 1: cross-traffic packet size vs packet-pair error",
                     "Jain & Dovrolis IMC'04, Table 1");
  std::printf("workload: single hop, Ct=50 Mbps, A=25 Mbps constant, probe "
              "pairs of 1500 B;\nrelative error of the k-pair sample mean, "
              "averaged over 60 independent sample sets\n\n");

  const std::uint32_t sizes[] = {40, 512, 1500};
  const std::size_t ks[] = {10, 20, 50, 100};
  constexpr int kSets = 60;

  double err[3][4] = {};
  for (int si = 0; si < 3; ++si) {
    // Constant-rate cross traffic, as the paper's "keeping the average
    // avail-bw constant" implies: with smooth arrivals the only noise in a
    // pair sample is the packet-size quantization under study.
    core::SingleHopConfig cfg;
    cfg.model = core::CrossModel::kCbr;
    cfg.cross_packet_size = sizes[si];
    cfg.seed = 100 + si;
    auto sc = core::Scenario::single_hop(cfg);
    double a = sc.nominal_avail_bw();

    for (int ki = 0; ki < 4; ++ki) {
      stats::RunningStats abs_err;
      for (int set = 0; set < kSets; ++set) {
        auto samples = core::collect_pair_samples(sc, cfg.capacity_bps, 1500,
                                                  ks[ki], 5 * sim::kMillisecond);
        if (samples.empty()) continue;
        abs_err.add(std::abs(stats::relative_error(stats::mean(samples), a)));
      }
      err[si][ki] = abs_err.mean();
    }
  }

  core::Table table({"", "k=10", "k=20", "k=50", "k=100"});
  for (int si = 0; si < 3; ++si) {
    char label[16];
    std::snprintf(label, sizeof label, "Lc=%uB", sizes[si]);
    table.row({label, core::pct(err[si][0]), core::pct(err[si][1]),
               core::pct(err[si][2]), core::pct(err[si][3])});
  }
  table.print(std::cout);

  bool small_packets_fine = err[0][0] < 0.05;
  bool error_grows_with_lc = err[2][0] > 2 * err[0][0] && err[2][0] > err[1][0] * 0.8;
  bool error_decays_with_k =
      err[2][3] < err[2][0] * 0.5 && err[1][3] < err[1][0] * 0.5;

  core::print_check(
      std::cout,
      "packet pairs are accurate when cross packets are small (40B), but a "
      "few large packets (1500B) make them significantly inaccurate at "
      "small k; the error decays as k grows",
      "rows reproduce the paper's ordering: Lc=40B row ~0, Lc=1500B row "
      "largest at k=10 and decaying with k",
      small_packets_fine && error_grows_with_lc && error_decays_with_k);
  return 0;
}
