#!/usr/bin/env python3
"""Performance-regression gate for the DES kernel micro-benchmarks.

Compares a fresh google-benchmark JSON run of bench/micro_sim against the
committed baseline (bench/BENCH_core.baseline.json) and fails when any
benchmark's throughput drops below --threshold times its baseline.

Typical use (micro_sim writes BENCH_core.json by default):

    cd build && ./bench/micro_sim && python3 ../bench/check_regression.py

or via the `bench_check` CMake target.  Baselines are machine-specific:
refresh the committed file (copy a run's BENCH_core.json over it) whenever
the reference machine or an intentional perf trade-off changes.

A missing baseline FILE is a warning, not an error (exit 0), so a new
bench JSON can land one commit before its committed baseline; pass
--require-baseline to restore the strict behavior.  Likewise a benchmark
name present only in the current run is reported as "(new)" and skipped.

Exit codes: 0 ok, 1 regression, 2 usage/file error.
"""

import argparse
import json
import re
import sys
from pathlib import Path


def parse_override(spec):
    """Splits an `--override REGEX=FLOAT` argument into (pattern, float).

    The regex may itself contain '='; the threshold is whatever follows
    the LAST '='.
    """
    pattern, sep, value = spec.rpartition("=")
    if not sep or not pattern:
        raise argparse.ArgumentTypeError(
            f"expected REGEX=FLOAT, got {spec!r}")
    try:
        threshold = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"threshold in {spec!r} is not a number")
    try:
        compiled = re.compile(pattern)
    except re.error as e:
        raise argparse.ArgumentTypeError(f"bad regex in {spec!r}: {e}")
    return compiled, threshold


def threshold_for(name, default, overrides):
    """First matching override wins (re.search, so substrings match)."""
    for pattern, value in overrides:
        if pattern.search(name):
            return value
    return default


def load_throughputs(path, missing_ok=False):
    """Map benchmark name -> items_per_second (falls back to 1/real_time).

    Aggregate rows (mean/median/stddev from --benchmark_repetitions) are
    skipped except the median, which then replaces the raw-run rows.

    With missing_ok, a nonexistent file returns None instead of exiting
    (corrupt JSON is still fatal — that is never intentional).
    """
    if missing_ok and not Path(path).exists():
        return None
    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"check_regression: cannot read {path}: {e}")
    out = {}
    medians = {}
    for b in data.get("benchmarks", []):
        name = b["name"]
        agg = b.get("aggregate_name")
        if agg and agg != "median":
            continue
        value = b.get("items_per_second")
        if value is None:
            real = b.get("real_time")
            if not real:
                continue
            value = 1e9 / real  # iterations/s from ns; unit cancels in ratio
        if agg == "median":
            medians[name.removesuffix("_median")] = value
        else:
            out[name] = value
    out.update(medians)
    return out


def main():
    here = Path(__file__).resolve().parent
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", nargs="?", default="BENCH_core.json",
                    help="fresh run to check (default: ./BENCH_core.json)")
    ap.add_argument("--baseline", default=str(here / "BENCH_core.baseline.json"),
                    help="committed reference run")
    ap.add_argument("--threshold", type=float, default=0.80,
                    help="fail when current < threshold * baseline "
                         "(default 0.80; noisy shared machines need slack)")
    ap.add_argument("--require-baseline", action="store_true",
                    help="fail (exit 2) when the baseline file is absent "
                         "instead of warning and skipping the gate")
    ap.add_argument("--override", action="append", type=parse_override,
                    default=[], metavar="REGEX=FLOAT",
                    help="per-benchmark threshold: benchmarks whose name "
                         "matches REGEX (re.search) use FLOAT instead of "
                         "--threshold; repeatable, first match wins")
    args = ap.parse_args()
    if not 0 < args.threshold <= 1.5:
        sys.exit("check_regression: --threshold out of range")
    for _, value in args.override:
        if not 0 < value <= 1.5:
            sys.exit("check_regression: --override threshold out of range")

    base = load_throughputs(args.baseline,
                            missing_ok=not args.require_baseline)
    if base is None:
        print(f"check_regression: WARNING: baseline {args.baseline} not "
              "found; skipping the gate (commit a baseline to enable it)")
        return 0
    cur = load_throughputs(args.current)

    failures = []
    print(f"{'benchmark':<28}{'baseline':>14}{'current':>14}{'ratio':>8}")
    for name in sorted(base):
        if name not in cur:
            print(f"{name:<28}{base[name]:>14.3e}{'missing':>14}{'':>8}")
            failures.append(f"{name}: missing from current run")
            continue
        ratio = cur[name] / base[name]
        threshold = threshold_for(name, args.threshold, args.override)
        flag = "" if ratio >= threshold else "  << REGRESSION"
        print(f"{name:<28}{base[name]:>14.3e}{cur[name]:>14.3e}{ratio:>8.2f}{flag}")
        if ratio < threshold:
            failures.append(f"{name}: {ratio:.2f}x of baseline "
                            f"(threshold {threshold:.2f})")
    for name in sorted(set(cur) - set(base)):
        print(f"{name:<28}{'(new)':>14}{cur[name]:>14.3e}{'':>8}")

    if failures:
        print("\nFAIL:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nOK: no benchmark below its threshold "
          f"(default {args.threshold:.2f}x, {len(base)} checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
