// Ablation — what detects "Ri > A" better: the Ro/Ri rate ratio or the
// PCT/PDT OWD-trend statistics?
//
// The paper's eighth misconception (Fig. 5) is precisely about FALSE
// ALARMS: a single cross-traffic burst near the end of a stream depresses
// Ro below Ri even though Ri < A, so a rate-ratio detector cries
// congestion; the OWD series shows no increasing trend, so the trend
// statistics do not.  We therefore score the detectors on two axes over
// bursty (Pareto ON-OFF) cross traffic:
//
//   * false-alarm rate:  P(detector says "Ri > A")  at Ri in {17.5,20,22.5}
//   * detection rate:    P(detector says "Ri > A")  at Ri in {27.5,30,32.5}
//
// A good detector has high detection AND low false alarms.  Ambiguous
// trend verdicts are neither (the tool re-probes).
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "stats/trend.hpp"

using namespace abw;

namespace {

struct Sample {
  double ratio;
  std::vector<double> owds;
  bool above;
};

struct Rates {
  int alarms_below = 0, n_below = 0;  // false alarms
  int alarms_above = 0, n_above = 0;  // detections
  double false_alarm() const {
    return n_below ? static_cast<double>(alarms_below) / n_below : 0.0;
  }
  double detection() const {
    return n_above ? static_cast<double>(alarms_above) / n_above : 0.0;
  }
};

void tally(Rates& r, bool says_above, bool truly_above) {
  if (truly_above) {
    ++r.n_above;
    if (says_above) ++r.alarms_above;
  } else {
    ++r.n_below;
    if (says_above) ++r.alarms_below;
  }
}

}  // namespace

int main() {
  core::print_header(std::cout,
                     "Ablation: OWD trend statistics vs the Ro/Ri ratio",
                     "Jain & Dovrolis IMC'04, eighth misconception / Fig. 5");
  std::printf("workload: single hop Ct=50, A=25 Mbps, Pareto ON-OFF cross;\n"
              "160-packet streams, 150 per rate; below-A rates {17.5, 20, "
              "22.5},\nabove-A rates {27.5, 30, 32.5}\n\n");

  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kParetoOnOff;
  cfg.seed = 8;
  auto sc = core::Scenario::single_hop(cfg);

  std::vector<Sample> samples;
  for (double ri : {17.5e6, 20e6, 22.5e6, 27.5e6, 30e6, 32.5e6}) {
    for (int s = 0; s < 150; ++s) {
      auto res = core::capture_stream(sc, ri, 1500, 160);
      if (!res.complete()) continue;
      samples.push_back({res.rate_ratio(), res.owds_seconds(),
                         ri > sc.nominal_avail_bw()});
    }
  }

  Rates r96, r99, pct, pdt, combined;
  for (const auto& s : samples) {
    tally(r96, s.ratio < 0.96, s.above);
    tally(r99, s.ratio < 0.99, s.above);
    tally(pct, stats::pct_trend(s.owds) == stats::Trend::kIncreasing, s.above);
    tally(pdt, stats::pdt_trend(s.owds) == stats::Trend::kIncreasing, s.above);
    tally(combined, stats::combined_trend(s.owds) == stats::Trend::kIncreasing,
          s.above);
  }

  core::Table table({"detector", "detection (Ri>A)", "false alarms (Ri<A)"});
  table.row({"Ro/Ri < 0.99", core::pct(r99.detection()), core::pct(r99.false_alarm())});
  table.row({"Ro/Ri < 0.96", core::pct(r96.detection()), core::pct(r96.false_alarm())});
  table.row({"PCT trend", core::pct(pct.detection()), core::pct(pct.false_alarm())});
  table.row({"PDT trend", core::pct(pdt.detection()), core::pct(pdt.false_alarm())});
  table.row({"PCT+PDT combined", core::pct(combined.detection()),
             core::pct(combined.false_alarm())});
  table.print(std::cout);

  // The paper's precise claim (Fig. 5's lower stream): when a burst fools
  // the rate ratio on a below-avail-bw stream, the OWD series still shows
  // no increasing trend.  Count, among the below-A streams that the
  // Ro/Ri < 0.99 detector flags as congested, how many the trend test
  // correctly declines to flag.
  int fooled = 0, rescued = 0;
  for (const auto& s : samples) {
    if (s.above || s.ratio >= 0.99) continue;
    ++fooled;
    if (stats::combined_trend(s.owds) != stats::Trend::kIncreasing) ++rescued;
  }
  double rescue_rate = fooled ? static_cast<double>(rescued) / fooled : 0.0;
  std::printf("\nburst-fooled below-A streams (Ro/Ri < 0.99 though Ri < A): %d\n"
              "  of these, trend statistics correctly see no congestion: %d "
              "(%s)\n",
              fooled, rescued, core::pct(rescue_rate).c_str());

  core::print_check(
      std::cout,
      "a below-avail-bw stream can show Ro < Ri after a cross burst, yet "
      "carry no increasing OWD trend — the OWD series holds more "
      "information than the single Ro/Ri number",
      "the trend statistics overturn the majority of the rate-ratio's "
      "burst-induced false alarms (" + core::pct(rescue_rate) + ")",
      fooled > 10 && rescue_rate > 0.6);
  return 0;
}
