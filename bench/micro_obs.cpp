// Micro-benchmarks of the observability layer (google-benchmark): the
// same steady-state two-hop forwarding workload as micro_sim's
// BM_LinkForwarding, run three ways —
//
//   * BM_ForwardTraceOff:   no sink attached (the default).  This is the
//     configuration the golden digests and BENCH_core gate run in; the
//     per-event cost of observability here is one null-pointer branch.
//   * BM_ForwardNullSink:   a NullTraceSink attached to every link.  Adds
//     one virtual call per event but no formatting or I/O — the floor for
//     any real sink.
//   * BM_ForwardJsonlSink:  a JsonlTraceSink writing to a discarding
//     streambuf.  Full event formatting without filesystem noise — the
//     honest cost of `--trace=FILE` minus the disk.
//
// Plus BM_MetricsRegistryLookup for the name->counter map the snapshot
// path uses.  Running with no arguments writes BENCH_obs.json (same
// custom-main convention as micro_sim); bench/check_regression.py gates
// it against bench/BENCH_obs.baseline.json via the obs bench_check step.
#include <benchmark/benchmark.h>

#include <cstring>
#include <ostream>
#include <streambuf>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/link.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace abw;

// Discards everything but still runs the formatting in JsonlTraceSink.
class NullBuf : public std::streambuf {
 protected:
  int overflow(int c) override { return c; }
  std::streamsize xsputn(const char*, std::streamsize n) override { return n; }
};

constexpr int kPackets = 5000;

struct Injector {
  sim::Simulator* simu;
  sim::Path* path;
  int remaining;
  void operator()() {
    sim::Packet pkt;
    pkt.size_bytes = 1500;
    path->inject(0, pkt);
    if (--remaining > 0) simu->after(24000, *this);  // bottleneck pace
  }
};

// One steady-state forwarding run with `sink` on both links (nullptr =
// tracing compiled in but disabled).
void forward_once(benchmark::State& state, obs::TraceSink* sink) {
  sim::Simulator simu;
  sim::LinkConfig fast, tight;
  fast.capacity_bps = 1e9;
  fast.propagation_delay = 100;
  tight.capacity_bps = 5e8;  // 1500B service = 24 us
  tight.propagation_delay = 100;
  sim::Path path(simu, {fast, tight});
  path.link(0).set_trace(sink);
  path.link(1).set_trace(sink);
  sim::CountingSink recv;
  path.set_receiver(&recv);
  simu.at(0, Injector{&simu, &path, kPackets});
  simu.run_until_idle();
  benchmark::DoNotOptimize(recv.packets());
  if constexpr (requires { simu.peak_event_count(); })
    state.counters["peak_events"] = static_cast<double>(simu.peak_event_count());
}

void BM_ForwardTraceOff(benchmark::State& state) {
  for (auto _ : state) forward_once(state, nullptr);
  state.SetItemsProcessed(state.iterations() * kPackets);
}
BENCHMARK(BM_ForwardTraceOff);

void BM_ForwardNullSink(benchmark::State& state) {
  obs::NullTraceSink sink;
  for (auto _ : state) forward_once(state, &sink);
  state.SetItemsProcessed(state.iterations() * kPackets);
  state.counters["events_per_run"] =
      static_cast<double>(sink.events()) / static_cast<double>(state.iterations());
}
BENCHMARK(BM_ForwardNullSink);

void BM_ForwardJsonlSink(benchmark::State& state) {
  NullBuf buf;
  std::ostream devnull(&buf);
  obs::JsonlTraceSink sink(devnull);
  for (auto _ : state) forward_once(state, &sink);
  state.SetItemsProcessed(state.iterations() * kPackets);
}
BENCHMARK(BM_ForwardJsonlSink);

// Name lookup on a warm registry — what Scenario::snapshot_metrics and
// the estimator wrapper pay per metric touch.
void BM_MetricsRegistryLookup(benchmark::State& state) {
  obs::MetricsRegistry reg;
  std::vector<std::string> names;
  for (int i = 0; i < 64; ++i) {
    names.push_back("link.hop" + std::to_string(i) + ".packets_out");
    reg.counter(names.back());
  }
  std::size_t i = 0;
  for (auto _ : state) {
    reg.counter(names[i & 63]).add();
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsRegistryLookup);

}  // namespace

// Custom main, same convention as micro_sim: default the JSON output to
// BENCH_obs.json so the obs bench_check step needs no flag plumbing.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  std::string out_flag = "--benchmark_out=BENCH_obs.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int nargs = static_cast<int>(args.size());
  benchmark::Initialize(&nargs, args.data());
  if (benchmark::ReportUnrecognizedArguments(nargs, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
