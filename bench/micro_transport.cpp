// Transport-layer micro-benchmarks: what one probing stream costs on
// each probe::Transport backend, and how fast the abwd daemon turns
// around whole measurement sessions.
//
// Writes BENCH_transport.json (google-benchmark JSON shape, hand-timed
// min-of-reps rows like micro_pdes) gated against
// bench/BENCH_transport.baseline.json via `transport_check` /
// `bench_check`.  Rows:
//
//   TRANS_sim_stream
//       items_per_second = 100-packet streams retired per wall second
//       through SimTransport over the paper's single-hop scenario —
//       the interface-dispatch + simulation cost of the redesigned path.
//   TRANS_udp_stream
//       items_per_second = 100-packet streams per wall second over
//       UdpTransport against an in-process daemon on loopback: pacing,
//       kernel crossings, report round-trip.  Dominated by the stream's
//       own real-time span, so the row is pinned by protocol overhead,
//       not host speed — but it still gets the loose wall-clock
//       tolerance every socket row does.
//   TRANS_daemon_sessions
//       items_per_second = complete measurement sessions (hello + one
//       stream + report + bye) per wall second with 8 concurrent
//       clients multiplexed onto the daemon's single socket.
//
// The UDP rows need a bindable loopback socket; without one the bench
// fails loudly (a broken environment should not silently pass a gate).
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "net/daemon.hpp"
#include "net/udp_transport.hpp"
#include "probe/stream_spec.hpp"
#include "probe/transport.hpp"
#include "runner/bench_report.hpp"

namespace {

using namespace abw;

struct BenchRun {
  double seconds = 0.0;
  std::uint64_t items = 0;
  std::uint64_t check = 0;  // received-packet digest: rep consistency
};

// ---------------------------------------------------------------------------
// SimTransport: streams through the simulated substrate

BenchRun run_sim_stream() {
  constexpr int kStreams = 200;
  core::SingleHopConfig cfg;
  cfg.seed = 31;
  core::Scenario sc = core::Scenario::single_hop(cfg);
  probe::Transport& t = sc.transport();
  probe::StreamSpec spec = probe::StreamSpec::periodic(25e6, 1000, 100);

  BenchRun r;
  const double w0 = runner::monotonic_seconds();
  for (int i = 0; i < kStreams; ++i) {
    probe::StreamResult res = t.send_stream(spec, sim::kMillisecond);
    r.check = r.check * 1009 + res.received_count();
  }
  r.seconds = runner::monotonic_seconds() - w0;
  r.items = kStreams;
  return r;
}

// ---------------------------------------------------------------------------
// UdpTransport: streams over loopback against an in-process daemon

BenchRun run_udp_stream(net::Daemon& daemon) {
  constexpr int kStreams = 30;
  net::UdpTransportConfig cfg;
  cfg.port = daemon.port();
  net::UdpTransport t(cfg);
  // 100 packets at 100 Mb/s x 500 B = 4 us gaps: the stream span is
  // ~0.4 ms, so the row times protocol turnaround, not idle pacing.
  probe::StreamSpec spec = probe::StreamSpec::periodic(100e6, 500, 100);

  BenchRun r;
  const double w0 = runner::monotonic_seconds();
  for (int i = 0; i < kStreams; ++i) {
    probe::StreamResult res = t.send_stream(spec, 100 * sim::kMicrosecond);
    r.check = r.check * 1009 + res.received_count();
  }
  r.seconds = runner::monotonic_seconds() - w0;
  r.items = kStreams;
  return r;
}

// ---------------------------------------------------------------------------
// Daemon session throughput: concurrent hello -> stream -> report -> bye

BenchRun run_daemon_sessions(net::Daemon& daemon) {
  constexpr int kClients = 8;
  constexpr int kSessionsEach = 5;

  BenchRun r;
  std::vector<std::uint64_t> checks(kClients, 0);
  const double w0 = runner::monotonic_seconds();
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&daemon, &checks, c] {
      for (int s = 0; s < kSessionsEach; ++s) {
        net::UdpTransportConfig cfg;
        cfg.port = daemon.port();
        net::UdpTransport t(cfg);  // fresh session each time
        probe::StreamSpec spec = probe::StreamSpec::periodic(50e6, 500, 40);
        probe::StreamResult res = t.send_stream(spec, 100 * sim::kMicrosecond);
        checks[c] = checks[c] * 1009 + res.received_count();
      }
    });
  }
  for (std::thread& th : threads) th.join();
  r.seconds = runner::monotonic_seconds() - w0;
  r.items = static_cast<std::uint64_t>(kClients) * kSessionsEach;
  for (std::uint64_t c : checks) r.check = r.check * 1009 + c;
  return r;
}

template <typename Fn>
BenchRun min_of_reps(Fn&& run, int reps = 3) {
  BenchRun best = run();
  for (int i = 1; i < reps; ++i) {
    BenchRun r = run();
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

struct Row {
  const char* name;
  double items_per_second;
  double real_s;
};

}  // namespace

int main() {
  BenchRun sim = min_of_reps([] { return run_sim_stream(); });

  net::DaemonConfig dcfg;
  dcfg.max_sessions = 128;
  net::Daemon daemon(dcfg);  // throws (bench fails) when sockets are broken
  daemon.start();

  BenchRun udp = min_of_reps([&] { return run_udp_stream(daemon); });
  BenchRun sessions = min_of_reps([&] { return run_daemon_sessions(daemon); });
  daemon.stop();

  const Row rows[] = {
      {"TRANS_sim_stream", sim.items / sim.seconds, sim.seconds},
      {"TRANS_udp_stream", udp.items / udp.seconds, udp.seconds},
      {"TRANS_daemon_sessions", sessions.items / sessions.seconds,
       sessions.seconds},
  };
  constexpr std::size_t kRows = sizeof(rows) / sizeof(rows[0]);

  std::FILE* f = std::fopen("BENCH_transport.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_transport: cannot write BENCH_transport.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"context\": {\"note\": \"stream rows carry streams "
                  "per wall second; the sessions row carries complete "
                  "hello-to-bye sessions per wall second\"},\n"
                  "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < kRows; ++i) {
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
        "\"iterations\": 1, \"real_time\": %.6e, \"cpu_time\": %.6e, "
        "\"time_unit\": \"ns\", \"items_per_second\": %.6f}%s\n",
        rows[i].name, rows[i].real_s * 1e9, rows[i].real_s * 1e9,
        rows[i].items_per_second, i + 1 < kRows ? "," : "");
    std::printf("%-24s %12.3f items/s  (%.4f s)\n", rows[i].name,
                rows[i].items_per_second, rows[i].real_s);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return 0;
}
