// Ablation — Ro/Ri threshold fragility.
//
// The paper: "One may think that the burstiness can be taken into account
// by using certain thresholds; for instance, to say that Ri > A if
// Ro/Ri < 0.96.  These thresholds, however, depend strongly on the
// measured path and on the cross traffic burstiness."
//
// We sweep the threshold and, for each cross-traffic model, measure the
// classification accuracy of "Ri > A iff Ro/Ri < threshold" over streams
// probed at rates straddling the avail-bw.  The best threshold shifts
// with the traffic model — no single value works everywhere.
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"

using namespace abw;

namespace {

struct Sample {
  double ratio;
  bool truly_above;  // Ri > A
};

std::vector<Sample> collect(core::CrossModel model, std::uint64_t seed) {
  core::SingleHopConfig cfg;
  cfg.model = model;
  cfg.seed = seed;
  auto sc = core::Scenario::single_hop(cfg);
  std::vector<Sample> out;
  for (double ri = 15e6; ri <= 35e6 + 1; ri += 2.5e6) {
    for (int s = 0; s < 60; ++s) {
      auto res = core::capture_stream(sc, ri, 1500, 100);
      if (!res.complete()) continue;
      out.push_back({res.rate_ratio(), ri > sc.nominal_avail_bw()});
    }
  }
  return out;
}

double accuracy(const std::vector<Sample>& samples, double threshold) {
  std::size_t right = 0;
  for (const auto& s : samples)
    if ((s.ratio < threshold) == s.truly_above) ++right;
  return static_cast<double>(right) / static_cast<double>(samples.size());
}

}  // namespace

int main() {
  core::print_header(std::cout, "Ablation: Ro/Ri detection thresholds",
                     "Jain & Dovrolis IMC'04, burstiness pitfall discussion");
  std::printf("workload: single hop Ct=50, A=25 Mbps; 60 streams per rate, "
              "rates 15-35 Mbps;\nclassifier: 'Ri > A iff Ro/Ri < threshold'\n\n");

  auto cbr = collect(core::CrossModel::kCbr, 11);
  auto poisson = collect(core::CrossModel::kPoisson, 12);
  auto pareto = collect(core::CrossModel::kParetoOnOff, 13);

  core::Table table({"threshold", "CBR accuracy", "Poisson accuracy",
                     "Pareto accuracy"});
  double best_cbr = 0, best_cbr_t = 0, best_par = 0, best_par_t = 0;
  for (double t = 0.90; t <= 1.004; t += 0.01) {
    double a1 = accuracy(cbr, t), a2 = accuracy(poisson, t), a3 = accuracy(pareto, t);
    char ts[16];
    std::snprintf(ts, sizeof ts, "%.2f", t);
    table.row({ts, core::pct(a1), core::pct(a2), core::pct(a3)});
    if (a1 > best_cbr) { best_cbr = a1; best_cbr_t = t; }
    if (a3 > best_par) { best_par = a3; best_par_t = t; }
  }
  table.print(std::cout);

  std::printf("\nbest threshold: CBR %.2f (%.1f%%), Pareto ON-OFF %.2f (%.1f%%)\n",
              best_cbr_t, best_cbr * 100, best_par_t, best_par * 100);
  core::print_check(
      std::cout,
      "thresholds depend strongly on the path and the cross-traffic "
      "burstiness — a fixed 0.96-style threshold is not robust",
      "the accuracy-maximizing threshold differs across traffic models "
      "and/or bursty accuracy stays well below fluid accuracy",
      best_cbr_t != best_par_t || best_par < best_cbr - 0.05);
  return 0;
}
