// Ablation — queue discipline at the tight link: drop-tail vs RED.
//
// The paper's Fig. 7 discussion lists "amount of buffering in the tight
// link" among the factors that decouple TCP throughput from the avail-bw.
// This ablation varies the buffering policy itself: for the same path and
// cross traffic, a bulk TCP transfer runs over a drop-tail queue and over
// RED, and we report throughput, standing queue (=> RTT inflation), and
// loss mix.  Avail-bw is identical in both runs; what an application
// experiences is not.
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "stats/moments.hpp"
#include "tcp/tcp.hpp"
#include "traffic/poisson.hpp"

using namespace abw;

namespace {

struct Outcome {
  double throughput_bps = 0.0;
  double mean_backlog_pkts = 0.0;
  std::uint64_t congestion_drops = 0;
  std::uint64_t red_drops = 0;
};

Outcome run(sim::QueueDiscipline disc, std::uint64_t seed) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = 30e6;
  cfg.propagation_delay = 10 * sim::kMillisecond;
  cfg.queue_limit_bytes = 200 * 1500;
  cfg.discipline = disc;
  cfg.red.min_threshold_bytes = 15 * 1500;
  cfg.red.max_threshold_bytes = 60 * 1500;
  cfg.red.max_drop_prob = 0.1;
  cfg.red.ewma_weight = 0.01;
  sim::Path path(simu, {cfg});

  sim::TypeDemux demux;
  tcp::TcpReceiverHub hub;
  demux.register_handler(sim::PacketType::kTcpData, &hub);
  path.set_receiver(&demux);

  traffic::PoissonGenerator cross(simu, path, 0, false, 99, stats::Rng(seed),
                                  10e6, traffic::SizeDistribution::fixed(1500));
  cross.start(0, 120 * sim::kSecond);

  tcp::TcpConfig tc;
  tc.receiver_window = 512;
  tcp::TcpConnection conn(simu, path, hub, 1, tc);
  conn.start(sim::kSecond);

  stats::RunningStats backlog;
  for (sim::SimTime t = 2 * sim::kSecond; t <= 40 * sim::kSecond;
       t += 20 * sim::kMillisecond) {
    simu.run_until(t);
    backlog.add(static_cast<double>(path.link(0).backlog_bytes()) / 1500.0);
  }

  Outcome out;
  out.throughput_bps = conn.throughput_bps(simu.now());
  out.mean_backlog_pkts = backlog.mean();
  out.congestion_drops = path.link(0).stats().packets_dropped;
  out.red_drops = path.link(0).stats().packets_red_dropped;
  return out;
}

}  // namespace

int main() {
  core::print_header(std::cout, "Ablation: tight-link queue discipline",
                     "Jain & Dovrolis IMC'04, Fig. 7 buffering discussion");
  std::printf("workload: 30 Mbps link, 10 Mbps Poisson cross, bulk TCP with "
              "large window, 40 s\n\n");

  Outcome tail = run(sim::QueueDiscipline::kDropTail, 4);
  Outcome red = run(sim::QueueDiscipline::kRed, 4);

  core::Table table({"discipline", "TCP throughput", "mean backlog",
                     "tail drops", "RED drops"});
  char b1[32], b2[32];
  std::snprintf(b1, sizeof b1, "%.1f pkts", tail.mean_backlog_pkts);
  std::snprintf(b2, sizeof b2, "%.1f pkts", red.mean_backlog_pkts);
  table.row({"drop-tail", core::mbps(tail.throughput_bps), b1,
             std::to_string(tail.congestion_drops),
             std::to_string(tail.red_drops)});
  table.row({"RED", core::mbps(red.throughput_bps), b2,
             std::to_string(red.congestion_drops),
             std::to_string(red.red_drops)});
  table.print(std::cout);

  bool shorter_queue = red.mean_backlog_pkts < 0.7 * tail.mean_backlog_pkts;
  bool comparable_tput = red.throughput_bps > 0.7 * tail.throughput_bps;
  core::print_check(
      std::cout,
      "the amount (and policy) of buffering at the tight link changes what "
      "TCP experiences even though the avail-bw is identical",
      "RED holds a much shorter standing queue at comparable throughput — "
      "same avail-bw, different TCP reality",
      shorter_queue && comparable_tput);
  std::printf("\nimplication: avail-bw alone cannot predict TCP throughput; "
              "buffering policy\nis one of the paper's listed confounders.\n");
  return 0;
}
