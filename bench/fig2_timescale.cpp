// Figure 2 — "The probing stream duration controls the averaging time
// scale tau."
//
// Paper setup: single hop, Ct = 50 Mb/s, Poisson cross traffic with mean
// avail-bw 25 Mb/s, direct probing at Ri = 40 Mb/s.  For stream durations
// {25, 50, 100, 150, 200} ms, compare the standard deviation of 100
// direct-probing avail-bw samples with the POPULATION standard deviation
// of A_tau (from the packet trace) at the matching tau.  The two curves
// should coincide: the stream duration IS the averaging time scale.
//
// This doubles as the ablation for the stream-duration design knob.
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "stats/moments.hpp"
#include "trace/availbw_process.hpp"
#include "trace/packet_trace.hpp"

int main() {
  using namespace abw;
  core::print_header(std::cout,
                     "Figure 2: stream duration vs averaging time scale",
                     "Jain & Dovrolis IMC'04, Fig. 2");
  std::printf("workload: single hop, Ct=50 Mbps, Poisson cross 25 Mbps, "
              "direct probing at Ri=40 Mbps, 100 samples per duration\n\n");

  const double durations_ms[] = {25, 50, 100, 150, 200};

  core::Table table({"stream duration", "sample stddev", "population stddev",
                     "ratio"});
  bool all_close = true;
  double prev_sample_sd = 1e18;
  bool monotone = true;

  for (double dur_ms : durations_ms) {
    core::SingleHopConfig cfg;
    cfg.model = core::CrossModel::kPoisson;
    cfg.seed = 7 + static_cast<std::uint64_t>(dur_ms);
    auto sc = core::Scenario::single_hop(cfg);
    sim::SimTime tau = sim::from_millis(dur_ms);

    // Record the OFFERED cross-traffic process (arrivals are open-loop,
    // so the probing load cannot distort them) — the paper derives the
    // population statistics "from the simulation packet trace" too.
    trace::LinkTraceRecorder cross_trace(sc.path().link(0),
                                         sim::PacketType::kCross);

    // 100 direct-probing samples of this duration.
    auto samples = core::collect_direct_samples(sc, cfg.capacity_bps, 40e6, tau,
                                                1500, 100, 30 * sim::kMillisecond);
    double sample_sd = stats::stddev(samples);

    // Population stddev of A_tau from the offered cross traffic.
    trace::AvailBwProcess proc(cross_trace.trace());
    double pop_sd = stats::stddev(proc.series(tau));

    char dur_s[16];
    std::snprintf(dur_s, sizeof dur_s, "%.0f ms", dur_ms);
    char ratio_s[16];
    std::snprintf(ratio_s, sizeof ratio_s, "%.2f", sample_sd / pop_sd);
    table.row({dur_s, core::mbps(sample_sd, 2), core::mbps(pop_sd, 2), ratio_s});

    if (sample_sd / pop_sd > 1.6 || sample_sd / pop_sd < 0.6) all_close = false;
    if (sample_sd > prev_sample_sd * 1.15) monotone = false;
    prev_sample_sd = sample_sd;
  }
  table.print(std::cout);

  core::print_check(std::cout,
                    "population and sample standard deviations are almost "
                    "equal; both decrease with the stream duration",
                    all_close ? "sample/population ratios stay near 1 and the "
                                "stddev falls with duration"
                              : "curves diverged",
                    all_close && monotone);
  std::printf("\nconclusion: the probing duration is not an implementation "
              "detail — it is the knob\nthat selects the averaging time "
              "scale of the reported avail-bw.\n");
  return 0;
}
