// Definitions-section demonstration — Eqs. (4) and (5): how Var[A_tau]
// decays with the averaging time scale for short-range vs long-range
// dependent traffic.
//
//   IID / short-range (Eq. 4):  Var[A_{k tau}] = Var[A_tau] / k
//   self-similar      (Eq. 5):  Var[A_{k tau}] = Var[A_tau] / k^{2(1-H)}
//
// We compute the variance-time plot of the avail-bw process for Poisson
// cross traffic (short-range) and for the synthetic self-similar OC-3
// trace, fit the decay exponents, and compare against the two laws.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "stats/moments.hpp"
#include "stats/regression.hpp"
#include "trace/availbw_process.hpp"
#include "trace/synthetic_trace.hpp"
#include "traffic/poisson.hpp"

using namespace abw;

namespace {

// Decay exponent beta of Var[A_tau] ~ tau^-beta via log-log regression.
double decay_exponent(const trace::AvailBwProcess& proc,
                      const std::vector<double>& taus_ms,
                      std::vector<double>* variances) {
  std::vector<double> lx, ly;
  for (double tau_ms : taus_ms) {
    double v = stats::variance(proc.series(sim::from_millis(tau_ms)));
    variances->push_back(v);
    lx.push_back(std::log(tau_ms));
    ly.push_back(std::log(v));
  }
  return -stats::linear_fit(lx, ly).slope;
}

}  // namespace

int main() {
  core::print_header(std::cout, "Eqs. 4-5: variance decay of A_tau with the time scale",
                     "Jain & Dovrolis IMC'04, definitions section");

  // Time scales start at 4 ms: below that, per-window packetization noise
  // (a pure 1/tau component) contaminates the rate-process scaling law.
  const std::vector<double> taus_ms = {4, 8, 16, 32, 64, 128};

  // Short-range dependent: Poisson cross traffic on a simulated link.
  sim::Simulator simu;
  sim::LinkConfig lc;
  lc.capacity_bps = 50e6;
  lc.queue_limit_bytes = 64 << 20;
  sim::Path path(simu, {lc});
  sim::CountingSink sink;
  path.set_receiver(&sink);
  trace::LinkTraceRecorder rec(path.link(0));
  traffic::PoissonGenerator gen(simu, path, 0, false, 1, stats::Rng(3), 25e6,
                                traffic::SizeDistribution::fixed(1500));
  gen.start(0, 60 * sim::kSecond);
  simu.run_until(60 * sim::kSecond);
  trace::AvailBwProcess poisson_proc(rec.trace());

  // Long-range dependent: the synthetic self-similar OC-3 trace (H=0.8).
  stats::Rng rng(4);
  trace::SyntheticTraceConfig tc;
  tc.duration = 60 * sim::kSecond;
  trace::PacketTrace lrd_trace = trace::synthesize_selfsimilar_trace(tc, rng);
  trace::AvailBwProcess lrd_proc(lrd_trace);

  std::vector<double> var_poisson, var_lrd;
  double beta_poisson = decay_exponent(poisson_proc, taus_ms, &var_poisson);
  double beta_lrd = decay_exponent(lrd_proc, taus_ms, &var_lrd);

  core::Table table({"tau", "Var (Poisson) Mbps^2", "Var (self-similar) Mbps^2"});
  for (std::size_t i = 0; i < taus_ms.size(); ++i) {
    char t[16], v1[24], v2[24];
    std::snprintf(t, sizeof t, "%.0f ms", taus_ms[i]);
    std::snprintf(v1, sizeof v1, "%.2f", var_poisson[i] / 1e12);
    std::snprintf(v2, sizeof v2, "%.2f", var_lrd[i] / 1e12);
    table.row({t, v1, v2});
  }
  table.print(std::cout);

  double predicted_lrd = 2.0 * (1.0 - tc.hurst);  // Eq. 5 with H = 0.8 => 0.4
  std::printf("\nfitted decay exponents (Var ~ tau^-beta):\n"
              "  Poisson:      beta = %.2f   (Eq. 4 predicts 1.00)\n"
              "  self-similar: beta = %.2f   (Eq. 5 with H=%.2f predicts %.2f)\n",
              beta_poisson, beta_lrd, tc.hurst, predicted_lrd);

  core::print_check(
      std::cout,
      "for IID-like traffic the variance decays as 1/k; for self-similar "
      "traffic it decays as k^{-2(1-H)}, i.e. much slower",
      "Poisson exponent near 1, self-similar exponent near 2(1-H) and far "
      "below the Poisson one",
      std::abs(beta_poisson - 1.0) < 0.25 &&
          std::abs(beta_lrd - predicted_lrd) < 0.25 &&
          beta_lrd < beta_poisson - 0.3);
  std::printf("\nthis is why the averaging time scale must be reported with "
              "any avail-bw\nestimate (pitfalls 1-2), and why short-scale "
              "estimation needs many samples.\n");
  return 0;
}
