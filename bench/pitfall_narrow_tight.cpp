// Pitfall bench — "Estimating the tight link capacity with end-to-end
// capacity estimation tools."
//
// Topology: hop 0 is a loaded 100 Mb/s link (the TIGHT link: A = 20),
// hop 1 is an idle 40 Mb/s link (the NARROW link: A = 40).  A packet-pair
// capacity tool reports the narrow capacity Cn = 40, not the tight
// capacity Ct = 100.  Feeding Cn into the direct-probing equation (Eq. 9)
// or into Spruce produces systematically wrong avail-bw estimates.
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "est/capacity.hpp"
#include "est/direct.hpp"
#include "est/spruce.hpp"
#include "traffic/poisson.hpp"

using namespace abw;

int main() {
  core::print_header(std::cout, "Pitfall: narrow-link capacity fed to direct probing",
                     "Jain & Dovrolis IMC'04, fifth misconception");
  std::printf("topology: hop0 = 100 Mbps with 80 Mbps Poisson cross (TIGHT, "
              "A=20);\n          hop1 = 40 Mbps idle (NARROW, A=40)\n\n");

  std::vector<sim::LinkConfig> links(2);
  links[0].capacity_bps = 100e6;
  links[1].capacity_bps = 40e6;
  links[0].propagation_delay = links[1].propagation_delay = sim::kMillisecond;
  auto sc = core::Scenario::custom(links, 55);
  traffic::PoissonGenerator cross(sc.simulator(), sc.path(), 0, /*one_hop=*/true,
                                  1, sc.rng().fork(), 80e6,
                                  traffic::SizeDistribution::fixed(1500));
  cross.start(0, 600 * sim::kSecond);
  sc.simulator().run_until(2 * sim::kSecond);

  // Step 1: what a capacity tool reports.
  est::CapacityConfig cc;
  cc.pair_count = 200;
  est::CapacityEstimator cap(cc, sc.rng().fork());
  double cn = cap.estimate_capacity(sc.session());
  std::printf("packet-pair capacity estimate: %s  (narrow link is 40, tight "
              "link is 100)\n\n",
              core::mbps(cn).c_str());

  // Step 2: direct probing and Spruce with that (wrong) capacity vs the
  // true tight-link capacity.
  auto direct_with = [&](double ct) {
    est::DirectConfig dc;
    dc.tight_capacity_bps = ct;
    dc.input_rate_bps = 32e6;  // above true A=20, below narrow capacity
    dc.stream_count = 40;
    est::DirectProber p(dc);
    auto e = p.estimate(sc.session());
    return e.valid ? e.point_bps() : -1.0;
  };
  auto spruce_with = [&](double ct) {
    est::SpruceConfig spc;
    spc.tight_capacity_bps = ct;
    spc.pair_count = 200;
    est::Spruce sp(spc, sc.rng().fork());
    auto e = sp.estimate(sc.session());
    return e.valid ? e.point_bps() : -1.0;
  };

  double truth = 20e6;
  double d_cn = direct_with(cn), d_ct = direct_with(100e6);
  double s_cn = spruce_with(cn), s_ct = spruce_with(100e6);

  core::Table table({"tool", "capacity input", "estimate", "error vs A=20"});
  auto err = [&](double v) { return core::pct((v - truth) / truth); };
  table.row({"direct", "Cn (capacity tool)", core::mbps(d_cn), err(d_cn)});
  table.row({"direct", "Ct (true tight)", core::mbps(d_ct), err(d_ct)});
  table.row({"spruce", "Cn (capacity tool)", core::mbps(s_cn), err(s_cn)});
  table.row({"spruce", "Ct (true tight)", core::mbps(s_ct), err(s_ct)});
  table.print(std::cout);

  std::printf(
      "\nnote the spruce/Ct row: Spruce cannot exploit the true tight-link\n"
      "capacity here at all — its pairs are launched at Ct = 100 Mbps but\n"
      "the 40 Mbps narrow link re-spaces them before they can measure\n"
      "anything, driving the gap samples out of range.  Spruce implicitly\n"
      "assumes the narrow link IS the tight link; when they differ the\n"
      "pitfall is not just a wrong parameter but a broken measurement.\n");

  bool cap_is_narrow = std::abs(cn - 40e6) < 6e6;
  bool direct_wrong_much_worse =
      std::abs(d_cn - truth) > 2 * std::abs(d_ct - truth);
  bool spruce_biased_with_cn = std::abs(s_cn - truth) > 0.15 * truth;
  bool spruce_broken_with_ct = std::abs(s_ct - truth) > 0.3 * truth;
  core::print_check(
      std::cout,
      "capacity tools estimate the narrow link, which can differ from the "
      "tight link; direct probing then inherits the error",
      "capacity tool returned ~Cn; direct probing was far more accurate "
      "with the true Ct; Spruce was biased with Cn and outright broken "
      "with Ct (narrow!=tight violates its model)",
      cap_is_narrow && direct_wrong_much_worse && spruce_biased_with_cn &&
          spruce_broken_with_ct);
  return 0;
}
