// Intra-simulation parallelism micro-benchmarks: domain-count scaling of
// the conservative parallel DES engine (sim/domain.hpp) and the
// vectorized-vs-scalar FluidQueue bulk-absorb kernel (sim/fluid.cpp).
//
// Writes BENCH_pdes.json (google-benchmark JSON shape so
// bench/check_regression.py gates it unchanged against
// bench/BENCH_pdes.baseline.json via the `pdes_check` / `bench_check`
// targets).  Rows:
//
//   PDES_absorb_scalar / PDES_absorb_simd
//       items_per_second = fluid arrivals retired per wall second with
//       the bulk path off / on.
//   PDES_simd_speedup
//       items_per_second = scalar_s / simd_s — the SIMD win itself, so a
//       vectorization regression fails the gate even if absolute
//       throughput drifts with the machine.
//   PDES_domains_<N>t
//       items_per_second = simulated seconds per wall second of the
//       partitioned fig4-style scenario run with N worker threads.
//   PDES_parallel_speedup
//       items_per_second = 1-thread_s / best-multi-thread_s.  On a
//       single-core host this is ~1 or below (the committed baseline
//       records the honest number for its machine); on real multi-core
//       hardware it tracks the scaling win.
//   PDES_1k
//       items_per_second = hops per wall second for the pinned 1000-hop
//       16-domain configuration: partition planning, per-domain world
//       construction, and ONE lockstep lookahead window.  Pins the
//       at-scale setup cost so a super-linear regression in planning or
//       domain construction fails the gate before anyone runs a long
//       scenario on a wide topology.
//
// Every row is min-of-3 wall time (same noise remedy as micro_sim's
// fluid comparison); the scenario physics are deterministic across
// repetitions, which the scaling rows double-check by digesting handoff
// counts.
#include <cstdint>
#include <cstdio>
#include <random>
#include <vector>

#include "core/parallel_scenario.hpp"
#include "runner/bench_report.hpp"
#include "sim/fluid.hpp"
#include "sim/link.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace abw;

// ---------------------------------------------------------------------------
// SIMD-vs-scalar bulk absorb

struct AbsorbRun {
  double seconds = 0.0;
  std::uint64_t packets = 0;
  std::uint64_t check = 0;  // bytes_out: must match across variants
};

// One long Poisson arrival schedule at high load (long busy runs, so the
// run-retirement path owns most of the work) with the trimodal internet
// size mix, absorbed in pump-sized chunks.  The mixed sizes matter: they
// are what real generator workloads feed absorb, and they are the case
// where per-packet serialization-time lookups cost the scalar path the
// most.
AbsorbRun run_absorb(bool vectorized) {
  constexpr std::size_t kChunk = 1024;
  constexpr int kChunks = 400;

  sim::Simulator simu;
  sim::LinkConfig lc;
  lc.capacity_bps = 50e6;
  lc.propagation_delay = sim::kMillisecond;
  lc.queue_limit_bytes = 2 << 20;
  sim::Path path(simu, {lc});
  sim::CountingSink sink;
  path.set_receiver(&sink);
  sim::FluidQueue& fq = path.link(0).enable_fluid();
  fq.set_vectorized(vectorized);
  fq.reset(0);

  std::mt19937 rng(99);
  std::exponential_distribution<double> gap(1.0);
  const std::uint32_t size_mix[4] = {40, 576, 1500, 1004};
  const double mean_size = (40 + 576 + 1500 + 1004) / 4.0;
  const double mean_gap_s = mean_size * 8.0 / (50e6 * 0.9);  // 90% load

  // The whole schedule is drawn up front so the timed region is absorb
  // alone, not the generator's RNG draws.
  std::vector<sim::SimTime> times(kChunks * kChunk);
  std::vector<std::uint32_t> sizes(kChunks * kChunk);
  sim::SimTime t = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    t += sim::from_seconds(gap(rng) * mean_gap_s);
    times[i] = t;
    sizes[i] = size_mix[rng() % 4];
  }

  AbsorbRun r;
  const double t0 = runner::monotonic_seconds();
  for (int c = 0; c < kChunks; ++c) {
    const sim::SimTime* ct = times.data() + c * kChunk;
    const std::uint32_t* cs = sizes.data() + c * kChunk;
    fq.absorb(ct, cs, kChunk, ct[kChunk - 1]);
    r.packets += kChunk;
  }
  fq.advance(t + sim::kSecond);
  r.seconds = runner::monotonic_seconds() - t0;
  r.check = path.link(0).stats().bytes_out;
  return r;
}

// ---------------------------------------------------------------------------
// Domain-count scaling

struct ScaleRun {
  double seconds = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t check = 0;  // handoffs: must match across thread counts
};

ScaleRun run_domains(std::size_t threads) {
  constexpr double kSimSeconds = 3.0;

  core::ParallelScenarioConfig cfg;
  cfg.hop_count = 8;
  cfg.capacity_bps = 50e6;
  cfg.cross_rate_bps = 30e6;
  cfg.model = core::CrossModel::kPoisson;
  cfg.propagation_delay = 5 * sim::kMillisecond;
  cfg.traffic_horizon = sim::from_seconds(kSimSeconds + 1.0);
  cfg.warmup = 100 * sim::kMillisecond;
  cfg.seed = 23;
  cfg.cuts = {1, 3, 5};  // 4 domains
  cfg.threads = threads;
  core::ParallelScenario sc(cfg);

  ScaleRun r;
  const sim::SimTime t0 = sc.now();
  const double w0 = runner::monotonic_seconds();
  // A probe stream per simulated second keeps cross-domain handoffs in
  // the measured region (and exercises the stop predicate), like a real
  // monitoring session would.
  for (int k = 0; k < 3; ++k) {
    sc.send_periodic_stream(25e6, 1500, 100, sim::kMillisecond);
    sc.run_until(t0 + sim::from_seconds(kSimSeconds * (k + 1) / 3.0));
  }
  r.seconds = runner::monotonic_seconds() - w0;
  r.sim_seconds = sim::to_seconds(sc.now() - t0);
  r.check = sc.parallel().handoffs();
  return r;
}

// The pinned at-scale configuration: 1000 hops, automatic 16-domain
// partition, hybrid mode (background load stays fluid, so the row times
// the engine — planning, construction, window protocol — not packet
// churn).  Measures plan + build + exactly one lookahead window.
ScaleRun run_1k() {
  core::ParallelScenarioConfig cfg;
  cfg.hop_count = 1000;
  cfg.capacity_bps = 50e6;
  cfg.cross_rate_bps = 30e6;
  cfg.mode = sim::SimMode::kHybrid;
  cfg.model = core::CrossModel::kPoisson;
  cfg.propagation_delay = 5 * sim::kMillisecond;
  cfg.traffic_horizon = sim::kSecond;
  cfg.warmup = 0;
  cfg.seed = 23;
  cfg.domains = 16;
  cfg.threads = 0;

  ScaleRun r;
  const double w0 = runner::monotonic_seconds();
  core::ParallelScenario sc(cfg);
  const sim::SimTime t0 = sc.now();
  sc.run_until(t0 + sc.parallel().lookahead());
  r.seconds = runner::monotonic_seconds() - w0;
  r.sim_seconds = sim::to_seconds(sc.now() - t0);
  // Rep-consistency check: the plan itself (cut positions + lookahead)
  // and the window count must not wobble across repetitions.
  r.check = sc.parallel().windows();
  r.check = r.check * 1009 + sc.parallel().domain_count();
  r.check = r.check * 1009 + static_cast<std::uint64_t>(sc.plan().lookahead);
  for (std::size_t end : sc.plan().domain_end) r.check = r.check * 1009 + end;
  return r;
}

template <typename Fn, typename Run>
Run min_of_reps(Fn&& run, Run first, int kReps = 5) {
  Run best = first;
  for (int i = 1; i < kReps; ++i) {
    Run r = run();
    if (r.check != best.check)
      std::fprintf(stderr, "micro_pdes: WARNING: nondeterministic check "
                           "value across repetitions (%llu vs %llu)\n",
                   static_cast<unsigned long long>(r.check),
                   static_cast<unsigned long long>(best.check));
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

struct Row {
  const char* name;
  double items_per_second;
  double real_s;
};

}  // namespace

int main() {
  AbsorbRun scalar = min_of_reps([] { return run_absorb(false); },
                                 run_absorb(false));
  AbsorbRun simd = min_of_reps([] { return run_absorb(true); },
                               run_absorb(true));
  if (scalar.check != simd.check)
    std::fprintf(stderr, "micro_pdes: WARNING: SIMD absorb diverged from "
                         "scalar (bytes_out %llu vs %llu)\n",
                 static_cast<unsigned long long>(simd.check),
                 static_cast<unsigned long long>(scalar.check));

  const std::size_t thread_counts[] = {1, 2, 4};
  ScaleRun scale[3];
  for (int i = 0; i < 3; ++i) {
    const std::size_t n = thread_counts[i];
    scale[i] = min_of_reps([n] { return run_domains(n); }, run_domains(n));
    if (scale[i].check != scale[0].check)
      std::fprintf(stderr, "micro_pdes: WARNING: %zu-thread run diverged "
                           "from serial (handoffs %llu vs %llu)\n",
                   n, static_cast<unsigned long long>(scale[i].check),
                   static_cast<unsigned long long>(scale[0].check));
  }
  double best_multi = scale[1].seconds < scale[2].seconds ? scale[1].seconds
                                                          : scale[2].seconds;

  ScaleRun wide = min_of_reps([] { return run_1k(); }, run_1k(), 3);

  const Row rows[] = {
      {"PDES_absorb_scalar", scalar.packets / scalar.seconds, scalar.seconds},
      {"PDES_absorb_simd", simd.packets / simd.seconds, simd.seconds},
      {"PDES_simd_speedup", scalar.seconds / simd.seconds,
       simd.seconds},
      {"PDES_domains_1t", scale[0].sim_seconds / scale[0].seconds,
       scale[0].seconds},
      {"PDES_domains_2t", scale[1].sim_seconds / scale[1].seconds,
       scale[1].seconds},
      {"PDES_domains_4t", scale[2].sim_seconds / scale[2].seconds,
       scale[2].seconds},
      {"PDES_parallel_speedup", scale[0].seconds / best_multi, best_multi},
      {"PDES_1k", 1000.0 / wide.seconds, wide.seconds},
  };
  constexpr std::size_t kRows = sizeof(rows) / sizeof(rows[0]);

  std::FILE* f = std::fopen("BENCH_pdes.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "micro_pdes: cannot write BENCH_pdes.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"context\": {\"note\": \"speedup rows carry the "
                  "ratio in items_per_second; domain rows carry simulated "
                  "seconds per wall second\"},\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < kRows; ++i) {
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"run_type\": \"iteration\", "
        "\"iterations\": 1, \"real_time\": %.6e, \"cpu_time\": %.6e, "
        "\"time_unit\": \"ns\", \"items_per_second\": %.6f}%s\n",
        rows[i].name, rows[i].real_s * 1e9, rows[i].real_s * 1e9,
        rows[i].items_per_second, i + 1 < kRows ? "," : "");
    std::printf("%-24s %12.3f items/s  (%.4f s)\n", rows[i].name,
                rows[i].items_per_second, rows[i].real_s);
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  return 0;
}
