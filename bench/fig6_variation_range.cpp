// Figure 6 — "Variation range of an avail-bw sample path."
//
// Paper setup: the NLANR OC-3 trace; a passive avail-bw measurement every
// tau = 10 ms over 20 s.  The sample path varies, with significant
// probability, between ~60 and ~110 Mb/s; that band — NOT a confidence
// interval — is what iterative probing (Pathload) can estimate.
//
// We reproduce it on the synthetic self-similar OC-3 substitute, print
// the sample path, the passive variation range, and then actually RUN
// Pathload against the same traffic replayed through a simulated OC-3
// link, showing the probing-based range lands on the passive band.
#include <cstdio>
#include <iostream>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "est/pathload.hpp"
#include "stats/moments.hpp"
#include "trace/availbw_process.hpp"
#include "trace/synthetic_trace.hpp"
#include "traffic/trace_replay.hpp"

int main() {
  using namespace abw;
  core::print_header(std::cout, "Figure 6: variation range of the avail-bw sample path",
                     "Jain & Dovrolis IMC'04, Fig. 6");

  stats::Rng rng(6);
  trace::SyntheticTraceConfig tc;
  tc.duration = 22 * sim::kSecond;
  std::printf("workload: synthetic self-similar OC-3 trace (NLANR substitute), "
              "tau = 10 ms, 20 s shown\n\n");
  trace::PacketTrace tr = trace::synthesize_selfsimilar_trace(tc, rng);
  trace::AvailBwProcess proc(tr);

  auto series = proc.series(10 * sim::kMillisecond);
  if (series.size() > 2000) series.resize(2000);
  std::printf("%s", core::ascii_plot(series, 14, 76).c_str());
  std::printf("  (y: avail-bw, bits/s; x: time over 20 s; one point per 10 ms)\n\n");

  auto [lo, hi] = proc.variation_range(10 * sim::kMillisecond, 0.05);
  std::printf("passive 5th-95th percentile variation range: [%s, %s]\n",
              core::mbps(lo).c_str(), core::mbps(hi).c_str());
  std::printf("mean avail-bw: %s\n\n", core::mbps(proc.mean_avail_bw()).c_str());

  // Replay the same trace through a simulated OC-3 link and let Pathload
  // estimate the variation range by probing.
  std::vector<sim::LinkConfig> links(1);
  links[0].capacity_bps = tc.capacity_bps;
  links[0].queue_limit_bytes = 8 << 20;
  auto sc = core::Scenario::custom(links, 66);
  traffic::TraceReplayer rep(sc.simulator(), sc.path(), 0, false, 1);
  rep.schedule(tr.to_replay());
  sc.simulator().run_until(sim::kSecond);

  est::PathloadConfig pc;
  pc.min_rate_bps = 10e6;
  pc.max_rate_bps = 150e6;
  pc.resolution_bps = 4e6;
  est::Pathload pl(pc);
  auto e = pl.estimate(sc.session());
  if (e.valid) {
    std::printf("Pathload (probing the replayed trace): [%s, %s]\n",
                core::mbps(e.low_bps).c_str(), core::mbps(e.high_bps).c_str());
  } else {
    std::printf("Pathload failed: %s\n", e.detail.c_str());
  }

  bool wide_band = (hi - lo) > 0.25 * proc.mean_avail_bw();
  bool overlap = e.valid && e.low_bps < hi && e.high_bps > lo;
  core::print_check(
      std::cout,
      "at tau = 10 ms the avail-bw varies over a wide band (paper: "
      "~60-110 Mbps); iterative probing estimates that variation range, "
      "and the range must not be misread as a confidence interval",
      "passive band [" + core::mbps(lo) + ", " + core::mbps(hi) +
          "] is a large fraction of the mean, and the probing-based range "
          "overlaps it",
      wide_band && overlap);
  return 0;
}
