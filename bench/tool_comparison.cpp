// Tool comparison bench — the paper's Section 4 recommendation executed:
// all techniques on identical paths, identical cross traffic, multiple
// seeds, with accuracy AND overhead AND latency reported side by side
// (the latency-accuracy tradeoff of the "faster is better" fallacy).
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "core/registry.hpp"
#include "core/report.hpp"
#include "core/scenario.hpp"
#include "runner/batch.hpp"
#include "runner/cli.hpp"
#include "runner/bench_report.hpp"
#include "stats/moments.hpp"

using namespace abw;

namespace {

constexpr int kSeeds = 5;

// Registry v2: one uniform option set, tools enumerated from the
// ToolInfo table instead of eight hand-built config structs.  bfind is
// skipped here — its multi-second rate ramp dominates the batch and the
// comparison tables never included it.
std::vector<std::unique_ptr<est::Estimator>> make_tools(double ct,
                                                        stats::Rng& rng) {
  core::ToolOptions o;
  o.tight_capacity_bps = ct;
  o.min_rate_bps = 0.04 * ct;
  o.max_rate_bps = 0.98 * ct;
  std::vector<std::unique_ptr<est::Estimator>> tools;
  for (const core::ToolInfo& info : core::available_tool_info()) {
    if (info.name == "bfind") continue;
    tools.push_back(core::make_estimator(info.name, o, rng));
  }
  return tools;
}

// One tool's outcome in one seed's scenario.
struct ToolRun {
  std::string name, cls;
  bool valid = false;
  double err = 0.0, pkts = 0.0, latency = 0.0;
};

// Everything inside one seed is an independent world (fresh Scenario,
// fresh tool instances), so seeds run as parallel BatchRunner tasks;
// per-tool aggregation below walks the results in seed order, keeping the
// output identical for every thread count.
std::vector<ToolRun> run_one_seed(core::CrossModel model, std::size_t seed) {
  core::SingleHopConfig cfg;
  cfg.model = model;
  cfg.seed = 1000 + static_cast<std::uint64_t>(seed);
  auto sc = core::Scenario::single_hop(cfg);
  auto tools = make_tools(cfg.capacity_bps, sc.rng());
  std::vector<ToolRun> runs;
  runs.reserve(tools.size());
  for (auto& tool : tools) {
    ToolRun r;
    r.name = tool->name();
    r.cls = tool->probing_class() == est::ProbingClass::kDirect ? "direct"
                                                                : "iterative";
    auto before = sc.session().cost();
    est::Estimate e = tool->estimate(sc.session());
    auto after = sc.session().cost();
    r.valid = e.valid;
    if (e.valid) {
      double truth = sc.nominal_avail_bw();
      r.err = std::abs(e.point_bps() - truth) / truth;
      r.pkts = static_cast<double>(after.packets - before.packets);
      r.latency = sim::to_seconds(after.last_activity) -
                  sim::to_seconds(before.last_activity);
    }
    runs.push_back(r);
  }
  return runs;
}

void run_model(core::CrossModel model, std::size_t jobs, bool record_timing) {
  struct Agg {
    std::string name, cls;
    stats::RunningStats err, pkts, latency;
    int invalid = 0;
  };
  std::vector<Agg> agg;

  auto task = [&](std::size_t seed) { return run_one_seed(model, seed); };
  std::vector<std::vector<ToolRun>> per_seed;
  if (record_timing) {
    // Dual run (jobs=1 then jobs=N) so BENCH_batch.json tracks the
    // serial-vs-parallel wall time of a full seed batch.
    per_seed = runner::timed_speedup_map("tool_comparison", kSeeds, jobs, task);
  } else {
    runner::BatchRunner batch(jobs);
    per_seed = batch.map(kSeeds, task);
  }

  for (const auto& runs : per_seed) {
    if (agg.empty())
      for (const auto& r : runs) agg.push_back({r.name, r.cls, {}, {}, {}, 0});
    for (std::size_t i = 0; i < runs.size(); ++i) {
      if (!runs[i].valid) {
        ++agg[i].invalid;
        continue;
      }
      agg[i].err.add(runs[i].err);
      agg[i].pkts.add(runs[i].pkts);
      agg[i].latency.add(runs[i].latency);
    }
  }

  std::printf("\n--- %s cross traffic (Ct=50 Mbps, A=25 Mbps, %d seeds) ---\n",
              core::to_string(model), kSeeds);
  core::Table table({"tool", "class", "mean |error|", "packets", "latency",
                     "invalid runs"});
  for (auto& a : agg) {
    char lat[32];
    std::snprintf(lat, sizeof lat, "%.2f s", a.latency.mean());
    table.row({a.name, a.cls,
               a.err.count() ? core::pct(a.err.mean()) : std::string("-"),
               std::to_string(static_cast<long long>(a.pkts.mean())), lat,
               std::to_string(a.invalid)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  core::print_header(std::cout,
                     "Tool comparison under reproducible conditions",
                     "Jain & Dovrolis IMC'04, Section 4 recommendation");
  std::size_t jobs = runner::jobs_from_cli(argc, argv);
  std::printf("running %d seeds per model on %zu thread(s) (--jobs/ABW_JOBS)\n",
              kSeeds, jobs);
  run_model(core::CrossModel::kCbr, jobs, /*record_timing=*/true);
  run_model(core::CrossModel::kPoisson, jobs, /*record_timing=*/false);
  run_model(core::CrossModel::kParetoOnOff, jobs, /*record_timing=*/false);
  std::printf(
      "\nreading guide: accuracy comparisons are only meaningful at equal\n"
      "overhead and equal averaging time scale (pitfalls 1-3) — the packet\n"
      "and latency columns quantify what each tool paid for its accuracy.\n");
  return 0;
}
