// Tool comparison bench — the paper's Section 4 recommendation executed:
// all techniques on identical paths, identical cross traffic, multiple
// seeds, with accuracy AND overhead AND latency reported side by side
// (the latency-accuracy tradeoff of the "faster is better" fallacy).
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "core/report.hpp"
#include "core/scenario.hpp"
#include "est/direct.hpp"
#include "est/igi_ptr.hpp"
#include "est/pathchirp.hpp"
#include "est/pathload.hpp"
#include "est/spruce.hpp"
#include "est/topp.hpp"
#include "stats/moments.hpp"

using namespace abw;

namespace {

constexpr int kSeeds = 5;

std::vector<std::unique_ptr<est::Estimator>> make_tools(double ct,
                                                        stats::Rng& rng) {
  std::vector<std::unique_ptr<est::Estimator>> tools;
  est::DirectConfig dc;
  dc.tight_capacity_bps = ct;
  tools.push_back(std::make_unique<est::DirectProber>(dc));
  est::SpruceConfig sc;
  sc.tight_capacity_bps = ct;
  tools.push_back(std::make_unique<est::Spruce>(sc, rng.fork()));
  est::ToppConfig tc;
  tc.min_rate_bps = 0.1 * ct;
  tc.max_rate_bps = 0.96 * ct;
  tc.rate_step_bps = 0.04 * ct;
  tools.push_back(std::make_unique<est::Topp>(tc, rng.fork()));
  est::PathloadConfig pc;
  pc.min_rate_bps = 0.04 * ct;
  pc.max_rate_bps = 0.98 * ct;
  tools.push_back(std::make_unique<est::Pathload>(pc));
  est::PathChirpConfig cc;
  cc.low_rate_bps = 0.08 * ct;
  cc.packets_per_chirp = 22;
  tools.push_back(std::make_unique<est::PathChirp>(cc));
  est::IgiPtrConfig ic;
  ic.tight_capacity_bps = ct;
  tools.push_back(std::make_unique<est::IgiPtr>(ic, est::IgiPtrFormula::kIgi));
  tools.push_back(std::make_unique<est::IgiPtr>(ic, est::IgiPtrFormula::kPtr));
  return tools;
}

void run_model(core::CrossModel model) {
  struct Agg {
    std::string name, cls;
    stats::RunningStats err, pkts, latency;
    int invalid = 0;
  };
  std::vector<Agg> agg;

  for (int seed = 0; seed < kSeeds; ++seed) {
    core::SingleHopConfig cfg;
    cfg.model = model;
    cfg.seed = 1000 + static_cast<std::uint64_t>(seed);
    auto sc = core::Scenario::single_hop(cfg);
    auto tools = make_tools(cfg.capacity_bps, sc.rng());
    if (agg.empty()) {
      for (auto& t : tools)
        agg.push_back({std::string(t->name()),
                       t->probing_class() == est::ProbingClass::kDirect
                           ? "direct"
                           : "iterative",
                       {}, {}, {}, 0});
    }
    for (std::size_t i = 0; i < tools.size(); ++i) {
      auto before = sc.session().cost();
      est::Estimate e = tools[i]->estimate(sc.session());
      auto after = sc.session().cost();
      if (!e.valid) {
        ++agg[i].invalid;
        continue;
      }
      double truth = sc.nominal_avail_bw();
      agg[i].err.add(std::abs(e.point_bps() - truth) / truth);
      agg[i].pkts.add(static_cast<double>(after.packets - before.packets));
      agg[i].latency.add(sim::to_seconds(after.last_activity) -
                         sim::to_seconds(before.last_activity));
    }
  }

  std::printf("\n--- %s cross traffic (Ct=50 Mbps, A=25 Mbps, %d seeds) ---\n",
              core::to_string(model), kSeeds);
  core::Table table({"tool", "class", "mean |error|", "packets", "latency",
                     "invalid runs"});
  for (auto& a : agg) {
    char lat[32];
    std::snprintf(lat, sizeof lat, "%.2f s", a.latency.mean());
    table.row({a.name, a.cls,
               a.err.count() ? core::pct(a.err.mean()) : std::string("-"),
               std::to_string(static_cast<long long>(a.pkts.mean())), lat,
               std::to_string(a.invalid)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  core::print_header(std::cout,
                     "Tool comparison under reproducible conditions",
                     "Jain & Dovrolis IMC'04, Section 4 recommendation");
  run_model(core::CrossModel::kCbr);
  run_model(core::CrossModel::kPoisson);
  run_model(core::CrossModel::kParetoOnOff);
  std::printf(
      "\nreading guide: accuracy comparisons are only meaningful at equal\n"
      "overhead and equal averaging time scale (pitfalls 1-3) — the packet\n"
      "and latency columns quantify what each tool paid for its accuracy.\n");
  return 0;
}
