// A cross-traffic source for hybrid simulation mode.
//
// Wraps a Generator pulled through the chunked arrival-stream API and
// drives one link's FluidQueue: between probe collision windows the
// arrivals are absorbed analytically (zero scheduled events); inside a
// window they are injected as ordinary discrete packets so probe/cross
// interactions stay packet-accurate.  The switchover rules keep the
// link's utilization meter exact and time-ordered:
//
//   FLUID -> PACKET at window start w: the fluid backlog is materialized
//   into the link's real queue (the in-service packet keeps its exact
//   remaining serialization time), then arrivals are injected discretely.
//
//   PACKET -> FLUID after the window closes: only at the first arrival
//   that finds the link completely idle — never mid-backlog — so the DES
//   has finished recording before the fluid resumes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>

#include "sim/fluid.hpp"
#include "sim/hybrid.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "traffic/arrival_stream.hpp"
#include "traffic/generator.hpp"

namespace abw::traffic {

/// One generator feeding one link, switchable between fluid and packet
/// operation.  Owned by the Scenario; registered with the Path as a
/// sim::HybridAgent.
class HybridCrossSource final : public sim::HybridAgent {
 public:
  /// Same placement parameters as Generator; takes ownership of `gen`
  /// (which must not have been started).  The source feeds
  /// `path.link(entry_hop)` — the hybrid validity envelope is one fluid
  /// source per link.
  HybridCrossSource(sim::Simulator& sim, sim::Path& path,
                    std::size_t entry_hop, bool one_hop,
                    std::uint32_t flow_id, std::unique_ptr<Generator> gen);

  /// Activates the source over [t0, t1): enables the link's fluid
  /// integrator, arms the generator's pull cursor, and registers with the
  /// path.  May be called once, before the simulation advances past t0.
  void start(sim::SimTime t0, sim::SimTime t1);

  // sim::HybridAgent
  void sync(sim::SimTime t) override;
  void open_window(sim::SimTime start) override;
  void close_window() override;

  const Generator& generator() const { return *gen_; }

 private:
  /// Arrivals pulled per fill() call; bounds chunk memory (48 KB, still
  /// cache-resident) while keeping the per-refill overhead and the
  /// absorb() run splits at chunk boundaries negligible.
  static constexpr std::size_t kChunk = 4096;

  /// window_end_ value while a window is open (close time not yet known).
  static constexpr sim::SimTime kNoEnd =
      std::numeric_limits<sim::SimTime>::max();

  /// Safety-net window length when an unexpected discrete packet forces a
  /// conversion outside any announced window.
  static constexpr sim::SimTime kSafetyWindow = 5 * sim::kMillisecond;

  enum class State {
    kFluid,   ///< arrivals absorbed analytically by the FluidQueue
    kWindow,  ///< arrivals injected as discrete packets
  };

  void pump(sim::SimTime t);   // absorb arrivals <= t, advance the fluid
  void enter_window();         // FLUID -> PACKET at sim.now()
  void arm_inject();           // schedule the next discrete injection
  void emit_discrete();        // inject (or resume fluid if window closed)
  void on_interrupt();         // Link safety-net hook
  bool refill();               // pull the next chunk; false when stream done

  sim::Simulator& sim_;
  sim::Path& path_;
  std::size_t entry_hop_;
  std::uint32_t flow_id_;
  std::uint32_t exit_hop_;
  std::unique_ptr<Generator> gen_;

  sim::Link* link_ = nullptr;
  sim::FluidQueue* fq_ = nullptr;

  ArrivalChunk chunk_;
  std::size_t cursor_ = 0;  ///< first not-yet-consumed arrival in chunk_

  State state_ = State::kFluid;
  sim::SimTime window_end_ = 0;  ///< kNoEnd while a window is open
  bool started_ = false;
  std::uint32_t seq_ = 0;  ///< sequence stamp for discrete injections
};

}  // namespace abw::traffic
