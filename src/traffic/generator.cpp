#include "traffic/generator.hpp"

#include <stdexcept>
#include <utility>

namespace abw::traffic {

Generator::Generator(sim::Simulator& sim, sim::Path& path, std::size_t entry_hop,
                     bool one_hop, std::uint32_t flow_id, stats::Rng rng)
    : sim_(sim),
      path_(path),
      entry_hop_(entry_hop),
      one_hop_(one_hop),
      flow_id_(flow_id),
      rng_(std::move(rng)) {
  if (entry_hop >= path.hop_count())
    throw std::invalid_argument("Generator: entry_hop out of range");
}

void Generator::start(sim::SimTime t0, sim::SimTime t1) {
  if (started_) throw std::logic_error("Generator::start called twice");
  if (pull_active_) throw std::logic_error("Generator::start after begin_stream");
  if (t1 <= t0) throw std::invalid_argument("Generator: empty active window");
  started_ = true;
  t0_ = t0;
  t1_ = t1;
  sim_.at(t0, [this] { arm_next(); });
}

void Generator::arm_next() {
  sim::SimTime gap = next_gap(rng_, sim_.now());
  schedule_emit(sim_.now() + gap);
}

void Generator::schedule_emit(sim::SimTime when) {
  if (when >= t1_) return;  // active window over
  sim_.at(when, [this] { emit(); });
}

// Pre-draws the next kBatchDraws (size, gap-to-next) pairs.  The draw
// order — size_i, gap_{i+1}, size_{i+1}, gap_{i+2}, ... — is exactly the
// order the unbatched path consumes the RNG in (emit() draws the packet
// size, then arm_next() draws the following gap), so batching never
// perturbs the generated packet stream.  Draws past the end of the
// active window are discarded unused, which the unbatched path also does
// for its final gap.
void Generator::refill_pending() {
  pending_.clear();
  pending_head_ = 0;
  for (std::size_t i = 0; i < kBatchDraws; ++i) {
    PendingDraw d;
    d.size = next_size(rng_);
    d.gap_after = next_gap(rng_, sim_.now());
    pending_.push_back(d);
  }
}

void Generator::emit() {
  std::uint32_t size;
  sim::SimTime gap_after;
  bool batched = gap_is_time_invariant();
  if (batched) {
    if (pending_head_ == pending_.size()) refill_pending();
    size = pending_[pending_head_].size;
    gap_after = pending_[pending_head_].gap_after;
    ++pending_head_;
  } else {
    size = next_size(rng_);
    gap_after = 0;  // drawn below, at the post-emit time it applies to
  }

  sim::Packet pkt;
  pkt.id = sim_.next_packet_id();
  pkt.type = sim::PacketType::kCross;
  pkt.size_bytes = size;
  pkt.flow_id = flow_id_;
  pkt.seq = seq_++;
  pkt.exit_hop = one_hop_ ? static_cast<std::uint32_t>(entry_hop_) : sim::kEndToEnd;
  pkt.send_time = sim_.now();
  ++packets_sent_;
  bytes_sent_ += pkt.size_bytes;
  path_.inject(entry_hop_, pkt);

  if (batched) {
    schedule_emit(sim_.now() + gap_after);
  } else {
    arm_next();
  }
}

void Generator::begin_stream(sim::SimTime t0, sim::SimTime t1) {
  if (started_) throw std::logic_error("Generator::begin_stream after start");
  if (pull_active_) throw std::logic_error("Generator::begin_stream called twice");
  if (t1 <= t0) throw std::invalid_argument("Generator: empty active window");
  pull_active_ = true;
  t0_ = t0;
  t1_ = t1;
  pull_t_ = t0;
}

std::size_t Generator::fill(ArrivalChunk& out, std::size_t max_arrivals) {
  if (!pull_active_) throw std::logic_error("Generator::fill before begin_stream");
  std::size_t n = 0;
  while (n < max_arrivals && !pull_done_) {
    // Same consumption order as the self-scheduling path: the gap is drawn
    // with `now` = the previous arrival time (arm_next() runs inside the
    // previous emit), and the final gap crossing t1 is drawn but its
    // packet size is not (schedule_emit() discards the wakeup).
    sim::SimTime gap = next_gap(rng_, pull_t_);
    sim::SimTime t = pull_t_ + gap;
    if (t >= t1_) {
      pull_done_ = true;
      break;
    }
    std::uint32_t size = next_size(rng_);
    out.push_back(t, size);
    pull_t_ = t;
    ++packets_sent_;
    bytes_sent_ += size;
    ++n;
  }
  return n;
}

double Generator::offered_rate() const {
  sim::SimTime elapsed = (sim_.now() < t1_ ? sim_.now() : t1_) - t0_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(bytes_sent_) * 8.0 / sim::to_seconds(elapsed);
}

}  // namespace abw::traffic
