// Poisson cross traffic: exponential interarrivals, arbitrary packet-size
// distribution.  The paper's default bursty workload (Figs. 2-4, Table 1).
#pragma once

#include "traffic/generator.hpp"
#include "traffic/packet_size.hpp"

namespace abw::traffic {

/// Emits packets as a Poisson process.  The arrival rate is chosen so the
/// *byte* rate equals `rate_bps` given the size distribution's mean:
/// lambda = rate / (8 * E[L]).
class PoissonGenerator final : public Generator {
 public:
  PoissonGenerator(sim::Simulator& sim, sim::Path& path, std::size_t entry_hop,
                   bool one_hop, std::uint32_t flow_id, stats::Rng rng,
                   double rate_bps, SizeDistribution sizes);

 protected:
  sim::SimTime next_gap(stats::Rng& rng, sim::SimTime now) override;
  std::uint32_t next_size(stats::Rng& rng) override;
  bool gap_is_time_invariant() const override { return true; }

 private:
  double mean_gap_seconds_;
  SizeDistribution sizes_;
};

}  // namespace abw::traffic
