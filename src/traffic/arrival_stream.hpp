// Chunked arrival stream: bulk (time, size) arrays produced by
// Generator::fill().  Both simulation modes can consume arrivals in
// chunks — the fluid fast path absorbs whole chunks analytically, and a
// packet-mode consumer can inject them one by one — replacing
// one-scheduled-event-per-cross-packet with one refill per chunk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace abw::traffic {

/// A batch of packet arrivals in struct-of-arrays form: `times[i]` is the
/// arrival instant of a packet of `sizes[i]` bytes.  Times are strictly
/// ascending within a chunk (gaps are >= 1 ns).
struct ArrivalChunk {
  std::vector<sim::SimTime> times;
  std::vector<std::uint32_t> sizes;

  std::size_t size() const { return times.size(); }
  bool empty() const { return times.empty(); }

  void clear() {
    times.clear();
    sizes.clear();
  }

  void reserve(std::size_t n) {
    times.reserve(n);
    sizes.reserve(n);
  }

  void push_back(sim::SimTime t, std::uint32_t s) {
    times.push_back(t);
    sizes.push_back(s);
  }
};

}  // namespace abw::traffic
