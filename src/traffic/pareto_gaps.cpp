#include "traffic/pareto_gaps.hpp"

#include <stdexcept>

namespace abw::traffic {

ParetoGapGenerator::ParetoGapGenerator(sim::Simulator& sim, sim::Path& path,
                                       std::size_t entry_hop, bool one_hop,
                                       std::uint32_t flow_id, stats::Rng rng,
                                       double rate_bps, std::uint32_t packet_size,
                                       double shape)
    : Generator(sim, path, entry_hop, one_hop, flow_id, std::move(rng)),
      shape_(shape),
      packet_size_(packet_size) {
  if (rate_bps <= 0.0 || packet_size == 0)
    throw std::invalid_argument("ParetoGapGenerator: rate and size must be > 0");
  if (shape <= 1.0)
    throw std::invalid_argument("ParetoGapGenerator: shape must be > 1");
  double mean_gap = packet_size * 8.0 / rate_bps;
  // Pareto mean = shape * xm / (shape - 1)  =>  xm = mean * (shape-1)/shape.
  scale_seconds_ = mean_gap * (shape - 1.0) / shape;
}

sim::SimTime ParetoGapGenerator::next_gap(stats::Rng& rng, sim::SimTime) {
  return sim::from_seconds(rng.pareto(shape_, scale_seconds_));
}

std::uint32_t ParetoGapGenerator::next_size(stats::Rng&) { return packet_size_; }

}  // namespace abw::traffic
