// UDP cross traffic with Pareto-distributed interarrivals — the
// unresponsive, heavy-tailed workload of the paper's Fig. 7 ("UDP sources
// with Pareto interarrivals").  Unlike Pareto ON-OFF there are no
// back-to-back bursts; the burstiness comes from the gap distribution's
// heavy tail (infinite variance for shape <= 2).
#pragma once

#include "traffic/generator.hpp"
#include "traffic/packet_size.hpp"

namespace abw::traffic {

/// Emits fixed-size packets with i.i.d. Pareto(shape, xm) interarrivals;
/// xm is derived so the long-run byte rate equals `rate_bps`.
class ParetoGapGenerator final : public Generator {
 public:
  /// `shape` must be > 1 (finite mean gap); the classic heavy-tail regime
  /// is 1 < shape <= 2.
  ParetoGapGenerator(sim::Simulator& sim, sim::Path& path, std::size_t entry_hop,
                     bool one_hop, std::uint32_t flow_id, stats::Rng rng,
                     double rate_bps, std::uint32_t packet_size,
                     double shape = 1.9);

 protected:
  sim::SimTime next_gap(stats::Rng& rng, sim::SimTime now) override;
  std::uint32_t next_size(stats::Rng& rng) override;
  bool gap_is_time_invariant() const override { return true; }

 private:
  double shape_;
  double scale_seconds_;  // Pareto xm so that E[gap] = 8L / rate
  std::uint32_t packet_size_;
};

}  // namespace abw::traffic
