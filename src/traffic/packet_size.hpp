// Packet-size distributions for cross traffic.
//
// The paper's "packet pairs are as good as packet trains" fallacy hinges on
// cross traffic having *discrete, strongly modal* packet sizes (one 1500 B
// packet vs. two 40 B packets interleaving a probe pair), so size
// distributions are first-class here: fixed, empirical-modal (the classic
// 40/576/1500 Internet mix), and uniform.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace abw::traffic {

/// A discrete packet-size distribution: sizes with probabilities.
class SizeDistribution {
 public:
  /// Point mass at `size` bytes.
  static SizeDistribution fixed(std::uint32_t size);

  /// Modal mix: {(size, weight)}; weights are normalized internally.
  static SizeDistribution modal(std::vector<std::pair<std::uint32_t, double>> modes);

  /// The classic Internet trimodal mix: 40 B (40%), 576 B (20%), 1500 B (40%).
  static SizeDistribution internet_mix();

  /// Draws a size.
  std::uint32_t sample(stats::Rng& rng) const;

  /// Mean size in bytes.
  double mean() const { return mean_; }

 private:
  SizeDistribution(std::vector<std::uint32_t> sizes, std::vector<double> cum,
                   double mean)
      : sizes_(std::move(sizes)), cum_(std::move(cum)), mean_(mean) {}

  std::vector<std::uint32_t> sizes_;
  std::vector<double> cum_;  // cumulative probabilities, back() == 1
  double mean_;
};

}  // namespace abw::traffic
