// Base class for open-loop cross-traffic generators.
//
// A generator owns an arrival process (interarrival gaps + packet sizes)
// and self-schedules injections into one hop of a Path over an active
// window [t0, t1).  One-hop persistence (the Fig. 4 multi-bottleneck
// workload: traffic "enters the link i and exits at link i+1") is
// expressed by stamping each packet's exit_hop with the entry hop.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/packet.hpp"
#include "traffic/arrival_stream.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace abw::traffic {

/// Abstract open-loop packet generator.
class Generator {
 public:
  /// `entry_hop` is the path hop the packets enter; if `one_hop` they exit
  /// right after that hop, otherwise they travel to the path receiver.
  Generator(sim::Simulator& sim, sim::Path& path, std::size_t entry_hop,
            bool one_hop, std::uint32_t flow_id, stats::Rng rng);
  virtual ~Generator() = default;

  Generator(const Generator&) = delete;
  Generator& operator=(const Generator&) = delete;

  /// Activates the generator during [t0, t1).  The first packet arrives at
  /// t0 + one interarrival gap (so independent generators don't phase-align
  /// at t0).  May be called once.
  void start(sim::SimTime t0, sim::SimTime t1);

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// Average offered rate over the active window so far, bits/s.
  double offered_rate() const;

  // --- chunked pull API (hybrid mode) ------------------------------------
  // Instead of self-scheduling one event per packet, the generator can be
  // pulled: begin_stream() fixes the active window, and fill() appends the
  // next arrivals as bulk (time, size) arrays.  The RNG draw order —
  // gap_1, size_1, gap_2, size_2, ... with `now` = the previous arrival
  // time — is exactly the order the self-scheduling path consumes, so for
  // the same seed both paths produce the identical packet sequence
  // (asserted by tests/fluid_test.cpp).  A generator is either pulled or
  // started, never both.

  /// Arms the pull cursor over [t0, t1).  May be called once.
  void begin_stream(sim::SimTime t0, sim::SimTime t1);

  /// Appends up to `max_arrivals` arrivals to `out` (not cleared).
  /// Returns the number appended; less than `max_arrivals` only when the
  /// active window is exhausted (stream_done() turns true).  Virtual so
  /// sources whose arrivals are already materialized (TraceGenerator) can
  /// bulk-copy instead of paying two virtual draws per packet; overrides
  /// must produce the identical arrival sequence and bookkeeping as the
  /// base loop (asserted by tests/fluid_test.cpp) using the protected
  /// pull-cursor helpers below.
  virtual std::size_t fill(ArrivalChunk& out, std::size_t max_arrivals);

  /// True once fill() has consumed the whole active window.
  bool stream_done() const { return pull_done_; }

 protected:
  /// Next interarrival gap; called once per packet.  `now` is the current
  /// simulated time (rate-modulated processes need it).
  virtual sim::SimTime next_gap(stats::Rng& rng, sim::SimTime now) = 0;

  /// Size of the next packet in bytes.
  virtual std::uint32_t next_size(stats::Rng& rng) = 0;

  /// True when next_gap() ignores its `now` argument (CBR, Poisson,
  /// Pareto-gap, Pareto-ON/OFF).  Such sources get their next
  /// kBatchDraws (size, gap) pairs pre-drawn per wakeup, amortizing two
  /// virtual calls per packet over a whole batch.  The draws happen in
  /// exactly the per-packet order (size_i, gap_{i+1}, size_{i+1}, ...),
  /// so the emitted packet stream is bit-identical to unbatched
  /// operation.  Rate-modulated processes (fGn) must keep the default
  /// `false`: their gap depends on the time it is drawn at.
  virtual bool gap_is_time_invariant() const { return false; }

  stats::Rng& rng() { return rng_; }

  // --- pull-cursor helpers for fill() overrides --------------------------

  /// True once begin_stream() armed the pull cursor.
  bool pull_armed() const { return pull_active_; }

  /// End of the active window [t0, t1).
  sim::SimTime pull_end() const { return t1_; }

  /// The previous arrival time (gap anchor), t0 before the first arrival.
  sim::SimTime pull_cursor() const { return pull_t_; }

  /// Records one pulled arrival: advances the cursor and the sent
  /// counters exactly as the base fill() loop does.
  void advance_pull(sim::SimTime t, std::uint32_t size_bytes) {
    pull_t_ = t;
    ++packets_sent_;
    bytes_sent_ += size_bytes;
  }

  /// Marks the active window exhausted (stream_done() turns true).
  void finish_pull() { pull_done_ = true; }

 private:
  /// Pre-drawn batch size for time-invariant arrival processes.
  static constexpr std::size_t kBatchDraws = 16;

  /// One pre-drawn arrival: the packet's size and the gap to the NEXT
  /// arrival (mirroring the per-emit draw order of the unbatched path).
  struct PendingDraw {
    sim::SimTime gap_after;
    std::uint32_t size;
  };

  void arm_next();
  void emit();
  void refill_pending();
  void schedule_emit(sim::SimTime when);

  sim::Simulator& sim_;
  sim::Path& path_;
  std::size_t entry_hop_;
  bool one_hop_;
  std::uint32_t flow_id_;
  stats::Rng rng_;

  sim::SimTime t0_ = 0, t1_ = 0;
  bool started_ = false;
  bool pull_active_ = false;
  bool pull_done_ = false;
  sim::SimTime pull_t_ = 0;  ///< previous arrival time (gap anchor)
  std::uint32_t seq_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;

  std::vector<PendingDraw> pending_;  // fixed kBatchDraws capacity ring
  std::size_t pending_head_ = 0;
};

}  // namespace abw::traffic
