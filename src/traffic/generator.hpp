// Base class for open-loop cross-traffic generators.
//
// A generator owns an arrival process (interarrival gaps + packet sizes)
// and self-schedules injections into one hop of a Path over an active
// window [t0, t1).  One-hop persistence (the Fig. 4 multi-bottleneck
// workload: traffic "enters the link i and exits at link i+1") is
// expressed by stamping each packet's exit_hop with the entry hop.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/packet.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace abw::traffic {

/// Abstract open-loop packet generator.
class Generator {
 public:
  /// `entry_hop` is the path hop the packets enter; if `one_hop` they exit
  /// right after that hop, otherwise they travel to the path receiver.
  Generator(sim::Simulator& sim, sim::Path& path, std::size_t entry_hop,
            bool one_hop, std::uint32_t flow_id, stats::Rng rng);
  virtual ~Generator() = default;

  Generator(const Generator&) = delete;
  Generator& operator=(const Generator&) = delete;

  /// Activates the generator during [t0, t1).  The first packet arrives at
  /// t0 + one interarrival gap (so independent generators don't phase-align
  /// at t0).  May be called once.
  void start(sim::SimTime t0, sim::SimTime t1);

  std::uint64_t packets_sent() const { return packets_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }

  /// Average offered rate over the active window so far, bits/s.
  double offered_rate() const;

 protected:
  /// Next interarrival gap; called once per packet.  `now` is the current
  /// simulated time (rate-modulated processes need it).
  virtual sim::SimTime next_gap(stats::Rng& rng, sim::SimTime now) = 0;

  /// Size of the next packet in bytes.
  virtual std::uint32_t next_size(stats::Rng& rng) = 0;

  /// True when next_gap() ignores its `now` argument (CBR, Poisson,
  /// Pareto-gap, Pareto-ON/OFF).  Such sources get their next
  /// kBatchDraws (size, gap) pairs pre-drawn per wakeup, amortizing two
  /// virtual calls per packet over a whole batch.  The draws happen in
  /// exactly the per-packet order (size_i, gap_{i+1}, size_{i+1}, ...),
  /// so the emitted packet stream is bit-identical to unbatched
  /// operation.  Rate-modulated processes (fGn) must keep the default
  /// `false`: their gap depends on the time it is drawn at.
  virtual bool gap_is_time_invariant() const { return false; }

  stats::Rng& rng() { return rng_; }

 private:
  /// Pre-drawn batch size for time-invariant arrival processes.
  static constexpr std::size_t kBatchDraws = 16;

  /// One pre-drawn arrival: the packet's size and the gap to the NEXT
  /// arrival (mirroring the per-emit draw order of the unbatched path).
  struct PendingDraw {
    sim::SimTime gap_after;
    std::uint32_t size;
  };

  void arm_next();
  void emit();
  void refill_pending();
  void schedule_emit(sim::SimTime when);

  sim::Simulator& sim_;
  sim::Path& path_;
  std::size_t entry_hop_;
  bool one_hop_;
  std::uint32_t flow_id_;
  stats::Rng rng_;

  sim::SimTime t0_ = 0, t1_ = 0;
  bool started_ = false;
  std::uint32_t seq_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;

  std::vector<PendingDraw> pending_;  // fixed kBatchDraws capacity ring
  std::size_t pending_head_ = 0;
};

}  // namespace abw::traffic
