// Pareto ON-OFF cross traffic — the paper's heavy-tailed workload
// (Fig. 3, footnote 3: "OFF shape parameter = 1.5, ON duration uniformly
// between 1-10 packets").  Aggregating many such sources yields
// asymptotically self-similar traffic (Taqqu's theorem), which is how the
// synthetic NLANR-substitute trace gets its long-range dependence.
#pragma once

#include "traffic/generator.hpp"
#include "traffic/packet_size.hpp"

namespace abw::traffic {

/// Configuration for one ON-OFF source.
struct ParetoOnOffConfig {
  double mean_rate_bps = 5e6;   ///< long-run average rate
  double peak_rate_bps = 20e6;  ///< rate during ON bursts (> mean)
  std::uint32_t packet_size = 1500;
  double off_shape = 1.5;       ///< Pareto alpha of OFF durations
  std::uint32_t on_min_packets = 1;   ///< ON burst length lower bound
  std::uint32_t on_max_packets = 10;  ///< ON burst length upper bound
};

/// ON: sends a uniform(1..10)-packet burst back-to-back at the peak rate.
/// OFF: silent for a Pareto(alpha=1.5) duration whose scale is chosen so
/// the long-run rate equals mean_rate_bps.
class ParetoOnOffGenerator final : public Generator {
 public:
  ParetoOnOffGenerator(sim::Simulator& sim, sim::Path& path, std::size_t entry_hop,
                       bool one_hop, std::uint32_t flow_id, stats::Rng rng,
                       const ParetoOnOffConfig& cfg);

  /// Scale parameter (minimum OFF duration, seconds) derived from cfg.
  double off_scale_seconds() const { return off_scale_seconds_; }

 protected:
  sim::SimTime next_gap(stats::Rng& rng, sim::SimTime now) override;
  std::uint32_t next_size(stats::Rng& rng) override;
  bool gap_is_time_invariant() const override { return true; }

 private:
  ParetoOnOffConfig cfg_;
  sim::SimTime peak_gap_;          // interarrival within a burst
  double off_scale_seconds_;
  std::uint32_t remaining_in_burst_ = 0;
};

}  // namespace abw::traffic
