// Trace replay: inject a recorded (timestamp, size) packet sequence into a
// path hop.  Lets any experiment swap a synthetic generator for a captured
// trace with no other changes — the paper's "reproducible and controllable
// conditions" desideratum (Section 4).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/packet.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"

namespace abw::traffic {

/// One packet of a replayable trace.
struct ReplayRecord {
  sim::SimTime at;          ///< injection time (absolute sim time)
  std::uint32_t size_bytes;
};

/// Schedules every record of a trace for injection at hop `entry_hop`.
/// Records must be sorted by time.
class TraceReplayer {
 public:
  TraceReplayer(sim::Simulator& sim, sim::Path& path, std::size_t entry_hop,
                bool one_hop, std::uint32_t flow_id);

  /// Schedules the entire trace (call before running the simulator past
  /// the first record).  Returns the number of packets scheduled.
  std::size_t schedule(const std::vector<ReplayRecord>& records);

  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  sim::Simulator& sim_;
  sim::Path& path_;
  std::size_t entry_hop_;
  bool one_hop_;
  std::uint32_t flow_id_;
  std::uint32_t seq_ = 0;
  std::uint64_t packets_sent_ = 0;
};

}  // namespace abw::traffic
