// Trace replay: inject a recorded (timestamp, size) packet sequence into a
// path hop.  Lets any experiment swap a synthetic generator for a captured
// trace with no other changes — the paper's "reproducible and controllable
// conditions" desideratum (Section 4).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/packet.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"

namespace abw::traffic {

/// One packet of a replayable trace.
struct ReplayRecord {
  sim::SimTime at;          ///< injection time (absolute sim time)
  std::uint32_t size_bytes;
};

/// Schedules every record of a trace for injection at hop `entry_hop`.
/// Records must be sorted by time.
class TraceReplayer {
 public:
  TraceReplayer(sim::Simulator& sim, sim::Path& path, std::size_t entry_hop,
                bool one_hop, std::uint32_t flow_id);

  /// Schedules the entire trace (call before running the simulator past
  /// the first record).  Returns the number of packets scheduled.
  std::size_t schedule(const std::vector<ReplayRecord>& records);

  std::uint64_t packets_sent() const { return packets_sent_; }

 private:
  sim::Simulator& sim_;
  sim::Path& path_;
  std::size_t entry_hop_;
  bool one_hop_;
  std::uint32_t flow_id_;
  std::uint32_t seq_ = 0;
  std::uint64_t packets_sent_ = 0;
};

/// The same trace served through the Generator interface instead of
/// pre-scheduled events, which is what makes a recorded workload usable
/// in BOTH simulation modes: started, it self-schedules packet events
/// like any generator; pulled through begin_stream()/fill(), it feeds a
/// hybrid-mode FluidQueue with zero per-arrival events and zero RNG.
/// Records must be nondecreasing in time and must not precede the
/// activation time t0 (a record before t0 is emitted at t0).
class TraceGenerator final : public Generator {
 public:
  /// The Rng is unused (a trace has no randomness) but keeps the
  /// constructor signature uniform with the synthetic generators.
  TraceGenerator(sim::Simulator& sim, sim::Path& path, std::size_t entry_hop,
                 bool one_hop, std::uint32_t flow_id,
                 std::vector<ReplayRecord> records);

  std::size_t trace_size() const { return records_.size(); }

  /// Bulk copy straight from the record array — the arrivals already
  /// exist, so the two virtual draws per packet of the base loop reduce
  /// to a bounds check and a push.  Produces the identical sequence and
  /// bookkeeping as the base implementation (tests/fluid_test.cpp).
  std::size_t fill(ArrivalChunk& out, std::size_t max_arrivals) override;

 protected:
  sim::SimTime next_gap(stats::Rng& rng, sim::SimTime now) override;
  std::uint32_t next_size(stats::Rng& rng) override;

 private:
  std::vector<ReplayRecord> records_;
  std::size_t cursor_ = 0;  ///< record the next next_gap/next_size serves
};

}  // namespace abw::traffic
