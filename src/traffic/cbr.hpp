// Constant-bit-rate (periodic) cross traffic — the paper's "CBR" workload
// in Fig. 3, the closest packet-level realization of the fluid model.
#pragma once

#include "traffic/generator.hpp"
#include "traffic/packet_size.hpp"

namespace abw::traffic {

/// Emits fixed-size packets with constant interarrival 8*L/rate.
class CbrGenerator final : public Generator {
 public:
  CbrGenerator(sim::Simulator& sim, sim::Path& path, std::size_t entry_hop,
               bool one_hop, std::uint32_t flow_id, stats::Rng rng,
               double rate_bps, std::uint32_t packet_size);

  /// The arrival sequence is an arithmetic progression and neither draw
  /// touches the Rng, so bulk generation skips both virtual calls per
  /// packet with nothing else to reproduce (tests/fluid_test.cpp asserts
  /// equivalence with the base loop).
  std::size_t fill(ArrivalChunk& out, std::size_t max_arrivals) override;

 protected:
  sim::SimTime next_gap(stats::Rng& rng, sim::SimTime now) override;
  std::uint32_t next_size(stats::Rng& rng) override;
  bool gap_is_time_invariant() const override { return true; }

 private:
  sim::SimTime gap_;
  std::uint32_t packet_size_;
};

}  // namespace abw::traffic
