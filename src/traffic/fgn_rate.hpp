// Rate-modulated traffic driven by fractional Gaussian noise.
//
// The alternative (and exactly-tunable) route to a self-similar workload:
// a target rate series R_w = mean + rel_std * mean * fGn_w(H) over windows
// of fixed length, realized as Poisson packet arrivals within each window.
// Used by the synthetic NLANR-substitute trace where we must dial in a
// specific Hurst parameter and coefficient of variation.
#pragma once

#include <vector>

#include "traffic/generator.hpp"

namespace abw::traffic {

/// Configuration for FgnRateGenerator.
struct FgnRateConfig {
  double mean_rate_bps = 70e6;  ///< long-run average rate
  double rel_std = 0.25;        ///< stddev of the window rate / mean
  double hurst = 0.8;           ///< Hurst parameter of the rate process
  sim::SimTime window = sim::kMillisecond;  ///< modulation window length
  std::uint32_t packet_size = 1500;
};

/// Emits Poisson arrivals whose intensity is re-drawn every `window` from
/// a precomputed fGn series (clamped at >= 1% of the mean so the rate
/// stays positive).  The fGn series is generated for the whole active
/// window at start().
class FgnRateGenerator final : public Generator {
 public:
  FgnRateGenerator(sim::Simulator& sim, sim::Path& path, std::size_t entry_hop,
                   bool one_hop, std::uint32_t flow_id, stats::Rng rng,
                   const FgnRateConfig& cfg);

 protected:
  sim::SimTime next_gap(stats::Rng& rng, sim::SimTime now) override;
  std::uint32_t next_size(stats::Rng& rng) override;

 private:
  double rate_at(sim::SimTime t);

  FgnRateConfig cfg_;
  std::vector<double> rates_;  // per-window target rates, lazily built
  sim::SimTime series_origin_ = -1;
  sim::SimTime window_end_ = -1;  // end of the cached modulation window
  double window_rate_ = 0.0;      // rate of the cached window
};

}  // namespace abw::traffic
