// An aggregate of independent ON-OFF sources.  By Taqqu's theorem the
// superposition of many Pareto ON-OFF sources with OFF shape alpha in
// (1, 2) converges to fractional Gaussian noise with H = (3 - alpha) / 2;
// for alpha = 1.5 that is H = 0.75.  This is the packet-level route to the
// self-similar avail-bw process the paper's trace experiments need.
#pragma once

#include <memory>
#include <vector>

#include "traffic/pareto_onoff.hpp"

namespace abw::traffic {

/// Owns `count` independent ParetoOnOff sources that jointly offer
/// `total_rate_bps` into one hop.
class AggregateOnOff {
 public:
  /// Each source gets total_rate/count mean rate and a forked RNG stream.
  /// `per_source` provides peak rate, packet size, and shape (its
  /// mean_rate_bps field is ignored and overwritten).
  AggregateOnOff(sim::Simulator& sim, sim::Path& path, std::size_t entry_hop,
                 bool one_hop, std::uint32_t first_flow_id, stats::Rng& rng,
                 double total_rate_bps, std::size_t count,
                 ParetoOnOffConfig per_source);

  /// Starts all sources over [t0, t1).
  void start(sim::SimTime t0, sim::SimTime t1);

  std::uint64_t packets_sent() const;
  std::uint64_t bytes_sent() const;
  std::size_t source_count() const { return sources_.size(); }

 private:
  std::vector<std::unique_ptr<ParetoOnOffGenerator>> sources_;
};

}  // namespace abw::traffic
