#include "traffic/poisson.hpp"

#include <stdexcept>

namespace abw::traffic {

PoissonGenerator::PoissonGenerator(sim::Simulator& sim, sim::Path& path,
                                   std::size_t entry_hop, bool one_hop,
                                   std::uint32_t flow_id, stats::Rng rng,
                                   double rate_bps, SizeDistribution sizes)
    : Generator(sim, path, entry_hop, one_hop, flow_id, std::move(rng)),
      sizes_(std::move(sizes)) {
  if (rate_bps <= 0.0) throw std::invalid_argument("PoissonGenerator: rate <= 0");
  mean_gap_seconds_ = sizes_.mean() * 8.0 / rate_bps;
}

sim::SimTime PoissonGenerator::next_gap(stats::Rng& rng, sim::SimTime) {
  return sim::from_seconds(rng.exponential(mean_gap_seconds_));
}

std::uint32_t PoissonGenerator::next_size(stats::Rng& rng) {
  return sizes_.sample(rng);
}

}  // namespace abw::traffic
