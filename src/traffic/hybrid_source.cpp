#include "traffic/hybrid_source.hpp"

#include <stdexcept>
#include <utility>

namespace abw::traffic {

HybridCrossSource::HybridCrossSource(sim::Simulator& sim, sim::Path& path,
                                     std::size_t entry_hop, bool one_hop,
                                     std::uint32_t flow_id,
                                     std::unique_ptr<Generator> gen)
    : sim_(sim),
      path_(path),
      entry_hop_(entry_hop),
      flow_id_(flow_id),
      exit_hop_(one_hop ? static_cast<std::uint32_t>(entry_hop)
                        : sim::kEndToEnd),
      gen_(std::move(gen)) {
  if (!gen_) throw std::invalid_argument("HybridCrossSource: null generator");
  if (entry_hop >= path.hop_count())
    throw std::invalid_argument("HybridCrossSource: entry_hop out of range");
}

void HybridCrossSource::start(sim::SimTime t0, sim::SimTime t1) {
  if (started_) throw std::logic_error("HybridCrossSource::start called twice");
  started_ = true;
  gen_->begin_stream(t0, t1);
  link_ = &path_.link(entry_hop_);
  fq_ = &link_->enable_fluid();
  fq_->set_identity(flow_id_, exit_hop_);
  fq_->reset(t0 > sim_.now() ? t0 : sim_.now());
  link_->set_fluid_interrupt([this] { on_interrupt(); });
  link_->set_fluid_active(true);
  path_.attach_hybrid(this);
  state_ = State::kFluid;
  chunk_.reserve(kChunk);
}

bool HybridCrossSource::refill() {
  chunk_.clear();
  cursor_ = 0;
  return gen_->fill(chunk_, kChunk) > 0;
}

void HybridCrossSource::pump(sim::SimTime t) {
  for (;;) {
    // Absorb the chunk prefix with arrival times <= t in one call.  A
    // whole-chunk prefix (every sync that covers the chunk, i.e. almost
    // always when pumping a long fluid stretch) is detected from the last
    // element instead of re-scanning times absorb() is about to read.
    std::size_t end = cursor_;
    if (cursor_ < chunk_.size() && chunk_.times[chunk_.size() - 1] <= t) {
      end = chunk_.size();
    } else {
      while (end < chunk_.size() && chunk_.times[end] <= t) ++end;
    }
    if (end > cursor_) {
      fq_->absorb(chunk_.times.data() + cursor_, chunk_.sizes.data() + cursor_,
                  end - cursor_, t);
      cursor_ = end;
    }
    if (cursor_ < chunk_.size() || gen_->stream_done()) break;
    if (!refill()) break;
  }
  fq_->advance(t);
}

void HybridCrossSource::sync(sim::SimTime t) {
  if (state_ != State::kFluid) return;  // the DES is authoritative
  if (t > sim_.now()) t = sim_.now();
  pump(t);
}

void HybridCrossSource::open_window(sim::SimTime start) {
  // window_end_ must stay untouched until the window actually begins:
  // sessions announce the next stream right after the previous one ends
  // (e.g. send_stream_now with a long lead-in), and wiping it eagerly
  // would block the PACKET -> FLUID resume for the whole idle gap — the
  // source would stay discrete for the rest of the run.
  sim::SimTime when = start > sim_.now() ? start : sim_.now();
  sim_.at(when, [this] {
    window_end_ = kNoEnd;  // window active until the matching close
    if (state_ == State::kFluid) enter_window();
    // else: still discrete from the last window or a safety interrupt.
  });
}

void HybridCrossSource::close_window() {
  if (window_end_ == kNoEnd) window_end_ = sim_.now();
  // The actual PACKET -> FLUID switch happens lazily in emit_discrete(),
  // at the first arrival that finds the link fully idle.
}

void HybridCrossSource::enter_window() {
  sim::SimTime now = sim_.now();
  pump(now);
  fq_->to_discrete(now);
  link_->set_fluid_active(false);
  state_ = State::kWindow;
  arm_inject();
}

void HybridCrossSource::arm_inject() {
  if (cursor_ == chunk_.size() && (gen_->stream_done() || !refill())) return;
  sim_.at(chunk_.times[cursor_], [this] { emit_discrete(); });
}

void HybridCrossSource::emit_discrete() {
  sim::SimTime now = sim_.now();
  if (window_end_ != kNoEnd && now > window_end_ && !link_->transmitting()) {
    // Window over and the link is idle: resume fluid operation with this
    // very arrival as the first fluid one.  The idle requirement means the
    // meter and stats are fully caught up, so the handover is seamless.
    fq_->reset(now);
    link_->set_fluid_active(true);
    state_ = State::kFluid;
    pump(now);
    return;
  }
  sim::Packet pkt;
  pkt.id = sim_.next_packet_id();
  pkt.type = sim::PacketType::kCross;
  pkt.size_bytes = chunk_.sizes[cursor_];
  pkt.flow_id = flow_id_;
  pkt.seq = seq_++;
  pkt.exit_hop = exit_hop_;
  pkt.send_time = now;
  ++cursor_;
  path_.inject(entry_hop_, pkt);
  arm_inject();
}

void HybridCrossSource::on_interrupt() {
  if (state_ != State::kFluid) return;
  // A discrete packet reached our link outside any announced window (e.g.
  // a stream sent without the session bracket).  Materialize the backlog
  // now and stay discrete for a short safety window.
  enter_window();
  window_end_ = sim_.now() + kSafetyWindow;
}

}  // namespace abw::traffic
