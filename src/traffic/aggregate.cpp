#include "traffic/aggregate.hpp"

#include <stdexcept>

namespace abw::traffic {

AggregateOnOff::AggregateOnOff(sim::Simulator& sim, sim::Path& path,
                               std::size_t entry_hop, bool one_hop,
                               std::uint32_t first_flow_id, stats::Rng& rng,
                               double total_rate_bps, std::size_t count,
                               ParetoOnOffConfig per_source) {
  if (count == 0) throw std::invalid_argument("AggregateOnOff: count == 0");
  per_source.mean_rate_bps = total_rate_bps / static_cast<double>(count);
  if (per_source.peak_rate_bps <= per_source.mean_rate_bps)
    throw std::invalid_argument(
        "AggregateOnOff: per-source peak must exceed per-source mean");
  sources_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    sources_.push_back(std::make_unique<ParetoOnOffGenerator>(
        sim, path, entry_hop, one_hop,
        first_flow_id + static_cast<std::uint32_t>(i), rng.fork(), per_source));
  }
}

void AggregateOnOff::start(sim::SimTime t0, sim::SimTime t1) {
  for (auto& s : sources_) s->start(t0, t1);
}

std::uint64_t AggregateOnOff::packets_sent() const {
  std::uint64_t n = 0;
  for (const auto& s : sources_) n += s->packets_sent();
  return n;
}

std::uint64_t AggregateOnOff::bytes_sent() const {
  std::uint64_t n = 0;
  for (const auto& s : sources_) n += s->bytes_sent();
  return n;
}

}  // namespace abw::traffic
