#include "traffic/pareto_onoff.hpp"

#include <stdexcept>

namespace abw::traffic {

ParetoOnOffGenerator::ParetoOnOffGenerator(sim::Simulator& sim, sim::Path& path,
                                           std::size_t entry_hop, bool one_hop,
                                           std::uint32_t flow_id, stats::Rng rng,
                                           const ParetoOnOffConfig& cfg)
    : Generator(sim, path, entry_hop, one_hop, flow_id, std::move(rng)), cfg_(cfg) {
  if (cfg.mean_rate_bps <= 0.0 || cfg.peak_rate_bps <= cfg.mean_rate_bps)
    throw std::invalid_argument("ParetoOnOff: need 0 < mean < peak rate");
  if (cfg.off_shape <= 1.0)
    throw std::invalid_argument("ParetoOnOff: off_shape must be > 1 (finite mean)");
  if (cfg.on_min_packets == 0 || cfg.on_max_packets < cfg.on_min_packets)
    throw std::invalid_argument("ParetoOnOff: bad ON burst bounds");

  peak_gap_ = sim::transmission_time(cfg.packet_size, cfg.peak_rate_bps);

  // Long-run rate = peak * E[on] / (E[on] + E[off])  =>
  //   E[off] = E[on] * (peak/mean - 1).
  double mean_on_packets =
      (static_cast<double>(cfg.on_min_packets) + cfg.on_max_packets) / 2.0;
  double mean_on_seconds = mean_on_packets * sim::to_seconds(peak_gap_);
  double mean_off_seconds =
      mean_on_seconds * (cfg.peak_rate_bps / cfg.mean_rate_bps - 1.0);
  // Pareto mean = alpha * xm / (alpha - 1)  =>  xm = mean*(alpha-1)/alpha.
  off_scale_seconds_ = mean_off_seconds * (cfg.off_shape - 1.0) / cfg.off_shape;
}

sim::SimTime ParetoOnOffGenerator::next_gap(stats::Rng& rng, sim::SimTime) {
  if (remaining_in_burst_ > 0) {
    --remaining_in_burst_;
    return peak_gap_;
  }
  // Draw a new burst; the gap before its first packet is an OFF period.
  remaining_in_burst_ = static_cast<std::uint32_t>(rng.uniform_int(
                            cfg_.on_min_packets, cfg_.on_max_packets)) - 1;
  double off = rng.pareto(cfg_.off_shape, off_scale_seconds_);
  return sim::from_seconds(off) + peak_gap_;
}

std::uint32_t ParetoOnOffGenerator::next_size(stats::Rng&) {
  return cfg_.packet_size;
}

}  // namespace abw::traffic
