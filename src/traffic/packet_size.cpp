#include "traffic/packet_size.hpp"

#include <algorithm>
#include <stdexcept>

namespace abw::traffic {

SizeDistribution SizeDistribution::fixed(std::uint32_t size) {
  if (size == 0) throw std::invalid_argument("SizeDistribution: zero size");
  return SizeDistribution({size}, {1.0}, static_cast<double>(size));
}

SizeDistribution SizeDistribution::modal(
    std::vector<std::pair<std::uint32_t, double>> modes) {
  if (modes.empty()) throw std::invalid_argument("SizeDistribution: no modes");
  double total = 0.0;
  for (const auto& [size, w] : modes) {
    if (size == 0 || w <= 0.0)
      throw std::invalid_argument("SizeDistribution: invalid mode");
    total += w;
  }
  std::vector<std::uint32_t> sizes;
  std::vector<double> cum;
  double acc = 0.0, mean = 0.0;
  for (const auto& [size, w] : modes) {
    acc += w / total;
    sizes.push_back(size);
    cum.push_back(acc);
    mean += static_cast<double>(size) * (w / total);
  }
  cum.back() = 1.0;  // guard against floating-point shortfall
  return SizeDistribution(std::move(sizes), std::move(cum), mean);
}

SizeDistribution SizeDistribution::internet_mix() {
  return modal({{40, 0.4}, {576, 0.2}, {1500, 0.4}});
}

std::uint32_t SizeDistribution::sample(stats::Rng& rng) const {
  double u = rng.uniform01();
  auto it = std::lower_bound(cum_.begin(), cum_.end(), u);
  auto idx = static_cast<std::size_t>(it - cum_.begin());
  if (idx >= sizes_.size()) idx = sizes_.size() - 1;
  return sizes_[idx];
}

}  // namespace abw::traffic
