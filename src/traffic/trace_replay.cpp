#include "traffic/trace_replay.hpp"

#include <stdexcept>

namespace abw::traffic {

TraceReplayer::TraceReplayer(sim::Simulator& sim, sim::Path& path,
                             std::size_t entry_hop, bool one_hop,
                             std::uint32_t flow_id)
    : sim_(sim), path_(path), entry_hop_(entry_hop), one_hop_(one_hop),
      flow_id_(flow_id) {
  if (entry_hop >= path.hop_count())
    throw std::invalid_argument("TraceReplayer: entry_hop out of range");
}

std::size_t TraceReplayer::schedule(const std::vector<ReplayRecord>& records) {
  sim::SimTime prev = -1;
  for (const auto& rec : records) {
    if (rec.at < prev) throw std::invalid_argument("TraceReplayer: unsorted trace");
    prev = rec.at;
    sim_.at(rec.at, [this, rec] {
      sim::Packet pkt;
      pkt.id = sim_.next_packet_id();
      pkt.type = sim::PacketType::kCross;
      pkt.size_bytes = rec.size_bytes;
      pkt.flow_id = flow_id_;
      pkt.seq = seq_++;
      pkt.exit_hop =
          one_hop_ ? static_cast<std::uint32_t>(entry_hop_) : sim::kEndToEnd;
      pkt.send_time = sim_.now();
      ++packets_sent_;
      path_.inject(entry_hop_, pkt);
    });
  }
  return records.size();
}

}  // namespace abw::traffic
