#include "traffic/trace_replay.hpp"

#include <limits>
#include <stdexcept>

namespace abw::traffic {

TraceReplayer::TraceReplayer(sim::Simulator& sim, sim::Path& path,
                             std::size_t entry_hop, bool one_hop,
                             std::uint32_t flow_id)
    : sim_(sim), path_(path), entry_hop_(entry_hop), one_hop_(one_hop),
      flow_id_(flow_id) {
  if (entry_hop >= path.hop_count())
    throw std::invalid_argument("TraceReplayer: entry_hop out of range");
}

std::size_t TraceReplayer::schedule(const std::vector<ReplayRecord>& records) {
  sim::SimTime prev = -1;
  for (const auto& rec : records) {
    if (rec.at < prev) throw std::invalid_argument("TraceReplayer: unsorted trace");
    prev = rec.at;
    sim_.at(rec.at, [this, rec] {
      sim::Packet pkt;
      pkt.id = sim_.next_packet_id();
      pkt.type = sim::PacketType::kCross;
      pkt.size_bytes = rec.size_bytes;
      pkt.flow_id = flow_id_;
      pkt.seq = seq_++;
      pkt.exit_hop =
          one_hop_ ? static_cast<std::uint32_t>(entry_hop_) : sim::kEndToEnd;
      pkt.send_time = sim_.now();
      ++packets_sent_;
      path_.inject(entry_hop_, pkt);
    });
  }
  return records.size();
}

namespace {
// Gap returned once the trace is exhausted: far enough past any horizon
// to end the active window, small enough that now + gap cannot overflow
// SimTime (now is bounded by experiment horizons, ~1e12 ns).
constexpr sim::SimTime kPastHorizon =
    std::numeric_limits<sim::SimTime>::max() / 4;
}  // namespace

TraceGenerator::TraceGenerator(sim::Simulator& sim, sim::Path& path,
                               std::size_t entry_hop, bool one_hop,
                               std::uint32_t flow_id,
                               std::vector<ReplayRecord> records)
    : Generator(sim, path, entry_hop, one_hop, flow_id, stats::Rng(0)),
      records_(std::move(records)) {
  for (std::size_t i = 1; i < records_.size(); ++i)
    if (records_[i].at < records_[i - 1].at)
      throw std::invalid_argument("TraceGenerator: unsorted trace");
}

sim::SimTime TraceGenerator::next_gap(stats::Rng&, sim::SimTime now) {
  if (cursor_ == records_.size()) return kPastHorizon;
  // `now` is the previous arrival time in both consumption paths, so the
  // gap reconstructs the record's absolute timestamp exactly.  A record
  // at or before `now` (only possible for records preceding t0) keeps
  // time monotone by collapsing the gap to zero.
  sim::SimTime gap = records_[cursor_].at - now;
  return gap > 0 ? gap : 0;
}

std::uint32_t TraceGenerator::next_size(stats::Rng&) {
  return records_[cursor_++].size_bytes;
}

std::size_t TraceGenerator::fill(ArrivalChunk& out, std::size_t max_arrivals) {
  if (!pull_armed())
    throw std::logic_error("Generator::fill before begin_stream");
  const sim::SimTime t1 = pull_end();
  sim::SimTime prev = pull_cursor();
  std::size_t n = 0;
  while (n < max_arrivals) {
    if (cursor_ == records_.size()) {
      finish_pull();  // base loop: exhausted gap lands past t1
      break;
    }
    const ReplayRecord& rec = records_[cursor_];
    // max(prev, at): the base path's clamped gap, reconstructing the
    // record time except for pre-t0 records, which emit at t0.
    const sim::SimTime t = rec.at > prev ? rec.at : prev;
    if (t >= t1) {
      finish_pull();
      break;
    }
    out.push_back(t, rec.size_bytes);
    advance_pull(t, rec.size_bytes);
    prev = t;
    ++cursor_;
    ++n;
  }
  return n;
}

}  // namespace abw::traffic
