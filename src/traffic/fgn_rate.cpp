#include "traffic/fgn_rate.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/fgn.hpp"

namespace abw::traffic {

namespace {
// Length of the precomputed rate series; at the default 1 ms window this
// covers ~131 s before the modulation cycles, far beyond any experiment.
constexpr std::size_t kSeriesLength = 1 << 17;
}  // namespace

FgnRateGenerator::FgnRateGenerator(sim::Simulator& sim, sim::Path& path,
                                   std::size_t entry_hop, bool one_hop,
                                   std::uint32_t flow_id, stats::Rng rng,
                                   const FgnRateConfig& cfg)
    : Generator(sim, path, entry_hop, one_hop, flow_id, std::move(rng)), cfg_(cfg) {
  if (cfg.mean_rate_bps <= 0.0 || cfg.rel_std < 0.0 || cfg.window <= 0)
    throw std::invalid_argument("FgnRateGenerator: bad config");
  if (cfg.hurst <= 0.0 || cfg.hurst >= 1.0)
    throw std::invalid_argument("FgnRateGenerator: hurst must be in (0,1)");
}

double FgnRateGenerator::rate_at(sim::SimTime t) {
  // Arrival times are queried in nondecreasing order, so the common case
  // is "same modulation window as last time" — answered from the cached
  // rate without the 64-bit division (a division per arrival is the
  // single most expensive instruction in this generator's hot path).
  if (t < window_end_ && series_origin_ >= 0) return window_rate_;
  if (series_origin_ < 0) {
    // Lazily synthesize on first use (needs the generator's own RNG).
    series_origin_ = t;
    std::vector<double> noise = stats::generate_fgn(kSeriesLength, cfg_.hurst, rng());
    rates_.resize(kSeriesLength);
    for (std::size_t i = 0; i < kSeriesLength; ++i) {
      double r = cfg_.mean_rate_bps * (1.0 + cfg_.rel_std * noise[i]);
      // Clamp so the intensity stays strictly positive even deep in the
      // Gaussian tail.
      rates_[i] = std::max(r, 0.01 * cfg_.mean_rate_bps);
    }
  }
  auto idx = static_cast<std::size_t>((t - series_origin_) / cfg_.window);
  window_end_ = series_origin_ + static_cast<sim::SimTime>(idx + 1) * cfg_.window;
  window_rate_ = rates_[idx % kSeriesLength];
  return window_rate_;
}

sim::SimTime FgnRateGenerator::next_gap(stats::Rng& rng, sim::SimTime now) {
  // Exponential gap at the intensity of the current window: a Poisson
  // process modulated by the fGn rate series (doubly stochastic).  Windows
  // are long relative to a packet time, so the realized per-window byte
  // count tracks the target rate closely.
  double r = rate_at(now);
  return sim::from_seconds(rng.exponential(cfg_.packet_size * 8.0 / r));
}

std::uint32_t FgnRateGenerator::next_size(stats::Rng&) { return cfg_.packet_size; }

}  // namespace abw::traffic
