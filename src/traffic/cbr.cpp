#include "traffic/cbr.hpp"

#include <stdexcept>

namespace abw::traffic {

CbrGenerator::CbrGenerator(sim::Simulator& sim, sim::Path& path,
                           std::size_t entry_hop, bool one_hop,
                           std::uint32_t flow_id, stats::Rng rng, double rate_bps,
                           std::uint32_t packet_size)
    : Generator(sim, path, entry_hop, one_hop, flow_id, std::move(rng)),
      packet_size_(packet_size) {
  if (rate_bps <= 0.0 || packet_size == 0)
    throw std::invalid_argument("CbrGenerator: rate and size must be > 0");
  gap_ = sim::transmission_time(packet_size, rate_bps);
}

sim::SimTime CbrGenerator::next_gap(stats::Rng&, sim::SimTime) { return gap_; }

std::uint32_t CbrGenerator::next_size(stats::Rng&) { return packet_size_; }

std::size_t CbrGenerator::fill(ArrivalChunk& out, std::size_t max_arrivals) {
  if (!pull_armed())
    throw std::logic_error("Generator::fill before begin_stream");
  const sim::SimTime t1 = pull_end();
  sim::SimTime t = pull_cursor();
  std::size_t n = 0;
  while (n < max_arrivals) {
    t += gap_;
    if (t >= t1) {
      finish_pull();
      break;
    }
    out.push_back(t, packet_size_);
    advance_pull(t, packet_size_);
    ++n;
  }
  return n;
}

}  // namespace abw::traffic
