#include "traffic/cbr.hpp"

#include <stdexcept>

namespace abw::traffic {

CbrGenerator::CbrGenerator(sim::Simulator& sim, sim::Path& path,
                           std::size_t entry_hop, bool one_hop,
                           std::uint32_t flow_id, stats::Rng rng, double rate_bps,
                           std::uint32_t packet_size)
    : Generator(sim, path, entry_hop, one_hop, flow_id, std::move(rng)),
      packet_size_(packet_size) {
  if (rate_bps <= 0.0 || packet_size == 0)
    throw std::invalid_argument("CbrGenerator: rate and size must be > 0");
  gap_ = sim::transmission_time(packet_size, rate_bps);
}

sim::SimTime CbrGenerator::next_gap(stats::Rng&, sim::SimTime) { return gap_; }

std::uint32_t CbrGenerator::next_size(stats::Rng&) { return packet_size_; }

}  // namespace abw::traffic
