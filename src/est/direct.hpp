// Direct probing (Delphi-style): each periodic stream of known input rate
// Ri yields one avail-bw sample via the paper's Eq. 9:
//
//   A = Ct - Ri * (Ct / Ro - 1)
//
// valid when Ri > A (the stream must momentarily congest the tight link).
// Requires the tight-link capacity Ct — the paper's "estimate Ct with a
// capacity tool" pitfall applies to exactly this parameter.
#pragma once

#include <cstdint>
#include <optional>

#include "est/estimator.hpp"
#include "probe/stream_spec.hpp"

namespace abw::est {

/// Parameters of the direct prober.
struct DirectConfig {
  double tight_capacity_bps = 0.0;  ///< Ct, must be supplied (> 0)
  double input_rate_bps = 0.0;      ///< Ri; 0 = use 0.8 * Ct
  std::uint32_t packet_size = 1500;
  sim::SimTime stream_duration = 50 * sim::kMillisecond;  ///< averaging knob
  std::size_t stream_count = 20;    ///< samples per estimate
  sim::SimTime inter_stream_gap = 50 * sim::kMillisecond;
  /// Delphi-style rate adaptation: after each sample, the next stream's
  /// input rate is re-aimed at the midpoint between the latest avail-bw
  /// sample and Ct (Eq. 9 needs Ri > A, but probing far above A is
  /// needlessly intrusive); unusable streams push the rate upward.  With
  /// adaptation the initial rate only seeds the search.
  bool adaptive = false;
};

/// Canonical direct prober.
class DirectProber final : public Estimator {
 public:
  explicit DirectProber(const DirectConfig& cfg);

  std::string_view name() const override { return "direct"; }
  ProbingClass probing_class() const override { return ProbingClass::kDirect; }

  /// Sends ONE stream and returns the single avail-bw sample (Eq. 9), or
  /// nullopt if the stream was unusable (loss, Ro >= Ri so the equation
  /// degenerates).  Exposed because Fig. 2 and Table 1 analyze per-sample
  /// statistics directly.
  std::optional<double> sample(probe::Transport& transport);

  /// The stream spec this config sends (for tests).
  probe::StreamSpec stream_spec() const;

  /// The input rate the next stream will use (changes under adaptation).
  double current_rate_bps() const { return cfg_.input_rate_bps; }

 protected:
  Estimate do_estimate(probe::Transport& transport) override;

 private:
  DirectConfig cfg_;
};

/// One-shot helper: applies Eq. 9 to measured rates.
/// Returns nullopt when ro >= ri (link never congested => no sample).
std::optional<double> direct_probe_equation(double ct_bps, double ri_bps,
                                            double ro_bps);

}  // namespace abw::est
