#include "est/pathchirp.hpp"

#include <algorithm>
#include <stdexcept>

#include "probe/stream_spec.hpp"
#include "stats/moments.hpp"

namespace abw::est {

PathChirp::PathChirp(const PathChirpConfig& cfg) : cfg_(cfg) {
  if (cfg.low_rate_bps <= 0.0 || cfg.spread_factor <= 1.0)
    throw std::invalid_argument("PathChirp: bad rate geometry");
  if (cfg.packets_per_chirp < 4 || cfg.chirps == 0)
    throw std::invalid_argument("PathChirp: bad chirp geometry");
}

double PathChirp::analyze_chirp(const std::vector<double>& owds,
                                const std::vector<double>& rates,
                                const std::vector<double>& gaps) const {
  // owds: one per packet (N); rates/gaps: one per gap (N-1), where
  // rates[k] is the instantaneous rate probed by the gap *before* packet
  // k+1, i.e. between packets k and k+1.
  std::size_t n = owds.size();
  if (n < 4 || rates.size() != n - 1 || gaps.size() != n - 1) return 0.0;

  // Queueing-delay signature relative to the chirp's minimum OWD.
  double base = *std::min_element(owds.begin(), owds.end());
  std::vector<double> q(n);
  double qmax = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    q[i] = owds[i] - base;
    qmax = std::max(qmax, q[i]);
  }
  if (qmax <= 0.0) {
    // No queueing anywhere: avail-bw is at least the top probed rate.
    return rates.back();
  }
  double thresh = cfg_.busy_threshold_fraction * qmax;

  // First pass: find the congestion onset — the start of a final
  // excursion that never returns to ~zero (rule b).  When it exists, the
  // avail-bw was crossed at the onset gap's rate; gaps with no queueing
  // then carry no *additional* information (they only bound A from below
  // at a lower rate), so they default to the onset rate rather than the
  // chirp's top rate.  This deviates from the original paper's
  // R_{N-1} default deliberately: with exponentially shrinking gaps the
  // early (long, low-rate) gaps dominate the weighted average, and the
  // original default would pull every estimate toward the top rate (see
  // DESIGN.md).  Without an unterminated excursion the chirp never
  // congested the path and the top rate is the correct default (rule c).
  double base_rate = rates.back();
  {
    std::size_t j = n;
    while (j > 0 && q[j - 1] > thresh) --j;
    if (j < n) {  // q stayed above threshold from packet j to the end
      std::size_t start = j == 0 ? 0 : j - 1;
      // Undo the crossing delay a causal smoothing filter introduces.
      start = start > cfg_.onset_backoff_packets
                  ? start - cfg_.onset_backoff_packets
                  : 0;
      base_rate = rates[std::min(start, rates.size() - 1)];
    }
  }

  std::vector<double> estimate(n - 1, base_rate);

  // Second pass over terminated excursions: rising-phase packets inside a
  // qualifying excursion get their own instantaneous rate (rule a).
  std::size_t i = 0;
  while (i < n) {
    if (q[i] <= thresh) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < n && q[j] > thresh) ++j;
    bool terminated = j < n;
    if (terminated && j - i >= cfg_.min_excursion_len) {
      for (std::size_t k = i; k + 1 < j; ++k) {
        if (q[k + 1] > q[k] && k < estimate.size())
          estimate[k] = std::min(rates[k], base_rate);
      }
    }
    i = j;
  }

  // Interarrival-weighted average.
  double num = 0.0, den = 0.0;
  for (std::size_t k = 0; k < estimate.size(); ++k) {
    num += estimate[k] * gaps[k];
    den += gaps[k];
  }
  return den > 0.0 ? num / den : 0.0;
}

Estimate PathChirp::do_estimate(probe::Transport& transport) {
  chirp_estimates_.clear();

  probe::StreamSpec spec = probe::StreamSpec::chirp(
      cfg_.low_rate_bps, cfg_.spread_factor, cfg_.packet_size,
      cfg_.packets_per_chirp);

  std::vector<double> rates, gaps;
  for (std::size_t k = 1; k < spec.packets.size(); ++k) {
    rates.push_back(spec.instantaneous_rate(k));
    gaps.push_back(
        sim::to_seconds(spec.packets[k].offset - spec.packets[k - 1].offset));
  }

  LimitGuard guard(limits_, transport);
  for (std::size_t c = 0; c < cfg_.chirps; ++c) {
    if (AbortReason r = guard.exceeded(); r != AbortReason::kNone) {
      Estimate e = abort_estimate(r, name());
      e.cost = transport.cost();
      return e;
    }
    probe::StreamResult res = transport.send_stream(spec, cfg_.inter_chirp_gap);
    if (!res.complete()) {
      decision(transport, "chirp", "discarded", c, 0.0);
      continue;  // chirps with loss are discarded
    }
    double e = analyze_chirp(res.owds_seconds(), rates, gaps);
    decision(transport, "chirp", e > 0.0 ? "usable" : "unusable", c, e);
    if (e > 0.0) chirp_estimates_.push_back(e);
  }

  if (chirp_estimates_.empty()) {
    Estimate e = Estimate::aborted(AbortReason::kInsufficientData,
                                   "pathchirp: no usable chirps");
    e.diag("chirps_used", 0.0);
    e.diag("chirps_sent", static_cast<double>(cfg_.chirps));
    e.cost = transport.cost();
    return e;
  }
  Estimate e = Estimate::point(stats::mean(chirp_estimates_));
  e.cost = transport.cost();
  e.detail = "chirps=" + std::to_string(chirp_estimates_.size());
  e.diag("chirps_used", static_cast<double>(chirp_estimates_.size()));
  e.diag("chirps_sent", static_cast<double>(cfg_.chirps));
  return e;
}

}  // namespace abw::est
