// Pathload (Jain & Dovrolis 2002/2003): iterative probing with a binary
// rate search and statistical OWD-trend detection.
//
// Distinctive features reproduced here, all discussed in the paper:
//  * fleets of N streams per rate, with an idle gap between streams so
//    queues drain (one stream samples "is Ri > A_tau(t)" at one instant;
//    the fleet samples it N times);
//  * the PCT/PDT trend statistics on the OWD series, NOT the single
//    number Ro/Ri (the "increasing OWDs is equivalent to Ro < Ri"
//    fallacy);
//  * a *variation range* (R_L, R_H) as output rather than a point — the
//    range the avail-bw process visits at the stream-duration time scale
//    (and NOT a confidence interval, as the paper stresses);
//  * grey-region handling: rates where a fleet is neither decisively
//    increasing nor decisively non-increasing widen the reported range.
#pragma once

#include "est/estimator.hpp"
#include "stats/trend.hpp"

namespace abw::est {

/// Parameters of Pathload.
struct PathloadConfig {
  double min_rate_bps = 1e6;    ///< initial bracket low edge
  double max_rate_bps = 200e6;  ///< initial bracket high edge
  std::uint32_t packet_size = 1000;
  std::size_t packets_per_stream = 100;
  std::size_t streams_per_fleet = 12;
  sim::SimTime inter_stream_gap = 20 * sim::kMillisecond;
  double resolution_bps = 2e6;  ///< omega: bracket width to stop at
  double fleet_decisive_fraction = 0.7;  ///< fraction of streams to call a fleet
  std::size_t max_fleets = 24;
  stats::TrendConfig trend;
};

/// Verdict of one fleet (exposed for tests and diagnostics).
enum class FleetVerdict { kAboveAvailBw, kBelowAvailBw, kGrey };

/// The Pathload estimator.
class Pathload final : public Estimator {
 public:
  Pathload(const PathloadConfig& cfg);

  std::string_view name() const override { return "pathload"; }
  ProbingClass probing_class() const override { return ProbingClass::kIterative; }

  /// Runs one fleet at `rate_bps` and classifies it.  Exposed for the
  /// ablation bench comparing trend tests against Ro/Ri thresholds.
  FleetVerdict probe_fleet(probe::Transport& transport, double rate_bps);

  /// Number of fleets the last estimate() used.
  std::size_t fleets_used() const { return fleets_used_; }

 protected:
  Estimate do_estimate(probe::Transport& transport) override;

 private:
  PathloadConfig cfg_;
  std::size_t fleets_used_ = 0;
  // Limit bookkeeping for the estimate() in progress: probe_fleet checks
  // the guard between streams so a budget/deadline trips mid-fleet, not
  // only at fleet boundaries.  Null when probe_fleet is called directly
  // (the ablation bench) — then behavior is unchanged.
  const LimitGuard* guard_ = nullptr;
  AbortReason abort_ = AbortReason::kNone;
};

}  // namespace abw::est
