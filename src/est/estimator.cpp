#include "est/estimator.hpp"

#include <cmath>
#include <cstdio>

namespace abw::est {

std::string_view abort_reason_name(AbortReason r) {
  switch (r) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kProbeBudgetExhausted:
      return "probe-budget";
    case AbortReason::kDeadline:
      return "deadline";
    case AbortReason::kInsufficientData:
      return "insufficient-data";
  }
  return "unknown";
}

Estimate Estimator::abort_estimate(AbortReason reason, std::string_view tool) {
  std::string why(tool);
  why += ": aborted (";
  why += abort_reason_name(reason);
  why += " limit exceeded before convergence)";
  return Estimate::aborted(reason, std::move(why));
}

namespace {

// Diagnostics values are usually counts; print those without a decimal
// point so synthesized detail strings read like the historical ones
// ("pairs=100", not "pairs=100.000000").
void append_number(std::string& out, double v) {
  char buf[40];
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.15g", v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back != v) std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out += c;
  }
  out += '"';
}

}  // namespace

double Estimate::diag_value(std::string_view key) const {
  for (const Diag& d : diagnostics)
    if (d.key == key) return d.value;
  return std::numeric_limits<double>::quiet_NaN();
}

std::string Estimate::to_json() const {
  std::string out = "{\"valid\":";
  out += valid ? "true" : "false";
  out += ",\"low_bps\":";
  append_number(out, low_bps);
  out += ",\"high_bps\":";
  append_number(out, high_bps);
  out += ",\"abort\":";
  append_escaped(out, abort_reason_name(abort));
  out += ",\"detail\":";
  append_escaped(out, detail);
  out += ",\"cost\":{\"streams\":";
  append_number(out, static_cast<double>(cost.streams));
  out += ",\"packets\":";
  append_number(out, static_cast<double>(cost.packets));
  out += ",\"bytes\":";
  append_number(out, static_cast<double>(cost.bytes));
  out += ",\"elapsed_s\":";
  append_number(out, sim::to_seconds(cost.elapsed()));
  out += "},\"diagnostics\":{";
  bool first = true;
  for (const Diag& d : diagnostics) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, d.key);
    out += ':';
    // NaN is not valid JSON; diagnostics carrying "no value" serialize
    // as null so downstream parsers keep working.
    if (std::isfinite(d.value)) {
      append_number(out, d.value);
    } else {
      out += "null";
    }
  }
  out += "}}";
  return out;
}

Estimate Estimator::estimate(probe::Transport& transport) {
  Estimate e;
  {
    std::string timer_key;
    if (metrics_) {
      timer_key.reserve(32);
      timer_key = "est.";
      timer_key += name();
      timer_key += ".seconds";
    }
    obs::ScopedTimer timer(metrics_, timer_key);
    e = do_estimate(transport);
  }

  // Synthesize the human-readable detail from the structured diagnostics
  // when the tool did not set one ("key=value key=value ...").
  if (e.detail.empty() && !e.diagnostics.empty()) {
    for (const Diag& d : e.diagnostics) {
      if (!e.detail.empty()) e.detail += ' ';
      e.detail += d.key;
      e.detail += '=';
      append_number(e.detail, d.value);
    }
  }

  if (metrics_) {
    std::string prefix = "est.";
    prefix += name();
    metrics_->counter(prefix + ".runs").add();
    if (e.valid) metrics_->counter(prefix + ".valid").add();
    if (e.abort != AbortReason::kNone) {
      std::string key = prefix + ".abort.";
      key += abort_reason_name(e.abort);
      metrics_->counter(key).add();
    }
    for (const Diag& d : e.diagnostics)
      if (std::isfinite(d.value))
        metrics_->gauge(prefix + ".diag." + d.key).set(d.value);
    if (e.valid)
      metrics_->histogram(prefix + ".point_mbps", 0.0, 200.0, 40)
          .add(e.point_bps() / 1e6);
  }

  if (trace_) {
    obs::TraceEvent ev;
    ev.kind = obs::EventKind::kDecision;
    ev.time = transport.now();
    ev.source = name();
    ev.label = "estimate";
    ev.text = e.valid ? "valid" : abort_reason_name(e.abort);
    ev.count = e.cost.streams;
    ev.value = e.low_bps;
    ev.value2 = e.high_bps;
    trace_->emit(ev);
  }
  return e;
}

void Estimator::decision(probe::Transport& transport, std::string_view what,
                         std::string_view outcome, std::uint64_t iter,
                         double value, double aux) {
  if (!trace_) return;
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kDecision;
  ev.time = transport.now();
  ev.source = name();
  ev.label = what;
  ev.text = outcome;
  ev.count = iter;
  ev.value = value;
  ev.value2 = aux;
  trace_->emit(ev);
}

}  // namespace abw::est
