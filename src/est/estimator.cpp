#include "est/estimator.hpp"

namespace abw::est {

std::string_view abort_reason_name(AbortReason r) {
  switch (r) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kProbeBudgetExhausted:
      return "probe-budget";
    case AbortReason::kDeadline:
      return "deadline";
    case AbortReason::kInsufficientData:
      return "insufficient-data";
  }
  return "unknown";
}

Estimate Estimator::abort_estimate(AbortReason reason, std::string_view tool) {
  std::string why(tool);
  why += ": aborted (";
  why += abort_reason_name(reason);
  why += " limit exceeded before convergence)";
  return Estimate::aborted(reason, std::move(why));
}

}  // namespace abw::est
