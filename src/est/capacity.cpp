#include "est/capacity.hpp"

#include <algorithm>
#include <stdexcept>

#include "probe/stream_spec.hpp"
#include "stats/histogram.hpp"

namespace abw::est {

CapacityEstimator::CapacityEstimator(const CapacityConfig& cfg, stats::Rng rng)
    : cfg_(cfg), rng_(std::move(rng)) {
  if (cfg.pair_count == 0 || cfg.packet_size == 0 || cfg.histogram_bins == 0)
    throw std::invalid_argument("CapacityEstimator: bad parameters");
}

double CapacityEstimator::estimate_capacity(probe::Transport& transport) {
  samples_.clear();

  probe::StreamSpec spec = probe::StreamSpec::pair_train(
      cfg_.launch_rate_bps, cfg_.packet_size, cfg_.pair_count, cfg_.mean_pair_gap,
      rng_);
  probe::StreamResult res = transport.send_stream(spec);

  for (std::size_t p = 0; p + 1 < res.packets.size(); p += 2) {
    const auto& a = res.packets[p];
    const auto& b = res.packets[p + 1];
    if (a.lost || b.lost) continue;
    double disp = sim::to_seconds(b.received - a.received);
    if (disp <= 0.0) continue;
    samples_.push_back(static_cast<double>(cfg_.packet_size) * 8.0 / disp);
  }
  if (samples_.empty()) return 0.0;

  // Mode of the per-pair estimates: cross traffic *inflates* dispersion
  // (underestimates), so the dominant mode at the high end is the
  // capacity.  Histogram over [0, max sample].
  double hi = *std::max_element(samples_.begin(), samples_.end()) * 1.001;
  stats::Histogram hist(0.0, hi, cfg_.histogram_bins);
  for (double s : samples_) hist.add(s);
  std::size_t best = 0;
  for (std::size_t b = 1; b < hist.bins(); ++b)
    if (hist.bin_count(b) > hist.bin_count(best)) best = b;
  return hist.bin_center(best);
}

}  // namespace abw::est
