// TOPP — Trains of Packet Pairs (Melander, Bjorkman & Gunningberg, 2000/
// 2002): the canonical iterative prober.  Packet pairs are offered at
// linearly increasing rates Ri; for each rate the average ratio Ri/Ro is
// measured.  Under the single-link fluid model,
//
//   Ri/Ro = 1                      for Ri <= A
//   Ri/Ro = (Rc + Ri) / Ct         for Ri >  A
//
// so the points above the turning point lie on a line with slope 1/Ct and
// intercept Rc/Ct.  TOPP regresses that segment to estimate BOTH the
// tight-link capacity Ct and the avail-bw A = Ct - Rc.
#pragma once

#include "est/estimator.hpp"

namespace abw::est {

/// Parameters of TOPP.
struct ToppConfig {
  double min_rate_bps = 1e6;
  double max_rate_bps = 100e6;
  double rate_step_bps = 2e6;       ///< linear sweep increment
  std::uint32_t packet_size = 1500;
  /// Pairs averaged per offered rate.  Individual pair ratios are highly
  /// multimodal (0, 1, or 2 cross packets land inside a gap), so the mean
  /// needs a few dozen pairs to stabilize — the paper's packet-pair
  /// fallacy applies to TOPP's own samples.
  std::size_t pairs_per_rate = 50;
  sim::SimTime mean_pair_gap = 5 * sim::kMillisecond;
  /// Ri/Ro above this counts as "> A".  Packet-level interactions inflate
  /// pair dispersion by a few percent even below the avail-bw (the
  /// paper's burstiness pitfall), so the turning threshold must sit above
  /// that noise floor.
  double turning_threshold = 1.10;
};

/// Per-rate measurement (exposed for tests and the tool-comparison bench).
struct ToppPoint {
  double offered_rate_bps;
  double mean_ratio;  ///< average Ri/Ro over the pairs at this rate
};

/// The TOPP estimator.
class Topp final : public Estimator {
 public:
  Topp(const ToppConfig& cfg, stats::Rng rng);

  std::string_view name() const override { return "topp"; }
  ProbingClass probing_class() const override { return ProbingClass::kIterative; }

  /// The Ri/Ro curve from the last run (Fig. 3/4 of the paper plot
  /// exactly this curve's reciprocal).
  const std::vector<ToppPoint>& last_curve() const { return curve_; }

  /// Estimated tight-link capacity from the regression (0 if the last run
  /// had no usable above-turning-point segment).
  double estimated_capacity_bps() const { return est_capacity_; }

 protected:
  Estimate do_estimate(probe::Transport& transport) override;

 private:
  ToppConfig cfg_;
  stats::Rng rng_;
  std::vector<ToppPoint> curve_;
  double est_capacity_ = 0.0;
};

}  // namespace abw::est
