#include "est/topp.hpp"

#include <limits>
#include <stdexcept>

#include "probe/stream_spec.hpp"
#include "stats/moments.hpp"
#include "stats/regression.hpp"

namespace abw::est {

Topp::Topp(const ToppConfig& cfg, stats::Rng rng) : cfg_(cfg), rng_(std::move(rng)) {
  if (cfg.min_rate_bps <= 0.0 || cfg.max_rate_bps <= cfg.min_rate_bps ||
      cfg.rate_step_bps <= 0.0)
    throw std::invalid_argument("Topp: bad rate sweep");
  if (cfg.packet_size == 0 || cfg.pairs_per_rate == 0)
    throw std::invalid_argument("Topp: bad stream parameters");
}

Estimate Topp::do_estimate(probe::Transport& transport) {
  curve_.clear();
  est_capacity_ = 0.0;

  LimitGuard guard(limits_, transport);
  for (double rate = cfg_.min_rate_bps; rate <= cfg_.max_rate_bps;
       rate += cfg_.rate_step_bps) {
    if (AbortReason r = guard.exceeded(); r != AbortReason::kNone) {
      Estimate e = abort_estimate(r, name());
      e.cost = transport.cost();
      return e;
    }
    probe::StreamSpec spec = probe::StreamSpec::pair_train(
        rate, cfg_.packet_size, cfg_.pairs_per_rate, cfg_.mean_pair_gap, rng_);
    probe::StreamResult res = transport.send_stream(spec);

    // Average per-pair Ri/Ro: for a pair, Ri = 8L/g_in and Ro = 8L/g_out,
    // so Ri/Ro = g_out / g_in.
    double gin = sim::to_seconds(sim::transmission_time(cfg_.packet_size, rate));
    stats::RunningStats ratio;
    for (std::size_t p = 0; p + 1 < res.packets.size(); p += 2) {
      const auto& a = res.packets[p];
      const auto& b = res.packets[p + 1];
      if (a.lost || b.lost) continue;
      double gout = sim::to_seconds(b.received - a.received);
      ratio.add(gout / gin);
    }
    if (ratio.count() == 0) continue;
    decision(transport, "rate-point", "measured", curve_.size(), rate,
             ratio.mean());
    curve_.push_back({rate, ratio.mean()});
  }

  if (curve_.size() < 6) {
    Estimate e = Estimate::aborted(AbortReason::kInsufficientData,
                                   "topp: sweep produced too little data");
    e.diag("rates_measured", static_cast<double>(curve_.size()));
    e.cost = transport.cost();
    return e;
  }

  // Segmented (two-piece) regression, as in Melander et al.: below the
  // turning point Ri/Ro is flat (~1 plus a packet-granularity floor);
  // above it, Ri/Ro = (Rc + Ri)/Ct.  Try every split position, fit both
  // segments, keep the split with the least total squared error, and read
  // the avail-bw off the segment intersection.
  std::vector<double> xs, ys;
  for (const auto& pt : curve_) {
    xs.push_back(pt.offered_rate_bps);
    ys.push_back(pt.mean_ratio);
  }

  double best_sse = std::numeric_limits<double>::infinity();
  stats::LinearFit best_lo, best_hi;
  bool found = false;
  for (std::size_t split = 3; split + 3 <= xs.size(); ++split) {
    std::vector<double> xlo(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(split));
    std::vector<double> ylo(ys.begin(), ys.begin() + static_cast<std::ptrdiff_t>(split));
    std::vector<double> xhi(xs.begin() + static_cast<std::ptrdiff_t>(split), xs.end());
    std::vector<double> yhi(ys.begin() + static_cast<std::ptrdiff_t>(split), ys.end());
    stats::LinearFit lo = stats::linear_fit(xlo, ylo);
    stats::LinearFit hi = stats::linear_fit(xhi, yhi);
    if (hi.slope <= lo.slope) continue;  // no upward bend at this split
    double sse = 0.0;
    for (std::size_t i = 0; i < split; ++i) {
      double e = ys[i] - (lo.slope * xs[i] + lo.intercept);
      sse += e * e;
    }
    for (std::size_t i = split; i < xs.size(); ++i) {
      double e = ys[i] - (hi.slope * xs[i] + hi.intercept);
      sse += e * e;
    }
    if (sse < best_sse) {
      best_sse = sse;
      best_lo = lo;
      best_hi = hi;
      found = true;
    }
  }

  if (found) {
    double a = (best_lo.intercept - best_hi.intercept) /
               (best_hi.slope - best_lo.slope);
    double ct = 1.0 / best_hi.slope;
    if (a >= cfg_.min_rate_bps && a <= cfg_.max_rate_bps && ct > 0.0 &&
        ct <= 10.0 * cfg_.max_rate_bps) {
      est_capacity_ = ct;
      Estimate e = Estimate::point(a);
      e.cost = transport.cost();
      e.detail = "segmented regression: Ct=" + std::to_string(ct / 1e6) + "Mbps";
      e.diag("rates_measured", static_cast<double>(curve_.size()));
      e.diag("capacity_est_bps", ct);
      e.diag("fallback", 0.0);
      return e;
    }
  }

  // Fallback: the highest offered rate that still passed undistorted.
  double best = 0.0;
  for (const auto& pt : curve_)
    if (pt.mean_ratio <= cfg_.turning_threshold) best = pt.offered_rate_bps;
  if (best <= 0.0) {
    Estimate e = Estimate::invalid("topp: even the lowest rate was distorted");
    e.diag("rates_measured", static_cast<double>(curve_.size()));
    e.diag("fallback", 1.0);
    e.cost = transport.cost();
    return e;
  }
  Estimate e = Estimate::point(best);
  e.cost = transport.cost();
  e.detail = "threshold fallback (segmented regression unusable)";
  e.diag("rates_measured", static_cast<double>(curve_.size()));
  e.diag("fallback", 1.0);
  return e;
}

}  // namespace abw::est
