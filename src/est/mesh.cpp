#include "est/mesh.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace abw::est {

std::vector<MeshPathSpec> make_path_specs(
    const sim::Topology& topo, const std::vector<sim::NodePair>& pairs) {
  std::vector<MeshPathSpec> specs;
  specs.reserve(pairs.size());
  for (const sim::NodePair& p : pairs) {
    const std::vector<std::size_t>* route = topo.route(p.src, p.dst);
    if (route == nullptr)
      throw std::invalid_argument("make_path_specs: no route for pair " +
                                  std::to_string(p.src) + "->" +
                                  std::to_string(p.dst));
    MeshPathSpec spec;
    spec.edges = *route;
    spec.narrow_capacity_bps = topo.route_narrow_capacity(p.src, p.dst);
    specs.push_back(std::move(spec));
  }
  return specs;
}

MeshEstimator::MeshEstimator(std::vector<MeshPathSpec> paths,
                             MeshEstimatorConfig cfg)
    : paths_(std::move(paths)), cfg_(cfg) {
  for (const MeshPathSpec& p : paths_)
    if (p.edges.empty())
      throw std::invalid_argument("MeshEstimator: path with empty route");
  probe_set_ = select_probe_set(paths_, cfg_.max_probe_fraction);
  std::sort(probe_set_.begin(), probe_set_.end());
}

std::vector<std::size_t> MeshEstimator::select_probe_set(
    const std::vector<MeshPathSpec>& paths, double max_fraction) {
  std::vector<std::size_t> chosen;
  if (paths.empty()) return chosen;

  std::size_t max_edge = 0;
  for (const MeshPathSpec& p : paths)
    for (std::size_t e : p.edges) max_edge = std::max(max_edge, e);
  std::vector<char> covered(max_edge + 1, 0);

  // At least one probe is always allowed; otherwise floor() keeps the
  // promise that probed/pairs <= max_fraction.
  const auto budget = static_cast<std::size_t>(std::max(
      1.0, std::floor(max_fraction * static_cast<double>(paths.size()))));

  std::vector<char> taken(paths.size(), 0);
  while (chosen.size() < budget) {
    std::size_t best = paths.size();
    std::size_t best_gain = 0;
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (taken[i]) continue;
      std::size_t gain = 0;
      for (std::size_t e : paths[i].edges) gain += covered[e] ? 0 : 1;
      if (gain > best_gain) {  // ties keep the lowest pair index
        best_gain = gain;
        best = i;
      }
    }
    if (best == paths.size()) break;  // every route edge already covered
    taken[best] = 1;
    chosen.push_back(best);
    for (std::size_t e : paths[best].edges) covered[e] = 1;
  }
  return chosen;
}

MeshReport MeshEstimator::estimate(runner::BatchRunner& runner,
                                   const MeshMeasureFn& measure) const {
  // Seed by PAIR index so a pair's measurement is invariant under the
  // selection outcome; index-order assembly makes it --jobs invariant.
  std::vector<MeshMeasurement> results =
      runner.map(probe_set_.size(), [&](std::size_t i) {
        const std::size_t pair = probe_set_[i];
        return measure(pair, runner::derive_seed(cfg_.base_seed, pair));
      });
  return infer(probe_set_, results);
}

MeshReport MeshEstimator::infer(
    const std::vector<std::size_t>& probed,
    const std::vector<MeshMeasurement>& results) const {
  if (probed.size() != results.size())
    throw std::invalid_argument("MeshEstimator::infer: probed/results mismatch");

  MeshReport report;
  report.pairs.resize(paths_.size());
  report.probed = probed;
  report.measurements = results;

  std::size_t max_edge = 0;
  for (const MeshPathSpec& p : paths_)
    for (std::size_t e : p.edges) max_edge = std::max(max_edge, e);
  const std::size_t n_edges = paths_.empty() ? 0 : max_edge + 1;
  report.edge_avail_bps.assign(n_edges,
                               std::numeric_limits<double>::quiet_NaN());
  report.edge_support.assign(n_edges, 0);

  // Pass 1: every valid measurement lower-bounds all edges on its route.
  for (std::size_t k = 0; k < probed.size(); ++k) {
    const MeshMeasurement& m = results[k];
    if (!m.valid || !(m.avail_bps >= 0.0)) continue;
    for (std::size_t e : paths_[probed[k]].edges) {
      double& bound = report.edge_avail_bps[e];
      if (std::isnan(bound) || m.avail_bps > bound) bound = m.avail_bps;
      ++report.edge_support[e];
    }
  }

  std::vector<char> route_edge(n_edges, 0);
  for (const MeshPathSpec& p : paths_)
    for (std::size_t e : p.edges) route_edge[e] = 1;
  for (std::size_t e = 0; e < n_edges; ++e) {
    if (!route_edge[e]) continue;
    ++report.route_edges;
    if (!std::isnan(report.edge_avail_bps[e])) ++report.covered_edges;
  }

  // Pass 2: measured pairs report their measurement; the rest take the
  // min over their route's known edge bounds.
  std::vector<char> is_probed(paths_.size(), 0);
  for (std::size_t k = 0; k < probed.size(); ++k) {
    const std::size_t p = probed[k];
    is_probed[p] = 1;
    MeshPairEstimate& est = report.pairs[p];
    est.measured = true;
    const MeshMeasurement& m = results[k];
    if (m.valid) {
      est.valid = true;
      est.estimate_bps = m.avail_bps;
      est.low_bps = m.low_bps;
      est.high_bps = m.high_bps;
      est.confidence = 1.0;
    }
  }
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    MeshPairEstimate& est = report.pairs[p];
    // An invalid direct measurement falls through to inference: the
    // pair's edges may still be bounded by OTHER measured paths.
    if (est.measured && est.valid) continue;
    const MeshPathSpec& path = paths_[p];
    double min_bound = std::numeric_limits<double>::infinity();
    std::size_t argmin = kNoMeshEdge;
    std::size_t known = 0;
    for (std::size_t e : path.edges) {
      const double bound = report.edge_avail_bps[e];
      if (std::isnan(bound)) continue;
      ++known;
      if (bound < min_bound) {  // ties keep the earliest route edge
        min_bound = bound;
        argmin = e;
      }
    }
    if (known == 0) continue;  // stays invalid, confidence 0
    est.valid = true;
    est.estimate_bps = min_bound;
    est.bottleneck_edge = argmin;
    est.low_bps = min_bound;
    est.high_bps = path.narrow_capacity_bps > 0.0 ? path.narrow_capacity_bps
                                                  : min_bound;
    // Heuristic: full-route coverage scaled by how many independent
    // measurements support the binding edge (k/(k+1) saturates toward 1).
    const double coverage = static_cast<double>(known) /
                            static_cast<double>(path.edges.size());
    const double support = static_cast<double>(report.edge_support[argmin]);
    est.confidence = coverage * (support / (support + 1.0));
  }

  // Measured pairs also get their bottleneck pinned from the edge bounds
  // (the edge their own measurement tightened, by construction).
  for (std::size_t p = 0; p < paths_.size(); ++p) {
    MeshPairEstimate& est = report.pairs[p];
    if (!est.measured || !est.valid) continue;
    double min_bound = std::numeric_limits<double>::infinity();
    std::size_t argmin = kNoMeshEdge;
    for (std::size_t e : paths_[p].edges) {
      const double bound = report.edge_avail_bps[e];
      if (std::isnan(bound)) continue;
      if (bound < min_bound) {
        min_bound = bound;
        argmin = e;
      }
    }
    est.bottleneck_edge = argmin;
  }
  return report;
}

}  // namespace abw::est
