#include "est/schirp.hpp"

#include <stdexcept>

#include "probe/stream_spec.hpp"
#include "stats/moments.hpp"

namespace abw::est {

SChirp::SChirp(const SChirpConfig& cfg)
    : cfg_(cfg), inner_([&] {
        PathChirpConfig inner_cfg = cfg.chirp;
        inner_cfg.busy_threshold_fraction = cfg.busy_threshold_fraction;
        inner_cfg.onset_backoff_packets = cfg.smooth_window - 1;
        return inner_cfg;
      }()) {
  if (cfg.smooth_window == 0 || cfg.smooth_window % 2 == 0)
    throw std::invalid_argument("SChirp: smooth_window must be odd and >= 1");
  if (cfg.busy_threshold_fraction <= 0.0 || cfg.busy_threshold_fraction >= 1.0)
    throw std::invalid_argument("SChirp: busy_threshold_fraction in (0,1)");
}

std::vector<double> SChirp::smooth(const std::vector<double>& xs,
                                   std::size_t window) {
  if (window <= 1 || xs.size() < window) return xs;
  // Trailing (causal) average: a spike at index k is never smeared to
  // indices < k, so excursion ONSETS are not advanced — a centered window
  // would shift the congestion-onset detection earlier and bias the
  // estimate low.  The slight onset delay this causes is conservative.
  std::vector<double> out(xs.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum += xs[i];
    if (i >= window) sum -= xs[i - window];
    std::size_t have = std::min(i + 1, window);
    out[i] = sum / static_cast<double>(have);
  }
  return out;
}

Estimate SChirp::do_estimate(probe::Transport& transport) {
  const PathChirpConfig& cc = cfg_.chirp;
  probe::StreamSpec spec = probe::StreamSpec::chirp(
      cc.low_rate_bps, cc.spread_factor, cc.packet_size, cc.packets_per_chirp);

  std::vector<double> rates, gaps;
  for (std::size_t k = 1; k < spec.packets.size(); ++k) {
    rates.push_back(spec.instantaneous_rate(k));
    gaps.push_back(
        sim::to_seconds(spec.packets[k].offset - spec.packets[k - 1].offset));
  }

  std::vector<double> per_chirp;
  LimitGuard guard(limits_, transport);
  for (std::size_t c = 0; c < cc.chirps; ++c) {
    if (AbortReason r = guard.exceeded(); r != AbortReason::kNone) {
      Estimate e = abort_estimate(r, name());
      e.cost = transport.cost();
      return e;
    }
    probe::StreamResult res = transport.send_stream(spec, cc.inter_chirp_gap);
    if (!res.complete()) {
      decision(transport, "chirp", "discarded", c, 0.0);
      continue;
    }
    std::vector<double> owds = smooth(res.owds_seconds(), cfg_.smooth_window);
    double e = inner_.analyze_chirp(owds, rates, gaps);
    decision(transport, "chirp", e > 0.0 ? "usable" : "unusable", c, e);
    if (e > 0.0) per_chirp.push_back(e);
  }
  if (per_chirp.empty()) {
    Estimate e = Estimate::aborted(AbortReason::kInsufficientData,
                                   "schirp: no usable chirps");
    e.diag("chirps_used", 0.0);
    e.diag("smooth_window", static_cast<double>(cfg_.smooth_window));
    e.cost = transport.cost();
    return e;
  }
  // Median across chirps: single-chirp excursion analysis is noisy in
  // both directions (spurious early onsets, missed final excursions), and
  // the robust-location spirit of the smoothed variant extends naturally
  // to the cross-chirp aggregate.
  Estimate e = Estimate::point(stats::median(per_chirp));
  e.cost = transport.cost();
  e.detail = "chirps=" + std::to_string(per_chirp.size()) +
             " smooth=" + std::to_string(cfg_.smooth_window);
  e.diag("chirps_used", static_cast<double>(per_chirp.size()));
  e.diag("smooth_window", static_cast<double>(cfg_.smooth_window));
  return e;
}

}  // namespace abw::est
