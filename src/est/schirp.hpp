// S-chirp ("Smoothed chirp", Pasztor 2003) — the chirp variant the
// paper's classification section lists alongside pathChirp.  Same probing
// geometry (exponentially shrinking gaps), but the queueing-delay
// signature is smoothed with a short moving average before excursion
// analysis, suppressing single-packet cross-traffic spikes that make raw
// per-packet excursions jumpy.
#pragma once

#include "est/pathchirp.hpp"

namespace abw::est {

/// Parameters of S-chirp: pathChirp's plus the smoothing width.
struct SChirpConfig {
  PathChirpConfig chirp;       ///< underlying chirp geometry & analysis
  std::size_t smooth_window = 3;  ///< moving-average width (odd, >= 1)
  /// Excursion threshold on the SMOOTHED signal, as a fraction of its
  /// max.  Smoothing lifts the valleys between delay spikes, so the
  /// threshold must sit above pathChirp's raw-signal 5% or every spike
  /// train merges into one long excursion — but not so high that mild
  /// final excursions are missed entirely (which defaults the chirp to
  /// its top rate).
  double busy_threshold_fraction = 0.15;
};

/// The S-chirp estimator: smooth, then run the excursion rules.
class SChirp final : public Estimator {
 public:
  explicit SChirp(const SChirpConfig& cfg);

  std::string_view name() const override { return "schirp"; }
  ProbingClass probing_class() const override { return ProbingClass::kIterative; }

  /// Centered moving average with reflection at the edges; exposed for
  /// tests.  window must be odd.
  static std::vector<double> smooth(const std::vector<double>& xs,
                                    std::size_t window);

 protected:
  Estimate do_estimate(probe::Transport& transport) override;

 private:
  SChirpConfig cfg_;
  PathChirp inner_;
};

}  // namespace abw::est
