// Spruce (Strauss, Katabi & Kaashoek, IMC 2003): direct probing with
// packet pairs.  Each pair is sent with intra-pair gap g_in equal to the
// tight link's transmission time of the probe packet (rate == Ct); the
// receiver measures the output gap g_out.  Cross traffic that arrived
// between the pair inflates the gap, giving the per-pair sample
//
//   A_pair = Ct * (1 - (g_out - g_in) / g_in)
//
// Pairs are spaced with exponential interarrivals for PASTA.  The paper's
// "packet pairs are as good as packet trains" fallacy (Table 1) is about
// exactly this sample's sensitivity to cross-traffic packet size.
#pragma once

#include "est/estimator.hpp"

namespace abw::est {

/// Parameters of Spruce.
struct SpruceConfig {
  double tight_capacity_bps = 0.0;  ///< Ct, required
  std::uint32_t packet_size = 1500;
  std::size_t pair_count = 100;     ///< Spruce's default sample size
  sim::SimTime mean_pair_gap = 20 * sim::kMillisecond;  ///< Poisson spacing
};

/// The Spruce estimator.
class Spruce final : public Estimator {
 public:
  Spruce(const SpruceConfig& cfg, stats::Rng rng);

  std::string_view name() const override { return "spruce"; }
  ProbingClass probing_class() const override { return ProbingClass::kDirect; }

  /// Per-pair samples from the last estimate() call (for Table 1-style
  /// analyses of sample statistics).
  const std::vector<double>& last_samples() const { return samples_; }

 protected:
  Estimate do_estimate(probe::Transport& transport) override;

 private:
  SpruceConfig cfg_;
  stats::Rng rng_;
  std::vector<double> samples_;
};

}  // namespace abw::est
