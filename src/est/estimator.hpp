// The estimator interface and result type shared by all techniques.
//
// The paper's classification (Section 2) splits tools into *direct
// probing* (each stream yields an avail-bw sample via Eq. 9, requires the
// tight-link capacity Ct) and *iterative probing* (each stream only
// answers "is Ri above A?", Eq. 10).  Every class in this directory
// implements one published technique against the common ProbeSession
// substrate, so they can be compared "under reproducible and controllable
// conditions, and with the same configuration parameters" — the paper's
// closing recommendation.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "probe/session.hpp"
#include "probe/transport.hpp"

namespace abw::est {

/// How a technique probes, per the paper's taxonomy.
enum class ProbingClass { kDirect, kIterative };

/// Why a measurement was aborted without converging.  A structured
/// companion to Estimate::detail: callers can branch on the reason
/// (retry on kDeadline, reduce the grid on kProbeBudgetExhausted, flag
/// the path on kInsufficientData) without parsing strings.
enum class AbortReason : std::uint8_t {
  kNone = 0,               ///< not aborted (valid, or plain non-convergence)
  kProbeBudgetExhausted,   ///< EstimatorLimits::max_probe_packets hit
  kDeadline,               ///< EstimatorLimits::deadline passed
  kInsufficientData,       ///< too few usable packets/streams to analyze
};

/// Human-readable name of an abort reason ("none", "probe-budget", ...).
std::string_view abort_reason_name(AbortReason r);

/// Hard resource bounds on one measurement.  Published tools are known to
/// run unbounded under pathological conditions (heavy loss, capacity
/// flaps); these limits guarantee termination with a structured abort
/// instead.  0 = unlimited (the default preserves historical behavior).
struct EstimatorLimits {
  std::uint64_t max_probe_packets = 0;  ///< total probe packets sent (0 = no cap)
  sim::SimTime deadline = 0;  ///< max simulated measurement time (0 = no cap)

  bool any() const { return max_probe_packets > 0 || deadline > 0; }
};

/// One structured diagnostic: a named number a tool reports about its own
/// run ("streams_used", "excursion_count", ...).  Kept as an ordered
/// vector, not a map: tools append in a meaningful order (cheap, stable,
/// duplicate-free by construction) and serializers preserve it.
struct Diag {
  std::string key;
  double value = 0.0;
};

/// An avail-bw estimate.  Point estimators set low == high; Pathload-style
/// range estimators report the variation range they converged to (which
/// the paper stresses is NOT a confidence interval for the mean).
struct Estimate {
  bool valid = false;
  double low_bps = 0.0;
  double high_bps = 0.0;
  AbortReason abort = AbortReason::kNone;  ///< set when limits cut the run short
  probe::ProbeCost cost;  ///< probing overhead consumed by this estimate
  /// Structured per-run diagnostics, populated by every tool — the
  /// primary introspection channel (machine-readable; serialized by
  /// to_json()).  `detail` remains for human eyes and is synthesized
  /// from these pairs when the tool does not set it explicitly.
  std::vector<Diag> diagnostics;
  std::string detail;     ///< tool-specific notes (human-readable)

  /// Appends one diagnostic (keys are expected to be unique per tool).
  void diag(std::string key, double value) {
    diagnostics.push_back({std::move(key), value});
  }

  /// The value of diagnostic `key`, or NaN when absent.
  double diag_value(std::string_view key) const;

  /// JSON object with the estimate's full structured state:
  /// {"valid":...,"low_bps":...,"high_bps":...,"abort":"...",
  ///  "detail":"...","cost":{...},"diagnostics":{...}} — deterministic
  /// for a seeded run (no wall-clock fields).
  std::string to_json() const;

  /// Midpoint, the conventional single-number reading.  NaN when the
  /// estimate is invalid — an invalid measurement must never read as
  /// "0 bits/s available" in aggregated results (it would silently drag
  /// means and mislead plots; NaN propagates and is filterable).
  double point_bps() const {
    return valid ? (low_bps + high_bps) / 2.0
                 : std::numeric_limits<double>::quiet_NaN();
  }

  static Estimate invalid(std::string why) {
    Estimate e;
    e.detail = std::move(why);
    return e;
  }

  /// An invalid estimate carrying a structured abort reason.
  static Estimate aborted(AbortReason reason, std::string why) {
    Estimate e;
    e.abort = reason;
    e.detail = std::move(why);
    return e;
  }

  static Estimate point(double bps) {
    Estimate e;
    e.valid = true;
    e.low_bps = e.high_bps = bps;
    return e;
  }

  static Estimate range(double lo, double hi) {
    Estimate e;
    e.valid = true;
    e.low_bps = lo;
    e.high_bps = hi;
    return e;
  }
};

/// Common interface: run a complete measurement over the given transport.
///
/// Template method: estimate() is the non-virtual public entry point; it
/// wraps the technique's do_estimate() with the cross-cutting concerns —
/// a profiling timer ("est.<name>.seconds"), run/valid/abort counters and
/// per-diagnostic gauges in the attached MetricsRegistry, a final
/// decision trace event, and synthesis of the human-readable `detail`
/// from `diagnostics` when the tool left it empty.  Tools override the
/// protected do_estimate() only.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Runs the technique to completion over any measurement substrate —
  /// simulated (probe::SimTransport) or live (net::UdpTransport) —
  /// advancing the transport's clock as real tools consume wall-clock
  /// time, and returns its estimate.
  Estimate estimate(probe::Transport& transport);

  /// Deprecated convenience: runs over a simulated session by wrapping it
  /// in a SimTransport — bit-identical to the transport overload.  Kept
  /// so pre-transport callers compile unchanged; prefer
  /// estimate(Transport&).
  Estimate estimate(probe::ProbeSession& session) {
    probe::SimTransport transport(session);
    return estimate(transport);
  }

  /// Tool name, e.g. "pathload".
  virtual std::string_view name() const = 0;

  /// Which of the paper's two probing classes the tool belongs to.
  virtual ProbingClass probing_class() const = 0;

  /// Installs resource bounds for subsequent estimate() calls.  Every
  /// technique checks them between streams: when exceeded it returns an
  /// Estimate with valid == false and the corresponding AbortReason
  /// instead of probing on.
  void set_limits(const EstimatorLimits& limits) { limits_ = limits; }
  const EstimatorLimits& limits() const { return limits_; }

  /// Attaches observability: per-tool decision events go to `trace`,
  /// run counters / diagnostics gauges / timing to `metrics`.  Either
  /// may be nullptr (the default — zero overhead beyond a branch).
  /// Neither is owned.
  void set_observer(obs::TraceSink* trace, obs::MetricsRegistry* metrics) {
    trace_ = trace;
    metrics_ = metrics;
  }

 protected:
  /// The technique itself.  Implementations populate
  /// Estimate::diagnostics; `detail` may be left empty (synthesized).
  virtual Estimate do_estimate(probe::Transport& transport) = 0;

  /// Emits one decision trace event (no-op when no sink attached):
  /// `what` names the decision ("fleet-verdict", "excursion", ...),
  /// `outcome` its result, `iter` the iteration index, value/aux the
  /// numbers behind it.  Time stamps from the transport clock.
  void decision(probe::Transport& transport, std::string_view what,
                std::string_view outcome, std::uint64_t iter, double value,
                double aux = 0.0);

  /// True when a trace sink is attached (skip building expensive
  /// outcome strings otherwise).
  bool tracing() const { return trace_ != nullptr; }
  /// Per-measurement limit bookkeeping.  Construct at the top of
  /// estimate() and call exceeded() before each stream; the baseline
  /// subtraction makes the budget per-measurement even though
  /// ProbeCost accumulates across a transport's lifetime.
  class LimitGuard {
   public:
    LimitGuard(const EstimatorLimits& limits, probe::Transport& transport)
        : limits_(limits),
          transport_(transport),
          packets_at_start_(transport.cost().packets),
          start_time_(transport.now()) {}

    /// kNone while within bounds; otherwise the limit that tripped.
    AbortReason exceeded() const {
      if (limits_.max_probe_packets > 0 &&
          transport_.cost().packets - packets_at_start_ >=
              limits_.max_probe_packets)
        return AbortReason::kProbeBudgetExhausted;
      if (limits_.deadline > 0 &&
          transport_.now() - start_time_ >= limits_.deadline)
        return AbortReason::kDeadline;
      return AbortReason::kNone;
    }

   private:
    const EstimatorLimits& limits_;
    probe::Transport& transport_;
    std::uint64_t packets_at_start_;
    sim::SimTime start_time_;
  };

  /// The standard abort result for a tripped guard.
  static Estimate abort_estimate(AbortReason reason, std::string_view tool);

  EstimatorLimits limits_;
  obs::TraceSink* trace_ = nullptr;        // not owned; nullptr = off
  obs::MetricsRegistry* metrics_ = nullptr;  // not owned; nullptr = off
};

}  // namespace abw::est
