// The estimator interface and result type shared by all techniques.
//
// The paper's classification (Section 2) splits tools into *direct
// probing* (each stream yields an avail-bw sample via Eq. 9, requires the
// tight-link capacity Ct) and *iterative probing* (each stream only
// answers "is Ri above A?", Eq. 10).  Every class in this directory
// implements one published technique against the common ProbeSession
// substrate, so they can be compared "under reproducible and controllable
// conditions, and with the same configuration parameters" — the paper's
// closing recommendation.
#pragma once

#include <string>
#include <string_view>

#include "probe/session.hpp"

namespace abw::est {

/// How a technique probes, per the paper's taxonomy.
enum class ProbingClass { kDirect, kIterative };

/// An avail-bw estimate.  Point estimators set low == high; Pathload-style
/// range estimators report the variation range they converged to (which
/// the paper stresses is NOT a confidence interval for the mean).
struct Estimate {
  bool valid = false;
  double low_bps = 0.0;
  double high_bps = 0.0;
  probe::ProbeCost cost;  ///< probing overhead consumed by this estimate
  std::string detail;     ///< tool-specific notes (diagnostics)

  /// Midpoint, the conventional single-number reading.
  double point_bps() const { return (low_bps + high_bps) / 2.0; }

  static Estimate invalid(std::string why) {
    Estimate e;
    e.detail = std::move(why);
    return e;
  }

  static Estimate point(double bps) {
    Estimate e;
    e.valid = true;
    e.low_bps = e.high_bps = bps;
    return e;
  }

  static Estimate range(double lo, double hi) {
    Estimate e;
    e.valid = true;
    e.low_bps = lo;
    e.high_bps = hi;
    return e;
  }
};

/// Common interface: run a complete measurement over the given session.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Runs the technique to completion, advancing simulated time as real
  /// tools consume wall-clock time, and returns its estimate.
  virtual Estimate estimate(probe::ProbeSession& session) = 0;

  /// Tool name, e.g. "pathload".
  virtual std::string_view name() const = 0;

  /// Which of the paper's two probing classes the tool belongs to.
  virtual ProbingClass probing_class() const = 0;
};

}  // namespace abw::est
