// End-to-end capacity estimation with packet-pair dispersion (bprobe /
// pathrate lineage).  Crucially, this measures the *narrow* link C_n —
// the minimum capacity — NOT the tight link C_t that direct probing
// needs.  The paper's "estimating the tight link capacity with end-to-end
// capacity estimation tools" pitfall is demonstrated by feeding this
// tool's output into DirectProber/Spruce on a path whose narrow and tight
// links differ (bench/pitfall_narrow_tight).
#pragma once

#include "est/estimator.hpp"

namespace abw::est {

/// Parameters of the packet-pair capacity estimator.
struct CapacityConfig {
  std::uint32_t packet_size = 1500;
  std::size_t pair_count = 100;
  sim::SimTime mean_pair_gap = 20 * sim::kMillisecond;  ///< Poisson spacing
  double launch_rate_bps = 1e9;  ///< back-to-back at the sender
  std::size_t histogram_bins = 60;
};

/// Estimates the narrow-link capacity from the mode of per-pair
/// bandwidth estimates 8L/dispersion.
class CapacityEstimator {
 public:
  CapacityEstimator(const CapacityConfig& cfg, stats::Rng rng);

  /// Runs the measurement; returns the capacity estimate in bits/s, or 0
  /// if no pair survived.
  double estimate_capacity(probe::Transport& transport);

  /// Deprecated: wraps `session` in a SimTransport.
  double estimate_capacity(probe::ProbeSession& session) {
    probe::SimTransport transport(session);
    return estimate_capacity(transport);
  }

  /// Per-pair raw estimates from the last run.
  const std::vector<double>& last_samples() const { return samples_; }

 private:
  CapacityConfig cfg_;
  stats::Rng rng_;
  std::vector<double> samples_;
};

}  // namespace abw::est
