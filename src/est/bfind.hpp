// BFind (Akella, Seshan & Shaikh, IMC 2003): sender-side-only iterative
// probing.  The real tool floods UDP at a gradually increasing rate while
// running repeated traceroutes; a persistent RTT increase at some hop
// means the probing rate exceeds that hop's avail-bw.
//
// Substitution (see DESIGN.md): instead of ICMP TTL-expired RTTs we
// sample each link's instantaneous queueing delay directly — exactly the
// quantity a traceroute RTT difference exposes, minus ICMP generation
// noise.  The detection logic (persistent per-hop queue growth during a
// rate step) is the tool's.
#pragma once

#include "est/estimator.hpp"

namespace abw::est {

/// Parameters of BFind.
struct BfindConfig {
  double initial_rate_bps = 2e6;
  double rate_step_bps = 2e6;
  double max_rate_bps = 200e6;
  std::uint32_t packet_size = 1000;
  sim::SimTime step_duration = 500 * sim::kMillisecond;
  sim::SimTime sample_interval = 10 * sim::kMillisecond;  ///< "traceroute" period
  double growth_threshold_ms = 1.0;  ///< mean queue-delay growth to flag a hop
};

/// The BFind estimator.
class Bfind final : public Estimator {
 public:
  explicit Bfind(const BfindConfig& cfg);

  std::string_view name() const override { return "bfind"; }
  ProbingClass probing_class() const override { return ProbingClass::kIterative; }

  /// Hop flagged as the bottleneck by the last run (kEndToEnd if none).
  std::uint32_t flagged_hop() const { return flagged_hop_; }

 protected:
  Estimate do_estimate(probe::Transport& transport) override;

 private:
  BfindConfig cfg_;
  std::uint32_t flagged_hop_ = sim::kEndToEnd;
};

}  // namespace abw::est
