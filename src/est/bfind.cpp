#include "est/bfind.hpp"

#include <stdexcept>
#include <vector>

#include "probe/stream_spec.hpp"
#include "stats/moments.hpp"

namespace abw::est {

Bfind::Bfind(const BfindConfig& cfg) : cfg_(cfg) {
  if (cfg.initial_rate_bps <= 0.0 || cfg.rate_step_bps <= 0.0 ||
      cfg.max_rate_bps <= cfg.initial_rate_bps)
    throw std::invalid_argument("Bfind: bad rate ramp");
  if (cfg.step_duration <= 0 || cfg.sample_interval <= 0 ||
      cfg.sample_interval * 4 > cfg.step_duration)
    throw std::invalid_argument("Bfind: bad sampling parameters");
}

Estimate Bfind::do_estimate(probe::ProbeSession& session) {
  flagged_hop_ = sim::kEndToEnd;
  sim::Simulator& sim = session.simulator();
  sim::Path& path = session.path();
  std::size_t hops = path.hop_count();
  std::size_t steps = 0;

  LimitGuard guard(limits_, session);
  for (double rate = cfg_.initial_rate_bps; rate <= cfg_.max_rate_bps;
       rate += cfg_.rate_step_bps, ++steps) {
    if (AbortReason r = guard.exceeded(); r != AbortReason::kNone) {
      Estimate e = abort_estimate(r, name());
      e.cost = session.cost();
      return e;
    }
    // Schedule the per-hop "traceroute" samples for this step, then flood.
    std::vector<std::vector<double>> delays_ms(hops);
    sim::SimTime step_start = sim.now() + sim::kMillisecond;
    for (sim::SimTime t = step_start; t < step_start + cfg_.step_duration;
         t += cfg_.sample_interval) {
      sim.at(t, [&path, &delays_ms, hops] {
        for (std::size_t h = 0; h < hops; ++h)
          delays_ms[h].push_back(sim::to_millis(path.link(h).current_delay()));
      });
    }

    auto count = static_cast<std::size_t>(
        sim::to_seconds(cfg_.step_duration) * rate / (cfg_.packet_size * 8.0));
    if (count < 2) count = 2;
    probe::StreamSpec spec =
        probe::StreamSpec::periodic(rate, cfg_.packet_size, count);
    session.send_stream(spec, step_start);
    // Ensure all samplers fired even if the stream drained early.
    sim.run_until(step_start + cfg_.step_duration);

    // A hop is flagged when its mean queueing delay in the second half of
    // the step exceeds the first half by the growth threshold: the queue
    // is persistently building at this probing rate.
    for (std::size_t h = 0; h < hops; ++h) {
      const std::vector<double>& d = delays_ms[h];
      if (d.size() < 8) continue;
      std::size_t half = d.size() / 2;
      std::vector<double> a(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(half));
      std::vector<double> b(d.begin() + static_cast<std::ptrdiff_t>(half), d.end());
      if (stats::mean(b) - stats::mean(a) > cfg_.growth_threshold_ms) {
        flagged_hop_ = static_cast<std::uint32_t>(h);
        decision(session, "rate-step", "queue-growth", steps, rate,
                 static_cast<double>(h));
        Estimate e = Estimate::point(rate);
        e.cost = session.cost();
        e.detail = "queue growth at hop " + std::to_string(h) + " at " +
                   std::to_string(rate / 1e6) + "Mbps";
        e.diag("flagged_hop", static_cast<double>(h));
        e.diag("steps", static_cast<double>(steps + 1));
        return e;
      }
    }
    decision(session, "rate-step", "no-growth", steps, rate);
  }
  Estimate e =
      Estimate::invalid("bfind: no hop showed queue growth up to max rate");
  e.diag("flagged_hop", -1.0);
  e.diag("steps", static_cast<double>(steps));
  e.cost = session.cost();
  return e;
}

}  // namespace abw::est
