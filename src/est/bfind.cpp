#include "est/bfind.hpp"

#include <stdexcept>
#include <vector>

#include "probe/stream_spec.hpp"
#include "stats/moments.hpp"

namespace abw::est {

Bfind::Bfind(const BfindConfig& cfg) : cfg_(cfg) {
  if (cfg.initial_rate_bps <= 0.0 || cfg.rate_step_bps <= 0.0 ||
      cfg.max_rate_bps <= cfg.initial_rate_bps)
    throw std::invalid_argument("Bfind: bad rate ramp");
  if (cfg.step_duration <= 0 || cfg.sample_interval <= 0 ||
      cfg.sample_interval * 4 > cfg.step_duration)
    throw std::invalid_argument("Bfind: bad sampling parameters");
}

namespace {

// Mean delay growth between the first and second half of one rate step's
// delay samples, in milliseconds — the "persistent queue build-up" signal
// BFind's per-hop traceroute differencing looks for.
double half_step_growth_ms(const std::vector<double>& d) {
  if (d.size() < 8) return 0.0;
  std::size_t half = d.size() / 2;
  std::vector<double> a(d.begin(), d.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<double> b(d.begin() + static_cast<std::ptrdiff_t>(half), d.end());
  return stats::mean(b) - stats::mean(a);
}

}  // namespace

Estimate Bfind::do_estimate(probe::Transport& transport) {
  flagged_hop_ = sim::kEndToEnd;
  // BFind's per-hop "traceroute" instrumentation samples each link's
  // instantaneous queueing delay — a simulator capability.  On a live
  // transport the same growth test runs end-to-end on the probe stream's
  // own OWDs (what the real tool's end-host RTTs degrade to when
  // intermediate hops do not answer): the flagged hop is then always
  // kEndToEnd.
  probe::ProbeSession* session = transport.sim_session();
  std::size_t steps = 0;

  LimitGuard guard(limits_, transport);
  for (double rate = cfg_.initial_rate_bps; rate <= cfg_.max_rate_bps;
       rate += cfg_.rate_step_bps, ++steps) {
    if (AbortReason r = guard.exceeded(); r != AbortReason::kNone) {
      Estimate e = abort_estimate(r, name());
      e.cost = transport.cost();
      return e;
    }

    auto count = static_cast<std::size_t>(
        sim::to_seconds(cfg_.step_duration) * rate / (cfg_.packet_size * 8.0));
    if (count < 2) count = 2;
    probe::StreamSpec spec =
        probe::StreamSpec::periodic(rate, cfg_.packet_size, count);

    std::uint32_t grown_hop = sim::kEndToEnd;
    double growth_ms = 0.0;
    if (session != nullptr) {
      sim::Simulator& sim = session->simulator();
      sim::Path& path = session->path();
      std::size_t hops = path.hop_count();
      // Schedule the per-hop "traceroute" samples for this step, then flood.
      std::vector<std::vector<double>> delays_ms(hops);
      sim::SimTime step_start = sim.now() + sim::kMillisecond;
      for (sim::SimTime t = step_start; t < step_start + cfg_.step_duration;
           t += cfg_.sample_interval) {
        sim.at(t, [&path, &delays_ms, hops] {
          for (std::size_t h = 0; h < hops; ++h)
            delays_ms[h].push_back(sim::to_millis(path.link(h).current_delay()));
        });
      }
      session->send_stream(spec, step_start);
      // Ensure all samplers fired even if the stream drained early.
      sim.run_until(step_start + cfg_.step_duration);

      // A hop is flagged when its mean queueing delay in the second half
      // of the step exceeds the first half by the growth threshold: the
      // queue is persistently building at this probing rate.
      for (std::size_t h = 0; h < hops; ++h) {
        double g = half_step_growth_ms(delays_ms[h]);
        if (g > cfg_.growth_threshold_ms) {
          grown_hop = static_cast<std::uint32_t>(h);
          growth_ms = g;
          break;
        }
      }
    } else {
      // Live path: the stream's own OWD series is the delay record.
      probe::StreamResult res = transport.send_stream(spec);
      double g = half_step_growth_ms(res.relative_owds_ms());
      if (g > cfg_.growth_threshold_ms) {
        grown_hop = sim::kEndToEnd;
        growth_ms = g;
      } else {
        grown_hop = sim::kEndToEnd;
        growth_ms = 0.0;
      }
      if (growth_ms <= 0.0) {
        decision(transport, "rate-step", "no-growth", steps, rate);
        continue;
      }
    }

    if (session != nullptr && grown_hop == sim::kEndToEnd) {
      decision(transport, "rate-step", "no-growth", steps, rate);
      continue;
    }

    flagged_hop_ = grown_hop;
    decision(transport, "rate-step", "queue-growth", steps, rate,
             static_cast<double>(grown_hop));
    Estimate e = Estimate::point(rate);
    e.cost = transport.cost();
    e.detail = "queue growth at hop " +
               (grown_hop == sim::kEndToEnd ? std::string("end-to-end")
                                            : std::to_string(grown_hop)) +
               " at " + std::to_string(rate / 1e6) + "Mbps";
    e.diag("flagged_hop", grown_hop == sim::kEndToEnd
                              ? static_cast<double>(sim::kEndToEnd)
                              : static_cast<double>(grown_hop));
    e.diag("steps", static_cast<double>(steps + 1));
    return e;
  }
  Estimate e =
      Estimate::invalid("bfind: no hop showed queue growth up to max rate");
  e.diag("flagged_hop", -1.0);
  e.diag("steps", static_cast<double>(steps));
  e.cost = transport.cost();
  return e;
}

}  // namespace abw::est
