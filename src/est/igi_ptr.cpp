#include "est/igi_ptr.hpp"

#include <cmath>
#include <stdexcept>

#include "probe/stream_spec.hpp"
#include "stats/moments.hpp"

namespace abw::est {

IgiPtr::IgiPtr(const IgiPtrConfig& cfg, IgiPtrFormula formula)
    : cfg_(cfg), formula_(formula) {
  if (cfg.tight_capacity_bps <= 0.0)
    throw std::invalid_argument("IgiPtr: tight_capacity_bps required");
  if (cfg.packets_per_train < 3 || cfg.packet_size == 0)
    throw std::invalid_argument("IgiPtr: bad train geometry");
  if (cfg.gap_step_fraction <= 0.0 || cfg.turning_tolerance <= 0.0)
    throw std::invalid_argument("IgiPtr: bad search parameters");
  if (cfg.repetitions == 0)
    throw std::invalid_argument("IgiPtr: repetitions must be >= 1");
}

Estimate IgiPtr::do_estimate(probe::Transport& transport) {
  last_igi_ = last_ptr_ = 0.0;
  trains_used_ = 0;

  // Bottleneck (back-to-back) gap of the probe packet on the tight link.
  double gb = sim::to_seconds(
      sim::transmission_time(cfg_.packet_size, cfg_.tight_capacity_bps));
  double start_rate = cfg_.initial_rate_bps > 0.0 ? cfg_.initial_rate_bps
                                                  : 0.9 * cfg_.tight_capacity_bps;

  LimitGuard guard(limits_, transport);
  AbortReason abort = AbortReason::kNone;

  // One gap-increasing search: returns true when a turning point was
  // found, filling the per-phase estimates.
  auto search_once = [&](double& igi_out, double& ptr_out) {
    double gi = static_cast<double>(cfg_.packet_size) * 8.0 / start_rate;
    for (std::size_t train = 0; train < cfg_.max_trains;
         ++train, gi += cfg_.gap_step_fraction * gb) {
      if ((abort = guard.exceeded()) != AbortReason::kNone) return false;
      ++trains_used_;
      double rate = static_cast<double>(cfg_.packet_size) * 8.0 / gi;
      probe::StreamSpec spec = probe::StreamSpec::periodic(
          rate, cfg_.packet_size, cfg_.packets_per_train);
      probe::StreamResult res =
          transport.send_stream(spec, 10 * sim::kMillisecond);
      if (res.lost_count() > 0) continue;  // lossy train: keep slowing down

      const auto& pk = res.packets;
      double total_gap = sim::to_seconds(pk.back().received - pk.front().received);
      double avg_go = total_gap / static_cast<double>(pk.size() - 1);
      if (std::abs(avg_go - gi) / gi > cfg_.turning_tolerance) continue;

      // Turning point: compute both estimates from this train.
      double bits = static_cast<double>(pk.size() - 1) * cfg_.packet_size * 8.0;
      ptr_out = bits / total_gap;
      double increased = 0.0, all = 0.0;
      for (std::size_t k = 1; k < pk.size(); ++k) {
        double go = sim::to_seconds(pk[k].received - pk[k - 1].received);
        all += go;
        if (go > gi * (1.0 + cfg_.turning_tolerance)) increased += go - gb;
      }
      double rc = all > 0.0 ? cfg_.tight_capacity_bps * increased / all : 0.0;
      igi_out = cfg_.tight_capacity_bps - rc;
      return true;
    }
    return false;
  };

  std::vector<double> igis, ptrs;
  for (std::size_t phase = 0; phase < cfg_.repetitions; ++phase) {
    double igi = 0.0, ptr = 0.0;
    if (search_once(igi, ptr)) {
      decision(transport, "phase", "turning-point", phase, igi, ptr);
      igis.push_back(igi);
      ptrs.push_back(ptr);
    } else if (abort == AbortReason::kNone) {
      decision(transport, "phase", "no-turning-point", phase, 0.0);
    }
    if (abort != AbortReason::kNone) {
      Estimate e = abort_estimate(abort, name());
      e.cost = transport.cost();
      return e;
    }
  }
  if (igis.empty()) {
    Estimate e = Estimate::aborted(AbortReason::kInsufficientData,
                                   "igi/ptr: no turning point in any phase");
    e.diag("phases_used", 0.0);
    e.diag("phases", static_cast<double>(cfg_.repetitions));
    e.diag("trains", static_cast<double>(trains_used_));
    e.cost = transport.cost();
    return e;
  }

  last_igi_ = stats::median(igis);
  last_ptr_ = stats::median(ptrs);
  double point = formula_ == IgiPtrFormula::kIgi ? last_igi_ : last_ptr_;
  Estimate e = Estimate::point(point);
  e.cost = transport.cost();
  e.detail = "phases=" + std::to_string(igis.size()) + "/" +
             std::to_string(cfg_.repetitions) +
             " trains=" + std::to_string(trains_used_);
  e.diag("phases_used", static_cast<double>(igis.size()));
  e.diag("phases", static_cast<double>(cfg_.repetitions));
  e.diag("trains", static_cast<double>(trains_used_));
  e.diag("igi_bps", last_igi_);
  e.diag("ptr_bps", last_ptr_);
  return e;
}

}  // namespace abw::est
