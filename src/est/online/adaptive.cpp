#include "est/online/adaptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "probe/stream_spec.hpp"

namespace abw::est::online {

AdaptiveProber::AdaptiveProber(const AdaptiveConfig& cfg)
    : cfg_(cfg), kalman_(cfg.kalman), rng_(cfg.seed) {
  if (cfg_.min_rate_bps <= 0.0 || cfg_.max_rate_bps <= cfg_.min_rate_bps)
    throw std::invalid_argument("AdaptiveProber: bad rate bracket");
  if (cfg_.packets_per_stream < 2 || cfg_.packet_size == 0)
    throw std::invalid_argument("AdaptiveProber: bad stream shape");
  if (cfg_.explore_fraction < 0.0 || cfg_.explore_fraction > 1.0)
    throw std::invalid_argument("AdaptiveProber: explore_fraction not in [0,1]");
}

double AdaptiveProber::explore_rate() {
  // Geometric sweep over the bracket (8 points per lap): deterministic
  // coverage that re-acquires the signal wherever A moved.
  constexpr std::uint32_t kLap = 8;
  double frac = static_cast<double>(sweep_phase_ % kLap) /
                static_cast<double>(kLap - 1);
  sweep_phase_++;
  return cfg_.min_rate_bps *
         std::pow(cfg_.max_rate_bps / cfg_.min_rate_bps, frac);
}

double AdaptiveProber::next_rate_bps() {
  const Belief& b = belief();
  if (!b.valid() || b.confidence < cfg_.min_confidence) return explore_rate();
  if (rng_.uniform01() < cfg_.explore_fraction) return explore_rate();
  double factor = cfg_.exploit_factors[exploit_phase_ % 3];
  exploit_phase_++;
  return std::clamp(factor * b.estimate_bps, cfg_.min_rate_bps,
                    cfg_.max_rate_bps);
}

FeedResult AdaptiveProber::step(probe::Transport& transport) {
  if (exhausted()) return FeedResult::kExhausted;
  // Pre-send admission control: never put a stream on the wire that the
  // budget could not pay for.  feed() re-checks and freezes the belief
  // with the structured abort when the limit actually trips.
  const EstimatorLimits& lim = limits();
  if (lim.max_probe_packets > 0 &&
      packets_consumed() + cfg_.packets_per_stream > lim.max_probe_packets) {
    OnlineSample poison;
    poison.time = transport.now();
    poison.packets = cfg_.packets_per_stream;
    return feed(poison);  // trips the budget, freezes, emits the decision
  }
  double rate = next_rate_bps();
  probe::StreamResult res = transport.send_stream(probe::StreamSpec::periodic(
      rate, cfg_.packet_size, cfg_.packets_per_stream));
  return feed(res);
}

bool AdaptiveProber::do_update(const OnlineSample& s) {
  // Delegate the belief to the inner Kalman tracker; admission control
  // and observability already ran in this wrapper, so feed the tracker's
  // technique directly (its own limits stay unlimited).
  FeedResult r = kalman_.feed(s);
  belief_ = kalman_.belief();
  return r == FeedResult::kUpdated;
}

}  // namespace abw::est::online
