#include "est/online/online.hpp"

#include <algorithm>
#include <string>

namespace abw::est::online {

std::string_view feed_result_name(FeedResult r) {
  switch (r) {
    case FeedResult::kUpdated: return "updated";
    case FeedResult::kRejected: return "rejected";
    case FeedResult::kExhausted: return "exhausted";
  }
  return "unknown";
}

OnlineSample OnlineEstimator::to_sample(const probe::StreamResult& res) {
  OnlineSample s;
  s.rate_bps = res.output_rate_bps();
  s.input_rate_bps = res.input_rate_bps();
  // Strain as the mean relative gap dilation over consecutive *received*
  // pairs, not the aggregate Ri/Ro - 1: a lost packet merges two gaps on
  // both the send and receive side, so the ratio still measures the
  // fluid-model dilation, whereas aggregate Ro loses the dropped bits and
  // reads phantom congestion at any rate (for complete streams the two
  // definitions coincide: dr/ds = Ri/Ro per gap).  Reordered pairs
  // contribute negative dilation and average out.
  double dilation = 0.0;
  std::size_t gaps = 0;
  const probe::ProbeRecord* prev = nullptr;
  for (const auto& p : res.packets) {
    if (p.lost) continue;
    if (prev != nullptr) {
      sim::SimTime ds = p.sent - prev->sent;
      if (ds > 0) {
        dilation += static_cast<double>(p.received - prev->received -
                                        static_cast<std::int64_t>(ds)) /
                    static_cast<double>(ds);
        ++gaps;
      }
    }
    prev = &p;
  }
  if (gaps > 0)
    s.strain = std::max(0.0, dilation / static_cast<double>(gaps));
  else if (s.rate_bps > 0.0 && s.input_rate_bps > 0.0)
    s.strain = std::max(0.0, s.input_rate_bps / s.rate_bps - 1.0);
  s.packets = res.packets.size();
  s.impaired = res.impaired();
  sim::SimTime t = 0;
  bool any = false;
  for (const auto& p : res.packets) {
    if (p.lost) continue;
    any = true;
    t = std::max(t, p.received);
  }
  if (!any && !res.packets.empty()) t = res.packets.back().sent;
  s.time = t;
  return s;
}

FeedResult OnlineEstimator::feed(const OnlineSample& s) {
  if (abort_ != AbortReason::kNone) return FeedResult::kExhausted;

  // Admission control, before any state moves: a sample that would bust
  // the budget or the deadline never reaches the tracker.
  AbortReason tripped = AbortReason::kNone;
  if (limits_.max_probe_packets > 0 &&
      packets_consumed_ + s.packets > limits_.max_probe_packets)
    tripped = AbortReason::kProbeBudgetExhausted;
  else if (limits_.deadline > 0 && saw_sample_ &&
           s.time - first_sample_time_ >= limits_.deadline)
    tripped = AbortReason::kDeadline;
  if (tripped != AbortReason::kNone) {
    abort_ = tripped;
    if (metrics_) {
      std::string key = "online.";
      key += name();
      key += ".abort.";
      key += abort_reason_name(tripped);
      metrics_->counter(key).add();
    }
    decision(s.time, "admission", abort_reason_name(tripped),
             belief_.estimate_bps, belief_.confidence);
    return FeedResult::kExhausted;
  }

  if (!saw_sample_) {
    saw_sample_ = true;
    first_sample_time_ = s.time;
  }
  packets_consumed_ += s.packets;

  bool used = do_update(s);
  if (used) {
    ++belief_.updates;
    belief_.last_update = s.time;
  }
  if (metrics_) {
    std::string prefix = "online.";
    prefix += name();
    metrics_->counter(prefix + (used ? ".updates" : ".rejected")).add();
    if (belief_.valid()) {
      metrics_->gauge(prefix + ".estimate_bps").set(belief_.estimate_bps);
      metrics_->gauge(prefix + ".confidence").set(belief_.confidence);
    }
  }
  decision(s.time, "update", used ? "updated" : "rejected",
           belief_.estimate_bps, belief_.confidence);
  return used ? FeedResult::kUpdated : FeedResult::kRejected;
}

FeedResult OnlineEstimator::feed(const probe::StreamResult& res) {
  return feed(to_sample(res));
}

void OnlineEstimator::decision(sim::SimTime t, std::string_view what,
                               std::string_view outcome, double value,
                               double aux) {
  if (!trace_) return;
  obs::TraceEvent ev;
  ev.kind = obs::EventKind::kDecision;
  ev.time = t;
  ev.source = name();
  ev.label = what;
  ev.text = outcome;
  ev.count = belief_.updates;
  ev.value = value;
  ev.value2 = aux;
  trace_->emit(ev);
}

}  // namespace abw::est::online
