#include "est/online/kalman.hpp"

#include <algorithm>
#include <cmath>

namespace abw::est::online {

KalmanTracker::KalmanTracker(const KalmanConfig& cfg) : cfg_(cfg) {
  innovations_.reserve(cfg_.innovation_window);
}

bool KalmanTracker::do_update(const OnlineSample& s) {
  if (s.input_rate_bps <= 0.0 || s.rate_bps <= 0.0) return false;
  const double r = s.input_rate_bps / 1e6;  // Mb/s keeps alpha ~ beta*r
  const double z = std::max(0.0, s.strain);
  const bool congested = z > cfg_.strain_floor;

  // Predicted strain at this rate under the current line.
  const double pred = a_ + b_ * r;

  if (!congested && (!primed_ || pred <= cfg_.strain_floor)) {
    // Consistent sub-knee sample: Ro ~ Ri and the line agrees (or no line
    // yet).  The linear model says nothing below the knee, so the state
    // must not move — but "A is at least Ri" is still information: lift
    // an estimate the sample contradicts.
    if (primed_ && belief_.valid() && s.input_rate_bps > belief_.estimate_bps) {
      belief_.estimate_bps = s.input_rate_bps;
      refresh_belief(s.time);
    }
    return primed_;  // pre-priming sub-knee samples are unusable
  }

  // Scalar Kalman update of h = (alpha, beta), H = [1, r].
  const double q = cfg_.process_noise;
  p_[0] += q;
  p_[3] += q * 1e-4;  // beta = 1/Ct drifts far slower than alpha = -A/Ct
  const double ph0 = p_[0] + p_[1] * r;   // P H^T
  const double ph1 = p_[2] + p_[3] * r;
  const double innov_var = ph0 + ph1 * r + cfg_.measurement_noise;  // H P H^T + R
  const double innovation = z - pred;
  const double k0 = ph0 / innov_var;
  const double k1 = ph1 / innov_var;
  a_ += k0 * innovation;
  b_ += k1 * innovation;
  // Joseph-free covariance update P = (I - K H) P.
  const double p0 = p_[0], p1 = p_[1], p2 = p_[2], p3 = p_[3];
  p_[0] = p0 - k0 * (p0 + r * p2);
  p_[1] = p1 - k0 * (p1 + r * p3);
  p_[2] = p2 - k1 * (p0 + r * p2);
  p_[3] = p3 - k1 * (p1 + r * p3);
  primed_ = true;

  // Change-point watch: standardized innovations drift one-sided when the
  // underlying regime moved.  On alarm, inflate P so the next few samples
  // dominate the stale state, and restart the window.
  innovations_.push_back(innovation / std::sqrt(innov_var));
  if (innovations_.size() > cfg_.innovation_window)
    innovations_.erase(innovations_.begin());
  if (innovations_.size() >= 8) {
    if (auto shift = stats::detect_level_shift(innovations_, cfg_.cusum)) {
      // Re-acquisition: inflate P, but never below the fresh prior — a
      // converged filter's P is so small that a bare multiply leaves the
      // slope state adapting orders of magnitude too slowly (the MR-BART
      // reset heuristic).
      p_[0] = std::max(p_[0] * cfg_.covariance_inflation, 1.0);
      p_[1] = 0.0;
      p_[2] = 0.0;
      p_[3] = std::max(p_[3] * cfg_.covariance_inflation, 1e-2);
      innovations_.clear();
      ++change_points_;
      decision(s.time, "change-point", shift->upward ? "up" : "down",
               belief_.estimate_bps, static_cast<double>(change_points_));
    }
  }

  // A physically meaningful line has beta > 0 (strain grows with rate).
  if (b_ > 1e-6) {
    belief_.estimate_bps = std::max(0.0, -a_ / b_) * 1e6;
    refresh_belief(s.time);
  }
  return true;
}

void KalmanTracker::refresh_belief(sim::SimTime t) {
  // Delta-method variance of A = -alpha/beta from P, mapped to a [0, 1]
  // confidence: 1 when the estimate's relative sigma is ~0, -> 0 as the
  // uncertainty reaches the estimate itself.
  belief_.last_update = t;
  if (b_ <= 1e-6) return;
  const double g0 = -1.0 / b_;          // dA/dalpha
  const double g1 = a_ / (b_ * b_);     // dA/dbeta
  double var = g0 * (p_[0] * g0 + p_[1] * g1) + g1 * (p_[2] * g0 + p_[3] * g1);
  var = std::max(var, 0.0);
  const double rel =
      std::sqrt(var) * 1e6 / std::max(belief_.estimate_bps, 1e5);
  belief_.confidence = std::clamp(1.0 / (1.0 + rel), 0.0, 1.0);
}

}  // namespace abw::est::online
