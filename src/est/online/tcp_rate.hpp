// Passive online estimation from TCP delivery-rate samples.
//
// A bulk TCP flow continuously measures the path for free: each ACK
// yields a delivery-rate sample bw = min(send_rate, ack_rate) (the
// tcp_rate.c estimator; see tcp/tcp.hpp's DeliveryRateSample).  The
// tracker maintains a windowed maximum of recent samples — the congestion
// window's sawtooth probes above and below the sustainable rate, and the
// window-max recovers the rate the path could deliver, while app-limited
// samples may only *raise* the estimate (they understate the network).
//
// What this estimates is the flow's achievable throughput, which the
// paper's Fig. 7 shows is systematically NOT the avail-bw (it depends on
// Wr and on cross-traffic responsiveness) — exactly why a passive tracker
// belongs in the comparison: it is the cheapest online estimator and the
// one real applications (ABR video, transport stacks) actually consult.
#pragma once

#include <deque>
#include <utility>

#include "est/online/online.hpp"
#include "tcp/tcp.hpp"

namespace abw::est::online {

/// Windowed-max filter parameters.
struct TcpRateConfig {
  /// Samples older than this fall out of the max filter.  Roughly a few
  /// RTT-sawtooth periods: long enough to span a loss recovery, short
  /// enough to track a capacity flap.
  sim::SimTime window = 2 * sim::kSecond;
  /// Samples needed in the window for full confidence.
  std::uint64_t full_confidence_samples = 32;
};

/// Passive delivery-rate tracker.  Attach to a TcpConnection (or feed
/// samples directly); the estimate is the windowed max delivery rate.
class TcpDeliveryRateTracker final : public OnlineEstimator {
 public:
  explicit TcpDeliveryRateTracker(const TcpRateConfig& cfg = {});

  std::string_view name() const override { return "tcp-rate"; }

  /// Installs this tracker as `conn`'s rate-sample hook.  The connection
  /// must outlive the tracker's use; re-attaching replaces the hook.
  void attach(tcp::TcpConnection& conn);

  /// Feeds one delivery-rate sample directly (what attach() wires up).
  FeedResult feed_delivery(const tcp::DeliveryRateSample& s);

  /// Samples currently inside the max window.
  std::size_t window_samples() const { return window_.size(); }

 protected:
  bool do_update(const OnlineSample& s) override;

 private:
  TcpRateConfig cfg_;
  std::deque<std::pair<sim::SimTime, double>> window_;  ///< (time, rate)
};

}  // namespace abw::est::online
