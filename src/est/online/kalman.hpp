// BART/MR-BART-family Kalman tracker over (rate, strain) samples.
//
// BART's model (Ekelin et al.; "MR-BART: Multi-Rate Available Bandwidth
// Estimation in Real-Time" extends it) is the fluid single-hop relation
// the paper derives as Eq. 8: for a probing stream of input rate Ri above
// the avail-bw A, the inter-packet strain
//
//   eps(Ri) = Ri/Ro - 1 = (Ri - A) / Ct = alpha + beta * Ri
//
// is LINEAR in Ri, with slope beta = 1/Ct and intercept alpha = -A/Ct, so
// the avail-bw is the zero crossing A = -alpha/beta.  The tracker runs a
// two-state Kalman filter on h = (alpha, beta): each congested sample is
// a scalar measurement z = eps with H = [1, Ri]; uncongested samples
// (z ~ 0) update only when the current line wrongly predicts congestion
// at Ri — below the knee the linear model does not hold, and folding such
// samples in unconditionally would bias the slope.
//
// Time variation: between updates the state diffuses by the process noise
// Q, and a two-sided CUSUM (stats/cusum) over the standardized innovation
// sequence detects level shifts — a capacity flap or a cross-traffic
// regime change makes innovations systematically one-sided long before
// the slow Q-diffusion catches up.  On detection the error covariance P
// is inflated, which makes the filter re-converge to the new regime in a
// handful of samples instead of hundreds (the MR-BART reset heuristic).
#pragma once

#include <cstddef>
#include <vector>

#include "est/online/online.hpp"
#include "stats/cusum.hpp"

namespace abw::est::online {

/// Kalman tracker parameters.  Rates are handled internally in Mb/s so
/// alpha and beta have comparable magnitudes; all config rates are bps.
struct KalmanConfig {
  /// Per-update random-walk variance of (alpha, beta) — how fast the
  /// tracker assumes the path can drift between samples.
  double process_noise = 1e-6;
  /// Measurement variance of one strain sample (packet-granularity noise
  /// around the fluid line; paper Fig. 5 shows this jitter).
  double measurement_noise = 4e-4;
  /// Strain at or below this reads as "uncongested" (Ro ~ Ri).
  double strain_floor = 0.02;
  /// Innovations kept for change-point detection.
  std::size_t innovation_window = 32;
  /// CUSUM config over the standardized innovation window.
  stats::CusumConfig cusum{0.5, 6.0};
  /// Multiplier applied to P when a level shift is detected.
  double covariance_inflation = 64.0;
};

/// The BART-family tracker.  Feed active-probing samples (strain + Ri);
/// passive samples (input_rate == 0) are rejected as unusable.
class KalmanTracker final : public OnlineEstimator {
 public:
  explicit KalmanTracker(const KalmanConfig& cfg = {});

  std::string_view name() const override { return "kalman"; }

  /// Change points detected (covariance inflations) so far.
  std::uint64_t change_points() const { return change_points_; }

  /// Current state, for introspection/tests: strain ~ alpha + beta * r
  /// with r in Mb/s.
  double alpha() const { return a_; }
  double beta() const { return b_; }

 protected:
  bool do_update(const OnlineSample& s) override;

 private:
  void refresh_belief(sim::SimTime t);

  KalmanConfig cfg_;
  // State h = (alpha, beta) and covariance P (row-major 2x2).
  double a_ = 0.0;
  double b_ = 0.0;
  double p_[4] = {1.0, 0.0, 0.0, 1e-2};
  bool primed_ = false;  ///< saw at least one congested sample
  std::vector<double> innovations_;  ///< standardized, for CUSUM
  std::uint64_t change_points_ = 0;
};

}  // namespace abw::est::online
