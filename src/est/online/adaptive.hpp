// Adaptive probe-rate controller: pick the next stream's rate from the
// current belief instead of sweeping a fixed grid.
//
// The fixed sweeps of the offline tools spend most of their probes at
// rates that teach nothing (far below or far above A).  Following the
// measurement-based online estimation literature (Khangura & Akin's
// reinforcement-learning probe controller, PAPERS.md), this controller
// treats rate selection as an explore/exploit decision against a belief
// maintained by an inner KalmanTracker:
//
//  * exploit (most probes): cycle rates that straddle the current
//    estimate — slightly below confirms the knee, moderately above
//    produces the congested strain samples the Kalman line feeds on;
//  * explore (an epsilon fraction, plus whenever the belief is invalid
//    or its confidence collapses): geometric sweep over the configured
//    bracket, which is what re-acquires the signal after a regime change
//    moved A far from the belief.
//
// Budget/deadline admission control is enforced BEFORE sending: a stream
// that would bust the probe budget is never put on the wire.
#pragma once

#include <cstdint>

#include "est/online/kalman.hpp"
#include "est/online/online.hpp"
#include "probe/transport.hpp"
#include "stats/rng.hpp"

namespace abw::est::online {

/// Controller parameters.
struct AdaptiveConfig {
  double min_rate_bps = 2e6;    ///< exploration bracket low edge
  double max_rate_bps = 100e6;  ///< exploration bracket high edge
  std::uint32_t packet_size = 1200;
  std::size_t packets_per_stream = 60;
  /// Fraction of probes spent exploring the bracket regardless of belief.
  double explore_fraction = 0.15;
  /// Exploit rates as multiples of the current estimate (clamped to the
  /// bracket); cycled in order.
  double exploit_factors[3] = {0.85, 1.1, 1.35};
  /// Explore when confidence drops below this (signal lost).
  double min_confidence = 0.05;
  KalmanConfig kalman;  ///< inner belief tracker
  std::uint64_t seed = 0xADAB;
};

/// Active streaming estimator driving a ProbeSession.
class AdaptiveProber final : public OnlineEstimator {
 public:
  explicit AdaptiveProber(const AdaptiveConfig& cfg = {});

  std::string_view name() const override { return "adaptive"; }

  /// The rate the next stream will probe at, chosen from the belief.
  /// Deterministic given the seed and feed history.
  double next_rate_bps();

  /// Sends one stream at next_rate_bps() through `transport` and feeds
  /// the result.  Returns kExhausted (sending nothing) once the next
  /// stream would exceed the probe budget or the deadline has passed.
  FeedResult step(probe::Transport& transport);

  /// Deprecated: wraps `session` in a SimTransport.
  FeedResult step(probe::ProbeSession& session) {
    probe::SimTransport transport(session);
    return step(transport);
  }

  /// The inner Kalman tracker (for introspection/tests).
  const KalmanTracker& tracker() const { return kalman_; }

 protected:
  bool do_update(const OnlineSample& s) override;

 private:
  double explore_rate();

  AdaptiveConfig cfg_;
  KalmanTracker kalman_;
  stats::Rng rng_;
  std::uint32_t exploit_phase_ = 0;
  std::uint32_t sweep_phase_ = 0;
};

}  // namespace abw::est::online
