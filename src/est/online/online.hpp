// Streaming (online) avail-bw estimation — the API the paper's central
// pitfalls demand and one-shot tools cannot provide.
//
// Avail-bw is a time-varying process A_tau(t) (paper Eqs. 1-3); a one-shot
// tool silently averages over whatever happened during its measurement.
// An OnlineEstimator instead consumes measurements *incrementally* — one
// probe::StreamResult or passive delivery sample at a time — and maintains
// a continuously updated belief {estimate, confidence, last_update} that
// can be queried at any simulated time.  Three trackers implement it:
//
//  * KalmanTracker (online/kalman.hpp): BART/MR-BART-family Kalman filter
//    over (rate, strain) samples, with CUSUM change-point detection
//    (stats/cusum) inflating the error covariance so the filter re-locks
//    quickly after capacity flaps;
//  * TcpDeliveryRateTracker (online/tcp_rate.hpp): passive estimator over
//    TCP delivery-rate samples (bw = min(send_rate, ack_rate), app-limited
//    marking — the tcp_rate.c design) from the Reno stack in src/tcp/;
//  * AdaptiveProber (online/adaptive.hpp): an active controller that picks
//    each next stream's rate from the current belief instead of sweeping a
//    fixed grid.
//
// EstimatorLimits act as *per-update admission control*: a sample that
// would push the tracker past its probe-packet budget or deadline is
// rejected and the belief freezes with a structured AbortReason, exactly
// like the offline tools' LimitGuard.  Every accepted/rejected update can
// emit a decision trace event and per-tracker metrics (obs/).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <string_view>

#include "est/estimator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "probe/stream_result.hpp"
#include "sim/time.hpp"

namespace abw::est::online {

/// One incremental measurement fed to a tracker.  Active probing fills
/// rate/input_rate/strain from a StreamResult; passive TCP sampling fills
/// rate (the delivery rate) with input_rate == 0.
struct OnlineSample {
  sim::SimTime time = 0;        ///< measurement timestamp (sim clock)
  double rate_bps = 0.0;        ///< measured output/delivery rate
  double input_rate_bps = 0.0;  ///< offered rate Ri (0 = passive sample)
  double strain = 0.0;          ///< Ri/Ro - 1, >= 0 once the link congests
  std::uint64_t packets = 0;    ///< probe packets this sample cost (0 = free)
  bool impaired = false;        ///< loss/dup/reorder in the underlying stream
  bool app_limited = false;     ///< passive: the sender ran out of data
};

/// The tracker's current belief about the avail-bw process.
struct Belief {
  double estimate_bps = std::numeric_limits<double>::quiet_NaN();
  double confidence = 0.0;      ///< [0, 1]; heuristic, tracker-specific
  sim::SimTime last_update = 0; ///< sim time of the last accepted sample
  std::uint64_t updates = 0;    ///< accepted samples so far

  /// True once the tracker has formed an estimate.  NaN (never a zero)
  /// before that — same contract as Estimate::point_bps().
  bool valid() const { return std::isfinite(estimate_bps); }
};

/// What happened to one fed sample.
enum class FeedResult : std::uint8_t {
  kUpdated,   ///< accepted; the belief moved (or was reaffirmed)
  kRejected,  ///< unusable for this tracker (e.g. empty stream); belief kept
  kExhausted, ///< admission control tripped; belief frozen, see abort()
};

std::string_view feed_result_name(FeedResult r);

/// Base class of all streaming estimators: admission control, belief
/// storage, and observability live here; trackers implement do_update().
class OnlineEstimator {
 public:
  virtual ~OnlineEstimator() = default;

  /// Tracker name, e.g. "kalman" ("online.<name>.*" metric prefix).
  virtual std::string_view name() const = 0;

  /// Feeds one sample.  Admission control runs first: once the cumulative
  /// probe-packet budget or the deadline (measured from the first fed
  /// sample) would be exceeded, the sample is dropped, the belief freezes,
  /// and every later feed returns kExhausted immediately.
  FeedResult feed(const OnlineSample& s);

  /// Convenience: converts a received stream into a sample (to_sample)
  /// and feeds it.
  FeedResult feed(const probe::StreamResult& res);

  /// The continuously updated belief; query at any time.
  const Belief& belief() const { return belief_; }

  /// kNone until admission control trips, then the tripped limit.
  AbortReason abort() const { return abort_; }
  bool exhausted() const { return abort_ != AbortReason::kNone; }

  /// Per-update admission control (0 = unlimited): max_probe_packets caps
  /// the cumulative OnlineSample::packets accepted, deadline caps
  /// sample.time - first_sample.time.
  void set_limits(const EstimatorLimits& limits) { limits_ = limits; }
  const EstimatorLimits& limits() const { return limits_; }

  /// Probe packets consumed by accepted samples so far.
  std::uint64_t packets_consumed() const { return packets_consumed_; }

  /// Attaches observability: per-update decision events to `trace`,
  /// update/reject counters and belief gauges to `metrics`.  Either may
  /// be nullptr (default — one branch of overhead).  Not owned.
  void set_observer(obs::TraceSink* trace, obs::MetricsRegistry* metrics) {
    trace_ = trace;
    metrics_ = metrics;
  }

  /// Derives the measurement sample of one received stream: Ro, Ri,
  /// strain = max(0, Ri/Ro - 1), packet cost, impairment flag.  The
  /// timestamp is the last receive time (falls back to the last send time
  /// for fully lost streams).
  static OnlineSample to_sample(const probe::StreamResult& res);

 protected:
  /// Technique hook: consume an admitted sample and update belief_.
  /// Returns false to report the sample as unusable (kRejected) — the
  /// sample's packet cost still counts against the budget (the probes
  /// were sent either way).
  virtual bool do_update(const OnlineSample& s) = 0;

  /// Emits one per-update decision trace event (no-op without a sink).
  void decision(sim::SimTime t, std::string_view what,
                std::string_view outcome, double value, double aux = 0.0);

  bool tracing() const { return trace_ != nullptr; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  Belief belief_;

 private:
  EstimatorLimits limits_;
  AbortReason abort_ = AbortReason::kNone;
  std::uint64_t packets_consumed_ = 0;
  sim::SimTime first_sample_time_ = 0;
  bool saw_sample_ = false;
  obs::TraceSink* trace_ = nullptr;          // not owned; nullptr = off
  obs::MetricsRegistry* metrics_ = nullptr;  // not owned; nullptr = off
};

}  // namespace abw::est::online
