#include "est/online/tcp_rate.hpp"

#include <algorithm>

namespace abw::est::online {

TcpDeliveryRateTracker::TcpDeliveryRateTracker(const TcpRateConfig& cfg)
    : cfg_(cfg) {}

void TcpDeliveryRateTracker::attach(tcp::TcpConnection& conn) {
  conn.set_rate_sample_hook(
      [this](const tcp::DeliveryRateSample& s) { feed_delivery(s); });
}

FeedResult TcpDeliveryRateTracker::feed_delivery(
    const tcp::DeliveryRateSample& s) {
  OnlineSample o;
  o.time = s.time;
  o.rate_bps = s.delivery_rate_bps;
  o.app_limited = s.app_limited;
  // Passive samples cost no probe packets; the budget limit never trips,
  // the deadline still does.
  o.packets = 0;
  return feed(o);
}

bool TcpDeliveryRateTracker::do_update(const OnlineSample& s) {
  if (!(s.rate_bps > 0.0)) return false;
  // tcp_rate.c contract: an app-limited sample reflects the application,
  // not the path — it may confirm or raise the estimate, never lower it.
  if (s.app_limited && belief_.valid() && s.rate_bps <= belief_.estimate_bps)
    return false;
  window_.emplace_back(s.time, s.rate_bps);
  while (!window_.empty() && window_.front().first < s.time - cfg_.window)
    window_.pop_front();
  double best = 0.0;
  for (const auto& [t, rate] : window_) best = std::max(best, rate);
  belief_.estimate_bps = best;
  belief_.confidence = std::min(
      1.0, static_cast<double>(window_.size()) /
               static_cast<double>(cfg_.full_confidence_samples));
  return true;
}

}  // namespace abw::est::online
