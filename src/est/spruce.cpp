#include "est/spruce.hpp"

#include <algorithm>
#include <stdexcept>

#include "probe/stream_spec.hpp"
#include "stats/moments.hpp"

namespace abw::est {

Spruce::Spruce(const SpruceConfig& cfg, stats::Rng rng)
    : cfg_(cfg), rng_(std::move(rng)) {
  if (cfg.tight_capacity_bps <= 0.0)
    throw std::invalid_argument("Spruce: tight_capacity_bps required");
  if (cfg.packet_size == 0 || cfg.pair_count == 0 || cfg.mean_pair_gap <= 0)
    throw std::invalid_argument("Spruce: bad parameters");
}

Estimate Spruce::do_estimate(probe::Transport& transport) {
  samples_.clear();
  samples_.reserve(cfg_.pair_count);

  // One long pair-train stream: pairs at rate Ct, exponential spacing.
  // A probe budget trims the train up front (the single stream is the
  // whole measurement, so there is no between-stream point to abort at).
  std::size_t pairs = cfg_.pair_count;
  if (limits_.max_probe_packets > 0)
    pairs = std::min<std::size_t>(
        pairs, static_cast<std::size_t>(limits_.max_probe_packets / 2));
  if (pairs == 0)
    return Estimate::aborted(AbortReason::kProbeBudgetExhausted,
                             "spruce: probe budget below one pair");
  probe::StreamSpec spec = probe::StreamSpec::pair_train(
      cfg_.tight_capacity_bps, cfg_.packet_size, pairs,
      cfg_.mean_pair_gap, rng_);
  probe::StreamResult res = transport.send_stream(spec);

  double gin = sim::to_seconds(
      sim::transmission_time(cfg_.packet_size, cfg_.tight_capacity_bps));

  std::size_t pairs_lost = 0;
  for (std::size_t p = 0; p + 1 < res.packets.size(); p += 2) {
    const probe::ProbeRecord& a = res.packets[p];
    const probe::ProbeRecord& b = res.packets[p + 1];
    if (a.lost || b.lost) {
      ++pairs_lost;
      continue;
    }
    double gout = sim::to_seconds(b.received - a.received);
    double sample = cfg_.tight_capacity_bps * (1.0 - (gout - gin) / gin);
    // Spruce clamps samples into [0, Ct].
    samples_.push_back(std::clamp(sample, 0.0, cfg_.tight_capacity_bps));
  }

  if (samples_.empty()) {
    Estimate e = Estimate::aborted(AbortReason::kInsufficientData,
                                   "spruce: all pairs lost");
    e.diag("pairs_used", 0.0);
    e.diag("pairs_lost", static_cast<double>(pairs_lost));
    e.cost = transport.cost();
    return e;
  }
  Estimate e = Estimate::point(stats::mean(samples_));
  e.cost = transport.cost();
  e.detail = "pairs=" + std::to_string(samples_.size());
  e.diag("pairs_used", static_cast<double>(samples_.size()));
  e.diag("pairs_lost", static_cast<double>(pairs_lost));
  return e;
}

}  // namespace abw::est
