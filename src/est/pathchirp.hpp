// pathChirp (Ribeiro, Riedi, Baraniuk, Navratil & Cottrell, PAM 2003):
// iterative probing with "chirps" — trains whose inter-packet gaps shrink
// exponentially, so one N-packet chirp probes N-1 rates at once (the
// efficiency the paper's classification section highlights).
//
// Per-chirp analysis is the excursion-segmentation algorithm: the
// queueing-delay signature q_k of the chirp is segmented into excursions
// (q rises above zero and returns).  Rules, per the original paper:
//   (a) packets in the rising phase of a qualifying excursion contribute
//       E_k = R_k (their instantaneous probing rate);
//   (b) if the final excursion never terminates (delays keep growing to
//       the chirp's end), every packet from its start i* contributes
//       E_k = R_{i*};
//   (c) packets outside excursions contribute E_k = R_N-1, the chirp's
//       top rate (no queue buildup even at the highest rate probed).
// The chirp estimate is the interarrival-weighted average of E_k; the
// tool's output averages several chirps.
#pragma once

#include "est/estimator.hpp"

namespace abw::est {

/// Parameters of pathChirp.
struct PathChirpConfig {
  double low_rate_bps = 2e6;    ///< rate probed by the first (widest) gap
  double spread_factor = 1.2;   ///< gamma: consecutive-gap shrink ratio
  std::uint32_t packet_size = 1000;
  std::size_t packets_per_chirp = 24;  ///< probes low * gamma^(N-2) at the top
  std::size_t chirps = 16;             ///< chirps averaged per estimate
  sim::SimTime inter_chirp_gap = 40 * sim::kMillisecond;
  std::size_t min_excursion_len = 3;   ///< packets for a qualifying excursion
  double busy_threshold_fraction = 0.05;  ///< of max q to call "queueing"
  /// Packets to pull the detected congestion onset BACK by.  A causal
  /// smoothing filter (S-chirp) delays every threshold crossing by up to
  /// its window length, so the final excursion appears to start late;
  /// smoothed variants set this to window-1 to compensate.
  std::size_t onset_backoff_packets = 0;
};

/// The pathChirp estimator.
class PathChirp final : public Estimator {
 public:
  explicit PathChirp(const PathChirpConfig& cfg);

  std::string_view name() const override { return "pathchirp"; }
  ProbingClass probing_class() const override { return ProbingClass::kIterative; }

  /// Analyzes one chirp's OWD signature given the probed instantaneous
  /// rates; returns the chirp's weighted avail-bw estimate, or 0 if the
  /// chirp was unusable.  Exposed for unit tests of the excursion rules.
  double analyze_chirp(const std::vector<double>& owds_seconds,
                       const std::vector<double>& rates_bps,
                       const std::vector<double>& gaps_seconds) const;

  /// Per-chirp estimates from the last estimate() call.
  const std::vector<double>& last_chirp_estimates() const { return chirp_estimates_; }

 protected:
  Estimate do_estimate(probe::Transport& transport) override;

 private:
  PathChirpConfig cfg_;
  std::vector<double> chirp_estimates_;
};

}  // namespace abw::est
