#include "est/pathload.hpp"

#include <algorithm>
#include <stdexcept>

#include "probe/stream_spec.hpp"

namespace abw::est {

Pathload::Pathload(const PathloadConfig& cfg) : cfg_(cfg) {
  if (cfg.min_rate_bps <= 0.0 || cfg.max_rate_bps <= cfg.min_rate_bps)
    throw std::invalid_argument("Pathload: bad rate bracket");
  if (cfg.packets_per_stream < 10 || cfg.streams_per_fleet == 0)
    throw std::invalid_argument("Pathload: bad fleet geometry");
  if (cfg.resolution_bps <= 0.0)
    throw std::invalid_argument("Pathload: bad resolution");
}

FleetVerdict Pathload::probe_fleet(probe::Transport& transport, double rate_bps) {
  std::size_t increasing = 0;
  std::size_t non_increasing = 0;
  std::size_t usable = 0;

  for (std::size_t s = 0; s < cfg_.streams_per_fleet; ++s) {
    if (guard_ != nullptr &&
        (abort_ = guard_->exceeded()) != AbortReason::kNone)
      break;  // estimate() aborts right after; the verdict is discarded
    probe::StreamSpec spec = probe::StreamSpec::periodic(
        rate_bps, cfg_.packet_size, cfg_.packets_per_stream);
    probe::StreamResult res = transport.send_stream(spec, cfg_.inter_stream_gap);
    if (res.lost_count() * 10 > res.packets.size()) {
      // Loss above 10% is itself a congestion signal (the Pathload
      // paper's rule) — essential with shallow buffers, where the OWD
      // saturates at the queue cap and shows no trend while packets drop.
      ++increasing;
      ++usable;
      continue;
    }
    std::vector<double> owds = res.owds_seconds();
    switch (stats::combined_trend(owds, cfg_.trend)) {
      case stats::Trend::kIncreasing: ++increasing; ++usable; break;
      case stats::Trend::kNonIncreasing: ++non_increasing; ++usable; break;
      case stats::Trend::kAmbiguous: ++usable; break;
    }
  }

  if (usable == 0) return FleetVerdict::kGrey;
  double frac_inc = static_cast<double>(increasing) / static_cast<double>(usable);
  double frac_non = static_cast<double>(non_increasing) / static_cast<double>(usable);
  if (frac_inc >= cfg_.fleet_decisive_fraction) return FleetVerdict::kAboveAvailBw;
  if (frac_non >= cfg_.fleet_decisive_fraction) return FleetVerdict::kBelowAvailBw;
  return FleetVerdict::kGrey;
}

namespace {

std::string_view fleet_verdict_name(FleetVerdict v) {
  switch (v) {
    case FleetVerdict::kAboveAvailBw: return "above";
    case FleetVerdict::kBelowAvailBw: return "below";
    case FleetVerdict::kGrey: return "grey";
  }
  return "unknown";
}

}  // namespace

Estimate Pathload::do_estimate(probe::Transport& transport) {
  double lo = cfg_.min_rate_bps;   // highest rate verdicted below avail-bw
  double hi = cfg_.max_rate_bps;   // lowest rate verdicted above avail-bw
  double grey_lo = 0.0, grey_hi = 0.0;  // grey-region bounds (0 = unset)
  bool saw_grey = false;
  fleets_used_ = 0;

  LimitGuard guard(limits_, transport);
  guard_ = &guard;
  abort_ = AbortReason::kNone;

  while (fleets_used_ < cfg_.max_fleets && hi - lo > cfg_.resolution_bps) {
    // Next probing rate: bisect the undecided region.  With a grey region
    // present, bisect the wider flank around it (Pathload probes both
    // flanks to localize the grey-region edges).
    double rate;
    if (!saw_grey) {
      rate = (lo + hi) / 2.0;
    } else {
      double lower_gap = grey_lo - lo;
      double upper_gap = hi - grey_hi;
      if (lower_gap <= cfg_.resolution_bps / 2 && upper_gap <= cfg_.resolution_bps / 2)
        break;  // grey region localized
      rate = lower_gap > upper_gap ? (lo + grey_lo) / 2.0 : (grey_hi + hi) / 2.0;
    }

    ++fleets_used_;
    FleetVerdict verdict = probe_fleet(transport, rate);
    decision(transport, "fleet-verdict", fleet_verdict_name(verdict),
             fleets_used_, rate, hi - lo);
    if (abort_ != AbortReason::kNone) {
      guard_ = nullptr;
      Estimate e = abort_estimate(abort_, name());
      e.cost = transport.cost();
      return e;
    }
    switch (verdict) {
      case FleetVerdict::kAboveAvailBw:
        hi = rate;
        if (saw_grey) grey_hi = std::min(grey_hi, rate);
        break;
      case FleetVerdict::kBelowAvailBw:
        lo = rate;
        if (saw_grey) grey_lo = std::max(grey_lo, rate);
        break;
      case FleetVerdict::kGrey:
        if (!saw_grey) {
          saw_grey = true;
          grey_lo = grey_hi = rate;
        } else {
          grey_lo = std::min(grey_lo, rate);
          grey_hi = std::max(grey_hi, rate);
        }
        break;
    }
    if (saw_grey) {
      grey_lo = std::clamp(grey_lo, lo, hi);
      grey_hi = std::clamp(grey_hi, lo, hi);
    }
  }

  guard_ = nullptr;

  // Report the variation range: the grey region widened to the final
  // bracket edges when they are tighter than the initial bracket.
  double out_lo = saw_grey ? std::min(grey_lo, lo) : lo;
  double out_hi = saw_grey ? std::max(grey_hi, hi) : hi;
  if (out_lo <= cfg_.min_rate_bps && out_hi >= cfg_.max_rate_bps) {
    Estimate e = Estimate::invalid("pathload: search did not converge");
    e.diag("fleets", static_cast<double>(fleets_used_));
    e.diag("grey", saw_grey ? 1.0 : 0.0);
    e.cost = transport.cost();
    return e;
  }
  Estimate e = Estimate::range(out_lo, out_hi);
  e.cost = transport.cost();
  e.detail = "fleets=" + std::to_string(fleets_used_) +
             (saw_grey ? " grey-region" : "");
  e.diag("fleets", static_cast<double>(fleets_used_));
  e.diag("streams",
         static_cast<double>(fleets_used_ * cfg_.streams_per_fleet));
  e.diag("grey", saw_grey ? 1.0 : 0.0);
  return e;
}

}  // namespace abw::est
