#include "est/direct.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/moments.hpp"

namespace abw::est {

std::optional<double> direct_probe_equation(double ct_bps, double ri_bps,
                                            double ro_bps) {
  if (ct_bps <= 0.0 || ri_bps <= 0.0 || ro_bps <= 0.0)
    throw std::invalid_argument("direct_probe_equation: rates must be > 0");
  if (ro_bps >= ri_bps) return std::nullopt;  // stream did not congest the link
  return ct_bps - ri_bps * (ct_bps / ro_bps - 1.0);
}

DirectProber::DirectProber(const DirectConfig& cfg) : cfg_(cfg) {
  if (cfg.tight_capacity_bps <= 0.0)
    throw std::invalid_argument("DirectProber: tight_capacity_bps required");
  if (cfg_.input_rate_bps <= 0.0)
    cfg_.input_rate_bps = 0.8 * cfg_.tight_capacity_bps;
  if (cfg.packet_size == 0 || cfg.stream_duration <= 0 || cfg.stream_count == 0)
    throw std::invalid_argument("DirectProber: bad stream parameters");
}

probe::StreamSpec DirectProber::stream_spec() const {
  // Packet count so the stream spans the configured duration at Ri:
  // (count-1) * gap = duration.
  sim::SimTime gap = sim::transmission_time(cfg_.packet_size, cfg_.input_rate_bps);
  auto count = static_cast<std::size_t>(cfg_.stream_duration / gap) + 1;
  count = std::max<std::size_t>(count, 2);
  return probe::StreamSpec::periodic(cfg_.input_rate_bps, cfg_.packet_size, count);
}

std::optional<double> DirectProber::sample(probe::Transport& transport) {
  probe::StreamResult res = transport.send_stream(stream_spec());
  if (res.lost_count() > res.packets.size() / 10) return std::nullopt;
  double ri = res.input_rate_bps();
  double ro = res.output_rate_bps();
  if (ri <= 0.0 || ro <= 0.0) return std::nullopt;
  // Packet-level granularity makes Ro jitter ~1% around Ri even when the
  // stream never congests the link; Eq. 9 is meaningless there.  Require
  // a clearly reduced output rate before taking the sample.
  if (ro >= 0.99 * ri) return std::nullopt;
  return direct_probe_equation(cfg_.tight_capacity_bps, ri, ro);
}

Estimate DirectProber::do_estimate(probe::Transport& transport) {
  stats::RunningStats acc;
  std::size_t unusable = 0;
  LimitGuard guard(limits_, transport);
  for (std::size_t k = 0; k < cfg_.stream_count; ++k) {
    if (AbortReason r = guard.exceeded(); r != AbortReason::kNone) {
      Estimate e = abort_estimate(r, name());
      e.cost = transport.cost();
      return e;
    }
    if (auto a = sample(transport)) {
      acc.add(*a);
      decision(transport, "sample", "usable", k, *a, cfg_.input_rate_bps);
      if (cfg_.adaptive) {
        // Re-aim halfway between the sample and Ct: safely above A,
        // well below the needlessly intrusive Ct.
        double target = (std::max(*a, 0.0) + cfg_.tight_capacity_bps) / 2.0;
        cfg_.input_rate_bps = std::clamp(target, 0.1 * cfg_.tight_capacity_bps,
                                         0.98 * cfg_.tight_capacity_bps);
      }
    } else {
      ++unusable;
      decision(transport, "sample", "unusable", k, 0.0, cfg_.input_rate_bps);
      if (cfg_.adaptive) {
        // Stream did not congest the link: Ri was at or below A; push up.
        cfg_.input_rate_bps = std::min(cfg_.input_rate_bps * 1.3,
                                       0.98 * cfg_.tight_capacity_bps);
      }
    }
    transport.wait(cfg_.inter_stream_gap);
  }
  if (acc.count() == 0) {
    Estimate e = Estimate::aborted(
        AbortReason::kInsufficientData,
        "direct: no stream congested the tight link (Ri <= A?)");
    e.diag("samples", 0.0);
    e.diag("unusable", static_cast<double>(unusable));
    e.cost = transport.cost();
    return e;
  }
  Estimate e = Estimate::range(acc.mean() - acc.stddev(), acc.mean() + acc.stddev());
  e.cost = transport.cost();
  e.detail = "samples=" + std::to_string(acc.count()) +
             " unusable=" + std::to_string(unusable);
  e.diag("samples", static_cast<double>(acc.count()));
  e.diag("unusable", static_cast<double>(unusable));
  return e;
}

}  // namespace abw::est
