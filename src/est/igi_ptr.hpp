// IGI and PTR (Hu & Steenkiste, JSAC 2003): packet-train probing with a
// gap-based turning-point search.
//
// The sender emits trains of 60 packets, increasing the source gap (i.e.
// decreasing the rate) from the bottleneck's back-to-back gap until the
// *turning point*, where the average output gap equals the input gap —
// the train no longer perturbs the queue.
//
//   PTR (Packet Transmission Rate): the train's output rate at the
//   turning point is itself the avail-bw estimate.
//
//   IGI (Initial Gap Increasing): at the turning point, the increased
//   output gaps measure the cross traffic that slipped between probe
//   packets:  Rc = Ct * sum_{increased}(g_o - g_b) / sum_all(g_o),
//   and A = Ct - Rc.  IGI therefore needs Ct — the paper notes it is
//   "harder to classify" since it combines the direct-probing equation
//   with an iterative rate search.
#pragma once

#include "est/estimator.hpp"

namespace abw::est {

/// Parameters of IGI/PTR.
struct IgiPtrConfig {
  double tight_capacity_bps = 0.0;  ///< Ct for the IGI formula (required)
  std::uint32_t packet_size = 700;  ///< the tools' default probe size
  std::size_t packets_per_train = 60;
  double initial_rate_bps = 0.0;    ///< 0 = start at 0.9 * Ct
  double gap_step_fraction = 0.125; ///< source gap increment, in units of
                                    ///< the bottleneck gap g_b
  double turning_tolerance = 0.02;  ///< |g_o - g_i| / g_i at the turning point
  std::size_t max_trains = 40;
  /// Independent gap-search phases; the reported estimate is the median
  /// across phases.  The real tool repeats its probing phase for exactly
  /// this reason: a single 60-packet train can land in a cross-traffic
  /// lull (e.g. a Pareto OFF period) and declare a bogus turning point.
  std::size_t repetitions = 3;
};

/// Result flavor: which formula produced the point estimate.
enum class IgiPtrFormula { kIgi, kPtr };

/// The IGI/PTR estimator; one object computes both, `formula` selects
/// which one estimate() reports.
class IgiPtr final : public Estimator {
 public:
  IgiPtr(const IgiPtrConfig& cfg, IgiPtrFormula formula);

  std::string_view name() const override {
    return formula_ == IgiPtrFormula::kIgi ? "igi" : "ptr";
  }
  ProbingClass probing_class() const override {
    // IGI uses the direct-probing equation but finds its operating point
    // iteratively; PTR is purely iterative.  We follow the paper and tag
    // IGI as direct (it needs Ct), PTR as iterative.
    return formula_ == IgiPtrFormula::kIgi ? ProbingClass::kDirect
                                           : ProbingClass::kIterative;
  }

  /// Both estimates from the last run (0 when invalid).
  double last_igi_bps() const { return last_igi_; }
  double last_ptr_bps() const { return last_ptr_; }
  std::size_t trains_used() const { return trains_used_; }

 protected:
  Estimate do_estimate(probe::Transport& transport) override;

 private:
  IgiPtrConfig cfg_;
  IgiPtrFormula formula_;
  double last_igi_ = 0.0;
  double last_ptr_ = 0.0;
  std::size_t trains_used_ = 0;
};

}  // namespace abw::est
