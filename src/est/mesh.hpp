// Network-wide mesh estimation: probe a subset of an M x N path matrix,
// infer the rest through shared bottlenecks.
//
// The blueprint is Thouin, Coates & Rabbat, "Large scale probabilistic
// available bandwidth estimation": in a mesh whose routes overlap, the
// avail-bw of a path is the minimum over its links (the source paper's
// Eq. 3), so measuring a few well-chosen paths constrains many links at
// once and the remaining paths can be *inferred* instead of probed —
// total probing cost sublinear in the number of paths.  The machinery:
//
//  * Measurements bound links from below.  A direct measurement A_m of
//    path m implies A_e >= A_m for every edge e on route(m), and equality
//    holds for (at least) m's bottleneck edge.  Aggregating
//    edge_avail[e] = max over measured m through e of A_m gives the
//    tightest measurement-implied lower bound per edge.
//
//  * Shared-bottleneck inference.  For an unprobed path p,
//    min over e in route(p) of edge_avail[e] is (a) a true lower bound on
//    A_p when every edge of the route is covered by some measurement, and
//    (b) exactly A_p whenever p's bottleneck edge is also the bottleneck
//    of a measured path — the shared-bottleneck assumption.  The reported
//    confidence scores how well those two conditions are met; it is a
//    coverage/support heuristic in [0, 1], NOT a calibrated probability
//    (the source paper's own warning about ranges applies).
//
//  * Probe-set selection is greedy route-overlap cover: repeatedly pick
//    the path covering the most not-yet-covered route edges
//    (deterministic, lowest pair index on ties) until every route edge is
//    covered or the probe budget (`max_probe_fraction` of all pairs) is
//    exhausted.  Heavily-overlapping meshes cover with a handful of
//    probes; disjoint paths degrade gracefully toward probe-everything.
//
// The direct measurements fan out across cores through runner::BatchRunner
// with per-pair seeds derived from the PAIR INDEX (not the submission
// slot), so the full report is bit-identical for any --jobs value and any
// selection outcome.  The estimator is deliberately simulator-agnostic:
// it sees routes as edge-index lists and measurements through a callback,
// so the same inference runs against core::MeshScenario replicas today
// and a live transport backend later.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "runner/batch.hpp"
#include "sim/topology.hpp"

namespace abw::est {

/// Sentinel edge index ("no edge identified").
inline constexpr std::size_t kNoMeshEdge =
    std::numeric_limits<std::size_t>::max();

/// One path of the mesh as the estimator sees it: its route (topology
/// edge indices) and the route's narrow capacity (known infrastructure,
/// like the Ct parameter of direct probing).
struct MeshPathSpec {
  std::vector<std::size_t> edges;
  double narrow_capacity_bps = 0.0;
};

/// Extracts MeshPathSpecs from a topology's installed routes, in pair
/// order.  Throws when a pair has no installed route.
std::vector<MeshPathSpec> make_path_specs(
    const sim::Topology& topo, const std::vector<sim::NodePair>& pairs);

/// Result of directly measuring one path.
struct MeshMeasurement {
  bool valid = false;
  double avail_bps = 0.0;  ///< the point measurement (median of samples)
  double low_bps = 0.0;    ///< smallest per-stream sample behind it
  double high_bps = 0.0;   ///< largest per-stream sample
  std::uint32_t samples = 0;  ///< usable per-stream samples aggregated
};

/// Measures path `pair` under `seed`; must be safe to call concurrently
/// (each invocation owns its own simulation replica / transport session).
using MeshMeasureFn =
    std::function<MeshMeasurement(std::size_t pair, std::uint64_t seed)>;

/// Per-pair outcome: either a direct measurement or an inference.
struct MeshPairEstimate {
  bool valid = false;
  bool measured = false;  ///< true = directly probed, false = inferred
  double estimate_bps = 0.0;
  /// Bracket under the shared-bottleneck assumption: [estimate, narrow
  /// capacity] for inferred pairs, the per-stream sample spread for
  /// measured ones.
  double low_bps = 0.0;
  double high_bps = 0.0;
  /// Coverage/support heuristic in [0, 1] — see the header comment.
  double confidence = 0.0;
  /// Edge the estimate pins as the pair's bottleneck (argmin of the
  /// per-edge bounds), or kNoMeshEdge.
  std::size_t bottleneck_edge = kNoMeshEdge;
};

/// The full mesh resolution.
struct MeshReport {
  std::vector<MeshPairEstimate> pairs;   ///< one per input path, in order
  std::vector<std::size_t> probed;       ///< directly measured pair indices
  std::vector<MeshMeasurement> measurements;  ///< parallel to `probed`
  /// Per-edge measurement-implied lower bound on avail-bw; NaN where no
  /// measured path crosses the edge.  Size = max edge index + 1.
  std::vector<double> edge_avail_bps;
  /// Number of measured paths crossing each edge (inference support).
  std::vector<std::uint32_t> edge_support;
  std::size_t route_edges = 0;    ///< distinct edges appearing in any route
  std::size_t covered_edges = 0;  ///< of those, crossed by a measured path

  double probed_fraction() const {
    return pairs.empty() ? 0.0
                         : static_cast<double>(probed.size()) /
                               static_cast<double>(pairs.size());
  }
};

/// Tuning knobs of the mesh estimator.
struct MeshEstimatorConfig {
  /// Hard cap on directly probed pairs as a fraction of all pairs.
  double max_probe_fraction = 0.30;
  /// Base seed; each probed pair measures under
  /// derive_seed(base_seed, pair_index).
  std::uint64_t base_seed = 1;
};

/// Resolves a whole path mesh from a sublinear number of direct
/// measurements.  Construction fixes the (deterministic) probe set;
/// estimate() runs the measurements and the inference.
class MeshEstimator {
 public:
  MeshEstimator(std::vector<MeshPathSpec> paths, MeshEstimatorConfig cfg);

  /// Greedy route-overlap cover under a probe budget; exposed for tests.
  /// Returned indices are the selection order (greedy ranking).
  static std::vector<std::size_t> select_probe_set(
      const std::vector<MeshPathSpec>& paths, double max_fraction);

  /// The pairs estimate() will probe directly, ascending.
  const std::vector<std::size_t>& probe_set() const { return probe_set_; }

  const std::vector<MeshPathSpec>& paths() const { return paths_; }

  /// Fans the probe set's measurements across `runner` (bit-identical for
  /// any jobs count) and infers every unprobed pair.
  MeshReport estimate(runner::BatchRunner& runner,
                      const MeshMeasureFn& measure) const;

  /// Inference alone, from externally supplied measurements (`results`
  /// parallel to `probed`).  estimate() delegates here; unit tests drive
  /// it with synthetic numbers.
  MeshReport infer(const std::vector<std::size_t>& probed,
                   const std::vector<MeshMeasurement>& results) const;

 private:
  std::vector<MeshPathSpec> paths_;
  MeshEstimatorConfig cfg_;
  std::vector<std::size_t> probe_set_;  // ascending
};

}  // namespace abw::est
