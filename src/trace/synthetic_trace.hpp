// Synthetic substitute for the paper's NLANR trace (ANL-1070432720, OC-3).
//
// The paper uses the trace solely as a realization of a bursty,
// long-range-dependent traffic process on a link of known capacity, from
// which the avail-bw process A_tau(t) is computed at time scales
// 1-100 ms.  We synthesize an equivalent: packet arrivals on an OC-3
// (155.52 Mb/s) link whose windowed rate follows fractional Gaussian
// noise with a chosen Hurst parameter, with realistic trimodal Internet
// packet sizes.  DESIGN.md documents this substitution.
#pragma once

#include "sim/time.hpp"
#include "stats/rng.hpp"
#include "trace/packet_trace.hpp"
#include "traffic/packet_size.hpp"

namespace abw::trace {

/// Parameters of the synthetic self-similar trace.
struct SyntheticTraceConfig {
  double capacity_bps = 155.52e6;  ///< OC-3, as in the paper's trace
  double mean_utilization = 0.45;  ///< leaves ~85 Mb/s mean avail-bw
  double rel_std = 0.25;           ///< per-window rate stddev / mean rate
  double hurst = 0.8;              ///< long-range dependence strength
  sim::SimTime window = sim::kMillisecond;  ///< rate-modulation window
  sim::SimTime duration = 30 * sim::kSecond;
  bool trimodal_sizes = true;      ///< 40/576/1500 B mix vs fixed 1500 B
};

/// Synthesizes a packet trace per the config.  The windowed arrival-rate
/// process is mean_util*C * (1 + rel_std * fGn(H)), clamped to
/// [0, capacity]; packets arrive as a Poisson stream within each window.
/// Deterministic given the RNG seed.
PacketTrace synthesize_selfsimilar_trace(const SyntheticTraceConfig& cfg,
                                         stats::Rng& rng);

}  // namespace abw::trace
