// Trace persistence: save/load packet traces as CSV so experiments can be
// re-analyzed offline or shared — the role the NLANR archive played for
// the paper.  Format:
//
//   # abw-trace v1 capacity_bps=<double>
//   <timestamp_ns>,<size_bytes>
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "trace/packet_trace.hpp"

namespace abw::trace {

/// Writes the trace in CSV form.  Throws std::runtime_error on I/O error.
void save_trace_csv(const PacketTrace& trace, const std::string& path);

/// Stream variants for testing without touching the filesystem.
void write_trace_csv(const PacketTrace& trace, std::ostream& os);

/// Parses a CSV trace.  Throws std::runtime_error on malformed input
/// (bad header, non-numeric fields, out-of-order timestamps).
PacketTrace load_trace_csv(const std::string& path);
PacketTrace read_trace_csv(std::istream& is);

}  // namespace abw::trace
