#include "trace/availbw_process.hpp"

#include <algorithm>
#include <stdexcept>

#include "stats/moments.hpp"
#include "stats/sampling.hpp"

namespace abw::trace {

AvailBwProcess::AvailBwProcess(const PacketTrace& trace)
    : capacity_bps_(trace.capacity_bps()),
      start_(trace.start_time()),
      end_(trace.end_time()) {
  if (trace.size() < 2)
    throw std::invalid_argument("AvailBwProcess: trace too short");
  times_.reserve(trace.size());
  cum_bytes_.reserve(trace.size());
  std::uint64_t acc = 0;
  for (const auto& r : trace.records()) {
    times_.push_back(r.at);
    acc += r.size_bytes;
    cum_bytes_.push_back(acc);
  }
}

AvailBwProcess AvailBwProcess::from_meter(const sim::UtilizationMeter& meter,
                                          sim::SimTime t0, sim::SimTime t1,
                                          sim::SimTime quantum) {
  if (quantum <= 0)
    throw std::invalid_argument("from_meter: quantum must be > 0");
  if (t1 - t0 < 2 * quantum)
    throw std::invalid_argument("from_meter: window shorter than 2 quanta");
  AvailBwProcess p;
  p.capacity_bps_ = meter.capacity_bps();
  p.start_ = t0;
  p.end_ = t0;
  std::vector<double> series =
      meter.avail_bw_series(t0, t1, quantum, /*exclude_measurement=*/true);
  std::uint64_t acc = 0;
  const double qs = sim::to_seconds(quantum);
  for (std::size_t w = 0; w < series.size(); ++w) {
    double bytes = (p.capacity_bps_ - series[w]) * qs / 8.0;
    acc += static_cast<std::uint64_t>(bytes + 0.5);
    p.times_.push_back(t0 + static_cast<sim::SimTime>(w) * quantum);
    p.cum_bytes_.push_back(acc);
    p.end_ = t0 + static_cast<sim::SimTime>(w + 1) * quantum;
  }
  return p;
}

std::uint64_t AvailBwProcess::bytes_in(sim::SimTime t1, sim::SimTime t2) const {
  if (t2 <= t1) return 0;
  // Count arrivals with t1 <= at < t2 via prefix sums.
  auto lo = std::lower_bound(times_.begin(), times_.end(), t1) - times_.begin();
  auto hi = std::lower_bound(times_.begin(), times_.end(), t2) - times_.begin();
  if (lo >= hi) return 0;
  std::uint64_t upto_hi = cum_bytes_[static_cast<std::size_t>(hi - 1)];
  std::uint64_t upto_lo = lo == 0 ? 0 : cum_bytes_[static_cast<std::size_t>(lo - 1)];
  return upto_hi - upto_lo;
}

double AvailBwProcess::arrival_rate(sim::SimTime t1, sim::SimTime t2) const {
  if (t2 <= t1) throw std::invalid_argument("arrival_rate: empty window");
  return static_cast<double>(bytes_in(t1, t2)) * 8.0 / sim::to_seconds(t2 - t1);
}

double AvailBwProcess::avail_bw(sim::SimTime t, sim::SimTime tau) const {
  return std::max(0.0, capacity_bps_ - arrival_rate(t, t + tau));
}

std::vector<double> AvailBwProcess::series(sim::SimTime tau) const {
  if (tau <= 0) throw std::invalid_argument("series: tau must be > 0");
  std::vector<double> out;
  for (sim::SimTime t = start_; t + tau <= end_; t += tau)
    out.push_back(avail_bw(t, tau));
  return out;
}

std::vector<double> AvailBwProcess::poisson_samples(std::size_t count,
                                                    sim::SimTime tau,
                                                    stats::Rng& rng) const {
  double horizon = sim::to_seconds(end_ - start_ - tau);
  if (horizon <= 0.0) throw std::invalid_argument("poisson_samples: trace shorter than tau");
  std::vector<double> instants = stats::poisson_sample_times(count, horizon, rng);
  std::vector<double> out;
  out.reserve(instants.size());
  for (double s : instants)
    out.push_back(avail_bw(start_ + sim::from_seconds(s), tau));
  return out;
}

double AvailBwProcess::mean_avail_bw() const {
  return std::max(0.0, capacity_bps_ - arrival_rate(start_, end_));
}

double AvailBwProcess::stddev_at(sim::SimTime tau) const {
  return stats::stddev(series(tau));
}

std::pair<double, double> AvailBwProcess::variation_range(sim::SimTime tau,
                                                          double q) const {
  std::vector<double> s = series(tau);
  return {stats::quantile(s, q), stats::quantile(s, 1.0 - q)};
}

}  // namespace abw::trace
