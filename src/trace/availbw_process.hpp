// The avail-bw process A_tau(t) of a link, computed from a packet trace —
// the paper's Eqs. (1)-(3) made concrete.
//
// A trace gives the amount of traffic X(t, t+tau) arriving in any window;
// when the link is not overloaded, utilization over the window is
// X/(C*tau) and A_tau(t) = C - X(t,t+tau)/tau (clamped at >= 0 for
// transiently overloaded windows).  From the A_tau(t) series everything
// the paper's statistics pitfalls discuss follows: population variance vs
// tau (Eqs. 4-5), Poisson sampling and the sample-mean error (Eq. 11,
// Fig. 1), and the variation range (Fig. 6).
#pragma once

#include <cstddef>
#include <vector>

#include "sim/time.hpp"
#include "sim/util_meter.hpp"
#include "stats/rng.hpp"
#include "trace/packet_trace.hpp"

namespace abw::trace {

/// Avail-bw analysis over a fixed packet trace.
class AvailBwProcess {
 public:
  /// Indexes the trace for O(log n) window queries.
  explicit AvailBwProcess(const PacketTrace& trace);

  /// Builds the process from a link's UtilizationMeter instead of a
  /// packet trace — the ground-truth source of hybrid mode, where fluid
  /// links record busy segments but no per-packet trace exists.  The
  /// meter's exact per-window cross traffic over [t0, t1) is discretized
  /// at `quantum` resolution (each window's bytes enter as one arrival at
  /// the window start), so any analysis at tau >= quantum matches the
  /// packet-trace construction to within the quantum rounding.
  static AvailBwProcess from_meter(const sim::UtilizationMeter& meter,
                                   sim::SimTime t0, sim::SimTime t1,
                                   sim::SimTime quantum);

  /// Bytes arriving in [t1, t2).
  std::uint64_t bytes_in(sim::SimTime t1, sim::SimTime t2) const;

  /// Average arrival rate in [t1, t2), bits/s.
  double arrival_rate(sim::SimTime t1, sim::SimTime t2) const;

  /// A(t, t+tau) = max(0, C - arrival_rate), bits/s.
  double avail_bw(sim::SimTime t, sim::SimTime tau) const;

  /// The full A_tau series over consecutive windows spanning the trace.
  std::vector<double> series(sim::SimTime tau) const;

  /// `count` avail-bw samples at Poisson-distributed instants (PASTA) —
  /// the sampling discipline of the paper's Fig. 1 experiment.
  std::vector<double> poisson_samples(std::size_t count, sim::SimTime tau,
                                      stats::Rng& rng) const;

  /// Long-run mean avail-bw (tau-independent), bits/s.
  double mean_avail_bw() const;

  /// Population standard deviation of A_tau across the whole trace.
  double stddev_at(sim::SimTime tau) const;

  /// Variation range of A_tau: (low, high) quantiles of the series, e.g.
  /// q = 0.05 gives the central 90% band — what iterative probing can
  /// recover (Fig. 6 discussion).
  std::pair<double, double> variation_range(sim::SimTime tau, double q = 0.05) const;

  double capacity_bps() const { return capacity_bps_; }
  sim::SimTime start_time() const { return start_; }
  sim::SimTime end_time() const { return end_; }

 private:
  AvailBwProcess() = default;  // for from_meter

  double capacity_bps_;
  sim::SimTime start_, end_;
  std::vector<sim::SimTime> times_;       // arrival instants
  std::vector<std::uint64_t> cum_bytes_;  // prefix sums of sizes
};

}  // namespace abw::trace
