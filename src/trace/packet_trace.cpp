#include "trace/packet_trace.hpp"

#include <stdexcept>

namespace abw::trace {

PacketTrace::PacketTrace(double capacity_bps) : capacity_bps_(capacity_bps) {
  if (capacity_bps <= 0.0)
    throw std::invalid_argument("PacketTrace: capacity must be > 0");
}

void PacketTrace::add(sim::SimTime at, std::uint32_t size_bytes) {
  if (!records_.empty() && at < records_.back().at)
    throw std::invalid_argument("PacketTrace: out-of-order record");
  if (size_bytes == 0) throw std::invalid_argument("PacketTrace: zero-size packet");
  records_.push_back({at, size_bytes});
  total_bytes_ += size_bytes;
}

double PacketTrace::mean_utilization() const {
  sim::SimTime span = end_time() - start_time();
  if (span <= 0) return 0.0;
  double rate = static_cast<double>(total_bytes_) * 8.0 / sim::to_seconds(span);
  return rate / capacity_bps_;
}

std::vector<traffic::ReplayRecord> PacketTrace::to_replay() const {
  std::vector<traffic::ReplayRecord> out;
  out.reserve(records_.size());
  for (const auto& r : records_) out.push_back({r.at, r.size_bytes});
  return out;
}

LinkTraceRecorder::LinkTraceRecorder(sim::Link& link,
                                     std::optional<sim::PacketType> only)
    : trace_(link.capacity_bps()) {
  link.set_arrival_tap([this, only](const sim::Packet& pkt, sim::SimTime now) {
    // Arrival taps fire in time order because the simulator is
    // single-threaded and links process arrivals immediately.
    if (only.has_value() && pkt.type != *only) return;
    trace_.add(now, pkt.size_bytes);
  });
}

}  // namespace abw::trace
