#include "trace/synthetic_trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/fgn.hpp"

namespace abw::trace {

PacketTrace synthesize_selfsimilar_trace(const SyntheticTraceConfig& cfg,
                                         stats::Rng& rng) {
  if (cfg.capacity_bps <= 0.0 || cfg.window <= 0 || cfg.duration <= cfg.window)
    throw std::invalid_argument("synthesize_selfsimilar_trace: bad config");
  if (cfg.mean_utilization <= 0.0 || cfg.mean_utilization >= 1.0)
    throw std::invalid_argument("synthesize_selfsimilar_trace: utilization in (0,1)");

  auto windows = static_cast<std::size_t>(cfg.duration / cfg.window);
  std::vector<double> noise = stats::generate_fgn(windows, cfg.hurst, rng);

  double mean_rate = cfg.mean_utilization * cfg.capacity_bps;
  traffic::SizeDistribution sizes = cfg.trimodal_sizes
                                        ? traffic::SizeDistribution::internet_mix()
                                        : traffic::SizeDistribution::fixed(1500);

  PacketTrace out(cfg.capacity_bps);
  sim::SimTime t = 0;
  for (std::size_t w = 0; w < windows; ++w) {
    double rate = mean_rate * (1.0 + cfg.rel_std * noise[w]);
    rate = std::clamp(rate, 0.02 * mean_rate, cfg.capacity_bps);
    sim::SimTime window_end = static_cast<sim::SimTime>(w + 1) * cfg.window;
    double mean_gap_s = sizes.mean() * 8.0 / rate;
    while (t < window_end) {
      out.add(t, sizes.sample(rng));
      t += sim::from_seconds(rng.exponential(mean_gap_s));
    }
  }
  return out;
}

}  // namespace abw::trace
