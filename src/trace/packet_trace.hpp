// Packet traces: the (timestamp, size) sequences the paper's Figs. 1 and 6
// are computed from.  A trace can be recorded live off a simulated link or
// synthesized (synthetic_trace.hpp); either way it feeds AvailBwProcess
// for ground-truth avail-bw analysis and TraceReplayer for reuse as a
// workload.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/link.hpp"
#include "sim/time.hpp"
#include "traffic/trace_replay.hpp"

namespace abw::trace {

/// One captured packet arrival.
struct TraceRecord {
  sim::SimTime at;
  std::uint32_t size_bytes;
};

/// A time-ordered sequence of packet arrivals at a link of known capacity.
class PacketTrace {
 public:
  /// `capacity_bps` is the capacity of the link the trace was taken at.
  explicit PacketTrace(double capacity_bps);

  /// Appends an arrival; must be in non-decreasing time order.
  void add(sim::SimTime at, std::uint32_t size_bytes);

  const std::vector<TraceRecord>& records() const { return records_; }
  double capacity_bps() const { return capacity_bps_; }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }

  /// Time bounds of the trace; both 0 when empty.
  sim::SimTime start_time() const { return records_.empty() ? 0 : records_.front().at; }
  sim::SimTime end_time() const { return records_.empty() ? 0 : records_.back().at; }

  /// Total bytes carried.
  std::uint64_t total_bytes() const { return total_bytes_; }

  /// Long-run average utilization of the link implied by the trace.
  double mean_utilization() const;

  /// Converts to replayer records for use as a simulated workload.
  std::vector<traffic::ReplayRecord> to_replay() const;

 private:
  double capacity_bps_;
  std::vector<TraceRecord> records_;
  std::uint64_t total_bytes_ = 0;
};

/// Hooks a PacketTrace up to a live simulated link: every arrival at the
/// link is appended to the trace.  Keep the recorder alive for the
/// duration of the simulation.
class LinkTraceRecorder {
 public:
  /// Starts recording arrivals at `link` into an internal trace.  When
  /// `only` is set, records just that packet type — e.g. kCross to build
  /// the offered cross-traffic process undisturbed by probing (arrivals,
  /// unlike transmissions, are not displaced by measurement queueing).
  explicit LinkTraceRecorder(sim::Link& link,
                             std::optional<sim::PacketType> only = std::nullopt);

  const PacketTrace& trace() const { return trace_; }
  PacketTrace take() { return std::move(trace_); }

 private:
  PacketTrace trace_;
};

}  // namespace abw::trace
