#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace abw::trace {

namespace {
constexpr const char* kHeaderPrefix = "# abw-trace v1 capacity_bps=";
}

void write_trace_csv(const PacketTrace& trace, std::ostream& os) {
  os << kHeaderPrefix << trace.capacity_bps() << '\n';
  for (const auto& r : trace.records()) os << r.at << ',' << r.size_bytes << '\n';
  if (!os) throw std::runtime_error("write_trace_csv: stream error");
}

void save_trace_csv(const PacketTrace& trace, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_trace_csv: cannot open " + path);
  write_trace_csv(trace, os);
}

PacketTrace read_trace_csv(std::istream& is) {
  std::string header;
  if (!std::getline(is, header) || header.rfind(kHeaderPrefix, 0) != 0)
    throw std::runtime_error("read_trace_csv: missing abw-trace header");
  double capacity = 0.0;
  try {
    capacity = std::stod(header.substr(std::string(kHeaderPrefix).size()));
  } catch (const std::exception&) {
    throw std::runtime_error("read_trace_csv: bad capacity in header");
  }
  PacketTrace trace(capacity);

  std::string line;
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::size_t comma = line.find(',');
    if (comma == std::string::npos)
      throw std::runtime_error("read_trace_csv: missing comma at line " +
                               std::to_string(lineno));
    sim::SimTime at = 0;
    std::uint32_t size = 0;
    try {
      at = std::stoll(line.substr(0, comma));
      size = static_cast<std::uint32_t>(std::stoul(line.substr(comma + 1)));
    } catch (const std::invalid_argument&) {
      throw std::runtime_error("read_trace_csv: non-numeric field at line " +
                               std::to_string(lineno));
    } catch (const std::out_of_range&) {
      throw std::runtime_error("read_trace_csv: value out of range at line " +
                               std::to_string(lineno));
    }
    try {
      trace.add(at, size);
    } catch (const std::invalid_argument& e) {
      throw std::runtime_error("read_trace_csv: " + std::string(e.what()) +
                               " at line " + std::to_string(lineno));
    }
  }
  return trace;
}

PacketTrace load_trace_csv(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_trace_csv: cannot open " + path);
  return read_trace_csv(is);
}

}  // namespace abw::trace
