#include "obs/trace.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace abw::obs {

std::string_view event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kDrop: return "drop";
    case EventKind::kDequeue: return "dequeue";
    case EventKind::kDeliver: return "deliver";
    case EventKind::kBusyStart: return "busy-start";
    case EventKind::kBusyEnd: return "busy-end";
    case EventKind::kGeTransition: return "ge-transition";
    case EventKind::kCapacityChange: return "capacity-change";
    case EventKind::kStreamStart: return "stream-start";
    case EventKind::kStreamEnd: return "stream-end";
    case EventKind::kDecision: return "decision";
  }
  return "unknown";
}

JsonlTraceSink::JsonlTraceSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get()) {
  if (!*owned_)
    throw std::runtime_error("JsonlTraceSink: cannot open '" + path + "'");
}

namespace {

// Bounded formatting cursor over a stack buffer.  Overflow is truncated,
// never UB; with 512 bytes and bounded string fields it cannot trigger.
struct Cursor {
  char* p;
  char* end;

  void put(char c) {
    if (p < end) *p++ = c;
  }

  void raw(std::string_view s) {
    for (char c : s) put(c);
  }

  // JSON string with minimal escaping — sources/labels are identifiers,
  // but tool-generated outcome text could in principle contain anything.
  void str(std::string_view s) {
    put('"');
    for (char c : s) {
      switch (c) {
        case '"': raw("\\\""); break;
        case '\\': raw("\\\\"); break;
        case '\n': raw("\\n"); break;
        case '\t': raw("\\t"); break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char esc[8];
            std::snprintf(esc, sizeof esc, "\\u%04x", c);
            raw(esc);
          } else {
            put(c);
          }
      }
    }
    put('"');
  }

  void key(std::string_view k) {
    put(',');
    str(k);
    put(':');
  }

  void u64(std::string_view k, std::uint64_t v) {
    key(k);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    raw(buf);
  }

  void i64(std::string_view k, std::int64_t v) {
    key(k);
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    raw(buf);
  }

  // Shortest round-trippable decimal: %.17g is exact for double, but try
  // %.15g first so common values print compactly and deterministically.
  // Non-finite values serialize as null — snprintf's `nan`/`inf` are not
  // JSON, and NaN is a legitimate value here (Estimate::point_bps() is
  // deliberately NaN on invalid runs).
  void num(std::string_view k, double v) {
    key(k);
    if (!std::isfinite(v)) {
      raw("null");
      return;
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.15g", v);
    double back = 0.0;
    std::sscanf(buf, "%lf", &back);
    if (back != v) std::snprintf(buf, sizeof buf, "%.17g", v);
    raw(buf);
  }
};

}  // namespace

void JsonlTraceSink::emit(const TraceEvent& e) {
  char buf[512];
  Cursor c{buf, buf + sizeof buf};

  // Common prefix: {"t":<ns>,"ev":"<kind>","src":"<source>"
  c.raw("{\"t\":");
  {
    char t[24];
    std::snprintf(t, sizeof t, "%" PRId64, static_cast<std::int64_t>(e.time));
    c.raw(t);
  }
  c.key("ev");
  c.str(event_kind_name(e.kind));
  c.key("src");
  c.str(e.source);

  switch (e.kind) {
    case EventKind::kEnqueue:
    case EventKind::kDequeue:
    case EventKind::kDeliver:
      c.u64("pkt", e.packet_id);
      c.u64("stream", e.stream_id);
      c.u64("seq", e.seq);
      c.u64("size", e.size_bytes);
      c.u64("q", e.queue_bytes);
      break;
    case EventKind::kDrop:
      c.u64("pkt", e.packet_id);
      c.u64("stream", e.stream_id);
      c.u64("seq", e.seq);
      c.u64("size", e.size_bytes);
      c.u64("q", e.queue_bytes);
      c.key("cause");
      c.str(e.label);
      break;
    case EventKind::kBusyStart:
    case EventKind::kBusyEnd:
      c.u64("q", e.queue_bytes);
      break;
    case EventKind::kGeTransition:
      c.key("state");
      c.str(e.label);
      break;
    case EventKind::kCapacityChange:
      c.num("bps", e.value);
      break;
    case EventKind::kStreamStart:
      c.u64("stream", e.stream_id);
      c.u64("count", e.count);
      c.u64("size", e.size_bytes);
      break;
    case EventKind::kStreamEnd:
      c.u64("stream", e.stream_id);
      c.u64("received", e.count);
      c.u64("dup", e.seq);             // field reuse, see schema table
      c.u64("reordered", e.size_bytes);
      break;
    case EventKind::kDecision:
      c.key("what");
      c.str(e.label);
      c.key("outcome");
      c.str(e.text);
      c.u64("iter", e.count);
      c.num("value", e.value);
      c.num("aux", e.value2);
      break;
  }
  c.put('}');
  c.put('\n');
  out_->write(buf, c.p - buf);
  ++lines_;
}

}  // namespace abw::obs
