// MetricsRegistry: named counters / gauges / histograms / timers.
//
// One registry per run (or per BatchRunner cell).  Components register
// metrics lazily by name; references returned by counter()/gauge()/
// histogram() stay stable for the registry's lifetime (node-based map),
// so hot loops can cache the pointer and pay nothing for the lookup.
//
// Determinism: names are stored sorted, so to_json() output is a stable
// function of the recorded values.  Wall-clock timers are the one
// nondeterministic family — `to_json(/*include_timers=*/false)` excludes
// them, which is what golden tests and cross-thread-count byte-identity
// comparisons use.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "stats/histogram.hpp"

namespace abw::obs {

/// Monotonic event count.
struct Counter {
  std::uint64_t value = 0;
  void add(std::uint64_t n = 1) { value += n; }
  void set(std::uint64_t v) { value = v; }
};

/// Last-written point-in-time value.
struct Gauge {
  double value = 0.0;
  void set(double v) { value = v; }
};

/// Accumulated wall-clock time of a named code region (see ScopedTimer).
struct TimerStat {
  std::uint64_t count = 0;    ///< completed intervals
  double total_seconds = 0.0;
  double max_seconds = 0.0;

  void record(double seconds) {
    ++count;
    total_seconds += seconds;
    if (seconds > max_seconds) max_seconds = seconds;
  }
};

class MetricsRegistry {
 public:
  /// Finds or creates; the reference is stable for the registry lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  TimerStat& timer(std::string_view name);

  /// Finds or creates with the given shape.  The shape of an existing
  /// histogram is never changed by a later call.
  stats::Histogram& histogram(std::string_view name, double lo, double hi,
                              std::size_t bins);

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           timers_.empty();
  }

  /// Single sorted JSON object:
  ///   {"counters":{...},"gauges":{...},"histograms":{...},"timers":{...}}
  /// Histograms serialize as {"lo","hi","underflow","overflow","total",
  /// "counts":[...]}.  With include_timers == false the "timers" section
  /// is omitted entirely — the remaining output is deterministic for a
  /// seeded run.
  std::string to_json(bool include_timers = false) const;

  /// to_json() followed by a newline, written to `out`.
  void write_json(std::ostream& out, bool include_timers = false) const;

 private:
  // std::less<> enables lookup by string_view without a temporary string.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, stats::Histogram, std::less<>> histograms_;
  std::map<std::string, TimerStat, std::less<>> timers_;
};

/// RAII wall-clock timer: records elapsed seconds into
/// `registry->timer(name)` on destruction.  A null registry makes both
/// constructor and destructor no-ops (no clock read), so always-on call
/// sites cost one branch when profiling is disabled.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string_view name);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimerStat* stat_ = nullptr;  // resolved once at construction
  std::uint64_t start_ns_ = 0;
};

}  // namespace abw::obs
