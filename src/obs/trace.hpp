// Event tracing: the "flight recorder" of a simulated measurement.
//
// The paper's closing recommendation — compare tools "under reproducible
// and controllable conditions" — needs a window into WHY a tool produced
// a given estimate, not just the number it printed.  A TraceSink receives
// typed events from every layer (packet enqueue/drop/dequeue/deliver with
// queue depth, link busy-run boundaries, fault transitions, capacity
// steps, probe stream boundaries, per-tool decisions), so any figure's
// run can be replayed and inspected offline.
//
// Cost contract: observability off means a null `TraceSink*` — every
// emission site compiles to one pointer test (see the golden determinism
// digests and bench/micro_obs.cpp).  Emission itself draws no randomness
// and never advances simulated time, so an enabled trace is a pure
// side-channel: the simulation is bit-identical with any sink attached,
// and the JSONL output is seed-stable and byte-identical across repeated
// runs and BatchRunner thread counts.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "sim/time.hpp"  // header-only; obs sits below sim in link order

namespace abw::obs {

/// What happened.  One enumerator per JSONL `ev` value; the field table
/// lives in README.md ("Observability" section).
enum class EventKind : std::uint8_t {
  kEnqueue,         ///< packet admitted to a link queue
  kDrop,            ///< packet lost at a link (label = cause)
  kDequeue,         ///< packet starts serialization
  kDeliver,         ///< packet finished serialization (departs the link)
  kBusyStart,       ///< link turned busy (idle -> transmitting)
  kBusyEnd,         ///< link drained (transmitting -> idle)
  kGeTransition,    ///< Gilbert-Elliott chain changed state (label = state)
  kCapacityChange,  ///< Link::set_capacity applied (value = new bps)
  kStreamStart,     ///< probe stream begins (count = packets in stream)
  kStreamEnd,       ///< probe stream drained (count = packets received)
  kDecision,        ///< a tool-level decision (label = what, text = outcome)
};

/// Name of an event kind as written to JSONL ("enqueue", "drop", ...).
std::string_view event_kind_name(EventKind k);

/// One trace event.  Plain stack data: string_views must outlive only the
/// emit() call (sinks that persist them copy).  Field meaning is
/// kind-specific; the JSONL sink maps each field to a schema key per
/// kind (e.g. for kStreamEnd, `seq` carries the duplicate count and
/// `size_bytes` the reorder count — see the README schema table).
struct TraceEvent {
  EventKind kind = EventKind::kDecision;
  sim::SimTime time = 0;        ///< simulated time of the event (ns)
  std::string_view source;      ///< emitting component (link/tool name)
  std::string_view label;       ///< drop cause / GE state / decision name
  std::string_view text;        ///< decision outcome
  std::uint64_t packet_id = 0;
  std::uint32_t stream_id = 0;
  std::uint32_t seq = 0;
  std::uint32_t size_bytes = 0;
  std::uint64_t queue_bytes = 0;  ///< link backlog AFTER the event applied
  std::uint64_t count = 0;        ///< stream packet count / iteration index
  double value = 0.0;             ///< kind-specific number (rate, bps, ...)
  double value2 = 0.0;            ///< auxiliary number (ratio, fraction, ...)
};

/// Receiver of trace events.  Implementations must not throw from emit()
/// on the hot path (I/O errors surface from flush()/destructor instead).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Discards every event, counting them — the measuring stick for pure
/// emission overhead (bench/micro_obs.cpp) and for tests asserting that
/// instrumented paths actually fire without paying for formatting.
class NullTraceSink final : public TraceSink {
 public:
  void emit(const TraceEvent&) override { ++events_; }
  std::uint64_t events() const { return events_; }

 private:
  std::uint64_t events_ = 0;
};

/// Writes one JSON object per line.  Formatting is fully deterministic
/// (fixed key order per kind, integer nanosecond times, %.17g doubles),
/// so a seeded run's trace is byte-identical across runs and thread
/// counts.  Not thread-safe: give each BatchRunner cell its own sink.
class JsonlTraceSink final : public TraceSink {
 public:
  /// Writes to a caller-owned stream (e.g. an ostringstream per cell).
  explicit JsonlTraceSink(std::ostream& out) : out_(&out) {}

  /// Opens `path` for writing and owns the file; throws std::runtime_error
  /// when the file cannot be opened.
  explicit JsonlTraceSink(const std::string& path);

  void emit(const TraceEvent& event) override;
  void flush() override { out_->flush(); }

  /// Lines written so far.
  std::uint64_t lines() const { return lines_; }

 private:
  std::unique_ptr<std::ofstream> owned_;  // set by the path constructor
  std::ostream* out_;
  std::uint64_t lines_ = 0;
};

}  // namespace abw::obs
