#include "obs/metrics.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace abw::obs {

Counter& MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), Counter{}).first;
  return it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  return it->second;
}

TimerStat& MetricsRegistry::timer(std::string_view name) {
  auto it = timers_.find(name);
  if (it == timers_.end())
    it = timers_.emplace(std::string(name), TimerStat{}).first;
  return it->second;
}

stats::Histogram& MetricsRegistry::histogram(std::string_view name, double lo,
                                             double hi, std::size_t bins) {
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_.emplace(std::string(name), stats::Histogram(lo, hi, bins))
             .first;
  return it->second;
}

namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  // NaN/Inf are not JSON; gauges legitimately carry them (e.g. NaN
  // diagnostics of invalid estimates), so serialize non-finite as null.
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.15g", v);
  double back = 0.0;
  std::sscanf(buf, "%lf", &back);
  if (back != v) std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::string MetricsRegistry::to_json(bool include_timers) const {
  std::string out;
  out.reserve(256);
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    append_u64(out, c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ':';
    append_double(out, g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_escaped(out, name);
    out += ":{\"lo\":";
    append_double(out, h.lo());
    out += ",\"hi\":";
    append_double(out, h.hi());
    out += ",\"underflow\":";
    append_u64(out, h.underflow());
    out += ",\"overflow\":";
    append_u64(out, h.overflow());
    out += ",\"total\":";
    append_u64(out, h.total());
    out += ",\"counts\":[";
    for (std::size_t i = 0; i < h.bins(); ++i) {
      if (i) out += ',';
      append_u64(out, h.bin_count(i));
    }
    out += "]}";
  }
  out += '}';
  if (include_timers) {
    out += ",\"timers\":{";
    first = true;
    for (const auto& [name, t] : timers_) {
      if (!first) out += ',';
      first = false;
      append_escaped(out, name);
      out += ":{\"count\":";
      append_u64(out, t.count);
      out += ",\"total_s\":";
      append_double(out, t.total_seconds);
      out += ",\"max_s\":";
      append_double(out, t.max_seconds);
      out += '}';
    }
    out += '}';
  }
  out += '}';
  return out;
}

void MetricsRegistry::write_json(std::ostream& out, bool include_timers) const {
  out << to_json(include_timers) << '\n';
}

ScopedTimer::ScopedTimer(MetricsRegistry* registry, std::string_view name) {
  if (!registry) return;
  stat_ = &registry->timer(name);
  start_ns_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ScopedTimer::~ScopedTimer() {
  if (!stat_) return;
  auto now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  stat_->record(static_cast<double>(now_ns - start_ns_) * 1e-9);
}

}  // namespace abw::obs
