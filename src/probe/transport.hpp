// Transport: the substrate abstraction under the probe layer.
//
// Every estimation technique needs exactly four things from the world:
// send one probing stream and get the receiver's measurements back, read
// a clock, idle for a while, and account its probing overhead.  Transport
// names that contract, so the same tool code runs over
//
//  * SimTransport — today's simulated ProbeSession, bit-identical to
//    calling the session directly (golden-digest-pinned): the
//    deterministic CI twin;
//  * net::UdpTransport — timestamped UDP probe packets over real sockets
//    against a live abwd daemon (net/daemon.hpp), where the clock is the
//    host's and the receiver's clock is genuinely unsynchronized.
//
// What SimTransport guarantees that a live transport cannot: determinism
// (a seeded run replays exactly), a receiver clock synchronized to the
// sender (unless a ReceiverClock model is installed), and zero timestamp
// noise.  Tools must not depend on any of those — see DESIGN.md
// "Transport contract".
#pragma once

#include <string_view>

#include "probe/session.hpp"
#include "probe/stream_result.hpp"
#include "probe/stream_spec.hpp"
#include "sim/time.hpp"

namespace abw::probe {

/// Abstract measurement substrate.  All times are sim::SimTime
/// (nanoseconds): simulated time on SimTransport, wall-clock nanoseconds
/// since transport construction on live transports.
class Transport {
 public:
  virtual ~Transport() = default;

  Transport() = default;
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Sends one probing stream starting `lead_in` after now and blocks —
  /// advancing simulated time, or real time — until every packet arrived
  /// or the transport's drain timeout passed; returns the receiver's
  /// measurements.  Lost packets keep lost == true.
  virtual StreamResult send_stream(const StreamSpec& spec,
                                   sim::SimTime lead_in = sim::kMillisecond) = 0;

  /// The transport clock (the measurement's notion of elapsed time; what
  /// EstimatorLimits::deadline is measured against).
  virtual sim::SimTime now() = 0;

  /// Idles for `duration` (inter-stream gaps): advances the simulation,
  /// or sleeps.
  virtual void wait(sim::SimTime duration) = 0;

  /// Probing overhead accumulated over this transport's lifetime.
  virtual const ProbeCost& cost() const = 0;

  /// Transport family, for diagnostics ("sim", "udp").
  virtual std::string_view kind() const = 0;

  /// The underlying simulated session when this transport is a
  /// simulation, nullptr on live transports.  The escape hatch for
  /// techniques with sim-only instrumentation (BFind's per-hop queueing
  /// probes); every tool must still terminate sensibly when it returns
  /// nullptr.
  virtual ProbeSession* sim_session() { return nullptr; }
};

/// The simulator backend: a thin, stateless adapter over ProbeSession.
/// Every call forwards 1:1 to what estimators historically called
/// directly, so a tool run through SimTransport is bit-identical to one
/// run against the session (tests/transport_test.cpp pins this per tool).
class SimTransport final : public Transport {
 public:
  explicit SimTransport(ProbeSession& session) : session_(session) {}

  StreamResult send_stream(const StreamSpec& spec,
                           sim::SimTime lead_in) override {
    return session_.send_stream_now(spec, lead_in);
  }

  sim::SimTime now() override { return session_.simulator().now(); }

  void wait(sim::SimTime duration) override {
    session_.simulator().run_until(session_.simulator().now() + duration);
  }

  const ProbeCost& cost() const override { return session_.cost(); }

  std::string_view kind() const override { return "sim"; }

  ProbeSession* sim_session() override { return &session_; }

 private:
  ProbeSession& session_;
};

}  // namespace abw::probe
