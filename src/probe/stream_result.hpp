// What the receiver measured for one probing stream: per-packet send and
// receive timestamps, from which the paper's two observables derive —
// the one-way-delay series (Eq. 7) and the output rate Ro (Eq. 8).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace abw::probe {

/// Per-packet measurement record.
struct ProbeRecord {
  std::uint32_t seq = 0;
  std::uint32_t size_bytes = 0;
  sim::SimTime sent = 0;
  sim::SimTime received = 0;  ///< valid only when !lost
  bool lost = false;
};

/// The receiver's view of one stream.
struct StreamResult {
  std::uint32_t stream_id = 0;
  std::vector<ProbeRecord> packets;  ///< ordered by seq

  // Impairment accounting (filled by the receiving ProbeSession).  Real
  // tools must cope with these — they are what fault-injected links
  // (sim/fault.hpp) stress: duplicates arrive for already-received
  // sequence numbers, reordered packets arrive behind higher seqs.
  std::uint32_t duplicate_count = 0;  ///< arrivals for an already-seen seq
  std::uint32_t reordered_count = 0;  ///< first arrivals behind a higher seq

  /// Number of packets that never arrived.
  std::size_t lost_count() const;

  /// Number of packets that arrived (packets.size() - lost_count()).
  std::size_t received_count() const { return packets.size() - lost_count(); }

  /// Fraction of the stream lost, in [0, 1]; 0 for an empty stream.
  double loss_fraction() const {
    return packets.empty() ? 0.0
                           : static_cast<double>(lost_count()) /
                                 static_cast<double>(packets.size());
  }

  /// True when every packet arrived.
  bool complete() const { return lost_count() == 0; }

  /// True when the stream saw any loss, duplication, or reordering —
  /// estimators use this to flag degraded measurements.
  bool impaired() const {
    return duplicate_count > 0 || reordered_count > 0 || lost_count() > 0;
  }

  /// Input rate Ri: bits after the first packet / send span.  0 if fewer
  /// than two packets were sent.
  double input_rate_bps() const;

  /// Output rate Ro: bits after the first received packet / receive span,
  /// over received packets only.  0 if fewer than two arrived.
  double output_rate_bps() const;

  /// Ro / Ri; 0 when undefined.
  double rate_ratio() const;

  /// One-way delays (received - sent) in seconds for received packets, in
  /// seq order.  These are the series PCT/PDT analyze.
  std::vector<double> owds_seconds() const;

  /// OWDs relative to the first received packet's OWD, in milliseconds —
  /// the paper's Fig. 5 y-axis.
  std::vector<double> relative_owds_ms() const;
};

}  // namespace abw::probe
