#include "probe/session.hpp"

#include <stdexcept>

namespace abw::probe {

ProbeSession::ProbeSession(sim::Simulator& sim, sim::Path& path)
    : sim_(sim), path_(path) {
  probe_sink_.set_on_packet([this](const sim::Packet& pkt) {
    on_probe(pkt, sim_.now());
  });
  demux_.register_handler(sim::PacketType::kProbe, &probe_sink_);
  path_.set_receiver(&demux_);
}

StreamResult ProbeSession::send_stream(const StreamSpec& spec, sim::SimTime start) {
  if (spec.packets.empty())
    throw std::invalid_argument("ProbeSession: empty stream");
  if (start < sim_.now())
    throw std::invalid_argument("ProbeSession: start in the past");
  if (active_ != nullptr)
    throw std::logic_error("ProbeSession: a stream is already in flight");

  StreamResult result;
  result.stream_id = next_stream_id_++;
  result.packets.resize(spec.packets.size());

  if (cost_.streams == 0) cost_.first_send = start;
  ++cost_.streams;

  for (std::size_t i = 0; i < spec.packets.size(); ++i) {
    const ProbePacketSpec& ps = spec.packets[i];
    result.packets[i].seq = static_cast<std::uint32_t>(i);
    result.packets[i].size_bytes = ps.size_bytes;
    result.packets[i].sent = start + ps.offset;
    result.packets[i].lost = true;  // cleared on arrival

    cost_.packets++;
    cost_.bytes += ps.size_bytes;

    sim_.at(start + ps.offset, [this, i, &result, &spec] {
      sim::Packet pkt;
      pkt.id = sim_.next_packet_id();
      pkt.type = sim::PacketType::kProbe;
      pkt.measurement = true;  // excluded from cross-traffic ground truth
      pkt.size_bytes = spec.packets[i].size_bytes;
      pkt.stream_id = result.stream_id;
      pkt.seq = static_cast<std::uint32_t>(i);
      pkt.send_time = sim_.now();
      path_.inject(0, pkt);
    });
  }

  active_ = &result;
  received_ = 0;
  recv_.reset();

  if (trace_) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kStreamStart;
    e.time = start;
    e.source = "session";
    e.stream_id = result.stream_id;
    e.count = spec.packets.size();
    e.size_bytes = spec.packets.front().size_bytes;
    trace_->emit(e);
  }

  // Hybrid mode: bracket the stream with a packet window so every link's
  // cross traffic is discrete while probes are in flight (sim/hybrid.hpp).
  bool hybrid = path_.hybrid();
  if (hybrid) {
    sim::SimTime open = start - hybrid_guard_;
    path_.open_packet_window(open > sim_.now() ? open : sim_.now());
  }

  sim::SimTime deadline = start + spec.packets.back().offset + drain_timeout_;
  std::size_t want = spec.packets.size();
  sim_.run_until_condition(deadline, [this, want] { return received_ >= want; });

  if (hybrid) path_.close_packet_window();

  active_ = nullptr;
  cost_.last_activity = sim_.now();

  if (trace_) {
    obs::TraceEvent e;
    e.kind = obs::EventKind::kStreamEnd;
    e.time = sim_.now();
    e.source = "session";
    e.stream_id = result.stream_id;
    e.count = received_;
    e.seq = result.duplicate_count;        // schema: "dup"
    e.size_bytes = result.reordered_count; // schema: "reordered"
    trace_->emit(e);
  }
  return result;
}

StreamResult ProbeSession::send_stream_now(const StreamSpec& spec,
                                           sim::SimTime lead_in) {
  return send_stream(spec, sim_.now() + lead_in);
}

void ProbeSession::on_probe(const sim::Packet& pkt, sim::SimTime now) {
  if (active_ == nullptr || pkt.stream_id != active_->stream_id) return;  // stale
  ProbeRecord* rec = recv_.accept(*active_, pkt.seq);
  if (rec == nullptr) return;  // out of range, or duplicate (counted)
  // Timestamp against the (possibly unsynchronized, noisy) receiver clock.
  sim::SimTime stamp =
      now + clock_.offset +
      static_cast<sim::SimTime>(clock_.drift_ppm * 1e-6 *
                                static_cast<double>(now));
  if (clock_.jitter_std_seconds > 0.0)
    stamp += sim::from_seconds(clock_rng_.normal() * clock_.jitter_std_seconds);
  if (clock_.quantization > 0)
    stamp -= stamp % clock_.quantization;  // round down to clock ticks
  rec->received = stamp;
  ++received_;
}

}  // namespace abw::probe
