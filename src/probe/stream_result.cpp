#include "probe/stream_result.hpp"

namespace abw::probe {

std::size_t StreamResult::lost_count() const {
  std::size_t n = 0;
  for (const auto& p : packets)
    if (p.lost) ++n;
  return n;
}

double StreamResult::input_rate_bps() const {
  if (packets.size() < 2) return 0.0;
  std::uint64_t bits = 0;
  for (std::size_t i = 1; i < packets.size(); ++i) bits += packets[i].size_bytes * 8ULL;
  sim::SimTime span = packets.back().sent - packets.front().sent;
  if (span <= 0) return 0.0;
  return static_cast<double>(bits) / sim::to_seconds(span);
}

double StreamResult::output_rate_bps() const {
  // The receive span must come from receive *timestamps*, not seq order:
  // under reordering the highest-seq survivor can arrive before the
  // lowest-seq one, which would make a seq-ordered span non-positive and
  // silently zero the rate.  Span = max - min received over survivors;
  // bits counted after the earliest arrival (Eq. 8's "after the first
  // received packet").
  const ProbeRecord* earliest = nullptr;
  const ProbeRecord* latest = nullptr;
  std::uint64_t bits = 0;
  std::size_t survivors = 0;
  for (const auto& p : packets) {
    if (p.lost) continue;
    ++survivors;
    bits += p.size_bytes * 8ULL;
    if (earliest == nullptr || p.received < earliest->received) earliest = &p;
    if (latest == nullptr || p.received > latest->received) latest = &p;
  }
  if (survivors < 2) return 0.0;
  sim::SimTime span = latest->received - earliest->received;
  if (span <= 0) return 0.0;
  bits -= earliest->size_bytes * 8ULL;
  return static_cast<double>(bits) / sim::to_seconds(span);
}

double StreamResult::rate_ratio() const {
  double ri = input_rate_bps();
  double ro = output_rate_bps();
  if (ri <= 0.0 || ro <= 0.0) return 0.0;
  return ro / ri;
}

std::vector<double> StreamResult::owds_seconds() const {
  std::vector<double> out;
  out.reserve(packets.size());
  for (const auto& p : packets)
    if (!p.lost) out.push_back(sim::to_seconds(p.received - p.sent));
  return out;
}

std::vector<double> StreamResult::relative_owds_ms() const {
  std::vector<double> owds = owds_seconds();
  if (owds.empty()) return owds;
  double base = owds.front();
  for (double& d : owds) d = (d - base) * 1e3;
  return owds;
}

}  // namespace abw::probe
