// ReceiverState: the one copy of per-stream receive accounting — dedup by
// sequence number, reorder detection against the highest seq seen — shared
// by every receiving endpoint: probe::ProbeSession (single simulated
// path), core::MeshScenario (routed delivery), core::ParallelScenario
// (partitioned stream driver), and the live UDP daemon (net/daemon.hpp).
//
// The semantics are ProbeSession::on_probe's, bit-for-bit: a second
// arrival for an already-received seq counts as a duplicate and keeps the
// FIRST copy's timestamp (real receivers dedup by seq the same way); a
// first arrival behind a higher seq counts as reordered.  Before this
// struct the logic lived in three hand-kept copies that had to be fixed
// in lockstep.
#pragma once

#include <cstdint>

#include "probe/stream_result.hpp"

namespace abw::probe {

struct ReceiverState {
  std::int64_t highest_seq_seen = -1;  ///< -1 = nothing received yet

  /// Rearms for a new stream.
  void reset() { highest_seq_seen = -1; }

  /// Applies one arrival of `seq` to `result`.  Returns the packet's
  /// record when this is a first arrival within range — the caller stamps
  /// `received` (against its own clock model) and counts it — or nullptr
  /// when the packet was out of range (ignored) or a duplicate (counted
  /// into result.duplicate_count).  Reorder accounting happens here.
  ProbeRecord* accept(StreamResult& result, std::uint32_t seq) {
    if (seq >= result.packets.size()) return nullptr;
    ProbeRecord& rec = result.packets[seq];
    if (!rec.lost) {
      // Fault-injected (or network) duplicate: the seq already arrived.
      // Count it — the stream is degraded — but keep the first copy.
      ++result.duplicate_count;
      return nullptr;
    }
    rec.lost = false;
    // First arrival behind a higher seq = this packet was reordered.
    if (static_cast<std::int64_t>(seq) < highest_seq_seen)
      ++result.reordered_count;
    else
      highest_seq_seen = static_cast<std::int64_t>(seq);
    return &rec;
  }
};

}  // namespace abw::probe
