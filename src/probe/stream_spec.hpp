// Probing-stream descriptions: the shapes the classified tools send.
//
//  * periodic trains  — Pathload, PTR, TOPP rates, direct probing
//  * packet pairs     — TOPP, Spruce (with exponential pair spacing)
//  * chirps           — pathChirp (exponentially shrinking gaps)
//
// A StreamSpec is just a list of (send offset, size); the factories below
// encode each tool's geometry.  Rates are always *input* rates Ri in the
// paper's sense: Ri = 8 L / gap for a periodic stream.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "stats/rng.hpp"

namespace abw::probe {

/// One probe packet within a stream, at `offset` from the stream start.
struct ProbePacketSpec {
  sim::SimTime offset;
  std::uint32_t size_bytes;
};

/// A fully specified probing stream.
struct StreamSpec {
  std::vector<ProbePacketSpec> packets;

  /// Nominal input rate Ri in bits/s: total bits after the first packet's
  /// divided by the send-span (the standard (N-1)L/span for equal sizes).
  /// Returns 0 for streams with fewer than 2 packets.
  double nominal_rate_bps() const;

  /// Duration from first to last send offset.
  sim::SimTime span() const;

  std::size_t size() const { return packets.size(); }

  /// Periodic train of `count` packets of `size` bytes at `rate_bps`.
  static StreamSpec periodic(double rate_bps, std::uint32_t size, std::size_t count);

  /// A single back-to-back-at-`rate_bps` packet pair.
  static StreamSpec packet_pair(double rate_bps, std::uint32_t size);

  /// Spruce/TOPP-style train of `pairs` packet pairs: the two packets of a
  /// pair are spaced at `intra_rate_bps`; pair starts are separated by
  /// exponential gaps with mean `mean_pair_gap` (Poisson sampling), drawn
  /// from `rng`.
  static StreamSpec pair_train(double intra_rate_bps, std::uint32_t size,
                               std::size_t pairs, sim::SimTime mean_pair_gap,
                               stats::Rng& rng);

  /// pathChirp chirp: `count` packets whose consecutive gaps shrink by the
  /// spread factor `gamma` (> 1), starting from the gap of `low_rate_bps`.
  /// Packet k..k+1 probes instantaneous rate low_rate * gamma^k.
  static StreamSpec chirp(double low_rate_bps, double gamma, std::uint32_t size,
                          std::size_t count);

  /// Instantaneous rate probed by the gap before packet k (k >= 1):
  /// 8*size / (offset[k] - offset[k-1]).
  double instantaneous_rate(std::size_t k) const;
};

}  // namespace abw::probe
