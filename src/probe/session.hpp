// ProbeSession: sender + receiver of probing streams over a simulated
// path.  This is the substrate every estimation technique in est/ runs
// on: an estimator asks the session to send a stream and gets back the
// receiver's measurements, exactly like a real tool's sender/receiver
// processes cooperating over a network — minus clock skew, which the
// simulator removes by construction (see DESIGN.md substitutions).
#pragma once

#include <cstdint>
#include <optional>

#include "obs/trace.hpp"
#include "probe/receiver_state.hpp"
#include "probe/stream_result.hpp"
#include "probe/stream_spec.hpp"
#include "sim/node.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "stats/rng.hpp"

namespace abw::probe {

/// Per-session probing totals — the overhead/intrusiveness side of the
/// paper's latency-vs-accuracy tradeoff.
struct ProbeCost {
  std::uint64_t streams = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  sim::SimTime first_send = 0;
  sim::SimTime last_activity = 0;

  /// Wall-clock measurement latency so far.
  sim::SimTime elapsed() const { return last_activity - first_send; }
};

/// Receiver clock model: real tools never have a synchronized receiver.
/// OWDs measured against this clock carry a constant offset plus a slow
/// drift — which is why tools analyze *relative* OWDs and short-stream
/// trends (drift over one stream is negligible).  Defaults are a perfect
/// clock.
struct ReceiverClock {
  sim::SimTime offset = 0;  ///< constant receiver-sender clock offset
  double drift_ppm = 0.0;   ///< receiver clock rate error, parts-per-million
  sim::SimTime quantization = 0;  ///< timestamp granularity (0 = exact);
                                  ///< e.g. 1 us for gettimeofday-era hosts
  double jitter_std_seconds = 0.0;  ///< Gaussian timestamping noise
                                    ///< (interrupt coalescing, softirq)
};

/// Sends probing streams end-to-end over a Path and collects per-packet
/// receive timestamps.  Installs itself as the path receiver via an
/// internal TypeDemux (exposed so other endpoints, e.g. TCP sinks, can
/// share the path).
class ProbeSession {
 public:
  ProbeSession(sim::Simulator& sim, sim::Path& path);

  ProbeSession(const ProbeSession&) = delete;
  ProbeSession& operator=(const ProbeSession&) = delete;

  /// Sends one stream starting at `start` (absolute sim time, >= now) and
  /// runs the simulation until every packet arrived or has been given
  /// `drain_timeout` after the last send to arrive (covers queueing and
  /// losses).  Returns the receiver's measurements.
  StreamResult send_stream(const StreamSpec& spec, sim::SimTime start);

  /// Convenience: sends starting `lead_in` after now.
  StreamResult send_stream_now(const StreamSpec& spec,
                               sim::SimTime lead_in = sim::kMillisecond);

  /// Measurement overhead accumulated so far.
  const ProbeCost& cost() const { return cost_; }

  /// The shared end-host demux (register TCP handlers here if needed).
  sim::TypeDemux& demux() { return demux_; }

  /// Maximum time to wait for in-flight packets after the last send.
  void set_drain_timeout(sim::SimTime t) { drain_timeout_ = t; }

  /// Hybrid mode: lead time by which each stream's packet window opens
  /// before its first probe, so the cross traffic is discrete (and any
  /// backlog materialized) well before the probe can interact with it.
  /// The default comfortably exceeds per-link backlog drain times at the
  /// paper's utilizations.
  void set_hybrid_guard(sim::SimTime t) { hybrid_guard_ = t; }

  /// The simulation kernel and path this session probes (estimators that
  /// drive their own workloads, e.g. BFind, need them).
  sim::Simulator& simulator() { return sim_; }
  sim::Path& path() { return path_; }

  /// Installs an unsynchronized receiver clock; all subsequent receive
  /// timestamps (hence OWDs) are measured against it.
  void set_receiver_clock(const ReceiverClock& clock) { clock_ = clock; }

  /// Attaches a trace sink receiving stream-start/stream-end events
  /// (obs/trace.hpp).  nullptr disables; not owned.  Link-level packet
  /// events are wired separately via Link::set_trace (or all at once via
  /// core::Scenario::set_trace).
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace() const { return trace_; }

 private:
  void on_probe(const sim::Packet& pkt, sim::SimTime now);

  sim::Simulator& sim_;
  sim::Path& path_;
  sim::TypeDemux demux_;
  sim::CountingSink probe_sink_;
  sim::SimTime drain_timeout_ = 2 * sim::kSecond;
  sim::SimTime hybrid_guard_ = 2 * sim::kMillisecond;
  ReceiverClock clock_;
  stats::Rng clock_rng_{0xC10CC10C};  ///< timestamping-jitter stream
  obs::TraceSink* trace_ = nullptr;   ///< not owned; nullptr = tracing off

  std::uint32_t next_stream_id_ = 1;
  // In-flight stream state (one stream at a time, like real tools).
  StreamResult* active_ = nullptr;
  std::size_t received_ = 0;
  ReceiverState recv_;  // shared dedup/reorder accounting

  ProbeCost cost_;
};

}  // namespace abw::probe
