#include "probe/stream_spec.hpp"

#include <stdexcept>

namespace abw::probe {

double StreamSpec::nominal_rate_bps() const {
  if (packets.size() < 2) return 0.0;
  std::uint64_t bits = 0;
  for (std::size_t i = 1; i < packets.size(); ++i) bits += packets[i].size_bytes * 8ULL;
  sim::SimTime s = span();
  if (s <= 0) return 0.0;
  return static_cast<double>(bits) / sim::to_seconds(s);
}

sim::SimTime StreamSpec::span() const {
  if (packets.empty()) return 0;
  return packets.back().offset - packets.front().offset;
}

StreamSpec StreamSpec::periodic(double rate_bps, std::uint32_t size,
                                std::size_t count) {
  if (rate_bps <= 0.0 || size == 0 || count == 0)
    throw std::invalid_argument("StreamSpec::periodic: bad parameters");
  sim::SimTime gap = sim::transmission_time(size, rate_bps);
  StreamSpec spec;
  spec.packets.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    spec.packets.push_back({static_cast<sim::SimTime>(i) * gap, size});
  return spec;
}

StreamSpec StreamSpec::packet_pair(double rate_bps, std::uint32_t size) {
  return periodic(rate_bps, size, 2);
}

StreamSpec StreamSpec::pair_train(double intra_rate_bps, std::uint32_t size,
                                  std::size_t pairs, sim::SimTime mean_pair_gap,
                                  stats::Rng& rng) {
  if (pairs == 0) throw std::invalid_argument("StreamSpec::pair_train: no pairs");
  if (mean_pair_gap <= 0)
    throw std::invalid_argument("StreamSpec::pair_train: bad pair gap");
  sim::SimTime intra = sim::transmission_time(size, intra_rate_bps);
  StreamSpec spec;
  spec.packets.reserve(2 * pairs);
  sim::SimTime t = 0;
  for (std::size_t p = 0; p < pairs; ++p) {
    spec.packets.push_back({t, size});
    spec.packets.push_back({t + intra, size});
    t += intra +
         sim::from_seconds(rng.exponential(sim::to_seconds(mean_pair_gap)));
  }
  return spec;
}

StreamSpec StreamSpec::chirp(double low_rate_bps, double gamma, std::uint32_t size,
                             std::size_t count) {
  if (low_rate_bps <= 0.0 || gamma <= 1.0 || count < 2)
    throw std::invalid_argument("StreamSpec::chirp: bad parameters");
  StreamSpec spec;
  spec.packets.reserve(count);
  sim::SimTime t = 0;
  double gap_s = static_cast<double>(size) * 8.0 / low_rate_bps;
  for (std::size_t i = 0; i < count; ++i) {
    spec.packets.push_back({t, size});
    t += sim::from_seconds(gap_s);
    gap_s /= gamma;
  }
  return spec;
}

double StreamSpec::instantaneous_rate(std::size_t k) const {
  if (k == 0 || k >= packets.size())
    throw std::out_of_range("StreamSpec::instantaneous_rate: k out of range");
  sim::SimTime gap = packets[k].offset - packets[k - 1].offset;
  if (gap <= 0) throw std::logic_error("StreamSpec: non-positive gap");
  return static_cast<double>(packets[k].size_bytes) * 8.0 / sim::to_seconds(gap);
}

}  // namespace abw::probe
