#include "tcp/tcp.hpp"

#include <algorithm>
#include <stdexcept>

namespace abw::tcp {

TcpConnection::TcpConnection(sim::Simulator& sim, sim::Path& path,
                             TcpReceiverHub& hub, std::uint32_t flow_id,
                             const TcpConfig& cfg, std::size_t hop, bool one_hop)
    : sim_(sim),
      path_(path),
      hub_(hub),
      flow_id_(flow_id),
      cfg_(cfg),
      hop_(hop),
      one_hop_(one_hop),
      cwnd_(cfg.initial_cwnd) {
  if (cfg.mss_bytes == 0 || cfg.wire_bytes < cfg.mss_bytes)
    throw std::invalid_argument("TcpConnection: bad segment sizes");
  if (cfg.receiver_window == 0)
    throw std::invalid_argument("TcpConnection: zero receiver window");
  total_segments_ = cfg.bytes_to_send == 0
                        ? 0
                        : static_cast<std::uint32_t>(
                              (cfg.bytes_to_send + cfg.mss_bytes - 1) / cfg.mss_bytes);
  hub_.attach(flow_id_, this);
}

TcpConnection::~TcpConnection() { hub_.detach(flow_id_); }

void TcpConnection::start(sim::SimTime t) {
  if (started_) throw std::logic_error("TcpConnection::start called twice");
  started_ = true;
  sim_.at(t, [this] {
    start_time_ = sim_.now();
    try_send();
    arm_rto();
  });
}

double TcpConnection::throughput_bps(sim::SimTime now) const {
  if (now <= start_time_) return 0.0;
  return static_cast<double>(acked_bytes()) * 8.0 / sim::to_seconds(now - start_time_);
}

void TcpConnection::try_send() {
  if (completed_) return;
  double window = std::min(cwnd_, static_cast<double>(cfg_.receiver_window));
  auto limit = highest_acked_ + static_cast<std::uint32_t>(window);
  while (next_seq_ < limit &&
         (total_segments_ == 0 || next_seq_ < total_segments_)) {
    send_segment(next_seq_);
    ++next_seq_;
  }
}

void TcpConnection::send_segment(std::uint32_t seq) {
  sim::Packet pkt;
  pkt.id = sim_.next_packet_id();
  pkt.type = sim::PacketType::kTcpData;
  pkt.measurement = cfg_.measurement_flow;
  pkt.size_bytes = cfg_.wire_bytes;
  pkt.flow_id = flow_id_;
  pkt.seq = seq;
  pkt.exit_hop = one_hop_ ? static_cast<std::uint32_t>(hop_) : sim::kEndToEnd;
  pkt.send_time = sim_.now();
  ++segments_sent_;
  // tcp_rate.c snapshot: when nothing is in flight a new sample window
  // opens at this send (both rate denominators restart here).
  if (next_seq_ == highest_acked_) {
    first_sent_of_flight_ = sim_.now();
    delivered_time_ = sim_.now();
  }
  TxRecord rec;
  rec.sent = sim_.now();
  rec.first_sent = first_sent_of_flight_;
  rec.prior_delivered = highest_acked_;
  rec.prior_delivered_time = delivered_time_;
  // App-limited: after this send the write queue is empty (bounded flows
  // only; bulk flows always have data and are window/network-limited).
  rec.app_limited = total_segments_ != 0 && seq + 1 >= total_segments_;
  send_times_[seq] = rec;
  path_.inject(hop_, pkt);
}

void TcpConnection::on_data_at_receiver(const sim::Packet& pkt) {
  // Cumulative-ACK receiver with out-of-order buffering (standard TCP
  // receiver behaviour): in-order data advances rcv_next_, possibly
  // consuming previously buffered segments; a gap buffers the segment and
  // elicits a duplicate ACK.
  if (pkt.seq == rcv_next_) {
    ++rcv_next_;
    while (rcv_buffered_.erase(rcv_next_) != 0) ++rcv_next_;
  } else if (pkt.seq > rcv_next_) {
    rcv_buffered_.insert(pkt.seq);
  }
  std::uint32_t cum = rcv_next_;
  // Deliver through the hub so the event survives connection teardown.
  TcpReceiverHub* hub = &hub_;
  std::uint32_t id = flow_id_;
  sim_.after(cfg_.reverse_delay, [hub, id, cum] { hub->deliver_ack(id, cum); });
}

void TcpConnection::on_ack(std::uint32_t cum_ack) {
  if (completed_) return;
  if (cum_ack > highest_acked_) {
    // New data acknowledged.
    auto it = send_times_.find(cum_ack - 1);
    if (it != send_times_.end()) {
      const TxRecord& rec = it->second;
      sim::SimTime rtt = sim_.now() - rec.sent;
      srtt_ = srtt_ == 0 ? rtt : (7 * srtt_ + rtt) / 8;
      rto_ = std::max(cfg_.min_rto, 2 * srtt_);
      if (rate_sample_hook_) {
        // Delivery-rate sample over the acked segment's flight window:
        // data delivered since its transmission, against both the
        // send-side and ack-side intervals (tcp_rate.c).
        std::uint32_t delivered = cum_ack - rec.prior_delivered;
        sim::SimTime snd_span = rec.sent - rec.first_sent;
        sim::SimTime ack_span = sim_.now() - rec.prior_delivered_time;
        sim::SimTime span = std::max(snd_span, ack_span);
        if (delivered > 0 && span > 0) {
          DeliveryRateSample s;
          s.time = sim_.now();
          s.delivered_bytes =
              static_cast<std::uint64_t>(delivered) * cfg_.mss_bytes;
          double bits = static_cast<double>(s.delivered_bytes) * 8.0;
          s.send_rate_bps =
              snd_span > 0 ? bits / sim::to_seconds(snd_span) : 0.0;
          s.ack_rate_bps = ack_span > 0 ? bits / sim::to_seconds(ack_span) : 0.0;
          s.delivery_rate_bps = bits / sim::to_seconds(span);
          s.app_limited = rec.app_limited;
          rate_sample_hook_(s);
        }
      }
      // Advance the send-side window to the delivered segment's
      // transmission (tcp_rate.c advances first_tx_mstamp on every
      // delivery): the next sample's send interval starts here instead of
      // stretching back to a flight start that a bulk flow never renews.
      first_sent_of_flight_ = rec.sent;
    }
    delivered_time_ = sim_.now();
    send_times_.erase(send_times_.begin(), send_times_.upper_bound(cum_ack - 1));
    highest_acked_ = cum_ack;
    dupacks_ = 0;

    if (in_recovery_) {
      if (highest_acked_ >= recovery_point_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;  // deflate
      } else {
        // Partial ACK (NewReno-style): retransmit the next hole.
        ++retransmits_;
        send_segment(highest_acked_);
        cwnd_ = ssthresh_;
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start
    } else {
      cwnd_ += 1.0 / cwnd_;  // congestion avoidance
    }

    arm_rto();

    if (total_segments_ != 0 && highest_acked_ >= total_segments_) {
      completed_ = true;
      ++rto_epoch_;  // cancel pending RTO
      if (on_complete_) on_complete_();
      return;
    }
  } else if (cum_ack == highest_acked_) {
    ++dupacks_;
    if (!in_recovery_ && dupacks_ == 3) {
      // Fast retransmit + fast recovery.
      double flight = static_cast<double>(next_seq_ - highest_acked_);
      ssthresh_ = std::max(flight / 2.0, 2.0);
      in_recovery_ = true;
      recovery_point_ = next_seq_;
      ++retransmits_;
      send_segment(highest_acked_);
      cwnd_ = ssthresh_ + 3.0;
    } else if (in_recovery_) {
      cwnd_ += 1.0;  // window inflation per extra dupack
    }
  }
  try_send();
}

void TcpConnection::arm_rto() {
  std::uint64_t epoch = ++rto_epoch_;
  TcpReceiverHub* hub = &hub_;
  std::uint32_t id = flow_id_;
  sim_.after(rto_, [hub, id, epoch] { hub->deliver_rto(id, epoch); });
}

void TcpConnection::on_rto(std::uint64_t epoch) {
  if (epoch != rto_epoch_ || completed_) return;  // stale or finished
  if (next_seq_ == highest_acked_) {
    // Nothing outstanding; idle connection, just re-arm.
    arm_rto();
    return;
  }
  double flight = static_cast<double>(next_seq_ - highest_acked_);
  ssthresh_ = std::max(flight / 2.0, 2.0);
  cwnd_ = 1.0;
  in_recovery_ = false;
  dupacks_ = 0;
  ++retransmits_;
  // Go-back-N from the hole; segments beyond will be retransmitted as the
  // window reopens.
  next_seq_ = highest_acked_;
  rto_ = std::min<sim::SimTime>(2 * rto_, 60 * sim::kSecond);  // backoff
  try_send();
  arm_rto();
}

void TcpReceiverHub::handle(sim::Packet pkt) {
  auto it = conns_.find(pkt.flow_id);
  if (it == conns_.end()) return;  // late segment of a finished flow
  it->second->on_data_at_receiver(pkt);
}

void TcpReceiverHub::deliver_ack(std::uint32_t flow_id, std::uint32_t cum_ack) {
  auto it = conns_.find(flow_id);
  if (it == conns_.end()) return;
  it->second->on_ack(cum_ack);
}

void TcpReceiverHub::deliver_rto(std::uint32_t flow_id, std::uint64_t epoch) {
  auto it = conns_.find(flow_id);
  if (it == conns_.end()) return;
  it->second->on_rto(epoch);
}

void TcpReceiverHub::attach(std::uint32_t flow_id, TcpConnection* conn) {
  if (!conns_.emplace(flow_id, conn).second)
    throw std::logic_error("TcpReceiverHub: duplicate flow id");
}

void TcpReceiverHub::detach(std::uint32_t flow_id) { conns_.erase(flow_id); }

}  // namespace abw::tcp
