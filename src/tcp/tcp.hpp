// A compact TCP Reno implementation on the simulator.
//
// The paper's final pitfall (Fig. 7) compares bulk TCP throughput with the
// avail-bw and shows they differ systematically, depending on the
// receiver's advertised window Wr and on the congestion responsiveness of
// the cross traffic.  Reproducing it needs a real congestion-control loop
// sharing the tight link with the cross traffic, so this module implements
// Reno: slow start, congestion avoidance, fast retransmit/recovery, and
// retransmission timeouts, with the receiver window as the hard cap.
//
// Simplifications (standard in simulation studies and immaterial to the
// experiment): the reverse (ACK) path is a fixed uncongested delay, ACKs
// are per-segment (no delayed ACK), and there is no three-way handshake.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>

#include "sim/node.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace abw::tcp {

/// TCP connection parameters.
struct TcpConfig {
  std::uint32_t mss_bytes = 1460;        ///< payload per segment
  std::uint32_t wire_bytes = 1500;       ///< segment size on the wire
  double initial_cwnd = 2.0;             ///< segments
  std::uint32_t receiver_window = 64;    ///< Wr, segments (hard send cap)
  sim::SimTime reverse_delay = 5 * sim::kMillisecond;  ///< ACK path latency
  sim::SimTime min_rto = 200 * sim::kMillisecond;
  std::uint64_t bytes_to_send = 0;       ///< 0 = unbounded (bulk transfer)
  bool measurement_flow = false;         ///< the flow under measurement: its
                                         ///< load is excluded from the
                                         ///< cross-traffic ground truth

};

class TcpReceiverHub;

/// One delivery-rate sample, generated per ACK that advances delivered
/// data — the tcp_rate.c design: over the interval between a segment's
/// transmission and its acknowledgment, measure both the send rate and
/// the ACK rate of the data delivered in between, and take
///
///   bw = min(send_rate, ack_rate)
///
/// (the ACK rate alone can transiently exceed the bottleneck rate under
/// ACK compression; the send rate caps it).  Samples taken while the
/// sender had no data left to send are marked app-limited: they reflect
/// the application, not the network, and estimators must not let them
/// lower the estimate.
struct DeliveryRateSample {
  sim::SimTime time = 0;           ///< ACK arrival (sim clock)
  std::uint64_t delivered_bytes = 0;  ///< payload delivered over the interval
  double send_rate_bps = 0.0;      ///< delivered / send-side interval
  double ack_rate_bps = 0.0;       ///< delivered / ack-side interval
  double delivery_rate_bps = 0.0;  ///< min(send_rate, ack_rate)
  bool app_limited = false;        ///< sender ran out of data in the window
};

/// One TCP Reno sender endpoint (the receiver half lives in the hub and
/// is a cumulative-ACK generator).
class TcpConnection {
 public:
  /// `hop` is where the connection's segments enter the path (0 for
  /// end-to-end senders); `one_hop` makes the flow one-hop persistent
  /// cross traffic.  The connection registers itself with `hub`.
  TcpConnection(sim::Simulator& sim, sim::Path& path, TcpReceiverHub& hub,
                std::uint32_t flow_id, const TcpConfig& cfg,
                std::size_t hop = 0, bool one_hop = false);
  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Begins transmitting at absolute time `t`.
  void start(sim::SimTime t);

  /// Invoked when the whole transfer completes (bytes_to_send > 0 only).
  void set_on_complete(std::function<void()> cb) { on_complete_ = std::move(cb); }

  /// Invoked on every ACK that advances delivered data, with the
  /// delivery-rate sample for the newly acknowledged segment's flight
  /// window (see DeliveryRateSample).  Passive observers (the online
  /// TcpDeliveryRateTracker) hook here; unset = zero extra work beyond
  /// the per-segment snapshot bookkeeping.
  void set_rate_sample_hook(std::function<void(const DeliveryRateSample&)> cb) {
    rate_sample_hook_ = std::move(cb);
  }

  /// Cumulative payload bytes acked so far.
  std::uint64_t acked_bytes() const {
    return static_cast<std::uint64_t>(highest_acked_) * cfg_.mss_bytes;
  }

  /// Goodput since start(), bits/s (payload bytes acked / elapsed).
  double throughput_bps(sim::SimTime now) const;

  bool completed() const { return completed_; }
  double cwnd() const { return cwnd_; }
  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t segments_sent() const { return segments_sent_; }
  std::uint32_t flow_id() const { return flow_id_; }

  /// Receiver-side entry: the hub delivers arriving data segments here.
  void on_data_at_receiver(const sim::Packet& pkt);

 private:
  friend class TcpReceiverHub;

  void on_ack(std::uint32_t cum_ack);
  void try_send();
  void send_segment(std::uint32_t seq);
  void arm_rto();
  void on_rto(std::uint64_t epoch);

  sim::Simulator& sim_;
  sim::Path& path_;
  TcpReceiverHub& hub_;
  std::uint32_t flow_id_;
  TcpConfig cfg_;
  std::size_t hop_;
  bool one_hop_;

  // Sender state (in segments).
  double cwnd_;
  double ssthresh_ = 1e9;
  std::uint32_t next_seq_ = 0;       ///< next new segment to send
  std::uint32_t highest_acked_ = 0;  ///< segments cumulatively acked
  std::uint32_t dupacks_ = 0;
  bool in_recovery_ = false;
  std::uint32_t recovery_point_ = 0;
  std::uint64_t rto_epoch_ = 0;
  sim::SimTime rto_ = 1 * sim::kSecond;
  sim::SimTime srtt_ = 0;

  /// Per-segment transmit record: the send time (for RTT samples) plus
  /// the tcp_rate.c snapshot taken at transmission, from which the
  /// delivery-rate sample is generated when the segment is acked.
  struct TxRecord {
    sim::SimTime sent = 0;            ///< transmission time
    sim::SimTime first_sent = 0;      ///< window start: first send of flight
    std::uint32_t prior_delivered = 0;       ///< delivered count at send
    sim::SimTime prior_delivered_time = 0;   ///< last delivery time at send
    bool app_limited = false;         ///< write queue empty after this send
  };
  std::map<std::uint32_t, TxRecord> send_times_;

  // Delivery-rate bookkeeping (cumulative ACKs double as the delivered
  // counter; delivered_time_ is the arrival of the latest advancing ACK).
  sim::SimTime delivered_time_ = 0;
  sim::SimTime first_sent_of_flight_ = 0;
  std::function<void(const DeliveryRateSample&)> rate_sample_hook_;

  // Receiver state.
  std::uint32_t rcv_next_ = 0;           ///< next expected segment
  std::set<std::uint32_t> rcv_buffered_; ///< out-of-order segments held

  sim::SimTime start_time_ = 0;
  bool started_ = false;
  bool completed_ = false;
  std::uint64_t retransmits_ = 0;
  std::uint64_t segments_sent_ = 0;
  std::uint32_t total_segments_ = 0;  ///< 0 = unbounded
  std::function<void()> on_complete_;
};

/// Demultiplexes arriving TCP data segments to their connection's
/// receiver half, by flow id.  Register it for PacketType::kTcpData on
/// the path's TypeDemux (or install as receiver directly).
class TcpReceiverHub final : public sim::PacketHandler {
 public:
  void handle(sim::Packet pkt) override;

  /// Delivers a (possibly delayed) cumulative ACK to a sender; silently
  /// dropped if the flow is gone — this indirection keeps scheduled ACK
  /// events safe across connection teardown.
  void deliver_ack(std::uint32_t flow_id, std::uint32_t cum_ack);

  /// Fires a sender's retransmission timer; same teardown-safety rationale.
  void deliver_rto(std::uint32_t flow_id, std::uint64_t epoch);

  /// Called by TcpConnection's ctor/dtor.
  void attach(std::uint32_t flow_id, TcpConnection* conn);
  void detach(std::uint32_t flow_id);

 private:
  std::map<std::uint32_t, TcpConnection*> conns_;
};

}  // namespace abw::tcp
