#include "tcp/flows.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abw::tcp {

PersistentFlowSet::PersistentFlowSet(sim::Simulator& sim, sim::Path& path,
                                     TcpReceiverHub& hub,
                                     std::uint32_t first_flow_id, std::size_t count,
                                     const TcpConfig& cfg, std::size_t hop) {
  if (count == 0) throw std::invalid_argument("PersistentFlowSet: count == 0");
  TcpConfig per_flow = cfg;
  per_flow.bytes_to_send = 0;  // persistent = unbounded
  flows_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    flows_.push_back(std::make_unique<TcpConnection>(
        sim, path, hub, first_flow_id + static_cast<std::uint32_t>(i), per_flow,
        hop));
  }
}

void PersistentFlowSet::start(sim::SimTime t0, sim::SimTime stagger,
                              stats::Rng& rng) {
  for (auto& f : flows_) {
    sim::SimTime offset =
        stagger > 0 ? sim::from_seconds(rng.uniform(0.0, sim::to_seconds(stagger)))
                    : 0;
    f->start(t0 + offset);
  }
}

double PersistentFlowSet::aggregate_throughput_bps(sim::SimTime now) const {
  double total = 0.0;
  for (const auto& f : flows_) total += f->throughput_bps(now);
  return total;
}

ShortFlowGenerator::ShortFlowGenerator(sim::Simulator& sim, sim::Path& path,
                                       TcpReceiverHub& hub,
                                       std::uint32_t first_flow_id,
                                       const ShortFlowConfig& cfg, stats::Rng rng,
                                       std::size_t hop)
    : sim_(sim),
      path_(path),
      hub_(hub),
      next_flow_id_(first_flow_id),
      cfg_(cfg),
      rng_(std::move(rng)),
      hop_(hop) {
  if (cfg.flow_arrival_rate <= 0.0 || cfg.mean_flow_bytes <= 0.0 ||
      cfg.size_shape <= 1.0)
    throw std::invalid_argument("ShortFlowGenerator: bad config");
}

void ShortFlowGenerator::start(sim::SimTime t0, sim::SimTime t1) {
  if (t1 <= t0) throw std::invalid_argument("ShortFlowGenerator: empty window");
  t1_ = t1;
  sim_.at(t0, [this] { arm_next(); });
}

void ShortFlowGenerator::arm_next() {
  sim::SimTime gap = sim::from_seconds(rng_.exponential(1.0 / cfg_.flow_arrival_rate));
  sim::SimTime when = sim_.now() + gap;
  if (when >= t1_) return;
  sim_.at(when, [this] {
    spawn();
    arm_next();
  });
}

void ShortFlowGenerator::spawn() {
  ++flows_started_;
  reap();
  // Pareto sizes, scale chosen so the mean matches cfg.mean_flow_bytes.
  double xm = cfg_.mean_flow_bytes * (cfg_.size_shape - 1.0) / cfg_.size_shape;
  auto bytes = static_cast<std::uint64_t>(
      std::max(1.0, rng_.pareto(cfg_.size_shape, xm)));
  TcpConfig per_flow = cfg_.tcp;
  per_flow.bytes_to_send = bytes;
  auto conn = std::make_unique<TcpConnection>(sim_, path_, hub_, next_flow_id_++,
                                              per_flow, hop_);
  TcpConnection* raw = conn.get();
  raw->set_on_complete([this] { ++flows_completed_; });
  live_.push_back(std::move(conn));
  raw->start(sim_.now());
}

void ShortFlowGenerator::reap() {
  auto it = std::remove_if(live_.begin(), live_.end(), [this](const auto& c) {
    if (!c->completed()) return false;
    reaped_acked_bytes_ += c->acked_bytes();
    return true;
  });
  live_.erase(it, live_.end());
}

std::uint64_t ShortFlowGenerator::total_acked_bytes() const {
  std::uint64_t total = reaped_acked_bytes_;
  for (const auto& c : live_) total += c->acked_bytes();
  return total;
}

}  // namespace abw::tcp
