// Cross-traffic flow populations for the TCP-throughput experiment
// (Fig. 7): window-limited persistent transfers and an aggregate of many
// short TCP flows.  Both are *congestion responsive* — the property the
// paper shows makes bulk-TCP throughput deviate from the avail-bw in
// either direction.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "stats/rng.hpp"
#include "tcp/tcp.hpp"

namespace abw::tcp {

/// A fixed set of persistent (unbounded) TCP transfers, each capped by a
/// small advertised window — the paper's "a few persistent TCP transfers
/// limited by their advertised windows".
class PersistentFlowSet {
 public:
  /// Creates `count` connections with the given per-flow config, flow ids
  /// starting at `first_flow_id`, entering at `hop`.
  PersistentFlowSet(sim::Simulator& sim, sim::Path& path, TcpReceiverHub& hub,
                    std::uint32_t first_flow_id, std::size_t count,
                    const TcpConfig& cfg, std::size_t hop = 0);

  /// Staggers connection starts uniformly over [t0, t0 + stagger).
  void start(sim::SimTime t0, sim::SimTime stagger, stats::Rng& rng);

  /// Aggregate goodput of the set, bits/s.
  double aggregate_throughput_bps(sim::SimTime now) const;

  std::size_t size() const { return flows_.size(); }
  TcpConnection& flow(std::size_t i) { return *flows_.at(i); }

 private:
  std::vector<std::unique_ptr<TcpConnection>> flows_;
};

/// Parameters for the short-flow workload ("an aggregate of many short
/// TCP transfers"): Poisson flow arrivals, Pareto-ish flow sizes.
struct ShortFlowConfig {
  double flow_arrival_rate = 20.0;        ///< flows per second
  double mean_flow_bytes = 50e3;          ///< mean transfer size
  double size_shape = 1.8;                ///< Pareto shape of flow sizes
  TcpConfig tcp;                          ///< per-flow TCP parameters
};

/// Spawns short TCP transfers as a Poisson process over an active window;
/// completed connections are reaped lazily.
class ShortFlowGenerator {
 public:
  ShortFlowGenerator(sim::Simulator& sim, sim::Path& path, TcpReceiverHub& hub,
                     std::uint32_t first_flow_id, const ShortFlowConfig& cfg,
                     stats::Rng rng, std::size_t hop = 0);

  /// Activates flow arrivals during [t0, t1).
  void start(sim::SimTime t0, sim::SimTime t1);

  std::uint64_t flows_started() const { return flows_started_; }
  std::uint64_t flows_completed() const { return flows_completed_; }

  /// Payload bytes acked across all flows (live and reaped), for offered
  /// load accounting.
  std::uint64_t total_acked_bytes() const;

 private:
  void arm_next();
  void spawn();
  void reap();

  sim::Simulator& sim_;
  sim::Path& path_;
  TcpReceiverHub& hub_;
  std::uint32_t next_flow_id_;
  ShortFlowConfig cfg_;
  stats::Rng rng_;
  std::size_t hop_;

  sim::SimTime t1_ = 0;
  std::uint64_t flows_started_ = 0;
  std::uint64_t flows_completed_ = 0;
  std::uint64_t reaped_acked_bytes_ = 0;
  std::vector<std::unique_ptr<TcpConnection>> live_;
};

}  // namespace abw::tcp
