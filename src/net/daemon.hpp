// abwd — the measurement daemon: the live counterpart of the simulated
// receiver half of probe::ProbeSession.
//
// One UDP socket, one poll() loop on a private thread, many concurrent
// measurement sessions demultiplexed by the session_id the daemon
// assigns at kHello.  Per stream the daemon runs the SAME
// probe::ReceiverState dedup/reorder accounting the simulator uses, so a
// live StreamResult is impaired exactly the way a simulated one is.
//
// Admission control: each kHello advertises the client's EstimatorLimits
// (probe-packet budget and deadline).  The daemon enforces them
// server-side — a session over budget/deadline gets a kAbort and its
// probes are dropped — so a misbehaving client cannot probe harder than
// it declared (the paper's intrusiveness concern, applied to the tool
// itself).
//
// Receive timestamps come from SO_TIMESTAMPNS when the socket supports
// it (kernel stamp at softirq time, before scheduling delay), falling
// back to clock_gettime(CLOCK_REALTIME) at recvmsg return.  Stamps are
// reported as nanoseconds since the daemon started: client and daemon
// clocks are deliberately NOT aligned — the constant offset is the
// unsynchronized receiver clock every real tool faces (the simulator's
// probe::ReceiverClock offset).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace abw::net {

/// Daemon parameters.
struct DaemonConfig {
  std::string bind_host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read back with port()
  std::size_t max_sessions = 64;     ///< admission: kHelloReject beyond
  std::size_t max_streams_kept = 8;  ///< per session; oldest dropped
  sim::SimTime idle_timeout = 30 * sim::kSecond;  ///< session GC
};

/// Counters the daemon maintains (atomically) while running; snapshot
/// with Daemon::snapshot_metrics or read individually in tests.
struct DaemonStats {
  std::uint64_t datagrams_in = 0;
  std::uint64_t probes_in = 0;
  std::uint64_t sessions_admitted = 0;
  std::uint64_t sessions_rejected = 0;
  std::uint64_t sessions_expired = 0;
  std::uint64_t aborts_sent = 0;
  std::uint64_t reports_sent = 0;
  std::uint64_t malformed = 0;
};

/// The measurement daemon.  Construction binds the socket (throws
/// std::runtime_error on failure); start() launches the loop thread;
/// stop() (or the destructor) shuts it down.
class Daemon {
 public:
  explicit Daemon(const DaemonConfig& cfg = {});
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  void start();
  void stop();

  /// The bound UDP port (resolves config port 0).
  std::uint16_t port() const { return port_; }

  /// True while the loop thread is running.
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Sessions currently admitted and not expired.
  std::size_t active_sessions() const;

  /// Point-in-time copy of the counters.
  DaemonStats stats() const;

  /// Attaches a trace sink receiving session-level kDecision events
  /// (hello/reject/abort/report).  Emitted from the daemon thread under
  /// an internal mutex; the sink itself need not be thread-safe as long
  /// as no other thread emits into it concurrently.  nullptr detaches.
  void set_trace(obs::TraceSink* sink);

  /// Writes the daemon's counters into `m` ("abwd.*" namespace).
  void snapshot_metrics(obs::MetricsRegistry& m) const;

 private:
  struct Impl;
  Impl* impl_;  // pimpl: keeps <sys/socket.h> out of this header

  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  std::thread thread_;
};

}  // namespace abw::net
