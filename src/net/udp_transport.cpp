#include "net/udp_transport.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "net/wire.hpp"

namespace abw::net {

namespace {

std::int64_t monotonic_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

void sleep_ns(std::int64_t ns) {
  if (ns <= 0) return;
  timespec ts{};
  ts.tv_sec = ns / 1000000000;
  ts.tv_nsec = ns % 1000000000;
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

// Pacing slack: sleep until this many ns before the target offset, then
// spin on the clock.  Probe gaps at the repo's default rates go down to
// ~40 us; nanosleep alone overshoots by scheduler quanta.
constexpr std::int64_t kSpinWindowNs = 200000;

}  // namespace

UdpTransport::UdpTransport(const UdpTransportConfig& cfg) : cfg_(cfg) {
  epoch_ns_ = monotonic_ns();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) throw std::runtime_error("UdpTransport: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.port);
  if (::inet_pton(AF_INET, cfg.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw std::runtime_error("UdpTransport: bad peer address " + cfg.host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int e = errno;
    ::close(fd_);
    throw std::runtime_error(std::string("UdpTransport: connect failed: ") +
                             std::strerror(e));
  }
}

UdpTransport::~UdpTransport() {
  close_session();
  if (fd_ >= 0) ::close(fd_);
}

sim::SimTime UdpTransport::now() { return monotonic_ns() - epoch_ns_; }

void UdpTransport::wait(sim::SimTime duration) { sleep_ns(duration); }

void UdpTransport::close_session() {
  if (fd_ < 0 || session_id_ == 0) return;
  unsigned char buf[kHeaderSize];
  WireHeader h;
  h.type = static_cast<std::uint8_t>(MsgType::kBye);
  h.session_id = session_id_;
  encode_header(h, buf);
  (void)::send(fd_, buf, sizeof(buf), 0);
  session_id_ = 0;
}

bool UdpTransport::ensure_session() {
  if (session_id_ != 0) return true;
  if (hello_failed_) return false;
  unsigned char buf[kMaxDatagram];
  WireHeader hello;
  hello.type = static_cast<std::uint8_t>(MsgType::kHello);
  hello.count = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(cfg_.advertise_budget_packets, UINT32_MAX));
  hello.t_ns = static_cast<std::uint64_t>(
      cfg_.advertise_deadline > 0 ? cfg_.advertise_deadline : 0);
  for (int attempt = 0; attempt < cfg_.hello_retries; ++attempt) {
    encode_header(hello, buf);
    if (::send(fd_, buf, kHeaderSize, 0) < 0 && errno != ECONNREFUSED) {
      // Transient send failure: treated like loss, retry after timeout.
    }
    std::int64_t deadline = monotonic_ns() + cfg_.hello_timeout;
    for (;;) {
      std::int64_t left = deadline - monotonic_ns();
      if (left <= 0) break;
      pollfd pfd{fd_, POLLIN, 0};
      int n = ::poll(&pfd, 1, static_cast<int>(left / 1000000 + 1));
      if (n <= 0) continue;
      ssize_t got = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
      if (got < 0) continue;
      WireHeader h;
      if (!decode_header(buf, static_cast<std::size_t>(got), &h)) continue;
      if (h.type == static_cast<std::uint8_t>(MsgType::kHelloAck)) {
        session_id_ = h.session_id;
        return true;
      }
      if (h.type == static_cast<std::uint8_t>(MsgType::kHelloReject)) {
        hello_failed_ = true;
        return false;
      }
    }
  }
  hello_failed_ = true;
  return false;
}

probe::StreamResult UdpTransport::send_stream(const probe::StreamSpec& spec,
                                              sim::SimTime lead_in) {
  if (spec.packets.empty())
    throw std::invalid_argument("UdpTransport: empty stream");

  probe::StreamResult result;
  result.stream_id = next_stream_id_++;
  result.packets.resize(spec.packets.size());
  auto stream_count = static_cast<std::uint32_t>(spec.packets.size());

  if (cost_.streams == 0) cost_.first_send = now() + lead_in;
  ++cost_.streams;
  for (std::size_t i = 0; i < spec.packets.size(); ++i) {
    result.packets[i].seq = static_cast<std::uint32_t>(i);
    result.packets[i].size_bytes = spec.packets[i].size_bytes;
    result.packets[i].lost = true;
    ++cost_.packets;
    cost_.bytes += spec.packets[i].size_bytes;
  }

  if (!ensure_session()) {
    // Peer unreachable: the stream's span still elapses (the estimator's
    // deadline must keep running down) and everything is lost.
    wait(lead_in + spec.span());
    for (std::size_t i = 0; i < spec.packets.size(); ++i)
      result.packets[i].sent = now();
    cost_.last_activity = now();
    return result;
  }

  unsigned char buf[kMaxDatagram];
  std::memset(buf, 0, sizeof(buf));

  // Pace the sends on the monotonic clock, stamping actual send times.
  sim::SimTime start = now() + lead_in;
  for (std::size_t i = 0; i < spec.packets.size(); ++i) {
    std::int64_t target = start + spec.packets[i].offset;
    std::int64_t left = target - now();
    if (left > kSpinWindowNs) sleep_ns(left - kSpinWindowNs);
    while (now() < target) {
    }
    WireHeader h;
    h.type = static_cast<std::uint8_t>(MsgType::kProbe);
    h.session_id = session_id_;
    h.stream_id = result.stream_id;
    h.seq = static_cast<std::uint32_t>(i);
    sim::SimTime stamp = now();
    h.t_ns = static_cast<std::uint64_t>(stamp);
    h.count = stream_count;
    std::size_t wire_size =
        std::clamp<std::size_t>(spec.packets[i].size_bytes, kHeaderSize,
                                kMaxDatagram);
    h.aux = static_cast<std::uint32_t>(wire_size);
    encode_header(h, buf);
    result.packets[i].sent = stamp;
    (void)::send(fd_, buf, wire_size, 0);  // failure == loss; report decides
  }

  // Collect the receiver's report, re-requesting on timeout.  A retried
  // kStreamEnd also sweeps up probes that were still in flight.
  std::vector<bool> have_fragment;
  std::size_t fragments_total = 0;
  std::size_t fragments_have = 0;
  bool done = false;
  for (int attempt = 0; attempt < cfg_.report_retries && !done; ++attempt) {
    WireHeader end;
    end.type = static_cast<std::uint8_t>(MsgType::kStreamEnd);
    end.session_id = session_id_;
    end.stream_id = result.stream_id;
    end.count = stream_count;
    end.aux = static_cast<std::uint32_t>(attempt);
    encode_header(end, buf);
    (void)::send(fd_, buf, kHeaderSize, 0);

    std::int64_t deadline = monotonic_ns() + cfg_.report_timeout;
    while (!done) {
      std::int64_t left = deadline - monotonic_ns();
      if (left <= 0) break;
      pollfd pfd{fd_, POLLIN, 0};
      int n = ::poll(&pfd, 1, static_cast<int>(left / 1000000 + 1));
      if (n <= 0) continue;
      ssize_t got = ::recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
      if (got < 0) continue;
      WireHeader h;
      if (!decode_header(buf, static_cast<std::size_t>(got), &h)) continue;
      if (h.type == static_cast<std::uint8_t>(MsgType::kAbort)) {
        // Server-side admission control tripped: everything from here on
        // is lost; the estimator's own LimitGuard reports the abort.
        done = true;
        break;
      }
      if (h.type != static_cast<std::uint8_t>(MsgType::kReport) ||
          h.stream_id != result.stream_id)
        continue;  // stray (old stream / handshake residue)
      if (h.count == 0 || h.count > (1u << 16)) continue;  // absurd fragment count
      if (fragments_total == 0) {
        fragments_total = h.count;
        have_fragment.assign(fragments_total, false);
        result.duplicate_count = static_cast<std::uint32_t>(h.t_ns >> 32);
        result.reordered_count = static_cast<std::uint32_t>(h.t_ns);
      }
      if (h.seq >= fragments_total || have_fragment[h.seq]) continue;
      std::size_t expect = kHeaderSize + h.aux * kReportRecordSize;
      if (h.aux > kReportRecordsPerFragment ||
          static_cast<std::size_t>(got) < expect)
        continue;
      have_fragment[h.seq] = true;
      ++fragments_have;
      for (std::uint32_t r = 0; r < h.aux; ++r) {
        ReportRecord rec =
            decode_report_record(buf + kHeaderSize + r * kReportRecordSize);
        if (rec.seq >= result.packets.size()) continue;
        result.packets[rec.seq].lost = false;
        result.packets[rec.seq].received =
            static_cast<sim::SimTime>(rec.recv_ns);
      }
      if (fragments_have == fragments_total) done = true;
    }
  }

  cost_.last_activity = now();
  return result;
}

}  // namespace abw::net
