#include "net/daemon.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <stdexcept>
#include <vector>

#include "net/wire.hpp"
#include "probe/receiver_state.hpp"
#include "probe/stream_result.hpp"

namespace abw::net {

namespace {

std::int64_t realtime_ns() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

// Streams are bounded to something a report can describe; a count beyond
// this is a malformed (or hostile) header, not a measurement.
constexpr std::uint32_t kMaxStreamPackets = 1u << 20;

}  // namespace

struct Daemon::Impl {
  struct Stream {
    probe::StreamResult result;
    probe::ReceiverState recv;
  };

  struct Session {
    std::uint64_t id = 0;
    sockaddr_in peer{};
    std::uint64_t budget_packets = 0;  // 0 = unlimited
    std::int64_t deadline_ns = 0;      // 0 = unlimited
    std::int64_t admitted_ns = 0;
    std::int64_t last_activity_ns = 0;
    std::uint64_t packets_seen = 0;
    bool aborted = false;
    AbortCode abort_code = AbortCode::kNone;
    std::map<std::uint32_t, Stream> streams;  // ordered: oldest first
  };

  DaemonConfig cfg;
  int fd = -1;
  bool have_so_timestampns = false;
  std::int64_t epoch_ns = 0;  // CLOCK_REALTIME at construction

  mutable std::mutex mu;  // guards sessions, stats, trace
  std::map<std::uint64_t, Session> sessions;
  std::uint64_t next_session_id = 1;
  DaemonStats stats;
  obs::TraceSink* trace = nullptr;

  unsigned char out[kMaxDatagram];

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }

  std::int64_t now_ns() const { return realtime_ns() - epoch_ns; }

  void emit(std::string_view label, std::string_view text,
            std::uint64_t session_id, std::uint32_t stream_id,
            std::uint64_t count) {
    // mu held by every caller.
    if (trace == nullptr) return;
    obs::TraceEvent e;
    e.kind = obs::EventKind::kDecision;
    e.time = now_ns();
    e.source = "abwd";
    e.label = label;
    e.text = text;
    e.stream_id = stream_id;
    e.count = count;
    e.value = static_cast<double>(session_id);
    trace->emit(e);
  }

  void send_to(const sockaddr_in& peer, const WireHeader& h,
               const unsigned char* payload, std::size_t payload_len) {
    encode_header(h, out);
    if (payload_len > 0 && payload != out + kHeaderSize)
      std::memcpy(out + kHeaderSize, payload, payload_len);
    // Best effort: UDP send failures (ENOBUFS, peer gone) are the same
    // as network loss to the client, which must cope anyway.
    (void)::sendto(fd, out, kHeaderSize + payload_len, 0,
                   reinterpret_cast<const sockaddr*>(&peer), sizeof(peer));
  }

  void send_control(const sockaddr_in& peer, MsgType type,
                    std::uint64_t session_id, AbortCode code) {
    WireHeader h;
    h.type = static_cast<std::uint8_t>(type);
    h.session_id = session_id;
    h.aux = static_cast<std::uint32_t>(code);
    send_to(peer, h, nullptr, 0);
  }

  void on_hello(const sockaddr_in& peer, const WireHeader& h,
                std::int64_t stamp_ns) {
    std::lock_guard<std::mutex> lock(mu);
    if (sessions.size() >= cfg.max_sessions) {
      ++stats.sessions_rejected;
      emit("hello", "reject-full", 0, 0, sessions.size());
      send_control(peer, MsgType::kHelloReject, 0, AbortCode::kSessionsFull);
      return;
    }
    Session s;
    s.id = next_session_id++;
    s.peer = peer;
    s.budget_packets = h.count;
    s.deadline_ns = static_cast<std::int64_t>(h.t_ns);
    s.admitted_ns = stamp_ns;
    s.last_activity_ns = stamp_ns;
    std::uint64_t id = s.id;
    sessions.emplace(id, std::move(s));
    ++stats.sessions_admitted;
    emit("hello", "admit", id, 0, h.count);
    WireHeader ack;
    ack.type = static_cast<std::uint8_t>(MsgType::kHelloAck);
    ack.session_id = id;
    send_to(peer, ack, nullptr, 0);
  }

  // Returns the session for `h`, enforcing the advertised limits; sends
  // the kAbort (once) and returns nullptr when the session is over
  // budget/deadline or unknown.  mu held by the caller.
  Session* admit(const sockaddr_in& peer, const WireHeader& h,
                 std::int64_t stamp_ns, std::uint64_t probe_cost) {
    auto it = sessions.find(h.session_id);
    if (it == sessions.end()) {
      send_control(peer, MsgType::kAbort, h.session_id,
                   AbortCode::kUnknownSession);
      return nullptr;
    }
    Session& s = it->second;
    s.last_activity_ns = stamp_ns;
    if (s.aborted) return nullptr;
    AbortCode code = AbortCode::kNone;
    if (s.deadline_ns > 0 && stamp_ns - s.admitted_ns > s.deadline_ns)
      code = AbortCode::kDeadline;
    s.packets_seen += probe_cost;
    if (code == AbortCode::kNone && s.budget_packets > 0 &&
        s.packets_seen > s.budget_packets)
      code = AbortCode::kProbeBudget;
    if (code != AbortCode::kNone) {
      s.aborted = true;
      s.abort_code = code;
      ++stats.aborts_sent;
      emit("abort", abort_code_name(code), s.id, h.stream_id, s.packets_seen);
      send_control(peer, MsgType::kAbort, s.id, code);
      return nullptr;
    }
    return &s;
  }

  void on_probe(const sockaddr_in& peer, const WireHeader& h,
                std::size_t datagram_len, std::int64_t stamp_ns) {
    std::lock_guard<std::mutex> lock(mu);
    ++stats.probes_in;
    Session* s = admit(peer, h, stamp_ns, 1);
    if (s == nullptr) return;
    if (h.count == 0 || h.count > kMaxStreamPackets) {
      ++stats.malformed;
      return;
    }
    auto [it, fresh] = s->streams.try_emplace(h.stream_id);
    Stream& st = it->second;
    if (fresh) {
      st.result.stream_id = h.stream_id;
      st.result.packets.resize(h.count);
      for (std::uint32_t i = 0; i < h.count; ++i) {
        st.result.packets[i].seq = i;
        st.result.packets[i].lost = true;
      }
      st.recv.reset();
      while (s->streams.size() > cfg.max_streams_kept)
        s->streams.erase(s->streams.begin());
    }
    probe::ProbeRecord* rec = st.recv.accept(st.result, h.seq);
    if (rec == nullptr) return;  // duplicate (counted) or out of range
    rec->size_bytes = static_cast<std::uint32_t>(datagram_len);
    rec->sent = static_cast<sim::SimTime>(h.t_ns);
    rec->received = stamp_ns;
  }

  void on_stream_end(const sockaddr_in& peer, const WireHeader& h,
                     std::int64_t stamp_ns) {
    std::lock_guard<std::mutex> lock(mu);
    Session* s = admit(peer, h, stamp_ns, 0);
    if (s == nullptr) return;
    auto it = s->streams.find(h.stream_id);
    if (it == s->streams.end()) {
      // Every probe of the stream was lost: synthesize the empty stream
      // so the client gets a (vacuous) report instead of a timeout.
      if (h.count == 0 || h.count > kMaxStreamPackets) {
        ++stats.malformed;
        return;
      }
      auto [fresh_it, _] = s->streams.try_emplace(h.stream_id);
      fresh_it->second.result.stream_id = h.stream_id;
      fresh_it->second.result.packets.resize(h.count);
      for (std::uint32_t i = 0; i < h.count; ++i) {
        fresh_it->second.result.packets[i].seq = i;
        fresh_it->second.result.packets[i].lost = true;
      }
      it = fresh_it;
    }
    send_report(peer, *s, it->second);
  }

  // Sends the full report for `st`: received (seq, stamp) records split
  // into MTU-sized fragments.  A retried kStreamEnd re-enters here and
  // naturally picks up probes that were still in flight the first time.
  void send_report(const sockaddr_in& peer, Session& s, const Stream& st) {
    std::vector<ReportRecord> records;
    records.reserve(st.result.packets.size());
    for (const probe::ProbeRecord& r : st.result.packets)
      if (!r.lost)
        records.push_back(
            {r.seq, static_cast<std::uint64_t>(r.received)});
    std::size_t fragments =
        records.empty() ? 1
                        : (records.size() + kReportRecordsPerFragment - 1) /
                              kReportRecordsPerFragment;
    std::uint64_t impair =
        (static_cast<std::uint64_t>(st.result.duplicate_count) << 32) |
        st.result.reordered_count;
    for (std::size_t f = 0; f < fragments; ++f) {
      std::size_t begin = f * kReportRecordsPerFragment;
      std::size_t end = std::min(begin + kReportRecordsPerFragment,
                                 records.size());
      WireHeader h;
      h.type = static_cast<std::uint8_t>(MsgType::kReport);
      h.session_id = s.id;
      h.stream_id = st.result.stream_id;
      h.seq = static_cast<std::uint32_t>(f);
      h.count = static_cast<std::uint32_t>(fragments);
      h.aux = static_cast<std::uint32_t>(end - begin);
      h.t_ns = impair;
      encode_header(h, out);
      for (std::size_t i = begin; i < end; ++i)
        encode_report_record(records[i],
                             out + kHeaderSize + (i - begin) * kReportRecordSize);
      (void)::sendto(fd, out,
                     kHeaderSize + (end - begin) * kReportRecordSize, 0,
                     reinterpret_cast<const sockaddr*>(&peer), sizeof(peer));
    }
    ++stats.reports_sent;
    emit("report", "sent", s.id, st.result.stream_id, records.size());
  }

  void on_bye(const WireHeader& h) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = sessions.find(h.session_id);
    if (it == sessions.end()) return;
    emit("bye", "closed", h.session_id, 0, it->second.packets_seen);
    sessions.erase(it);
  }

  void expire_sessions(std::int64_t now) {
    std::lock_guard<std::mutex> lock(mu);
    for (auto it = sessions.begin(); it != sessions.end();) {
      if (now - it->second.last_activity_ns >
          static_cast<std::int64_t>(cfg.idle_timeout)) {
        ++stats.sessions_expired;
        emit("expire", "idle", it->first, 0, 0);
        it = sessions.erase(it);
      } else {
        ++it;
      }
    }
  }

  void handle(const unsigned char* buf, std::size_t len,
              const sockaddr_in& peer, std::int64_t stamp_ns) {
    WireHeader h;
    if (!decode_header(buf, len, &h)) {
      std::lock_guard<std::mutex> lock(mu);
      ++stats.malformed;
      return;
    }
    switch (static_cast<MsgType>(h.type)) {
      case MsgType::kHello: on_hello(peer, h, stamp_ns); break;
      case MsgType::kProbe: on_probe(peer, h, len, stamp_ns); break;
      case MsgType::kStreamEnd: on_stream_end(peer, h, stamp_ns); break;
      case MsgType::kBye: on_bye(h); break;
      default: {
        // Client-bound types arriving here are stray reflections; drop.
        std::lock_guard<std::mutex> lock(mu);
        ++stats.malformed;
        break;
      }
    }
  }

  void loop(std::atomic<bool>& stop_requested) {
    unsigned char buf[kMaxDatagram];
    alignas(cmsghdr) char ctrl[256];
    std::int64_t last_gc = now_ns();
    while (!stop_requested.load(std::memory_order_acquire)) {
      pollfd pfd{fd, POLLIN, 0};
      int n = ::poll(&pfd, 1, 50);
      if (n < 0) {
        if (errno == EINTR) continue;
        break;
      }
      std::int64_t now = now_ns();
      if (now - last_gc > static_cast<std::int64_t>(sim::kSecond)) {
        expire_sessions(now);
        last_gc = now;
      }
      if (n == 0) continue;
      // Drain everything queued before polling again.
      for (;;) {
        sockaddr_in peer{};
        iovec iov{buf, sizeof(buf)};
        msghdr msg{};
        msg.msg_name = &peer;
        msg.msg_namelen = sizeof(peer);
        msg.msg_iov = &iov;
        msg.msg_iovlen = 1;
        msg.msg_control = ctrl;
        msg.msg_controllen = sizeof(ctrl);
        ssize_t got = ::recvmsg(fd, &msg, MSG_DONTWAIT);
        if (got < 0) break;  // EAGAIN: queue drained
        std::int64_t stamp = 0;
        if (have_so_timestampns) {
          for (cmsghdr* c = CMSG_FIRSTHDR(&msg); c != nullptr;
               c = CMSG_NXTHDR(&msg, c)) {
            if (c->cmsg_level == SOL_SOCKET && c->cmsg_type == SO_TIMESTAMPNS) {
              timespec ts{};
              std::memcpy(&ts, CMSG_DATA(c), sizeof(ts));
              stamp = static_cast<std::int64_t>(ts.tv_sec) * 1000000000 +
                      ts.tv_nsec - epoch_ns;
              break;
            }
          }
        }
        if (stamp == 0) stamp = now_ns();
        {
          std::lock_guard<std::mutex> lock(mu);
          ++stats.datagrams_in;
        }
        handle(buf, static_cast<std::size_t>(got), peer, stamp);
      }
    }
  }
};

Daemon::Daemon(const DaemonConfig& cfg) : impl_(new Impl) {
  impl_->cfg = cfg;
  impl_->epoch_ns = realtime_ns();

  impl_->fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (impl_->fd < 0) {
    delete impl_;
    throw std::runtime_error("abwd: socket() failed");
  }
  int one = 1;
  impl_->have_so_timestampns =
      ::setsockopt(impl_->fd, SOL_SOCKET, SO_TIMESTAMPNS, &one, sizeof(one)) ==
      0;

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(cfg.port);
  if (::inet_pton(AF_INET, cfg.bind_host.c_str(), &addr.sin_addr) != 1) {
    delete impl_;
    throw std::runtime_error("abwd: bad bind address " + cfg.bind_host);
  }
  if (::bind(impl_->fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    int e = errno;
    delete impl_;
    throw std::runtime_error(std::string("abwd: bind failed: ") +
                             std::strerror(e));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  ::getsockname(impl_->fd, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);
}

Daemon::~Daemon() {
  stop();
  delete impl_;
}

void Daemon::start() {
  if (running_.load(std::memory_order_acquire)) return;
  stop_requested_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] {
    impl_->loop(stop_requested_);
    running_.store(false, std::memory_order_release);
  });
}

void Daemon::stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_release);
}

std::size_t Daemon::active_sessions() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->sessions.size();
}

DaemonStats Daemon::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

void Daemon::set_trace(obs::TraceSink* sink) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->trace = sink;
}

void Daemon::snapshot_metrics(obs::MetricsRegistry& m) const {
  DaemonStats s = stats();
  m.counter("abwd.datagrams_in").set(s.datagrams_in);
  m.counter("abwd.probes_in").set(s.probes_in);
  m.counter("abwd.sessions_admitted").set(s.sessions_admitted);
  m.counter("abwd.sessions_rejected").set(s.sessions_rejected);
  m.counter("abwd.sessions_expired").set(s.sessions_expired);
  m.counter("abwd.aborts_sent").set(s.aborts_sent);
  m.counter("abwd.reports_sent").set(s.reports_sent);
  m.counter("abwd.malformed").set(s.malformed);
  m.gauge("abwd.active_sessions").set(static_cast<double>(active_sessions()));
}

}  // namespace abw::net
