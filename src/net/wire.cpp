#include "net/wire.hpp"

namespace abw::net {

namespace {

void put_u16(unsigned char* b, std::uint16_t v) {
  b[0] = static_cast<unsigned char>(v);
  b[1] = static_cast<unsigned char>(v >> 8);
}

void put_u32(unsigned char* b, std::uint32_t v) {
  b[0] = static_cast<unsigned char>(v);
  b[1] = static_cast<unsigned char>(v >> 8);
  b[2] = static_cast<unsigned char>(v >> 16);
  b[3] = static_cast<unsigned char>(v >> 24);
}

void put_u64(unsigned char* b, std::uint64_t v) {
  put_u32(b, static_cast<std::uint32_t>(v));
  put_u32(b + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint16_t get_u16(const unsigned char* b) {
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t get_u32(const unsigned char* b) {
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

std::uint64_t get_u64(const unsigned char* b) {
  return static_cast<std::uint64_t>(get_u32(b)) |
         (static_cast<std::uint64_t>(get_u32(b + 4)) << 32);
}

}  // namespace

std::string_view abort_code_name(AbortCode c) {
  switch (c) {
    case AbortCode::kNone: return "none";
    case AbortCode::kSessionsFull: return "sessions-full";
    case AbortCode::kBadVersion: return "bad-version";
    case AbortCode::kProbeBudget: return "probe-budget";
    case AbortCode::kDeadline: return "deadline";
    case AbortCode::kUnknownSession: return "unknown-session";
  }
  return "unknown";
}

void encode_header(const WireHeader& h, unsigned char* buf) {
  put_u32(buf, h.magic);
  buf[4] = h.version;
  buf[5] = h.type;
  put_u16(buf + 6, h.reserved);
  put_u64(buf + 8, h.session_id);
  put_u32(buf + 16, h.stream_id);
  put_u32(buf + 20, h.seq);
  put_u64(buf + 24, h.t_ns);
  put_u32(buf + 32, h.count);
  put_u32(buf + 36, h.aux);
}

bool decode_header(const unsigned char* buf, std::size_t len, WireHeader* out) {
  if (len < kHeaderSize) return false;
  WireHeader h;
  h.magic = get_u32(buf);
  if (h.magic != kMagic) return false;
  h.version = buf[4];
  if (h.version != kVersion) return false;
  h.type = buf[5];
  h.reserved = get_u16(buf + 6);
  h.session_id = get_u64(buf + 8);
  h.stream_id = get_u32(buf + 16);
  h.seq = get_u32(buf + 20);
  h.t_ns = get_u64(buf + 24);
  h.count = get_u32(buf + 32);
  h.aux = get_u32(buf + 36);
  *out = h;
  return true;
}

void encode_report_record(const ReportRecord& r, unsigned char* buf) {
  put_u32(buf, r.seq);
  put_u64(buf + 4, r.recv_ns);
}

ReportRecord decode_report_record(const unsigned char* buf) {
  ReportRecord r;
  r.seq = get_u32(buf);
  r.recv_ns = get_u64(buf + 4);
  return r;
}

}  // namespace abw::net
