// UdpTransport: the live probe::Transport backend — timestamped UDP
// probe packets over a real socket against an abwd daemon (daemon.hpp).
//
// send_stream() paces the StreamSpec's packets on the host clock (sleep
// until ~200 us before each offset, then spin), stamping each probe with
// the ACTUAL send time, then asks the daemon for the receiver's report
// and assembles a probe::StreamResult indistinguishable in shape from
// the simulator's: per-packet send/receive stamps, lost flags, and the
// same dedup/reorder accounting (the daemon runs probe::ReceiverState).
//
// Clocks: now() is nanoseconds since this transport's construction
// (monotonic).  Receive stamps are nanoseconds since the DAEMON started
// — a different, unsynchronized clock.  OWDs therefore carry a constant
// unknown offset, exactly the probe::ReceiverClock model; only relative
// OWDs and rates are meaningful, which is all the estimators use.
//
// A silent peer is indistinguishable from 100% loss: send_stream()
// returns an all-lost StreamResult after the report timeout, time keeps
// advancing, and the estimator's own LimitGuard eventually trips
// kDeadline — the graceful-abort path tests/transport_test.cpp pins.
#pragma once

#include <cstdint>
#include <string>

#include "probe/transport.hpp"
#include "sim/time.hpp"

namespace abw::net {

/// UdpTransport parameters.
struct UdpTransportConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Advertised admission-control limits, forwarded in kHello (the
  /// daemon enforces them server-side); 0 = unlimited.
  std::uint64_t advertise_budget_packets = 0;
  sim::SimTime advertise_deadline = 0;
  /// Handshake patience: kHello is retried every `hello_timeout` up to
  /// `hello_retries` times before the session is declared unreachable.
  sim::SimTime hello_timeout = 200 * sim::kMillisecond;
  int hello_retries = 5;
  /// Report patience: kStreamEnd is retried every `report_timeout` up to
  /// `report_retries` times; what never arrives is counted lost.
  sim::SimTime report_timeout = 200 * sim::kMillisecond;
  int report_retries = 5;
};

/// Live measurement substrate over one UDP socket.  Not thread-safe; one
/// transport per measurement thread (sessions are cheap — the daemon
/// multiplexes them server-side).
class UdpTransport final : public probe::Transport {
 public:
  /// Creates the socket (throws std::runtime_error on socket/address
  /// failure).  The session handshake is lazy: first send_stream().
  explicit UdpTransport(const UdpTransportConfig& cfg);
  ~UdpTransport() override;

  probe::StreamResult send_stream(const probe::StreamSpec& spec,
                                  sim::SimTime lead_in) override;
  sim::SimTime now() override;
  void wait(sim::SimTime duration) override;
  const probe::ProbeCost& cost() const override { return cost_; }
  std::string_view kind() const override { return "udp"; }

  /// True once the daemon acked the session.
  bool connected() const { return session_id_ != 0; }

  /// The daemon-assigned session id (0 before the handshake).
  std::uint64_t session_id() const { return session_id_; }

 private:
  bool ensure_session();
  void close_session();

  UdpTransportConfig cfg_;
  int fd_ = -1;
  std::int64_t epoch_ns_ = 0;  // monotonic clock at construction
  std::uint64_t session_id_ = 0;
  bool hello_failed_ = false;  // don't re-retry a dead peer every stream
  std::uint32_t next_stream_id_ = 1;
  probe::ProbeCost cost_;
};

}  // namespace abw::net
