// Wire format of the live measurement protocol ("ABW1"): the datagrams
// exchanged between a probing client (net::UdpTransport) and the
// measurement daemon (net::Daemon, "abwd").
//
// Every datagram starts with one fixed 40-byte little-endian header.
// Probe packets are the header padded with zeros up to the StreamSpec's
// packet size, so the wire footprint matches what the estimator asked
// for (subject to the kHeaderSize floor).  The receiver's measurements
// travel back as kReport fragments of (seq, receive-timestamp) records.
//
// Timestamps: kProbe.t_ns carries the sender's clock (nanoseconds since
// the client transport's construction); report records carry the
// daemon's clock (nanoseconds since the daemon started).  The two clocks
// are NOT synchronized — the constant offset between them is exactly the
// probe::ReceiverClock offset the simulator models, and the reason tools
// analyze relative OWDs only (README "Live measurement").
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace abw::net {

/// "ABW1" little-endian.
inline constexpr std::uint32_t kMagic = 0x31574241u;
inline constexpr std::uint8_t kVersion = 1;

/// Fixed header size; also the floor on a probe packet's wire size.
inline constexpr std::size_t kHeaderSize = 40;

/// Largest datagram either side will send or parse.
inline constexpr std::size_t kMaxDatagram = 65000;

/// One (seq, recv-timestamp) record inside a kReport fragment.
inline constexpr std::size_t kReportRecordSize = 12;

/// Records per report fragment: fragments stay under a typical 1500-byte
/// MTU so loopback-sized reports never fragment at the IP layer.
inline constexpr std::size_t kReportRecordsPerFragment = 113;

/// Datagram types.
enum class MsgType : std::uint8_t {
  kHello = 1,        ///< client -> daemon: open a session (count = probe
                     ///< budget, t_ns = deadline ns; 0 = unlimited)
  kHelloAck = 2,     ///< daemon -> client: session_id assigned
  kHelloReject = 3,  ///< daemon -> client: admission refused (aux = reason)
  kProbe = 4,        ///< client -> daemon: one probe packet (t_ns = send
                     ///< stamp, count = packets in stream, padded to size)
  kStreamEnd = 5,    ///< client -> daemon: stream done, send the report
                     ///< (count = packets in stream; resent on timeout)
  kReport = 6,       ///< daemon -> client: one report fragment (seq =
                     ///< fragment index, count = total fragments, aux =
                     ///< records in this fragment, t_ns = dup<<32|reorder)
  kAbort = 7,        ///< daemon -> client: session over budget/deadline
                     ///< (aux = AbortCode)
  kBye = 8,          ///< client -> daemon: session closed
};

/// Why a kHelloReject / kAbort was sent (header.aux).
enum class AbortCode : std::uint32_t {
  kNone = 0,
  kSessionsFull = 1,    ///< HelloReject: daemon at max_sessions
  kBadVersion = 2,      ///< HelloReject: version mismatch
  kProbeBudget = 3,     ///< Abort: session exceeded its advertised budget
  kDeadline = 4,        ///< Abort: session exceeded its advertised deadline
  kUnknownSession = 5,  ///< Abort: datagram for a session the daemon lost
};

std::string_view abort_code_name(AbortCode c);

/// The fixed header.  Field meaning is type-specific (see MsgType).
struct WireHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t version = kVersion;
  std::uint8_t type = 0;
  std::uint16_t reserved = 0;
  std::uint64_t session_id = 0;
  std::uint32_t stream_id = 0;
  std::uint32_t seq = 0;
  std::uint64_t t_ns = 0;
  std::uint32_t count = 0;
  std::uint32_t aux = 0;
};

/// One report record: packet `seq` arrived at `recv_ns` (daemon clock).
struct ReportRecord {
  std::uint32_t seq = 0;
  std::uint64_t recv_ns = 0;
};

/// Serializes `h` into `buf` (>= kHeaderSize bytes), little-endian.
void encode_header(const WireHeader& h, unsigned char* buf);

/// Parses a header from `buf`; false when the datagram is shorter than a
/// header or the magic/version do not match.
bool decode_header(const unsigned char* buf, std::size_t len, WireHeader* out);

/// Serializes one report record into `buf` (>= kReportRecordSize bytes).
void encode_report_record(const ReportRecord& r, unsigned char* buf);

/// Parses one report record from `buf` (>= kReportRecordSize bytes).
ReportRecord decode_report_record(const unsigned char* buf);

}  // namespace abw::net
