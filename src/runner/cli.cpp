#include "runner/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>

namespace abw::runner {

namespace {

std::size_t parse_positive(const std::string& s, const char* what) {
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(s, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string(what) + ": not a number: " + s);
  }
  if (pos != s.size() || v == 0)
    throw std::invalid_argument(std::string(what) + ": want a positive integer, got: " + s);
  return static_cast<std::size_t>(v);
}

}  // namespace

std::size_t default_jobs() {
  if (const char* env = std::getenv("ABW_JOBS"); env && *env)
    return parse_positive(env, "ABW_JOBS");
  unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

std::size_t parse_jobs_flag(int argc, char** argv, std::size_t fallback) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--jobs" || arg == "-j") {
      if (i + 1 >= argc)
        throw std::invalid_argument("--jobs: missing value");
      return parse_positive(argv[i + 1], "--jobs");
    }
    if (arg.rfind("--jobs=", 0) == 0)
      return parse_positive(arg.substr(7), "--jobs");
  }
  return fallback;
}

std::string parse_string_flag(int argc, char** argv, const std::string& name,
                              const std::string& fallback) {
  const std::string flag = "--" + name;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == flag) {
      if (i + 1 >= argc)
        throw std::invalid_argument(flag + ": missing value");
      return argv[i + 1];
    }
    if (arg.rfind(flag + "=", 0) == 0) {
      std::string value = arg.substr(flag.size() + 1);
      if (value.empty())
        throw std::invalid_argument(flag + ": missing value");
      return value;
    }
  }
  return fallback;
}

std::size_t jobs_from_cli(int argc, char** argv) {
  try {
    return parse_jobs_flag(argc, argv, default_jobs());
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "%s: %s\n", argc > 0 ? argv[0] : "abw", e.what());
    std::exit(2);
  }
}

}  // namespace abw::runner
