// Serial-vs-parallel wall-time bookkeeping for the bench binaries.
//
// Each bench that adopts the BatchRunner records one entry per batched
// workload into BENCH_batch.json (a JSON array in the working directory),
// so the perf trajectory of the parallel runner is tracked across runs
// and machines.  Because BatchRunner output is bit-identical across
// thread counts, `timed_speedup_map` can legitimately reuse either run's
// results.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runner/batch.hpp"

namespace abw::runner {

/// One serial-vs-parallel measurement of a batched workload.
struct BatchTiming {
  std::string bench;      ///< bench binary / workload label
  std::size_t tasks = 0;  ///< number of independent tasks in the batch
  std::size_t jobs = 0;   ///< thread count of the parallel run
  double serial_s = 0.0;  ///< wall time with jobs=1
  double parallel_s = 0.0;  ///< wall time with jobs=`jobs`
  double speedup() const {
    return parallel_s > 0.0 ? serial_s / parallel_s : 0.0;
  }
};

/// Appends `t` to the JSON array in `path` (created when absent).
void append_bench_batch(const BatchTiming& t,
                        const std::string& path = "BENCH_batch.json");

/// Monotonic wall clock in seconds (steady_clock).
double monotonic_seconds();

/// Prints "batch: N tasks, serial X s, parallel(J) Y s, speedup Z".
void print_batch_timing(const BatchTiming& t);

/// Internal: runs BatchRunner(jobs).map and reports wall seconds.
template <typename Fn>
auto detail_timed_map(std::size_t jobs, std::size_t count, Fn&& fn,
                      double& seconds)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  BatchRunner runner(jobs);
  double t0 = monotonic_seconds();
  auto results = runner.map(count, fn);
  seconds = monotonic_seconds() - t0;
  return results;
}

/// Runs `fn` over [0, count) twice — once with jobs=1, once with `jobs`
/// threads — records wall times under `bench` in BENCH_batch.json, prints
/// a one-line summary to stdout, and returns the (identical) results of
/// the parallel run.  With jobs <= 1 the batch runs once, serially, and
/// both times are that single measurement.
template <typename Fn>
auto timed_speedup_map(const std::string& bench, std::size_t count,
                       std::size_t jobs, Fn&& fn)
    -> std::vector<decltype(fn(std::size_t{0}))> {
  double serial_s = 0.0, parallel_s = 0.0;
  std::vector<decltype(fn(std::size_t{0}))> results;
  if (jobs <= 1) {
    results = detail_timed_map(1, count, fn, serial_s);
    parallel_s = serial_s;
    jobs = 1;
  } else {
    detail_timed_map(1, count, fn, serial_s);
    results = detail_timed_map(jobs, count, fn, parallel_s);
  }
  BatchTiming t{bench, count, jobs, serial_s, parallel_s};
  append_bench_batch(t);
  print_batch_timing(t);
  return results;
}

}  // namespace abw::runner
