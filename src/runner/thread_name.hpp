// Portable thread naming, so perf/TSAN/trace output is attributable.
//
// Both worker families in the library go through this helper: the batch
// runner's pool workers ("abw-batch-N") and the intra-simulation domain
// workers ("abw-dom-N", sim/domain.hpp).  Naming is best-effort — on
// platforms without a setname call it is a no-op and never an error.
#pragma once

#include <cstddef>
#include <string>

namespace abw::runner {

/// Names the calling thread `name` (truncated to the platform limit — 15
/// visible characters on Linux).  Best-effort: failures are ignored.
void set_current_thread_name(const std::string& name);

/// Convenience: names the calling thread `<prefix><index>`, e.g.
/// set_current_thread_name("abw-batch-", 3) -> "abw-batch-3".
void set_current_thread_name(const char* prefix, std::size_t index);

}  // namespace abw::runner
