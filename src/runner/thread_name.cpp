#include "runner/thread_name.hpp"

#if defined(__linux__)
#include <pthread.h>
#elif defined(__APPLE__)
#include <pthread.h>
#endif

namespace abw::runner {

void set_current_thread_name(const std::string& name) {
#if defined(__linux__)
  // Linux truncates at 16 bytes including the terminator and fails with
  // ERANGE beyond that; truncate ourselves so long names still stick.
  std::string n = name.size() > 15 ? name.substr(0, 15) : name;
  pthread_setname_np(pthread_self(), n.c_str());
#elif defined(__APPLE__)
  pthread_setname_np(name.c_str());
#else
  (void)name;  // no portable equivalent; best-effort no-op
#endif
}

void set_current_thread_name(const char* prefix, std::size_t index) {
  set_current_thread_name(prefix + std::to_string(index));
}

}  // namespace abw::runner
