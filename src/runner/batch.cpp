#include "runner/batch.hpp"

namespace abw::runner {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index) {
  return splitmix64(base_seed ^ splitmix64(task_index));
}

BatchRunner::BatchRunner(std::size_t jobs)
    : jobs_(jobs == 0 ? default_jobs() : jobs) {}

}  // namespace abw::runner
