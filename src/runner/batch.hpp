// BatchRunner: deterministic parallel execution of independent scenario
// tasks (seed x config replications).
//
// Contract: `map(count, fn)` evaluates `fn(i)` for every task index
// i in [0, count) and returns the results **in submission (index) order**,
// so the aggregated output is bit-identical to a serial run regardless of
// thread count.  Tasks must be independent — each owns its own
// Simulator/Scenario/Rng; the DES core stays single-threaded by design
// (see src/sim/scheduler.hpp).  Derive per-task randomness with
// `derive_seed(base_seed, i)` rather than sharing one Rng across tasks.
//
// Exceptions thrown by tasks are captured and rethrown on the calling
// thread; when several tasks throw, the lowest task index wins (again
// matching what a serial run would have reported first).
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <string>
#include <utility>
#include <vector>

#include "runner/cli.hpp"  // default_jobs() — also re-exported for callers
#include "runner/thread_pool.hpp"

namespace abw::runner {

/// splitmix64 — the standard 64-bit mixer (Steele et al.); bijective, so
/// distinct inputs give distinct well-scrambled outputs.
std::uint64_t splitmix64(std::uint64_t x);

/// Deterministic per-task seed: splitmix64 of `base_seed ^ task_index`
/// (with the index pre-mixed so low-entropy bases still decorrelate).
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t task_index);

/// Bounded retry of failed grid cells (map_cells).  Each retry reruns the
/// cell's function with the next attempt number; seeded variants derive a
/// fresh deterministic seed per attempt, so a retry is a *different*
/// random replication, not a replay of the failing one.
struct RetryPolicy {
  std::size_t max_retries = 0;  ///< extra attempts after the first (0 = none)
};

/// Outcome of one grid cell under map_cells: a result or the error that
/// killed its final attempt — never an exception.  One pathological cell
/// (an estimator crashing under fault injection, a misconfigured
/// scenario) must not discard the rest of a sweep's completed work.
template <typename R>
struct CellResult {
  R value{};                   ///< meaningful only when ok
  bool ok = false;             ///< the cell produced a value
  std::string error;           ///< what() of the last failed attempt
  std::uint32_t attempts = 0;  ///< total attempts made (>= 1)
};

/// Executes batches of independent tasks across a fixed-size ThreadPool.
/// Jobs-count CLI/env parsing lives in runner/cli.hpp.
class BatchRunner {
 public:
  /// `jobs` == 0 means default_jobs().  With jobs == 1 no pool is created
  /// and `map` degenerates to the plain serial loop.
  explicit BatchRunner(std::size_t jobs = 0);

  std::size_t jobs() const { return jobs_; }

  /// Runs `fn(i)` for i in [0, count) and returns {fn(0), ..., fn(count-1)}
  /// in index order.  `fn` must be callable concurrently from multiple
  /// threads; its result type must be movable and default-constructible.
  template <typename Fn>
  auto map(std::size_t count, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}))> {
    using R = decltype(fn(std::size_t{0}));
    std::vector<R> results(count);
    if (count == 0) return results;
    if (jobs_ == 1 || count == 1) {
      for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
      return results;
    }
    std::vector<std::exception_ptr> errors(count);
    {
      ThreadPool pool(jobs_ < count ? jobs_ : count);
      for (std::size_t i = 0; i < count; ++i) {
        pool.submit([&, i] {
          try {
            results[i] = fn(i);
          } catch (...) {
            errors[i] = std::current_exception();
          }
        });
      }
      pool.wait_idle();
    }
    for (auto& e : errors)
      if (e) std::rethrow_exception(e);
    return results;
  }

  /// `map` over task seeds derived from `base_seed`: fn(i, derive_seed(...)).
  template <typename Fn>
  auto map_seeded(std::size_t count, std::uint64_t base_seed, Fn&& fn)
      -> std::vector<decltype(fn(std::size_t{0}, std::uint64_t{0}))> {
    return map(count, [&](std::size_t i) { return fn(i, derive_seed(base_seed, i)); });
  }

  /// Fault-tolerant `map`: runs `fn(i, attempt)` for every cell, catching
  /// exceptions instead of rethrowing them, and returns one CellResult
  /// per cell in index order.  A throwing attempt is retried up to
  /// `retry.max_retries` times; the error string records the final
  /// attempt's failure.  Successful cells compute exactly what map()
  /// would (fn sees attempt == 0), so aggregation over the ok cells is
  /// bit-identical whether or not other cells failed.
  template <typename Fn>
  auto map_cells(std::size_t count, Fn&& fn, RetryPolicy retry = {})
      -> std::vector<CellResult<decltype(fn(std::size_t{0}, std::size_t{0}))>> {
    using R = decltype(fn(std::size_t{0}, std::size_t{0}));
    return map(count, [&](std::size_t i) {
      CellResult<R> cell;
      for (std::size_t attempt = 0; attempt <= retry.max_retries; ++attempt) {
        ++cell.attempts;
        try {
          cell.value = fn(i, attempt);
          cell.ok = true;
          cell.error.clear();
          break;
        } catch (const std::exception& e) {
          cell.error = e.what();
        } catch (...) {
          cell.error = "non-standard exception";
        }
      }
      return cell;
    });
  }

  /// Seeded fault-tolerant map.  Attempt 0 of cell i runs under
  /// derive_seed(base_seed, i) — the same seed map_seeded would hand it,
  /// keeping successful first-attempt cells bit-identical to a plain
  /// seeded sweep.  Retry attempt a > 0 runs under
  /// derive_seed(derive_seed(base_seed, i), a): a fresh deterministic
  /// replication seed, reproducible across runs and thread counts.
  template <typename Fn>
  auto map_cells_seeded(std::size_t count, std::uint64_t base_seed, Fn&& fn,
                        RetryPolicy retry = {})
      -> std::vector<CellResult<decltype(fn(std::size_t{0}, std::uint64_t{0}))>> {
    return map_cells(
        count,
        [&](std::size_t i, std::size_t attempt) {
          std::uint64_t seed = derive_seed(base_seed, i);
          if (attempt > 0) seed = derive_seed(seed, attempt);
          return fn(i, seed);
        },
        retry);
  }

 private:
  std::size_t jobs_;
};

}  // namespace abw::runner
