// Shared CLI helpers for the parallel benches and examples: one home for
// the `--jobs N` / `--jobs=N` / `-j N` flag and the ABW_JOBS environment
// variable, so every binary parses them identically (PR 1 grew three
// drifting copies of this logic).
#pragma once

#include <cstddef>
#include <string>

namespace abw::runner {

/// Number of parallel jobs to use by default: the ABW_JOBS environment
/// variable when set to a positive integer, else hardware_concurrency()
/// (at least 1).
std::size_t default_jobs();

/// Parses a trailing `--jobs N` / `--jobs=N` / `-j N` flag from argv.
/// Returns `fallback` when absent; throws std::invalid_argument on a
/// malformed value.
std::size_t parse_jobs_flag(int argc, char** argv, std::size_t fallback);

/// CLI front end for the benches/examples: parse_jobs_flag over
/// default_jobs(), but a malformed --jobs or ABW_JOBS prints the error to
/// stderr and exits 2 instead of propagating (no aborting on a typo).
std::size_t jobs_from_cli(int argc, char** argv);

/// Parses a `--name VALUE` / `--name=VALUE` string flag from argv (pass
/// `name` without the leading dashes).  Returns `fallback` when absent;
/// throws std::invalid_argument when the value is missing.  Used by the
/// observability flags (`--trace=FILE`, `--metrics=FILE`).
std::string parse_string_flag(int argc, char** argv, const std::string& name,
                              const std::string& fallback);

}  // namespace abw::runner
