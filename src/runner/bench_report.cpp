#include "runner/bench_report.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace abw::runner {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {

std::string to_json(const BatchTiming& t) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "  {\"bench\": \"%s\", \"tasks\": %zu, \"jobs\": %zu, "
                "\"serial_s\": %.6f, \"parallel_s\": %.6f, \"speedup\": %.3f}",
                t.bench.c_str(), t.tasks, t.jobs, t.serial_s, t.parallel_s,
                t.speedup());
  return buf;
}

}  // namespace

void append_bench_batch(const BatchTiming& t, const std::string& path) {
  // Read any existing array so entries accumulate across bench binaries.
  std::string existing;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream ss;
      ss << in.rdbuf();
      existing = ss.str();
    }
  }
  std::string body;
  auto close_bracket = existing.rfind(']');
  if (close_bracket != std::string::npos) {
    body = existing.substr(0, close_bracket);
    // Trim trailing whitespace so we can splice ", {...}\n]" cleanly.
    while (!body.empty() && (body.back() == '\n' || body.back() == ' '))
      body.pop_back();
    bool empty_array = body.empty() || body.back() == '[';
    body += empty_array ? "\n" : ",\n";
  } else {
    body = "[\n";
  }
  std::ofstream out(path, std::ios::trunc);
  out << body << to_json(t) << "\n]\n";
}

void print_batch_timing(const BatchTiming& t) {
  std::printf("[batch] %s: %zu tasks, serial %.2f s, parallel(%zu) %.2f s, "
              "speedup %.2fx  -> BENCH_batch.json\n",
              t.bench.c_str(), t.tasks, t.jobs, t.serial_s, t.parallel_s,
              t.speedup());
}

}  // namespace abw::runner
