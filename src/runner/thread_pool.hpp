// Fixed-size worker pool for embarrassingly-parallel experiment batches.
//
// The DES core (sim::Scheduler / sim::Simulator) is single-threaded by
// design; parallelism in this library happens strictly ABOVE the
// simulator, at the replication level: each submitted job owns its whole
// Simulator/Scenario/Rng world and never shares mutable state with other
// jobs.  The pool itself is therefore deliberately minimal — a locked
// queue, N workers, and an idle barrier.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace abw::runner {

/// A fixed-size thread pool.  Jobs are plain callables; completion is
/// observed through `wait_idle()` (the BatchRunner layers result
/// collection and exception transport on top).
class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains remaining jobs, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job.  Must not be called concurrently with destruction.
  void submit(std::function<void()> job);

  /// Blocks until the queue is empty and every worker is idle.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for jobs / stop
  std::condition_variable idle_cv_;   // wait_idle() waits for drain
  std::deque<std::function<void()>> queue_;
  std::size_t active_ = 0;  // jobs currently executing
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace abw::runner
