#include "runner/thread_pool.hpp"

#include <utility>

#include "runner/thread_name.hpp"

namespace abw::runner {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this, i] {
      set_current_thread_name("abw-batch-", i);
      worker_loop();
    });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    queue_.push_back(std::move(job));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      std::lock_guard<std::mutex> lk(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace abw::runner
