#include "sim/topology.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <string>

namespace abw::sim {

void Topology::check_node(std::size_t node, const char* what) const {
  if (node >= nodes_)
    throw std::invalid_argument(std::string("Topology: ") + what +
                                " node out of range");
}

std::size_t Topology::add_node() {
  out_edges_.emplace_back();
  return nodes_++;
}

std::size_t Topology::add_nodes(std::size_t n) {
  const std::size_t first = nodes_;
  for (std::size_t i = 0; i < n; ++i) add_node();
  return first;
}

std::size_t Topology::add_edge(std::size_t from, std::size_t to,
                               const LinkConfig& link) {
  check_node(from, "edge source");
  check_node(to, "edge target");
  if (from == to) throw std::invalid_argument("Topology: self-loop edge");
  const std::size_t idx = edges_.size();
  edges_.push_back({from, to, link});
  out_edges_[from].push_back(idx);  // ascending by construction
  return idx;
}

void Topology::set_route(std::size_t src, std::size_t dst,
                         std::vector<std::size_t> edges) {
  check_node(src, "route source");
  check_node(dst, "route sink");
  if (edges.empty())
    throw std::invalid_argument("Topology: empty route");
  std::size_t at = src;
  std::vector<std::size_t> seen = edges;
  std::sort(seen.begin(), seen.end());
  if (std::adjacent_find(seen.begin(), seen.end()) != seen.end())
    throw std::invalid_argument("Topology: route repeats an edge");
  for (std::size_t e : edges) {
    if (e >= edges_.size())
      throw std::invalid_argument("Topology: route edge out of range");
    if (edges_[e].from != at)
      throw std::invalid_argument("Topology: route edges do not chain");
    at = edges_[e].to;
  }
  if (at != dst)
    throw std::invalid_argument("Topology: route does not end at sink");
  routes_[{src, dst}] = std::move(edges);
}

bool Topology::auto_route(std::size_t src, std::size_t dst) {
  check_node(src, "route source");
  check_node(dst, "route sink");
  if (src == dst)
    throw std::invalid_argument("Topology: route source equals sink");
  constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
  // BFS over nodes; parent_edge_ records the edge that first reached each
  // node.  Out-edges expand in ascending index order, so the first path
  // found is the lexicographically-smallest among shortest ones.
  std::vector<std::size_t> parent_edge(nodes_, kNone);
  std::queue<std::size_t> frontier;
  frontier.push(src);
  std::vector<bool> visited(nodes_, false);
  visited[src] = true;
  while (!frontier.empty() && !visited[dst]) {
    const std::size_t n = frontier.front();
    frontier.pop();
    for (std::size_t e : out_edges_[n]) {
      const std::size_t to = edges_[e].to;
      if (visited[to]) continue;
      visited[to] = true;
      parent_edge[to] = e;
      frontier.push(to);
    }
  }
  if (!visited[dst]) return false;
  std::vector<std::size_t> path;
  for (std::size_t n = dst; n != src; n = edges_[parent_edge[n]].from)
    path.push_back(parent_edge[n]);
  std::reverse(path.begin(), path.end());
  set_route(src, dst, std::move(path));
  return true;
}

void Topology::auto_route_all(const std::vector<NodePair>& pairs) {
  for (const NodePair& p : pairs)
    if (!auto_route(p.src, p.dst))
      throw std::invalid_argument("Topology: pair " + std::to_string(p.src) +
                                  "->" + std::to_string(p.dst) +
                                  " is unreachable");
}

const std::vector<std::size_t>* Topology::route(std::size_t src,
                                                std::size_t dst) const {
  auto it = routes_.find({src, dst});
  return it == routes_.end() ? nullptr : &it->second;
}

double Topology::route_narrow_capacity(std::size_t src,
                                       std::size_t dst) const {
  const std::vector<std::size_t>* r = route(src, dst);
  if (r == nullptr)
    throw std::invalid_argument("Topology: no route installed for pair");
  double c = std::numeric_limits<double>::infinity();
  for (std::size_t e : *r) c = std::min(c, edges_[e].link.capacity_bps);
  return c;
}

SimTime Topology::route_base_owd(std::size_t src, std::size_t dst,
                                 std::uint32_t bytes) const {
  const std::vector<std::size_t>* r = route(src, dst);
  if (r == nullptr)
    throw std::invalid_argument("Topology: no route installed for pair");
  SimTime t = 0;
  for (std::size_t e : *r)
    t += transmission_time(bytes, edges_[e].link.capacity_bps) +
         edges_[e].link.propagation_delay;
  return t;
}

}  // namespace abw::sim
