#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace abw::sim {

void Scheduler::throw_past_event() {
  throw std::logic_error("Scheduler::schedule: event in the past");
}

void Scheduler::throw_seq_overflow() {
  throw std::length_error("Scheduler: event sequence number overflow");
}

std::uint32_t Scheduler::acquire_fresh_slot() {
  if (next_fresh_slot_ >= kSlotCapacity)
    throw std::length_error("Scheduler: > 2^24 concurrently pending events");
  if ((next_fresh_slot_ >> kChunkShift) == chunks_.size())
    chunks_.push_back(std::make_unique<Callback[]>(kChunkSize));
  return next_fresh_slot_++;
}

SimTime Scheduler::next_time() const {
  if (heap_.empty()) throw std::logic_error("Scheduler::next_time: empty");
  return heap_.front().time;
}

Scheduler::Entry Scheduler::remove_top() {
  if (heap_.empty()) throw std::logic_error("Scheduler::pop: empty");
  Entry top = heap_.front();
#if defined(__GNUC__)
  // The callback slot is a data-dependent load; start it while the sift
  // below reshuffles the heap.
  __builtin_prefetch(&slot_ref(top.slot()));
#endif
  Entry last = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = last;
    sift_down(0);
  }
  last_popped_ = top.time;
  return top;
}

Scheduler::Event Scheduler::pop() {
  Entry top = remove_top();
  Event ev{top.time, top.seq(), std::move(slot_ref(top.slot()))};
  free_slots_.push_back(top.slot());
  return ev;
}

void Scheduler::reserve(std::size_t n) {
  heap_.reserve(n);
  free_slots_.reserve(n);
  while (pool_capacity() < n)
    chunks_.push_back(std::make_unique<Callback[]>(kChunkSize));
}

void Scheduler::sift_down(std::size_t i) {
  // Bottom-up heapify (Wegener): the element being sifted is the old
  // *last leaf*, which almost always belongs near the bottom — so first
  // walk the hole all the way down along the min-child path (no
  // compare-against-v per level, saving a data-dependent branch), then
  // sift v back up the few (usually zero) levels it needs.  Any valid
  // heap arrangement pops the same strict (time, seq) order, so results
  // are bit-identical to the classic top-down sift.
  const std::size_t n = heap_.size();
  Entry v = heap_[i];
  std::size_t first;
  while ((first = i * kArity + 1) + kArity <= n) {
    // Full child group: pick the min by pairwise tournament.  A linear
    // "scan for min" makes each load/compare depend on the previous
    // one; the tournament issues all four (independent, contiguous)
    // loads at once and is latency-bound on only two compare levels.
    std::size_t a = first + (before(heap_[first + 1], heap_[first]) ? 1 : 0);
    std::size_t b =
        first + 2 + (before(heap_[first + 3], heap_[first + 2]) ? 1 : 0);
    std::size_t best = before(heap_[b], heap_[a]) ? b : a;
    heap_[i] = heap_[best];
    i = best;
  }
  if (first < n) {  // partial group at the bottom edge
    std::size_t best = first;
    for (std::size_t c = first + 1; c < n; ++c)
      if (before(heap_[c], heap_[best])) best = c;
    heap_[i] = heap_[best];
    i = best;
  }
  while (i > 0) {
    std::size_t parent = (i - 1) / kArity;
    if (!before(v, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = v;
}

}  // namespace abw::sim
