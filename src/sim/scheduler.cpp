#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace abw::sim {

void Scheduler::schedule(SimTime t, Callback cb) {
  if (t < last_popped_)
    throw std::logic_error("Scheduler::schedule: event in the past");
  heap_.push_back(Event{t, next_seq_++, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

Scheduler::Event Scheduler::pop() {
  if (heap_.empty()) throw std::logic_error("Scheduler::pop: empty");
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  last_popped_ = ev.time;
  return ev;
}

}  // namespace abw::sim
