#include "sim/fluid.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"
#include "sim/link.hpp"

namespace abw::sim {

namespace {
// Minimum remaining arrivals before the vectorized bulk path is worth its
// precompute pass; short tails go through the scalar loop unchanged.
constexpr std::size_t kBulkThreshold = 16;
}  // namespace

FluidQueue::FluidQueue(Link& link) : link_(link) {}

void FluidQueue::reset(SimTime now) {
  if (head_ != q_.size() || link_.transmitting_ || !link_.queue_.empty())
    throw std::logic_error("FluidQueue::reset: link not idle");
  q_.clear();
  head_ = 0;
  free_at_ = now;
  emitted_until_ = now;
  backlog_bytes_ = 0;
}

void FluidQueue::pop_departures(SimTime t) {
  LinkStats& st = link_.stats_;
  while (head_ < q_.size() && q_[head_].dep <= t) {
    const InFlight& f = q_[head_];
    ++st.packets_out;
    st.bytes_out += f.size;
    backlog_bytes_ -= f.size;
    ++head_;
  }
  if (head_ == q_.size() && head_ != 0) {
    q_.clear();
    head_ = 0;
  }
}

void FluidQueue::emit_busy(SimTime upto) {
  SimTime e = upto < free_at_ ? upto : free_at_;
  if (e > emitted_until_) {
    link_.meter_.add_busy(emitted_until_, e, /*measurement=*/false);
    emitted_until_ = e;
  }
}

SimTime FluidQueue::tx_time(std::uint32_t bytes) {
  // Serialization-time memo, same idea as Link's single-entry one but
  // sized for the trimodal packet mixes the workloads use: generators
  // draw from a handful of distinct sizes, so a 4-entry linear scan
  // replaces the double divide in transmission_time() almost always.
  for (std::size_t i = 0; i < tx_memo_used_; ++i)
    if (tx_memo_[i].bytes == bytes) return tx_memo_[i].tx;
  SimTime tx = transmission_time(bytes, link_.cfg_.capacity_bps);
  std::size_t slot = tx_memo_used_ < tx_memo_.size()
                         ? tx_memo_used_++
                         : tx_memo_evict_++ % tx_memo_.size();
  tx_memo_[slot] = {bytes, tx};
  return tx;
}

std::size_t FluidQueue::bulk_retire(const SimTime* times,
                                    const std::uint32_t* sizes, std::size_t i,
                                    std::size_t n, SimTime record_until,
                                    bool tapped, std::uint64_t& d_pkts,
                                    std::uint64_t& d_bytes) {
  const std::size_t len = n - i;
  const SimTime* t = times + i;
  const std::uint32_t* sz = sizes + i;
  const double bps = link_.cfg_.capacity_bps;
  const std::uint64_t limit = link_.cfg_.queue_limit_bytes;

  // Pass 1 (SIMD): per-arrival serialization times.  transmission_time is
  // the exact expression the memoized scalar path caches, so the values —
  // and everything derived from them — are bit-identical.
  vtx_.resize(len);
  SimTime* tx = vtx_.data();
#pragma omp simd
  for (std::size_t k = 0; k < len; ++k) tx[k] = transmission_time(sz[k], bps);

  // Pass 2: unrolled Lindley recurrence.  With TxP[k] = sum of tx before
  // k and A[k] = t[k] - TxP[k], the FIFO departure frontier after serving
  // k is dep[k] = max_{j<=k} A[j] + TxP[k+1] — all integer adds, so the
  // unrolled form reproduces the scalar run_free chain exactly.  Arrival
  // k starts a new busy run iff A[k] >= max_{j<k} A[j] (i.e. t[k] >= the
  // previous frontier).  Runs are retired as their boundary is found; the
  // first run that could drop (bytes > limit) or that ends past the
  // recording horizon stops the bulk path at its start, exactly where the
  // scalar retirement loop would hand over to the per-packet path.
  std::size_t a = 0;           // current run start (local index)
  std::uint64_t run_bytes = 0; // bytes in the current run
  SimTime txp = 0;             // TxP[k]
  SimTime m = 0;               // max A over [0, k)
  SimTime prev_dep = 0;        // dep[k-1]
  std::size_t stop = len;      // where the bulk path hands over

  auto retire = [&](std::size_t b, SimTime run_end) {
    if (run_bytes > limit || run_end > record_until) {
      stop = a;
      return false;
    }
    if (tapped) {
      for (std::size_t k = a; k < b; ++k) {
        Packet pkt;
        pkt.type = PacketType::kCross;
        pkt.size_bytes = sz[k];
        pkt.flow_id = flow_id_;
        pkt.exit_hop = exit_hop_;
        pkt.send_time = t[k];
        link_.tap_(pkt, t[k]);
      }
    }
    d_pkts += b - a;
    d_bytes += run_bytes;
    link_.meter_.add_busy(t[a], run_end, /*measurement=*/false);
    emitted_until_ = run_end;
    free_at_ = run_end;
    bulk_packets_ += b - a;
    return true;
  };

  for (std::size_t k = 0; k < len; ++k) {
    const SimTime aval = t[k] - txp;
    if (k > 0 && aval >= m) {  // boundary: run [a, k) is complete
      if (!retire(k, prev_dep)) break;
      a = k;
      run_bytes = 0;
    }
    if (k == 0 || aval > m) m = aval;
    txp += tx[k];
    prev_dep = m + txp;
    run_bytes += sz[k];
  }
  if (stop == len && !retire(len, prev_dep)) stop = a;
  return i + stop;
}

void FluidQueue::absorb(const SimTime* times, const std::uint32_t* sizes,
                        std::size_t n, SimTime record_until) {
  // Per-chunk, not per-arrival: one branch (null registry) or one clock
  // pair per absorbed chunk of arrivals.
  obs::ScopedTimer timer(link_.sim_.metrics(), "fluid.absorb");
  LinkStats& st = link_.stats_;
  const std::uint64_t limit = link_.cfg_.queue_limit_bytes;
  const bool tapped = static_cast<bool>(link_.tap_);
  // Counter deltas accumulate in locals and flush once: the meter
  // push_back in the loop writes through a pointer the compiler cannot
  // prove distinct from the stats block, which would otherwise force a
  // reload/store of every counter per retired run.
  std::uint64_t d_pkts_in = 0, d_bytes_in = 0;
  std::uint64_t d_pkts_out = 0, d_bytes_out = 0, d_dropped = 0;
  // One bulk attempt per absorb: the vectorized path stops exactly at the
  // first run that could drop or that straddles the horizon, and such a
  // run stays problematic for the rest of the chunk — re-engaging would
  // only re-scan it.
  bool bulk_ok = vectorized_;
  std::size_t i = 0;
  while (i < n) {
    SimTime t = times[i];
    if (head_ != q_.size()) pop_departures(t);
    if (head_ == q_.size() && t >= free_at_ && bulk_ok &&
        n - i >= kBulkThreshold) {
      bulk_ok = false;
      emit_busy(record_until);  // close the previous run (ends <= t)
      std::uint64_t bp = 0, bb = 0;
      i = bulk_retire(times, sizes, i, n, record_until, tapped, bp, bb);
      d_pkts_in += bp;
      d_bytes_in += bb;
      d_pkts_out += bp;
      d_bytes_out += bb;
      if (i == n) break;
      t = times[i];
      // Falls through to the per-packet path for the handed-over arrival,
      // exactly like a scalar retirement-loop break.
    } else if (head_ == q_.size() && t >= free_at_) {
      // Whole-run retirement: an idle, empty server at t starts a fresh
      // busy run — scan forward while each arrival lands before the
      // accumulated departure frontier (the exact FIFO run boundary).  If
      // the run completes before the recording horizon and its total
      // bytes bound the backlog below the drop threshold, nothing can
      // ever observe any of its packets in flight: record the run as one
      // meter interval and batch the counters, with no queue traffic at
      // all.  This is the common case for every workload below saturation
      // and the reason hybrid mode's per-arrival cost is dominated by the
      // generator draw, not the queue integration.  Retired runs chain:
      // after one retires, the next arrival stopped the scan with
      // times[j] >= run_free == free_at_, so it provably starts another
      // run on an empty queue and none of the outer-loop checks (or the
      // then-no-op emit_busy) need repeating.
      emit_busy(record_until);  // close the previous run (ends <= t)
      for (;;) {
        SimTime run_free = t;
        std::uint64_t run_bytes = 0;
        std::size_t j = i;
        bool fits = true;
        while (j < n && (j == i || times[j] < run_free)) {
          if (run_bytes + sizes[j] > limit) {
            fits = false;  // a drop is possible: take the exact path
            break;
          }
          run_bytes += sizes[j];
          run_free = (times[j] > run_free ? times[j] : run_free) +
                     tx_time(sizes[j]);
          ++j;
        }
        if (!fits || run_free > record_until) break;
        // Run straddling the horizon or able to drop breaks to the
        // per-packet path for arrival i (the queue then carries the
        // run's tail exactly).
        if (tapped) {
          for (std::size_t k = i; k < j; ++k) {
            Packet pkt;
            pkt.type = PacketType::kCross;
            pkt.size_bytes = sizes[k];
            pkt.flow_id = flow_id_;
            pkt.exit_hop = exit_hop_;
            pkt.send_time = times[k];
            link_.tap_(pkt, times[k]);
          }
        }
        const std::uint64_t cnt = j - i;
        d_pkts_in += cnt;
        d_bytes_in += run_bytes;
        d_pkts_out += cnt;
        d_bytes_out += run_bytes;
        link_.meter_.add_busy(t, run_free, /*measurement=*/false);
        emitted_until_ = run_free;
        free_at_ = run_free;
        i = j;
        if (i == n) break;
        t = times[i];
      }
      if (i == n) break;
    }
    const std::uint32_t s = sizes[i];
    ++d_pkts_in;
    d_bytes_in += s;
    if (tapped) {
      Packet pkt;
      pkt.type = PacketType::kCross;
      pkt.size_bytes = s;
      pkt.flow_id = flow_id_;
      pkt.exit_hop = exit_hop_;
      pkt.send_time = t;
      link_.tap_(pkt, t);
    }
    if (backlog_bytes_ + s > limit) {  // same drop-tail test as Link::handle
      ++d_dropped;
      ++i;
      continue;
    }
    if (t >= free_at_) {
      // Server idle at this arrival: the pending busy run ends at
      // free_at_ <= t <= record_until, so it is emitted in full before
      // the idle gap is skipped.  Mid-run arrivals emit nothing — the
      // open run is recorded once, at the next gap or advance(), and
      // add_busy coalescing makes the meter contents identical.
      emit_busy(record_until);
      if (t > emitted_until_) emitted_until_ = t;
      free_at_ = t + tx_time(s);
    } else {
      free_at_ += tx_time(s);
    }
    backlog_bytes_ += s;
    q_.push_back({free_at_, s});
    ++i;
  }
  st.packets_in += d_pkts_in;
  st.bytes_in += d_bytes_in;
  st.packets_out += d_pkts_out;
  st.bytes_out += d_bytes_out;
  st.packets_dropped += d_dropped;
}

void FluidQueue::advance(SimTime t) {
  pop_departures(t);
  emit_busy(t);
}

void FluidQueue::to_discrete(SimTime now) {
  advance(now);
  if (head_ == q_.size()) return;
  if (link_.transmitting_)
    throw std::logic_error("FluidQueue::to_discrete: link already transmitting");

  // The head is in service at `now`: its start max(t, prev free_at) <= now
  // (only arrivals <= now are absorbed and its predecessor departed), and
  // advance(now) popped everything with dep <= now.
  InFlight head = q_[head_++];

  Packet pkt;
  pkt.id = link_.sim_.next_packet_id();
  pkt.type = PacketType::kCross;
  pkt.size_bytes = head.size;
  pkt.flow_id = flow_id_;
  pkt.exit_hop = exit_hop_;
  pkt.send_time = now;

  link_.transmitting_ = true;
  link_.tx_pkt_ = pkt;
  link_.queued_bytes_ = backlog_bytes_;
  // The run up to `now` is already in the meter; the in-service remainder
  // [now, dep) coalesces with it into the exact interval a single DES
  // add_busy at service start would have produced.
  link_.meter_.add_busy(now, head.dep, /*measurement=*/false);
  Link* l = &link_;
  link_.sim_.at(head.dep, [l] { l->finish_transmission(); });

  while (head_ < q_.size()) {
    InFlight f = q_[head_++];
    Packet qp;
    qp.id = link_.sim_.next_packet_id();
    qp.type = PacketType::kCross;
    qp.size_bytes = f.size;
    qp.flow_id = flow_id_;
    qp.exit_hop = exit_hop_;
    qp.send_time = now;
    link_.queue_.push_back(qp);
  }
  q_.clear();
  head_ = 0;
  backlog_bytes_ = 0;
}

}  // namespace abw::sim
