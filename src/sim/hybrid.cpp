#include "sim/hybrid.hpp"

namespace abw::sim {

const char* to_string(SimMode m) {
  switch (m) {
    case SimMode::kPacket: return "packet";
    case SimMode::kHybrid: return "hybrid";
  }
  return "?";
}

}  // namespace abw::sim
