// Topology: a directed graph of capacity/latency edges with a static
// route table — the generalization of the single/multi-hop `Path` shapes
// every experiment used so far.
//
// The paper studies one path at a time; its scale pitfalls
// (intrusiveness, concurrent-measurement distortion) only appear in a
// network-wide setting where M x N source/sink pairs share links.  A
// Topology is pure description: nodes, edges (each carrying the familiar
// LinkConfig), and a validated map from (source, sink) pairs to edge
// sequences.  The runtime that instantiates simulated links and forwards
// packets along routes lives in core::MeshScenario; keeping the graph
// here (sim layer) lets the inference layer (est::MeshEstimator) reason
// about route overlap without depending on core.
//
// Determinism contract: routes are stored in a sorted map keyed by
// (source, sink) and auto_route() breaks BFS ties by the lowest edge
// index, so the route table — and everything derived from it (probe-set
// selection, per-pair seeds, the ground-truth matrix layout) — is a pure
// function of construction calls, never of memory layout or hashing.
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "sim/link.hpp"

namespace abw::sim {

/// One directed edge: a simulated link from node `from` to node `to`.
struct TopoEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  LinkConfig link;
};

/// A source->sink pair whose route the topology resolves.
struct NodePair {
  std::size_t src = 0;
  std::size_t dst = 0;

  friend bool operator==(const NodePair&, const NodePair&) = default;
};

/// A directed graph of links plus a static route table.
class Topology {
 public:
  /// Adds one node; returns its id (ids are dense, starting at 0).
  std::size_t add_node();

  /// Adds `n` nodes; returns the first new id.
  std::size_t add_nodes(std::size_t n);

  /// Adds a directed edge from -> to carrying `link`; returns the edge
  /// index.  Both nodes must exist; self-loops are rejected.
  std::size_t add_edge(std::size_t from, std::size_t to,
                       const LinkConfig& link);

  std::size_t node_count() const { return nodes_; }
  std::size_t edge_count() const { return edges_.size(); }
  const TopoEdge& edge(std::size_t i) const { return edges_.at(i); }

  /// Outgoing edge indices of `node`, ascending (BFS expansion order).
  const std::vector<std::size_t>& out_edges(std::size_t node) const {
    return out_edges_.at(node);
  }

  /// Installs the route for (src, dst) as an explicit edge sequence.
  /// Validates the chain: edges[0].from == src, consecutive edges share
  /// their meeting node, the last edge ends at dst, and no edge repeats
  /// (routes are loop-free).  Throws std::invalid_argument otherwise.
  void set_route(std::size_t src, std::size_t dst,
                 std::vector<std::size_t> edges);

  /// Computes and installs the BFS shortest route (fewest edges) from src
  /// to dst, expanding out-edges in ascending index order so ties resolve
  /// to the lexicographically-smallest edge sequence — deterministic by
  /// construction.  Returns false (and installs nothing) when dst is
  /// unreachable.
  bool auto_route(std::size_t src, std::size_t dst);

  /// auto_route for every pair; throws when any pair is unreachable.
  void auto_route_all(const std::vector<NodePair>& pairs);

  /// The installed route for (src, dst), or nullptr.
  const std::vector<std::size_t>* route(std::size_t src,
                                        std::size_t dst) const;

  /// All installed routes, ordered by (src, dst) — deterministic.
  const std::map<std::pair<std::size_t, std::size_t>,
                 std::vector<std::size_t>>&
  routes() const {
    return routes_;
  }

  /// Minimum link capacity along (src, dst)'s installed route — the
  /// route's narrow capacity.  Throws when no route is installed.
  double route_narrow_capacity(std::size_t src, std::size_t dst) const;

  /// Sum of per-edge propagation plus zero-load transmission delay for a
  /// packet of `bytes` along the route — its minimum one-way delay.
  SimTime route_base_owd(std::size_t src, std::size_t dst,
                         std::uint32_t bytes) const;

 private:
  void check_node(std::size_t node, const char* what) const;

  std::size_t nodes_ = 0;
  std::vector<TopoEdge> edges_;
  std::vector<std::vector<std::size_t>> out_edges_;  // per node, ascending
  // Sorted by (src, dst): iteration order is deterministic.
  std::map<std::pair<std::size_t, std::size_t>, std::vector<std::size_t>>
      routes_;
};

}  // namespace abw::sim
