// The simulated packet.  Plain data; links and nodes move it by value.
#pragma once

#include <cstdint>
#include <limits>

#include "sim/time.hpp"

namespace abw::sim {

/// Role of a packet; determines accounting and routing interpretation.
enum class PacketType : std::uint8_t {
  kCross,    ///< open-loop cross traffic
  kProbe,    ///< active-measurement probe
  kTcpData,  ///< TCP segment carrying payload
  kTcpAck,   ///< TCP acknowledgment
};

/// Sentinel for "travels the full path" in Packet::exit_hop.
inline constexpr std::uint32_t kEndToEnd = std::numeric_limits<std::uint32_t>::max();

/// A packet in flight.  `size_bytes` is the wire size used for
/// serialization-time and queue-occupancy computations.
///
/// Field order packs the struct into 48 bytes (the single-byte members
/// share one word instead of forcing padding): a hot-path delivery
/// closure capturing [handler*, Packet] is then 56 bytes and fits a
/// pooled event slot inline (SmallCallback::kInlineSize) — no heap
/// allocation per hop.  Don't reorder without re-checking
/// tests/sim_alloc_test.cpp.
struct Packet {
  std::uint64_t id = 0;          ///< globally unique, assigned by Simulator
  SimTime send_time = 0;         ///< injection time at the origin
  SimTime recv_time = 0;         ///< set on final delivery
  std::uint32_t size_bytes = 0;
  std::uint32_t flow_id = 0;     ///< generator / connection identifier
  std::uint32_t stream_id = 0;   ///< probe stream index (probe packets)
  std::uint32_t seq = 0;         ///< sequence number within flow or stream
  std::uint32_t exit_hop = kEndToEnd;  ///< hop after which the packet leaves
                                       ///< the path (one-hop cross traffic)
  PacketType type = PacketType::kCross;
  bool measurement = false;      ///< belongs to the measurement itself
                                 ///< (probes, the measured TCP flow) and is
                                 ///< excluded from cross-traffic ground truth
};
static_assert(sizeof(Packet) == 48, "keep the delivery closure inline-sized");

/// Interface for anything that can accept a packet: links, router nodes,
/// receivers.  Implementations take the packet by value and may forward,
/// queue, or consume it.
class PacketHandler {
 public:
  virtual ~PacketHandler() = default;
  virtual void handle(Packet pkt) = 0;
};

}  // namespace abw::sim
