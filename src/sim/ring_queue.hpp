// Growable ring-buffer FIFO for the link output queue.
//
// std::deque allocates and frees a storage block every ~10 packets as the
// queue head and tail cross block boundaries, so a saturated link mallocs
// on the steady-state path.  This ring grows geometrically (power-of-two
// capacity) and never shrinks: after warm-up, push/pop are branch-cheap
// index arithmetic with zero allocations.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace abw::sim {

template <typename T>
class RingQueue {
 public:
  bool empty() const { return count_ == 0; }
  std::size_t size() const { return count_; }
  std::size_t capacity() const { return buf_.size(); }

  void push_back(const T& v) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = v;
    ++count_;
  }

  void push_back(T&& v) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(v);
    ++count_;
  }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }

  void pop_front() {
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
  }

  /// Pre-sizes the buffer to at least `n` slots (rounded up to a power of
  /// two); never shrinks.
  void reserve(std::size_t n) {
    while (buf_.size() < n) grow();
  }

 private:
  void grow() {
    std::size_t new_cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i)
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> buf_;  // capacity always a power of two (or empty)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace abw::sim
