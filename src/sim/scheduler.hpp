// Event scheduler: a time-ordered queue of callbacks.  Ties are broken by
// insertion order so simulations are fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/time.hpp"

namespace abw::sim {

/// Minimal discrete-event scheduler.  Not thread-safe; the simulation is
/// single-threaded by design.  The owner (Simulator) pops an event,
/// advances its clock to the event time, and only then runs the callback —
/// so callbacks always observe the correct current time.
class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// An event popped from the queue.
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break
    Callback cb;
  };

  /// Schedules `cb` to fire at absolute time `t`.  `t` must not be earlier
  /// than the most recently popped event time; scheduling in the past is a
  /// causality bug, so it throws std::logic_error instead of silently
  /// reordering history.  `t` equal to the last popped time is allowed.
  void schedule(SimTime t, Callback cb);

  /// True when no events remain.
  bool empty() const { return heap_.empty(); }

  /// Time of the earliest pending event; undefined when empty.
  SimTime next_time() const { return heap_.front().time; }

  /// Removes and returns the earliest event (does NOT run it).
  Event pop();

  /// Number of pending events.
  std::size_t size() const { return heap_.size(); }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::vector<Event> heap_;  // std::push_heap/pop_heap min-heap via Later
  std::uint64_t next_seq_ = 0;
  SimTime last_popped_ = 0;
};

}  // namespace abw::sim
