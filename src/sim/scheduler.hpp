// Event scheduler: a time-ordered queue of callbacks.  Ties are broken by
// insertion order so simulations are fully deterministic.
//
// Hot-path layout (PR 2): callbacks live in a chunked slab of pooled
// slots recycled through a free list.  Chunks are never reallocated, so
// slot addresses are stable — events are emplaced directly into their
// slot when scheduled and executed in place when popped, with zero heap
// allocations and zero callback moves at steady state (the callback type
// stores its capture inline; see callback.hpp).  Ordering lives in a
// separate 4-ary min-heap of plain 24-byte (time, seq, slot) records:
// sifts move small PODs instead of whole events and the tree is half as
// deep as a binary heap.  The observable behavior — FIFO tie-breaks, the
// schedule-in-the-past contract — is bit-identical to the previous
// std::function binary-heap implementation (pinned by
// tests/golden_determinism_test.cpp).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

namespace abw::sim {

/// Minimal discrete-event scheduler.  Not thread-safe; the simulation is
/// single-threaded by design.  The owner (Simulator) pops an event,
/// advances its clock to the event time, and only then runs the callback —
/// so callbacks always observe the correct current time (see
/// pop_and_run(), whose on_pop hook runs between the two).
class Scheduler {
 public:
  using Callback = SmallCallback;

  /// An event popped from the queue (the pop() API; the Simulator run
  /// loop uses pop_and_run() instead, which never moves the callback).
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break
    Callback cb;
  };

  /// Schedules `cb` to fire at absolute time `t`.  `t` must not be earlier
  /// than the most recently popped event time; scheduling in the past is a
  /// causality bug, so it throws std::logic_error instead of silently
  /// reordering history.  `t` equal to the last popped time is allowed.
  void schedule(SimTime t, Callback cb) {
    std::uint32_t slot = acquire_slot(t);
    slot_ref(slot) = std::move(cb);
    push_entry(t, slot);
  }

  /// Same contract as schedule(), but constructs the callable directly in
  /// its pooled slot — the allocation- and move-free fast path.
  template <typename F>
  void schedule_emplace(SimTime t, F&& f) {
    std::uint32_t slot = acquire_slot(t);
    slot_ref(slot).emplace(std::forward<F>(f));
    push_entry(t, slot);
  }

  /// True when no events remain.
  bool empty() const { return heap_.empty(); }

  /// Time of the earliest pending event; throws std::logic_error when the
  /// queue is empty (like pop() — callers must check empty() first).
  SimTime next_time() const;

  /// next_time() without the empty check — for run loops that already
  /// test empty() every step and can't pay an out-of-line call per event.
  /// Precondition: !empty().
  SimTime next_time_unchecked() const { return heap_.front().time; }

  /// Removes and returns the earliest event (does NOT run it).
  Event pop();

  /// Removes the earliest event and runs its callback in place (no move
  /// out of the pool).  `on_pop(time)` fires after the queue is updated
  /// but before the callback, so the owner can advance its clock first.
  /// Throws std::logic_error when empty.
  template <typename OnPop>
  void pop_and_run(OnPop&& on_pop) {
    Entry top = remove_top();
    on_pop(top.time);
    Callback& cb = slot_ref(top.slot());  // stable address: chunks never move
    cb();                                 // may schedule events re-entrantly
    cb.clear();
    free_slots_.push_back(top.slot());
  }

  /// Number of pending events.
  std::size_t size() const { return heap_.size(); }

  /// High-water mark of pending events over the scheduler's lifetime.
  std::size_t peak_size() const { return peak_size_; }

  /// Number of pooled callback slots ever created; stops growing once the
  /// free list satisfies the steady-state churn.
  std::size_t pool_capacity() const { return chunks_.size() * kChunkSize; }

  /// Pre-sizes the heap, slot pool, and free list for `n` concurrent
  /// events.
  void reserve(std::size_t n);

 private:
  /// Heap record: the ordering key plus the slot holding the callback,
  /// packed to 16 bytes so a full 4-child group spans one cache line and
  /// sift operations move half as much memory.  The sequence number and
  /// slot id share one word: seq in the high 40 bits, slot in the low 24.
  /// Because seq values are unique, comparing the packed word compares
  /// seq — the FIFO tie-break is unchanged.  Limits (checked, not
  /// silent): 2^40 ≈ 1.1e12 events per Scheduler lifetime and 2^24 ≈
  /// 16.7M concurrently pending events.
  struct Entry {
    SimTime time;
    std::uint64_t seq_slot;

    std::uint64_t seq() const { return seq_slot >> kSlotBits; }
    std::uint32_t slot() const {
      return static_cast<std::uint32_t>(seq_slot & (kSlotCapacity - 1));
    }
  };
  static_assert(sizeof(Entry) == 16);

  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotCapacity = std::uint64_t{1} << kSlotBits;
  static constexpr std::uint64_t kSeqLimit = std::uint64_t{1} << 40;

  /// Growable Entry array whose logical index 0 sits 3 slots past a
  /// 64-byte-aligned base.  A 4-ary heap's child groups start at logical
  /// index 4i+1 — physical 4i+4, a multiple of four 16-byte entries — so
  /// every child group occupies exactly one cache line and each sift
  /// level touches one line instead of (on average) two.
  class EntryVec {
   public:
    EntryVec() = default;
    EntryVec(const EntryVec&) = delete;
    EntryVec& operator=(const EntryVec&) = delete;
    ~EntryVec() { std::free(raw_); }

    Entry& operator[](std::size_t i) { return base_[i]; }
    const Entry& operator[](std::size_t i) const { return base_[i]; }
    Entry& front() { return base_[0]; }
    const Entry& front() const { return base_[0]; }
    Entry& back() { return base_[size_ - 1]; }
    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    void push_back(const Entry& e) {
      if (size_ == cap_) grow(size_ + 1);
      base_[size_++] = e;
    }
    void pop_back() { --size_; }
    void reserve(std::size_t n) {
      if (n > cap_) grow(n);
    }

   private:
    void grow(std::size_t need) {
      std::size_t cap = cap_ != 0 ? cap_ * 2 : 61;  // 61+3 slots = 1 KiB
      if (cap < need) cap = need;
      std::size_t bytes = (((cap + kPad) * sizeof(Entry)) + 63) / 64 * 64;
      void* raw = std::aligned_alloc(64, bytes);
      if (raw == nullptr) throw std::bad_alloc();
      Entry* base = static_cast<Entry*>(raw) + kPad;
      if (size_ != 0) std::memcpy(base, base_, size_ * sizeof(Entry));
      std::free(raw_);
      raw_ = raw;
      base_ = base;
      cap_ = cap;
    }

    static constexpr std::size_t kPad = 3;  // phys = logical + 3
    void* raw_ = nullptr;
    Entry* base_ = nullptr;
    std::size_t size_ = 0;
    std::size_t cap_ = 0;
  };

  // Slots live in fixed-size chunks so growing the pool never moves
  // existing callbacks (an executing callback may grow the pool
  // re-entrantly) and pool growth is O(1), not an O(n) vector realloc.
  static constexpr std::size_t kChunkShift = 9;  // 512 slots = 32 KiB/chunk
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  static bool before(const Entry& a, const Entry& b) {
    // seq_slot carries seq in its high bits; seqs are unique, so this is
    // exactly the (time, seq) lexicographic order.  Compared as one
    // 128-bit key: heap comparisons are coin flips, so the short-circuit
    // form mispredicts ~50% of the time — a branchless cmp/sbb pair made
    // the whole drain path ~40% faster.  Times are non-negative (the
    // schedule-in-the-past check enforces t >= last_popped_ >= 0), so the
    // signed->unsigned cast preserves order.
#if defined(__SIZEOF_INT128__)
    const auto key = [](const Entry& e) {
      return static_cast<unsigned __int128>(static_cast<std::uint64_t>(e.time))
                 << 64 |
             e.seq_slot;
    };
    return key(a) < key(b);
#else
    return a.time < b.time || (a.time == b.time && a.seq_slot < b.seq_slot);
#endif
  }

  Callback& slot_ref(std::uint32_t slot) {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  // The schedule-side fast path is inline (one event = one of these per
  // packet); slow paths (chunk growth, overflow, the past-check throw)
  // stay out of line.
  std::uint32_t acquire_slot(SimTime t) {
    if (t < last_popped_) throw_past_event();
    if (!free_slots_.empty()) {
      std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    return acquire_fresh_slot();
  }

  void push_entry(SimTime t, std::uint32_t slot) {
    if (next_seq_ >= kSeqLimit) throw_seq_overflow();
    heap_.push_back(Entry{t, (next_seq_++ << kSlotBits) | slot});
    sift_up(heap_.size() - 1);
    if (heap_.size() > peak_size_) peak_size_ = heap_.size();
  }

  void sift_up(std::size_t i) {
    Entry v = heap_[i];
    while (i > 0) {
      std::size_t parent = (i - 1) / kArity;
      if (!before(v, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = v;
  }

  [[noreturn]] static void throw_past_event();
  [[noreturn]] static void throw_seq_overflow();
  std::uint32_t acquire_fresh_slot();  // free list empty: grow the slab
  Entry remove_top();                  // pops the heap, updates last_popped_
  void sift_down(std::size_t i);

  static constexpr std::size_t kArity = 4;

  EntryVec heap_;  // 4-ary min-heap on (time, seq), cache-line aligned
  std::vector<std::unique_ptr<Callback[]>> chunks_;  // stable slot slab
  std::vector<std::uint32_t> free_slots_;            // recycled slot ids
  std::uint32_t next_fresh_slot_ = 0;  // first never-used slot id
  std::uint64_t next_seq_ = 0;
  SimTime last_popped_ = 0;
  std::size_t peak_size_ = 0;
};

}  // namespace abw::sim
