// Intentionally empty: node.hpp is header-only, this TU anchors the target.
#include "sim/node.hpp"
