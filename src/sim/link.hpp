// Store-and-forward link: FIFO drop-tail output queue + transmitter +
// propagation delay.  This is the queueing model every experiment in the
// paper is built on (its Eq. 6: q-growth when Ri > A happens here).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "obs/trace.hpp"
#include "sim/fault.hpp"
#include "sim/packet.hpp"
#include "sim/ring_queue.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "sim/util_meter.hpp"
#include "stats/rng.hpp"

namespace abw::sim {

class FluidQueue;

/// Active queue management discipline of a link.
enum class QueueDiscipline {
  kDropTail,  ///< drop arrivals once the byte limit is exceeded (default)
  kRed,       ///< Random Early Detection (Floyd & Jacobson 1993)
};

/// RED parameters (in bytes, mirroring the byte-based queue limit).
struct RedConfig {
  std::size_t min_threshold_bytes = 30 * 1500;
  std::size_t max_threshold_bytes = 90 * 1500;
  double max_drop_prob = 0.1;   ///< drop probability at max threshold
  double ewma_weight = 0.002;   ///< averaging weight for the queue estimate
};

/// Configuration of a link.
struct LinkConfig {
  double capacity_bps = 100e6;        ///< transmission rate, bits/s
  SimTime propagation_delay = 0;      ///< per-packet latency after tx
  std::size_t queue_limit_bytes = 1 << 20;  ///< hard byte limit
  /// Random per-packet loss probability (0 = lossless).  Applied on
  /// arrival, before queueing — models transmission errors independent of
  /// congestion (failure injection for estimator robustness tests).
  double random_loss_prob = 0.0;
  std::uint64_t loss_seed = 0x10557;  ///< RNG seed for the loss process
  QueueDiscipline discipline = QueueDiscipline::kDropTail;
  RedConfig red;                      ///< used when discipline == kRed
};

/// Counters a link exposes for tests and experiment reports.
struct LinkStats {
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
  std::uint64_t packets_dropped = 0;  ///< queue-overflow (congestion) drops
  std::uint64_t packets_red_dropped = 0;  ///< RED early drops
  std::uint64_t packets_lost = 0;     ///< random (non-congestion) losses,
                                      ///< Bernoulli AND Gilbert–Elliott
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  // Fault-injection accounting (sim/fault.hpp); all zero on clean links.
  std::uint64_t packets_ge_lost = 0;  ///< Gilbert–Elliott share of packets_lost
  std::uint64_t packets_duplicated = 0;  ///< injected duplicates (each also
                                         ///< counted in packets_out when sent)
  std::uint64_t packets_reordered = 0;   ///< departures given extra delay
  std::uint64_t capacity_changes = 0;    ///< set_capacity() calls applied
};

/// A unidirectional store-and-forward link.  Packets handed to `handle()`
/// join the FIFO queue (or are dropped when the byte limit is exceeded);
/// the head packet is transmitted at `capacity_bps` and delivered to the
/// downstream handler after the propagation delay.  Every transmission is
/// recorded in the UtilizationMeter, giving exact ground-truth avail-bw.
class Link final : public PacketHandler {
 public:
  Link(Simulator& sim, std::string name, const LinkConfig& cfg);
  ~Link() override;  // out-of-line: FluidQueue is incomplete here

  /// Sets the downstream receiver of transmitted packets.  Must be set
  /// before the first packet arrives; not owned.
  void set_next(PacketHandler* next) { next_ = next; }

  void handle(Packet pkt) override;

  const LinkStats& stats() const { return stats_; }
  const UtilizationMeter& meter() const { return meter_; }
  UtilizationMeter& meter() { return meter_; }
  double capacity_bps() const { return cfg_.capacity_bps; }
  SimTime propagation_delay() const { return cfg_.propagation_delay; }
  const std::string& name() const { return name_; }

  /// Instantaneous queue backlog in bytes (including the packet in
  /// transmission).
  std::size_t backlog_bytes() const { return queued_bytes_; }

  /// Queueing + transmission delay a packet arriving right now would see
  /// (ignores future arrivals).  Used by the BFind-style per-hop monitor.
  SimTime current_delay() const;

  /// Observes every packet *arriving* at the link (before any drop
  /// decision), with the arrival timestamp.  Used by trace recorders;
  /// at most one tap.
  void set_arrival_tap(std::function<void(const Packet&, SimTime)> tap) {
    tap_ = std::move(tap);
  }

  /// Pre-sizes the output queue for `n` queued packets (steady-state
  /// allocation-free operation; see tests/sim_alloc_test.cpp).
  void reserve_queue(std::size_t n) { queue_.reserve(n); }

  /// Attaches a trace sink (obs/trace.hpp) receiving packet
  /// enqueue/drop/dequeue/deliver, busy-run boundary, fault, and
  /// capacity-change events.  nullptr (the default) disables tracing:
  /// every emission site reduces to one null-pointer branch, and the
  /// simulation's behavior is bit-identical with any sink attached
  /// (emission draws no randomness and never advances time).  Not owned.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace() const { return trace_; }

  /// True while a transmission is in progress (the link is not idle).
  bool transmitting() const { return transmitting_; }

  /// This link's configuration (the fluid integrator shares it).
  const LinkConfig& config() const { return cfg_; }

  // --- hybrid fluid fast path (see sim/fluid.hpp) ------------------------
  // In hybrid mode the link's cross traffic is integrated analytically by
  // a FluidQueue between probe collision windows.  Packet mode never
  // touches any of this: without enable_fluid() the only added cost in
  // handle() is one always-false branch.

  /// Creates the fluid integrator.  Throws if the link uses RED or random
  /// loss (their RNG draw order cannot be reproduced analytically — the
  /// hybrid validity envelope), or if already enabled (one fluid source
  /// per link).
  FluidQueue& enable_fluid();

  /// The fluid integrator, or nullptr when hybrid is off.
  FluidQueue* fluid() { return fluid_.get(); }

  /// Marks whether the attached source currently feeds this link as
  /// fluid.  While set, any discrete packet reaching handle() first runs
  /// the interrupt hook (which materializes the fluid backlog) — the
  /// safety net behind the explicit collision-horizon windows.
  void set_fluid_active(bool on) { fluid_active_ = on; }
  bool fluid_active() const { return fluid_active_; }

  /// Installs the conversion hook (the owning HybridCrossSource).
  void set_fluid_interrupt(std::function<void()> cb) {
    fluid_interrupt_ = std::move(cb);
  }

  // --- fault injection (see sim/fault.hpp) -------------------------------
  // Impairments are mutually exclusive with the hybrid fluid fast path,
  // exactly like RED and random loss: analytic integration cannot
  // reproduce per-packet RNG draws or mid-run capacity steps.  With no
  // faults installed and no capacity change the packet-mode behavior is
  // bit-identical to a build without this layer.

  /// Installs per-packet faults (Gilbert–Elliott bursty loss, bounded
  /// reordering, duplication).  A config with any() == false removes
  /// previously installed faults.  Throws if the link runs fluid.
  void set_faults(const LinkFaults& faults);

  /// The installed fault configuration, or nullptr when none.
  const LinkFaults* faults() const { return faults_ ? &faults_->cfg : nullptr; }

  /// Changes the link capacity effective now.  The in-service packet is
  /// re-planned (its remaining bits continue at the new rate, its busy
  /// interval is amended in the meter), the serialization-time memo is
  /// invalidated, and the step is recorded in the meter's capacity
  /// timeline so ground-truth avail-bw stays exact across the change.
  /// Throws if the link runs fluid.
  void set_capacity(double bps);

  /// Marks the link capacity-dynamic ahead of a scheduled change, so
  /// enable_fluid() is rejected while the change is still pending.
  /// Throws if the link already runs fluid.
  void expect_capacity_dynamics();

  /// True once a capacity change was applied or scheduled.
  bool capacity_dynamic() const { return capacity_dynamic_; }

 private:
  friend class FluidQueue;
  void start_transmission();                   // pull the next queued packet
  void begin_transmission(const Packet& pkt);  // serialize + arm the event
  void finish_transmission();  // the link's single recurring tx event
  void admit(const Packet& pkt);  // RED / queue-limit admission + enqueue
  bool red_drop(std::uint32_t size_bytes);  // RED admission decision
  // Trace emission helpers; call only under `if (trace_)`.
  void emit_packet(obs::EventKind kind, const Packet& pkt,
                   std::string_view cause);
  void emit_simple(obs::EventKind kind, std::string_view label, double value);

  Simulator& sim_;
  std::string name_;
  LinkConfig cfg_;
  PacketHandler* next_ = nullptr;

  // The transmit loop self-drives through ONE event at a time: the packet
  // being serialized sits in tx_pkt_ and the scheduled completion thunk
  // re-arms itself from the ring queue — no per-packet closure.  The
  // thunk captures tx_epoch_; a capacity change re-plans the in-service
  // packet by bumping the epoch and arming a new completion event, which
  // strands the old one (there is no scheduler cancel).
  RingQueue<Packet> queue_;
  Packet tx_pkt_;
  std::size_t queued_bytes_ = 0;
  bool transmitting_ = false;
  SimTime tx_start_ = 0;        // when the in-service packet (re)started
  double tx_bits_left_ = 0.0;   // bits of it still unserialized at tx_start_
  std::uint64_t tx_epoch_ = 0;  // invalidates stale completion events
  // Last (size -> serialization time) pair; bytes=0 maps to time 0, which
  // matches transmission_time(0), so the empty memo is consistent.
  std::uint32_t memo_tx_bytes_ = 0;
  SimTime memo_tx_time_ = 0;

  LinkStats stats_;
  UtilizationMeter meter_;
  obs::TraceSink* trace_ = nullptr;  // not owned; nullptr = tracing off
  std::function<void(const Packet&, SimTime)> tap_;
  stats::Rng loss_rng_;
  double red_avg_bytes_ = 0.0;  // EWMA queue estimate for RED

  std::unique_ptr<FluidQueue> fluid_;  // hybrid mode only
  bool fluid_active_ = false;
  std::function<void()> fluid_interrupt_;

  // Fault injection: allocated only when faults are installed, so the
  // clean hot path pays one null check in handle() and one in
  // finish_transmission().
  std::unique_ptr<FaultState> faults_;
  bool capacity_dynamic_ = false;  // a capacity change applied or pending
};

}  // namespace abw::sim
