// Fault injection: impairments the paper's pitfalls are made of.
//
// Real paths are not the static, lossless FIFO chains the estimation
// models assume — avail-bw is non-stationary (links flap, capacity is
// renegotiated), loss is bursty (Gilbert–Elliott, not Bernoulli), and
// packets get reordered and duplicated in the wild.  This layer injects
// exactly those impairments, seed-deterministically, so every estimator
// can be driven through the conditions under which published tools are
// known to hang, crash, or emit garbage (Ait Ali et al.'s comparative
// evaluation) — and be tested to degrade gracefully instead.
//
// Two kinds of impairment:
//
//  * per-packet faults (LinkFaults): a Gilbert–Elliott bursty-loss chain
//    alongside the existing Bernoulli LinkConfig::random_loss_prob,
//    bounded reordering (extra per-packet delivery delay), and duplicate
//    injection — installed on a Link with Link::set_faults();
//
//  * time-scheduled link dynamics: capacity changes and down/up flaps
//    mid-run, driven by the FaultInjector through Link::set_capacity()
//    (which re-plans the in-service packet and keeps the ground-truth
//    meter exact across the change).
//
// All of it is mutually exclusive with the hybrid fluid fast path, the
// same way RED and random loss are: the fluid integrator cannot
// reproduce per-packet RNG draws or mid-run capacity steps analytically.
// Zero-cost / zero-behavior-change when unused: a link with no faults
// installed and no capacity change executes the exact packet-mode path
// (golden determinism digests unchanged).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"
#include "stats/rng.hpp"

namespace abw::sim {

class Link;
class Simulator;

/// Gilbert–Elliott two-state bursty loss.  The chain advances one step
/// per arriving packet; the packet is then dropped with the current
/// state's loss probability.  Mean burst length is 1/p_bad_good packets;
/// the stationary loss rate (with loss_good = 0, loss_bad = 1) is
/// p_good_bad / (p_good_bad + p_bad_good).
struct GilbertElliott {
  double p_good_bad = 0.0;  ///< per-packet good->bad transition probability
  double p_bad_good = 0.0;  ///< per-packet bad->good transition probability
  double loss_good = 0.0;   ///< loss probability while in the good state
  double loss_bad = 1.0;    ///< loss probability while in the bad state

  bool enabled() const { return p_good_bad > 0.0; }
};

/// Per-packet fault configuration of one link.  Install with
/// Link::set_faults(); all draws come from a dedicated RNG stream seeded
/// by `seed`, so enabling faults never perturbs the link's loss/RED RNG
/// sequence and runs are exactly reproducible.
struct LinkFaults {
  GilbertElliott gilbert;      ///< bursty loss (off by default)
  /// Probability that a departing packet is held back by an extra
  /// delivery delay drawn uniformly from (0, reorder_extra_max] — packets
  /// transmitted behind it can then overtake it (bounded reordering).
  double reorder_prob = 0.0;
  SimTime reorder_extra_max = 2 * kMillisecond;  ///< reordering bound
  /// Probability that an arriving packet is enqueued twice.  The copy
  /// consumes transmission capacity like any packet (it is accounted in
  /// the ground-truth meter) and reaches the receiver as a duplicate.
  double duplicate_prob = 0.0;
  std::uint64_t seed = 0xFA177;  ///< RNG seed for all fault draws

  bool any() const {
    return gilbert.enabled() || reorder_prob > 0.0 || duplicate_prob > 0.0;
  }
};

/// Runtime state of a link's fault processes (chain state + RNG stream).
/// Owned by the Link; heap-allocated only when faults are installed so
/// the no-fault hot path pays a single null check.
struct FaultState {
  explicit FaultState(const LinkFaults& cfg_in)
      : cfg(cfg_in), rng(cfg_in.seed) {}

  /// Advances the Gilbert–Elliott chain one packet and decides a drop.
  bool ge_drop() {
    const GilbertElliott& g = cfg.gilbert;
    if (!g.enabled()) return false;
    if (bad) {
      if (rng.bernoulli(g.p_bad_good)) bad = false;
    } else {
      if (rng.bernoulli(g.p_good_bad)) bad = true;
    }
    double p = bad ? g.loss_bad : g.loss_good;
    return p > 0.0 && rng.bernoulli(p);
  }

  /// Decides whether an arriving packet is duplicated.
  bool duplicate() {
    return cfg.duplicate_prob > 0.0 && rng.bernoulli(cfg.duplicate_prob);
  }

  /// Extra delivery delay for a departing packet: 0 for most packets,
  /// uniform in (0, reorder_extra_max] with probability reorder_prob.
  SimTime reorder_extra() {
    if (cfg.reorder_prob <= 0.0 || !rng.bernoulli(cfg.reorder_prob)) return 0;
    return rng.uniform_int(1, cfg.reorder_extra_max);
  }

  LinkFaults cfg;
  stats::Rng rng;
  bool bad = false;  ///< current Gilbert–Elliott state
};

/// Schedules time-driven link dynamics (capacity changes / flaps) on the
/// simulator clock.  Purely a scheduling convenience over
/// Link::set_capacity(); per-packet faults go through Link::set_faults()
/// directly.  All methods must be called before the simulation advances
/// past their trigger times.
class FaultInjector {
 public:
  explicit FaultInjector(Simulator& sim) : sim_(sim) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Sets `link`'s capacity to `bps` at absolute sim time `t`.  Marks the
  /// link as dynamic immediately, so a later enable_fluid() is rejected
  /// even before the change fires; throws right away if the link already
  /// runs fluid.
  void set_capacity_at(Link& link, SimTime t, double bps);

  /// A down/up flap: capacity drops to `down_bps` at `t` and recovers to
  /// its pre-flap value after `duration`.
  void flap(Link& link, SimTime t, SimTime duration, double down_bps);

  /// Installs per-packet faults on `link` (forwarding to
  /// Link::set_faults; kept here so one object wires a whole scenario).
  void set_link_faults(Link& link, const LinkFaults& faults);

  /// Number of capacity-change events scheduled so far.
  std::size_t scheduled_changes() const { return scheduled_; }

 private:
  Simulator& sim_;
  std::size_t scheduled_ = 0;
};

}  // namespace abw::sim
