// Conservative time-window parallel DES: one simulation sharded across
// threads at high-latency links.
//
// A multi-hop path is split by a PartitionPlan (sim/partition.hpp) into
// contiguous Domains.  Each Domain owns a full single-threaded simulation
// world — its own sim::Scheduler/Simulator (the PR 2 pooled queue), its
// own sub-Path, its own traffic generators with derived RNG streams — so
// the DES hot path runs completely lock-free inside a window.  Domains
// advance in lockstep windows of length W = the plan's lookahead (the
// minimum cut-link propagation delay):
//
//   phase 1   every domain runs its events in [T, T+W) — in parallel;
//   barrier   (handoffs pushed in phase 1 become visible downstream);
//   phase 2   every domain drains its inbound inbox, scheduling arrival
//             events at their exact cross-domain arrival times;
//   barrier   the control step advances T, checks the caller's stop
//             predicate, and publishes the next window.
//
// Why this is safe (the classic conservative argument): a packet departs
// an upstream domain through its cut link at some t in [T, T+W) and
// arrives downstream at t + d with d >= W, i.e. at or after T+W — always
// in a strictly later window than the one that produced it, so every
// arrival is sitting in the inbox before the window that must execute it
// begins.  Cut links keep their full serialization behavior upstream;
// only their propagation delay is re-expressed as the handoff latency.
//
// Determinism: each domain's event sequence depends only on its own
// initial state and the sequence of inbox drains, and each drain's
// content is pinned by the barrier protocol (everything pushed in windows
// < k, nothing later).  The result is bit-identical for any worker count
// — 1, 2, 4 threads or one per domain (pinned by golden digests in
// tests/pdes_test.cpp and tests/golden_determinism_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/packet.hpp"
#include "sim/partition.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace abw::sim {

/// A packet queued for cross-domain delivery at an absolute arrival time.
struct TimedPacket {
  SimTime arrival = 0;
  Packet pkt;
};

/// Per-edge handoff queue between two adjacent domains.  Deliberately a
/// plain vector: it has exactly one producer (the upstream portal, which
/// only pushes during phase 1) and one consumer (the downstream drain,
/// which only pops during phase 2), and the window barrier between the
/// phases establishes the happens-before edge — so no per-packet lock or
/// atomic is needed at all.
class EdgeInbox {
 public:
  void push(SimTime arrival, const Packet& pkt) {
    buf_.push_back({arrival, pkt});
    ++total_;
  }

  /// Moves all pending packets into `out` (cleared first), FIFO order.
  void take(std::vector<TimedPacket>& out) {
    out.clear();
    out.swap(buf_);
  }

  /// Total packets ever pushed through this edge.
  std::uint64_t total() const { return total_; }

 private:
  std::vector<TimedPacket> buf_;
  std::uint64_t total_ = 0;
};

/// Installed as a non-final domain's sub-path receiver: re-expresses the
/// cut link's propagation delay as the cross-domain handoff latency.  The
/// cut link's own propagation delay is zeroed in the sub-path, so this
/// handler runs at the packet's departure (serialization-complete) time
/// and the arrival downstream is departure + latency — exactly the time
/// the serial topology would deliver at.
class DomainPortal final : public PacketHandler {
 public:
  DomainPortal(Simulator& sim, EdgeInbox& inbox, SimTime latency)
      : sim_(sim), inbox_(inbox), latency_(latency) {}

  void handle(Packet pkt) override { inbox_.push(sim_.now() + latency_, pkt); }

 private:
  Simulator& sim_;
  EdgeInbox& inbox_;
  SimTime latency_;
};

/// Observable per-domain accounting (wall-clock fields are measured by
/// the worker that owns the domain and are naturally nondeterministic;
/// everything else is bit-stable across worker counts).
struct DomainStats {
  std::uint64_t windows = 0;      ///< windows executed
  std::uint64_t handoffs_in = 0;  ///< packets drained from upstream
  std::uint64_t events = 0;       ///< events processed by the local sim
  double run_seconds = 0.0;       ///< wall time inside run_window
  double wait_seconds = 0.0;      ///< wall time blocked at window barriers
};

/// One shard of a partitioned simulation: a private Simulator plus the
/// sub-path of global links [begin_hop, end_hop).  Construct via
/// ParallelPath; direct accessors exist so callers can attach traffic
/// generators and receivers exactly as they would on a serial Path.
class Domain {
 public:
  /// `sub_links` are the domain's link configs (a cut link's propagation
  /// delay already zeroed by ParallelPath); `out_latency` > 0 makes this
  /// a non-final domain whose receiver is a portal of that latency.
  Domain(std::vector<LinkConfig> sub_links, std::size_t begin_hop,
         SimTime out_latency);

  Domain(const Domain&) = delete;
  Domain& operator=(const Domain&) = delete;

  Simulator& simulator() { return sim_; }
  Path& path() { return *path_; }
  const Path& path() const { return *path_; }

  /// Global index of this domain's first link.
  std::size_t begin_hop() const { return begin_hop_; }
  std::size_t hop_count() const { return path_->hop_count(); }

  /// The inbox upstream pushes into (domain 0's is never used).
  EdgeInbox& inbox() { return inbox_; }

  /// Wires the outbound portal to the downstream domain's inbox.  Must be
  /// called for every non-final domain before the first window.
  void connect_downstream(EdgeInbox& downstream);

  /// Phase 1: runs all local events in [now, end), leaving the clock at
  /// `end`.
  void run_window(SimTime end);

  /// Phase 2: schedules every pending inbound packet at its arrival time
  /// (all arrivals are >= the clock after run_window — guaranteed by the
  /// lookahead rule).  FIFO inbox order, so event seq assignment — and
  /// therefore same-nanosecond tie-breaking — is identical for any worker
  /// count.
  void drain_inbox();

  const DomainStats& stats() const { return stats_; }
  DomainStats& stats() { return stats_; }

 private:
  Simulator sim_;
  std::unique_ptr<Path> path_;
  std::size_t begin_hop_;
  SimTime out_latency_;
  EdgeInbox inbox_;                       // inbound (upstream pushes)
  std::unique_ptr<DomainPortal> portal_;  // outbound (non-final domains)
  std::vector<TimedPacket> drain_scratch_;
  DomainStats stats_;
};

/// A multi-hop path sharded into Domains and driven in conservative
/// lockstep windows, optionally across worker threads.  The serial-path
/// query surface (per-link meters, ground-truth avail-bw) is mirrored
/// with global hop indices.
///
/// Threading contract: between run calls the object is plain
/// single-threaded state — attach generators, inject packets, query
/// meters freely.  During run_until*/run windows, domain state must only
/// be touched by the owning worker (the library's own components respect
/// this by construction).
class ParallelPath {
 public:
  /// Builds the domains for `links` under `plan`.  `threads` caps the
  /// worker count (clamped to the domain count; 0 = one per domain).
  /// Worker threads are spawned per run call and named "abw-dom-N".
  ParallelPath(const std::vector<LinkConfig>& links, const PartitionPlan& plan,
               std::size_t threads);

  ParallelPath(const ParallelPath&) = delete;
  ParallelPath& operator=(const ParallelPath&) = delete;

  std::size_t domain_count() const { return domains_.size(); }
  std::size_t hop_count() const { return hop_count_; }
  std::size_t threads() const { return threads_; }
  SimTime lookahead() const { return plan_.lookahead; }
  const PartitionPlan& plan() const { return plan_; }

  Domain& domain(std::size_t d) { return *domains_.at(d); }
  const Domain& domain(std::size_t d) const { return *domains_.at(d); }

  /// Global-hop-indexed link access (maps into the owning domain).
  Link& link(std::size_t global_hop);
  const Link& link(std::size_t global_hop) const;

  /// Sets the end host receiving end-to-end packets (last domain).
  void set_receiver(PacketHandler* receiver);

  /// Common clock: every domain sits at this time between run calls.
  SimTime now() const { return clock_; }

  /// Runs all domains to `t` in lockstep windows.
  void run_until(SimTime t);

  /// Runs windows until `done()` (evaluated between windows, under the
  /// barrier — so it may safely read any domain's state) returns true or
  /// the clock reaches `t_max`.  Returns whether `done` was satisfied.
  bool run_until_condition(SimTime t_max, const std::function<bool()>& done);

  /// Ground-truth queries over global links, mirroring sim::Path.
  double avail_bw(SimTime t1, SimTime t2) const;
  double cross_avail_bw(SimTime t1, SimTime t2) const;
  std::size_t tight_link(SimTime t1, SimTime t2) const;

  /// Total cross-domain packet handoffs so far.
  std::uint64_t handoffs() const;

  /// Windows executed so far.
  std::uint64_t windows() const { return windows_; }

  /// Snapshots domain accounting into `m`: "pdes.windows",
  /// "pdes.handoffs", per-domain "pdes.domain<d>.events" counters, and
  /// the wall-clock "pdes.window_run" / "pdes.barrier_wait" timers (the
  /// nondeterministic family — excluded from to_json(false) like every
  /// timer).
  void snapshot_metrics(obs::MetricsRegistry& m) const;

 private:
  void run_windows_inline(SimTime t_max, const std::function<bool()>& done,
                          bool& satisfied);
  void run_windows_threaded(SimTime t_max, const std::function<bool()>& done,
                            bool& satisfied);

  PartitionPlan plan_;
  std::size_t hop_count_;
  std::size_t threads_;
  std::vector<std::unique_ptr<Domain>> domains_;
  SimTime clock_ = 0;
  std::uint64_t windows_ = 0;
};

}  // namespace abw::sim
