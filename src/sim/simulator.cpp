#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace abw::sim {

namespace {
// Shared timer key so every drain loop accumulates into one TimerStat.
constexpr std::string_view kDrainTimer = "sim.drain";
}  // namespace

void Simulator::step() {
  // The callback runs in place in its pooled slot; the clock advances
  // BEFORE it runs (the on_pop hook fires between queue update and call).
  scheduler_.pop_and_run([this](SimTime t) {
    now_ = t;
    ++events_processed_;
  });
}

void Simulator::run_until(SimTime t) {
  obs::ScopedTimer timer(metrics_, kDrainTimer);
  while (!scheduler_.empty() && scheduler_.next_time_unchecked() <= t) step();
  if (now_ < t) now_ = t;
  if (metrics_) metrics_->counter("sim.events").set(events_processed_);
}

void Simulator::run_window(SimTime end) {
  if (end < now_)
    throw std::logic_error("Simulator::run_window: window end in the past");
  obs::ScopedTimer timer(metrics_, kDrainTimer);
  while (!scheduler_.empty() && scheduler_.next_time_unchecked() < end) step();
  now_ = end;
  if (metrics_) metrics_->counter("sim.events").set(events_processed_);
}

bool Simulator::run_until_condition(SimTime t_max,
                                    const std::function<bool()>& done) {
  obs::ScopedTimer timer(metrics_, kDrainTimer);
  bool satisfied = done();
  while (!satisfied && !scheduler_.empty() &&
         scheduler_.next_time_unchecked() <= t_max) {
    step();
    satisfied = done();
  }
  if (metrics_) metrics_->counter("sim.events").set(events_processed_);
  return satisfied;
}

void Simulator::run_until_idle() {
  obs::ScopedTimer timer(metrics_, kDrainTimer);
  while (!scheduler_.empty()) step();
  if (metrics_) metrics_->counter("sim.events").set(events_processed_);
}

}  // namespace abw::sim
