#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace abw::sim {

void Simulator::step() {
  // The callback runs in place in its pooled slot; the clock advances
  // BEFORE it runs (the on_pop hook fires between queue update and call).
  scheduler_.pop_and_run([this](SimTime t) {
    now_ = t;
    ++events_processed_;
  });
}

void Simulator::run_until(SimTime t) {
  while (!scheduler_.empty() && scheduler_.next_time_unchecked() <= t) step();
  if (now_ < t) now_ = t;
}

bool Simulator::run_until_condition(SimTime t_max,
                                    const std::function<bool()>& done) {
  if (done()) return true;
  while (!scheduler_.empty() && scheduler_.next_time_unchecked() <= t_max) {
    step();
    if (done()) return true;
  }
  return false;
}

void Simulator::run_until_idle() {
  while (!scheduler_.empty()) step();
}

}  // namespace abw::sim
