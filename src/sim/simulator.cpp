#include "sim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace abw::sim {

void Simulator::at(SimTime t, std::function<void()> cb) {
  if (t < now_) throw std::logic_error("Simulator::at: time in the past");
  scheduler_.schedule(t, std::move(cb));
}

void Simulator::after(SimTime delay, std::function<void()> cb) {
  if (delay < 0) throw std::logic_error("Simulator::after: negative delay");
  scheduler_.schedule(now_ + delay, std::move(cb));
}

void Simulator::step() {
  Scheduler::Event ev = scheduler_.pop();
  now_ = ev.time;  // advance the clock BEFORE the callback runs
  ++events_processed_;
  ev.cb();
}

void Simulator::run_until(SimTime t) {
  while (!scheduler_.empty() && scheduler_.next_time() <= t) step();
  if (now_ < t) now_ = t;
}

bool Simulator::run_until_condition(SimTime t_max,
                                    const std::function<bool()>& done) {
  if (done()) return true;
  while (!scheduler_.empty() && scheduler_.next_time() <= t_max) {
    step();
    if (done()) return true;
  }
  return false;
}

void Simulator::run_until_idle() {
  while (!scheduler_.empty()) step();
}

}  // namespace abw::sim
