#include "sim/path.hpp"

#include <limits>
#include <stdexcept>

namespace abw::sim {

Path::Path(Simulator& sim, const std::vector<LinkConfig>& configs) : sim_(&sim) {
  if (configs.empty()) throw std::invalid_argument("Path: need at least one hop");
  links_.reserve(configs.size());
  routers_.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    links_.push_back(
        std::make_unique<Link>(sim, "link" + std::to_string(i), configs[i]));
    // Onward pointer is wired below once the next link exists.
    routers_.push_back(std::make_unique<RouterNode>(
        static_cast<std::uint32_t>(i), nullptr, &cross_sink_));
    links_[i]->set_next(routers_[i].get());
  }
  for (std::size_t i = 0; i + 1 < links_.size(); ++i)
    routers_[i]->set_onward(links_[i + 1].get());
  // The last router forwards to the receiver, set via set_receiver().
}

void Path::set_receiver(PacketHandler* receiver) {
  receiver_ = receiver;
  routers_.back()->set_onward(receiver);
}

void Path::inject(std::size_t hop, Packet pkt) {
  links_.at(hop)->handle(pkt);
}

void Path::sync_hybrid(SimTime t) const {
  if (hybrid_agents_.empty()) return;
  if (t > sim_->now()) t = sim_->now();
  for (HybridAgent* a : hybrid_agents_) a->sync(t);
}

void Path::open_packet_window(SimTime start) const {
  for (HybridAgent* a : hybrid_agents_) a->open_window(start);
}

void Path::close_packet_window() const {
  for (HybridAgent* a : hybrid_agents_) a->close_window();
}

double Path::avail_bw(SimTime t1, SimTime t2) const {
  sync_hybrid(t2);
  double a = std::numeric_limits<double>::infinity();
  for (const auto& l : links_) a = std::min(a, l->meter().avail_bw(t1, t2));
  return a;
}

double Path::cross_avail_bw(SimTime t1, SimTime t2) const {
  sync_hybrid(t2);
  double a = std::numeric_limits<double>::infinity();
  for (const auto& l : links_) a = std::min(a, l->meter().cross_avail_bw(t1, t2));
  return a;
}

std::size_t Path::tight_link(SimTime t1, SimTime t2) const {
  sync_hybrid(t2);
  std::size_t best = 0;
  double a = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < links_.size(); ++i) {
    double ai = links_[i]->meter().avail_bw(t1, t2);
    if (ai < a) {
      a = ai;
      best = i;
    }
  }
  return best;
}

double Path::narrow_capacity() const {
  double c = std::numeric_limits<double>::infinity();
  for (const auto& l : links_) c = std::min(c, l->capacity_bps());
  return c;
}

SimTime Path::base_owd(std::uint32_t bytes) const {
  SimTime t = 0;
  for (const auto& l : links_)
    t += transmission_time(bytes, l->capacity_bps()) + l->propagation_delay();
  return t;
}

}  // namespace abw::sim
