#include "sim/link.hpp"

#include <stdexcept>
#include <utility>

#include "sim/fluid.hpp"

namespace abw::sim {

Link::Link(Simulator& sim, std::string name, const LinkConfig& cfg)
    : sim_(sim),
      name_(std::move(name)),
      cfg_(cfg),
      meter_(cfg.capacity_bps),
      loss_rng_(cfg.loss_seed) {
  if (cfg.capacity_bps <= 0.0)
    throw std::invalid_argument("Link: capacity must be > 0");
  if (cfg.propagation_delay < 0)
    throw std::invalid_argument("Link: negative propagation delay");
  if (cfg.random_loss_prob < 0.0 || cfg.random_loss_prob >= 1.0)
    throw std::invalid_argument("Link: random_loss_prob must be in [0,1)");
}

Link::~Link() = default;

void Link::handle(Packet pkt) {
  if (fluid_active_) {
    // Safety net: a discrete packet reached a link whose cross traffic is
    // currently fluid (e.g. a stream sent without a collision window).
    // Materialize the fluid backlog first so this packet queues behind
    // exactly the bytes that would have been ahead of it in packet mode.
    if (fluid_interrupt_) fluid_interrupt_();
  }
  ++stats_.packets_in;
  stats_.bytes_in += pkt.size_bytes;
  if (tap_) tap_(pkt, sim_.now());
  if (cfg_.random_loss_prob > 0.0 && loss_rng_.bernoulli(cfg_.random_loss_prob)) {
    ++stats_.packets_lost;
    return;
  }
  if (cfg_.discipline == QueueDiscipline::kRed && red_drop(pkt.size_bytes)) {
    ++stats_.packets_red_dropped;
    return;
  }
  if (queued_bytes_ + pkt.size_bytes > cfg_.queue_limit_bytes) {
    ++stats_.packets_dropped;
    return;
  }
  queued_bytes_ += pkt.size_bytes;
  if (!transmitting_) {
    // Uncongested fast path: an idle link's queue is empty (the transmit
    // loop only clears transmitting_ once it drained the queue), so the
    // packet can skip the ring round-trip entirely.
    begin_transmission(pkt);
  } else {
    queue_.push_back(pkt);
  }
}

void Link::start_transmission() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  begin_transmission(queue_.front());
  queue_.pop_front();
}

void Link::begin_transmission(const Packet& pkt) {
  transmitting_ = true;
  tx_pkt_ = pkt;

  // Serialization time memo: experiments transmit runs of equal-size
  // packets, so one compare replaces a double divide on the hot path
  // (same inputs -> same SimTime; timing is unchanged).
  if (pkt.size_bytes != memo_tx_bytes_) {
    memo_tx_bytes_ = pkt.size_bytes;
    memo_tx_time_ = transmission_time(pkt.size_bytes, cfg_.capacity_bps);
  }
  SimTime start = sim_.now();
  SimTime done = start + memo_tx_time_;
  meter_.add_busy(start, done, pkt.measurement);

  // The single recurring transmit event: an 8-byte [this] capture, stored
  // inline in the pooled queue.  tx_pkt_ is stable until this fires —
  // handle() never starts a transmission while transmitting_ is set.
  sim_.at(done, [this] { finish_transmission(); });
}

void Link::finish_transmission() {
  queued_bytes_ -= tx_pkt_.size_bytes;
  ++stats_.packets_out;
  stats_.bytes_out += tx_pkt_.size_bytes;
  if (next_ == nullptr) throw std::logic_error("Link '" + name_ + "': no next handler");
  // Deliver after propagation; capture by value so the packet survives
  // (several deliveries can be in flight at once along the propagation
  // pipe — each closure owns its copy, and the capture fits inline).
  PacketHandler* next = next_;
  if (cfg_.propagation_delay == 0) {
    next->handle(tx_pkt_);  // by-value: the callee owns its copy
  } else {
    sim_.after(cfg_.propagation_delay,
               [next, pkt = tx_pkt_]() mutable { next->handle(pkt); });
  }
  start_transmission();
}

bool Link::red_drop(std::uint32_t size_bytes) {
  // Classic byte-mode RED: EWMA of the instantaneous backlog; linear drop
  // ramp between the thresholds, forced drop above the max threshold.
  const RedConfig& red = cfg_.red;
  red_avg_bytes_ = (1.0 - red.ewma_weight) * red_avg_bytes_ +
                   red.ewma_weight * static_cast<double>(queued_bytes_ + size_bytes);
  if (red_avg_bytes_ <= static_cast<double>(red.min_threshold_bytes)) return false;
  if (red_avg_bytes_ >= static_cast<double>(red.max_threshold_bytes)) return true;
  double frac = (red_avg_bytes_ - static_cast<double>(red.min_threshold_bytes)) /
                static_cast<double>(red.max_threshold_bytes -
                                    red.min_threshold_bytes);
  return loss_rng_.bernoulli(frac * red.max_drop_prob);
}

FluidQueue& Link::enable_fluid() {
  if (cfg_.discipline == QueueDiscipline::kRed)
    throw std::logic_error("Link '" + name_ +
                           "': hybrid mode does not support RED (its RNG "
                           "draw order cannot be reproduced analytically)");
  if (cfg_.random_loss_prob > 0.0)
    throw std::logic_error("Link '" + name_ +
                           "': hybrid mode does not support random loss");
  if (fluid_)
    throw std::logic_error("Link '" + name_ +
                           "': fluid already enabled (one source per link)");
  fluid_ = std::make_unique<FluidQueue>(*this);
  // The fluid fast path appends one meter interval per busy run with no
  // event between to amortize growth; unreserved, the vector's doubling
  // copies cost ~10 ns per absorbed arrival on minute-scale runs.  2^21
  // intervals covers minutes of sub-saturation traffic without a single
  // doubling; the 64 MB reservation is address space, not memory — pages
  // fault in only as intervals are actually appended.
  meter_.reserve(1 << 21);
  return *fluid_;
}

SimTime Link::current_delay() const {
  return transmission_time(static_cast<std::uint32_t>(queued_bytes_), cfg_.capacity_bps) +
         cfg_.propagation_delay;
}

}  // namespace abw::sim
