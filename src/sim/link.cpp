#include "sim/link.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/fluid.hpp"

namespace abw::sim {

Link::Link(Simulator& sim, std::string name, const LinkConfig& cfg)
    : sim_(sim),
      name_(std::move(name)),
      cfg_(cfg),
      meter_(cfg.capacity_bps),
      loss_rng_(cfg.loss_seed) {
  if (cfg.capacity_bps <= 0.0)
    throw std::invalid_argument("Link: capacity must be > 0");
  if (cfg.propagation_delay < 0)
    throw std::invalid_argument("Link: negative propagation delay");
  if (cfg.random_loss_prob < 0.0 || cfg.random_loss_prob >= 1.0)
    throw std::invalid_argument("Link: random_loss_prob must be in [0,1)");
}

Link::~Link() = default;

void Link::emit_packet(obs::EventKind kind, const Packet& pkt,
                       std::string_view cause) {
  obs::TraceEvent e;
  e.kind = kind;
  e.time = sim_.now();
  e.source = name_;
  e.label = cause;
  e.packet_id = pkt.id;
  e.stream_id = pkt.stream_id;
  e.seq = pkt.seq;
  e.size_bytes = pkt.size_bytes;
  e.queue_bytes = queued_bytes_;
  trace_->emit(e);
}

void Link::emit_simple(obs::EventKind kind, std::string_view label,
                       double value) {
  obs::TraceEvent e;
  e.kind = kind;
  e.time = sim_.now();
  e.source = name_;
  e.label = label;
  e.queue_bytes = queued_bytes_;
  e.value = value;
  trace_->emit(e);
}

void Link::handle(Packet pkt) {
  if (fluid_active_) {
    // Safety net: a discrete packet reached a link whose cross traffic is
    // currently fluid (e.g. a stream sent without a collision window).
    // Materialize the fluid backlog first so this packet queues behind
    // exactly the bytes that would have been ahead of it in packet mode.
    if (fluid_interrupt_) fluid_interrupt_();
  }
  ++stats_.packets_in;
  stats_.bytes_in += pkt.size_bytes;
  if (tap_) tap_(pkt, sim_.now());
  if (cfg_.random_loss_prob > 0.0 && loss_rng_.bernoulli(cfg_.random_loss_prob)) {
    ++stats_.packets_lost;
    if (trace_) emit_packet(obs::EventKind::kDrop, pkt, "rand-loss");
    return;
  }
  if (faults_) {
    // The chain advances inside ge_drop(); compare states around the call
    // so a transition is observable without perturbing the draw order.
    const bool was_bad = faults_->bad;
    const bool ge_dropped = faults_->ge_drop();
    if (trace_ && faults_->bad != was_bad)
      emit_simple(obs::EventKind::kGeTransition,
                  faults_->bad ? "bad" : "good", 0.0);
    if (ge_dropped) {
      ++stats_.packets_lost;
      ++stats_.packets_ge_lost;
      if (trace_) emit_packet(obs::EventKind::kDrop, pkt, "ge-loss");
      return;
    }
    if (faults_->duplicate()) {
      // The copy is a second, independent arrival at the queue: it runs
      // its own RED / queue-limit admission and, when admitted, consumes
      // transmission capacity like any packet (so the ground-truth meter
      // sees it).  Not counted in packets_in/bytes_in — it never arrived.
      ++stats_.packets_duplicated;
      admit(pkt);
    }
  }
  admit(pkt);
}

void Link::admit(const Packet& pkt) {
  if (cfg_.discipline == QueueDiscipline::kRed && red_drop(pkt.size_bytes)) {
    ++stats_.packets_red_dropped;
    if (trace_) emit_packet(obs::EventKind::kDrop, pkt, "red");
    return;
  }
  if (queued_bytes_ + pkt.size_bytes > cfg_.queue_limit_bytes) {
    ++stats_.packets_dropped;
    if (trace_) emit_packet(obs::EventKind::kDrop, pkt, "queue");
    return;
  }
  queued_bytes_ += pkt.size_bytes;
  if (trace_) {
    emit_packet(obs::EventKind::kEnqueue, pkt, {});
    if (!transmitting_) emit_simple(obs::EventKind::kBusyStart, {}, 0.0);
  }
  if (!transmitting_) {
    // Uncongested fast path: an idle link's queue is empty (the transmit
    // loop only clears transmitting_ once it drained the queue), so the
    // packet can skip the ring round-trip entirely.
    begin_transmission(pkt);
  } else {
    queue_.push_back(pkt);
  }
}

void Link::start_transmission() {
  if (queue_.empty()) {
    transmitting_ = false;
    if (trace_) emit_simple(obs::EventKind::kBusyEnd, {}, 0.0);
    return;
  }
  begin_transmission(queue_.front());
  queue_.pop_front();
}

void Link::begin_transmission(const Packet& pkt) {
  transmitting_ = true;
  tx_pkt_ = pkt;
  if (trace_) emit_packet(obs::EventKind::kDequeue, pkt, {});

  // Serialization time memo: experiments transmit runs of equal-size
  // packets, so one compare replaces a double divide on the hot path
  // (same inputs -> same SimTime; timing is unchanged).
  if (pkt.size_bytes != memo_tx_bytes_) {
    memo_tx_bytes_ = pkt.size_bytes;
    memo_tx_time_ = transmission_time(pkt.size_bytes, cfg_.capacity_bps);
  }
  SimTime start = sim_.now();
  SimTime done = start + memo_tx_time_;
  meter_.add_busy(start, done, pkt.measurement);
  tx_start_ = start;
  tx_bits_left_ = 8.0 * static_cast<double>(pkt.size_bytes);

  // The single recurring transmit event: a 16-byte capture, stored inline
  // in the pooled queue.  tx_pkt_ is stable until this fires — handle()
  // never starts a transmission while transmitting_ is set.  The epoch
  // guard ignores a completion event stranded by a capacity re-plan.
  std::uint64_t epoch = ++tx_epoch_;
  sim_.at(done, [this, epoch] {
    if (epoch == tx_epoch_) finish_transmission();
  });
}

void Link::finish_transmission() {
  queued_bytes_ -= tx_pkt_.size_bytes;
  ++stats_.packets_out;
  stats_.bytes_out += tx_pkt_.size_bytes;
  if (trace_) emit_packet(obs::EventKind::kDeliver, tx_pkt_, {});
  if (next_ == nullptr) throw std::logic_error("Link '" + name_ + "': no next handler");
  // Deliver after propagation; capture by value so the packet survives
  // (several deliveries can be in flight at once along the propagation
  // pipe — each closure owns its copy, and the capture fits inline).
  // Fault-injected reordering adds a bounded extra delivery delay here:
  // packets transmitted behind this one can then overtake it in flight.
  PacketHandler* next = next_;
  SimTime delay = cfg_.propagation_delay;
  if (faults_) {
    SimTime extra = faults_->reorder_extra();
    if (extra > 0) {
      ++stats_.packets_reordered;
      delay += extra;
    }
  }
  if (delay == 0) {
    next->handle(tx_pkt_);  // by-value: the callee owns its copy
  } else {
    sim_.after(delay, [next, pkt = tx_pkt_]() mutable { next->handle(pkt); });
  }
  start_transmission();
}

bool Link::red_drop(std::uint32_t size_bytes) {
  // Classic byte-mode RED: EWMA of the instantaneous backlog; linear drop
  // ramp between the thresholds, forced drop above the max threshold.
  const RedConfig& red = cfg_.red;
  red_avg_bytes_ = (1.0 - red.ewma_weight) * red_avg_bytes_ +
                   red.ewma_weight * static_cast<double>(queued_bytes_ + size_bytes);
  if (red_avg_bytes_ <= static_cast<double>(red.min_threshold_bytes)) return false;
  if (red_avg_bytes_ >= static_cast<double>(red.max_threshold_bytes)) return true;
  double frac = (red_avg_bytes_ - static_cast<double>(red.min_threshold_bytes)) /
                static_cast<double>(red.max_threshold_bytes -
                                    red.min_threshold_bytes);
  return loss_rng_.bernoulli(frac * red.max_drop_prob);
}

void Link::set_faults(const LinkFaults& faults) {
  if (fluid_)
    throw std::logic_error("Link '" + name_ +
                           "': hybrid mode does not support fault injection "
                           "(per-packet fault RNG draws cannot be reproduced "
                           "analytically)");
  if (faults.gilbert.p_good_bad < 0.0 || faults.gilbert.p_good_bad > 1.0 ||
      faults.gilbert.p_bad_good < 0.0 || faults.gilbert.p_bad_good > 1.0 ||
      faults.gilbert.loss_good < 0.0 || faults.gilbert.loss_good > 1.0 ||
      faults.gilbert.loss_bad < 0.0 || faults.gilbert.loss_bad > 1.0)
    throw std::invalid_argument("Link '" + name_ +
                                "': Gilbert-Elliott probabilities must be in "
                                "[0,1]");
  if (faults.reorder_prob < 0.0 || faults.reorder_prob > 1.0 ||
      faults.duplicate_prob < 0.0 || faults.duplicate_prob > 1.0)
    throw std::invalid_argument(
        "Link '" + name_ + "': fault probabilities must be in [0,1]");
  if (faults.reorder_prob > 0.0 && faults.reorder_extra_max <= 0)
    throw std::invalid_argument("Link '" + name_ +
                                "': reorder_extra_max must be > 0");
  if (faults.any())
    faults_ = std::make_unique<FaultState>(faults);
  else
    faults_.reset();  // any()==false removes installed faults
}

void Link::expect_capacity_dynamics() {
  if (fluid_)
    throw std::logic_error("Link '" + name_ +
                           "': hybrid mode does not support capacity "
                           "dynamics (the analytic integration assumes a "
                           "constant serialization rate)");
  capacity_dynamic_ = true;
}

void Link::set_capacity(double bps) {
  if (bps <= 0.0)
    throw std::invalid_argument("Link '" + name_ + "': capacity must be > 0");
  expect_capacity_dynamics();  // rejects fluid links, marks dynamic
  const SimTime now = sim_.now();
  const double old_bps = cfg_.capacity_bps;
  cfg_.capacity_bps = bps;
  // Invalidate the serialization-time memo (bytes=0 maps to time 0, which
  // matches transmission_time(0) at any rate) and record the step in the
  // meter's capacity timeline so ground truth integrates C(t) exactly.
  memo_tx_bytes_ = 0;
  memo_tx_time_ = 0;
  meter_.set_capacity(now, bps);
  ++stats_.capacity_changes;
  if (trace_) emit_simple(obs::EventKind::kCapacityChange, {}, bps);
  if (!transmitting_) return;

  // Re-plan the in-service packet: bits serialized so far stay sent, the
  // remainder continues at the new rate.  The stranded completion event
  // is invalidated by bumping the epoch; the packet's busy interval is
  // amended in place to the new completion time.
  const double sent = to_seconds(now - tx_start_) * old_bps;
  tx_bits_left_ = std::max(tx_bits_left_ - sent, 0.0);
  tx_start_ = now;
  const SimTime new_done =
      now + std::max<SimTime>(from_seconds(tx_bits_left_ / bps), 1);
  meter_.amend_last_end(new_done);
  std::uint64_t epoch = ++tx_epoch_;
  sim_.at(new_done, [this, epoch] {
    if (epoch == tx_epoch_) finish_transmission();
  });
}

FluidQueue& Link::enable_fluid() {
  if (cfg_.discipline == QueueDiscipline::kRed)
    throw std::logic_error("Link '" + name_ +
                           "': hybrid mode does not support RED (its RNG "
                           "draw order cannot be reproduced analytically)");
  if (cfg_.random_loss_prob > 0.0)
    throw std::logic_error("Link '" + name_ +
                           "': hybrid mode does not support random loss");
  if (faults_)
    throw std::logic_error("Link '" + name_ +
                           "': hybrid mode does not support fault injection "
                           "(per-packet fault RNG draws cannot be reproduced "
                           "analytically)");
  if (capacity_dynamic_)
    throw std::logic_error("Link '" + name_ +
                           "': hybrid mode does not support capacity "
                           "dynamics (the analytic integration assumes a "
                           "constant serialization rate)");
  if (fluid_)
    throw std::logic_error("Link '" + name_ +
                           "': fluid already enabled (one source per link)");
  fluid_ = std::make_unique<FluidQueue>(*this);
  // The fluid fast path appends one meter interval per busy run with no
  // event between to amortize growth; unreserved, the vector's doubling
  // copies cost ~10 ns per absorbed arrival on minute-scale runs.  2^21
  // intervals covers minutes of sub-saturation traffic without a single
  // doubling; the 64 MB reservation is address space, not memory — pages
  // fault in only as intervals are actually appended.
  meter_.reserve(1 << 21);
  return *fluid_;
}

SimTime Link::current_delay() const {
  return transmission_time(static_cast<std::uint32_t>(queued_bytes_), cfg_.capacity_bps) +
         cfg_.propagation_delay;
}

}  // namespace abw::sim
