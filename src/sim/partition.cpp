#include "sim/partition.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace abw::sim {

std::size_t PartitionPlan::domain_of(std::size_t hop) const {
  for (std::size_t d = 0; d < domain_end.size(); ++d)
    if (hop < domain_end[d]) return d;
  throw std::out_of_range("PartitionPlan::domain_of: hop past the last domain");
}

PartitionPlan plan_from_cuts(const std::vector<LinkConfig>& links,
                             const std::vector<std::size_t>& cuts) {
  if (links.empty()) throw std::invalid_argument("plan_from_cuts: empty path");
  PartitionPlan plan;
  plan.lookahead = kMillisecond;  // single-domain pacing default
  std::size_t prev_end = 0;
  for (std::size_t cut : cuts) {
    if (cut + 1 >= links.size())
      throw std::invalid_argument(
          "plan_from_cuts: the final link cannot be a cut (no downstream "
          "domain)");
    if (cut + 1 <= prev_end)
      throw std::invalid_argument("plan_from_cuts: cuts must be ascending");
    SimTime d = links[cut].propagation_delay;
    if (d <= 0)
      throw std::invalid_argument(
          "plan_from_cuts: cut link " + std::to_string(cut) +
          " has zero propagation delay (no lookahead)");
    plan.lookahead = plan.domain_end.empty() ? d : std::min(plan.lookahead, d);
    plan.domain_end.push_back(cut + 1);
    prev_end = cut + 1;
  }
  plan.domain_end.push_back(links.size());
  return plan;
}

PartitionPlan plan_partition(const std::vector<LinkConfig>& links,
                             std::size_t max_domains,
                             SimTime min_cut_latency) {
  if (max_domains == 0)
    throw std::invalid_argument("plan_partition: max_domains must be >= 1");
  if (links.empty()) throw std::invalid_argument("plan_partition: empty path");

  // Cut candidates: links with enough latency to serve as a lookahead
  // boundary.  The final link never qualifies (nothing is downstream).
  std::vector<std::size_t> candidates;
  for (std::size_t i = 0; i + 1 < links.size(); ++i)
    if (links[i].propagation_delay >= min_cut_latency &&
        links[i].propagation_delay > 0)
      candidates.push_back(i);

  std::size_t domains = std::min(max_domains, candidates.size() + 1);
  // Greedy balance: for the k-th ideal boundary (k * H / domains links per
  // domain), take the nearest still-unused candidate.  Candidates and
  // ideals are both ascending, so a single forward scan suffices and the
  // chosen cuts come out ascending.
  std::vector<std::size_t> cuts;
  cuts.reserve(domains - 1);
  std::size_t c = 0;
  for (std::size_t k = 1; k < domains && c < candidates.size(); ++k) {
    std::size_t ideal = k * links.size() / domains;  // boundary after this many links
    auto dist = [ideal](std::size_t cand) {
      std::size_t edge = cand + 1;
      return edge > ideal ? edge - ideal : ideal - edge;
    };
    std::size_t best = c;
    while (best + 1 < candidates.size() &&
           dist(candidates[best + 1]) <= dist(candidates[best]))
      ++best;
    // Keep at least one candidate per remaining boundary when possible
    // (never moving back before the first unused candidate).
    std::size_t remaining_after = domains - 1 - k;
    if (candidates.size() - best - 1 < remaining_after) {
      std::size_t pulled = candidates.size() - 1 - remaining_after;
      best = pulled > c ? pulled : c;
    }
    cuts.push_back(candidates[best]);
    c = best + 1;
  }
  return plan_from_cuts(links, cuts);
}

}  // namespace abw::sim
