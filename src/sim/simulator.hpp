// The simulation kernel: a clock plus a scheduler plus packet-id issuance.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace abw::sim {

/// Owns simulated time.  All components keep a reference to the Simulator
/// and schedule their work through it.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now()).  Accepts any
  /// `void()` callable; it is constructed directly into a pooled event
  /// slot, and captures up to SmallCallback::kInlineSize bytes are stored
  /// inline (no heap allocation, no callback move).
  template <typename F>
  void at(SimTime t, F&& cb) {
    if (t < now_) throw std::logic_error("Simulator::at: time in the past");
    scheduler_.schedule_emplace(t, std::forward<F>(cb));
  }

  /// Schedules `cb` `delay` nanoseconds from now (delay >= 0).
  template <typename F>
  void after(SimTime delay, F&& cb) {
    if (delay < 0) throw std::logic_error("Simulator::after: negative delay");
    scheduler_.schedule_emplace(now_ + delay, std::forward<F>(cb));
  }

  /// Runs events until the queue is empty or the next event is past `t`;
  /// the clock is left at min(t, last event time processed ... t).
  void run_until(SimTime t);

  /// Conservative-window drain (parallel DES, sim/domain.hpp): runs every
  /// event with time strictly BEFORE `end`, then advances the clock to
  /// `end`.  Events at exactly `end` belong to the next window — the
  /// strict bound is what makes time-window synchronization associative
  /// (a window split into two back-to-back run_window calls executes the
  /// identical event sequence).  Requires end >= now().
  void run_window(SimTime end);

  /// Runs until no events remain.
  void run_until_idle();

  /// Runs events until `done()` returns true, the next event is past
  /// `t_max`, or the queue empties.  `done` is checked after each event.
  /// Returns true when the predicate was satisfied.
  bool run_until_condition(SimTime t_max, const std::function<bool()>& done);

  /// True when no events are pending.
  bool idle() const { return scheduler_.empty(); }

  /// Issues a fresh globally unique packet id.
  std::uint64_t next_packet_id() { return next_packet_id_++; }

  /// Total events processed (for micro-benchmarks and sanity checks).
  std::uint64_t events_processed() const { return events_processed_; }

  /// High-water mark of concurrently pending events — the working-set
  /// size of the event queue (reported in BENCH_core.json).
  std::size_t peak_event_count() const { return scheduler_.peak_size(); }

  /// Pooled callback slots created so far; constant at steady state.
  std::size_t event_pool_capacity() const { return scheduler_.pool_capacity(); }

  /// Pre-sizes the event queue for `n` concurrent events.
  void reserve_events(std::size_t n) { scheduler_.reserve(n); }

  /// Attaches a metrics registry: the drain loops (run_until*) then time
  /// themselves under "sim.drain" and event counts are snapshotted into
  /// "sim.events" on each drain.  nullptr (the default) disables
  /// profiling at the cost of one branch per drain call — never per
  /// event.  Not owned.
  void set_metrics(obs::MetricsRegistry* m) { metrics_ = m; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

 private:
  void step();  // pop one event, advance the clock, run the callback

  Scheduler scheduler_;
  SimTime now_ = 0;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t events_processed_ = 0;
  obs::MetricsRegistry* metrics_ = nullptr;  // not owned; nullptr = off
};

}  // namespace abw::sim
