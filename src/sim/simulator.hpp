// The simulation kernel: a clock plus a scheduler plus packet-id issuance.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace abw::sim {

/// Owns simulated time.  All components keep a reference to the Simulator
/// and schedule their work through it.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time.
  SimTime now() const { return now_; }

  /// Schedules `cb` at absolute time `t` (>= now()).
  void at(SimTime t, std::function<void()> cb);

  /// Schedules `cb` `delay` nanoseconds from now (delay >= 0).
  void after(SimTime delay, std::function<void()> cb);

  /// Runs events until the queue is empty or the next event is past `t`;
  /// the clock is left at min(t, last event time processed ... t).
  void run_until(SimTime t);

  /// Runs until no events remain.
  void run_until_idle();

  /// Runs events until `done()` returns true, the next event is past
  /// `t_max`, or the queue empties.  `done` is checked after each event.
  /// Returns true when the predicate was satisfied.
  bool run_until_condition(SimTime t_max, const std::function<bool()>& done);

  /// True when no events are pending.
  bool idle() const { return scheduler_.empty(); }

  /// Issues a fresh globally unique packet id.
  std::uint64_t next_packet_id() { return next_packet_id_++; }

  /// Total events processed (for micro-benchmarks and sanity checks).
  std::uint64_t events_processed() const { return events_processed_; }

 private:
  void step();  // pop one event, advance the clock, run the callback

  Scheduler scheduler_;
  SimTime now_ = 0;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t events_processed_ = 0;
};

}  // namespace abw::sim
