// Partition planning for conservative parallel DES (sim/domain.hpp).
//
// A multi-hop path is sharded into contiguous *domains* at "cut" links.
// The classic conservative-synchronization argument fixes which cuts are
// legal: domains advance in lockstep windows of length W, and a packet
// departing an upstream domain through a cut link of propagation delay d
// cannot arrive downstream earlier than d after its departure.  With
// W <= min over cut links of d, every arrival that lands inside window k
// was produced in a window strictly before k — so each domain can run a
// whole window without ever waiting on its neighbors mid-window.  W is
// the *lookahead* of the partition; cutting at high-latency links is what
// buys useful lookahead.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/link.hpp"
#include "sim/time.hpp"

namespace abw::sim {

/// A partition of an H-link path into contiguous domains.
struct PartitionPlan {
  /// One-past-the-last global link index of each domain, ascending; the
  /// last entry equals the path's hop count.  {H} is the trivial
  /// single-domain plan.  Every non-final boundary link (index
  /// domain_end[i] - 1) is a cut link: its propagation delay is the
  /// handoff latency into the next domain.
  std::vector<std::size_t> domain_end;

  /// Synchronization window: the minimum cut-link propagation delay (the
  /// plan's lookahead).  For a single-domain plan there is no cut; the
  /// window defaults to kMillisecond and only paces the driver loop.
  SimTime lookahead = 0;

  std::size_t domain_count() const { return domain_end.size(); }

  /// First global link index of domain d.
  std::size_t domain_begin(std::size_t d) const {
    return d == 0 ? 0 : domain_end[d - 1];
  }

  /// Domain owning global link `hop`.
  std::size_t domain_of(std::size_t hop) const;
};

/// Builds a plan from explicit cut points: `cuts` lists the global index
/// of each cut link (the link whose delivery crosses into the next
/// domain), strictly ascending, each < links.size() - 1... the final link
/// can never be a cut (there is no downstream domain).  Computes the
/// lookahead and validates every cut: a cut link must have a positive
/// propagation delay (zero lookahead would force zero-length windows).
/// Throws std::invalid_argument on an illegal cut.
PartitionPlan plan_from_cuts(const std::vector<LinkConfig>& links,
                             const std::vector<std::size_t>& cuts);

/// Plans up to `max_domains` balanced domains automatically: only links
/// with propagation delay >= `min_cut_latency` are cut candidates, and
/// among legal candidates the planner picks cuts closest to the ideal
/// equal-size boundaries.  Falls back to fewer domains (ultimately one)
/// when there are not enough candidates.  max_domains == 0 is an error.
PartitionPlan plan_partition(const std::vector<LinkConfig>& links,
                             std::size_t max_domains,
                             SimTime min_cut_latency = kMicrosecond);

}  // namespace abw::sim
