// Hybrid fluid/packet simulation mode.
//
// Every figure in the paper needs long runs where cross-traffic packets
// outnumber probe packets by 100-1000x, yet only the cross traffic that
// shares a queue with an in-flight probe ever affects a measurement.  In
// hybrid mode a link whose cross traffic is currently "fluid" advances as
// a piecewise-constant rate process — the FIFO queue dynamics are
// integrated analytically from the same pre-drawn (time, size) arrival
// stream the packet mode would use, with zero scheduled events — and is
// converted back into discrete packets whenever a probe (or any other
// discrete packet) enters the link's collision horizon.  Packet mode is
// bit-identical to a build without hybrid support.
#pragma once

#include "sim/time.hpp"

namespace abw::sim {

/// How a scenario advances its cross traffic.
enum class SimMode {
  kPacket,  ///< every cross packet is a scheduled event (bit-exact baseline)
  kHybrid,  ///< fluid fast path between probe collision windows
};

const char* to_string(SimMode m);

/// A cross-traffic source that can switch between fluid and packet
/// operation.  Implemented by traffic::HybridCrossSource; the Path keeps a
/// list of attached agents so ground-truth queries and probing sessions
/// can drive the switching without a sim->traffic layer dependency.
class HybridAgent {
 public:
  virtual ~HybridAgent() = default;

  /// Brings the fluid accounting (utilization meter, link stats, backlog)
  /// up to date through time `t` (<= now).  No-op while in a packet
  /// window — the DES is authoritative there.
  virtual void sync(SimTime t) = 0;

  /// Opens a packet window: from `start` (clamped to now) the source
  /// materializes its arrivals as discrete packets, so probe/cross
  /// interactions are packet-accurate.  The window stays open until
  /// close_window().
  virtual void open_window(SimTime start) = 0;

  /// Marks the window closed; the source returns to fluid operation at the
  /// first arrival that finds the link idle again (never mid-backlog, so
  /// utilization accounting stays exact and in time order).
  virtual void close_window() = 0;
};

}  // namespace abw::sim
