// Simulation time base.
//
// All simulator timestamps are integer nanoseconds (SimTime).  At the
// paper's scales (1500 B packets on 10-155 Mb/s links => 77 us - 1.2 ms
// serialization times) nanosecond resolution leaves 4-5 digits of headroom
// below the shortest interval of interest, while int64 gives ~292 years of
// range — no overflow concerns for multi-minute simulations.
#pragma once

#include <cstdint>

namespace abw::sim {

/// Simulation timestamp / duration in integer nanoseconds.
using SimTime = std::int64_t;

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

/// Converts seconds (double) to SimTime, rounding to nearest nanosecond.
constexpr SimTime from_seconds(double s) {
  return static_cast<SimTime>(s * 1e9 + (s >= 0 ? 0.5 : -0.5));
}

/// Converts milliseconds (double) to SimTime.
constexpr SimTime from_millis(double ms) { return from_seconds(ms * 1e-3); }

/// Converts microseconds (double) to SimTime.
constexpr SimTime from_micros(double us) { return from_seconds(us * 1e-6); }

/// Converts SimTime to seconds (double).
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) * 1e-9; }

/// Converts SimTime to milliseconds (double).
constexpr double to_millis(SimTime t) { return static_cast<double>(t) * 1e-6; }

/// Serialization (transmission) time of `bytes` on a link of `bps` bits/s.
constexpr SimTime transmission_time(std::uint32_t bytes, double bps) {
  return from_seconds(static_cast<double>(bytes) * 8.0 / bps);
}

}  // namespace abw::sim
