#include "sim/util_meter.hpp"

#include <algorithm>
#include <stdexcept>

namespace abw::sim {

UtilizationMeter::UtilizationMeter(double capacity_bps) : capacity_bps_(capacity_bps) {
  if (capacity_bps <= 0.0)
    throw std::invalid_argument("UtilizationMeter: capacity must be > 0");
}

void UtilizationMeter::add_busy(SimTime start, SimTime end, bool measurement) {
  if (end <= start) throw std::invalid_argument("UtilizationMeter: empty interval");
  if (!starts_.empty() && start < ends_.back())
    throw std::logic_error("UtilizationMeter: overlapping busy interval");
  if (!ends_.empty() && start == ends_.back() && is_meas_.back() == measurement) {
    // Back-to-back transmission with the same attribution: extend.
    ends_.back() = end;
    cum_busy_.back() += end - start;
    if (measurement) cum_meas_busy_.back() += end - start;
    return;
  }
  SimTime prev = cum_busy_.empty() ? 0 : cum_busy_.back();
  SimTime prev_meas = cum_meas_busy_.empty() ? 0 : cum_meas_busy_.back();
  starts_.push_back(start);
  ends_.push_back(end);
  is_meas_.push_back(measurement);
  cum_busy_.push_back(prev + (end - start));
  cum_meas_busy_.push_back(prev_meas + (measurement ? end - start : 0));
}

namespace {

// Shared window-sum over disjoint sorted intervals with a prefix-sum
// array; `select` maps an interval index to the share of its duration
// that counts (for the measurement sum, 0 or the full interval).
template <typename Select>
SimTime window_sum(const std::vector<SimTime>& starts,
                   const std::vector<SimTime>& ends,
                   const std::vector<SimTime>& cum, SimTime t1, SimTime t2,
                   Select counts_interval) {
  if (t2 <= t1 || starts.empty()) return 0;
  auto lo_it = std::upper_bound(ends.begin(), ends.end(), t1);
  std::size_t lo = static_cast<std::size_t>(lo_it - ends.begin());
  auto hi_it = std::lower_bound(starts.begin(), starts.end(), t2);
  std::size_t hi = static_cast<std::size_t>(hi_it - starts.begin());  // exclusive
  if (lo >= hi) return 0;

  SimTime total = cum[hi - 1] - (lo == 0 ? 0 : cum[lo - 1]);
  // Trim the partially covered edge intervals (only if they count).
  if (starts[lo] < t1 && counts_interval(lo)) total -= t1 - starts[lo];
  if (ends[hi - 1] > t2 && counts_interval(hi - 1)) total -= ends[hi - 1] - t2;
  return total;
}

}  // namespace

SimTime UtilizationMeter::busy_time(SimTime t1, SimTime t2) const {
  return window_sum(starts_, ends_, cum_busy_, t1, t2,
                    [](std::size_t) { return true; });
}

SimTime UtilizationMeter::measurement_busy_time(SimTime t1, SimTime t2) const {
  return window_sum(starts_, ends_, cum_meas_busy_, t1, t2,
                    [this](std::size_t i) { return static_cast<bool>(is_meas_[i]); });
}

double UtilizationMeter::utilization(SimTime t1, SimTime t2) const {
  if (t2 <= t1) throw std::invalid_argument("utilization: empty window");
  return static_cast<double>(busy_time(t1, t2)) / static_cast<double>(t2 - t1);
}

double UtilizationMeter::avail_bw(SimTime t1, SimTime t2) const {
  return capacity_bps_ * (1.0 - utilization(t1, t2));
}

double UtilizationMeter::cross_avail_bw(SimTime t1, SimTime t2) const {
  if (t2 <= t1) throw std::invalid_argument("cross_avail_bw: empty window");
  SimTime cross_busy = busy_time(t1, t2) - measurement_busy_time(t1, t2);
  double u = static_cast<double>(cross_busy) / static_cast<double>(t2 - t1);
  return capacity_bps_ * (1.0 - u);
}

std::vector<double> UtilizationMeter::avail_bw_series(SimTime t0, SimTime t1,
                                                      SimTime tau,
                                                      bool exclude_measurement) const {
  if (tau <= 0) throw std::invalid_argument("avail_bw_series: tau must be > 0");
  std::vector<double> out;
  if (t0 + tau > t1) return out;
  out.reserve(static_cast<std::size_t>((t1 - t0) / tau));

  // Consecutive windows have monotonically increasing bounds, so the
  // binary searches of window_sum collapse to two pointers that only move
  // forward: `lo` = first interval ending after the window start
  // (upper_bound over ends_), `hi` = first interval starting at/after the
  // window end (lower_bound over starts_).  The integer busy/measurement
  // sums — and therefore the resulting doubles — are identical to what
  // per-window busy_time()/measurement_busy_time() queries compute.
  const std::size_t n = starts_.size();
  std::size_t lo = 0, hi = 0;
  for (SimTime t = t0; t + tau <= t1; t += tau) {
    const SimTime w1 = t, w2 = t + tau;
    while (lo < n && ends_[lo] <= w1) ++lo;
    while (hi < n && starts_[hi] < w2) ++hi;
    SimTime busy = 0, meas = 0;
    if (lo < hi) {
      busy = cum_busy_[hi - 1] - (lo == 0 ? 0 : cum_busy_[lo - 1]);
      meas = cum_meas_busy_[hi - 1] - (lo == 0 ? 0 : cum_meas_busy_[lo - 1]);
      if (starts_[lo] < w1) {  // trim the partially covered left edge
        busy -= w1 - starts_[lo];
        if (is_meas_[lo]) meas -= w1 - starts_[lo];
      }
      if (ends_[hi - 1] > w2) {  // trim the partially covered right edge
        busy -= ends_[hi - 1] - w2;
        if (is_meas_[hi - 1]) meas -= ends_[hi - 1] - w2;
      }
    }
    SimTime counted = exclude_measurement ? busy - meas : busy;
    double u = static_cast<double>(counted) / static_cast<double>(tau);
    out.push_back(capacity_bps_ * (1.0 - u));
  }
  return out;
}

void UtilizationMeter::reserve(std::size_t n) {
  starts_.reserve(n);
  ends_.reserve(n);
  cum_busy_.reserve(n);
  cum_meas_busy_.reserve(n);
  is_meas_.reserve(n);
}

}  // namespace abw::sim
