#include "sim/util_meter.hpp"

#include <algorithm>
#include <stdexcept>

namespace abw::sim {

UtilizationMeter::UtilizationMeter(double capacity_bps) : capacity_bps_(capacity_bps) {
  if (capacity_bps <= 0.0)
    throw std::invalid_argument("UtilizationMeter: capacity must be > 0");
}

void UtilizationMeter::fail_add_busy(bool overlap) const {
  if (overlap)
    throw std::logic_error("UtilizationMeter: overlapping busy interval");
  throw std::invalid_argument("UtilizationMeter: empty interval");
}

std::pair<std::size_t, std::size_t> UtilizationMeter::window_range(
    SimTime t1, SimTime t2) const {
  if (t2 <= t1 || iv_.empty()) return {0, 0};
  // lo = first interval ending after t1; hi = first starting at/after t2.
  auto lo_it = std::upper_bound(iv_.begin(), iv_.end(), t1,
                                [](SimTime t, const Interval& i) { return t < i.end; });
  auto hi_it = std::lower_bound(iv_.begin(), iv_.end(), t2,
                                [](const Interval& i, SimTime t) { return i.start < t; });
  return {static_cast<std::size_t>(lo_it - iv_.begin()),
          static_cast<std::size_t>(hi_it - iv_.begin())};
}

SimTime UtilizationMeter::busy_time(SimTime t1, SimTime t2) const {
  auto [lo, hi] = window_range(t1, t2);
  if (lo >= hi) return 0;
  SimTime total = iv_[hi - 1].cum_busy - (lo == 0 ? 0 : iv_[lo - 1].cum_busy);
  // Trim the partially covered edge intervals.
  if (iv_[lo].start < t1) total -= t1 - iv_[lo].start;
  if (iv_[hi - 1].end > t2) total -= iv_[hi - 1].end - t2;
  return total;
}

SimTime UtilizationMeter::measurement_busy_time(SimTime t1, SimTime t2) const {
  auto [lo, hi] = window_range(t1, t2);
  if (lo >= hi) return 0;
  SimTime total = iv_[hi - 1].cum_meas - (lo == 0 ? 0 : iv_[lo - 1].cum_meas);
  // Edge intervals count only if they are measurement-attributed.
  if (iv_[lo].start < t1 && is_meas(lo)) total -= t1 - iv_[lo].start;
  if (iv_[hi - 1].end > t2 && is_meas(hi - 1)) total -= iv_[hi - 1].end - t2;
  return total;
}

double UtilizationMeter::utilization(SimTime t1, SimTime t2) const {
  if (t2 <= t1) throw std::invalid_argument("utilization: empty window");
  return static_cast<double>(busy_time(t1, t2)) / static_cast<double>(t2 - t1);
}

void UtilizationMeter::set_capacity(SimTime t, double bps) {
  if (bps <= 0.0)
    throw std::invalid_argument("UtilizationMeter: capacity must be > 0");
  if (!caps_.empty() && t < caps_.back().first)
    throw std::logic_error("UtilizationMeter: capacity steps out of order");
  caps_.emplace_back(t, bps);
}

double UtilizationMeter::capacity_at(SimTime t) const {
  double c = capacity_bps_;
  for (const auto& [at, bps] : caps_) {
    if (at > t) break;
    c = bps;
  }
  return c;
}

void UtilizationMeter::amend_last_end(SimTime new_end) {
  if (iv_.empty())
    throw std::logic_error("UtilizationMeter: no interval to amend");
  Interval& last = iv_.back();
  if (new_end <= last.start)
    throw std::logic_error("UtilizationMeter: amended end before start");
  bool meas = is_meas(iv_.size() - 1);  // before touching the prefix sums
  SimTime delta = new_end - last.end;
  last.end = new_end;
  last.cum_busy += delta;
  if (meas) last.cum_meas += delta;
}

template <typename F>
void UtilizationMeter::for_each_capacity_segment(SimTime t1, SimTime t2,
                                                 F&& f) const {
  SimTime s = t1;
  double c = capacity_bps_;
  for (const auto& [at, bps] : caps_) {
    if (at <= s) {
      c = bps;  // step already in effect at the segment cursor
      continue;
    }
    if (at >= t2) break;
    f(s, at, c);
    s = at;
    c = bps;
  }
  if (s < t2) f(s, t2, c);
}

double UtilizationMeter::free_bits(SimTime t1, SimTime t2,
                                   bool exclude_measurement) const {
  double bits = 0.0;
  for_each_capacity_segment(t1, t2, [&](SimTime s1, SimTime s2, double c) {
    SimTime busy = busy_time(s1, s2);
    if (exclude_measurement) busy -= measurement_busy_time(s1, s2);
    bits += c * to_seconds((s2 - s1) - busy);
  });
  return bits;
}

double UtilizationMeter::avail_bw(SimTime t1, SimTime t2) const {
  if (caps_.empty()) return capacity_bps_ * (1.0 - utilization(t1, t2));
  if (t2 <= t1) throw std::invalid_argument("utilization: empty window");
  return free_bits(t1, t2, /*exclude_measurement=*/false) / to_seconds(t2 - t1);
}

double UtilizationMeter::cross_avail_bw(SimTime t1, SimTime t2) const {
  if (t2 <= t1) throw std::invalid_argument("cross_avail_bw: empty window");
  if (!caps_.empty())
    return free_bits(t1, t2, /*exclude_measurement=*/true) / to_seconds(t2 - t1);
  SimTime cross_busy = busy_time(t1, t2) - measurement_busy_time(t1, t2);
  double u = static_cast<double>(cross_busy) / static_cast<double>(t2 - t1);
  return capacity_bps_ * (1.0 - u);
}

std::vector<double> UtilizationMeter::avail_bw_series(SimTime t0, SimTime t1,
                                                      SimTime tau,
                                                      bool exclude_measurement) const {
  if (tau <= 0) throw std::invalid_argument("avail_bw_series: tau must be > 0");
  std::vector<double> out;
  if (t0 + tau > t1) return out;
  out.reserve(static_cast<std::size_t>((t1 - t0) / tau));

  if (!caps_.empty()) {
    // Capacity-dynamic link (fault injection): per-window queries handle
    // windows straddling a capacity step exactly; the two-pointer sweep
    // below assumes one constant capacity.  Faulted runs are rare and
    // short — correctness over speed here.
    for (SimTime t = t0; t + tau <= t1; t += tau)
      out.push_back(exclude_measurement ? cross_avail_bw(t, t + tau)
                                        : avail_bw(t, t + tau));
    return out;
  }

  // Consecutive windows have monotonically increasing bounds, so the
  // binary searches of window_range collapse to two pointers that only
  // move forward: `lo` = first interval ending after the window start,
  // `hi` = first interval starting at/after the window end.  The integer
  // busy/measurement sums — and therefore the resulting doubles — are
  // identical to what per-window busy_time()/measurement_busy_time()
  // queries compute.
  const std::size_t n = iv_.size();
  std::size_t lo = 0, hi = 0;
  for (SimTime t = t0; t + tau <= t1; t += tau) {
    const SimTime w1 = t, w2 = t + tau;
    while (lo < n && iv_[lo].end <= w1) ++lo;
    while (hi < n && iv_[hi].start < w2) ++hi;
    SimTime busy = 0, meas = 0;
    if (lo < hi) {
      busy = iv_[hi - 1].cum_busy - (lo == 0 ? 0 : iv_[lo - 1].cum_busy);
      meas = iv_[hi - 1].cum_meas - (lo == 0 ? 0 : iv_[lo - 1].cum_meas);
      if (iv_[lo].start < w1) {  // trim the partially covered left edge
        busy -= w1 - iv_[lo].start;
        if (is_meas(lo)) meas -= w1 - iv_[lo].start;
      }
      if (iv_[hi - 1].end > w2) {  // trim the partially covered right edge
        busy -= iv_[hi - 1].end - w2;
        if (is_meas(hi - 1)) meas -= iv_[hi - 1].end - w2;
      }
    }
    SimTime counted = exclude_measurement ? busy - meas : busy;
    double u = static_cast<double>(counted) / static_cast<double>(tau);
    out.push_back(capacity_bps_ * (1.0 - u));
  }
  return out;
}

void UtilizationMeter::reserve(std::size_t n) { iv_.reserve(n); }

}  // namespace abw::sim
