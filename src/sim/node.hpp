// Routing and terminal nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/packet.hpp"
#include "sim/time.hpp"

namespace abw::sim {

/// Terminal sink that counts and (optionally) records deliveries.  Used as
/// the exit point for one-hop-persistent cross traffic and as a building
/// block for receivers.
class CountingSink final : public PacketHandler {
 public:
  void handle(Packet pkt) override {
    ++packets_;
    bytes_ += pkt.size_bytes;
    if (on_packet_) on_packet_(pkt);
  }

  /// Optional per-delivery callback (e.g. probe receivers, TCP sinks).
  void set_on_packet(std::function<void(const Packet&)> cb) { on_packet_ = std::move(cb); }

  std::uint64_t packets() const { return packets_; }
  std::uint64_t bytes() const { return bytes_; }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  std::function<void(const Packet&)> on_packet_;
};

/// End-host receiver that dispatches by packet type, so probe receivers
/// and TCP endpoints can share one path.  Unregistered types fall through
/// to a default sink (counted, discarded).
class TypeDemux final : public PacketHandler {
 public:
  /// Registers `handler` (not owned) for packets of type `t`.
  void register_handler(PacketType t, PacketHandler* handler) {
    handlers_[static_cast<std::size_t>(t)] = handler;
  }

  void handle(Packet pkt) override {
    PacketHandler* h = handlers_[static_cast<std::size_t>(pkt.type)];
    if (h != nullptr) {
      h->handle(pkt);
    } else {
      fallback_.handle(pkt);
    }
  }

  const CountingSink& fallback() const { return fallback_; }

 private:
  PacketHandler* handlers_[4] = {nullptr, nullptr, nullptr, nullptr};
  CountingSink fallback_;
};

/// Router placed after hop `hop_index` of a path: packets whose
/// `exit_hop == hop_index` are diverted to the cross-traffic sink;
/// everything else continues to the next hop (or the path receiver).
class RouterNode final : public PacketHandler {
 public:
  RouterNode(std::uint32_t hop_index, PacketHandler* onward, PacketHandler* cross_sink)
      : hop_index_(hop_index), onward_(onward), cross_sink_(cross_sink) {}

  void set_onward(PacketHandler* onward) { onward_ = onward; }

  void handle(Packet pkt) override {
    if (pkt.exit_hop == hop_index_) {
      cross_sink_->handle(pkt);
    } else {
      onward_->handle(pkt);
    }
  }

 private:
  std::uint32_t hop_index_;
  PacketHandler* onward_;
  PacketHandler* cross_sink_;
};

}  // namespace abw::sim
