#include "sim/fault.hpp"

#include <stdexcept>

#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace abw::sim {

void FaultInjector::set_capacity_at(Link& link, SimTime t, double bps) {
  if (bps <= 0.0)
    throw std::invalid_argument("FaultInjector: capacity must be > 0");
  if (t < sim_.now())
    throw std::invalid_argument("FaultInjector: trigger time in the past");
  // Mark now, fire later: enable_fluid() must already see the link as
  // dynamic while the change is still pending.
  link.expect_capacity_dynamics();
  ++scheduled_;
  Link* l = &link;
  sim_.at(t, [l, bps] { l->set_capacity(bps); });
}

void FaultInjector::flap(Link& link, SimTime t, SimTime duration, double down_bps) {
  if (duration <= 0)
    throw std::invalid_argument("FaultInjector: flap duration must be > 0");
  double up_bps = link.capacity_bps();
  set_capacity_at(link, t, down_bps);
  set_capacity_at(link, t + duration, up_bps);
}

void FaultInjector::set_link_faults(Link& link, const LinkFaults& faults) {
  link.set_faults(faults);
}

}  // namespace abw::sim
