// An end-to-end path: a chain of store-and-forward links with per-hop
// cross-traffic injection points.  This realizes the paper's path model:
// H links, the tight link is the one with minimum avail-bw (Eq. 3), cross
// traffic may be one-hop persistent (enters link i, exits at link i+1,
// exactly as in the multiple-bottleneck experiment of Fig. 4).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/hybrid.hpp"
#include "sim/link.hpp"
#include "sim/node.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace abw::sim {

/// A unidirectional multi-hop path.  Owns its links and routers.
/// End-to-end packets (exit_hop == kEndToEnd) traverse every hop and are
/// delivered to the receiver; cross packets with exit_hop == i leave the
/// path after link i into a per-path counting sink.
class Path {
 public:
  /// Builds a path of `configs.size()` hops.  Requires at least one hop.
  Path(Simulator& sim, const std::vector<LinkConfig>& configs);

  /// Sets the end host receiving end-to-end packets.  Not owned.
  void set_receiver(PacketHandler* receiver);

  /// Injects a packet at the entry of hop `hop` (0-based).  End-to-end
  /// senders use hop 0; one-hop cross generators use their link's index.
  void inject(std::size_t hop, Packet pkt);

  std::size_t hop_count() const { return links_.size(); }
  Link& link(std::size_t i) { return *links_.at(i); }
  const Link& link(std::size_t i) const { return *links_.at(i); }

  /// Sink where one-hop cross traffic exits (for conservation checks).
  const CountingSink& cross_sink() const { return cross_sink_; }

  /// Mutable access, e.g. to install a callback that hands one-hop TCP
  /// segments to a TcpReceiverHub.
  CountingSink& cross_sink() { return cross_sink_; }

  /// Ground-truth end-to-end avail-bw over [t1, t2): the minimum over all
  /// links of C_i * (1 - u_i(t1, t2)) — the paper's Eq. 3.  Counts ALL
  /// traffic, including any in-flight measurement load.
  double avail_bw(SimTime t1, SimTime t2) const;

  /// Same, but excluding measurement traffic (probes, the measured TCP
  /// flow): the avail-bw the measurement is trying to estimate.
  double cross_avail_bw(SimTime t1, SimTime t2) const;

  /// Index of the tight link (minimum avail-bw) over [t1, t2).
  std::size_t tight_link(SimTime t1, SimTime t2) const;

  /// Capacity of the narrow link (minimum capacity), bits/s.
  double narrow_capacity() const;

  /// Sum of per-hop propagation + zero-load transmission delay for a
  /// packet of `bytes` — the minimum possible one-way delay.
  SimTime base_owd(std::uint32_t bytes) const;

  // --- hybrid mode (see sim/hybrid.hpp) ----------------------------------

  /// Registers a hybrid cross-traffic source on this path.  Not owned.
  void attach_hybrid(HybridAgent* agent) { hybrid_agents_.push_back(agent); }

  /// True when any hybrid source is attached (the scenario runs in
  /// SimMode::kHybrid).
  bool hybrid() const { return !hybrid_agents_.empty(); }

  /// Brings all fluid accounting up to date through `t` (clamped to the
  /// simulator clock).  Ground-truth queries call this implicitly.
  void sync_hybrid(SimTime t) const;

  /// Opens/closes a packet window on every hybrid source: probe sessions
  /// bracket each stream so probe/cross interactions stay packet-accurate.
  void open_packet_window(SimTime start) const;
  void close_packet_window() const;

 private:
  Simulator* sim_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<RouterNode>> routers_;
  CountingSink cross_sink_;
  PacketHandler* receiver_ = nullptr;
  std::vector<HybridAgent*> hybrid_agents_;
};

}  // namespace abw::sim
