#include "sim/domain.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "runner/thread_name.hpp"

namespace abw::sim {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

// A reusable two-phase barrier with a control step: the LAST arriver runs
// `on_close` (if any) before anyone is released.  Running the control
// step under the barrier mutex means whatever it writes — the next window
// end, the stop flag — is visible to every worker on release with no
// extra synchronization, and workers' phase-1/phase-2 writes are visible
// to the control step.  std::barrier would also work, but its completion
// type is baked into the template and this keeps the lockstep protocol
// explicit and TSAN-obvious.
class WindowBarrier {
 public:
  WindowBarrier(std::size_t parties, std::function<void()> on_close)
      : parties_(parties), on_close_(std::move(on_close)) {}

  void arrive_and_wait() {
    std::unique_lock<std::mutex> lk(mu_);
    const std::uint64_t gen = gen_;
    if (++count_ == parties_) {
      if (on_close_) on_close_();
      count_ = 0;
      ++gen_;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return gen_ != gen; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t parties_;
  std::size_t count_ = 0;
  std::uint64_t gen_ = 0;
  std::function<void()> on_close_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Domain

Domain::Domain(std::vector<LinkConfig> sub_links, std::size_t begin_hop,
               SimTime out_latency)
    : begin_hop_(begin_hop), out_latency_(out_latency) {
  path_ = std::make_unique<Path>(sim_, sub_links);
}

void Domain::connect_downstream(EdgeInbox& downstream) {
  if (out_latency_ <= 0)
    throw std::logic_error(
        "Domain::connect_downstream: final domain has no portal");
  portal_ = std::make_unique<DomainPortal>(sim_, downstream, out_latency_);
  path_->set_receiver(portal_.get());
}

void Domain::run_window(SimTime end) {
  const auto t0 = SteadyClock::now();
  sim_.run_window(end);
  stats_.run_seconds += seconds_since(t0);
  ++stats_.windows;
  stats_.events = sim_.events_processed();
}

void Domain::drain_inbox() {
  inbox_.take(drain_scratch_);
  if (drain_scratch_.empty()) return;
  stats_.handoffs_in += drain_scratch_.size();
  Link* entry = &path_->link(0);
  for (const TimedPacket& tp : drain_scratch_) {
    const Packet pkt = tp.pkt;  // 48B packet + 8B link: exactly inline
    sim_.at(tp.arrival, [entry, pkt] { entry->handle(pkt); });
  }
  drain_scratch_.clear();
  stats_.events = sim_.events_processed();
}

// ---------------------------------------------------------------------------
// ParallelPath

ParallelPath::ParallelPath(const std::vector<LinkConfig>& links,
                           const PartitionPlan& plan, std::size_t threads)
    : plan_(plan), hop_count_(links.size()) {
  if (plan_.domain_end.empty() || plan_.domain_end.back() != links.size())
    throw std::invalid_argument("ParallelPath: plan does not cover the path");
  if (plan_.lookahead <= 0)
    throw std::invalid_argument("ParallelPath: plan lookahead must be > 0");
  const std::size_t n_domains = plan_.domain_count();
  threads_ = threads == 0 ? n_domains : std::min(threads, n_domains);

  domains_.reserve(n_domains);
  for (std::size_t d = 0; d < n_domains; ++d) {
    const std::size_t b = plan_.domain_begin(d);
    const std::size_t e = plan_.domain_end[d];
    if (e <= b || e > links.size())
      throw std::invalid_argument("ParallelPath: malformed domain bounds");
    std::vector<LinkConfig> sub(links.begin() + static_cast<std::ptrdiff_t>(b),
                                links.begin() + static_cast<std::ptrdiff_t>(e));
    SimTime out_latency = 0;
    if (d + 1 < n_domains) {
      out_latency = sub.back().propagation_delay;
      if (out_latency < plan_.lookahead)
        throw std::invalid_argument(
            "ParallelPath: lookahead exceeds cut-link latency at domain " +
            std::to_string(d));
      // The handoff portal re-adds the latency at departure time; the cut
      // link itself must deliver to the portal immediately.
      sub.back().propagation_delay = 0;
    }
    domains_.push_back(std::make_unique<Domain>(std::move(sub), b, out_latency));
  }
  for (std::size_t d = 0; d + 1 < n_domains; ++d)
    domains_[d]->connect_downstream(domains_[d + 1]->inbox());
}

Link& ParallelPath::link(std::size_t global_hop) {
  const std::size_t d = plan_.domain_of(global_hop);
  return domains_[d]->path().link(global_hop - plan_.domain_begin(d));
}

const Link& ParallelPath::link(std::size_t global_hop) const {
  const std::size_t d = plan_.domain_of(global_hop);
  return domains_[d]->path().link(global_hop - plan_.domain_begin(d));
}

void ParallelPath::set_receiver(PacketHandler* receiver) {
  domains_.back()->path().set_receiver(receiver);
}

void ParallelPath::run_until(SimTime t) { run_until_condition(t, nullptr); }

bool ParallelPath::run_until_condition(SimTime t_max,
                                       const std::function<bool()>& done) {
  if (t_max < clock_)
    throw std::logic_error("ParallelPath::run_until_condition: time in the past");
  bool satisfied = done ? done() : false;
  if (satisfied || t_max == clock_) return satisfied;
  if (std::min(threads_, domains_.size()) <= 1)
    run_windows_inline(t_max, done, satisfied);
  else
    run_windows_threaded(t_max, done, satisfied);
  return satisfied;
}

void ParallelPath::run_windows_inline(SimTime t_max,
                                      const std::function<bool()>& done,
                                      bool& satisfied) {
  // Identical per-domain operation order to the threaded engine: run every
  // domain's window, then drain every inbox, then the control step.
  while (!satisfied && clock_ < t_max) {
    const SimTime end = std::min(clock_ + plan_.lookahead, t_max);
    for (auto& d : domains_) d->run_window(end);
    for (auto& d : domains_) d->drain_inbox();
    clock_ = end;
    ++windows_;
    if (done) satisfied = done();
  }
}

void ParallelPath::run_windows_threaded(SimTime t_max,
                                        const std::function<bool()>& done,
                                        bool& satisfied) {
  const std::size_t workers = std::min(threads_, domains_.size());
  SimTime window_end = std::min(clock_ + plan_.lookahead, t_max);
  bool stop = false;

  // Runs under the phase-2 barrier: every domain has finished [T, end) and
  // drained its inbox, so the predicate may read any state — meters, the
  // receiver, estimator feeds — exactly as it could between serial events.
  auto control = [&] {
    clock_ = window_end;
    ++windows_;
    if (done && done()) {
      satisfied = true;
      stop = true;
      return;
    }
    if (clock_ >= t_max) {
      stop = true;
      return;
    }
    window_end = std::min(clock_ + plan_.lookahead, t_max);
  };

  WindowBarrier run_done(workers, nullptr);
  WindowBarrier drain_done(workers, control);

  // Worker w owns the contiguous domain range [w*D/W, (w+1)*D/W): packets
  // only flow downstream, so contiguous ranges keep a worker's domains'
  // inboxes mostly fed by its own upstream domain.
  auto worker_body = [&](std::size_t w) {
    const std::size_t d0 = w * domains_.size() / workers;
    const std::size_t d1 = (w + 1) * domains_.size() / workers;
    const double share = 1.0 / static_cast<double>(d1 - d0);
    for (;;) {
      const SimTime end = window_end;
      for (std::size_t d = d0; d < d1; ++d) domains_[d]->run_window(end);
      auto tw = SteadyClock::now();
      run_done.arrive_and_wait();
      for (std::size_t d = d0; d < d1; ++d) domains_[d]->drain_inbox();
      drain_done.arrive_and_wait();
      const double waited = seconds_since(tw);
      for (std::size_t d = d0; d < d1; ++d)
        domains_[d]->stats().wait_seconds += waited * share;
      if (stop) break;
    }
  };

  // The calling thread doubles as worker 0 (and keeps its own name);
  // spawned workers 1..W-1 are named abw-dom-<w>.
  std::vector<std::thread> spawned;
  spawned.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w)
    spawned.emplace_back([&worker_body, w] {
      runner::set_current_thread_name("abw-dom-", w);
      worker_body(w);
    });
  worker_body(0);
  for (auto& t : spawned) t.join();
}

double ParallelPath::avail_bw(SimTime t1, SimTime t2) const {
  double a = std::numeric_limits<double>::infinity();
  for (const auto& d : domains_) a = std::min(a, d->path().avail_bw(t1, t2));
  return a;
}

double ParallelPath::cross_avail_bw(SimTime t1, SimTime t2) const {
  double a = std::numeric_limits<double>::infinity();
  for (const auto& d : domains_)
    a = std::min(a, d->path().cross_avail_bw(t1, t2));
  return a;
}

std::size_t ParallelPath::tight_link(SimTime t1, SimTime t2) const {
  std::size_t best = 0;
  double a = std::numeric_limits<double>::infinity();
  for (std::size_t g = 0; g < hop_count_; ++g) {
    const Link& l = link(g);
    // Per-link meters need the owning domain's fluid state synced; the
    // per-domain avail_bw query above does this via Path::sync_hybrid, so
    // mirror it here through the owning sub-path.
    const double ai = l.meter().avail_bw(t1, t2);
    if (ai < a) {
      a = ai;
      best = g;
    }
  }
  return best;
}

std::uint64_t ParallelPath::handoffs() const {
  std::uint64_t n = 0;
  for (const auto& d : domains_) n += d->inbox().total();
  return n;
}

void ParallelPath::snapshot_metrics(obs::MetricsRegistry& m) const {
  m.counter("pdes.domains").set(domain_count());
  m.counter("pdes.threads").set(threads_);
  m.counter("pdes.windows").set(windows_);
  m.counter("pdes.handoffs").set(handoffs());
  double run = 0.0;
  double wait = 0.0;
  for (std::size_t d = 0; d < domains_.size(); ++d) {
    const DomainStats& s = domains_[d]->stats();
    m.counter("pdes.domain" + std::to_string(d) + ".events").set(s.events);
    m.counter("pdes.domain" + std::to_string(d) + ".handoffs_in")
        .set(s.handoffs_in);
    run += s.run_seconds;
    wait += s.wait_seconds;
  }
  // Wall-clock family: quarantined from deterministic JSON like every
  // timer (obs::MetricsRegistry::to_json(include_timers)).
  m.timer("pdes.window_run").record(run);
  m.timer("pdes.barrier_wait").record(wait);
}

}  // namespace abw::sim
