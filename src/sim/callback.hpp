// Small-buffer-optimized callback for the event queue hot path.
//
// Every packet transmission, delivery, and generator wakeup schedules one
// callback; with std::function, captures beyond its tiny SSO buffer (a
// `[this, Packet]` capture is 56 bytes) heap-allocate on EVERY event.  A
// SmallCallback stores up to kInlineSize bytes of capture inline — sized
// for the closures links, generators, and probes actually create — so the
// steady-state packet path performs zero heap allocations.  Larger
// captures still work; they transparently fall back to the heap.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace abw::sim {

/// Move-only type-erased `void()` callable with inline capture storage.
class SmallCallback {
 public:
  /// Inline capture budget: fits the largest hot-path closure, a
  /// [handler*, Packet] delivery capture (8 + 48 bytes), and keeps
  /// sizeof(SmallCallback) at exactly one cache line (56 + 8-byte ops).
  static constexpr std::size_t kInlineSize = 56;

  SmallCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// True when the stored callable relocates by plain memcpy and needs no
  /// destructor — every hot-path closure (pointer + POD captures).  Moves
  /// of such callbacks are branch + memcpy, no indirect calls.
  template <typename Fn>
  static constexpr bool is_trivial() {
    return fits_inline<Fn>() && std::is_trivially_copyable_v<Fn> &&
           std::is_trivially_destructible_v<Fn>;
  }

  /// Replaces the stored callable by constructing `f` directly in the
  /// inline buffer (or on the heap if oversized) — no temporary
  /// SmallCallback, no move.  The pooled scheduler builds events with
  /// this, so scheduling a small closure writes only its capture bytes.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    reset();
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  /// Destroys the stored callable, leaving the callback empty.
  void clear() { reset(); }

  SmallCallback(SmallCallback&& other) noexcept { steal(other); }

  SmallCallback& operator=(SmallCallback&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  SmallCallback(const SmallCallback&) = delete;
  SmallCallback& operator=(const SmallCallback&) = delete;

  ~SmallCallback() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->call(buf_); }

  /// True when a callable of type `Fn` is stored inline (no allocation).
  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize && alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

 private:
  struct Ops {
    void (*call)(void* self);
    /// Move-constructs the stored callable into `dst` and destroys the
    /// source — relocation, the only move the pooled queue needs.  Null
    /// for trivially relocatable callables (steal() memcpys instead).
    void (*relocate)(void* dst, void* src);
    /// Null when the callable needs no destruction.
    void (*destroy)(void* self);
  };

  template <typename Fn>
  static Fn* as(void* p) {
    return std::launder(reinterpret_cast<Fn*>(p));
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* self) { (*as<Fn>(self))(); },
      is_trivial<Fn>() ? nullptr
                       : +[](void* dst, void* src) {
                           Fn* s = as<Fn>(src);
                           ::new (dst) Fn(std::move(*s));
                           s->~Fn();
                         },
      is_trivial<Fn>() ? nullptr : +[](void* self) { as<Fn>(self)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* self) { (**as<Fn*>(self))(); },
      [](void* dst, void* src) { ::new (dst) Fn*(*as<Fn*>(src)); },
      [](void* self) { delete *as<Fn*>(self); },
  };

  void steal(SmallCallback& other) noexcept {
    if (other.ops_ != nullptr) {
      ops_ = other.ops_;
      if (ops_->relocate == nullptr) {
        std::memcpy(buf_, other.buf_, kInlineSize);  // trivial fast path
      } else {
        ops_->relocate(buf_, other.buf_);
      }
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace abw::sim
