// Exact per-link utilization accounting — the ground truth behind every
// experiment.  The paper defines (Eqs. 1-2):
//
//   u_i(t, t+tau) = (1/tau) * integral of the instantaneous utilization
//   A_i(t, t+tau) = C_i * (1 - u_i(t, t+tau))
//
// A link records every transmission as a busy interval; the meter then
// answers "how much of [t1, t2) was the link transmitting?" exactly, so
// ground-truth avail-bw at ANY averaging time scale is available without
// sampling error.  This is what lets the library separate estimator error
// from avail-bw process variability (the paper's first pitfall).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace abw::sim {

/// Records busy (transmitting) intervals of a link and answers utilization
/// and avail-bw queries over arbitrary windows.
class UtilizationMeter {
 public:
  /// `capacity_bps` is the capacity of the metered link.
  explicit UtilizationMeter(double capacity_bps);

  /// Records that the link was transmitting during [start, end).
  /// Intervals must be non-overlapping and arrive in time order (links
  /// transmit one packet at a time); adjacent intervals with the same
  /// `measurement` attribution are coalesced.  `measurement` marks busy
  /// time caused by the measurement's own packets (probes, the measured
  /// TCP flow) so ground truth can be computed against cross traffic only.
  ///
  /// Defined inline: this is called once per busy run of every link in
  /// BOTH simulation modes, and in hybrid mode it is the single largest
  /// per-arrival cost of the fluid fast path (each isolated packet is its
  /// own run), so the call must vanish into the recording sites.
  void add_busy(SimTime start, SimTime end, bool measurement = false) {
    if (end <= start) fail_add_busy(/*overlap=*/false);
    if (!iv_.empty()) {
      Interval& last = iv_.back();
      if (start < last.end) fail_add_busy(/*overlap=*/true);
      if (start == last.end && is_meas(iv_.size() - 1) == measurement) {
        // Back-to-back transmission with the same attribution: extend.
        last.end = end;
        last.cum_busy += end - start;
        if (measurement) last.cum_meas += end - start;
        return;
      }
      iv_.push_back({start, end, last.cum_busy + (end - start),
                     last.cum_meas + (measurement ? end - start : 0)});
      return;
    }
    iv_.push_back({start, end, end - start, measurement ? end - start : 0});
  }

  /// Busy time within [t1, t2), exact (all traffic).
  SimTime busy_time(SimTime t1, SimTime t2) const;

  /// Busy time within [t1, t2) caused by measurement traffic only.
  SimTime measurement_busy_time(SimTime t1, SimTime t2) const;

  /// Avail-bw as cross traffic leaves it: C * (1 - (busy - measurement
  /// busy) / window).  This is the paper's ground truth A(t1, t2) — the
  /// probing load must not count against itself.
  double cross_avail_bw(SimTime t1, SimTime t2) const;

  /// Average utilization in [t1, t2), in [0, 1].
  double utilization(SimTime t1, SimTime t2) const;

  /// Available bandwidth A(t1, t2) = C * (1 - u(t1, t2)), in bits/s.
  double avail_bw(SimTime t1, SimTime t2) const;

  /// The A_tau(t) series: avail-bw over consecutive windows of length tau
  /// covering [t0, t0 + n*tau) where n = floor((t1 - t0) / tau).
  /// `exclude_measurement` computes the cross-traffic-only series.
  /// One monotone sweep over the interval index — O(intervals + windows)
  /// instead of a binary search per window — producing bit-identical
  /// values to per-window avail_bw()/cross_avail_bw() calls (the Fig. 1/2
  /// timescale sweeps issue thousands of these).
  std::vector<double> avail_bw_series(SimTime t0, SimTime t1, SimTime tau,
                                      bool exclude_measurement = false) const;

  /// Pre-sizes interval storage for `n` coalesced intervals, so recording
  /// stays allocation-free below that count (steady-state hot path).
  void reserve(std::size_t n);

  /// Records a capacity change effective at `t` (fault injection: link
  /// dynamics / flaps).  Steps must arrive in time order.  With any step
  /// recorded, avail-bw queries integrate the piecewise-constant C(t)
  /// exactly:  A(t1, t2) = (1/(t2-t1)) * sum_k C_k * idle_time_in_seg_k.
  /// Without steps the original single-capacity arithmetic runs
  /// unchanged (bit-identical to pre-fault builds).
  void set_capacity(SimTime t, double bps);

  /// Capacity in effect at time `t` (construction value before any step).
  double capacity_at(SimTime t) const;

  /// Number of recorded capacity steps (0 = static link).
  std::size_t capacity_step_count() const { return caps_.size(); }

  /// Moves the end of the most recent busy interval to `new_end`
  /// (shrinking or extending it), fixing its prefix sums.  Used when a
  /// capacity change re-plans the in-service packet: its busy interval
  /// was recorded with the old completion time and must be corrected in
  /// place.  `new_end` must stay after the interval's start.
  void amend_last_end(SimTime new_end);

  /// Capacity this meter was constructed with (bits/s).
  double capacity_bps() const { return capacity_bps_; }

  /// Number of stored (coalesced) busy intervals.
  std::size_t interval_count() const { return iv_.size(); }

 private:
  /// One coalesced busy interval with its running prefix sums.  A single
  /// contiguous record per interval keeps add_busy() to one push_back —
  /// the recording path is hot in both simulation modes (every busy run
  /// of every link), and the old five parallel vectors (incl. a
  /// std::vector<bool>) cost ~3x as much per record with worse locality
  /// on the query side, for identical stored values.
  struct Interval {
    SimTime start = 0;
    SimTime end = 0;
    SimTime cum_busy = 0;  ///< prefix sum of busy durations through here
    SimTime cum_meas = 0;  ///< prefix sum of measurement-attributed busy
  };

  /// Attribution of interval i: measurement intervals contribute their
  /// full (positive) duration to cum_meas, cross intervals contribute 0.
  bool is_meas(std::size_t i) const {
    return iv_[i].cum_meas != (i == 0 ? 0 : iv_[i - 1].cum_meas);
  }

  /// [lo, hi) interval-index range overlapping window [t1, t2).
  std::pair<std::size_t, std::size_t> window_range(SimTime t1, SimTime t2) const;

  /// Cold path of add_busy(): throws the matching exception.
  [[noreturn]] void fail_add_busy(bool overlap) const;

  /// Invokes f(seg_start, seg_end, capacity_bps) for each constant-
  /// capacity segment of [t1, t2), in time order.
  template <typename F>
  void for_each_capacity_segment(SimTime t1, SimTime t2, F&& f) const;

  /// Free bits (capacity minus counted busy time, integrated over the
  /// piecewise-constant C(t)) in [t1, t2).  `exclude_measurement` counts
  /// only cross-traffic busy time against the capacity.
  double free_bits(SimTime t1, SimTime t2, bool exclude_measurement) const;

  double capacity_bps_;
  // Sorted by start; intervals are disjoint, enabling binary-search
  // queries.
  std::vector<Interval> iv_;
  // Capacity steps (time, bps), time-ordered; empty for static links.
  std::vector<std::pair<SimTime, double>> caps_;
};

}  // namespace abw::sim
