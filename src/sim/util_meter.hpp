// Exact per-link utilization accounting — the ground truth behind every
// experiment.  The paper defines (Eqs. 1-2):
//
//   u_i(t, t+tau) = (1/tau) * integral of the instantaneous utilization
//   A_i(t, t+tau) = C_i * (1 - u_i(t, t+tau))
//
// A link records every transmission as a busy interval; the meter then
// answers "how much of [t1, t2) was the link transmitting?" exactly, so
// ground-truth avail-bw at ANY averaging time scale is available without
// sampling error.  This is what lets the library separate estimator error
// from avail-bw process variability (the paper's first pitfall).
#pragma once

#include <cstdint>
#include <vector>

#include "sim/time.hpp"

namespace abw::sim {

/// Records busy (transmitting) intervals of a link and answers utilization
/// and avail-bw queries over arbitrary windows.
class UtilizationMeter {
 public:
  /// `capacity_bps` is the capacity of the metered link.
  explicit UtilizationMeter(double capacity_bps);

  /// Records that the link was transmitting during [start, end).
  /// Intervals must be non-overlapping and arrive in time order (links
  /// transmit one packet at a time); adjacent intervals with the same
  /// `measurement` attribution are coalesced.  `measurement` marks busy
  /// time caused by the measurement's own packets (probes, the measured
  /// TCP flow) so ground truth can be computed against cross traffic only.
  void add_busy(SimTime start, SimTime end, bool measurement = false);

  /// Busy time within [t1, t2), exact (all traffic).
  SimTime busy_time(SimTime t1, SimTime t2) const;

  /// Busy time within [t1, t2) caused by measurement traffic only.
  SimTime measurement_busy_time(SimTime t1, SimTime t2) const;

  /// Avail-bw as cross traffic leaves it: C * (1 - (busy - measurement
  /// busy) / window).  This is the paper's ground truth A(t1, t2) — the
  /// probing load must not count against itself.
  double cross_avail_bw(SimTime t1, SimTime t2) const;

  /// Average utilization in [t1, t2), in [0, 1].
  double utilization(SimTime t1, SimTime t2) const;

  /// Available bandwidth A(t1, t2) = C * (1 - u(t1, t2)), in bits/s.
  double avail_bw(SimTime t1, SimTime t2) const;

  /// The A_tau(t) series: avail-bw over consecutive windows of length tau
  /// covering [t0, t0 + n*tau) where n = floor((t1 - t0) / tau).
  /// `exclude_measurement` computes the cross-traffic-only series.
  /// One monotone sweep over the interval index — O(intervals + windows)
  /// instead of a binary search per window — producing bit-identical
  /// values to per-window avail_bw()/cross_avail_bw() calls (the Fig. 1/2
  /// timescale sweeps issue thousands of these).
  std::vector<double> avail_bw_series(SimTime t0, SimTime t1, SimTime tau,
                                      bool exclude_measurement = false) const;

  /// Pre-sizes interval storage for `n` coalesced intervals, so recording
  /// stays allocation-free below that count (steady-state hot path).
  void reserve(std::size_t n);

  /// Capacity this meter was constructed with (bits/s).
  double capacity_bps() const { return capacity_bps_; }

  /// Number of stored (coalesced) busy intervals.
  std::size_t interval_count() const { return starts_.size(); }

 private:
  double capacity_bps_;
  // Parallel arrays of interval bounds; starts_ is sorted and intervals
  // are disjoint, enabling binary-search queries.
  std::vector<SimTime> starts_;
  std::vector<SimTime> ends_;
  // Prefix sums of busy durations for O(log n) window queries; the
  // second array tracks the measurement-attributed share per interval.
  std::vector<SimTime> cum_busy_;
  std::vector<SimTime> cum_meas_busy_;
  std::vector<bool> is_meas_;  // attribution of each stored interval
};

}  // namespace abw::sim
