// Fluid fast path of a link's FIFO queue (hybrid simulation mode).
//
// A FluidQueue integrates the link's store-and-forward dynamics directly
// from a batch of (arrival time, size) pairs instead of scheduling one
// event per packet: departure_i = max(arrival_i, departure_{i-1}) +
// L_i/C, drop-tail admission against the same byte limit, and busy-period
// accounting into the link's UtilizationMeter.  Because the arrivals come
// from the same generator stream the packet mode would use and the
// arithmetic is the same integer-nanosecond transmission_time(), the
// resulting utilization, drops, and counters are *exactly* what the
// event-driven link would have produced — only ~100x cheaper, since no
// event queue, virtual dispatch, or per-packet closures are involved.
//
// When a probe enters the link's collision horizon, to_discrete() seeds
// the link's real DES queue from the fluid backlog (the in-service packet
// keeps its exact remaining serialization time), so the subsequent
// probe/cross interaction is packet-accurate.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/packet.hpp"
#include "sim/time.hpp"

namespace abw::sim {

class Link;

/// Exact batch integrator of one link's FIFO queue.  Owned by the Link
/// (enable_fluid()); driven by a traffic::HybridCrossSource.
class FluidQueue {
 public:
  explicit FluidQueue(Link& link);

  FluidQueue(const FluidQueue&) = delete;
  FluidQueue& operator=(const FluidQueue&) = delete;

  /// Starts a fresh fluid epoch at `now`.  The link must be idle (no
  /// transmission in progress, empty queue) — guaranteed by the resume
  /// rule in HybridCrossSource.
  void reset(SimTime now);

  /// Absorbs `n` arrivals (ascending times, all <= record_until).  Updates
  /// link stats (packets/bytes in/out, drops) and records busy intervals
  /// into the meter, truncated at `record_until` so recording never runs
  /// ahead of the advance point (the meter requires time-ordered,
  /// non-overlapping intervals across the fluid and DES regimes).
  void absorb(const SimTime* times, const std::uint32_t* sizes,
              std::size_t n, SimTime record_until);

  /// Advances bookkeeping to `t`: departures at or before `t` are counted
  /// out, and the busy run of the remaining backlog is recorded up to `t`.
  void advance(SimTime t);

  /// Stamps materialized packets (to_discrete, arrival taps) with the
  /// owning source's flow id and exit hop.
  void set_identity(std::uint32_t flow_id, std::uint32_t exit_hop) {
    flow_id_ = flow_id;
    exit_hop_ = exit_hop;
  }

  /// Converts the fluid backlog into the link's discrete queue at `now`
  /// (advances to `now` first).  The in-service packet is re-armed with
  /// its exact remaining serialization time; queued packets are enqueued
  /// in FIFO order.  Leaves the fluid queue empty.
  void to_discrete(SimTime now);

  /// Bytes currently in the fluid system (including the packet in
  /// service), mirroring Link::backlog_bytes() semantics.
  std::size_t backlog_bytes() const { return backlog_bytes_; }

  /// Time the server becomes free given the absorbed arrivals.
  SimTime free_at() const { return free_at_; }

  /// Packets currently in the fluid system.
  std::size_t in_system() const { return q_.size() - head_; }

  /// Selects the vectorized bulk-retirement path inside absorb() (default
  /// on).  Both settings produce bit-identical stats, meter contents, and
  /// tap streams — the toggle exists for benchmarking and for the
  /// equivalence tests that prove it.
  void set_vectorized(bool on) { vectorized_ = on; }
  bool vectorized() const { return vectorized_; }

  /// Packets retired through the vectorized bulk path (lets tests assert
  /// the fast path actually engaged, not just that results agree).
  std::uint64_t bulk_packets() const { return bulk_packets_; }

 private:
  struct InFlight {
    SimTime dep = 0;            ///< departure (service completion) time
    std::uint32_t size = 0;     ///< wire size in bytes
  };

  void pop_departures(SimTime t);  // count out everything with dep <= t
  void emit_busy(SimTime upto);    // record [emitted_until_, min(upto, free_at_))
  SimTime tx_time(std::uint32_t bytes);  // memoized transmission_time()

  // Vectorized whole-run retirement over arrivals [i, n): SoA passes
  // (transmission times, then an unrolled Lindley recurrence over prefix
  // sums) retire every complete busy run in bulk.  Returns the index of
  // the first unretired arrival (== n when the whole tail retired);
  // `d_pkts`/`d_bytes` accumulate the retired packet/byte counts (in ==
  // out for a retired run).  Caller must hold the scalar engage
  // invariant: empty queue, times[i] >= free_at_, previous run emitted.
  std::size_t bulk_retire(const SimTime* times, const std::uint32_t* sizes,
                          std::size_t i, std::size_t n, SimTime record_until,
                          bool tapped, std::uint64_t& d_pkts,
                          std::uint64_t& d_bytes);

  struct TxMemo {
    std::uint32_t bytes = 0;
    SimTime tx = 0;
  };

  Link& link_;
  // In-system packets as a flat FIFO: [head_, q_.size()) are live, the
  // head is in service.  Departures advance head_ instead of shifting;
  // the vector is compacted whenever the queue drains (every idle gap),
  // so popped prefixes never accumulate past one busy period.  Flat
  // indexing beats a power-of-two ring here: push/pop are the hottest
  // absorb() operations and need no masking or wrap arithmetic.
  std::vector<InFlight> q_;
  std::size_t head_ = 0;
  SimTime free_at_ = 0;
  SimTime emitted_until_ = 0;  ///< busy recorded into the meter up to here
  std::size_t backlog_bytes_ = 0;
  std::uint32_t flow_id_ = 0;
  std::uint32_t exit_hop_ = kEndToEnd;
  std::array<TxMemo, 4> tx_memo_{};
  std::size_t tx_memo_used_ = 0;
  std::size_t tx_memo_evict_ = 0;
  bool vectorized_ = true;
  std::uint64_t bulk_packets_ = 0;
  std::vector<SimTime> vtx_;  // SoA scratch: per-arrival tx times (bulk path)
};

}  // namespace abw::sim
