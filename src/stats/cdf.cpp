#include "stats/cdf.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abw::stats {

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples) : sorted_(std::move(samples)) {
  std::sort(sorted_.begin(), sorted_.end());
}

double EmpiricalCdf::at(double x) const {
  if (sorted_.empty()) return 0.0;
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

double EmpiricalCdf::inverse(double p) const {
  if (sorted_.empty()) throw std::logic_error("EmpiricalCdf::inverse on empty CDF");
  if (p <= 0.0 || p > 1.0) throw std::invalid_argument("EmpiricalCdf::inverse: p in (0,1]");
  std::size_t idx = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(sorted_.size()))) - 1;
  idx = std::min(idx, sorted_.size() - 1);
  return sorted_[idx];
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve() const {
  std::vector<std::pair<double, double>> pts;
  pts.reserve(sorted_.size());
  for (std::size_t i = 0; i < sorted_.size(); ++i) {
    if (i + 1 < sorted_.size() && sorted_[i + 1] == sorted_[i]) continue;
    pts.emplace_back(sorted_[i],
                     static_cast<double>(i + 1) / static_cast<double>(sorted_.size()));
  }
  return pts;
}

}  // namespace abw::stats
