// Autocorrelation analysis.  The paper's definitions section points out
// that the rate of variance decay of A_tau depends on the correlation
// structure of the process (Eqs. 4 vs 5); the ACF is how that structure
// is inspected, and the Ljung-Box statistic tests whether a series is
// distinguishable from white noise at all.
#pragma once

#include <cstddef>
#include <vector>

namespace abw::stats {

/// Sample autocorrelation at lag k (biased, normalized by n): in [-1, 1].
/// Returns 0 for a constant or too-short series.
double autocorrelation(const std::vector<double>& xs, std::size_t lag);

/// Sample ACF for lags 0..max_lag (inclusive); acf[0] == 1 for any
/// non-degenerate series.
std::vector<double> acf(const std::vector<double>& xs, std::size_t max_lag);

/// Ljung-Box Q statistic over lags 1..max_lag:
///   Q = n (n+2) * sum_k rho_k^2 / (n - k).
/// Under the white-noise null, Q ~ chi-squared with max_lag degrees of
/// freedom; values far above max_lag indicate serial correlation.
double ljung_box(const std::vector<double>& xs, std::size_t max_lag);

/// Convenience: true when Q exceeds the 99th percentile of the
/// chi-squared(max_lag) distribution (Wilson-Hilferty approximation) —
/// i.e. the series is significantly autocorrelated.
bool is_autocorrelated(const std::vector<double>& xs, std::size_t max_lag);

}  // namespace abw::stats
