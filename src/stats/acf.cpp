#include "stats/acf.hpp"

#include <cmath>
#include <stdexcept>

#include "stats/moments.hpp"

namespace abw::stats {

double autocorrelation(const std::vector<double>& xs, std::size_t lag) {
  std::size_t n = xs.size();
  if (n < 2 || lag >= n) return 0.0;
  double m = mean(xs);
  double denom = 0.0;
  for (double x : xs) denom += (x - m) * (x - m);
  if (denom == 0.0) return 0.0;
  double num = 0.0;
  for (std::size_t i = lag; i < n; ++i) num += (xs[i] - m) * (xs[i - lag] - m);
  return num / denom;
}

std::vector<double> acf(const std::vector<double>& xs, std::size_t max_lag) {
  std::vector<double> out;
  out.reserve(max_lag + 1);
  for (std::size_t k = 0; k <= max_lag; ++k) out.push_back(autocorrelation(xs, k));
  return out;
}

double ljung_box(const std::vector<double>& xs, std::size_t max_lag) {
  std::size_t n = xs.size();
  if (max_lag == 0 || n <= max_lag + 1)
    throw std::invalid_argument("ljung_box: need n > max_lag + 1 and max_lag > 0");
  double q = 0.0;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double rho = autocorrelation(xs, k);
    q += rho * rho / static_cast<double>(n - k);
  }
  return static_cast<double>(n) * (static_cast<double>(n) + 2.0) * q;
}

bool is_autocorrelated(const std::vector<double>& xs, std::size_t max_lag) {
  double q = ljung_box(xs, max_lag);
  // Wilson-Hilferty: chi2_p(d) ~ d * (1 - 2/(9d) + z_p * sqrt(2/(9d)))^3,
  // z_0.99 = 2.3263.
  double d = static_cast<double>(max_lag);
  double cut = d * std::pow(1.0 - 2.0 / (9.0 * d) + 2.3263 * std::sqrt(2.0 / (9.0 * d)), 3.0);
  return q > cut;
}

}  // namespace abw::stats
