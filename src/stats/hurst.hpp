// Hurst-parameter estimation.  The paper's definitions section contrasts
// IID variance decay Var[A_tau]/k (Eq. 4) with self-similar decay
// k^{-2(1-H)} (Eq. 5); these estimators let tests and benches verify which
// regime a generated trace is in.
#pragma once

#include <cstddef>
#include <vector>

namespace abw::stats {

/// One point of a variance-time plot: aggregation level m and the sample
/// variance of the m-aggregated (block-mean) series.
struct VtPoint {
  std::size_t m;
  double variance;
};

/// Computes the variance-time plot of a series: for each aggregation level
/// m in `levels`, the variance of block means of size m.  Levels larger
/// than size()/2 are skipped (too few blocks for a variance).
std::vector<VtPoint> variance_time_plot(const std::vector<double>& xs,
                                        const std::vector<std::size_t>& levels);

/// Variance-time Hurst estimator: fits log Var(m) ~ (2H-2) log m over the
/// default dyadic levels {1, 2, 4, ..., n/8}.  Returns H clamped to (0, 1).
/// Requires at least 32 samples.
double hurst_variance_time(const std::vector<double>& xs);

/// Rescaled-range (R/S) Hurst estimator over dyadic block sizes.
/// Requires at least 32 samples.
double hurst_rescaled_range(const std::vector<double>& xs);

}  // namespace abw::stats
