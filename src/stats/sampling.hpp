// Sampling-time generation.  The paper's Fig. 1 experiment collects k=20
// avail-bw samples with *Poisson sampling* (PASTA: Poisson arrivals see
// time averages), and Spruce spaces its packet pairs with exponential
// interarrivals for the same reason.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace abw::stats {

/// Returns `count` sample instants in (0, horizon) drawn from a Poisson
/// process whose rate is chosen so ~count arrivals fit the horizon; whole
/// sequences are redrawn (up to `max_attempts` times) until exactly
/// `count` strictly increasing times land inside the horizon.
///
/// Throws std::runtime_error if no attempt fits.  It must NOT silently
/// degrade to periodic spacing: periodic sampling breaks the PASTA
/// property the Poisson-sampling experiments (Fig. 1) rely on, and a
/// silent fallback would corrupt them without any signal.
std::vector<double> poisson_sample_times(std::size_t count, double horizon, Rng& rng,
                                         std::size_t max_attempts = 1000);

/// Evenly spaced sample instants in [0, horizon): i * horizon / count.
std::vector<double> periodic_sample_times(std::size_t count, double horizon);

}  // namespace abw::stats
