// Sampling-time generation.  The paper's Fig. 1 experiment collects k=20
// avail-bw samples with *Poisson sampling* (PASTA: Poisson arrivals see
// time averages), and Spruce spaces its packet pairs with exponential
// interarrivals for the same reason.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace abw::stats {

/// Returns `count` sample instants in [0, horizon) drawn from a Poisson
/// process whose rate is chosen so ~count arrivals fit the horizon; the
/// sequence is truncated/padded by redrawing to return exactly `count`
/// strictly increasing times, all < horizon.
std::vector<double> poisson_sample_times(std::size_t count, double horizon, Rng& rng);

/// Evenly spaced sample instants in [0, horizon): i * horizon / count.
std::vector<double> periodic_sample_times(std::size_t count, double horizon);

}  // namespace abw::stats
