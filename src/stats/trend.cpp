#include "stats/trend.hpp"

#include <algorithm>
#include <cmath>

#include "stats/moments.hpp"

namespace abw::stats {

const char* to_string(Trend t) {
  switch (t) {
    case Trend::kIncreasing: return "increasing";
    case Trend::kNonIncreasing: return "non-increasing";
    case Trend::kAmbiguous: return "ambiguous";
  }
  return "?";
}

std::vector<double> group_medians(const std::vector<double>& owds) {
  std::size_t n = owds.size();
  if (n == 0) return {};
  auto groups = static_cast<std::size_t>(std::floor(std::sqrt(static_cast<double>(n))));
  if (groups < 2) return owds;  // too short to group; use raw values
  std::size_t per = n / groups;
  std::vector<double> medians;
  medians.reserve(groups);
  for (std::size_t g = 0; g < groups; ++g) {
    auto begin = owds.begin() + static_cast<std::ptrdiff_t>(g * per);
    auto end = (g + 1 == groups) ? owds.end()
                                 : begin + static_cast<std::ptrdiff_t>(per);
    medians.push_back(median(std::vector<double>(begin, end)));
  }
  return medians;
}

double pct_statistic(const std::vector<double>& owds) {
  std::vector<double> m = group_medians(owds);
  if (m.size() < 2) return 0.5;
  std::size_t up = 0;
  for (std::size_t k = 1; k < m.size(); ++k)
    if (m[k] > m[k - 1]) ++up;
  return static_cast<double>(up) / static_cast<double>(m.size() - 1);
}

double pdt_statistic(const std::vector<double>& owds) {
  std::vector<double> m = group_medians(owds);
  if (m.size() < 2) return 0.0;
  double denom = 0.0;
  for (std::size_t k = 1; k < m.size(); ++k) denom += std::abs(m[k] - m[k - 1]);
  if (denom == 0.0) return 0.0;  // perfectly flat series: no trend
  return (m.back() - m.front()) / denom;
}

double median_abs_deviation(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double m = median(xs);
  std::vector<double> dev;
  dev.reserve(xs.size());
  for (double x : xs) dev.push_back(std::abs(x - m));
  return median(std::move(dev));
}

bool trend_signal_significant(const std::vector<double>& owds,
                              const TrendConfig& cfg) {
  std::vector<double> m = group_medians(owds);
  if (m.size() < 2) return false;
  auto [lo, hi] = std::minmax_element(m.begin(), m.end());
  double range = *hi - *lo;
  if (range <= cfg.min_range_seconds) return false;
  return range > cfg.min_range_mad_factor * median_abs_deviation(owds);
}

Trend pct_trend(const std::vector<double>& owds, const TrendConfig& cfg) {
  if (!trend_signal_significant(owds, cfg)) return Trend::kNonIncreasing;
  double s = pct_statistic(owds);
  if (s > cfg.pct_increasing) return Trend::kIncreasing;
  if (s < cfg.pct_non_increasing) return Trend::kNonIncreasing;
  return Trend::kAmbiguous;
}

Trend pdt_trend(const std::vector<double>& owds, const TrendConfig& cfg) {
  if (!trend_signal_significant(owds, cfg)) return Trend::kNonIncreasing;
  double s = pdt_statistic(owds);
  if (s > cfg.pdt_increasing) return Trend::kIncreasing;
  if (s < cfg.pdt_non_increasing) return Trend::kNonIncreasing;
  return Trend::kAmbiguous;
}

Trend combined_trend(const std::vector<double>& owds, const TrendConfig& cfg) {
  Trend a = pct_trend(owds, cfg);
  Trend b = pdt_trend(owds, cfg);
  if (a == b) return a;
  // One test is decisive, the other ambiguous: follow the decisive one.
  if (a == Trend::kAmbiguous) return b;
  if (b == Trend::kAmbiguous) return a;
  // The tests contradict each other outright.
  return Trend::kAmbiguous;
}

}  // namespace abw::stats
