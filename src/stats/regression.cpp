#include "stats/regression.hpp"

#include <cmath>
#include <stdexcept>

namespace abw::stats {

LinearFit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size())
    throw std::invalid_argument("linear_fit: size mismatch");
  std::size_t n = xs.size();
  if (n < 2) throw std::invalid_argument("linear_fit: need at least 2 points");

  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  double mx = sx / static_cast<double>(n);
  double my = sy / static_cast<double>(n);

  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double dx = xs[i] - mx;
    double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) throw std::invalid_argument("linear_fit: x values are all equal");

  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.n = n;
  if (syy == 0.0) {
    fit.r_squared = 1.0;  // all ys equal and fit passes through them
  } else {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double e = ys[i] - (fit.slope * xs[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / syy;
  }
  return fit;
}

std::vector<double> linear_detrend(const std::vector<double>& ys) {
  if (ys.size() < 2) return ys;
  std::vector<double> xs(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  LinearFit fit = linear_fit(xs, ys);
  std::vector<double> out(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i)
    out[i] = ys[i] - (fit.slope * xs[i] + fit.intercept);
  return out;
}

}  // namespace abw::stats
