// Descriptive statistics: streaming moments (Welford), batch helpers, and
// quantiles.  Used throughout the library — sample means of avail-bw
// samples (Eq. 11 of the paper), standard deviations across averaging time
// scales (Fig. 2), and relative-error summaries (Table 1).
#pragma once

#include <cstddef>
#include <vector>

namespace abw::stats {

/// Numerically stable streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations so far.
  std::size_t count() const { return n_; }

  /// Sample mean; 0 when empty.
  double mean() const { return mean_; }

  /// Unbiased sample variance (divides by n-1); 0 when n < 2.
  double variance() const;

  /// sqrt(variance()).
  double stddev() const;

  /// Smallest / largest observation; undefined when empty.
  double min() const { return min_; }
  double max() const { return max_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of a vector; 0 when empty.
double mean(const std::vector<double>& xs);

/// Unbiased sample variance; 0 when fewer than 2 elements.
double variance(const std::vector<double>& xs);

/// sqrt(variance(xs)).
double stddev(const std::vector<double>& xs);

/// Median (average of middle two for even sizes); 0 when empty.
double median(std::vector<double> xs);

/// q-quantile via linear interpolation, q in [0, 1]; 0 when empty.
double quantile(std::vector<double> xs, double q);

/// Relative error (x - reference) / reference.  The paper's epsilon metric.
double relative_error(double x, double reference);

/// Mean absolute relative error of a sample set against a reference.
double mean_abs_relative_error(const std::vector<double>& xs, double reference);

}  // namespace abw::stats
