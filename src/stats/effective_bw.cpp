#include "stats/effective_bw.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abw::stats {

double effective_bandwidth(const std::vector<double>& window_loads, double s) {
  if (window_loads.empty())
    throw std::invalid_argument("effective_bandwidth: empty loads");
  if (s <= 0.0) throw std::invalid_argument("effective_bandwidth: s must be > 0");
  // log-mean-exp with max subtraction for numerical stability.
  double m = *std::max_element(window_loads.begin(), window_loads.end());
  double acc = 0.0;
  for (double x : window_loads) acc += std::exp(s * (x - m));
  acc /= static_cast<double>(window_loads.size());
  return m + std::log(acc) / s;
}

double effective_avail_bw(double capacity, const std::vector<double>& window_loads,
                          double s) {
  return std::max(0.0, capacity - effective_bandwidth(window_loads, s));
}

}  // namespace abw::stats
