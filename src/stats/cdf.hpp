// Empirical CDFs.  Figure 1 of the paper plots the CDF of the relative
// error of the avail-bw sample mean; this module builds exactly that kind
// of curve from a sample set.
#pragma once

#include <cstddef>
#include <vector>

namespace abw::stats {

/// Empirical cumulative distribution function over a fixed sample set.
class EmpiricalCdf {
 public:
  /// Builds the CDF from samples (copied and sorted).  Empty input allowed;
  /// then `at()` returns 0 everywhere.
  explicit EmpiricalCdf(std::vector<double> samples);

  /// F(x) = fraction of samples <= x.
  double at(double x) const;

  /// Inverse CDF: smallest sample s with F(s) >= p, p in (0, 1].
  double inverse(double p) const;

  /// Evaluation points for plotting: returns (x, F(x)) pairs at each
  /// distinct sample value.
  std::vector<std::pair<double, double>> curve() const;

  std::size_t size() const { return sorted_.size(); }

 private:
  std::vector<double> sorted_;
};

}  // namespace abw::stats
