#include "stats/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace abw::stats {

namespace {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

// Core iterative FFT; sign = -1 for forward, +1 for inverse (unnormalized).
void transform(std::vector<std::complex<double>>& a, int sign) {
  std::size_t n = a.size();
  if (!is_pow2(n)) throw std::invalid_argument("fft: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(a[i], a[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    double ang = sign * 2.0 * std::numbers::pi / static_cast<double>(len);
    std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        std::complex<double> u = a[i + k];
        std::complex<double> v = a[i + k + len / 2] * w;
        a[i + k] = u + v;
        a[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
}

}  // namespace

void fft(std::vector<std::complex<double>>& data) { transform(data, -1); }

void ifft(std::vector<std::complex<double>>& data) {
  transform(data, +1);
  double inv = 1.0 / static_cast<double>(data.size());
  for (auto& x : data) x *= inv;
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace abw::stats
