#include "stats/moments.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abw::stats {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  std::size_t total = n_ + other.n_;
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / static_cast<double>(total);
  mean_ += delta * static_cast<double>(other.n_) / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ = total;
}

double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double median(std::vector<double> xs) { return quantile(std::move(xs), 0.5); }

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  double pos = q * static_cast<double>(xs.size() - 1);
  std::size_t lo = static_cast<std::size_t>(pos);
  std::size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double relative_error(double x, double reference) {
  if (reference == 0.0) throw std::invalid_argument("relative_error: reference is 0");
  return (x - reference) / reference;
}

double mean_abs_relative_error(const std::vector<double>& xs, double reference) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += std::abs(relative_error(x, reference));
  return s / static_cast<double>(xs.size());
}

}  // namespace abw::stats
