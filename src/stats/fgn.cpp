#include "stats/fgn.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "stats/fft.hpp"

namespace abw::stats {

double fgn_autocovariance(double hurst, std::size_t lag) {
  double k = static_cast<double>(lag);
  double h2 = 2.0 * hurst;
  return 0.5 * (std::pow(k + 1.0, h2) - 2.0 * std::pow(k, h2) +
                std::pow(std::abs(k - 1.0), h2));
}

std::vector<double> generate_fgn(std::size_t n, double hurst, Rng& rng) {
  if (n == 0) throw std::invalid_argument("generate_fgn: n must be > 0");
  if (hurst <= 0.0 || hurst >= 1.0)
    throw std::invalid_argument("generate_fgn: hurst must be in (0,1)");

  // Embed the covariance into a circulant of size m = 2 * next_pow2(n).
  std::size_t half = next_pow2(n);
  std::size_t m = 2 * half;

  std::vector<std::complex<double>> c(m);
  for (std::size_t k = 0; k <= half; ++k) c[k] = fgn_autocovariance(hurst, k);
  for (std::size_t k = half + 1; k < m; ++k) c[k] = c[m - k];

  fft(c);  // eigenvalues of the circulant (real, non-negative for fGn)

  std::vector<std::complex<double>> v(m);
  double msz = static_cast<double>(m);
  for (std::size_t j = 0; j <= half; ++j) {
    double lambda = c[j].real();
    if (lambda < 0.0) {
      // Theoretically impossible for fGn; clamp tiny negative round-off.
      if (lambda < -1e-9) throw std::runtime_error("generate_fgn: negative eigenvalue");
      lambda = 0.0;
    }
    if (j == 0 || j == half) {
      v[j] = std::sqrt(lambda) * rng.normal();
    } else {
      double s = std::sqrt(lambda / 2.0);
      v[j] = std::complex<double>(s * rng.normal(), s * rng.normal());
      v[m - j] = std::conj(v[j]);
    }
  }

  fft(v);
  std::vector<double> out(n);
  double norm = 1.0 / std::sqrt(msz);
  for (std::size_t i = 0; i < n; ++i) out[i] = v[i].real() * norm;
  return out;
}

}  // namespace abw::stats
