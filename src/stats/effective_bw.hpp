// Kelly's effective bandwidth (Kelly 1996, "Notes on effective
// bandwidths").  The paper's multiple-bottleneck pitfall remarks that the
// underestimation artifacts stem from the simplistic avail-bw definition
// (Eq. 3), and points at effective bandwidth as a burstiness-aware
// alternative:  alpha(s, t) = (1 / (s t)) log E[ exp(s X(0, t)) ],
// where X(0, t) is the amount of traffic arriving in a window of length t.
//
// We estimate it empirically from a sequence of per-window byte counts.
#pragma once

#include <cstddef>
#include <vector>

namespace abw::stats {

/// Empirical effective bandwidth of a traffic process.
/// `window_loads` holds X_i = traffic (in rate units, e.g. Mb/s averaged
/// over the window) observed in consecutive windows of length t;
/// `s` is the space parameter (> 0): s -> 0 recovers the mean rate, large
/// s approaches the peak rate.
/// Returns alpha(s) in the same units as the loads.
/// Throws std::invalid_argument for empty input or s <= 0.
double effective_bandwidth(const std::vector<double>& window_loads, double s);

/// Effective *available* bandwidth of a link: C - alpha(s), the largest
/// extra rate that keeps the workload's effective demand below capacity at
/// quality parameter s.  Clamped below at 0.
double effective_avail_bw(double capacity, const std::vector<double>& window_loads,
                          double s);

}  // namespace abw::stats
