#include "stats/cusum.hpp"

#include <algorithm>
#include <cmath>

#include "stats/moments.hpp"
#include "stats/trend.hpp"

namespace abw::stats {

std::optional<LevelShift> detect_level_shift(const std::vector<double>& xs,
                                             const CusumConfig& cfg,
                                             std::size_t baseline) {
  if (xs.size() < 8) return std::nullopt;
  if (baseline == 0) baseline = std::max<std::size_t>(4, xs.size() / 4);
  baseline = std::min(baseline, xs.size() - 1);

  std::vector<double> head(xs.begin(),
                           xs.begin() + static_cast<std::ptrdiff_t>(baseline));
  double mu = median(head);
  // Scale: the larger of the baseline MAD and the whole-series MAD.  A
  // short baseline under-estimates sigma often enough to wreck the
  // in-control run length; the whole-series MAD is robust to a single
  // mean shift (it contaminates at most half the deviations) and floors
  // the scale safely, at the cost of slightly slower detection.
  double sigma = 1.4826 * std::max(median_abs_deviation(head),
                                   median_abs_deviation(xs));
  if (sigma <= 0.0) return std::nullopt;  // constant series: nothing to detect

  double up = 0.0, down = 0.0;
  for (std::size_t i = baseline; i < xs.size(); ++i) {
    double z = (xs[i] - mu) / sigma;
    up = std::max(0.0, up + z - cfg.drift);
    down = std::max(0.0, down - z - cfg.drift);
    if (up > cfg.threshold) return LevelShift{i, true};
    if (down > cfg.threshold) return LevelShift{i, false};
  }
  return std::nullopt;
}

std::vector<std::size_t> segment_by_level_shifts(const std::vector<double>& xs,
                                                 const CusumConfig& cfg) {
  std::vector<std::size_t> bounds = {0};
  std::size_t offset = 0;
  while (offset + 8 < xs.size()) {
    std::vector<double> rest(xs.begin() + static_cast<std::ptrdiff_t>(offset),
                             xs.end());
    auto shift = detect_level_shift(rest, cfg);
    if (!shift) break;
    offset += shift->at;
    bounds.push_back(offset);
  }
  return bounds;
}

}  // namespace abw::stats
