// Iterative radix-2 Cooley-Tukey FFT.  Needed by the Davies-Harte exact
// synthesis of fractional Gaussian noise (fgn.hpp), which in turn produces
// the self-similar synthetic traces substituting for the paper's NLANR
// trace (Figs. 1 and 6).
#pragma once

#include <complex>
#include <vector>

namespace abw::stats {

/// In-place forward FFT.  data.size() must be a power of two (>= 1);
/// throws std::invalid_argument otherwise.
void fft(std::vector<std::complex<double>>& data);

/// In-place inverse FFT (includes the 1/N normalization).
void ifft(std::vector<std::complex<double>>& data);

/// Returns the smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

}  // namespace abw::stats
