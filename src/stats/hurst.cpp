#include "stats/hurst.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/moments.hpp"
#include "stats/regression.hpp"

namespace abw::stats {

namespace {

std::vector<double> block_means(const std::vector<double>& xs, std::size_t m) {
  std::size_t blocks = xs.size() / m;
  std::vector<double> out;
  out.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    double s = 0.0;
    for (std::size_t i = 0; i < m; ++i) s += xs[b * m + i];
    out.push_back(s / static_cast<double>(m));
  }
  return out;
}

std::vector<std::size_t> dyadic_levels(std::size_t n, std::size_t max_div) {
  std::vector<std::size_t> levels;
  for (std::size_t m = 1; m <= n / max_div; m *= 2) levels.push_back(m);
  return levels;
}

}  // namespace

std::vector<VtPoint> variance_time_plot(const std::vector<double>& xs,
                                        const std::vector<std::size_t>& levels) {
  std::vector<VtPoint> pts;
  for (std::size_t m : levels) {
    if (m == 0 || m > xs.size() / 2) continue;
    std::vector<double> agg = block_means(xs, m);
    if (agg.size() < 2) continue;
    pts.push_back({m, variance(agg)});
  }
  return pts;
}

double hurst_variance_time(const std::vector<double>& xs) {
  if (xs.size() < 32)
    throw std::invalid_argument("hurst_variance_time: need >= 32 samples");
  auto pts = variance_time_plot(xs, dyadic_levels(xs.size(), 8));
  std::vector<double> lx, ly;
  for (const auto& p : pts) {
    if (p.variance <= 0.0) continue;
    lx.push_back(std::log(static_cast<double>(p.m)));
    ly.push_back(std::log(p.variance));
  }
  if (lx.size() < 2)
    throw std::invalid_argument("hurst_variance_time: degenerate series");
  LinearFit fit = linear_fit(lx, ly);
  double h = 1.0 + fit.slope / 2.0;  // slope = 2H - 2
  return std::clamp(h, 0.01, 0.99);
}

double hurst_rescaled_range(const std::vector<double>& xs) {
  if (xs.size() < 32)
    throw std::invalid_argument("hurst_rescaled_range: need >= 32 samples");
  std::vector<double> lx, ly;
  for (std::size_t m = 8; m <= xs.size() / 2; m *= 2) {
    std::size_t blocks = xs.size() / m;
    double rs_sum = 0.0;
    std::size_t rs_n = 0;
    for (std::size_t b = 0; b < blocks; ++b) {
      auto begin = xs.begin() + static_cast<std::ptrdiff_t>(b * m);
      std::vector<double> blk(begin, begin + static_cast<std::ptrdiff_t>(m));
      double mu = mean(blk);
      double cum = 0.0, mx = 0.0, mn = 0.0, ss = 0.0;
      for (double x : blk) {
        cum += x - mu;
        mx = std::max(mx, cum);
        mn = std::min(mn, cum);
        ss += (x - mu) * (x - mu);
      }
      double sd = std::sqrt(ss / static_cast<double>(m));
      if (sd > 0.0) {
        rs_sum += (mx - mn) / sd;
        ++rs_n;
      }
    }
    if (rs_n == 0) continue;
    lx.push_back(std::log(static_cast<double>(m)));
    ly.push_back(std::log(rs_sum / static_cast<double>(rs_n)));
  }
  if (lx.size() < 2)
    throw std::invalid_argument("hurst_rescaled_range: degenerate series");
  LinearFit fit = linear_fit(lx, ly);
  return std::clamp(fit.slope, 0.01, 0.99);
}

}  // namespace abw::stats
