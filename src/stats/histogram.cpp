#include "stats/histogram.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace abw::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi) || bins == 0)
    throw std::invalid_argument("Histogram: need lo < hi and bins > 0");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / (hi_ - lo_) *
                                      static_cast<double>(counts_.size()));
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bin_center(std::size_t i) const {
  double w = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + (static_cast<double>(i) + 0.5) * w;
}

double Histogram::bin_fraction(std::size_t i) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(i)) / static_cast<double>(total_);
}

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::string out;
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::size_t bar = counts_[i] * width / peak;
    std::snprintf(line, sizeof line, "%12.4g | ", bin_center(i));
    out += line;
    out.append(bar, '#');
    std::snprintf(line, sizeof line, "  (%zu)\n", counts_[i]);
    out += line;
  }
  return out;
}

}  // namespace abw::stats
