// Ordinary least squares in one variable.  TOPP's avail-bw estimator fits
// Ri/Ro against Ri above the avail-bw turning point: the slope is 1/Ct and
// the intercept Rc/Ct (Melander et al. 2000/2002).
#pragma once

#include <cstddef>
#include <vector>

namespace abw::stats {

/// Result of a simple linear regression y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  ///< coefficient of determination in [0, 1]
  std::size_t n = 0;       ///< number of points used
};

/// Fits y = a*x + b by OLS.  Requires xs.size() == ys.size() >= 2 and at
/// least two distinct x values; throws std::invalid_argument otherwise.
LinearFit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys);

/// Removes the OLS line from an evenly spaced series (x = 0, 1, ..., n-1)
/// and returns the residuals.  Used to strip receiver clock drift from
/// long passive OWD records before variability analysis; do NOT apply it
/// within a probing stream — it would erase the congestion trend itself.
std::vector<double> linear_detrend(const std::vector<double>& ys);

}  // namespace abw::stats
