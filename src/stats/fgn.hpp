// Exact synthesis of fractional Gaussian noise (fGn) via the Davies-Harte
// circulant-embedding method.
//
// The paper's Eq. (5) states that for an exactly self-similar avail-bw
// process with Hurst parameter H, Var[A_tau] decays as tau^{-2(1-H)}.  To
// reproduce the trace-driven experiments (Figs. 1 and 6) without the
// proprietary NLANR trace, we synthesize traffic whose rate process is fGn
// with a chosen H — giving us a ground-truth self-similar avail-bw process.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace abw::stats {

/// Generates n samples of zero-mean, unit-variance fractional Gaussian
/// noise with Hurst parameter hurst in (0, 1).  Uses Davies-Harte exact
/// circulant embedding (O(n log n)); falls back to cumulative-sum fBm
/// differencing only if an eigenvalue is (numerically) negative, which for
/// fGn covariance does not occur.
/// Throws std::invalid_argument for hurst outside (0, 1) or n == 0.
std::vector<double> generate_fgn(std::size_t n, double hurst, Rng& rng);

/// Theoretical autocovariance of unit-variance fGn at lag k:
/// gamma(k) = 0.5 * (|k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H}).
double fgn_autocovariance(double hurst, std::size_t lag);

}  // namespace abw::stats
