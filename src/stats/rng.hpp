// Deterministic random number generation for simulations.
//
// Every stochastic component in the library draws from an `abw::stats::Rng`
// seeded explicitly, so that each experiment is exactly reproducible.  The
// distributions offered here are the ones the paper's workloads need:
// uniform, exponential (Poisson processes), Pareto (heavy-tailed ON/OFF
// traffic), and normal (fGn synthesis).
#pragma once

#include <cstdint>
#include <random>

namespace abw::stats {

/// A seedable pseudo-random generator with the distributions used across
/// the library.  Thin wrapper over std::mt19937_64; copyable so generators
/// can fork deterministic sub-streams via `fork()`.
class Rng {
 public:
  /// Constructs a generator from an explicit 64-bit seed.
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform in [0, 1).
  double uniform01();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponential with the given mean (mean = 1/lambda).  mean must be > 0.
  double exponential(double mean);

  /// Pareto with shape `alpha` and scale (minimum value) `xm`:
  /// P(X > x) = (xm/x)^alpha for x >= xm.  For alpha <= 1 the mean is
  /// infinite; callers model heavy-tailed OFF periods with alpha in (1, 2).
  double pareto(double alpha, double xm);

  /// Standard normal (mean 0, stddev 1).
  double normal();

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Derives an independent deterministic child generator.  Used to give
  /// each traffic source its own stream while keeping one experiment seed.
  Rng fork();

  /// Direct access for std distributions that need an engine.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace abw::stats
