#include "stats/kstest.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace abw::stats {

double ks_statistic(std::vector<double> sample, const CdfFn& cdf) {
  if (sample.empty()) throw std::invalid_argument("ks_statistic: empty sample");
  std::sort(sample.begin(), sample.end());
  double n = static_cast<double>(sample.size());
  double d = 0.0;
  for (std::size_t i = 0; i < sample.size(); ++i) {
    double f = cdf(sample[i]);
    double lo = static_cast<double>(i) / n;        // F_emp just below x_i
    double hi = static_cast<double>(i + 1) / n;    // F_emp at x_i
    d = std::max({d, std::abs(f - lo), std::abs(f - hi)});
  }
  return d;
}

double ks_pvalue(double d, std::size_t n) {
  if (d <= 0.0) return 1.0;
  double sqrt_n = std::sqrt(static_cast<double>(n));
  double lambda = d * (sqrt_n + 0.12 + 0.11 / sqrt_n);
  double sum = 0.0;
  for (int k = 1; k <= 100; ++k) {
    double term = std::exp(-2.0 * k * k * lambda * lambda);
    sum += (k % 2 == 1 ? term : -term);
    if (term < 1e-12) break;
  }
  return std::clamp(2.0 * sum, 0.0, 1.0);
}

bool ks_fits(std::vector<double> sample, const CdfFn& cdf, double alpha) {
  std::size_t n = sample.size();
  double d = ks_statistic(std::move(sample), cdf);
  return ks_pvalue(d, n) > alpha;
}

CdfFn exponential_cdf(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("exponential_cdf: mean must be > 0");
  return [mean](double x) { return x <= 0.0 ? 0.0 : 1.0 - std::exp(-x / mean); };
}

CdfFn pareto_cdf(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0)
    throw std::invalid_argument("pareto_cdf: shape and scale must be > 0");
  return [shape, scale](double x) {
    return x <= scale ? 0.0 : 1.0 - std::pow(scale / x, shape);
  };
}

CdfFn uniform_cdf(double lo, double hi) {
  if (!(lo < hi)) throw std::invalid_argument("uniform_cdf: need lo < hi");
  return [lo, hi](double x) {
    if (x <= lo) return 0.0;
    if (x >= hi) return 1.0;
    return (x - lo) / (hi - lo);
  };
}

}  // namespace abw::stats
