#include "stats/sampling.hpp"

#include <stdexcept>
#include <string>

namespace abw::stats {

std::vector<double> poisson_sample_times(std::size_t count, double horizon, Rng& rng,
                                         std::size_t max_attempts) {
  if (count == 0) return {};
  if (horizon <= 0.0)
    throw std::invalid_argument("poisson_sample_times: horizon must be > 0");
  double mean_gap = horizon / static_cast<double>(count + 1);
  std::vector<double> times;
  times.reserve(count);
  // Redraw whole sequences until all `count` arrivals land inside the
  // horizon; with mean gap horizon/(count+1) this succeeds quickly.
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    times.clear();
    double t = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      t += rng.exponential(mean_gap);
      if (t >= horizon) break;
      times.push_back(t);
    }
    if (times.size() == count) return times;
  }
  // Never degrade to periodic spacing here: that would silently destroy
  // the PASTA property the Poisson-sampling experiments depend on.
  throw std::runtime_error(
      "poisson_sample_times: no draw fit the horizon after " +
      std::to_string(max_attempts) + " attempts");
}

std::vector<double> periodic_sample_times(std::size_t count, double horizon) {
  if (horizon <= 0.0)
    throw std::invalid_argument("periodic_sample_times: horizon must be > 0");
  std::vector<double> times;
  times.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    times.push_back(static_cast<double>(i) * horizon / static_cast<double>(count));
  return times;
}

}  // namespace abw::stats
