// One-way-delay trend detection — Pathload's PCT and PDT statistics
// (Jain & Dovrolis, IEEE/ACM ToN 2003).  The paper's "increasing OWDs is
// equivalent to Ro < Ri" fallacy rests exactly on this machinery: a stream
// of OWDs carries far more information than the single Ro/Ri number, and
// these tests extract it.
#pragma once

#include <cstddef>
#include <vector>

namespace abw::stats {

/// Tri-state outcome of a trend test on an OWD series.
enum class Trend {
  kIncreasing,     ///< delays trend upward: probing rate exceeds avail-bw
  kNonIncreasing,  ///< no upward trend: probing rate is below avail-bw
  kAmbiguous,      ///< test is inconclusive (grey region)
};

/// Returns a human-readable name for a Trend value.
const char* to_string(Trend t);

/// Parameters for the PCT/PDT tests; defaults follow the Pathload paper.
struct TrendConfig {
  double pct_increasing = 0.66;      ///< S_PCT above this => increasing
  double pct_non_increasing = 0.54;  ///< S_PCT below this => non-increasing
  double pdt_increasing = 0.55;      ///< S_PDT above this => increasing
  double pdt_non_increasing = 0.45;  ///< S_PDT below this => non-increasing
  /// Sensitivity floor, statistical part: a trend is only meaningful when
  /// the spread of the group medians exceeds this multiple of the raw
  /// series' median absolute deviation.
  double min_range_mad_factor = 1.0;
  /// Sensitivity floor, physical part (seconds): group-median spread must
  /// also exceed this absolute value.  A genuine congestion trend grows
  /// by at least packet-transmission-time quanta (hundreds of
  /// microseconds at Mb/s capacities); receiver clock drift over one
  /// stream is single-digit microseconds.  Without this floor, a few
  /// microseconds of drift on an otherwise deterministic (phase-locked
  /// CBR) path would register as a statistically significant "trend".
  /// Pathload applies the analogous measurement-resolution filter.
  double min_range_seconds = 50e-6;
};

/// Pairwise Comparison Test statistic: fraction of consecutive group
/// medians that increase.  Input is the raw OWD series; it is internally
/// partitioned into ~sqrt(n) groups of medians to suppress noise.
/// Returns a value in [0, 1]; 0.5 means no trend.
double pct_statistic(const std::vector<double>& owds);

/// Pairwise Difference Test statistic:
/// (last median - first median) / sum |consecutive differences|.
/// Returns a value in [-1, 1]; near 1 means a strong monotone increase.
double pdt_statistic(const std::vector<double>& owds);

/// Classifies via the PCT thresholds only.
Trend pct_trend(const std::vector<double>& owds, const TrendConfig& cfg = {});

/// Classifies via the PDT thresholds only.
Trend pdt_trend(const std::vector<double>& owds, const TrendConfig& cfg = {});

/// Pathload's combined rule: if either test reports increasing and the
/// other does not contradict (is not non-increasing), the stream is
/// increasing; symmetrically for non-increasing; otherwise ambiguous.
Trend combined_trend(const std::vector<double>& owds, const TrendConfig& cfg = {});

/// Reduces the OWD series to ~sqrt(n) group medians, the robust summary
/// both statistics are computed on.  Exposed for tests and for Fig. 5.
std::vector<double> group_medians(const std::vector<double>& owds);

/// Median absolute deviation of a series (robust scale estimate).
double median_abs_deviation(const std::vector<double>& xs);

/// True when the series carries enough signal for a trend verdict:
/// spread of group medians > cfg.min_range_mad_factor * MAD(raw).
bool trend_signal_significant(const std::vector<double>& owds,
                              const TrendConfig& cfg = {});

}  // namespace abw::stats
