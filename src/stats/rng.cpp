#include "stats/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace abw::stats {

namespace {
// Bit-exact inline of libstdc++'s generate_canonical<double, 53> over
// mt19937_64 (what uniform_real_distribution(0,1) and
// exponential_distribution reduce to): the full 64-bit draw is converted
// to double (round-to-nearest) and scaled by 2^-64; draws within 2^10 of
// the top round up to exactly 1.0 and are clamped to nextafter(1, 0).
// Equality with the std path is enforced by stats_test (RngFastPathExact),
// so golden digests and every seeded experiment are unchanged — this is
// purely a speedup (~2.3x per draw: no distribution object, no long-double
// loop).  Hot callers: Poisson gap draws and packet-size sampling, which
// dominate traffic generation in both packet and hybrid simulation modes.
inline double canonical53(std::uint64_t raw) {
  double u = static_cast<double>(raw) * 0x1.0p-64;
  return u < 1.0 ? u : 0x1.fffffffffffffp-1;
}
}  // namespace

double Rng::uniform01() {
  return canonical53(engine_());
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean must be > 0");
  // Same expression std::exponential_distribution(1/mean) evaluates,
  // including the division by lambda rather than a multiply by mean (the
  // two round differently); exactness is covered by RngFastPathExact.
  return -std::log(1.0 - canonical53(engine_())) / (1.0 / mean);
}

double Rng::pareto(double alpha, double xm) {
  if (alpha <= 0.0 || xm <= 0.0)
    throw std::invalid_argument("Rng::pareto: alpha and xm must be > 0");
  // Inverse-CDF method: X = xm / U^(1/alpha), U ~ Uniform(0,1].
  double u = 1.0 - uniform01();  // in (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

Rng Rng::fork() {
  // Draw two words from the parent to seed the child; advances the parent
  // so successive forks are independent.
  std::uint64_t a = engine_();
  std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace abw::stats
