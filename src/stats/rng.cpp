#include "stats/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace abw::stats {

double Rng::uniform01() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean must be > 0");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::pareto(double alpha, double xm) {
  if (alpha <= 0.0 || xm <= 0.0)
    throw std::invalid_argument("Rng::pareto: alpha and xm must be > 0");
  // Inverse-CDF method: X = xm / U^(1/alpha), U ~ Uniform(0,1].
  double u = 1.0 - uniform01();  // in (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::normal() {
  return std::normal_distribution<double>(0.0, 1.0)(engine_);
}

bool Rng::bernoulli(double p) {
  return std::bernoulli_distribution(p)(engine_);
}

Rng Rng::fork() {
  // Draw two words from the parent to seed the child; advances the parent
  // so successive forks are independent.
  std::uint64_t a = engine_();
  std::uint64_t b = engine_();
  return Rng(a ^ (b << 1) ^ 0x9e3779b97f4a7c15ULL);
}

}  // namespace abw::stats
