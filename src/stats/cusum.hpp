// Level-shift (change-point) detection for OWD and avail-bw series.
//
// The paper's eighth misconception notes that an OWD time series "can be
// analyzed with statistical tools to detect trends, measurement noise,
// level shifts, etc."  This module supplies the level-shift part: a
// two-sided CUSUM detector (Page 1954) over a robustly standardized
// series, plus a convenience change-point splitter.  The avail-bw monitor
// uses it to distinguish a persistent avail-bw regime change from
// transient burstiness.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

namespace abw::stats {

/// CUSUM parameters, in units of the series' robust standard deviation
/// (MAD * 1.4826).
struct CusumConfig {
  double drift = 0.5;      ///< k: slack per sample before evidence accrues
  /// h: cumulated evidence required to alarm.  With k = 0.5, h = 8 gives
  /// an in-control average run length of tens of thousands of samples —
  /// long avail-bw monitoring series must not false-alarm on noise.
  double threshold = 8.0;
};

/// Result of a detection pass.
struct LevelShift {
  std::size_t at = 0;   ///< index where the alarm fired
  bool upward = false;  ///< direction of the shift
};

/// Runs a two-sided CUSUM over `xs`, standardized by the median and
/// robust sigma of the first `baseline` samples (default: first quarter).
/// Returns the first detected shift, or nullopt.  Series shorter than 8
/// samples or with zero baseline spread never alarm.
std::optional<LevelShift> detect_level_shift(const std::vector<double>& xs,
                                             const CusumConfig& cfg = {},
                                             std::size_t baseline = 0);

/// Splits the series at successive detected shifts (re-baselining after
/// each) and returns the segment boundaries, always starting with 0.
std::vector<std::size_t> segment_by_level_shifts(const std::vector<double>& xs,
                                                 const CusumConfig& cfg = {});

}  // namespace abw::stats
