// Fixed-bin histogram, used by benches to print distribution summaries and
// by tests to sanity-check generator output shapes.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace abw::stats {

/// Equal-width histogram over [lo, hi) with `bins` buckets plus under/over
/// flow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }

  /// Center x-value of bin i.
  double bin_center(std::size_t i) const;

  /// Fraction of all observations landing in bin i.
  double bin_fraction(std::size_t i) const;

  /// ASCII rendering for bench output: one line per bin with a bar.
  std::string render(std::size_t width = 50) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0, overflow_ = 0, total_ = 0;
};

}  // namespace abw::stats
