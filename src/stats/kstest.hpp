// One-sample Kolmogorov-Smirnov goodness-of-fit test.
//
// Used by the test suite to validate the traffic generators rigorously:
// a Poisson source's interarrivals must be *distributionally*
// exponential, a Pareto-gap source's gaps Pareto — not merely match a
// mean.  (Mis-shaped generators would silently distort every burstiness
// experiment in the paper.)
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace abw::stats {

/// A cumulative distribution function F(x) in [0, 1].
using CdfFn = std::function<double(double)>;

/// KS statistic D_n = sup_x |F_empirical(x) - F(x)| for the sample
/// against the hypothesized CDF.  Throws std::invalid_argument on an
/// empty sample.
double ks_statistic(std::vector<double> sample, const CdfFn& cdf);

/// Asymptotic p-value for D_n via the Kolmogorov distribution series
/// Q(lambda) = 2 sum_{k>=1} (-1)^{k-1} exp(-2 k^2 lambda^2) with
/// lambda = D_n (sqrt(n) + 0.12 + 0.11/sqrt(n)).
double ks_pvalue(double d, std::size_t n);

/// Convenience: true when the sample is consistent with the CDF at the
/// given significance level (default 1%).
bool ks_fits(std::vector<double> sample, const CdfFn& cdf, double alpha = 0.01);

/// Ready-made CDFs for the distributions the generators use.
CdfFn exponential_cdf(double mean);
CdfFn pareto_cdf(double shape, double scale);
CdfFn uniform_cdf(double lo, double hi);

}  // namespace abw::stats
