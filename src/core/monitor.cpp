#include "core/monitor.hpp"

#include <algorithm>
#include <stdexcept>

namespace abw::core {

namespace {

est::PathloadConfig tracker_fleet(const MonitorConfig& cfg) {
  est::PathloadConfig pl = cfg.pathload;
  pl.min_rate_bps = cfg.min_rate_bps;
  pl.max_rate_bps = cfg.max_rate_bps;
  return pl;
}

}  // namespace

AvailBwMonitor::AvailBwMonitor(Scenario& scenario, const MonitorConfig& cfg)
    : scenario_(scenario), cfg_(cfg), pathload_(tracker_fleet(cfg)) {
  if (cfg.min_rate_bps <= 0.0 || cfg.max_rate_bps <= cfg.min_rate_bps)
    throw std::invalid_argument("AvailBwMonitor: bad rate clamp");
  if (cfg.probe_margin <= 0.0 || cfg.probe_margin >= 1.0)
    throw std::invalid_argument("AvailBwMonitor: probe_margin in (0,1)");
  if (cfg.adapt_step <= 0.0 || cfg.adapt_step > 1.0)
    throw std::invalid_argument("AvailBwMonitor: adapt_step in (0,1]");
  if (cfg.period <= 0) throw std::invalid_argument("AvailBwMonitor: bad period");
  estimate_ = cfg.initial_estimate_bps;
}

void AvailBwMonitor::bootstrap() {
  est::Estimate e = pathload_.estimate(scenario_.session());
  estimate_ = e.valid ? e.point_bps()
                      : 0.5 * (cfg_.min_rate_bps + cfg_.max_rate_bps);
}

void AvailBwMonitor::take_reading() {
  sim::SimTime t0 = scenario_.simulator().now();

  // Probe one fleet just below and one just above the tracked estimate.
  double lo_rate = estimate_ * (1.0 - cfg_.probe_margin);
  double hi_rate = estimate_ * (1.0 + cfg_.probe_margin);
  lo_rate = std::clamp(lo_rate, cfg_.min_rate_bps, cfg_.max_rate_bps);
  hi_rate = std::clamp(hi_rate, cfg_.min_rate_bps, cfg_.max_rate_bps);

  est::FleetVerdict below = pathload_.probe_fleet(scenario_.transport(), lo_rate);
  est::FleetVerdict above = pathload_.probe_fleet(scenario_.transport(), hi_rate);

  double step = cfg_.adapt_step * cfg_.probe_margin * estimate_;
  if (below == est::FleetVerdict::kAboveAvailBw) {
    // Even the low probe congests: the avail-bw fell below our window.
    estimate_ -= 2.0 * step;
  } else if (above == est::FleetVerdict::kBelowAvailBw) {
    // Even the high probe passes clean: the avail-bw rose above it.
    estimate_ += 2.0 * step;
  } else if (below == est::FleetVerdict::kBelowAvailBw &&
             above == est::FleetVerdict::kAboveAvailBw) {
    // Bracketed: nudge toward the midpoint of the window (no-op by
    // construction, but re-center after clamping).
    estimate_ = (lo_rate + hi_rate) / 2.0;
  } else if (below == est::FleetVerdict::kGrey) {
    estimate_ -= step;  // avail-bw is wandering around the low probe
  } else if (above == est::FleetVerdict::kGrey) {
    estimate_ += step;
  }
  estimate_ = std::clamp(estimate_, cfg_.min_rate_bps, cfg_.max_rate_bps);

  sim::SimTime t1 = scenario_.simulator().now();
  MonitorReading r;
  r.at = t1;
  r.estimate_bps = estimate_;
  r.ground_truth_bps = t1 > t0 ? scenario_.path().cross_avail_bw(t0, t1)
                               : scenario_.recent_ground_truth(cfg_.period);
  readings_.push_back(r);
}

std::vector<MonitorReading> AvailBwMonitor::run_until(sim::SimTime until) {
  std::size_t first_new = readings_.size();
  if (estimate_ <= 0.0) bootstrap();
  while (scenario_.simulator().now() + cfg_.period <= until) {
    sim::SimTime next = scenario_.simulator().now() + cfg_.period;
    take_reading();
    // Idle until the next period boundary (a real monitor sleeps).
    if (scenario_.simulator().now() < next) scenario_.simulator().run_until(next);
  }
  return {readings_.begin() + static_cast<std::ptrdiff_t>(first_new),
          readings_.end()};
}

}  // namespace abw::core
