#include "core/mesh_scenario.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "runner/batch.hpp"
#include "stats/trend.hpp"

namespace abw::core {

// Receiver of one edge's Path: forwards end-to-end probe packets along
// their pair's route or delivers them to the owning scenario.
class MeshScenario::EdgeExit final : public sim::PacketHandler {
 public:
  EdgeExit(MeshScenario& owner, std::size_t edge)
      : owner_(owner), edge_(edge) {}

  void handle(sim::Packet pkt) override { owner_.on_edge_exit(edge_, pkt); }

 private:
  MeshScenario& owner_;
  std::size_t edge_;
};

MeshScenario::MeshScenario(const MeshConfig& cfg)
    : cfg_(cfg), topo_(cfg.topology), pairs_(cfg.pairs) {
  if (pairs_.empty())
    throw std::invalid_argument("MeshScenario: no pairs");
  if (topo_.edge_count() == 0)
    throw std::invalid_argument("MeshScenario: empty topology");
  if (!cfg_.edge_cross_rate_bps.empty() &&
      cfg_.edge_cross_rate_bps.size() != topo_.edge_count())
    throw std::invalid_argument(
        "MeshScenario: edge_cross_rate_bps size must match edge_count");

  routes_.reserve(pairs_.size());
  for (const sim::NodePair& p : pairs_) {
    if (p.src == p.dst)
      throw std::invalid_argument("MeshScenario: pair with src == dst");
    if (topo_.route(p.src, p.dst) == nullptr &&
        !topo_.auto_route(p.src, p.dst))
      throw std::invalid_argument("MeshScenario: pair " +
                                  std::to_string(p.src) + "->" +
                                  std::to_string(p.dst) + " is unreachable");
  }
  for (const sim::NodePair& p : pairs_)
    routes_.push_back(*topo_.route(p.src, p.dst));

  edge_paths_.reserve(topo_.edge_count());
  exits_.reserve(topo_.edge_count());
  for (std::size_t e = 0; e < topo_.edge_count(); ++e) {
    edge_paths_.push_back(std::make_unique<sim::Path>(
        sim_, std::vector<sim::LinkConfig>{topo_.edge(e).link}));
    exits_.push_back(std::make_unique<EdgeExit>(*this, e));
    edge_paths_[e]->set_receiver(exits_[e].get());
  }

  next_edge_.assign(topo_.edge_count(),
                    std::vector<std::int32_t>(pairs_.size(), kNotRouted));
  for (std::size_t p = 0; p < pairs_.size(); ++p) {
    const std::vector<std::size_t>& r = routes_[p];
    for (std::size_t i = 0; i < r.size(); ++i)
      next_edge_[r[i]][p] = i + 1 < r.size()
                                ? static_cast<std::int32_t>(r[i + 1])
                                : kDeliver;
  }

  CrossSpec spec;
  spec.model = cfg_.model;
  spec.packet_size = cfg_.cross_packet_size;
  for (std::size_t e = 0; e < cfg_.edge_cross_rate_bps.size(); ++e) {
    const double rate = cfg_.edge_cross_rate_bps[e];
    if (rate <= 0.0) continue;
    if (rate >= topo_.edge(e).link.capacity_bps)
      throw std::invalid_argument("MeshScenario: edge " + std::to_string(e) +
                                  " background rate must be below capacity");
    spec.rate_bps = rate;
    spec.capacity_bps = topo_.edge(e).link.capacity_bps;
    // Seeded by the GLOBAL edge index only: the traffic process is a pure
    // function of (config, seed), independent of pair set or probing.
    cross_.attach(sim_, *edge_paths_[e], 0, /*one_hop=*/true,
                  1000 + static_cast<std::uint32_t>(e),
                  stats::Rng(runner::derive_seed(cfg_.seed, e)), cfg_.mode,
                  spec, 0, cfg_.traffic_horizon);
  }

  sim_.run_until(cfg_.warmup);
}

MeshScenario::~MeshScenario() = default;

void MeshScenario::on_edge_exit(std::size_t edge, const sim::Packet& pkt) {
  if (pkt.type != sim::PacketType::kProbe) return;
  if (pkt.flow_id >= pairs_.size()) return;  // not a mesh probe flow
  const std::int32_t next = next_edge_[edge][pkt.flow_id];
  if (next >= 0) {
    edge_paths_[static_cast<std::size_t>(next)]->inject(0, pkt);
    return;
  }
  if (next != kDeliver) return;  // stray: not on this pair's route

  auto it = active_.find(pkt.stream_id);
  if (it == active_.end()) return;  // stream already drained
  ActiveStream& st = it->second;
  // ProbeSession-identical dedup/reorder semantics via the shared
  // probe::ReceiverState (duplicates keep the first copy's timestamp).
  probe::ProbeRecord* rec = st.recv.accept(*st.result, pkt.seq);
  if (rec == nullptr) return;
  rec->received = sim_.now();
  ++st.received;
}

bool MeshScenario::drained() const {
  for (const auto& [id, st] : active_)
    if (st.received < st.expected) return false;
  return true;
}

probe::StreamResult MeshScenario::send_stream(std::size_t p,
                                              const probe::StreamSpec& spec,
                                              sim::SimTime lead_in) {
  std::vector<probe::StreamResult> r =
      send_concurrent_streams(std::vector<std::size_t>{p}, spec, lead_in);
  return std::move(r.front());
}

std::vector<probe::StreamResult> MeshScenario::send_concurrent_streams(
    const std::vector<std::size_t>& ps, const probe::StreamSpec& spec,
    sim::SimTime lead_in) {
  if (ps.empty()) return {};
  if (spec.packets.empty())
    throw std::invalid_argument("MeshScenario: empty stream spec");
  for (std::size_t p : ps)
    if (p >= pairs_.size())
      throw std::invalid_argument("MeshScenario: pair index out of range");

  const sim::SimTime start = sim_.now() + lead_in;
  if (cost_.streams == 0) cost_.first_send = start;

  // Results are sized up front: ActiveStream holds pointers into them.
  std::vector<probe::StreamResult> results(ps.size());
  for (std::size_t i = 0; i < ps.size(); ++i) {
    results[i].stream_id = next_stream_id_++;
    ActiveStream st;
    st.result = &results[i];
    st.expected = spec.packets.size();
    active_.emplace(results[i].stream_id, st);
  }

  for (std::size_t i = 0; i < ps.size(); ++i) {
    const std::size_t entry = routes_[ps[i]].front();
    sim::Path* path0 = edge_paths_[entry].get();
    const auto fid = static_cast<std::uint32_t>(ps[i]);
    const std::uint32_t sid = results[i].stream_id;
    results[i].packets.resize(spec.packets.size());
    for (std::size_t k = 0; k < spec.packets.size(); ++k) {
      const probe::ProbePacketSpec& pp = spec.packets[k];
      results[i].packets[k].seq = static_cast<std::uint32_t>(k);
      results[i].packets[k].size_bytes = pp.size_bytes;
      results[i].packets[k].sent = start + pp.offset;
      results[i].packets[k].lost = true;  // cleared on arrival
      const std::uint32_t sz = pp.size_bytes;
      const auto seq = static_cast<std::uint32_t>(k);
      sim_.at(start + pp.offset, [this, path0, fid, sid, sz, seq] {
        sim::Packet pkt;
        pkt.id = sim_.next_packet_id();
        pkt.type = sim::PacketType::kProbe;
        pkt.measurement = true;  // excluded from cross-traffic ground truth
        pkt.size_bytes = sz;
        pkt.flow_id = fid;  // the pair index = the route key
        pkt.stream_id = sid;
        pkt.seq = seq;
        pkt.send_time = sim_.now();
        path0->inject(0, pkt);
      });
      ++cost_.packets;
      cost_.bytes += sz;
    }
    ++cost_.streams;
  }

  // Hybrid mode: the union of the streams' route edges goes discrete for
  // the whole batch (same 2 ms guard as ProbeSession); off-route edges
  // stay fluid — that locality is where the mesh's speed comes from.
  std::vector<char> touched(topo_.edge_count(), 0);
  for (std::size_t p : ps)
    for (std::size_t e : routes_[p]) touched[e] = 1;
  bool windows = false;
  sim::SimTime open = start - 2 * sim::kMillisecond;
  if (open < sim_.now()) open = sim_.now();
  for (std::size_t e = 0; e < topo_.edge_count(); ++e)
    if (touched[e] && edge_paths_[e]->hybrid()) {
      edge_paths_[e]->open_packet_window(open);
      windows = true;
    }

  const sim::SimTime deadline =
      start + spec.packets.back().offset + 2 * sim::kSecond;
  sim_.run_until_condition(deadline, [this] { return drained(); });

  if (windows)
    for (std::size_t e = 0; e < topo_.edge_count(); ++e)
      if (touched[e] && edge_paths_[e]->hybrid())
        edge_paths_[e]->close_packet_window();
  for (const probe::StreamResult& r : results) active_.erase(r.stream_id);
  cost_.last_activity = sim_.now();
  return results;
}

double MeshScenario::pair_narrow_capacity(std::size_t p) const {
  double cap = std::numeric_limits<double>::infinity();
  for (std::size_t e : routes_.at(p))
    cap = std::min(cap, topo_.edge(e).link.capacity_bps);
  return cap;
}

double MeshScenario::nominal_pair_avail_bw(std::size_t p) const {
  double avail = std::numeric_limits<double>::infinity();
  for (std::size_t e : routes_.at(p)) {
    const double rate = e < cfg_.edge_cross_rate_bps.size()
                            ? cfg_.edge_cross_rate_bps[e]
                            : 0.0;
    avail = std::min(avail, topo_.edge(e).link.capacity_bps - rate);
  }
  return avail;
}

double MeshScenario::edge_cross_avail_bw(std::size_t e, sim::SimTime t1,
                                         sim::SimTime t2) const {
  return edge_paths_.at(e)->cross_avail_bw(t1, t2);
}

double MeshScenario::pair_ground_truth(std::size_t p, sim::SimTime t1,
                                       sim::SimTime t2) const {
  double avail = std::numeric_limits<double>::infinity();
  for (std::size_t e : routes_.at(p))
    avail = std::min(avail, edge_cross_avail_bw(e, t1, t2));
  return avail;
}

std::vector<double> MeshScenario::ground_truth_matrix(sim::SimTime t1,
                                                      sim::SimTime t2) const {
  std::vector<double> matrix(pairs_.size());
  for (std::size_t p = 0; p < pairs_.size(); ++p)
    matrix[p] = pair_ground_truth(p, t1, t2);
  return matrix;
}

std::size_t MeshScenario::pair_tight_edge(std::size_t p, sim::SimTime t1,
                                          sim::SimTime t2) const {
  double best = std::numeric_limits<double>::infinity();
  std::size_t tight = routes_.at(p).front();
  for (std::size_t e : routes_.at(p)) {
    const double avail = edge_cross_avail_bw(e, t1, t2);
    if (avail < best) {  // ties keep the earliest route edge
      best = avail;
      tight = e;
    }
  }
  return tight;
}

void MeshScenario::set_trace(obs::TraceSink* sink) {
  for (auto& path : edge_paths_) path->link(0).set_trace(sink);
}

void MeshScenario::snapshot_metrics(obs::MetricsRegistry& m) const {
  for (std::size_t e = 0; e < edge_paths_.size(); ++e) {
    const sim::Link& link = edge_paths_[e]->link(0);
    const sim::LinkStats& s = link.stats();
    // Keyed by edge index: per-edge Path link names all restart at link0.
    const std::string p = "edge." + std::to_string(e) + ".";
    m.counter(p + "packets_in").set(s.packets_in);
    m.counter(p + "packets_out").set(s.packets_out);
    m.counter(p + "packets_dropped").set(s.packets_dropped);
    m.counter(p + "bytes_in").set(s.bytes_in);
    m.counter(p + "bytes_out").set(s.bytes_out);
    m.gauge(p + "capacity_bps").set(link.capacity_bps());
  }
  m.counter("mesh.streams").set(cost_.streams);
  m.counter("mesh.packets").set(cost_.packets);
  m.counter("mesh.bytes").set(cost_.bytes);
  m.counter("sim.events").set(sim_.events_processed());
}

est::MeshMeasurement measure_mesh_pair(const MeshConfig& cfg, std::size_t p,
                                       std::uint64_t seed,
                                       const MeshProbeConfig& probe) {
  MeshConfig replica = cfg;
  replica.seed = seed;
  MeshScenario mesh(replica);

  // Iterative binary rate search a la pathload.  Mesh routes typically
  // cross several comparably loaded links; there the Eq. 9 magnitude
  // under-reads badly (every congested hop adds its own Ro reduction —
  // the paper's multi-hop pitfall), but the OWD-trend verdict "Ri above
  // A?" is hop-count-proof, so the bracket still converges to the
  // end-to-end (Eq. 3 min) avail-bw.
  const double ct = mesh.pair_narrow_capacity(p);
  double lo = 0.0;
  double hi = ct;
  double rate = std::clamp(probe.initial_utilization, 0.05, 0.98) * ct;
  std::uint32_t verdicts = 0;
  const std::size_t fleet = std::max<std::size_t>(probe.streams_per_fleet, 1);
  for (std::size_t k = 0; k < probe.streams; ++k) {
    // Packet count so the stream spans the configured duration at Ri
    // (same geometry as est::DirectProber::stream_spec).
    const sim::SimTime gap = sim::transmission_time(probe.packet_size, rate);
    std::size_t count =
        static_cast<std::size_t>(probe.stream_duration / gap) + 1;
    count = std::max<std::size_t>(count, 8);

    // One fleet: the rate's verdict is the majority over independent
    // streams (with drain gaps), because a single stream samples the
    // avail-bw process at one instant and a burst there flips it — and a
    // flipped verdict early in a binary search never recovers.
    std::size_t n_inc = 0, n_non = 0;
    for (std::size_t s = 0; s < fleet; ++s) {
      if (s > 0) mesh.run_until(mesh.now() + probe.inter_stream_gap);
      const probe::StreamResult res = mesh.send_stream(
          p, probe::StreamSpec::periodic(rate, probe.packet_size, count),
          probe.lead_in);
      stats::Trend v;
      if (res.lost_count() > res.packets.size() / 10) {
        // A stream that loses packets wholesale overran the tight link.
        v = stats::Trend::kIncreasing;
      } else {
        v = stats::combined_trend(res.owds_seconds());
      }
      if (v == stats::Trend::kIncreasing) ++n_inc;
      if (v == stats::Trend::kNonIncreasing) ++n_non;
    }
    stats::Trend t = stats::Trend::kAmbiguous;
    if (2 * n_inc > fleet) t = stats::Trend::kIncreasing;
    if (2 * n_non > fleet) t = stats::Trend::kNonIncreasing;

    ++verdicts;
    if (t == stats::Trend::kIncreasing) {
      hi = std::min(hi, rate);
    } else if (t == stats::Trend::kNonIncreasing) {
      lo = std::max(lo, rate);
    } else {
      // Grey region: the stream rate sits at the avail-bw process'
      // variation range, so pull both bracket edges toward it.
      const double w = hi - lo;
      lo = std::max(lo, rate - 0.25 * w);
      hi = std::min(hi, rate + 0.25 * w);
    }
    rate = std::clamp(0.5 * (lo + hi), 0.02 * ct, 0.98 * ct);
    mesh.run_until(mesh.now() + probe.inter_stream_gap);
  }

  est::MeshMeasurement out;
  if (verdicts == 0) return out;
  out.valid = true;
  out.samples = verdicts;
  out.low_bps = lo;
  out.high_bps = hi;
  out.avail_bps = 0.5 * (lo + hi);
  return out;
}

est::MeshMeasureFn make_mesh_measure_fn(MeshConfig cfg,
                                        MeshProbeConfig probe) {
  return [cfg = std::move(cfg), probe](std::size_t pair, std::uint64_t seed) {
    return measure_mesh_pair(cfg, pair, seed, probe);
  };
}

namespace {

double lerp_util(double lo, double hi, std::size_t i, std::size_t n) {
  if (n <= 1) return lo;
  return lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(n - 1);
}

}  // namespace

MeshConfig fat_tree_mesh(const FatTreeMeshConfig& cfg) {
  if (cfg.pods == 0 || cfg.hosts_per_pod == 0)
    throw std::invalid_argument("fat_tree_mesh: pods and hosts required");
  if (cfg.pods < 2 && !cfg.include_intra_pod)
    throw std::invalid_argument(
        "fat_tree_mesh: a single pod needs include_intra_pod");

  MeshConfig m;
  sim::Topology& t = m.topology;
  const std::size_t core = t.add_node();

  sim::LinkConfig core_link;
  core_link.capacity_bps = cfg.core_capacity_bps;
  core_link.propagation_delay = cfg.core_delay;
  sim::LinkConfig access_link;
  access_link.capacity_bps = cfg.access_capacity_bps;
  access_link.propagation_delay = cfg.access_delay;

  std::vector<std::size_t> up(cfg.pods), down(cfg.pods);
  std::vector<std::vector<std::size_t>> srcs(cfg.pods), dsts(cfg.pods);
  for (std::size_t i = 0; i < cfg.pods; ++i) {
    const std::size_t agg = t.add_node();
    up[i] = t.add_edge(agg, core, core_link);
    down[i] = t.add_edge(core, agg, core_link);
    for (std::size_t j = 0; j < cfg.hosts_per_pod; ++j) {
      const std::size_t s = t.add_node();
      t.add_edge(s, agg, access_link);
      srcs[i].push_back(s);
    }
    for (std::size_t j = 0; j < cfg.hosts_per_pod; ++j) {
      const std::size_t d = t.add_node();
      t.add_edge(agg, d, access_link);
      dsts[i].push_back(d);
    }
  }

  // Uplinks markedly hotter than downlinks: every inter-pod pair
  // bottlenecks at its source pod's uplink, while the narrow uplink
  // utilization spread keeps inference error bounded when a measured
  // path's down edge was bounded through a differently loaded pod.
  m.edge_cross_rate_bps.assign(t.edge_count(), 0.0);
  for (std::size_t i = 0; i < cfg.pods; ++i) {
    m.edge_cross_rate_bps[up[i]] =
        lerp_util(cfg.uplink_util_min, cfg.uplink_util_max, i, cfg.pods) *
        cfg.core_capacity_bps;
    m.edge_cross_rate_bps[down[i]] =
        lerp_util(cfg.downlink_util_min, cfg.downlink_util_max, i, cfg.pods) *
        cfg.core_capacity_bps;
  }

  for (std::size_t si = 0; si < cfg.pods; ++si)
    for (std::size_t sj = 0; sj < cfg.hosts_per_pod; ++sj)
      for (std::size_t di = 0; di < cfg.pods; ++di) {
        if (si == di && !cfg.include_intra_pod) continue;
        for (std::size_t dj = 0; dj < cfg.hosts_per_pod; ++dj)
          m.pairs.push_back({srcs[si][sj], dsts[di][dj]});
      }

  m.mode = cfg.mode;
  m.model = cfg.model;
  m.cross_packet_size = cfg.cross_packet_size;
  m.traffic_horizon = cfg.traffic_horizon;
  m.warmup = cfg.warmup;
  m.seed = cfg.seed;
  return m;
}

MeshConfig parking_lot_mesh(const ParkingLotMeshConfig& cfg) {
  if (cfg.backbone_hops < 2)
    throw std::invalid_argument("parking_lot_mesh: need >= 2 backbone hops");
  if (cfg.sources == 0 || cfg.sinks == 0)
    throw std::invalid_argument("parking_lot_mesh: sources and sinks required");

  MeshConfig m;
  sim::Topology& t = m.topology;
  const std::size_t b0 = t.add_nodes(cfg.backbone_hops + 1);

  sim::LinkConfig backbone;
  backbone.capacity_bps = cfg.backbone_capacity_bps;
  backbone.propagation_delay = cfg.backbone_delay;
  sim::LinkConfig access_link;
  access_link.capacity_bps = cfg.access_capacity_bps;
  access_link.propagation_delay = cfg.access_delay;

  std::vector<std::size_t> chain(cfg.backbone_hops);
  for (std::size_t h = 0; h < cfg.backbone_hops; ++h)
    chain[h] = t.add_edge(b0 + h, b0 + h + 1, backbone);

  // Sources attach over the head half of the chain, sinks over the tail
  // half, so every pair's route is a contiguous backbone segment and
  // different pairs bottleneck at different chain links.
  const std::size_t half = cfg.backbone_hops / 2;  // >= 1
  std::vector<std::size_t> src_nodes, dst_nodes;
  for (std::size_t i = 0; i < cfg.sources; ++i) {
    const std::size_t s = t.add_node();
    t.add_edge(s, b0 + (i % half), access_link);
    src_nodes.push_back(s);
  }
  for (std::size_t j = 0; j < cfg.sinks; ++j) {
    const std::size_t d = t.add_node();
    t.add_edge(b0 + cfg.backbone_hops - (j % half), d, access_link);
    dst_nodes.push_back(d);
  }

  m.edge_cross_rate_bps.assign(t.edge_count(), 0.0);
  for (std::size_t h = 0; h < cfg.backbone_hops; ++h)
    m.edge_cross_rate_bps[chain[h]] =
        lerp_util(cfg.util_min, cfg.util_max, h, cfg.backbone_hops) *
        cfg.backbone_capacity_bps;

  for (std::size_t i = 0; i < cfg.sources; ++i)
    for (std::size_t j = 0; j < cfg.sinks; ++j)
      m.pairs.push_back({src_nodes[i], dst_nodes[j]});

  m.mode = cfg.mode;
  m.model = cfg.model;
  m.cross_packet_size = cfg.cross_packet_size;
  m.traffic_horizon = cfg.traffic_horizon;
  m.warmup = cfg.warmup;
  m.seed = cfg.seed;
  return m;
}

}  // namespace abw::core
