// Reusable experiment procedures shared by the benches, examples, and
// integration tests: Ro/Ri response curves (Figs. 3-4), per-stream
// avail-bw sampling (Fig. 2, Table 1), and OWD captures (Fig. 5).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/scenario.hpp"
#include "probe/stream_result.hpp"

namespace abw::core {

/// One point of an Ro/Ri-vs-Ri response curve.
struct RatioPoint {
  double rate_bps = 0.0;    ///< offered input rate Ri
  double mean_ratio = 0.0;  ///< average Ro/Ri over the streams
  double std_ratio = 0.0;   ///< stddev across streams
  std::size_t streams = 0;  ///< usable streams measured
};

/// Parameters of a response-curve measurement.
struct RatioCurveConfig {
  std::vector<double> rates_bps;       ///< offered rates to sweep
  std::size_t streams_per_rate = 100;  ///< the paper's figures use 500
  std::uint32_t packet_size = 1500;
  std::size_t packets_per_stream = 100;
  sim::SimTime inter_stream_gap = 20 * sim::kMillisecond;
};

/// Measures the average output/input rate ratio at each offered rate —
/// the paper's Figs. 3 and 4 y-axis.  Throws std::logic_error if the
/// measurement would outlive the scenario's cross-traffic horizon (probing
/// a silent link produces ratio ~1 and silently corrupts the curve).
std::vector<RatioPoint> measure_ratio_curve(Scenario& sc,
                                            const RatioCurveConfig& cfg);

/// Long-sweep variant: builds a FRESH scenario per offered rate via
/// `make_scenario(seed)`, so hundreds of streams per rate cannot exhaust
/// one scenario's traffic horizon.  Seeds are 1, 2, ... per rate point.
///
/// Rate points are independent worlds, so they execute on a
/// runner::BatchRunner with `jobs` threads (0 = runner::default_jobs(),
/// i.e. $ABW_JOBS or hardware_concurrency).  Results are aggregated in
/// rate order, so the curve is bit-identical for every thread count.
std::vector<RatioPoint> measure_ratio_curve_fresh(
    const std::function<Scenario(std::uint64_t seed)>& make_scenario,
    const RatioCurveConfig& cfg, std::size_t jobs = 0);

/// Collects `count` direct-probing avail-bw samples (Eq. 9) of the given
/// stream duration.  `tight_capacity_bps` is Ct in the equation.  Streams
/// that fail to congest the link are skipped (and re-sent up to 3x the
/// count).  Used by Fig. 2 and, with packet pairs, Table 1.
std::vector<double> collect_direct_samples(Scenario& sc, double tight_capacity_bps,
                                           double input_rate_bps,
                                           sim::SimTime stream_duration,
                                           std::uint32_t packet_size,
                                           std::size_t count,
                                           sim::SimTime inter_stream_gap);

/// Collects `count` per-pair avail-bw samples with Spruce's gap formula.
std::vector<double> collect_pair_samples(Scenario& sc, double tight_capacity_bps,
                                         std::uint32_t packet_size,
                                         std::size_t count,
                                         sim::SimTime mean_pair_gap);

/// Parallel replication of `collect_direct_samples`: replication r runs in
/// its own fresh scenario built with `make_scenario(derive_seed(base_seed,
/// r))` on a runner::BatchRunner with `jobs` threads (0 =
/// runner::default_jobs()).  Returns the per-replication sample vectors in
/// replication order — bit-identical for every thread count.
std::vector<std::vector<double>> collect_direct_samples_batch(
    const std::function<Scenario(std::uint64_t seed)>& make_scenario,
    double tight_capacity_bps, double input_rate_bps,
    sim::SimTime stream_duration, std::uint32_t packet_size,
    std::size_t count_per_replication, sim::SimTime inter_stream_gap,
    std::size_t replications, std::uint64_t base_seed, std::size_t jobs = 0);

/// Parallel replication of `collect_pair_samples`; same contract as
/// `collect_direct_samples_batch`.
std::vector<std::vector<double>> collect_pair_samples_batch(
    const std::function<Scenario(std::uint64_t seed)>& make_scenario,
    double tight_capacity_bps, std::uint32_t packet_size,
    std::size_t count_per_replication, sim::SimTime mean_pair_gap,
    std::size_t replications, std::uint64_t base_seed, std::size_t jobs = 0);

/// Sends one periodic stream and returns the receiver's full result
/// (Fig. 5 needs the raw OWD series).
probe::StreamResult capture_stream(Scenario& sc, double rate_bps,
                                   std::uint32_t packet_size,
                                   std::size_t packet_count);

/// Ground-truth A_tau(t) series of the tight link over [t0, t1),
/// excluding measurement traffic — works in both simulation modes (in
/// hybrid mode it first syncs the fluid accounting through t1, which is
/// what makes meter-based ground truth the mode-independent source; the
/// Fig. 1 bench reads it instead of a per-packet trace).
std::vector<double> ground_truth_series(Scenario& sc, sim::SimTime t0,
                                        sim::SimTime t1, sim::SimTime tau);

}  // namespace abw::core
