#include "core/scenario.hpp"

#include <stdexcept>

#include "traffic/cbr.hpp"
#include "traffic/fgn_rate.hpp"
#include "traffic/pareto_onoff.hpp"
#include "traffic/poisson.hpp"

namespace abw::core {

const char* to_string(CrossModel m) {
  switch (m) {
    case CrossModel::kCbr: return "CBR";
    case CrossModel::kPoisson: return "Poisson";
    case CrossModel::kParetoOnOff: return "Pareto ON-OFF";
    case CrossModel::kFgn: return "fGn-modulated";
  }
  return "?";
}

Scenario::Scenario(std::uint64_t seed)
    : sim_(std::make_unique<sim::Simulator>()),
      rng_(std::make_unique<stats::Rng>(seed)) {}

std::unique_ptr<traffic::Generator> make_cross_generator(
    sim::Simulator& sim, sim::Path& path, std::size_t hop, bool one_hop,
    std::uint32_t flow_id, stats::Rng rng, CrossModel model, double rate_bps,
    std::uint32_t packet_size, bool trimodal, double onoff_peak,
    double capacity_bps) {
  switch (model) {
    case CrossModel::kCbr:
      return std::make_unique<traffic::CbrGenerator>(
          sim, path, hop, one_hop, flow_id, std::move(rng), rate_bps, packet_size);
    case CrossModel::kPoisson: {
      traffic::SizeDistribution sizes =
          trimodal ? traffic::SizeDistribution::internet_mix()
                   : traffic::SizeDistribution::fixed(packet_size);
      return std::make_unique<traffic::PoissonGenerator>(
          sim, path, hop, one_hop, flow_id, std::move(rng), rate_bps,
          std::move(sizes));
    }
    case CrossModel::kParetoOnOff: {
      traffic::ParetoOnOffConfig oc;
      oc.mean_rate_bps = rate_bps;
      oc.peak_rate_bps = onoff_peak > 0.0 ? onoff_peak : capacity_bps;
      oc.packet_size = packet_size;
      return std::make_unique<traffic::ParetoOnOffGenerator>(
          sim, path, hop, one_hop, flow_id, std::move(rng), oc);
    }
    case CrossModel::kFgn: {
      // The NLANR-substitute self-similar workload (DESIGN.md) as a live
      // scenario: Poisson arrivals whose intensity is modulated every
      // millisecond by a fractional Gaussian noise series.
      traffic::FgnRateConfig fc;
      fc.mean_rate_bps = rate_bps;
      fc.packet_size = packet_size;
      return std::make_unique<traffic::FgnRateGenerator>(
          sim, path, hop, one_hop, flow_id, std::move(rng), fc);
    }
  }
  throw std::logic_error("make_cross_generator: unknown model");
}

void CrossTraffic::attach(sim::Simulator& sim, sim::Path& path,
                          std::size_t hop, bool one_hop,
                          std::uint32_t flow_id, stats::Rng rng,
                          sim::SimMode mode, const CrossSpec& spec,
                          sim::SimTime t0, sim::SimTime horizon) {
  adopt(sim, path, hop, one_hop, flow_id, mode,
        make_cross_generator(sim, path, hop, one_hop, flow_id, std::move(rng),
                             spec.model, spec.rate_bps, spec.packet_size,
                             spec.trimodal, spec.onoff_peak,
                             spec.capacity_bps),
        t0, horizon);
}

void CrossTraffic::adopt(sim::Simulator& sim, sim::Path& path,
                         std::size_t hop, bool one_hop, std::uint32_t flow_id,
                         sim::SimMode mode,
                         std::unique_ptr<traffic::Generator> gen,
                         sim::SimTime t0, sim::SimTime horizon) {
  if (mode == sim::SimMode::kHybrid) {
    hybrid_sources_.push_back(std::make_unique<traffic::HybridCrossSource>(
        sim, path, hop, one_hop, flow_id, std::move(gen)));
    hybrid_sources_.back()->start(t0, horizon);
  } else {
    generators_.push_back(std::move(gen));
    generators_.back()->start(t0, horizon);
  }
}

Scenario Scenario::single_hop(const SingleHopConfig& cfg) {
  if (cfg.cross_rate_bps >= cfg.capacity_bps)
    throw std::invalid_argument("Scenario: cross rate must be below capacity");
  Scenario sc(cfg.seed);

  sim::LinkConfig link;
  link.capacity_bps = cfg.capacity_bps;
  link.propagation_delay = cfg.propagation_delay;
  link.queue_limit_bytes = cfg.queue_limit_bytes;
  link.random_loss_prob = cfg.random_loss_prob;
  link.loss_seed = cfg.seed * 131 + 7;
  sc.path_ = std::make_unique<sim::Path>(*sc.sim_, std::vector<sim::LinkConfig>{link});

  if (cfg.cross_rate_bps > 0.0) {
    CrossSpec spec;
    spec.model = cfg.model;
    spec.rate_bps = cfg.cross_rate_bps;
    spec.packet_size = cfg.cross_packet_size;
    spec.trimodal = cfg.trimodal_cross_sizes;
    spec.onoff_peak = cfg.onoff_peak_rate_bps;
    spec.capacity_bps = cfg.capacity_bps;
    sc.cross_.attach(*sc.sim_, *sc.path_, 0, /*one_hop=*/false,
                     /*flow_id=*/1000, sc.rng_->fork(), cfg.mode, spec, 0,
                     cfg.traffic_horizon);
  }

  sc.session_ = std::make_unique<probe::ProbeSession>(*sc.sim_, *sc.path_);
  sc.nominal_avail_bw_ = cfg.capacity_bps - cfg.cross_rate_bps;
  sc.traffic_until_ = cfg.traffic_horizon;
  sc.sim_->run_until(cfg.warmup);
  return sc;
}

Scenario Scenario::multi_hop(const MultiHopConfig& cfg) {
  if (cfg.hop_count == 0) throw std::invalid_argument("Scenario: no hops");
  if (cfg.cross_rate_bps >= cfg.capacity_bps)
    throw std::invalid_argument("Scenario: cross rate must be below capacity");
  Scenario sc(cfg.seed);

  sim::LinkConfig link;
  link.capacity_bps = cfg.capacity_bps;
  link.propagation_delay = cfg.propagation_delay;
  link.queue_limit_bytes = cfg.queue_limit_bytes;
  link.random_loss_prob = cfg.random_loss_prob;
  link.loss_seed = cfg.seed * 131 + 7;
  sc.path_ = std::make_unique<sim::Path>(
      *sc.sim_, std::vector<sim::LinkConfig>(cfg.hop_count, link));

  CrossSpec spec;
  spec.model = cfg.model;
  spec.rate_bps = cfg.cross_rate_bps;
  spec.packet_size = cfg.cross_packet_size;
  spec.capacity_bps = cfg.capacity_bps;
  std::uint32_t flow_id = 1000;
  for (std::size_t hop : cfg.loaded_hops) {
    if (hop >= cfg.hop_count)
      throw std::invalid_argument("Scenario: loaded hop out of range");
    sc.cross_.attach(*sc.sim_, *sc.path_, hop, /*one_hop=*/true, flow_id,
                     sc.rng_->fork(), cfg.mode, spec, 0, cfg.traffic_horizon);
    ++flow_id;
  }

  sc.session_ = std::make_unique<probe::ProbeSession>(*sc.sim_, *sc.path_);
  sc.nominal_avail_bw_ = cfg.capacity_bps - cfg.cross_rate_bps;
  sc.traffic_until_ = cfg.traffic_horizon;
  sc.sim_->run_until(cfg.warmup);
  return sc;
}

void Scenario::add_cross_source(std::unique_ptr<traffic::Generator> gen,
                                std::size_t entry_hop, bool one_hop,
                                std::uint32_t flow_id, sim::SimMode mode,
                                sim::SimTime horizon) {
  cross_.adopt(*sim_, *path_, entry_hop, one_hop, flow_id, mode,
               std::move(gen), sim_->now(), horizon);
  if (horizon > traffic_until_) traffic_until_ = horizon;
}

Scenario Scenario::custom(const std::vector<sim::LinkConfig>& links,
                          std::uint64_t seed) {
  Scenario sc(seed);
  sc.path_ = std::make_unique<sim::Path>(*sc.sim_, links);
  sc.session_ = std::make_unique<probe::ProbeSession>(*sc.sim_, *sc.path_);
  double cap = sc.path_->narrow_capacity();
  sc.nominal_avail_bw_ = cap;
  return sc;
}

void Scenario::set_trace(obs::TraceSink* sink) {
  for (std::size_t h = 0; h < path_->hop_count(); ++h)
    path_->link(h).set_trace(sink);
  session_->set_trace(sink);
}

void Scenario::snapshot_metrics(obs::MetricsRegistry& m) const {
  for (std::size_t h = 0; h < path_->hop_count(); ++h) {
    const sim::Link& link = path_->link(h);
    const sim::LinkStats& s = link.stats();
    const std::string p = "link." + link.name() + ".";
    m.counter(p + "packets_in").set(s.packets_in);
    m.counter(p + "packets_out").set(s.packets_out);
    m.counter(p + "packets_dropped").set(s.packets_dropped);
    m.counter(p + "packets_red_dropped").set(s.packets_red_dropped);
    m.counter(p + "packets_lost").set(s.packets_lost);
    m.counter(p + "packets_ge_lost").set(s.packets_ge_lost);
    m.counter(p + "packets_duplicated").set(s.packets_duplicated);
    m.counter(p + "packets_reordered").set(s.packets_reordered);
    m.counter(p + "capacity_changes").set(s.capacity_changes);
    m.counter(p + "bytes_in").set(s.bytes_in);
    m.counter(p + "bytes_out").set(s.bytes_out);
    m.gauge(p + "capacity_bps").set(link.capacity_bps());
  }
  const probe::ProbeCost& cost = session_->cost();
  m.counter("session.streams").set(cost.streams);
  m.counter("session.packets").set(cost.packets);
  m.counter("session.bytes").set(cost.bytes);
  m.gauge("session.elapsed_s").set(sim::to_seconds(cost.elapsed()));
  m.counter("sim.events").set(sim_->events_processed());
}

double Scenario::recent_ground_truth(sim::SimTime window) const {
  sim::SimTime now = sim_->now();
  if (now <= window) return nominal_avail_bw_;
  return path_->cross_avail_bw(now - window, now);
}

}  // namespace abw::core
