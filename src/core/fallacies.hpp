// The ten fallacies and pitfalls as runnable demonstrations.
//
// Each entry reproduces, at small scale, the experiment with which the
// paper makes its point, and checks whether our system exhibits the same
// qualitative behaviour.  The full-scale versions (paper parameters,
// 500-sample curves) live in bench/; these miniatures are used by the
// fallacy_tour example and the integration tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace abw::core {

/// The paper's two flavors of misconception.
enum class MisconceptionKind { kFallacy, kPitfall };

const char* to_string(MisconceptionKind k);

/// Outcome of one demonstration.
struct FallacyResult {
  int id = 0;                       ///< 1..10, paper order
  MisconceptionKind kind = MisconceptionKind::kPitfall;
  std::string title;                ///< the paper's heading
  bool demonstrated = false;        ///< did our run exhibit the effect?
  std::string evidence;             ///< the numbers behind the verdict
};

/// Number of catalogued misconceptions.
inline constexpr int kFallacyCount = 10;

/// Title of misconception `id` (1-based, paper order).
std::string fallacy_title(int id);

/// Kind of misconception `id`.
MisconceptionKind fallacy_kind(int id);

/// Runs demonstration `id` (1-based).  Deterministic given `seed`.
/// Throws std::out_of_range for an unknown id.
FallacyResult run_fallacy(int id, std::uint64_t seed);

/// Runs all ten in paper order.
std::vector<FallacyResult> run_all_fallacies(std::uint64_t seed);

}  // namespace abw::core
