#include "core/registry.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "est/bfind.hpp"
#include "est/direct.hpp"
#include "est/igi_ptr.hpp"
#include "est/pathchirp.hpp"
#include "est/pathload.hpp"
#include "est/schirp.hpp"
#include "est/spruce.hpp"
#include "est/topp.hpp"

namespace abw::core {

const std::vector<ToolInfo>& available_tool_info() {
  // Defaults mirror each tool's config struct; keep in sync (the
  // registry round-trip test cross-checks requires_tight_capacity
  // against make_estimator's actual behavior).
  static const std::vector<ToolInfo> kTools = {
      {"direct", est::ProbingClass::kDirect, true, 1500, 20},
      {"spruce", est::ProbingClass::kDirect, true, 1500, 100},
      {"topp", est::ProbingClass::kIterative, false, 1500, 50},
      {"pathload", est::ProbingClass::kIterative, false, 1000, 12},
      {"pathchirp", est::ProbingClass::kIterative, false, 1000, 16},
      {"schirp", est::ProbingClass::kIterative, false, 1000, 16},
      {"igi", est::ProbingClass::kDirect, true, 700, 60},
      // PTR is iterative in the paper's taxonomy but its turning-point
      // search starts from Ct, so the capacity input is still required.
      {"ptr", est::ProbingClass::kIterative, true, 700, 60},
      {"bfind", est::ProbingClass::kIterative, false, 1000, 0},
  };
  return kTools;
}

const ToolInfo& tool_info(const std::string& name) {
  for (const ToolInfo& t : available_tool_info())
    if (t.name == name) return t;
  throw std::invalid_argument("tool_info: unknown tool '" + name + "'");
}

std::vector<std::string> available_tools() {
  std::vector<std::string> names;
  names.reserve(available_tool_info().size());
  for (const ToolInfo& t : available_tool_info()) names.push_back(t.name);
  return names;
}

bool is_tool(const std::string& name) {
  for (const ToolInfo& t : available_tool_info())
    if (t.name == name) return true;
  return false;
}

namespace {

double require_capacity(const ToolOptions& o, const std::string& tool) {
  if (o.tight_capacity_bps <= 0.0)
    throw std::invalid_argument(tool + ": tight_capacity_bps required "
                                       "(direct-probing tool)");
  return o.tight_capacity_bps;
}

// Central ToolOptions sanity checks, shared by every tool: bad brackets
// and absurd packet sizes fail here with a clear message instead of deep
// inside an individual tool (or silently, as an empty sweep grid).
void validate_options(const ToolOptions& o) {
  if (o.min_rate_bps < 0.0 || o.max_rate_bps < 0.0)
    throw std::invalid_argument("make_estimator: negative rate bracket");
  if (o.tight_capacity_bps < 0.0)
    throw std::invalid_argument("make_estimator: negative tight_capacity_bps");
  if (o.min_rate_bps >= o.max_rate_bps)
    throw std::invalid_argument(
        "make_estimator: min_rate_bps must be < max_rate_bps");
  if (o.packet_size != 0 && o.packet_size < kMinProbePacketBytes)
    throw std::invalid_argument(
        "make_estimator: packet_size below the minimum IP+UDP header size (" +
        std::to_string(kMinProbePacketBytes) + " bytes)");
}

}  // namespace

namespace {

std::unique_ptr<est::Estimator> make_estimator_impl(const std::string& name,
                                                    const ToolOptions& o,
                                                    stats::Rng& rng);

}  // namespace

std::unique_ptr<est::Estimator> make_estimator(const std::string& name,
                                               const ToolOptions& o,
                                               stats::Rng& rng) {
  validate_options(o);
  std::unique_ptr<est::Estimator> e = make_estimator_impl(name, o, rng);
  e->set_limits(o.limits);  // shared resource bounds (default: unlimited)
  e->set_observer(o.trace, o.metrics);  // observability (default: off)
  return e;
}

namespace {

std::unique_ptr<est::Estimator> make_estimator_impl(const std::string& name,
                                                    const ToolOptions& o,
                                                    stats::Rng& rng) {
  if (name == "direct") {
    est::DirectConfig c;
    c.tight_capacity_bps = require_capacity(o, name);
    if (o.packet_size != 0) c.packet_size = o.packet_size;
    if (o.repetitions != 0) c.stream_count = o.repetitions;
    return std::make_unique<est::DirectProber>(c);
  }
  if (name == "spruce") {
    est::SpruceConfig c;
    c.tight_capacity_bps = require_capacity(o, name);
    if (o.packet_size != 0) c.packet_size = o.packet_size;
    if (o.repetitions != 0) c.pair_count = o.repetitions;
    return std::make_unique<est::Spruce>(c, rng.fork());
  }
  if (name == "topp") {
    est::ToppConfig c;
    c.min_rate_bps = o.min_rate_bps;
    c.max_rate_bps = o.max_rate_bps;
    c.rate_step_bps = (o.max_rate_bps - o.min_rate_bps) / 22.0;
    if (o.packet_size != 0) c.packet_size = o.packet_size;
    if (o.repetitions != 0) c.pairs_per_rate = o.repetitions;
    return std::make_unique<est::Topp>(c, rng.fork());
  }
  if (name == "pathload") {
    est::PathloadConfig c;
    c.min_rate_bps = o.min_rate_bps;
    c.max_rate_bps = o.max_rate_bps;
    if (o.packet_size != 0) c.packet_size = o.packet_size;
    if (o.repetitions != 0) c.streams_per_fleet = o.repetitions;
    return std::make_unique<est::Pathload>(c);
  }
  if (name == "pathchirp" || name == "schirp") {
    est::PathChirpConfig c;
    c.low_rate_bps = o.min_rate_bps;
    if (o.packet_size != 0) c.packet_size = o.packet_size;
    if (o.repetitions != 0) c.chirps = o.repetitions;
    // Size the chirp so its top rate reaches the bracket's high edge.
    double span = o.max_rate_bps / o.min_rate_bps;
    auto gaps = static_cast<std::size_t>(std::log(span) / std::log(c.spread_factor)) + 1;
    c.packets_per_chirp = std::max<std::size_t>(gaps + 1, 8);
    if (name == "pathchirp") return std::make_unique<est::PathChirp>(c);
    est::SChirpConfig sc;
    sc.chirp = c;
    return std::make_unique<est::SChirp>(sc);
  }
  if (name == "igi" || name == "ptr") {
    est::IgiPtrConfig c;
    c.tight_capacity_bps = require_capacity(o, name);
    if (o.packet_size != 0) c.packet_size = o.packet_size;
    if (o.repetitions != 0) c.packets_per_train = o.repetitions;
    return std::make_unique<est::IgiPtr>(
        c, name == "igi" ? est::IgiPtrFormula::kIgi : est::IgiPtrFormula::kPtr);
  }
  if (name == "bfind") {
    est::BfindConfig c;
    c.initial_rate_bps = o.min_rate_bps;
    c.max_rate_bps = o.max_rate_bps;
    c.rate_step_bps = (o.max_rate_bps - o.min_rate_bps) / 20.0;
    if (o.packet_size != 0) c.packet_size = o.packet_size;
    return std::make_unique<est::Bfind>(c);
  }
  throw std::invalid_argument("make_estimator: unknown tool '" + name + "'");
}

}  // namespace

}  // namespace abw::core
