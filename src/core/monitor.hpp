// Continuous avail-bw monitoring — the paper's closing ask: "integrate
// avail-bw estimation techniques with actual applications, and then
// examine the effectiveness of these techniques given the actual accuracy
// and latency constraints of real applications."
//
// The monitor runs a lightweight Pathload-style tracker: instead of a
// full binary search per reading, it keeps the current estimate and
// probes a small fleet just above and just below it, nudging the estimate
// toward whichever side the verdicts contradict.  One reading costs a few
// fleets; readings repeat on a fixed period, yielding an avail-bw time
// series an application (e.g. an adaptive video encoder) can consume.
#pragma once

#include <vector>

#include "core/scenario.hpp"
#include "est/pathload.hpp"

namespace abw::core {

/// Monitor parameters.
struct MonitorConfig {
  double min_rate_bps = 1e6;     ///< clamp for the tracked estimate
  double max_rate_bps = 200e6;   ///< clamp for the tracked estimate
  double initial_estimate_bps = 0.0;  ///< 0 = bootstrap with a full search
  double probe_margin = 0.15;    ///< probe at estimate * (1 +- margin)
  double adapt_step = 0.5;       ///< estimate moves this fraction of margin
  sim::SimTime period = sim::kSecond;  ///< time between readings
  est::PathloadConfig pathload;  ///< fleet geometry (streams, packets, trend)
};

/// One reading of the monitor's time series.
struct MonitorReading {
  sim::SimTime at = 0;          ///< when the reading completed
  double estimate_bps = 0.0;    ///< tracked avail-bw
  double ground_truth_bps = 0.0;  ///< exact cross-traffic avail-bw over the
                                  ///< reading's probing interval
};

/// Tracks the avail-bw of a scenario's path over time.
class AvailBwMonitor {
 public:
  AvailBwMonitor(Scenario& scenario, const MonitorConfig& cfg);

  /// Runs the monitor until `until` (absolute sim time), appending one
  /// reading per period.  Returns the readings taken during this call.
  std::vector<MonitorReading> run_until(sim::SimTime until);

  /// All readings since construction.
  const std::vector<MonitorReading>& readings() const { return readings_; }

  /// The current tracked estimate (bits/s).
  double current_estimate() const { return estimate_; }

 private:
  void bootstrap();
  void take_reading();

  Scenario& scenario_;
  MonitorConfig cfg_;
  est::Pathload pathload_;
  double estimate_ = 0.0;
  std::vector<MonitorReading> readings_;
};

}  // namespace abw::core
