// Estimator registry: construct any implemented technique by name with a
// uniform option set — what lets the comparison benches, the CLI tool,
// and downstream users treat the whole toolbox interchangeably.
//
// Introspection is structured (registry v2): ToolInfo describes each
// tool's probing class, capacity requirement, and defaults, so callers
// size grids and validate configurations without hard-coding per-name
// knowledge.  available_tools()/is_tool() remain as thin wrappers over
// the ToolInfo table.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "est/estimator.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/rng.hpp"

namespace abw::core {

/// Smallest meaningful probe packet: IPv4 (20 B) + UDP (8 B) headers with
/// an empty payload.  ToolOptions::packet_size below this is a
/// configuration error — no real probe can be smaller.
inline constexpr std::uint32_t kMinProbePacketBytes = 28;

/// Structured description of one registered tool.
struct ToolInfo {
  std::string name;                   ///< registry name ("pathload", ...)
  est::ProbingClass probing_class;    ///< the paper's taxonomy
  /// Whether make_estimator requires ToolOptions::tight_capacity_bps > 0
  /// for this tool.  Note: tracks the *input requirement*, not the
  /// probing class — PTR is iterative but computes its turning point
  /// against Ct, so it requires capacity anyway.
  bool requires_tight_capacity = false;
  std::uint32_t default_packet_size = 0;  ///< probe size when options say 0
  /// Tool-specific meaning of ToolOptions::repetitions (streams, pairs,
  /// chirps, packets-per-train) when options say 0; 0 = the tool has no
  /// repetition knob (bfind ramps until growth).
  std::size_t default_repetitions = 0;
};

/// All registered tools in a stable order (the order available_tools()
/// has always reported).
const std::vector<ToolInfo>& available_tool_info();

/// Info for one tool.  Throws std::invalid_argument for unknown names.
const ToolInfo& tool_info(const std::string& name);

/// Names accepted by make_estimator, in a stable order.
std::vector<std::string> available_tools();

/// True when `name` names a registered tool.
bool is_tool(const std::string& name);

/// Uniform knobs shared by all tools; each tool reads the subset it
/// understands (direct tools need `tight_capacity_bps`; iterative tools
/// use the rate bracket).
struct ToolOptions {
  double tight_capacity_bps = 0.0;  ///< Ct for direct tools (required there)
  double min_rate_bps = 1e6;        ///< search bracket low edge
  double max_rate_bps = 100e6;      ///< search bracket high edge
  std::uint32_t packet_size = 0;    ///< 0 = each tool's default
  std::size_t repetitions = 0;      ///< streams/pairs/chirps; 0 = default
  /// Resource bounds applied to every constructed tool (defaults:
  /// unlimited).  Under impairments (fault injection, heavy loss) these
  /// guarantee termination with a structured AbortReason.
  est::EstimatorLimits limits;
  /// Observability (obs/): per-tool decision events go to `trace`,
  /// run counters / diagnostics / timing to `metrics`.  Either may be
  /// nullptr (the default: observability off).  Not owned; must outlive
  /// the constructed estimator.
  obs::TraceSink* trace = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Builds the named estimator.  Throws std::invalid_argument for unknown
/// names or for options the tool cannot work with: a direct tool without
/// tight_capacity_bps, a negative or inverted rate bracket
/// (min_rate_bps >= max_rate_bps), or a nonzero packet_size below
/// kMinProbePacketBytes.  `rng` seeds the tool's randomness.
std::unique_ptr<est::Estimator> make_estimator(const std::string& name,
                                               const ToolOptions& options,
                                               stats::Rng& rng);

}  // namespace abw::core
