// Estimator registry: construct any implemented technique by name with a
// uniform option set — what lets the comparison benches, the CLI tool,
// and downstream users treat the whole toolbox interchangeably.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "est/estimator.hpp"
#include "stats/rng.hpp"

namespace abw::core {

/// Uniform knobs shared by all tools; each tool reads the subset it
/// understands (direct tools need `tight_capacity_bps`; iterative tools
/// use the rate bracket).
struct ToolOptions {
  double tight_capacity_bps = 0.0;  ///< Ct for direct tools (required there)
  double min_rate_bps = 1e6;        ///< search bracket low edge
  double max_rate_bps = 100e6;      ///< search bracket high edge
  std::uint32_t packet_size = 0;    ///< 0 = each tool's default
  std::size_t repetitions = 0;      ///< streams/pairs/chirps; 0 = default
  /// Resource bounds applied to every constructed tool (defaults:
  /// unlimited).  Under impairments (fault injection, heavy loss) these
  /// guarantee termination with a structured AbortReason.
  est::EstimatorLimits limits;
};

/// Names accepted by make_estimator, in a stable order.
std::vector<std::string> available_tools();

/// True when `name` names a registered tool.
bool is_tool(const std::string& name);

/// Builds the named estimator.  Throws std::invalid_argument for unknown
/// names or for options the tool cannot work with (e.g. a direct tool
/// without tight_capacity_bps).  `rng` seeds the tool's randomness.
std::unique_ptr<est::Estimator> make_estimator(const std::string& name,
                                               const ToolOptions& options,
                                               stats::Rng& rng);

}  // namespace abw::core
