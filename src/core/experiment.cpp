#include "core/experiment.hpp"

#include <algorithm>
#include <stdexcept>

#include "est/direct.hpp"
#include "probe/stream_spec.hpp"
#include "runner/batch.hpp"
#include "stats/moments.hpp"

namespace abw::core {

std::vector<RatioPoint> measure_ratio_curve(Scenario& sc,
                                            const RatioCurveConfig& cfg) {
  if (cfg.rates_bps.empty())
    throw std::invalid_argument("measure_ratio_curve: no rates");
  std::vector<RatioPoint> curve;
  curve.reserve(cfg.rates_bps.size());
  for (double rate : cfg.rates_bps) {
    probe::StreamSpec spec = probe::StreamSpec::periodic(
        rate, cfg.packet_size, cfg.packets_per_stream);
    stats::RunningStats acc;
    for (std::size_t s = 0; s < cfg.streams_per_rate; ++s) {
      probe::StreamResult res =
          sc.session().send_stream_now(spec, cfg.inter_stream_gap);
      double ratio = res.rate_ratio();
      if (ratio > 0.0) acc.add(ratio);
    }
    if (sc.traffic_active_until() != 0 &&
        sc.simulator().now() >= sc.traffic_active_until())
      throw std::logic_error(
          "measure_ratio_curve: cross traffic expired mid-sweep; use "
          "measure_ratio_curve_fresh or raise the traffic horizon");
    curve.push_back({rate, acc.mean(), acc.stddev(), acc.count()});
  }
  return curve;
}

std::vector<RatioPoint> measure_ratio_curve_fresh(
    const std::function<Scenario(std::uint64_t seed)>& make_scenario,
    const RatioCurveConfig& cfg, std::size_t jobs) {
  if (cfg.rates_bps.empty())
    throw std::invalid_argument("measure_ratio_curve_fresh: no rates");
  // Each rate point owns a whole fresh world (Simulator/Scenario/Rng), so
  // the sweep parallelizes at the replication level; collecting results by
  // task index keeps the curve identical to the serial sweep.  Seeds stay
  // 1, 2, ... per rate point, as the serial version always used.
  runner::BatchRunner batch(jobs);
  return batch.map(cfg.rates_bps.size(), [&](std::size_t i) {
    Scenario sc = make_scenario(static_cast<std::uint64_t>(i) + 1);
    RatioCurveConfig one = cfg;
    one.rates_bps = {cfg.rates_bps[i]};
    return measure_ratio_curve(sc, one).front();
  });
}

std::vector<double> collect_direct_samples(Scenario& sc, double tight_capacity_bps,
                                           double input_rate_bps,
                                           sim::SimTime stream_duration,
                                           std::uint32_t packet_size,
                                           std::size_t count,
                                           sim::SimTime inter_stream_gap) {
  est::DirectConfig dc;
  dc.tight_capacity_bps = tight_capacity_bps;
  dc.input_rate_bps = input_rate_bps;
  dc.packet_size = packet_size;
  dc.stream_duration = stream_duration;
  dc.stream_count = 1;  // we drive sampling ourselves
  est::DirectProber prober(dc);

  std::vector<double> samples;
  samples.reserve(count);
  std::size_t attempts = 0;
  while (samples.size() < count && attempts < 3 * count) {
    ++attempts;
    if (auto a = prober.sample(sc.transport())) samples.push_back(*a);
    sc.simulator().run_until(sc.simulator().now() + inter_stream_gap);
  }
  return samples;
}

std::vector<double> collect_pair_samples(Scenario& sc, double tight_capacity_bps,
                                         std::uint32_t packet_size,
                                         std::size_t count,
                                         sim::SimTime mean_pair_gap) {
  probe::StreamSpec spec = probe::StreamSpec::pair_train(
      tight_capacity_bps, packet_size, count, mean_pair_gap, sc.rng());
  probe::StreamResult res = sc.session().send_stream_now(spec);
  double gin =
      sim::to_seconds(sim::transmission_time(packet_size, tight_capacity_bps));
  std::vector<double> samples;
  for (std::size_t p = 0; p + 1 < res.packets.size(); p += 2) {
    const auto& a = res.packets[p];
    const auto& b = res.packets[p + 1];
    if (a.lost || b.lost) continue;
    double gout = sim::to_seconds(b.received - a.received);
    double s = tight_capacity_bps * (1.0 - (gout - gin) / gin);
    samples.push_back(std::clamp(s, 0.0, tight_capacity_bps));
  }
  return samples;
}

std::vector<std::vector<double>> collect_direct_samples_batch(
    const std::function<Scenario(std::uint64_t seed)>& make_scenario,
    double tight_capacity_bps, double input_rate_bps,
    sim::SimTime stream_duration, std::uint32_t packet_size,
    std::size_t count_per_replication, sim::SimTime inter_stream_gap,
    std::size_t replications, std::uint64_t base_seed, std::size_t jobs) {
  runner::BatchRunner batch(jobs);
  return batch.map_seeded(
      replications, base_seed, [&](std::size_t, std::uint64_t seed) {
        Scenario sc = make_scenario(seed);
        return collect_direct_samples(sc, tight_capacity_bps, input_rate_bps,
                                      stream_duration, packet_size,
                                      count_per_replication, inter_stream_gap);
      });
}

std::vector<std::vector<double>> collect_pair_samples_batch(
    const std::function<Scenario(std::uint64_t seed)>& make_scenario,
    double tight_capacity_bps, std::uint32_t packet_size,
    std::size_t count_per_replication, sim::SimTime mean_pair_gap,
    std::size_t replications, std::uint64_t base_seed, std::size_t jobs) {
  runner::BatchRunner batch(jobs);
  return batch.map_seeded(
      replications, base_seed, [&](std::size_t, std::uint64_t seed) {
        Scenario sc = make_scenario(seed);
        return collect_pair_samples(sc, tight_capacity_bps, packet_size,
                                    count_per_replication, mean_pair_gap);
      });
}

probe::StreamResult capture_stream(Scenario& sc, double rate_bps,
                                   std::uint32_t packet_size,
                                   std::size_t packet_count) {
  probe::StreamSpec spec =
      probe::StreamSpec::periodic(rate_bps, packet_size, packet_count);
  return sc.session().send_stream_now(spec);
}

std::vector<double> ground_truth_series(Scenario& sc, sim::SimTime t0,
                                        sim::SimTime t1, sim::SimTime tau) {
  sim::Path& path = sc.path();
  path.sync_hybrid(t1);  // no-op in packet mode
  std::size_t tight = path.tight_link(t0, t1);
  return path.link(tight).meter().avail_bw_series(t0, t1, tau,
                                                  /*exclude_measurement=*/true);
}

}  // namespace abw::core
