// Console reporting helpers for the bench binaries: aligned tables,
// Mb/s / percentage formatting, ASCII series plots, and paper-vs-measured
// verdict lines (EXPERIMENTS.md is assembled from these outputs).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace abw::core {

/// Formats bits/s as "NN.N Mbps".
std::string mbps(double bps, int precision = 1);

/// Formats a fraction as "NN.N%".
std::string pct(double fraction, int precision = 1);

/// Fixed-width text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have as many cells as there are headers.
  void row(std::vector<std::string> cells);

  /// Renders with column alignment.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a banner line naming the experiment.
void print_header(std::ostream& os, const std::string& experiment,
                  const std::string& paper_ref);

/// Prints a paper-claim check: the qualitative statement, what we
/// measured, and MATCH / MISMATCH.
void print_check(std::ostream& os, const std::string& claim,
                 const std::string& measured, bool match);

/// Renders a y-vs-x series as a crude ASCII plot (for OWD time series and
/// sample paths in bench output).
std::string ascii_plot(const std::vector<double>& ys, std::size_t height = 12,
                       std::size_t width = 72);

}  // namespace abw::core
