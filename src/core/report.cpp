#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace abw::core {

std::string mbps(double bps, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f Mbps", precision, bps / 1e6);
  return buf;
}

std::string pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("Table: cell count mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) os << ' ';
    }
    os << '\n';
  };
  emit(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c)
    rule += "  " + std::string(widths[c], '-');
  os << rule << '\n';
  for (const auto& r : rows_) emit(r);
}

void print_header(std::ostream& os, const std::string& experiment,
                  const std::string& paper_ref) {
  os << "\n=== " << experiment << "  [" << paper_ref << "] ===\n";
}

void print_check(std::ostream& os, const std::string& claim,
                 const std::string& measured, bool match) {
  os << "  paper: " << claim << "\n  ours:  " << measured << "\n  => "
     << (match ? "MATCH" : "MISMATCH") << "\n";
}

std::string ascii_plot(const std::vector<double>& ys, std::size_t height,
                       std::size_t width) {
  if (ys.empty() || height < 2 || width < 2) return "(no data)\n";
  double lo = *std::min_element(ys.begin(), ys.end());
  double hi = *std::max_element(ys.begin(), ys.end());
  if (hi - lo < 1e-12) hi = lo + 1.0;

  std::vector<std::string> grid(height, std::string(width, ' '));
  for (std::size_t x = 0; x < width; ++x) {
    // Downsample: average the ys bucket mapped to this column.
    std::size_t b0 = x * ys.size() / width;
    std::size_t b1 = std::max(b0 + 1, (x + 1) * ys.size() / width);
    double v = 0.0;
    for (std::size_t i = b0; i < b1 && i < ys.size(); ++i) v += ys[i];
    v /= static_cast<double>(std::min(b1, ys.size()) - b0);
    auto y = static_cast<std::size_t>((v - lo) / (hi - lo) *
                                      static_cast<double>(height - 1));
    y = std::min(y, height - 1);
    grid[height - 1 - y][x] = '*';
  }

  char label[64];
  std::string out;
  std::snprintf(label, sizeof label, "%12.4g +", hi);
  out += label;
  out += grid.front() + "\n";
  for (std::size_t r = 1; r + 1 < height; ++r)
    out += "             |" + grid[r] + "\n";
  std::snprintf(label, sizeof label, "%12.4g +", lo);
  out += label;
  out += grid.back() + "\n";
  return out;
}

}  // namespace abw::core
