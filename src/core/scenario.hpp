// Scenario: one self-contained simulated measurement setup — simulator,
// path, cross traffic, and a probing session — with the ground truth
// exposed.  Every experiment in the paper is an instance of one of two
// topologies:
//
//  * single hop: capacity Ct, one cross-traffic source of mean rate Rc,
//    avail-bw A = Ct - Rc (Figs. 2, 3, 5, 7, Table 1);
//  * multi hop: H identical links, each loaded by an independent
//    one-hop-persistent source (enters link i, exits at i+1), so several
//    links tie for the minimum avail-bw (Fig. 4).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "probe/session.hpp"
#include "probe/transport.hpp"
#include "sim/hybrid.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "traffic/generator.hpp"
#include "traffic/hybrid_source.hpp"
#include "traffic/packet_size.hpp"

namespace abw::core {

/// Cross-traffic models the paper's experiments use.
enum class CrossModel {
  kCbr,          ///< periodic: the fluid-like baseline
  kPoisson,      ///< exponential interarrivals
  kParetoOnOff,  ///< heavy-tailed bursts (shape 1.5, ON 1-10 packets)
  kFgn,          ///< self-similar: fGn-rate-modulated Poisson (Fig. 1 trace)
};

const char* to_string(CrossModel m);

/// Builds one cross-traffic generator of `model` against (sim, path):
/// the factory behind every scenario topology (and ParallelScenario's
/// per-domain construction).  `one_hop` selects one-hop-persistent
/// routing, `trimodal` the 40/576/1500 Poisson size mix, `onoff_peak`
/// the Pareto ON rate (0 = capacity).
std::unique_ptr<traffic::Generator> make_cross_generator(
    sim::Simulator& sim, sim::Path& path, std::size_t hop, bool one_hop,
    std::uint32_t flow_id, stats::Rng rng, CrossModel model, double rate_bps,
    std::uint32_t packet_size, bool trimodal, double onoff_peak,
    double capacity_bps);

/// Everything one cross-traffic source needs beyond its placement: the
/// arrival model and its parameters.  One struct instead of six loose
/// arguments, so every topology builder reads the same way.
struct CrossSpec {
  CrossModel model = CrossModel::kPoisson;
  double rate_bps = 0.0;
  std::uint32_t packet_size = 1500;
  bool trimodal = false;       ///< Poisson only: 40/576/1500 mix
  double onoff_peak = 0.0;     ///< Pareto ON-OFF only; 0 = capacity
  double capacity_bps = 0.0;   ///< the fed link's capacity (ON-OFF peak cap)
};

/// Owns the cross-traffic sources of a scenario and funnels every
/// topology's construction — single-hop, multi-hop, partitioned domains,
/// mesh edges — through ONE factory path: build the generator, then
/// either wrap it in a HybridCrossSource (SimMode::kHybrid) or start it
/// as a discrete event source.  Before this class each scenario carried
/// its own copy of that wrap-or-start branch; mode-handling bugs had to
/// be fixed N times.
class CrossTraffic {
 public:
  /// Builds one source of `spec` on (sim, path, hop) and activates it
  /// over [t0, horizon).  The caller owns seeding policy: `rng` is
  /// consumed as the source's private stream.
  void attach(sim::Simulator& sim, sim::Path& path, std::size_t hop,
              bool one_hop, std::uint32_t flow_id, stats::Rng rng,
              sim::SimMode mode, const CrossSpec& spec, sim::SimTime t0,
              sim::SimTime horizon);

  /// Adopts a caller-built generator (e.g. a traffic::TraceGenerator)
  /// through the same wrap-or-start path.  `gen` must target (sim, path)
  /// and not have been started.
  void adopt(sim::Simulator& sim, sim::Path& path, std::size_t hop,
             bool one_hop, std::uint32_t flow_id, sim::SimMode mode,
             std::unique_ptr<traffic::Generator> gen, sim::SimTime t0,
             sim::SimTime horizon);

  std::size_t source_count() const {
    return generators_.size() + hybrid_sources_.size();
  }

 private:
  std::vector<std::unique_ptr<traffic::Generator>> generators_;
  // Hybrid-mode sources (own their generators).
  std::vector<std::unique_ptr<traffic::HybridCrossSource>> hybrid_sources_;
};

/// Single-hop scenario parameters.  Defaults reproduce the paper's
/// simulation setting: Ct = 50 Mb/s, avail-bw 25 Mb/s.
struct SingleHopConfig {
  double capacity_bps = 50e6;
  double cross_rate_bps = 25e6;
  /// kHybrid advances the cross traffic as a fluid between probe streams
  /// (see sim/hybrid.hpp); kPacket is the bit-exact event-driven baseline.
  sim::SimMode mode = sim::SimMode::kPacket;
  CrossModel model = CrossModel::kPoisson;
  std::uint32_t cross_packet_size = 1500;
  bool trimodal_cross_sizes = false;  ///< Poisson only: 40/576/1500 mix
  double onoff_peak_rate_bps = 0.0;   ///< Pareto ON-OFF only; 0 = capacity
  sim::SimTime propagation_delay = 1 * sim::kMillisecond;
  std::size_t queue_limit_bytes = 2 << 20;
  double random_loss_prob = 0.0;  ///< per-packet non-congestion loss
  sim::SimTime traffic_horizon = 600 * sim::kSecond;  ///< generator lifetime
  sim::SimTime warmup = 2 * sim::kSecond;
  std::uint64_t seed = 1;
};

/// Multi-hop scenario parameters (Fig. 4).  Every hop has the same
/// capacity; hops listed in `loaded_hops` get an independent one-hop
/// cross source of `cross_rate_bps` (the tight links); others are idle.
struct MultiHopConfig {
  std::size_t hop_count = 5;
  std::vector<std::size_t> loaded_hops = {0, 2, 4};
  double capacity_bps = 50e6;
  double cross_rate_bps = 25e6;
  /// See SingleHopConfig::mode.  Each loaded hop carries exactly one
  /// one-hop source, so the whole topology fits the hybrid envelope.
  sim::SimMode mode = sim::SimMode::kPacket;
  CrossModel model = CrossModel::kPoisson;
  std::uint32_t cross_packet_size = 1500;
  sim::SimTime propagation_delay = 1 * sim::kMillisecond;
  std::size_t queue_limit_bytes = 2 << 20;
  double random_loss_prob = 0.0;  ///< per-packet non-congestion loss, per hop
  sim::SimTime traffic_horizon = 600 * sim::kSecond;
  sim::SimTime warmup = 2 * sim::kSecond;
  std::uint64_t seed = 1;
};

/// A ready-to-probe simulated path.  Construction starts the cross
/// traffic and runs the warmup, so the first probe sees steady state.
class Scenario {
 public:
  /// The paper's canonical single-hop setup.
  static Scenario single_hop(const SingleHopConfig& cfg);

  /// The Fig. 4 multi-bottleneck setup.
  static Scenario multi_hop(const MultiHopConfig& cfg);

  /// A custom path with per-hop link configs and no traffic; add
  /// generators through path()/simulator() directly.
  static Scenario custom(const std::vector<sim::LinkConfig>& links,
                         std::uint64_t seed);

  Scenario(Scenario&&) = default;

  /// Attaches a caller-built generator (e.g. a traffic::TraceGenerator
  /// replaying a recorded workload) as cross traffic on `entry_hop`,
  /// active over [now, horizon).  In kHybrid mode the generator is
  /// wrapped in a HybridCrossSource, exactly as the factory topologies
  /// do; the hybrid validity envelope (one fluid source per link)
  /// is the caller's responsibility.  The generator must have been
  /// constructed against this scenario's simulator() and path() and not
  /// yet started.
  void add_cross_source(std::unique_ptr<traffic::Generator> gen,
                        std::size_t entry_hop, bool one_hop,
                        std::uint32_t flow_id, sim::SimMode mode,
                        sim::SimTime horizon);

  sim::Simulator& simulator() { return *sim_; }
  sim::Path& path() { return *path_; }
  probe::ProbeSession& session() { return *session_; }
  stats::Rng& rng() { return *rng_; }

  /// The session as a probe::Transport — what estimators take since the
  /// transport redesign.  Lazily built; forwards 1:1 to session().
  probe::SimTransport& transport() {
    if (!transport_) transport_ = std::make_unique<probe::SimTransport>(*session_);
    return *transport_;
  }

  /// Configured long-run avail-bw (capacity minus offered cross rate on
  /// the tight link) — the experiment's design value A.
  double nominal_avail_bw() const { return nominal_avail_bw_; }

  /// Time at which the cross-traffic generators go silent.  Experiments
  /// must finish before this or they measure an idle path.
  sim::SimTime traffic_active_until() const { return traffic_until_; }

  /// Measured ground-truth end-to-end avail-bw over [t1, t2) (Eq. 3),
  /// excluding the measurement's own traffic — what an estimator running
  /// in that window should report.
  double ground_truth(sim::SimTime t1, sim::SimTime t2) const {
    return path_->cross_avail_bw(t1, t2);
  }

  /// Measured ground truth over the trailing `window` ending now.
  double recent_ground_truth(sim::SimTime window) const;

  /// Wires `sink` into every layer of the scenario at once: all path
  /// links (packet/busy/fault/capacity events) and the probe session
  /// (stream boundaries).  nullptr detaches.  Tool decision events are
  /// wired separately through ToolOptions::trace /
  /// Estimator::set_observer.  The sink is not owned and must outlive
  /// the scenario (or be detached first).
  void set_trace(obs::TraceSink* sink);

  /// Snapshots the scenario's current state into `m`: per-link counters
  /// ("link.<name>.packets_in", drops, fault accounting, bytes), per-link
  /// capacity gauges, session totals ("session.streams", ...), and the
  /// simulator's event count ("sim.events").  Deterministic for a seeded
  /// run; call at the end of a cell and serialize with
  /// MetricsRegistry::to_json().
  void snapshot_metrics(obs::MetricsRegistry& m) const;

 private:
  Scenario(std::uint64_t seed);

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<stats::Rng> rng_;
  std::unique_ptr<sim::Path> path_;
  // Cross-traffic sources (incl. hybrid wrappers); destroyed before path_.
  CrossTraffic cross_;
  std::unique_ptr<probe::ProbeSession> session_;
  std::unique_ptr<probe::SimTransport> transport_;  // lazy; over *session_
  double nominal_avail_bw_ = 0.0;
  sim::SimTime traffic_until_ = 0;
};

}  // namespace abw::core
