#include "core/parallel_scenario.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "probe/receiver_state.hpp"
#include "runner/batch.hpp"
#include "stats/rng.hpp"

namespace abw::core {

// Same dedup/reorder semantics as probe::ProbeSession::on_probe, minus
// the receiver clock model: the shared probe::ReceiverState does the
// accounting (duplicates keep the first copy's timestamp, a first arrival
// behind a higher seq counts as reordered).
class ParallelScenario::Receiver final : public sim::PacketHandler {
 public:
  explicit Receiver(sim::Simulator& sim) : sim_(sim) {}

  void begin_stream(probe::StreamResult* r) {
    active_ = r;
    received_ = 0;
    recv_.reset();
  }
  void end_stream() { active_ = nullptr; }
  std::size_t received() const { return received_; }

  void handle(sim::Packet pkt) override {
    if (active_ == nullptr || pkt.type != sim::PacketType::kProbe ||
        pkt.stream_id != active_->stream_id)
      return;
    probe::ProbeRecord* rec = recv_.accept(*active_, pkt.seq);
    if (rec == nullptr) return;
    rec->received = sim_.now();
    ++received_;
  }

 private:
  sim::Simulator& sim_;  // the final domain's simulator (arrival clock)
  probe::StreamResult* active_ = nullptr;
  std::size_t received_ = 0;
  probe::ReceiverState recv_;
};

ParallelScenario::ParallelScenario(const ParallelScenarioConfig& cfg)
    : cfg_(cfg) {
  if (cfg.hop_count == 0)
    throw std::invalid_argument("ParallelScenario: no hops");
  const std::size_t flows = std::max<std::size_t>(1, cfg.flows_per_hop);
  const double hop_load = cfg.cross_rate_bps * static_cast<double>(flows);
  if (hop_load >= cfg.capacity_bps)
    throw std::invalid_argument(
        "ParallelScenario: per-hop cross load must be below capacity");

  sim::LinkConfig link;
  link.capacity_bps = cfg.capacity_bps;
  link.propagation_delay = cfg.propagation_delay;
  link.queue_limit_bytes = cfg.queue_limit_bytes;
  std::vector<sim::LinkConfig> links(cfg.hop_count, link);

  sim::PartitionPlan plan = cfg.cuts.empty()
                                ? sim::plan_partition(links, cfg.domains)
                                : sim::plan_from_cuts(links, cfg.cuts);
  // One window size for EVERY partition of this uniform topology (each
  // cut's latency equals the hop delay, so this never exceeds the plan's
  // lookahead).  run_until_condition stops at a window boundary; a
  // partition-dependent window would shift the next stream's start time
  // and break cut invariance.
  if (cfg.propagation_delay > 0) plan.lookahead = cfg.propagation_delay;
  ppath_ = std::make_unique<sim::ParallelPath>(links, plan, cfg.threads);

  std::vector<std::size_t> loaded = cfg.loaded_hops;
  if (loaded.empty())
    for (std::size_t h = 0; h < cfg.hop_count; ++h) loaded.push_back(h);

  CrossSpec spec;
  spec.model = cfg.model;
  spec.packet_size = cfg.cross_packet_size;
  spec.capacity_bps = cfg.capacity_bps;
  for (std::size_t hop : loaded) {
    if (hop >= cfg.hop_count)
      throw std::invalid_argument("ParallelScenario: loaded hop out of range");
    const std::size_t d = plan.domain_of(hop);
    sim::Domain& dom = ppath_->domain(d);
    const std::size_t local = hop - plan.domain_begin(d);
    // Seeds are a function of the GLOBAL hop (and flow) index only, so
    // every legal partition builds the identical traffic process.
    const std::uint64_t hop_seed = runner::derive_seed(cfg.seed, hop);
    const std::uint32_t base_id =
        1000 + static_cast<std::uint32_t>(hop * flows);
    if (cfg.mode == sim::SimMode::kHybrid) {
      // One aggregate fluid source models the superposition (exact in
      // distribution for Poisson) — the one-fluid-source-per-link envelope.
      spec.rate_bps = hop_load;
      cross_.attach(dom.simulator(), dom.path(), local, /*one_hop=*/true,
                    base_id, stats::Rng(hop_seed), cfg.mode, spec, 0,
                    cfg.traffic_horizon);
    } else {
      spec.rate_bps = cfg.cross_rate_bps;
      for (std::size_t f = 0; f < flows; ++f)
        cross_.attach(dom.simulator(), dom.path(), local, /*one_hop=*/true,
                      base_id + static_cast<std::uint32_t>(f),
                      stats::Rng(runner::derive_seed(hop_seed, f)), cfg.mode,
                      spec, 0, cfg.traffic_horizon);
    }
  }

  receiver_ = std::make_unique<Receiver>(
      ppath_->domain(ppath_->domain_count() - 1).simulator());
  ppath_->set_receiver(receiver_.get());
  nominal_avail_bw_ = cfg.capacity_bps - hop_load;
  ppath_->run_until(cfg.warmup);
}

ParallelScenario::~ParallelScenario() = default;

probe::StreamResult ParallelScenario::send_periodic_stream(
    double rate_bps, std::uint32_t size, std::size_t count,
    sim::SimTime lead_in) {
  probe::StreamSpec spec = probe::StreamSpec::periodic(rate_bps, size, count);
  const sim::SimTime start = ppath_->now() + lead_in;

  probe::StreamResult result;
  result.stream_id = next_stream_id_++;
  result.packets.resize(spec.packets.size());

  sim::Simulator* sim0 = &ppath_->domain(0).simulator();
  sim::Path* path0 = &ppath_->domain(0).path();
  for (std::size_t i = 0; i < spec.packets.size(); ++i) {
    const probe::ProbePacketSpec& ps = spec.packets[i];
    result.packets[i].seq = static_cast<std::uint32_t>(i);
    result.packets[i].size_bytes = ps.size_bytes;
    result.packets[i].sent = start + ps.offset;
    result.packets[i].lost = true;  // cleared on arrival
    const std::uint32_t sid = result.stream_id;
    const std::uint32_t sz = ps.size_bytes;
    const std::uint32_t seq = static_cast<std::uint32_t>(i);
    sim0->at(start + ps.offset, [sim0, path0, sid, sz, seq] {
      sim::Packet pkt;
      pkt.id = sim0->next_packet_id();
      pkt.type = sim::PacketType::kProbe;
      pkt.measurement = true;  // excluded from cross-traffic ground truth
      pkt.size_bytes = sz;
      pkt.stream_id = sid;
      pkt.seq = seq;
      pkt.send_time = sim0->now();
      path0->inject(0, pkt);
    });
  }

  receiver_->begin_stream(&result);

  // Hybrid mode: every domain's sources go discrete while the stream can
  // be in flight anywhere on the path (same guard as ProbeSession).
  bool hybrid = false;
  for (std::size_t d = 0; d < ppath_->domain_count(); ++d)
    hybrid = hybrid || ppath_->domain(d).path().hybrid();
  if (hybrid) {
    sim::SimTime open = start - 2 * sim::kMillisecond;
    if (open < ppath_->now()) open = ppath_->now();
    for (std::size_t d = 0; d < ppath_->domain_count(); ++d)
      ppath_->domain(d).path().open_packet_window(open);
  }

  const sim::SimTime deadline =
      start + spec.packets.back().offset + 2 * sim::kSecond;
  Receiver* rx = receiver_.get();
  ppath_->run_until_condition(deadline,
                              [rx, count] { return rx->received() >= count; });

  if (hybrid)
    for (std::size_t d = 0; d < ppath_->domain_count(); ++d)
      ppath_->domain(d).path().close_packet_window();
  receiver_->end_stream();
  return result;
}

void ParallelScenario::snapshot_metrics(obs::MetricsRegistry& m) const {
  for (std::size_t g = 0; g < ppath_->hop_count(); ++g) {
    const sim::Link& link = ppath_->link(g);
    const sim::LinkStats& s = link.stats();
    // Keyed by GLOBAL hop index: per-domain Path names restart at link0.
    const std::string p = "link." + std::to_string(g) + ".";
    m.counter(p + "packets_in").set(s.packets_in);
    m.counter(p + "packets_out").set(s.packets_out);
    m.counter(p + "packets_dropped").set(s.packets_dropped);
    m.counter(p + "bytes_in").set(s.bytes_in);
    m.counter(p + "bytes_out").set(s.bytes_out);
    m.gauge(p + "capacity_bps").set(link.capacity_bps());
  }
  ppath_->snapshot_metrics(m);
}

}  // namespace abw::core
