// ParallelScenario: a multi-hop measurement setup driven by the
// conservative parallel DES engine (sim/domain.hpp) instead of one
// serial Simulator.
//
// The topology is the paper's Fig. 4 shape scaled up: H identical links,
// each loaded hop carrying independent one-hop-persistent cross traffic,
// partitioned into domains at high-latency links.  Two properties make
// the partitioned run comparable to — and testable against — a serial
// one:
//
//  * Cut-invariant seeding.  Every hop's generator RNG derives from
//    runner::derive_seed(seed, hop) (per flow:
//    derive_seed(derive_seed(seed, hop), flow)) — a function of the
//    GLOBAL hop index only, never of construction order or domain
//    membership.  Any legal partition of the same config therefore
//    builds bit-identical traffic processes, so per-link stats, probe
//    timestamps, and estimator outputs must agree across partitions
//    (pinned by tests/pdes_test.cpp).
//
//  * The conservative window protocol keeps results independent of the
//    worker-thread count for a fixed partition.
//
// Probing: ParallelScenario drives its own streams (probe::ProbeSession
// is bound to a single Simulator).  Sends are scheduled into domain 0;
// a recording receiver on the final domain fills a probe::StreamResult
// with the same dedup/reorder semantics as ProbeSession (minus receiver
// clock noise, which is orthogonal to the engine under test).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/scenario.hpp"
#include "obs/metrics.hpp"
#include "probe/stream_result.hpp"
#include "probe/stream_spec.hpp"
#include "sim/domain.hpp"
#include "sim/partition.hpp"

namespace abw::core {

/// Parameters for a partitioned multi-hop scenario.
struct ParallelScenarioConfig {
  std::size_t hop_count = 8;
  /// Hops carrying one-hop cross traffic; empty = every hop.
  std::vector<std::size_t> loaded_hops;
  double capacity_bps = 50e6;
  /// Offered cross rate PER FLOW on each loaded hop.
  double cross_rate_bps = 25e6;
  sim::SimMode mode = sim::SimMode::kPacket;
  CrossModel model = CrossModel::kPoisson;
  std::uint32_t cross_packet_size = 1500;
  /// Flows per loaded hop.  Packet mode instantiates each flow as a real
  /// generator; hybrid mode models the superposition as one aggregate
  /// source of flows_per_hop * cross_rate_bps (exact in distribution for
  /// Poisson, a rate-equivalent load model otherwise) to stay inside the
  /// one-fluid-source-per-link envelope.
  std::size_t flows_per_hop = 1;
  sim::SimTime propagation_delay = 5 * sim::kMillisecond;
  std::size_t queue_limit_bytes = 2 << 20;
  sim::SimTime traffic_horizon = 600 * sim::kSecond;
  sim::SimTime warmup = 2 * sim::kSecond;
  std::uint64_t seed = 1;
  /// Explicit cut links (global indices); empty = plan_partition(domains).
  std::vector<std::size_t> cuts;
  /// Automatic planning target when `cuts` is empty.
  std::size_t domains = 2;
  /// Worker threads (0 = one per domain; clamped to the domain count).
  std::size_t threads = 0;
};

/// A ready-to-probe partitioned path: construction plans the partition,
/// builds per-domain traffic with cut-invariant seeds, and runs the
/// warmup in lockstep windows.
class ParallelScenario {
 public:
  explicit ParallelScenario(const ParallelScenarioConfig& cfg);
  ~ParallelScenario();  // out of line: Receiver is incomplete here

  ParallelScenario(const ParallelScenario&) = delete;
  ParallelScenario& operator=(const ParallelScenario&) = delete;

  sim::ParallelPath& parallel() { return *ppath_; }
  const sim::ParallelPath& parallel() const { return *ppath_; }
  const sim::PartitionPlan& plan() const { return ppath_->plan(); }
  sim::SimTime now() const { return ppath_->now(); }

  /// Advances the whole partitioned simulation to `t`.
  void run_until(sim::SimTime t) { ppath_->run_until(t); }

  /// Sends one periodic probe stream of `count` packets of `size` bytes
  /// at `rate_bps`, starting `lead_in` after now.  Blocks (running
  /// windows) until every packet arrived or the drain timeout expires.
  probe::StreamResult send_periodic_stream(double rate_bps,
                                           std::uint32_t size,
                                           std::size_t count,
                                           sim::SimTime lead_in);

  /// Configured long-run avail-bw on a loaded hop.
  double nominal_avail_bw() const { return nominal_avail_bw_; }

  /// Measured ground-truth avail-bw over [t1, t2) excluding measurement
  /// traffic (paper Eq. 3, minimum over all global links).
  double ground_truth(sim::SimTime t1, sim::SimTime t2) const {
    return ppath_->cross_avail_bw(t1, t2);
  }

  /// Per-global-link stats plus the engine's pdes.* accounting.
  void snapshot_metrics(obs::MetricsRegistry& m) const;

 private:
  class Receiver;

  ParallelScenarioConfig cfg_;
  std::unique_ptr<sim::ParallelPath> ppath_;
  CrossTraffic cross_;
  std::unique_ptr<Receiver> receiver_;
  double nominal_avail_bw_ = 0.0;
  std::uint32_t next_stream_id_ = 1;
};

}  // namespace abw::core
