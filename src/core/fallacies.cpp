#include "core/fallacies.hpp"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <stdexcept>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "est/capacity.hpp"
#include "est/direct.hpp"
#include "est/pathload.hpp"
#include "stats/moments.hpp"
#include "stats/trend.hpp"
#include "tcp/tcp.hpp"
#include "traffic/poisson.hpp"
#include "trace/availbw_process.hpp"
#include "trace/synthetic_trace.hpp"

namespace abw::core {

namespace {

std::string fmt(const char* f, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

// Spread (stddev) of repeated k-sample Poisson sample means of A_tau,
// relative to the trace's long-run mean avail-bw.
double sample_mean_spread(const trace::AvailBwProcess& proc, std::size_t k,
                          sim::SimTime tau, std::size_t repeats,
                          stats::Rng& rng) {
  stats::RunningStats means;
  for (std::size_t r = 0; r < repeats; ++r)
    means.add(stats::mean(proc.poisson_samples(k, tau, rng)));
  return means.stddev() / proc.mean_avail_bw();
}

// --- 1. Pitfall: ignoring the variability of the avail-bw process -------
FallacyResult f1(std::uint64_t seed) {
  stats::Rng rng(seed);
  trace::SyntheticTraceConfig tc;
  tc.duration = 8 * sim::kSecond;
  trace::PacketTrace tr = trace::synthesize_selfsimilar_trace(tc, rng);
  trace::AvailBwProcess proc(tr);

  double e_short = sample_mean_spread(proc, 20, sim::kMillisecond, 30, rng);
  double e_long = sample_mean_spread(proc, 20, 100 * sim::kMillisecond, 30, rng);

  FallacyResult r{1, MisconceptionKind::kPitfall, fallacy_title(1),
                  e_short > 1.3 * e_long,
                  fmt("k=20 sample-mean rel. spread: tau=1ms -> %.1f%%, "
                      "tau=100ms -> %.1f%% (variance grows at short scales)",
                      e_short * 100, e_long * 100)};
  return r;
}

// --- 2. Pitfall: probing duration IS the averaging time scale -----------
FallacyResult f2(std::uint64_t seed) {
  SingleHopConfig sc;
  sc.seed = seed;
  Scenario s = Scenario::single_hop(sc);

  auto short_s = collect_direct_samples(s, sc.capacity_bps, 40e6,
                                        25 * sim::kMillisecond, 1500, 60,
                                        20 * sim::kMillisecond);
  auto long_s = collect_direct_samples(s, sc.capacity_bps, 40e6,
                                       200 * sim::kMillisecond, 1500, 60,
                                       20 * sim::kMillisecond);
  double sd_short = stats::stddev(short_s);
  double sd_long = stats::stddev(long_s);

  return {2, MisconceptionKind::kPitfall, fallacy_title(2),
          sd_short > 1.2 * sd_long,
          fmt("direct-probing sample stddev: 25ms streams -> %.2f Mbps, "
              "200ms streams -> %.2f Mbps (duration sets the time scale)",
              sd_short / 1e6, sd_long / 1e6)};
}

// --- 3. Fallacy: faster estimation is better -----------------------------
FallacyResult f3(std::uint64_t seed) {
  SingleHopConfig sc;
  sc.seed = seed;
  Scenario s = Scenario::single_hop(sc);

  stats::RunningStats means_small, means_large;
  for (int rep = 0; rep < 12; ++rep) {
    auto a = collect_direct_samples(s, sc.capacity_bps, 40e6,
                                    50 * sim::kMillisecond, 1500, 5,
                                    10 * sim::kMillisecond);
    auto b = collect_direct_samples(s, sc.capacity_bps, 40e6,
                                    50 * sim::kMillisecond, 1500, 25,
                                    10 * sim::kMillisecond);
    means_small.add(stats::mean(a));
    means_large.add(stats::mean(b));
  }
  double spread_small = means_small.stddev();
  double spread_large = means_large.stddev();

  return {3, MisconceptionKind::kFallacy, fallacy_title(3),
          spread_small > 1.2 * spread_large,
          fmt("estimate spread with k=5 streams: %.2f Mbps vs k=25 streams: "
              "%.2f Mbps (fewer streams = faster but noisier)",
              spread_small / 1e6, spread_large / 1e6)};
}

// --- 4. Fallacy: packet pairs are as good as packet trains ---------------
FallacyResult f4(std::uint64_t seed) {
  auto pair_error = [&](std::uint32_t cross_size) {
    SingleHopConfig sc;
    sc.seed = seed + cross_size;
    sc.cross_packet_size = cross_size;
    Scenario s = Scenario::single_hop(sc);
    stats::RunningStats err;
    for (int rep = 0; rep < 10; ++rep) {
      auto samples = collect_pair_samples(s, sc.capacity_bps, 1500, 20,
                                          10 * sim::kMillisecond);
      if (samples.empty()) continue;
      err.add(std::abs(stats::mean(samples) - s.nominal_avail_bw()) /
              s.nominal_avail_bw());
    }
    return err.mean();
  };

  double err_small = pair_error(40);
  double err_large = pair_error(1500);

  return {4, MisconceptionKind::kFallacy, fallacy_title(4),
          err_large > 1.5 * err_small,
          fmt("k=20-pair estimate error: Lc=40B cross -> %.1f%%, Lc=1500B "
              "cross -> %.1f%% (discrete large packets break pairs)",
              err_small * 100, err_large * 100)};
}

// --- 5. Pitfall: capacity tools find the narrow link, not the tight link -
FallacyResult f5(std::uint64_t seed) {
  // Hop 0: 100 Mb/s with 80 Mb/s cross => TIGHT (A = 20, Ct = 100).
  // Hop 1: 40 Mb/s idle               => NARROW (A = 40, Cn = 40).
  std::vector<sim::LinkConfig> links(2);
  links[0].capacity_bps = 100e6;
  links[1].capacity_bps = 40e6;
  links[0].propagation_delay = links[1].propagation_delay = sim::kMillisecond;
  Scenario s = Scenario::custom(links, seed);

  stats::Rng grng = s.rng().fork();
  traffic::PoissonGenerator cross(s.simulator(), s.path(), 0, /*one_hop=*/true,
                                  1, std::move(grng), 80e6,
                                  traffic::SizeDistribution::fixed(1500));
  cross.start(0, 600 * sim::kSecond);
  s.simulator().run_until(2 * sim::kSecond);

  est::CapacityConfig cc;
  est::CapacityEstimator cap(cc, s.rng().fork());
  double cn = cap.estimate_capacity(s.session());

  auto direct_with = [&](double ct) {
    est::DirectConfig dc;
    dc.tight_capacity_bps = ct;
    dc.input_rate_bps = 30e6;  // above the true A = 20 Mb/s
    dc.stream_count = 30;
    est::DirectProber p(dc);
    est::Estimate e = p.estimate(s.session());
    return e.valid ? e.point_bps() : -1.0;
  };
  double a_wrong = direct_with(cn);     // capacity-tool value (narrow link)
  double a_right = direct_with(100e6);  // true tight-link capacity

  double truth = 20e6;
  bool cap_found_narrow = std::abs(cn - 40e6) / 40e6 < 0.15;
  bool wrong_worse = std::abs(a_wrong - truth) > 2.0 * std::abs(a_right - truth);

  return {5, MisconceptionKind::kPitfall, fallacy_title(5),
          cap_found_narrow && wrong_worse,
          fmt("capacity tool: %.1f Mbps (narrow Cn=40, tight Ct=100); direct "
              "probing says A=%.1f with Cn but A=%.1f with Ct (truth 20.0)",
              cn / 1e6, a_wrong / 1e6, a_right / 1e6)};
}

// --- 6. Pitfall: ignoring cross-traffic burstiness ------------------------
FallacyResult f6(std::uint64_t seed) {
  auto ratio_below_a = [&](CrossModel m) {
    SingleHopConfig sc;
    sc.seed = seed;
    sc.model = m;
    Scenario s = Scenario::single_hop(sc);
    RatioCurveConfig rc;
    rc.rates_bps = {20e6};  // Ri = 20 < A = 25
    rc.streams_per_rate = 60;
    return measure_ratio_curve(s, rc).front().mean_ratio;
  };

  double cbr = ratio_below_a(CrossModel::kCbr);
  double pareto = ratio_below_a(CrossModel::kParetoOnOff);

  return {6, MisconceptionKind::kPitfall, fallacy_title(6),
          cbr > 0.995 && pareto < 0.995,
          fmt("mean Ro/Ri at Ri=20 < A=25 Mbps: CBR %.4f vs Pareto ON-OFF "
              "%.4f (burstiness drops Ro below Ri before A)",
              cbr, pareto)};
}

// --- 7. Pitfall: ignoring multiple bottlenecks ----------------------------
FallacyResult f7(std::uint64_t seed) {
  auto ratio_at_a = [&](std::size_t tight_links) {
    MultiHopConfig mc;
    mc.seed = seed;
    mc.hop_count = tight_links;
    mc.loaded_hops.clear();
    for (std::size_t h = 0; h < tight_links; ++h) mc.loaded_hops.push_back(h);
    Scenario s = Scenario::multi_hop(mc);
    RatioCurveConfig rc;
    rc.rates_bps = {25e6};  // Ri = A
    rc.streams_per_rate = 60;
    return measure_ratio_curve(s, rc).front().mean_ratio;
  };

  double one = ratio_at_a(1);
  double five = ratio_at_a(5);

  return {7, MisconceptionKind::kPitfall, fallacy_title(7),
          five < one - 0.01,
          fmt("mean Ro/Ri at Ri=A: 1 tight link %.4f vs 5 tight links %.4f "
              "(more tight links -> lower output rate at the same Ri)",
              one, five)};
}

// --- 8. Fallacy: increasing OWDs is equivalent to Ro < Ri -----------------
FallacyResult f8(std::uint64_t seed) {
  SingleHopConfig sc;
  sc.seed = seed;
  sc.model = CrossModel::kParetoOnOff;
  Scenario s = Scenario::single_hop(sc);

  // Probe below the avail-bw; bursts will occasionally depress Ro.
  int contradictions = 0, streams = 0;
  std::string example;
  for (int i = 0; i < 150 && contradictions == 0; ++i) {
    probe::StreamResult res = capture_stream(s, 19e6, 1500, 160);
    if (!res.complete()) continue;
    ++streams;
    double ratio = res.rate_ratio();
    stats::Trend t = stats::combined_trend(res.owds_seconds());
    if (ratio < 0.99 && t == stats::Trend::kNonIncreasing) {
      ++contradictions;
      example = fmt("stream %d: Ro/Ri=%.3f (looks congested) but OWD trend "
                    "is non-increasing (correct: Ri=19 < A=25)",
                    i, ratio);
    }
  }

  return {8, MisconceptionKind::kFallacy, fallacy_title(8),
          contradictions > 0,
          contradictions > 0
              ? example
              : fmt("no Ro<Ri / flat-OWD contradiction in %d streams", streams)};
}

// --- 9. Fallacy: iterative probing converges to a single value ------------
FallacyResult f9(std::uint64_t seed) {
  SingleHopConfig sc;
  sc.seed = seed;
  sc.model = CrossModel::kParetoOnOff;
  Scenario s = Scenario::single_hop(sc);

  est::PathloadConfig pc;
  pc.min_rate_bps = 5e6;
  pc.max_rate_bps = 50e6;
  pc.streams_per_fleet = 6;
  est::Pathload pl(pc);
  est::Estimate e = pl.estimate(s.session());

  double width = e.high_bps - e.low_bps;
  return {9, MisconceptionKind::kFallacy, fallacy_title(9),
          e.valid && width > 0.1 * s.nominal_avail_bw(),
          fmt("pathload under bursty cross traffic: range [%.1f, %.1f] Mbps "
              "(width %.1f = %.0f%% of A) — a variation range, not a point",
              e.low_bps / 1e6, e.high_bps / 1e6, width / 1e6,
              100 * width / s.nominal_avail_bw())};
}

// --- 10. Pitfall: validating against bulk TCP throughput ------------------
FallacyResult f10(std::uint64_t seed) {
  SingleHopConfig sc;
  sc.seed = seed;
  sc.model = CrossModel::kParetoOnOff;
  sc.capacity_bps = 50e6;
  sc.cross_rate_bps = 35e6;  // A = 15 Mb/s, as in Fig. 7
  Scenario s = Scenario::single_hop(sc);

  auto tcp_throughput = [&](std::uint32_t wr) {
    tcp::TcpReceiverHub hub;
    s.session().demux().register_handler(sim::PacketType::kTcpData, &hub);
    tcp::TcpConfig tc;
    tc.receiver_window = wr;
    // A WAN-like RTT so a small advertised window truly caps the rate:
    // Wr=8 segments over ~42 ms => ~2.2 Mb/s << A.
    tc.reverse_delay = 40 * sim::kMillisecond;
    tcp::TcpConnection conn(s.simulator(), s.path(), hub, 77, tc);
    sim::SimTime t0 = s.simulator().now();
    conn.start(t0);
    s.simulator().run_until(t0 + 8 * sim::kSecond);
    double bps = conn.throughput_bps(s.simulator().now());
    s.session().demux().register_handler(sim::PacketType::kTcpData, nullptr);
    return bps;
  };

  double small_w = tcp_throughput(8);
  double large_w = tcp_throughput(400);
  double a = s.nominal_avail_bw();

  bool differs = std::abs(small_w - a) / a > 0.2 || std::abs(large_w - a) / a > 0.2;
  return {10, MisconceptionKind::kPitfall, fallacy_title(10), differs,
          fmt("A=15 Mbps but bulk TCP got %.1f Mbps (Wr=8 pkts) and %.1f Mbps "
              "(Wr=400 pkts) — TCP throughput is not the avail-bw",
              small_w / 1e6, large_w / 1e6)};
}

}  // namespace

const char* to_string(MisconceptionKind k) {
  return k == MisconceptionKind::kFallacy ? "Fallacy" : "Pitfall";
}

std::string fallacy_title(int id) {
  switch (id) {
    case 1: return "Ignoring the variability of the avail-bw process";
    case 2: return "Ignoring the relation between probing stream duration and averaging time scale";
    case 3: return "Faster estimation is better";
    case 4: return "Packet pairs are as good as packet trains";
    case 5: return "Estimating the tight link capacity with end-to-end capacity estimation tools";
    case 6: return "Ignoring the effects of cross traffic burstiness";
    case 7: return "Ignoring the effects of multiple bottlenecks";
    case 8: return "Increasing One-Way Delays is equivalent to Ro < Ri";
    case 9: return "Iterative probing converges to a single avail-bw estimate";
    case 10: return "Evaluating the accuracy of avail-bw estimation through comparisons with bulk TCP throughput";
    default: throw std::out_of_range("fallacy_title: id must be 1..10");
  }
}

MisconceptionKind fallacy_kind(int id) {
  switch (id) {
    case 3: case 4: case 8: case 9: return MisconceptionKind::kFallacy;
    case 1: case 2: case 5: case 6: case 7: case 10:
      return MisconceptionKind::kPitfall;
    default: throw std::out_of_range("fallacy_kind: id must be 1..10");
  }
}

FallacyResult run_fallacy(int id, std::uint64_t seed) {
  switch (id) {
    case 1: return f1(seed);
    case 2: return f2(seed);
    case 3: return f3(seed);
    case 4: return f4(seed);
    case 5: return f5(seed);
    case 6: return f6(seed);
    case 7: return f7(seed);
    case 8: return f8(seed);
    case 9: return f9(seed);
    case 10: return f10(seed);
    default: throw std::out_of_range("run_fallacy: id must be 1..10");
  }
}

std::vector<FallacyResult> run_all_fallacies(std::uint64_t seed) {
  std::vector<FallacyResult> out;
  out.reserve(kFallacyCount);
  for (int id = 1; id <= kFallacyCount; ++id) out.push_back(run_fallacy(id, seed));
  return out;
}

}  // namespace abw::core
