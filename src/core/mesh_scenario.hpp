// MeshScenario: a network-wide measurement setup over a sim::Topology
// graph — the generalization of Scenario's two hardwired shapes (one
// path, one probe session) to M x N source/sink pairs sharing links.
//
// Realization: every topology edge becomes its own single-link sim::Path
// on ONE shared Simulator.  Per-edge background traffic is one-hop
// persistent on that path (it exits into the path's cross sink, so the
// familiar hybrid-fluid envelope — one fluid source per link — holds
// edge by edge).  End-to-end probe packets carry their PAIR index in
// flow_id; each path's receiver is an edge-exit forwarder that looks up
// (edge, pair) in a precomputed next-edge table and either injects the
// packet into the next edge's path or delivers it to the mesh receiver.
// Concurrent streams from different pairs therefore genuinely collide in
// the shared links' queues — the paper's concurrent-measurement pitfall
// at mesh scale.
//
// Ground truth is the per-pair matrix of Eq. 3 minima over route edges,
// computed from the same UtilizationMeter timelines single-path
// scenarios use; measurement traffic is excluded.
//
// Determinism: edge e's background RNG seeds with
// runner::derive_seed(cfg.seed, e) — a function of the edge index only —
// and the route table is deterministic by Topology's contract, so a
// MeshScenario is bit-reproducible from its config alone.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/scenario.hpp"
#include "est/mesh.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "probe/receiver_state.hpp"
#include "probe/session.hpp"
#include "probe/stream_result.hpp"
#include "probe/stream_spec.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace abw::core {

/// Parameters of a mesh scenario.
struct MeshConfig {
  /// The graph.  Pairs without an installed route get auto_route()d at
  /// construction (throws when unreachable).
  sim::Topology topology;
  /// The source->sink pairs under study; pair INDEX in this vector is the
  /// mesh-wide identity (estimates, ground truth, probe flow_id).
  std::vector<sim::NodePair> pairs;
  /// Offered background rate per edge, bits/s (empty = every edge idle;
  /// otherwise size must equal topology.edge_count()).  Each loaded edge
  /// carries ONE one-hop source, so kHybrid stays inside the
  /// one-fluid-source-per-link envelope.
  std::vector<double> edge_cross_rate_bps;
  sim::SimMode mode = sim::SimMode::kPacket;
  CrossModel model = CrossModel::kPoisson;
  std::uint32_t cross_packet_size = 1500;
  sim::SimTime traffic_horizon = 600 * sim::kSecond;
  sim::SimTime warmup = 2 * sim::kSecond;
  std::uint64_t seed = 1;
};

/// A ready-to-probe simulated mesh.  Construction starts the background
/// traffic and runs the warmup.
class MeshScenario {
 public:
  explicit MeshScenario(const MeshConfig& cfg);
  ~MeshScenario();

  MeshScenario(const MeshScenario&) = delete;
  MeshScenario& operator=(const MeshScenario&) = delete;

  const sim::Topology& topology() const { return topo_; }
  std::size_t pair_count() const { return pairs_.size(); }
  const sim::NodePair& pair(std::size_t p) const { return pairs_.at(p); }
  /// The pair's route as topology edge indices.
  const std::vector<std::size_t>& pair_route(std::size_t p) const {
    return routes_.at(p);
  }

  sim::Simulator& simulator() { return sim_; }
  sim::SimTime now() const { return sim_.now(); }
  void run_until(sim::SimTime t) { sim_.run_until(t); }

  /// The simulated path realizing edge `e` (single hop: link(0)).
  sim::Path& edge_path(std::size_t e) { return *edge_paths_.at(e); }
  const sim::Path& edge_path(std::size_t e) const { return *edge_paths_.at(e); }

  /// Sends one probe stream along pair `p`'s route, starting `lead_in`
  /// after now, and blocks (running the simulation) until every packet
  /// arrived or the drain timeout expired.  Dedup/reorder semantics match
  /// probe::ProbeSession.
  probe::StreamResult send_stream(std::size_t p, const probe::StreamSpec& spec,
                                  sim::SimTime lead_in);

  /// Sends the SAME spec simultaneously on several pairs — concurrent
  /// measurements genuinely contending in shared queues.  Results are in
  /// `ps` order.
  std::vector<probe::StreamResult> send_concurrent_streams(
      const std::vector<std::size_t>& ps, const probe::StreamSpec& spec,
      sim::SimTime lead_in);

  /// Narrow (minimum) capacity along pair `p`'s route.
  double pair_narrow_capacity(std::size_t p) const;

  /// Configured long-run avail-bw of pair `p`: min over route edges of
  /// capacity minus offered background rate — the design value.
  double nominal_pair_avail_bw(std::size_t p) const;

  /// Measured background avail-bw of edge `e` over [t1, t2), excluding
  /// measurement traffic.
  double edge_cross_avail_bw(std::size_t e, sim::SimTime t1,
                             sim::SimTime t2) const;

  /// Measured ground-truth avail-bw of pair `p` over [t1, t2): Eq. 3's
  /// minimum over its route edges, excluding measurement traffic.
  double pair_ground_truth(std::size_t p, sim::SimTime t1,
                           sim::SimTime t2) const;

  /// The full per-pair ground-truth matrix (flattened, pair order).
  std::vector<double> ground_truth_matrix(sim::SimTime t1,
                                          sim::SimTime t2) const;

  /// Edge realizing pair `p`'s minimum over [t1, t2) (ties: earliest
  /// route edge).
  std::size_t pair_tight_edge(std::size_t p, sim::SimTime t1,
                              sim::SimTime t2) const;

  /// Total probing cost so far (all pairs).
  const probe::ProbeCost& cost() const { return cost_; }

  /// Wires `sink` into every edge link.  nullptr detaches.
  void set_trace(obs::TraceSink* sink);

  /// Per-edge link counters ("edge.<e>.packets_in", ...), probing totals,
  /// and the simulator's event count.
  void snapshot_metrics(obs::MetricsRegistry& m) const;

 private:
  class EdgeExit;
  struct ActiveStream {
    probe::StreamResult* result = nullptr;
    std::size_t expected = 0;
    std::size_t received = 0;
    probe::ReceiverState recv;  // shared dedup/reorder accounting
  };

  /// Next-edge table sentinels.
  static constexpr std::int32_t kDeliver = -1;
  static constexpr std::int32_t kNotRouted = -2;

  void on_edge_exit(std::size_t edge, const sim::Packet& pkt);
  bool drained() const;

  MeshConfig cfg_;
  sim::Topology topo_;  // cfg_.topology plus auto-installed routes
  std::vector<sim::NodePair> pairs_;
  std::vector<std::vector<std::size_t>> routes_;  // per pair, edge indices
  sim::Simulator sim_;
  std::vector<std::unique_ptr<sim::Path>> edge_paths_;
  std::vector<std::unique_ptr<EdgeExit>> exits_;
  // Background sources; destroyed before the paths they feed.
  CrossTraffic cross_;
  std::vector<std::vector<std::int32_t>> next_edge_;  // [edge][pair]
  std::map<std::uint32_t, ActiveStream> active_;      // keyed by stream_id
  std::uint32_t next_stream_id_ = 1;
  probe::ProbeCost cost_;
};

// --- direct measurement of one mesh pair (the MeshEstimator backend) ----

/// Direct-probing parameters for measuring one pair of a mesh.
struct MeshProbeConfig {
  /// Binary-search iterations (one fleet each).  The final bracket width
  /// is roughly narrow_capacity / 2^streams.
  std::size_t streams = 6;
  /// Streams per fleet: each rate verdict is the majority over this many
  /// independent streams.  One stream samples the avail-bw process at one
  /// instant; a burst there flips its verdict, and a flipped verdict
  /// early in a binary search is unrecoverable.  3 is cheap insurance.
  std::size_t streams_per_fleet = 3;
  /// Long enough that a persistent queue ramp dominates the OWD trend
  /// over cross-traffic burst transients (50 ms halves the accuracy on
  /// multi-hop routes; see bench/micro_mesh).
  sim::SimTime stream_duration = 100 * sim::kMillisecond;
  std::uint32_t packet_size = 1500;
  /// First stream's input rate as a fraction of the route's narrow
  /// capacity (the search bracket starts at [0, narrow capacity]).
  double initial_utilization = 0.85;
  sim::SimTime inter_stream_gap = 20 * sim::kMillisecond;
  sim::SimTime lead_in = 1 * sim::kMillisecond;
};

/// Directly measures pair `p` on a fresh replica of `cfg` under `seed`
/// with an iterative (pathload-style) binary rate search: each stream's
/// OWD series is classified by the PCT/PDT trend tests and the verdict
/// halves the bracket.  Mesh routes cross many similarly loaded links,
/// exactly the regime where the Eq. 9 magnitude under-reads (each
/// congested hop adds distortion — the paper's multi-hop pitfall), while
/// the binary "is Ri above A?" verdict stays correct on any hop count.
/// Returns the bracket midpoint as avail_bps with [low, high] = bracket.
est::MeshMeasurement measure_mesh_pair(const MeshConfig& cfg, std::size_t p,
                                       std::uint64_t seed,
                                       const MeshProbeConfig& probe);

/// The measurement callback est::MeshEstimator fans across cores: each
/// invocation builds its own single-pair replica, so calls are safe to
/// run concurrently and bit-reproducible from (pair, seed) alone.
est::MeshMeasureFn make_mesh_measure_fn(MeshConfig cfg, MeshProbeConfig probe);

// --- canonical mesh topologies ------------------------------------------

/// A two-level fat-tree-like datacenter mesh: one core node, `pods`
/// aggregation nodes, and per pod `hosts_per_pod` source hosts plus
/// `hosts_per_pod` sink hosts.  Background load sits on the aggregation
/// up/downlinks with per-link utilizations linearly interpolated across
/// pods, uplinks markedly hotter than downlinks so inter-pod pairs
/// bottleneck at their source pod's uplink (heterogeneous, but with a
/// deterministic tight link per pair).
struct FatTreeMeshConfig {
  std::size_t pods = 4;
  std::size_t hosts_per_pod = 4;
  double core_capacity_bps = 50e6;    ///< aggregation up/downlinks
  double access_capacity_bps = 200e6; ///< host access links (idle)
  double uplink_util_min = 0.50;
  double uplink_util_max = 0.60;
  double downlink_util_min = 0.25;
  double downlink_util_max = 0.30;
  sim::SimTime core_delay = 2 * sim::kMillisecond;
  sim::SimTime access_delay = 1 * sim::kMillisecond;
  /// Include same-pod pairs (their routes skip the core and are idle).
  bool include_intra_pod = false;
  sim::SimMode mode = sim::SimMode::kPacket;
  CrossModel model = CrossModel::kPoisson;
  std::uint32_t cross_packet_size = 1500;
  sim::SimTime traffic_horizon = 600 * sim::kSecond;
  sim::SimTime warmup = 2 * sim::kSecond;
  std::uint64_t seed = 1;
};

MeshConfig fat_tree_mesh(const FatTreeMeshConfig& cfg);

/// An ISP-like parking lot: a directed backbone chain of `backbone_hops`
/// links with per-link utilizations interpolated along the chain;
/// `sources` source hosts attach near the head, `sinks` sink hosts near
/// the tail, so each pair's route is a contiguous backbone segment plus
/// access links and different pairs bottleneck at different chain links.
struct ParkingLotMeshConfig {
  std::size_t backbone_hops = 8;  ///< must be >= 2
  std::size_t sources = 4;
  std::size_t sinks = 4;
  double backbone_capacity_bps = 50e6;
  double access_capacity_bps = 200e6;
  double util_min = 0.30;
  double util_max = 0.60;
  sim::SimTime backbone_delay = 2 * sim::kMillisecond;
  sim::SimTime access_delay = 1 * sim::kMillisecond;
  sim::SimMode mode = sim::SimMode::kPacket;
  CrossModel model = CrossModel::kPoisson;
  std::uint32_t cross_packet_size = 1500;
  sim::SimTime traffic_horizon = 600 * sim::kSecond;
  sim::SimTime warmup = 2 * sim::kSecond;
  std::uint64_t seed = 1;
};

MeshConfig parking_lot_mesh(const ParkingLotMeshConfig& cfg);

}  // namespace abw::core
