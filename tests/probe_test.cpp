// Tests for the probing framework: stream geometries, receiver-side
// measurements, and — most importantly — the paper's single-link fluid
// model identities (Eqs. 6-8) verified packet-by-packet against CBR cross
// traffic.
#include <gtest/gtest.h>

#include "probe/session.hpp"
#include "probe/stream_result.hpp"
#include "probe/stream_spec.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "stats/trend.hpp"
#include "traffic/cbr.hpp"

namespace {

using namespace abw;
using abw::sim::kMicrosecond;
using abw::sim::kMillisecond;
using abw::sim::kSecond;

// ---------------------------------------------------------- StreamSpec ---

TEST(StreamSpec, PeriodicGeometry) {
  auto s = probe::StreamSpec::periodic(40e6, 1500, 100);
  ASSERT_EQ(s.size(), 100u);
  sim::SimTime gap = sim::transmission_time(1500, 40e6);
  for (std::size_t i = 1; i < s.size(); ++i)
    EXPECT_EQ(s.packets[i].offset - s.packets[i - 1].offset, gap);
  EXPECT_NEAR(s.nominal_rate_bps(), 40e6, 40e6 * 1e-6);
  EXPECT_EQ(s.span(), 99 * gap);
}

TEST(StreamSpec, PacketPairIsTwoPackets) {
  auto s = probe::StreamSpec::packet_pair(50e6, 1500);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_NEAR(s.instantaneous_rate(1), 50e6, 1.0);
}

TEST(StreamSpec, ChirpRatesGrowByGamma) {
  auto s = probe::StreamSpec::chirp(5e6, 1.5, 1000, 10);
  ASSERT_EQ(s.size(), 10u);
  for (std::size_t k = 1; k + 1 < s.size(); ++k) {
    double ratio = s.instantaneous_rate(k + 1) / s.instantaneous_rate(k);
    EXPECT_NEAR(ratio, 1.5, 0.01);
  }
  EXPECT_NEAR(s.instantaneous_rate(1), 5e6, 5e6 * 0.001);
}

TEST(StreamSpec, PairTrainHasPairsAtIntraRate) {
  stats::Rng rng(3);
  auto s = probe::StreamSpec::pair_train(50e6, 1500, 10, 5 * kMillisecond, rng);
  ASSERT_EQ(s.size(), 20u);
  sim::SimTime intra = sim::transmission_time(1500, 50e6);
  for (std::size_t p = 0; p < 10; ++p)
    EXPECT_EQ(s.packets[2 * p + 1].offset - s.packets[2 * p].offset, intra);
}

TEST(StreamSpec, RejectsBadParameters) {
  EXPECT_THROW(probe::StreamSpec::periodic(0, 1500, 10), std::invalid_argument);
  EXPECT_THROW(probe::StreamSpec::chirp(1e6, 1.0, 1000, 10), std::invalid_argument);
  EXPECT_THROW(probe::StreamSpec::chirp(1e6, 2.0, 1000, 1), std::invalid_argument);
  stats::Rng rng(1);
  EXPECT_THROW(probe::StreamSpec::pair_train(1e6, 1500, 0, kMillisecond, rng),
               std::invalid_argument);
}

TEST(StreamSpec, InstantaneousRateBounds) {
  auto s = probe::StreamSpec::periodic(10e6, 1500, 5);
  EXPECT_THROW(s.instantaneous_rate(0), std::out_of_range);
  EXPECT_THROW(s.instantaneous_rate(5), std::out_of_range);
}

// -------------------------------------------------------- StreamResult ---

TEST(StreamResult, RatesFromRecords) {
  probe::StreamResult r;
  // 3 packets of 1000 B, sent 1 ms apart, received 2 ms apart.
  for (std::uint32_t i = 0; i < 3; ++i) {
    probe::ProbeRecord rec;
    rec.seq = i;
    rec.size_bytes = 1000;
    rec.sent = i * kMillisecond;
    rec.received = 10 * kMillisecond + i * 2 * kMillisecond;
    r.packets.push_back(rec);
  }
  EXPECT_NEAR(r.input_rate_bps(), 8e6, 1.0);   // 2000 B over 2 ms
  EXPECT_NEAR(r.output_rate_bps(), 4e6, 1.0);  // 2000 B over 4 ms
  EXPECT_NEAR(r.rate_ratio(), 0.5, 1e-9);
  EXPECT_TRUE(r.complete());
}

TEST(StreamResult, LossHandling) {
  probe::StreamResult r;
  for (std::uint32_t i = 0; i < 4; ++i) {
    probe::ProbeRecord rec;
    rec.seq = i;
    rec.size_bytes = 1000;
    rec.sent = i * kMillisecond;
    rec.received = i * kMillisecond + kMillisecond;
    rec.lost = (i == 1);
    r.packets.push_back(rec);
  }
  EXPECT_EQ(r.lost_count(), 1u);
  EXPECT_FALSE(r.complete());
  EXPECT_EQ(r.owds_seconds().size(), 3u);
}

TEST(StreamResult, RelativeOwdsStartAtZero) {
  probe::StreamResult r;
  for (std::uint32_t i = 0; i < 3; ++i) {
    probe::ProbeRecord rec;
    rec.seq = i;
    rec.size_bytes = 100;
    rec.sent = i * kMillisecond;
    rec.received = i * kMillisecond + (5 + i) * kMillisecond;
    r.packets.push_back(rec);
  }
  auto rel = r.relative_owds_ms();
  ASSERT_EQ(rel.size(), 3u);
  EXPECT_DOUBLE_EQ(rel[0], 0.0);
  EXPECT_DOUBLE_EQ(rel[1], 1.0);
  EXPECT_DOUBLE_EQ(rel[2], 2.0);
}

TEST(StreamResult, DegenerateCasesReturnZero) {
  probe::StreamResult r;
  EXPECT_DOUBLE_EQ(r.input_rate_bps(), 0.0);
  EXPECT_DOUBLE_EQ(r.output_rate_bps(), 0.0);
  EXPECT_DOUBLE_EQ(r.rate_ratio(), 0.0);
}

// ------------------------------------------------------------ Session ---

struct SessionFixture {
  sim::Simulator simu;
  sim::Path path;
  probe::ProbeSession session;

  explicit SessionFixture(double capacity = 50e6)
      : path(simu, {make_cfg(capacity)}), session(simu, path) {}
  static sim::LinkConfig make_cfg(double c) {
    sim::LinkConfig cfg;
    cfg.capacity_bps = c;
    cfg.propagation_delay = kMillisecond;
    return cfg;
  }
};

TEST(Session, IdlePathDeliversAtLineRate) {
  SessionFixture f;
  auto res = f.session.send_stream_now(probe::StreamSpec::periodic(40e6, 1500, 50));
  EXPECT_TRUE(res.complete());
  EXPECT_NEAR(res.input_rate_bps(), 40e6, 40e6 * 0.01);
  // No cross traffic: output rate equals input rate.
  EXPECT_NEAR(res.rate_ratio(), 1.0, 0.01);
  // OWD = transmission + propagation for every packet.
  sim::SimTime expect_owd = sim::transmission_time(1500, 50e6) + kMillisecond;
  for (double owd : res.owds_seconds())
    EXPECT_NEAR(owd, sim::to_seconds(expect_owd), 1e-9);
}

TEST(Session, CostAccumulates) {
  SessionFixture f;
  f.session.send_stream_now(probe::StreamSpec::periodic(10e6, 1500, 10));
  f.session.send_stream_now(probe::StreamSpec::periodic(10e6, 1500, 10));
  EXPECT_EQ(f.session.cost().streams, 2u);
  EXPECT_EQ(f.session.cost().packets, 20u);
  EXPECT_EQ(f.session.cost().bytes, 20u * 1500u);
  EXPECT_GT(f.session.cost().elapsed(), 0);
}

TEST(Session, LostPacketsMarkedLost) {
  SessionFixture f;
  // Tiny queue: a burst at 100 Mb/s into a 50 Mb/s link must drop.
  sim::LinkConfig cfg;
  cfg.capacity_bps = 50e6;
  cfg.queue_limit_bytes = 4500;  // 3 packets
  sim::Simulator simu;
  sim::Path path(simu, {cfg});
  probe::ProbeSession session(simu, path);
  session.set_drain_timeout(200 * kMillisecond);
  auto res = session.send_stream_now(probe::StreamSpec::periodic(200e6, 1500, 50));
  EXPECT_GT(res.lost_count(), 0u);
  EXPECT_LT(res.lost_count(), 50u);
}

TEST(Session, RejectsEmptyAndPastStreams) {
  SessionFixture f;
  probe::StreamSpec empty;
  EXPECT_THROW(f.session.send_stream(empty, 0), std::invalid_argument);
  f.simu.run_until(kSecond);
  auto spec = probe::StreamSpec::periodic(1e6, 100, 2);
  EXPECT_THROW(f.session.send_stream(spec, 0), std::invalid_argument);
}

// ------------------------------------------- fluid-model identities ----

// Single hop, CBR cross traffic at Rc, probing at Ri > A: the paper's
// Eqs. 6-8 predict, per interarrival Delta_i = L/Ri:
//   OWD increase per packet  d = (L / Ct) * (Ri - A) / Ri       (Eq. 7)
//   output rate              Ro = Ri Ct / (Ct + Ri - A)          (Eq. 8)
// We sweep Ri and check both against the simulation.
class FluidModel : public ::testing::TestWithParam<double> {};

TEST_P(FluidModel, EquationsSevenAndEight) {
  double ri = GetParam();
  constexpr double ct = 50e6;
  constexpr double rc = 25e6;  // CBR cross => A = 25 Mb/s
  constexpr double a = ct - rc;

  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = ct;
  cfg.queue_limit_bytes = 64 << 20;
  sim::Path path(simu, {cfg});
  probe::ProbeSession session(simu, path);
  traffic::CbrGenerator cross(simu, path, 0, false, 1, stats::Rng(3), rc, 1500);
  cross.start(0, 60 * kSecond);
  simu.run_until(kSecond);

  auto res = session.send_stream_now(probe::StreamSpec::periodic(ri, 1500, 400));
  ASSERT_TRUE(res.complete());

  if (ri > a) {
    double ro_fluid = ri * ct / (ct + ri - a);
    EXPECT_NEAR(res.output_rate_bps(), ro_fluid, ro_fluid * 0.02) << "Ri=" << ri;

    // Average per-packet OWD slope ~ Eq. 7 (in the long-run average; CBR
    // packet granularity adds sawtooth noise around the fluid line).
    auto owds = res.owds_seconds();
    double d_fluid = (1500.0 * 8.0 / ct) * (ri - a) / ri;
    double slope = (owds.back() - owds.front()) /
                   static_cast<double>(owds.size() - 1);
    EXPECT_NEAR(slope, d_fluid, d_fluid * 0.15) << "Ri=" << ri;
    EXPECT_EQ(stats::combined_trend(owds), stats::Trend::kIncreasing);
  } else {
    EXPECT_NEAR(res.rate_ratio(), 1.0, 0.08) << "Ri=" << ri;
    EXPECT_NE(stats::combined_trend(res.owds_seconds()),
              stats::Trend::kIncreasing);
  }
}

INSTANTIATE_TEST_SUITE_P(RateSweep, FluidModel,
                         ::testing::Values(10e6, 15e6, 20e6, 24e6, 27e6, 30e6,
                                           35e6, 40e6, 45e6));

// Eq. 6 directly: queue growth per probing packet at the link.
TEST(FluidModel, EquationSixQueueGrowth) {
  constexpr double ct = 50e6, rc = 25e6, ri = 40e6, a = ct - rc;
  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = ct;
  cfg.queue_limit_bytes = 64 << 20;
  sim::Path path(simu, {cfg});
  probe::ProbeSession session(simu, path);
  traffic::CbrGenerator cross(simu, path, 0, false, 1, stats::Rng(3), rc, 1500);
  cross.start(0, 60 * kSecond);
  simu.run_until(kSecond);

  std::size_t backlog_before = path.link(0).backlog_bytes();
  auto spec = probe::StreamSpec::periodic(ri, 1500, 100);
  // Sample the backlog right as the last packet goes in.
  std::size_t backlog_after = 0;
  simu.at(simu.now() + kMillisecond + spec.packets.back().offset,
          [&] { backlog_after = path.link(0).backlog_bytes(); });
  session.send_stream(spec, simu.now() + kMillisecond);

  // Eq. 6: q grows by L * (Ri - A) / Ri per interarrival, so after N
  // packets: q ~ N * 1500 * (40-25)/40 = N * 562.5 B.
  double expected_growth = 100 * 1500.0 * (ri - a) / ri;
  EXPECT_NEAR(static_cast<double>(backlog_after) -
                  static_cast<double>(backlog_before),
              expected_growth, expected_growth * 0.15);
}

}  // namespace
