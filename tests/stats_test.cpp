// Unit tests for the statistics library: moments, CDFs, histograms,
// regression, trend tests, sampling, and effective bandwidth.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "stats/cdf.hpp"
#include "stats/effective_bw.hpp"
#include "stats/histogram.hpp"
#include "stats/moments.hpp"
#include "stats/regression.hpp"
#include "stats/rng.hpp"
#include "stats/sampling.hpp"
#include "stats/trend.hpp"

namespace {

using namespace abw::stats;

// ---------------------------------------------------------------- RNG ---

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, ForkDivergesFromParent) {
  Rng a(42);
  Rng child = a.fork();
  bool any_diff = false;
  for (int i = 0; i < 50; ++i)
    if (a.uniform01() != child.uniform01()) any_diff = true;
  EXPECT_TRUE(any_diff);
}

// The hand-inlined uniform01/exponential fast paths must be bit-identical
// to the std::distribution formulations they replaced — every golden
// digest and seeded experiment depends on the exact draw sequence.
TEST(Rng, RngFastPathExact) {
  // A stub engine with mt19937_64's range lets us drive the std reference
  // through chosen raw draws, including the one-in-2^54 rounding edge
  // where the 64-bit value converts up to exactly 2^64.
  struct StubEngine {
    using result_type = std::uint64_t;
    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    std::uint64_t val = 0;
    result_type operator()() { return val; }
  };
  const std::uint64_t edges[] = {
      0,         1,          1023,       1024,
      (1ULL << 53) - 1,      (1ULL << 53),
      ~0ULL,     ~0ULL - 1,  ~0ULL - 511, ~0ULL - 512,
      ~0ULL - 1023,          0xfffffffffffffbffULL, 0xfffffffffffffc00ULL};
  for (std::uint64_t x : edges) {
    StubEngine e{x};
    double want = std::generate_canonical<double, 53>(e);
    double u = static_cast<double>(x) * 0x1.0p-64;
    if (u >= 1.0) u = 0x1.fffffffffffffp-1;
    EXPECT_EQ(want, u) << "raw draw " << x;
  }
  // And over the real engine: same seed, interleaved draw kinds, exact
  // equality of both the values and the post-draw engine state.
  std::mt19937_64 ref(987654321);
  Rng fast(987654321);
  for (int i = 0; i < 20000; ++i) {
    switch (i % 3) {
      case 0:
        EXPECT_EQ(std::uniform_real_distribution<double>(0.0, 1.0)(ref),
                  fast.uniform01());
        break;
      case 1:
        EXPECT_EQ(std::exponential_distribution<double>(1.0 / 0.0013)(ref),
                  fast.exponential(0.0013));
        break;
      default:
        EXPECT_EQ(std::exponential_distribution<double>(1.0 / 250.0)(ref),
                  fast.exponential(250.0));
    }
  }
  EXPECT_EQ(ref(), fast.engine()());  // engines advanced in lockstep
}

TEST(Rng, Uniform01InRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanConverges) {
  Rng r(7);
  RunningStats acc;
  for (int i = 0; i < 50000; ++i) acc.add(r.exponential(3.0));
  EXPECT_NEAR(acc.mean(), 3.0, 0.1);
}

TEST(Rng, ExponentialRejectsBadMean) {
  Rng r(1);
  EXPECT_THROW(r.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(r.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, ParetoRespectsScaleMinimum) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(1.5, 2.0), 2.0);
}

TEST(Rng, ParetoMeanMatchesTheory) {
  // E[X] = alpha * xm / (alpha - 1) = 2.5 * 1 / 1.5 = 5/3.
  Rng r(5);
  RunningStats acc;
  for (int i = 0; i < 200000; ++i) acc.add(r.pareto(2.5, 1.0));
  EXPECT_NEAR(acc.mean(), 5.0 / 3.0, 0.05);
}

TEST(Rng, ParetoRejectsBadParams) {
  Rng r(1);
  EXPECT_THROW(r.pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(r.pareto(1.5, 0.0), std::invalid_argument);
}

TEST(Rng, NormalMoments) {
  Rng r(11);
  RunningStats acc;
  for (int i = 0; i < 100000; ++i) acc.add(r.normal());
  EXPECT_NEAR(acc.mean(), 0.0, 0.02);
  EXPECT_NEAR(acc.stddev(), 1.0, 0.02);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform_int(1, 10);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 10);
    saw_lo |= v == 1;
    saw_hi |= v == 10;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

// ------------------------------------------------------------ moments ---

TEST(RunningStats, MatchesBatchFormulas) {
  std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats acc;
  for (double x : xs) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), mean(xs));
  EXPECT_NEAR(acc.variance(), variance(xs), 1e-12);
  EXPECT_EQ(acc.count(), xs.size());
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 16.0);
}

TEST(RunningStats, EmptyAndSingleAreSafe) {
  RunningStats acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  acc.add(5.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsSinglePass) {
  Rng r(9);
  RunningStats whole, a, b;
  for (int i = 0; i < 1000; ++i) {
    double x = r.normal() * 3 + 1;
    whole.add(x);
    (i % 2 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(Moments, MedianAndQuantiles) {
  std::vector<double> xs = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 3.0);
}

TEST(Moments, QuantileInterpolates) {
  std::vector<double> xs = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 0.25);
}

TEST(Moments, QuantileRejectsOutOfRange) {
  EXPECT_THROW(quantile({1.0, 2.0}, 1.5), std::invalid_argument);
}

TEST(Moments, RelativeError) {
  EXPECT_DOUBLE_EQ(relative_error(27.5, 25.0), 0.1);
  EXPECT_DOUBLE_EQ(relative_error(22.5, 25.0), -0.1);
  EXPECT_THROW(relative_error(1.0, 0.0), std::invalid_argument);
}

TEST(Moments, MeanAbsRelativeError) {
  EXPECT_DOUBLE_EQ(mean_abs_relative_error({27.5, 22.5}, 25.0), 0.1);
  EXPECT_DOUBLE_EQ(mean_abs_relative_error({}, 25.0), 0.0);
}

// ---------------------------------------------------------------- CDF ---

TEST(EmpiricalCdf, BasicSteps) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, InverseIsQuantile) {
  EmpiricalCdf cdf({10.0, 20.0, 30.0, 40.0});
  EXPECT_DOUBLE_EQ(cdf.inverse(0.25), 10.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(0.5), 20.0);
  EXPECT_DOUBLE_EQ(cdf.inverse(1.0), 40.0);
  EXPECT_THROW(cdf.inverse(0.0), std::invalid_argument);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  Rng r(4);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(r.normal());
  EmpiricalCdf cdf(xs);
  auto curve = cdf.curve();
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LT(curve[i - 1].first, curve[i].first);
    EXPECT_LT(curve[i - 1].second, curve[i].second + 1e-12);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdf, EmptyIsZeroEverywhere) {
  EmpiricalCdf cdf({});
  EXPECT_DOUBLE_EQ(cdf.at(123.0), 0.0);
  EXPECT_THROW(cdf.inverse(0.5), std::logic_error);
}

// ----------------------------------------------------------- histogram ---

TEST(Histogram, CountsAndFlows) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(10.0);
  h.add(99.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, BinCenters) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 9.5);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderContainsBars) {
  Histogram h(0.0, 1.0, 2);
  for (int i = 0; i < 5; ++i) h.add(0.25);
  std::string s = h.render(10);
  EXPECT_NE(s.find('#'), std::string::npos);
}

// ---------------------------------------------------------- regression ---

TEST(LinearFit, ExactLine) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  std::vector<double> ys = {3, 5, 7, 9, 11};  // y = 2x + 1
  LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 2.0, 1e-12);
  EXPECT_NEAR(f.intercept, 1.0, 1e-12);
  EXPECT_NEAR(f.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineRecoversSlope) {
  Rng r(13);
  std::vector<double> xs, ys;
  for (int i = 0; i < 500; ++i) {
    double x = i * 0.1;
    xs.push_back(x);
    ys.push_back(0.02 * x + 0.5 + 0.01 * r.normal());
  }
  LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 0.02, 0.001);
  EXPECT_NEAR(f.intercept, 0.5, 0.01);
  EXPECT_GT(f.r_squared, 0.9);
}

TEST(LinearFit, RejectsDegenerateInput) {
  EXPECT_THROW(linear_fit({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(linear_fit({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(linear_fit({2, 2, 2}, {1, 2, 3}), std::invalid_argument);
}

// --------------------------------------------------------------- trend ---

TEST(Trend, MonotoneIncreaseIsIncreasing) {
  std::vector<double> owds;
  for (int i = 0; i < 100; ++i) owds.push_back(0.001 * i);
  EXPECT_EQ(pct_trend(owds), Trend::kIncreasing);
  EXPECT_EQ(pdt_trend(owds), Trend::kIncreasing);
  EXPECT_EQ(combined_trend(owds), Trend::kIncreasing);
}

TEST(Trend, FlatIsNonIncreasing) {
  std::vector<double> owds(100, 0.005);
  EXPECT_EQ(pct_trend(owds), Trend::kNonIncreasing);
  EXPECT_EQ(combined_trend(owds), Trend::kNonIncreasing);
}

TEST(Trend, NoisyFlatIsNonIncreasing) {
  Rng r(21);
  std::vector<double> owds;
  for (int i = 0; i < 200; ++i) owds.push_back(0.005 + 1e-4 * r.normal());
  EXPECT_EQ(combined_trend(owds), Trend::kNonIncreasing);
}

TEST(Trend, NoisyIncreaseDetected) {
  Rng r(22);
  std::vector<double> owds;
  for (int i = 0; i < 200; ++i) owds.push_back(1e-5 * i + 2e-4 * r.normal());
  EXPECT_EQ(combined_trend(owds), Trend::kIncreasing);
}

TEST(Trend, BurstAtEndDoesNotFoolTrend) {
  // The Fig. 5 situation: flat OWDs with a jump at the very end.  Ro/Ri
  // would scream congestion; the trend tests must not.
  std::vector<double> owds(150, 0.004);
  for (int i = 0; i < 10; ++i) owds.push_back(0.004 + 0.002 * (i + 1));
  EXPECT_NE(combined_trend(owds), Trend::kIncreasing);
}

TEST(Trend, PctStatisticBounds) {
  std::vector<double> inc, dec;
  for (int i = 0; i < 64; ++i) {
    inc.push_back(i);
    dec.push_back(-i);
  }
  EXPECT_DOUBLE_EQ(pct_statistic(inc), 1.0);
  EXPECT_DOUBLE_EQ(pct_statistic(dec), 0.0);
  EXPECT_DOUBLE_EQ(pdt_statistic(inc), 1.0);
  EXPECT_DOUBLE_EQ(pdt_statistic(dec), -1.0);
}

TEST(Trend, GroupMediansReducesLength) {
  std::vector<double> xs(100, 1.0);
  auto m = group_medians(xs);
  EXPECT_EQ(m.size(), 10u);  // sqrt(100)
}

TEST(Trend, ShortSeriesIsHandled) {
  EXPECT_EQ(pct_trend({}), Trend::kNonIncreasing);  // statistic 0.5 < 0.54
  EXPECT_EQ(pdt_trend({1.0}), Trend::kNonIncreasing);
}

TEST(Trend, ToStringNames) {
  EXPECT_STREQ(to_string(Trend::kIncreasing), "increasing");
  EXPECT_STREQ(to_string(Trend::kNonIncreasing), "non-increasing");
  EXPECT_STREQ(to_string(Trend::kAmbiguous), "ambiguous");
}

// ------------------------------------------------------------ sampling ---

TEST(Sampling, PoissonTimesSortedAndBounded) {
  Rng r(31);
  auto times = poisson_sample_times(50, 10.0, r);
  ASSERT_EQ(times.size(), 50u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_GT(times[i], 0.0);
    EXPECT_LT(times[i], 10.0);
    if (i > 0) {
      EXPECT_GT(times[i], times[i - 1]);
    }
  }
}

TEST(Sampling, PoissonGapsAreExponentialish) {
  // The CV (stddev/mean) of exponential gaps is 1; periodic gaps give 0.
  Rng r(32);
  auto times = poisson_sample_times(2000, 100.0, r);
  std::vector<double> gaps;
  for (std::size_t i = 1; i < times.size(); ++i)
    gaps.push_back(times[i] - times[i - 1]);
  double cv = stddev(gaps) / mean(gaps);
  EXPECT_NEAR(cv, 1.0, 0.15);
}

TEST(Sampling, PeriodicTimesEvenlySpaced) {
  auto times = periodic_sample_times(4, 8.0);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[0], 0.0);
  EXPECT_DOUBLE_EQ(times[3], 6.0);
}

TEST(Sampling, RejectsBadHorizon) {
  Rng r(1);
  EXPECT_THROW(poisson_sample_times(5, 0.0, r), std::invalid_argument);
  EXPECT_THROW(periodic_sample_times(5, -1.0), std::invalid_argument);
}

// Regression: exhausting the redraw budget must THROW, never silently
// fall back to periodic spacing — periodic sampling breaks PASTA and
// would corrupt the Fig. 1 Poisson-sampling experiment without signal.
TEST(Sampling, ExhaustedRedrawsThrowInsteadOfGoingPeriodic) {
  Rng r(5);
  EXPECT_THROW(poisson_sample_times(10, 1.0, r, /*max_attempts=*/0),
               std::runtime_error);
}

// The returned instants must always be strictly increasing and strictly
// inside (0, horizon), across many seeds and a count large enough that
// individual attempts routinely overshoot the horizon and redraw.
TEST(Sampling, TimesStrictlyIncreasingAndInsideHorizonAcrossSeeds) {
  const double horizon = 3.0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng r(seed);
    auto times = poisson_sample_times(400, horizon, r);
    ASSERT_EQ(times.size(), 400u) << "seed " << seed;
    double prev = 0.0;
    for (double t : times) {
      EXPECT_GT(t, prev) << "seed " << seed;
      EXPECT_LT(t, horizon) << "seed " << seed;
      prev = t;
    }
  }
}

// -------------------------------------------------------- effective bw ---

TEST(EffectiveBw, ConstantLoadEqualsLoad) {
  std::vector<double> loads(100, 30.0);
  EXPECT_NEAR(effective_bandwidth(loads, 0.5), 30.0, 1e-9);
}

TEST(EffectiveBw, BetweenMeanAndPeak) {
  std::vector<double> loads = {10, 10, 10, 50};
  double m = mean(loads);
  double eb = effective_bandwidth(loads, 0.1);
  EXPECT_GT(eb, m);
  EXPECT_LT(eb, 50.0);
}

TEST(EffectiveBw, IncreasesWithS) {
  std::vector<double> loads = {10, 20, 30, 40};
  EXPECT_LT(effective_bandwidth(loads, 0.01), effective_bandwidth(loads, 1.0));
}

TEST(EffectiveBw, AvailBwClampedAtZero) {
  std::vector<double> loads(10, 100.0);
  EXPECT_DOUBLE_EQ(effective_avail_bw(50.0, loads, 0.5), 0.0);
  EXPECT_NEAR(effective_avail_bw(150.0, loads, 0.5), 50.0, 1e-9);
}

TEST(EffectiveBw, BurstierLoadHasHigherEffectiveDemand) {
  std::vector<double> smooth(100, 25.0);
  std::vector<double> bursty;
  for (int i = 0; i < 100; ++i) bursty.push_back(i % 2 ? 45.0 : 5.0);  // mean 25
  EXPECT_GT(effective_bandwidth(bursty, 0.2), effective_bandwidth(smooth, 0.2));
}

TEST(EffectiveBw, RejectsBadInput) {
  EXPECT_THROW(effective_bandwidth({}, 0.5), std::invalid_argument);
  EXPECT_THROW(effective_bandwidth({1.0}, 0.0), std::invalid_argument);
}

}  // namespace
