// Tests for the second extension wave: RED queueing, CUSUM level-shift
// detection, and noisy receiver timestamps.
#include <gtest/gtest.h>

#include "core/scenario.hpp"
#include "est/pathload.hpp"
#include "probe/session.hpp"
#include "sim/link.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "stats/cusum.hpp"
#include "stats/moments.hpp"
#include "stats/rng.hpp"
#include "stats/trend.hpp"
#include "tcp/tcp.hpp"
#include "traffic/poisson.hpp"

namespace {

using namespace abw;
using abw::sim::kMillisecond;
using abw::sim::kSecond;

// ----------------------------------------------------------------- RED ---

TEST(Red, NoDropsBelowMinThreshold) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = 100e6;
  cfg.discipline = sim::QueueDiscipline::kRed;
  sim::Path path(simu, {cfg});
  sim::CountingSink sink;
  path.set_receiver(&sink);
  // Offered load 50% => backlog never approaches min_threshold.
  traffic::PoissonGenerator g(simu, path, 0, false, 1, stats::Rng(1), 50e6,
                              traffic::SizeDistribution::fixed(1500));
  g.start(0, 10 * kSecond);
  simu.run_until(10 * kSecond);
  EXPECT_EQ(path.link(0).stats().packets_red_dropped, 0u);
}

TEST(Red, EarlyDropsUnderSustainedOverload) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = 20e6;
  cfg.queue_limit_bytes = 300 * 1500;
  cfg.discipline = sim::QueueDiscipline::kRed;
  cfg.red.min_threshold_bytes = 10 * 1500;
  cfg.red.max_threshold_bytes = 60 * 1500;
  cfg.red.ewma_weight = 0.05;
  sim::Path path(simu, {cfg});
  sim::CountingSink sink;
  path.set_receiver(&sink);
  traffic::PoissonGenerator g(simu, path, 0, false, 1, stats::Rng(2), 30e6,
                              traffic::SizeDistribution::fixed(1500));
  g.start(0, 10 * kSecond);
  simu.run_until(10 * kSecond);
  simu.run_until_idle();
  const auto& st = path.link(0).stats();
  EXPECT_GT(st.packets_red_dropped, 100u);
  EXPECT_EQ(st.packets_in,
            st.packets_out + st.packets_dropped + st.packets_red_dropped +
                st.packets_lost);
}

TEST(Red, KeepsQueueShorterThanDropTail) {
  auto avg_backlog = [](sim::QueueDiscipline disc) {
    sim::Simulator simu;
    sim::LinkConfig cfg;
    cfg.capacity_bps = 20e6;
    cfg.queue_limit_bytes = 200 * 1500;
    cfg.discipline = disc;
    cfg.red.min_threshold_bytes = 8 * 1500;
    cfg.red.max_threshold_bytes = 40 * 1500;
    cfg.red.max_drop_prob = 0.2;
    cfg.red.ewma_weight = 0.05;
    sim::Path path(simu, {cfg});
    sim::TypeDemux demux;
    tcp::TcpReceiverHub hub;
    demux.register_handler(sim::PacketType::kTcpData, &hub);
    path.set_receiver(&demux);
    tcp::TcpConfig tc;
    tc.receiver_window = 512;
    tcp::TcpConnection conn(simu, path, hub, 1, tc);
    conn.start(0);
    // Sample the backlog once per 50 ms over 20 s.
    double sum = 0;
    int n = 0;
    for (sim::SimTime t = kSecond; t <= 20 * kSecond; t += 50 * kMillisecond) {
      simu.run_until(t);
      sum += static_cast<double>(path.link(0).backlog_bytes());
      ++n;
    }
    return sum / n;
  };
  double red = avg_backlog(sim::QueueDiscipline::kRed);
  double tail = avg_backlog(sim::QueueDiscipline::kDropTail);
  EXPECT_LT(red, 0.6 * tail);  // RED's whole point: shorter standing queue
}

TEST(Red, TcpStillGetsGoodUtilization) {
  sim::Simulator simu;
  sim::LinkConfig cfg;
  cfg.capacity_bps = 20e6;
  cfg.propagation_delay = 5 * kMillisecond;
  cfg.discipline = sim::QueueDiscipline::kRed;
  cfg.red.min_threshold_bytes = 8 * 1500;
  cfg.red.max_threshold_bytes = 40 * 1500;
  cfg.red.ewma_weight = 0.02;
  sim::Path path(simu, {cfg});
  sim::TypeDemux demux;
  tcp::TcpReceiverHub hub;
  demux.register_handler(sim::PacketType::kTcpData, &hub);
  path.set_receiver(&demux);
  tcp::TcpConfig tc;
  tc.receiver_window = 256;
  tcp::TcpConnection conn(simu, path, hub, 1, tc);
  conn.start(0);
  simu.run_until(30 * kSecond);
  EXPECT_GT(conn.throughput_bps(simu.now()), 20e6 * 0.6);
}

// --------------------------------------------------------------- CUSUM ---

TEST(Cusum, DetectsUpwardStep) {
  stats::Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(10.0 + 0.5 * rng.normal());
  for (int i = 0; i < 100; ++i) xs.push_back(14.0 + 0.5 * rng.normal());
  auto shift = stats::detect_level_shift(xs);
  ASSERT_TRUE(shift.has_value());
  EXPECT_TRUE(shift->upward);
  EXPECT_NEAR(static_cast<double>(shift->at), 100.0, 20.0);
}

TEST(Cusum, DetectsDownwardStep) {
  stats::Rng rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 120; ++i) xs.push_back(35.0 + 1.0 * rng.normal());
  for (int i = 0; i < 120; ++i) xs.push_back(15.0 + 1.0 * rng.normal());
  auto shift = stats::detect_level_shift(xs);
  ASSERT_TRUE(shift.has_value());
  EXPECT_FALSE(shift->upward);
  EXPECT_NEAR(static_cast<double>(shift->at), 120.0, 20.0);
}

TEST(Cusum, QuietOnStationaryNoise) {
  stats::Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back(rng.normal());
  EXPECT_FALSE(stats::detect_level_shift(xs).has_value());
}

TEST(Cusum, SegmentsMultipleShifts) {
  stats::Rng rng(8);
  std::vector<double> xs;
  for (int i = 0; i < 80; ++i) xs.push_back(10.0 + 0.3 * rng.normal());
  for (int i = 0; i < 80; ++i) xs.push_back(20.0 + 0.3 * rng.normal());
  for (int i = 0; i < 80; ++i) xs.push_back(5.0 + 0.3 * rng.normal());
  auto bounds = stats::segment_by_level_shifts(xs);
  ASSERT_GE(bounds.size(), 3u);  // 0 + two change points
  EXPECT_EQ(bounds[0], 0u);
  EXPECT_NEAR(static_cast<double>(bounds[1]), 80.0, 15.0);
  EXPECT_NEAR(static_cast<double>(bounds[2]), 160.0, 15.0);
}

TEST(Cusum, ShortOrConstantSeriesNeverAlarm) {
  EXPECT_FALSE(stats::detect_level_shift({1, 2, 3}).has_value());
  std::vector<double> constant(50, 3.0);
  EXPECT_FALSE(stats::detect_level_shift(constant).has_value());
}

// --------------------------------------------------- timestamp noise ---

TEST(ClockNoise, QuantizationRoundsTimestamps) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  auto sc = core::Scenario::single_hop(cfg);
  probe::ReceiverClock clock;
  clock.quantization = 10 * sim::kMicrosecond;
  sc.session().set_receiver_clock(clock);
  auto res = sc.session().send_stream_now(probe::StreamSpec::periodic(20e6, 1500, 50));
  for (const auto& p : res.packets) {
    if (p.lost) continue;
    EXPECT_EQ(p.received % (10 * sim::kMicrosecond), 0);
  }
}

TEST(ClockNoise, JitterWidensOwdSpreadButTrendSurvives) {
  auto run = [](double jitter, double rate) {
    core::SingleHopConfig cfg;
    cfg.model = core::CrossModel::kCbr;
    cfg.seed = 9;
    auto sc = core::Scenario::single_hop(cfg);
    probe::ReceiverClock clock;
    clock.jitter_std_seconds = jitter;
    sc.session().set_receiver_clock(clock);
    auto res = sc.session().send_stream_now(
        probe::StreamSpec::periodic(rate, 1500, 200));
    return std::make_pair(stats::stddev(res.owds_seconds()),
                          stats::combined_trend(res.owds_seconds()));
  };
  // Below the avail-bw the OWD series is nearly flat, so timestamping
  // jitter dominates the spread there.
  auto [clean_sd, clean_trend] = run(0.0, 20e6);
  auto [noisy_sd, noisy_trend] = run(100e-6, 20e6);
  EXPECT_GT(noisy_sd, 2.0 * clean_sd);
  EXPECT_NE(clean_trend, stats::Trend::kIncreasing);
  EXPECT_NE(noisy_trend, stats::Trend::kIncreasing);
  // Above the avail-bw the congestion ramp dwarfs the jitter: the
  // increasing verdict must survive.
  auto [ignored, above_trend] = run(100e-6, 40e6);
  (void)ignored;
  EXPECT_EQ(above_trend, stats::Trend::kIncreasing);
}

TEST(ClockNoise, PathloadRobustToRealisticNoise) {
  core::SingleHopConfig cfg;
  cfg.model = core::CrossModel::kCbr;
  cfg.seed = 10;
  auto sc = core::Scenario::single_hop(cfg);
  probe::ReceiverClock clock;
  clock.offset = 123 * kMillisecond;
  clock.drift_ppm = 50.0;
  clock.quantization = sim::kMicrosecond;
  clock.jitter_std_seconds = 20e-6;
  sc.session().set_receiver_clock(clock);

  est::PathloadConfig pc;
  pc.min_rate_bps = 2e6;
  pc.max_rate_bps = 49e6;
  est::Pathload pl(pc);
  auto e = pl.estimate(sc.session());
  ASSERT_TRUE(e.valid);
  EXPECT_NEAR(e.point_bps(), 25e6, 6e6);
}

}  // namespace
