// Golden-output determinism tests: full paper-style scenarios whose entire
// observable output (per-packet probe timestamps, link counters, meter
// window queries, event counts) is hashed and compared against constants
// captured from the pre-pooled-event-queue implementation (PR 2).
//
// These digests pin the bit-identical guarantee of the DES hot-path
// rewrite: the slab-pooled scheduler, the self-driving link transmit loop
// and the batched generator arrival pre-draws must reproduce the exact
// event ordering, RNG draw sequence, and arithmetic of the original
// per-closure implementation.  Any deviation — one reordered tie, one
// extra RNG draw feeding a packet, one changed rounding — flips the hash.
//
// Regenerate (only when an intentional behavior change is made):
//   ABW_GOLDEN_PRINT=1 ./golden_determinism_test
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/parallel_scenario.hpp"
#include "core/scenario.hpp"
#include "runner/batch.hpp"
#include "probe/stream_spec.hpp"
#include "sim/link.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "traffic/pareto_gaps.hpp"

namespace {

using namespace abw;

/// FNV-1a over 64-bit words; doubles contribute their exact bit pattern.
struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void f64(double d) { u64(std::bit_cast<std::uint64_t>(d)); }
  void b(bool v) { u64(v ? 1 : 0); }
};

void digest_link(Digest& d, const sim::Link& link) {
  const sim::LinkStats& s = link.stats();
  d.u64(s.packets_in);
  d.u64(s.packets_out);
  d.u64(s.packets_dropped);
  d.u64(s.packets_red_dropped);
  d.u64(s.packets_lost);
  d.u64(s.bytes_in);
  d.u64(s.bytes_out);
}

/// Fig. 1-style run: probe a single-hop scenario with a rate sweep of
/// periodic streams and fold every observable into one digest.
std::uint64_t run_single_hop(core::CrossModel model) {
  core::SingleHopConfig cfg;
  cfg.model = model;
  cfg.seed = 7;
  auto sc = core::Scenario::single_hop(cfg);

  Digest d;
  for (int k = 0; k < 12; ++k) {
    double rate = 10e6 + 3e6 * k;  // sweep across under- and overload
    auto spec = probe::StreamSpec::periodic(rate, 1500, 60);
    auto res = sc.session().send_stream(spec, sc.simulator().now() +
                                                  sim::kMillisecond);
    d.u64(res.stream_id);
    for (const auto& p : res.packets) {
      d.u64(p.seq);
      d.u64(p.size_bytes);
      d.u64(static_cast<std::uint64_t>(p.sent));
      d.u64(static_cast<std::uint64_t>(p.received));
      d.b(p.lost);
    }
    d.f64(res.output_rate_bps());
    d.f64(res.rate_ratio());
  }

  const sim::Link& link = sc.path().link(0);
  digest_link(d, link);
  sim::SimTime t2 = sc.simulator().now();
  d.u64(static_cast<std::uint64_t>(link.meter().busy_time(0, t2)));
  d.u64(static_cast<std::uint64_t>(link.meter().measurement_busy_time(0, t2)));
  d.f64(sc.ground_truth(sim::kSecond, t2));
  for (double a : link.meter().avail_bw_series(0, t2, 50 * sim::kMillisecond,
                                               /*exclude_measurement=*/true))
    d.f64(a);
  d.u64(link.meter().interval_count());
  d.u64(sc.simulator().events_processed());
  return d.h;
}

/// Fig. 4-style multi-hop run with one-hop-persistent cross traffic.
std::uint64_t run_multi_hop() {
  core::MultiHopConfig cfg;
  cfg.seed = 11;
  auto sc = core::Scenario::multi_hop(cfg);

  Digest d;
  for (int k = 0; k < 6; ++k) {
    auto spec = probe::StreamSpec::periodic(15e6 + 4e6 * k, 1500, 50);
    auto res = sc.session().send_stream(spec, sc.simulator().now() +
                                                  sim::kMillisecond);
    for (const auto& p : res.packets) {
      d.u64(static_cast<std::uint64_t>(p.sent));
      d.u64(static_cast<std::uint64_t>(p.received));
      d.b(p.lost);
    }
    d.f64(res.output_rate_bps());
  }
  for (std::size_t h = 0; h < sc.path().hop_count(); ++h)
    digest_link(d, sc.path().link(h));
  sim::SimTime t2 = sc.simulator().now();
  d.f64(sc.path().cross_avail_bw(sim::kSecond, t2));
  d.u64(sc.path().tight_link(sim::kSecond, t2));
  d.u64(sc.path().cross_sink().packets());
  d.u64(sc.path().cross_sink().bytes());
  d.u64(sc.simulator().events_processed());
  return d.h;
}

/// Direct Pareto-gap generator run (not reachable through Scenario's
/// CrossModel set) so every batchable arrival process is pinned.
std::uint64_t run_pareto_gaps() {
  sim::Simulator simu;
  sim::LinkConfig lc;
  lc.capacity_bps = 50e6;
  lc.propagation_delay = sim::kMillisecond;
  sim::Path path(simu, {lc});
  sim::CountingSink sink;
  path.set_receiver(&sink);
  traffic::ParetoGapGenerator gen(simu, path, 0, false, 3, stats::Rng(21),
                                  30e6, 1200, 1.6);
  gen.start(0, 5 * sim::kSecond);
  simu.run_until(6 * sim::kSecond);

  Digest d;
  d.u64(gen.packets_sent());
  d.u64(gen.bytes_sent());
  d.u64(sink.packets());
  d.u64(sink.bytes());
  digest_link(d, path.link(0));
  d.u64(static_cast<std::uint64_t>(path.link(0).meter().busy_time(
      0, 5 * sim::kSecond)));
  d.u64(simu.events_processed());
  return d.h;
}

/// Partitioned-engine run (sim/domain.hpp): the same multi-hop physics
/// driven by the conservative parallel DES in lockstep windows.  The
/// digest covers per-packet probe timestamps, every global link's
/// counters, the ground truth, and the per-domain event/handoff
/// accounting, and must be reproduced at every worker-thread count.
std::uint64_t run_partitioned(std::size_t threads) {
  core::ParallelScenarioConfig cfg;
  cfg.hop_count = 6;
  cfg.loaded_hops = {0, 2, 4};
  cfg.cross_rate_bps = 25e6;
  cfg.model = core::CrossModel::kPoisson;
  cfg.propagation_delay = 5 * sim::kMillisecond;
  cfg.traffic_horizon = 5 * sim::kSecond;
  cfg.warmup = 200 * sim::kMillisecond;
  cfg.seed = 11;
  cfg.cuts = {1, 3};  // 3 domains
  cfg.threads = threads;
  core::ParallelScenario sc(cfg);

  Digest d;
  for (int k = 0; k < 4; ++k) {
    auto res =
        sc.send_periodic_stream(15e6 + 4e6 * k, 1500, 50, sim::kMillisecond);
    for (const auto& p : res.packets) {
      d.u64(static_cast<std::uint64_t>(p.sent));
      d.u64(static_cast<std::uint64_t>(p.received));
      d.b(p.lost);
    }
    d.f64(res.output_rate_bps());
  }
  for (std::size_t g = 0; g < sc.parallel().hop_count(); ++g)
    digest_link(d, sc.parallel().link(g));
  d.f64(sc.ground_truth(100 * sim::kMillisecond, sc.now()));
  for (std::size_t dm = 0; dm < sc.parallel().domain_count(); ++dm)
    d.u64(sc.parallel().domain(dm).stats().events);
  d.u64(sc.parallel().handoffs());
  return d.h;
}

// Digests captured from the pre-PR-2 (std::function heap, per-closure
// link/generator) implementation; see file header for regeneration.
constexpr std::uint64_t kGoldenCbr = 0x7b3a580e3bfe9d56ull;
constexpr std::uint64_t kGoldenPoisson = 0xcb0a09e09da11eccull;
constexpr std::uint64_t kGoldenParetoOnOff = 0x4c25048f590c8407ull;
constexpr std::uint64_t kGoldenMultiHop = 0x192d95669f8bae90ull;
constexpr std::uint64_t kGoldenParetoGaps = 0x21ae52ecde362251ull;
// Captured from the serial-equivalent (threads=1) partitioned engine at
// its introduction; any thread count must keep reproducing it.
constexpr std::uint64_t kGoldenPdes = 0x9107b28d2d6960cfull;

bool print_mode() { return std::getenv("ABW_GOLDEN_PRINT") != nullptr; }

void check(const char* name, std::uint64_t got, std::uint64_t want) {
  if (print_mode()) {
    std::printf("constexpr std::uint64_t kGolden%s = 0x%016llxull;\n", name,
                static_cast<unsigned long long>(got));
    return;
  }
  EXPECT_EQ(got, want) << name << " digest changed: the event-queue hot "
                       << "path no longer reproduces the legacy output";
}

TEST(GoldenDeterminism, SingleHopCbr) {
  check("Cbr", run_single_hop(core::CrossModel::kCbr), kGoldenCbr);
}

TEST(GoldenDeterminism, SingleHopPoisson) {
  check("Poisson", run_single_hop(core::CrossModel::kPoisson), kGoldenPoisson);
}

TEST(GoldenDeterminism, SingleHopParetoOnOff) {
  check("ParetoOnOff", run_single_hop(core::CrossModel::kParetoOnOff),
        kGoldenParetoOnOff);
}

TEST(GoldenDeterminism, MultiHopPoisson) {
  check("MultiHop", run_multi_hop(), kGoldenMultiHop);
}

TEST(GoldenDeterminism, ParetoGapSource) {
  check("ParetoGaps", run_pareto_gaps(), kGoldenParetoGaps);
}

TEST(GoldenDeterminism, PartitionedEngineHitsGoldenAtEveryThreadCount) {
  check("Pdes", run_partitioned(1), kGoldenPdes);
  if (print_mode()) return;
  EXPECT_EQ(run_partitioned(2), kGoldenPdes)
      << "2-thread partitioned digest diverged from the serial run";
  EXPECT_EQ(run_partitioned(4), kGoldenPdes)
      << "4-thread partitioned digest diverged from the serial run";
}

/// Running the same scenario twice in one process must give the same
/// digest (no hidden global state in the pooled queue or batched draws).
TEST(GoldenDeterminism, RepeatRunsAreIdentical) {
  EXPECT_EQ(run_single_hop(core::CrossModel::kPoisson),
            run_single_hop(core::CrossModel::kPoisson));
}

/// PR 1's determinism contract extends through the new hot path: the same
/// scenarios run under the parallel BatchRunner must hit the same golden
/// digests at every thread count (each task owns its Simulator, so the
/// pooled per-scheduler state must have no cross-task leakage).
TEST(GoldenDeterminism, BatchRunnerHitsGoldenDigestsAtEveryThreadCount) {
  auto task = [](std::size_t i) {
    switch (i) {
      case 0: return run_single_hop(core::CrossModel::kCbr);
      case 1: return run_single_hop(core::CrossModel::kPoisson);
      case 2: return run_single_hop(core::CrossModel::kParetoOnOff);
      case 3: return run_multi_hop();
      default: return run_pareto_gaps();
    }
  };
  const std::vector<std::uint64_t> want = {kGoldenCbr, kGoldenPoisson,
                                           kGoldenParetoOnOff, kGoldenMultiHop,
                                           kGoldenParetoGaps};
  if (print_mode()) GTEST_SKIP() << "print mode: digests emitted above";
  for (std::size_t jobs : {1u, 2u, 5u}) {
    runner::BatchRunner batch(jobs);
    EXPECT_EQ(batch.map(want.size(), task), want) << "jobs=" << jobs;
  }
}

}  // namespace
