// Mesh estimation suite (sim/topology.hpp, core/mesh_scenario.hpp,
// est/mesh.hpp).  The load-bearing properties:
//
//  * Degenerate equivalence: a 1-pair chain mesh is bit-identical to the
//    equivalent stand-alone multi-hop Scenario — same link stats, same
//    per-packet probe timestamps, same ground truth.  The per-edge-Path
//    realization adds forwarding hops but zero physics.
//
//  * Flow conservation: on a shared link, what arrives is exactly the sum
//    of the flows routed over it (property-tested over randomized meshes
//    and randomized concurrent stream sets).
//
//  * Sublinear probing: the greedy route-overlap cover probes <= 30% of a
//    256-order fat-tree mesh while covering every route edge, and the
//    shared-bottleneck inference reconstructs unprobed pairs within the
//    accepted error.
//
//  * Jobs invariance: the fanned-out mesh report digests identically for
//    BatchRunner jobs 1, 2, and 4.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "core/mesh_scenario.hpp"
#include "core/scenario.hpp"
#include "est/mesh.hpp"
#include "probe/stream_spec.hpp"
#include "runner/batch.hpp"
#include "sim/link.hpp"
#include "sim/packet.hpp"
#include "sim/path.hpp"
#include "sim/simulator.hpp"
#include "sim/topology.hpp"

namespace {

using namespace abw;

struct Digest {
  std::uint64_t h = 1469598103934665603ull;
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  }
  void f64(double d) { u64(std::bit_cast<std::uint64_t>(d)); }
  void b(bool v) { u64(v ? 1 : 0); }
};

// ---------------------------------------------------------------------------
// Topology

TEST(Topology, SetRouteValidatesChain) {
  sim::Topology t;
  t.add_nodes(3);
  sim::LinkConfig lc;
  lc.capacity_bps = 50e6;
  const std::size_t e0 = t.add_edge(0, 1, lc);
  const std::size_t e1 = t.add_edge(1, 2, lc);

  EXPECT_THROW(t.add_edge(1, 1, lc), std::invalid_argument);  // self-loop
  EXPECT_THROW(t.set_route(0, 2, {e1}), std::invalid_argument);  // wrong start
  EXPECT_THROW(t.set_route(0, 2, {e0}), std::invalid_argument);  // wrong end
  EXPECT_THROW(t.set_route(0, 2, {e0, e0}), std::invalid_argument);
  EXPECT_EQ(t.route(0, 2), nullptr);

  t.set_route(0, 2, {e0, e1});
  ASSERT_NE(t.route(0, 2), nullptr);
  EXPECT_EQ(*t.route(0, 2), (std::vector<std::size_t>{e0, e1}));
}

TEST(Topology, AutoRouteShortestWithDeterministicTieBreak) {
  // Diamond: 0 -> {1, 2} -> 3.  Two 2-edge routes tie; BFS expands
  // out-edges ascending, so the lexicographically smallest wins.
  sim::Topology t;
  t.add_nodes(4);
  sim::LinkConfig lc;
  lc.capacity_bps = 50e6;
  const std::size_t e0 = t.add_edge(0, 1, lc);
  t.add_edge(0, 2, lc);
  const std::size_t e2 = t.add_edge(1, 3, lc);
  t.add_edge(2, 3, lc);

  ASSERT_TRUE(t.auto_route(0, 3));
  EXPECT_EQ(*t.route(0, 3), (std::vector<std::size_t>{e0, e2}));
  EXPECT_FALSE(t.auto_route(3, 0));  // directed: unreachable
  EXPECT_THROW(t.auto_route_all({{3, 0}}), std::invalid_argument);
}

TEST(Topology, RouteNarrowCapacityAndBaseOwd) {
  sim::Topology t;
  t.add_nodes(3);
  sim::LinkConfig a;
  a.capacity_bps = 50e6;
  a.propagation_delay = 2 * sim::kMillisecond;
  sim::LinkConfig b;
  b.capacity_bps = 10e6;
  b.propagation_delay = 3 * sim::kMillisecond;
  t.add_edge(0, 1, a);
  t.add_edge(1, 2, b);
  t.auto_route_all({{0, 2}});

  EXPECT_DOUBLE_EQ(t.route_narrow_capacity(0, 2), 10e6);
  const sim::SimTime expect = a.propagation_delay + b.propagation_delay +
                              sim::transmission_time(1500, 50e6) +
                              sim::transmission_time(1500, 10e6);
  EXPECT_EQ(t.route_base_owd(0, 2, 1500), expect);
  EXPECT_THROW(t.route_narrow_capacity(2, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// MeshEstimator: selection + inference (synthetic, no simulation)

est::MeshPathSpec spec_of(std::vector<std::size_t> edges, double cap = 100.0) {
  est::MeshPathSpec s;
  s.edges = std::move(edges);
  s.narrow_capacity_bps = cap;
  return s;
}

est::MeshMeasurement meas(double a) {
  est::MeshMeasurement m;
  m.valid = true;
  m.avail_bps = a;
  m.low_bps = a;
  m.high_bps = a;
  m.samples = 1;
  return m;
}

TEST(MeshEstimator, GreedyCoverCoversAllEdgesAndStopsEarly) {
  std::vector<est::MeshPathSpec> paths = {
      spec_of({0, 1}), spec_of({1, 2}), spec_of({0, 2}), spec_of({3})};
  // Unbounded budget: greedy stops once every route edge is covered.
  auto sel = est::MeshEstimator::select_probe_set(paths, 1.0);
  EXPECT_EQ(sel, (std::vector<std::size_t>{0, 1, 3}));
  // Budget of one: the highest-gain path only.
  auto one = est::MeshEstimator::select_probe_set(paths, 0.25);
  EXPECT_EQ(one, (std::vector<std::size_t>{0}));
}

TEST(MeshEstimator, InferenceExactUnderSharedBottleneck) {
  // Edge avail-bw: e0 = 10, e1 = 20, e2 = 30.  Measuring paths 0, 1, 3
  // pins each edge exactly; path 2's bottleneck (e0) is shared with
  // measured path 0, so its inference is exact.
  est::MeshEstimator est(
      {spec_of({0, 1}), spec_of({1, 2}), spec_of({0, 2}), spec_of({2})},
      {.max_probe_fraction = 1.0, .base_seed = 1});
  est::MeshReport r =
      est.infer({0, 1, 3}, {meas(10.0), meas(20.0), meas(30.0)});

  EXPECT_DOUBLE_EQ(r.edge_avail_bps[0], 10.0);
  EXPECT_DOUBLE_EQ(r.edge_avail_bps[1], 20.0);
  EXPECT_DOUBLE_EQ(r.edge_avail_bps[2], 30.0);
  EXPECT_EQ(r.route_edges, 3u);
  EXPECT_EQ(r.covered_edges, 3u);

  ASSERT_TRUE(r.pairs[2].valid);
  EXPECT_FALSE(r.pairs[2].measured);
  EXPECT_DOUBLE_EQ(r.pairs[2].estimate_bps, 10.0);
  EXPECT_EQ(r.pairs[2].bottleneck_edge, 0u);
  EXPECT_GT(r.pairs[2].confidence, 0.0);
  EXPECT_LE(r.pairs[2].confidence, 1.0);
  EXPECT_DOUBLE_EQ(r.pairs[2].high_bps, 100.0);  // narrow capacity bracket

  EXPECT_TRUE(r.pairs[0].measured);
  EXPECT_DOUBLE_EQ(r.pairs[0].confidence, 1.0);
  EXPECT_EQ(r.pairs[0].bottleneck_edge, 0u);
}

TEST(MeshEstimator, InvalidMeasurementFallsBackToInference) {
  est::MeshEstimator est({spec_of({0, 1}), spec_of({1})},
                         {.max_probe_fraction = 1.0, .base_seed = 1});
  est::MeshMeasurement bad;  // valid == false
  est::MeshReport r = est.infer({0, 1}, {bad, meas(20.0)});

  // Pair 0's own measurement failed, but e1 is bounded through pair 1;
  // partial-coverage inference still yields an estimate at reduced
  // confidence.
  ASSERT_TRUE(r.pairs[0].valid);
  EXPECT_TRUE(r.pairs[0].measured);
  EXPECT_DOUBLE_EQ(r.pairs[0].estimate_bps, 20.0);
  EXPECT_LT(r.pairs[0].confidence, 1.0);
  EXPECT_EQ(r.covered_edges, 1u);
  EXPECT_EQ(r.route_edges, 2u);
}

// ---------------------------------------------------------------------------
// MeshScenario: degenerate equivalence with the stand-alone Scenario

class RecordingReceiver final : public sim::PacketHandler {
 public:
  RecordingReceiver(sim::Simulator& sim, std::size_t count)
      : sim_(sim), received_(count, 0) {}

  void handle(sim::Packet pkt) override {
    if (pkt.type != sim::PacketType::kProbe || pkt.stream_id != 1) return;
    if (pkt.seq < received_.size() && received_[pkt.seq] == 0)
      received_[pkt.seq] = sim_.now();
  }

  const std::vector<sim::SimTime>& received() const { return received_; }

 private:
  sim::Simulator& sim_;
  std::vector<sim::SimTime> received_;
};

TEST(MeshScenario, DegenerateChainBitMatchesStandaloneScenario) {
  constexpr std::size_t kHops = 3;
  constexpr double kCapacity = 50e6;
  constexpr double kCrossRate = 25e6;
  constexpr std::uint64_t kSeed = 7;
  constexpr sim::SimTime kWarmup = 2 * sim::kSecond;
  constexpr sim::SimTime kEnd = 6 * sim::kSecond;

  sim::LinkConfig lc;
  lc.capacity_bps = kCapacity;
  lc.propagation_delay = sim::kMillisecond;
  lc.queue_limit_bytes = 2 << 20;

  // Mesh side: a 4-node chain, one pair spanning it.
  core::MeshConfig mc;
  for (std::size_t h = 0; h < kHops; ++h) {
    mc.topology.add_node();
    if (h == kHops - 1) mc.topology.add_node();
  }
  for (std::size_t h = 0; h < kHops; ++h) mc.topology.add_edge(h, h + 1, lc);
  mc.pairs = {{0, kHops}};
  mc.edge_cross_rate_bps.assign(kHops, kCrossRate);
  mc.mode = sim::SimMode::kPacket;
  mc.model = core::CrossModel::kPoisson;
  mc.warmup = kWarmup;
  mc.seed = kSeed;
  core::MeshScenario mesh(mc);

  // Stand-alone side: one 3-hop Path, cross sources built with the SAME
  // per-edge seed derivation the mesh uses.
  core::Scenario sc =
      core::Scenario::custom(std::vector<sim::LinkConfig>(kHops, lc), kSeed);
  for (std::size_t h = 0; h < kHops; ++h) {
    core::CrossSpec cspec;
    cspec.model = core::CrossModel::kPoisson;
    cspec.rate_bps = kCrossRate;
    cspec.capacity_bps = kCapacity;
    sc.add_cross_source(
        core::make_cross_generator(
            sc.simulator(), sc.path(), h, /*one_hop=*/true,
            1000 + static_cast<std::uint32_t>(h),
            stats::Rng(runner::derive_seed(kSeed, h)), cspec.model,
            cspec.rate_bps, cspec.packet_size, cspec.trimodal,
            cspec.onoff_peak, cspec.capacity_bps),
        h, /*one_hop=*/true, 1000 + static_cast<std::uint32_t>(h),
        sim::SimMode::kPacket, 600 * sim::kSecond);
  }
  sc.simulator().run_until(kWarmup);

  // Identical probe stream through both, at the same absolute times.
  const probe::StreamSpec pspec = probe::StreamSpec::periodic(30e6, 1500, 60);
  const probe::StreamResult mres =
      mesh.send_stream(0, pspec, sim::kMillisecond);

  RecordingReceiver rx(sc.simulator(), pspec.size());
  sc.path().set_receiver(&rx);
  const sim::SimTime start = sc.simulator().now() + sim::kMillisecond;
  sim::Simulator* sim = &sc.simulator();
  sim::Path* path = &sc.path();
  for (std::size_t k = 0; k < pspec.packets.size(); ++k) {
    const probe::ProbePacketSpec& pp = pspec.packets[k];
    const std::uint32_t sz = pp.size_bytes;
    const auto seq = static_cast<std::uint32_t>(k);
    sim->at(start + pp.offset, [sim, path, sz, seq] {
      sim::Packet pkt;
      pkt.id = sim->next_packet_id();
      pkt.type = sim::PacketType::kProbe;
      pkt.measurement = true;
      pkt.size_bytes = sz;
      pkt.flow_id = 0;
      pkt.stream_id = 1;
      pkt.seq = seq;
      pkt.send_time = sim->now();
      path->inject(0, pkt);
    });
  }

  mesh.run_until(kEnd);
  sc.simulator().run_until(kEnd);

  // Per-packet probe timestamps bit-match.
  ASSERT_EQ(mres.packets.size(), rx.received().size());
  for (std::size_t k = 0; k < mres.packets.size(); ++k) {
    ASSERT_FALSE(mres.packets[k].lost) << "seq " << k;
    EXPECT_EQ(mres.packets[k].received, rx.received()[k]) << "seq " << k;
  }

  // Per-link physics bit-match.
  for (std::size_t h = 0; h < kHops; ++h) {
    const sim::LinkStats& ms = mesh.edge_path(h).link(0).stats();
    const sim::LinkStats& ss = sc.path().link(h).stats();
    EXPECT_EQ(ms.packets_in, ss.packets_in) << "hop " << h;
    EXPECT_EQ(ms.packets_out, ss.packets_out) << "hop " << h;
    EXPECT_EQ(ms.packets_dropped, ss.packets_dropped) << "hop " << h;
    EXPECT_EQ(ms.bytes_in, ss.bytes_in) << "hop " << h;
    EXPECT_EQ(ms.bytes_out, ss.bytes_out) << "hop " << h;
  }

  // Ground truth bit-matches (same meters, same Eq. 3 minimum).
  const double mesh_gt = mesh.pair_ground_truth(0, kWarmup, kEnd);
  const double sc_gt = sc.ground_truth(kWarmup, kEnd);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(mesh_gt),
            std::bit_cast<std::uint64_t>(sc_gt));
}

// ---------------------------------------------------------------------------
// Flow conservation on shared links

TEST(MeshScenario, SharedLinkLoadIsSumOfRoutedFlows) {
  std::mt19937 rng(20260808);
  for (int iter = 0; iter < 3; ++iter) {
    core::ParkingLotMeshConfig pc;
    pc.backbone_hops = 4 + static_cast<std::size_t>(rng() % 4);  // 4..7
    pc.sources = 2 + static_cast<std::size_t>(rng() % 3);        // 2..4
    pc.sinks = 2 + static_cast<std::size_t>(rng() % 3);
    pc.util_min = 0.0;  // background off: conservation is exact counts
    pc.util_max = 0.0;
    pc.mode = sim::SimMode::kPacket;
    pc.warmup = sim::kSecond;
    pc.seed = 1 + iter;
    core::MeshScenario mesh(core::parking_lot_mesh(pc));

    // A random subset of pairs probes concurrently.
    std::vector<std::size_t> all(mesh.pair_count());
    for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;
    std::shuffle(all.begin(), all.end(), rng);
    const std::size_t n = 2 + rng() % (all.size() - 1);
    std::vector<std::size_t> chosen(all.begin(),
                                    all.begin() + std::min(n, all.size()));

    constexpr std::size_t kCount = 40;
    const probe::StreamSpec spec = probe::StreamSpec::periodic(5e6, 1000, kCount);
    auto results = mesh.send_concurrent_streams(chosen, spec, sim::kMillisecond);
    for (const auto& r : results) EXPECT_TRUE(r.complete());

    // Every edge carried exactly the sum of the streams routed over it.
    const sim::Topology& topo = mesh.topology();
    std::vector<std::uint64_t> expected(topo.edge_count(), 0);
    for (std::size_t p : chosen)
      for (std::size_t e : mesh.pair_route(p)) expected[e] += kCount;
    for (std::size_t e = 0; e < topo.edge_count(); ++e) {
      const sim::LinkStats& s = mesh.edge_path(e).link(0).stats();
      EXPECT_EQ(s.packets_in, expected[e]) << "edge " << e << " iter " << iter;
      EXPECT_EQ(s.bytes_in, expected[e] * 1000) << "edge " << e;
      EXPECT_EQ(s.packets_dropped, 0u) << "edge " << e;
    }
  }
}

// ---------------------------------------------------------------------------
// Sublinear probing on the fat-tree mesh

TEST(MeshEstimator, FatTreeProbesSublinearlyAndInfersWithinTolerance) {
  core::FatTreeMeshConfig fc;  // 4 pods x 4 hosts: 192 inter-pod pairs
  core::MeshConfig mc = core::fat_tree_mesh(fc);
  mc.topology.auto_route_all(mc.pairs);

  est::MeshEstimator est(est::make_path_specs(mc.topology, mc.pairs),
                         {.max_probe_fraction = 0.30, .base_seed = 1});
  const auto& probed = est.probe_set();
  ASSERT_FALSE(probed.empty());
  EXPECT_LE(static_cast<double>(probed.size()),
            0.30 * static_cast<double>(mc.pairs.size()));

  // Feed the DESIGN avail-bw of each probed pair (exact measurements) and
  // check the inference reconstructs every unprobed pair within the
  // accepted tolerance.
  auto nominal = [&](std::size_t p) {
    const auto& route = *mc.topology.route(mc.pairs[p].src, mc.pairs[p].dst);
    double a = std::numeric_limits<double>::infinity();
    for (std::size_t e : route)
      a = std::min(a, mc.topology.edge(e).link.capacity_bps -
                          mc.edge_cross_rate_bps[e]);
    return a;
  };
  std::vector<est::MeshMeasurement> results;
  results.reserve(probed.size());
  for (std::size_t p : probed) results.push_back(meas(nominal(p)));
  est::MeshReport r = est.infer(probed, results);

  EXPECT_EQ(r.covered_edges, r.route_edges);  // greedy covered everything
  std::vector<double> errors;
  for (std::size_t p = 0; p < mc.pairs.size(); ++p) {
    ASSERT_TRUE(r.pairs[p].valid) << "pair " << p;
    if (r.pairs[p].measured) continue;
    errors.push_back(std::abs(r.pairs[p].estimate_bps - nominal(p)) /
                     nominal(p));
    EXPECT_GT(r.pairs[p].confidence, 0.0);
  }
  ASSERT_FALSE(errors.empty());
  std::sort(errors.begin(), errors.end());
  EXPECT_LE(errors[errors.size() / 2], 0.20);  // median
  EXPECT_LE(errors.back(), 0.25);              // worst case
}

// ---------------------------------------------------------------------------
// Jobs invariance of the fanned-out mesh report

std::uint64_t digest_report(const est::MeshReport& r) {
  Digest d;
  for (std::size_t p : r.probed) d.u64(p);
  for (const auto& m : r.measurements) {
    d.b(m.valid);
    d.f64(m.avail_bps);
    d.f64(m.low_bps);
    d.f64(m.high_bps);
    d.u64(m.samples);
  }
  for (const auto& e : r.pairs) {
    d.b(e.valid);
    d.b(e.measured);
    d.f64(e.estimate_bps);
    d.f64(e.low_bps);
    d.f64(e.high_bps);
    d.f64(e.confidence);
    d.u64(e.bottleneck_edge);
  }
  for (double v : r.edge_avail_bps) d.f64(v);
  for (std::uint32_t s : r.edge_support) d.u64(s);
  return d.h;
}

TEST(MeshEstimator, ReportBitIdenticalAcrossJobs) {
  core::ParkingLotMeshConfig pc;
  pc.backbone_hops = 4;
  pc.sources = 3;
  pc.sinks = 3;
  pc.mode = sim::SimMode::kHybrid;
  pc.warmup = sim::kSecond;
  pc.seed = 11;
  core::MeshConfig mc = core::parking_lot_mesh(pc);
  mc.topology.auto_route_all(mc.pairs);

  core::MeshProbeConfig probe;
  probe.streams = 3;
  probe.stream_duration = 30 * sim::kMillisecond;
  est::MeshMeasureFn fn = core::make_mesh_measure_fn(mc, probe);

  est::MeshEstimator est(est::make_path_specs(mc.topology, mc.pairs),
                         {.max_probe_fraction = 0.34, .base_seed = 5});

  std::vector<std::uint64_t> digests;
  for (std::size_t jobs : {1u, 2u, 4u}) {
    runner::BatchRunner runner(jobs);
    digests.push_back(digest_report(est.estimate(runner, fn)));
  }
  EXPECT_EQ(digests[0], digests[1]);
  EXPECT_EQ(digests[0], digests[2]);

  // And the measurements themselves landed near the design value.
  runner::BatchRunner serial(1);
  est::MeshReport r = est.estimate(serial, fn);
  ASSERT_FALSE(r.probed.empty());
  for (std::size_t k = 0; k < r.probed.size(); ++k) {
    ASSERT_TRUE(r.measurements[k].valid) << "pair " << r.probed[k];
  }
}

}  // namespace
